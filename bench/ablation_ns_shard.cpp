// Ablation: sharded, quorum-replicated name service (DESIGN.md §6c).
//
// The PR-4 failover work left one centralized component standing: a
// single name-server enclave serializing every registration and lookup
// on its service core. This harness measures what sharding buys and what
// replication costs:
//
//   - a registration/lookup/removal storm against the central registry
//     (sharding off) and against 1/2/4 shards (R = 1), showing ops/sec
//     scaling with shard count;
//   - the same storm with 3-way replicated shards (majority-ack writes);
//   - a churn storm: every shard primary crashes mid-storm and the
//     elections must recover bounded while the storm rides the retries;
//   - a dead-replica row: one follower per shard down, lookups and
//     writes keep serving from the remaining majority;
//
// The sharding-off baseline doubles as the pay-for-use check: no quorum
// machinery fires when the feature is disabled.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "xemem/system.hpp"
#include "xemem/wire.hpp"

namespace xemem {
namespace {

struct Row {
  std::string name;
  u32 shards{0};  // 0 = central hub registry (sharding off)
  u32 repl{0};
  u64 ops{0};
  double kops{0};  // completed registry ops per simulated second / 1000
  u64 failures{0};
  u64 quorum_writes{0};
  u64 replications{0};
  u64 promotions{0};
  double recovery_ms{0};  // churn row: crash -> every shard has a primary
  double sim_ms{0};
};

KernelConfig shard_config(std::vector<std::vector<u64>> groups) {
  KernelConfig cfg;
  cfg.request_timeout = 1_ms;
  cfg.ping_timeout = 200_us;
  cfg.max_retries = 2;
  cfg.backoff_base = 100_us;
  cfg.backoff_max = 400_us;
  if (!groups.empty()) {
    cfg.enable_ns_sharding(std::move(groups));
    cfg.shard_probe_period = 500_us;
    cfg.shard_probe_misses = 2;
    cfg.quorum_timeout = 1_ms;
    cfg.partition_grace = 4_ms;
  }
  return cfg;
}

bool clean_error(Errc e) {
  return e == Errc::unreachable || e == Errc::retry_later ||
         e == Errc::stale_epoch || e == Errc::not_primary ||
         e == Errc::no_quorum || e == Errc::no_such_segid ||
         e == Errc::no_name_server;
}

// Replica groups for @p shards shards R-way replicated over @p hosts
// host enclaves (runtime ids 1..hosts): group s starts at host s*R mod
// hosts and wraps, so groups overlap once shards*R exceeds hosts.
std::vector<std::vector<u64>> make_groups(u32 shards, u32 repl, u32 hosts) {
  std::vector<std::vector<u64>> groups;
  for (u32 s = 0; s < shards; ++s) {
    std::vector<u64> g;
    for (u32 j = 0; j < repl; ++j) {
      g.push_back(((static_cast<u64>(s) * repl + j) % hosts) + 1);
    }
    groups.push_back(std::move(g));
  }
  return groups;
}

// Storm throughput: 8 co-kernel enclaves, every one a client running
// `workers` concurrent make/search/remove loops against the registry.
// With sharding the registry work spreads over the shard hosts' service
// cores; without it every op serializes on the hub.
Row run_storm(const std::string& name, u32 shards, u32 repl, int workers,
              int iters) {
  Row row;
  row.name = name;
  row.shards = shards;
  row.repl = repl;
  sim::Engine eng(8100);
  Node node(hw::Machine::r420());
  constexpr u32 kEnclaves = 8;
  node.set_kernel_config(
      shard_config(shards == 0 ? std::vector<std::vector<u64>>{}
                               : make_groups(shards, repl, kEnclaves)));
  node.add_linux_mgmt("linux", 0, {0, 1});
  std::vector<std::string> names;
  for (u32 i = 0; i < kEnclaves; ++i) {
    names.push_back("ck" + std::to_string(i));
    node.add_cokernel(names.back(), 0, {2 + 2 * i, 3 + 2 * i}, 256_MiB);
  }
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      node.link_peers(names[i], names[j]);
    }
  }

  Throughput tp;
  u64 failures = 0;

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    std::vector<os::Process*> procs;
    for (const auto& n : names) {
      procs.push_back(node.enclave(n).create_process(8_MiB).value());
    }

    u32 pending = kEnclaves * static_cast<u32>(workers);
    sim::Event done;
    auto worker = [&](u32 e, int w) -> sim::Task<void> {
      XememKernel* k = &node.kernel(names[e]);
      os::Process* p = procs[e];
      for (int i = 0; i < iters; ++i) {
        const std::string nm = "e" + std::to_string(e) + "w" +
                               std::to_string(w) + "i" + std::to_string(i);
        auto sid = co_await k->xpmem_make(*p, p->image_base(), 4_KiB, nm);
        if (!sid.ok()) {
          ++failures;
          continue;
        }
        tp.add();
        auto f = co_await k->xpmem_search(nm);
        if (f.ok()) tp.add(); else ++failures;
        auto rm = co_await k->xpmem_remove(*p, sid.value());
        if (rm.ok()) tp.add(); else ++failures;
      }
      if (--pending == 0) done.set();
    };
    tp.begin(sim::now());
    for (u32 e = 0; e < kEnclaves; ++e) {
      for (int w = 0; w < workers; ++w) {
        sim::Engine::current()->spawn(worker(e, w));
      }
    }
    co_await done.wait();
    tp.end(sim::now());

    for (const auto& n : names) {
      const auto& st = node.kernel(n).stats();
      row.quorum_writes += st.quorum_writes;
      row.replications += st.replications;
      row.promotions += st.shard_promotions;
    }
    const auto& hub = node.kernel("linux").stats();
    row.quorum_writes += hub.quorum_writes;
    row.replications += hub.replications;
    row.promotions += hub.shard_promotions;
    row.sim_ms = static_cast<double>(sim::now()) / 1e6;
  };
  eng.run(main());
  row.ops = tp.events();
  row.kops = tp.per_sec() / 1e3;
  row.failures = failures;
  return row;
}

// Churn storm: 4 shards 3-way replicated over 8 host enclaves, 2 client
// enclaves driving deadline-bounded op loops. Mid-storm every shard's
// boot primary crashes at once; the elections must all resolve bounded
// and every op in the storm must still converge.
Row run_churn(int workers, int iters) {
  Row row;
  row.name = "churn-storm";
  row.shards = 4;
  row.repl = 3;
  sim::Engine eng(8200);
  Node node(hw::Machine::r420());
  constexpr u32 kHosts = 8;
  // Boot primaries (first member, epoch 1) on disjoint hosts 1-4 with
  // followers drawn from hosts 5-8: crashing every boot primary at once
  // still leaves each shard a 2-of-3 majority to elect from. (The wrapped
  // make_groups layout would put one shard's primary in another's
  // follower slot, and the storm would kill majorities outright.)
  const std::vector<std::vector<u64>> groups{
      {1, 5, 6}, {2, 6, 7}, {3, 7, 8}, {4, 8, 5}};
  node.set_kernel_config(shard_config(groups));
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  std::vector<std::string> names;
  for (u32 i = 0; i < kHosts + 2; ++i) {  // 8 hosts + 2 pure clients
    names.push_back("ck" + std::to_string(i));
    node.add_cokernel(names.back(), 0, {4 + 2 * i, 5 + 2 * i}, 256_MiB);
  }
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      node.link_peers(names[i], names[j]);
    }
  }

  Throughput tp;
  u64 failures = 0;

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    // Runtime ids 9 and 10 host no replica slot: they are the clients.
    std::vector<XememKernel*> clients;
    std::vector<os::Process*> procs;
    for (u64 eid : {u64{9}, u64{10}}) {
      XememKernel* k = node.kernel_with_id(eid);
      clients.push_back(k);
      for (const auto& n : names) {
        if (&node.kernel(n) == k) {
          procs.push_back(node.enclave(n).create_process(8_MiB).value());
        }
      }
    }

    u32 pending = static_cast<u32>(clients.size()) * workers;
    sim::Event done;
    auto worker = [&](u32 c, int w) -> sim::Task<void> {
      XememKernel* k = clients[c];
      os::Process* p = procs[c];
      for (int i = 0; i < iters; ++i) {
        const std::string nm = "c" + std::to_string(c) + "w" +
                               std::to_string(w) + "i" + std::to_string(i);
        Result<Segid> sid{Errc::unreachable};
        for (int t = 0; t < 240; ++t) {
          sid = co_await k->xpmem_make(*p, p->image_base(), 4_KiB, nm);
          if (sid.ok()) break;
          // A retry whose predecessor committed before the primary died:
          // converged, the registration is durable — fetch it by name.
          if (sid.error() == Errc::already_exists) {
            sid = co_await k->xpmem_search(nm);
            if (sid.ok()) break;
          }
          if (!clean_error(sid.error())) break;
          co_await sim::delay(500_us);
        }
        if (!sid.ok()) {
          ++failures;
          continue;
        }
        tp.add();
        Result<Segid> f{Errc::unreachable};
        for (int t = 0; t < 240; ++t) {
          f = co_await k->xpmem_search(nm);
          if (f.ok()) break;
          if (!clean_error(f.error())) break;
          co_await sim::delay(500_us);
        }
        if (f.ok()) tp.add(); else ++failures;
        Result<void> rm{Errc::unreachable};
        for (int t = 0; t < 240; ++t) {
          rm = co_await k->xpmem_remove(*p, sid.value());
          if (rm.ok() || rm.error() == Errc::no_such_segid) break;
          if (!clean_error(rm.error())) break;
          co_await sim::delay(500_us);
        }
        if (rm.ok() || rm.error() == Errc::no_such_segid) {
          tp.add();
        } else {
          ++failures;
        }
      }
      if (--pending == 0) done.set();
    };
    tp.begin(sim::now());
    for (u32 c = 0; c < clients.size(); ++c) {
      for (int w = 0; w < workers; ++w) {
        sim::Engine::current()->spawn(worker(c, w));
      }
    }

    // Kill every boot primary mid-storm, while workers still have
    // iterations left to ride the elections' retries.
    co_await sim::delay(200_us);
    for (const auto& g : groups) {
      XememKernel* p = node.kernel_with_id(g[0]);
      if (p != nullptr && !p->is_crashed()) p->crash();
    }
    const sim::TimePoint t_crash = sim::now();
    bool recovered = false;
    for (int i = 0; i < 2000 && !recovered; ++i) {
      recovered = true;
      for (u32 s = 0; s < 4; ++s) {
        bool has_primary = false;
        for (const auto& n : names) {
          XememKernel& k = node.kernel(n);
          if (!k.is_crashed() && k.is_shard_primary(s)) has_primary = true;
        }
        recovered = recovered && has_primary;
      }
      if (!recovered) co_await sim::delay(100_us);
    }
    if (recovered) {
      row.recovery_ms = static_cast<double>(sim::now() - t_crash) / 1e6;
    }

    co_await done.wait();
    tp.end(sim::now());
    for (const auto& n : names) {
      const auto& st = node.kernel(n).stats();
      row.quorum_writes += st.quorum_writes;
      row.replications += st.replications;
      row.promotions += st.shard_promotions;
    }
    row.sim_ms = static_cast<double>(sim::now()) / 1e6;
  };
  eng.run(main());
  row.ops = tp.events();
  row.kops = tp.per_sec() / 1e3;
  row.failures = failures;
  return row;
}

// Dead-replica row: 2 shards 3-way replicated; one follower per shard is
// down. Lookups and writes keep serving from the remaining majority and
// no election runs (the primaries are alive).
Row run_dead_replica(int iters) {
  Row row;
  row.name = "dead-replica";
  row.shards = 2;
  row.repl = 3;
  sim::Engine eng(8300);
  Node node(hw::Machine::r420());
  const auto groups = make_groups(2, 3, 6);  // hosts 1..6, disjoint groups
  node.set_kernel_config(shard_config(groups));
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  std::vector<std::string> names;
  for (u32 i = 0; i < 8; ++i) {  // 6 hosts + 2 clients
    names.push_back("ck" + std::to_string(i));
    node.add_cokernel(names.back(), 0, {4 + 2 * i, 5 + 2 * i}, 256_MiB);
  }
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      node.link_peers(names[i], names[j]);
    }
  }

  Throughput tp;
  u64 failures = 0;

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    std::vector<XememKernel*> clients;
    std::vector<os::Process*> procs;
    for (u64 eid : {u64{7}, u64{8}}) {
      XememKernel* k = node.kernel_with_id(eid);
      clients.push_back(k);
      for (const auto& n : names) {
        if (&node.kernel(n) == k) {
          procs.push_back(node.enclave(n).create_process(8_MiB).value());
        }
      }
    }

    // Seed the registry, then kill the last follower of each group.
    std::vector<std::string> published;
    for (int i = 0; i < 8; ++i) {
      const std::string nm = "seed" + std::to_string(i);
      auto s = co_await clients[0]->xpmem_make(*procs[0], procs[0]->image_base(),
                                               4_KiB, nm);
      if (!s.ok()) { ++failures; continue; }
      published.push_back(nm);
    }
    for (const auto& g : groups) node.kernel_with_id(g.back())->crash();

    u32 pending = static_cast<u32>(clients.size());
    sim::Event done;
    auto worker = [&](u32 c) -> sim::Task<void> {
      XememKernel* k = clients[c];
      os::Process* p = procs[c];
      for (int i = 0; i < iters; ++i) {
        auto f = co_await k->xpmem_search(published[i % published.size()]);
        if (f.ok()) tp.add(); else ++failures;
        // Writes still commit 2-of-3.
        const std::string nm =
            "dr" + std::to_string(c) + "i" + std::to_string(i);
        auto s = co_await k->xpmem_make(*p, p->image_base(), 4_KiB, nm);
        if (s.ok()) tp.add(); else ++failures;
        auto rm = co_await k->xpmem_remove(*p, s.ok() ? s.value() : Segid{0});
        if (rm.ok()) tp.add(); else ++failures;
      }
      if (--pending == 0) done.set();
    };
    tp.begin(sim::now());
    for (u32 c = 0; c < clients.size(); ++c) {
      sim::Engine::current()->spawn(worker(c));
    }
    co_await done.wait();
    tp.end(sim::now());
    for (const auto& n : names) {
      const auto& st = node.kernel(n).stats();
      row.quorum_writes += st.quorum_writes;
      row.replications += st.replications;
      row.promotions += st.shard_promotions;
    }
    row.sim_ms = static_cast<double>(sim::now()) / 1e6;
  };
  eng.run(main());
  row.ops = tp.events();
  row.kops = tp.per_sec() / 1e3;
  row.failures = failures;
  return row;
}

void print_rows(const std::vector<Row>& rows) {
  std::printf("%14s %6s %4s %7s %9s %8s %8s %7s %6s %11s %7s\n", "case",
              "shards", "repl", "ops", "kops/sec", "failures", "qwrites",
              "repls", "promos", "recovery_ms", "sim_ms");
  for (const auto& r : rows) {
    std::printf("%14s %6u %4u %7llu %9.1f %8llu %8llu %7llu %6llu %11.2f %7.1f\n",
                r.name.c_str(), r.shards, r.repl,
                static_cast<unsigned long long>(r.ops), r.kops,
                static_cast<unsigned long long>(r.failures),
                static_cast<unsigned long long>(r.quorum_writes),
                static_cast<unsigned long long>(r.replications),
                static_cast<unsigned long long>(r.promotions), r.recovery_ms,
                r.sim_ms);
  }
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                bool passed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_ns_shard\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        f,
        "    {\"case\": \"%s\", \"shards\": %u, \"repl\": %u, \"ops\": %llu, "
        "\"kops_per_sec\": %.2f, \"failures\": %llu, \"quorum_writes\": %llu, "
        "\"replications\": %llu, \"promotions\": %llu, "
        "\"recovery_ms\": %.3f, \"sim_ms\": %.3f}%s\n",
        r.name.c_str(), r.shards, r.repl,
        static_cast<unsigned long long>(r.ops), r.kops,
        static_cast<unsigned long long>(r.failures),
        static_cast<unsigned long long>(r.quorum_writes),
        static_cast<unsigned long long>(r.replications),
        static_cast<unsigned long long>(r.promotions), r.recovery_ms, r.sim_ms,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"all_checks_passed\": %s\n}\n",
               passed ? "true" : "false");
  std::fclose(f);
}

}  // namespace
}  // namespace xemem

int main(int argc, char** argv) {
  using namespace xemem;
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::header(
      "Ablation: sharded quorum-replicated name service",
      "shards the registry by segid/name hash across name-service "
      "enclaves and replicates each shard to a majority-ack group; "
      "measures ops/sec scaling with shard count against the central "
      "single-NS baseline, the cost of 3-way replication, recovery from "
      "a churn storm that kills every shard primary at once, and service "
      "continuity with a dead replica per shard");

  const int workers = 3;
  const int iters = quick ? 8 : 40;
  std::vector<Row> rows;
  rows.push_back(run_storm("central-baseline", 0, 0, workers, iters));
  rows.push_back(run_storm("shards-1", 1, 1, workers, iters));
  rows.push_back(run_storm("shards-2", 2, 1, workers, iters));
  rows.push_back(run_storm("shards-4", 4, 1, workers, iters));
  rows.push_back(run_storm("shards-4-r3", 4, 3, workers, iters));
  rows.push_back(run_churn(2, quick ? 6 : 20));
  rows.push_back(run_dead_replica(quick ? 10 : 40));
  print_rows(rows);

  std::printf("\nshape checks:\n");
  bench::ShapeChecks checks;
  const Row& base = rows[0];
  const Row& s1 = rows[1];
  const Row& s2 = rows[2];
  const Row& s4 = rows[3];
  const Row& r3 = rows[4];
  const Row& churn = rows[5];
  const Row& dead = rows[6];
  checks.expect(base.failures == 0 && base.quorum_writes == 0 &&
                    base.replications == 0 && base.promotions == 0,
                "pay-for-use: sharding off fires no quorum machinery");
  checks.expect(s1.failures == 0 && s2.failures == 0 && s4.failures == 0,
                "healthy sharded storms complete without failures");
  checks.expect(s1.kops > 0.5 * base.kops,
                "one shard roughly matches the central baseline");
  checks.expect(s2.kops > 1.4 * s1.kops && s4.kops > 2.0 * s1.kops,
                "throughput scales with shard count");
  checks.expect(r3.failures == 0 && r3.replications > 0,
                "3-way replication serves the storm with follower traffic");
  checks.expect(churn.failures == 0,
                "the churn storm rides out every primary crash");
  checks.expect(churn.promotions >= 4,
                "every crashed primary was replaced by election");
  checks.expect(churn.recovery_ms > 0 && churn.recovery_ms < 50.0,
                "recovery from the simultaneous crash is bounded");
  checks.expect(dead.failures == 0 && dead.promotions == 0,
                "a dead follower per shard costs no availability");

  if (!json_path.empty()) {
    write_json(json_path, rows, checks.all_passed());
    std::printf("\njson written to %s\n", json_path.c_str());
  }
  return checks.exit_code();
}
