// Ablation: name-service failover (DESIGN.md §"Name-service failover").
//
// The name server is the paper's one centralized component: every segid
// mint, name lookup, and route resolution crosses it. This harness kills
// it at every protocol step of a make/get/attach/read/detach/release/
// remove workload (the deterministic crashpoint sweep) and reports, per
// crashpoint, whether the system converged: every operation completed or
// failed with a clean retryable/terminal status, no coroutine hung, the
// owner's pins drained to zero, and — when the standby promoted — a
// post-recovery attach round-tripped data through a segid minted in the
// new epoch. The k = 0 baseline row doubles as the pay-for-use check: no
// failover machinery fires when nothing dies.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "xemem/system.hpp"
#include "xemem/wire.hpp"

namespace xemem {
namespace {

struct Row {
  u64 crashpoint{0};       // kill NS before its k-th command (0 = never)
  bool converged{false};   // ops clean + pins drained (+ recovery if promoted)
  bool promoted{false};    // a standby took over
  double recovery_us{0};   // promotion -> first re-registration
  u64 epoch_rejects{0};    // stale-epoch requests bounced by the new NS
  u64 reregistrations{0};  // survivor replay rounds absorbed
  u64 retries{0};          // client-side retries spent converging
  u64 ns_requests{0};      // commands the boot NS processed before dying
  double sim_ms{0};        // simulated time the scenario took
};

KernelConfig failover_config() {
  KernelConfig cfg;
  cfg.request_timeout = 1_ms;
  cfg.ping_timeout = 200_us;
  cfg.max_retries = 2;
  cfg.backoff_base = 100_us;
  cfg.backoff_max = 400_us;
  cfg.lease_duration = 5_ms;
  cfg.enable_ns_failover();
  cfg.ns_probe_period = 500_us;
  cfg.ns_probe_misses = 2;
  cfg.ns_recovery_grace = 4_ms;
  cfg.discovery_max_rounds = 16;
  return cfg;
}

bool clean_error(Errc e) {
  return e == Errc::unreachable || e == Errc::no_name_server ||
         e == Errc::retry_later || e == Errc::stale_epoch ||
         e == Errc::no_such_segid;
}

Row run_case(u64 k) {
  Row row;
  row.crashpoint = k;
  sim::Engine eng(7500);  // same seed for every k: only the crashpoint moves
  Node node(hw::Machine::r420());
  node.set_kernel_config(failover_config());
  auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& ck1 = node.add_cokernel("ck1", 0, {4, 5}, 256_MiB);
  auto& ck2 = node.add_cokernel("ck2", 0, {6, 7}, 256_MiB);
  node.link_peers("ck1", "ck2");  // survivors stay connected sans hub
  mgmt.crash_after_ns_requests(k);

  auto main = [&]() -> sim::Task<void> {
    bool clean = true;
    co_await node.start();
    os::Process* op = node.enclave("ck2").create_process(8_MiB).value();
    os::Process* up = node.enclave("ck1").create_process(1_MiB).value();
    std::vector<u8> pattern(64_KiB);
    for (size_t i = 0; i < pattern.size(); ++i) pattern[i] = u8(i * 53 + k);
    if (ck2.id().valid()) {
      clean = node.enclave("ck2")
                  .proc_write(*op, op->image_base(), pattern.data(),
                              pattern.size())
                  .ok() &&
              clean;
    }

    Result<Segid> sid{Errc::unreachable};
    for (int i = 0; i < 120; ++i) {
      sid = co_await ck2.xpmem_make(*op, op->image_base(), 64_KiB, "sweep");
      if (sid.ok()) break;
      clean = clean && clean_error(sid.error());
      if (!clean || sid.error() == Errc::no_name_server) break;
      co_await sim::delay(500_us);
    }

    Result<XpmemGrant> grant{Errc::unreachable};
    Result<XpmemAttachment> att{Errc::unreachable};
    if (clean && sid.ok()) {
      for (int i = 0; i < 120; ++i) {
        grant = co_await ck1.xpmem_get(sid.value());
        if (grant.ok()) {
          att = co_await ck1.xpmem_attach(*up, grant.value(), 0, 64_KiB);
          if (att.ok()) break;
          clean = clean && clean_error(att.error());
          (void)co_await ck1.xpmem_release(grant.value());
          grant = Errc::unreachable;
        } else {
          clean = clean && clean_error(grant.error());
          if (grant.error() == Errc::no_name_server) break;
        }
        if (!clean) break;
        co_await sim::delay(500_us);
      }
    }
    if (att.ok()) {
      co_await node.enclave("ck1").touch_attached(*up, att.value().va,
                                                  att.value().pages);
      std::vector<u8> got(pattern.size());
      clean = node.enclave("ck1")
                  .proc_read(*up, att.value().va, got.data(), got.size())
                  .ok() &&
              got == pattern && clean;

      Result<void> d{Errc::unreachable};
      for (int i = 0; i < 240; ++i) {
        d = co_await ck1.xpmem_detach(*up, att.value());
        if (d.ok() || d.error() == Errc::not_attached) break;
        clean = clean && clean_error(d.error());
        if (!clean) break;
        co_await sim::delay(500_us);
      }
      clean = clean && (d.ok() || d.error() == Errc::not_attached);
    }
    if (grant.ok()) (void)co_await ck1.xpmem_release(grant.value());
    if (sid.ok()) {
      Result<void> rm{Errc::unreachable};
      for (int i = 0; i < 240; ++i) {
        rm = co_await ck2.xpmem_remove(*op, sid.value());
        if (rm.ok() || rm.error() == Errc::no_such_segid) break;
        clean = clean && (clean_error(rm.error()) || rm.error() == Errc::busy);
        if (!clean) break;
        co_await sim::delay(500_us);
      }
      clean = clean && (rm.ok() || rm.error() == Errc::no_such_segid);
    }

    // Pins and frame refs must drain no matter where the NS died.
    clean = clean && ck1.pinned_frames() == 0 && ck2.pinned_frames() == 0 &&
            node.machine().pmem().total_refs() == 0;

    XememKernel* ns =
        ck1.is_name_server() ? &ck1 : (ck2.is_name_server() ? &ck2 : nullptr);
    row.promoted = ns != nullptr;
    if (ns != nullptr) {
      // Post-recovery proof: an epoch-2 segid round-trips data.
      XememKernel* peer = ns == &ck1 ? &ck2 : &ck1;
      os::Enclave& ns_os = node.enclave(ns == &ck1 ? "ck1" : "ck2");
      os::Enclave& peer_os = node.enclave(ns == &ck1 ? "ck2" : "ck1");
      os::Process* np = ns_os.create_process(1_MiB).value();
      os::Process* pp = ns == &ck1 ? up : op;
      std::vector<u8> fresh(4_KiB);
      for (size_t i = 0; i < fresh.size(); ++i) fresh[i] = u8(i * 17 + 3);
      clean = ns_os.proc_write(*np, np->image_base(), fresh.data(),
                               fresh.size())
                  .ok() &&
              clean;
      auto nsid = co_await ns->xpmem_make(*np, np->image_base(), 4_KiB);
      clean = clean && nsid.ok() &&
              segid_epoch(nsid.value()) == ns->ns_epoch() && ns->ns_epoch() >= 2;
      Result<XpmemGrant> g2{Errc::unreachable};
      Result<XpmemAttachment> a2{Errc::unreachable};
      if (clean) {
        for (int i = 0; i < 240; ++i) {
          g2 = co_await peer->xpmem_get(nsid.value());
          if (g2.ok()) {
            a2 = co_await peer->xpmem_attach(*pp, g2.value(), 0, 4_KiB);
            if (a2.ok()) break;
            (void)co_await peer->xpmem_release(g2.value());
            g2 = Errc::unreachable;
          }
          co_await sim::delay(500_us);
        }
      }
      if (a2.ok()) {
        co_await peer_os.touch_attached(*pp, a2.value().va, a2.value().pages);
        std::vector<u8> got(fresh.size());
        clean = peer_os.proc_read(*pp, a2.value().va, got.data(), got.size())
                    .ok() &&
                got == fresh && clean;
        clean = (co_await peer->xpmem_detach(*pp, a2.value())).ok() && clean;
        clean = (co_await peer->xpmem_release(g2.value())).ok() && clean;
      } else {
        clean = false;
      }
      clean = clean && node.machine().pmem().total_refs() == 0;
      row.recovery_us =
          static_cast<double>(ns->stats().recovery_latency) / 1000.0;
      row.epoch_rejects = ns->stats().epoch_rejects;
      row.reregistrations = ns->stats().reregistrations;
    }
    row.retries = ck1.stats().retries + ck2.stats().retries;
    row.ns_requests = mgmt.stats().ns_requests;
    row.sim_ms = static_cast<double>(sim::now()) / 1e6;
    row.converged = clean;
  };
  eng.run(main());
  return row;
}

void print_rows(const std::vector<Row>& rows) {
  std::printf("%10s %9s %8s %11s %12s %7s %7s %9s %7s\n", "crashpoint",
              "converged", "failover", "recovery_us", "epoch_rejects", "rereg",
              "retries", "ns_reqs", "sim_ms");
  for (const auto& r : rows) {
    std::printf("%10llu %9s %8s %11.1f %12llu %7llu %7llu %9llu %7.1f\n",
                static_cast<unsigned long long>(r.crashpoint),
                r.converged ? "yes" : "NO", r.promoted ? "yes" : "no",
                r.recovery_us, static_cast<unsigned long long>(r.epoch_rejects),
                static_cast<unsigned long long>(r.reregistrations),
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.ns_requests), r.sim_ms);
  }
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                bool passed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_ns_failover\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        f,
        "    {\"crashpoint\": %llu, \"converged\": %s, \"failover\": %s, "
        "\"recovery_us\": %.2f, \"epoch_rejects\": %llu, "
        "\"reregistrations\": %llu, \"retries\": %llu, "
        "\"ns_requests\": %llu, \"sim_ms\": %.3f}%s\n",
        static_cast<unsigned long long>(r.crashpoint),
        r.converged ? "true" : "false", r.promoted ? "true" : "false",
        r.recovery_us, static_cast<unsigned long long>(r.epoch_rejects),
        static_cast<unsigned long long>(r.reregistrations),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.ns_requests), r.sim_ms,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"all_checks_passed\": %s\n}\n",
               passed ? "true" : "false");
  std::fclose(f);
}

}  // namespace
}  // namespace xemem

int main(int argc, char** argv) {
  using namespace xemem;
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::header(
      "Ablation: name-service failover (crashpoint sweep)",
      "the name server is the one centralized component; this sweep kills "
      "it before every command it would process and checks that the "
      "epoch-guarded standby promotion converges: ops complete or fail "
      "cleanly, pins drain, and post-recovery attaches round-trip data "
      "through segids minted in the new epoch");

  // Baseline (k = 0) sizes the sweep: the boot NS's command count bounds
  // the interesting crashpoints.
  std::vector<Row> rows;
  rows.push_back(run_case(0));
  const u64 total = rows[0].ns_requests;
  const u64 stride = quick ? 4 : 1;
  for (u64 k = 1; k <= total + 2; k += stride) rows.push_back(run_case(k));
  print_rows(rows);

  std::printf("\nshape checks:\n");
  bench::ShapeChecks checks;
  checks.expect(total > 4, "baseline exercises the name server");
  checks.expect(!rows[0].promoted && rows[0].epoch_rejects == 0 &&
                    rows[0].reregistrations == 0,
                "pay-for-use: no failover machinery fires in the baseline");
  bool all_converged = true;
  u64 promotions = 0;
  double max_recovery_us = 0;
  for (const auto& r : rows) {
    all_converged = all_converged && r.converged;
    if (r.promoted) {
      ++promotions;
      if (r.recovery_us > max_recovery_us) max_recovery_us = r.recovery_us;
    }
  }
  checks.expect(all_converged, "every crashpoint converges (no hang, no leak)");
  checks.expect(promotions > 0, "the sweep exercises actual promotions");
  checks.expect(max_recovery_us > 0,
                "promoted runs measure a nonzero recovery latency");
  // A very early crashpoint can promote before any non-standby survivor
  // owns an export (nothing to replay), so the replay requirement holds
  // over the sweep, not per row.
  u64 max_rereg = 0;
  for (const auto& r : rows) {
    if (r.promoted && r.reregistrations > max_rereg) {
      max_rereg = r.reregistrations;
    }
  }
  checks.expect(max_rereg >= 1,
                "promotions after an export exists absorb survivor replays");

  if (!json_path.empty()) {
    write_json(json_path, rows, checks.all_passed());
    std::printf("\njson written to %s\n", json_path.c_str());
  }
  return checks.exit_code();
}
