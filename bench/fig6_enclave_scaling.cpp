// Figure 6: Scalability of multi-OS/R shared memory.
//
// Paper setup (section 5.3): 1, 2, 4, or 8 Kitten co-kernel enclaves, each
// on one core with 1.5 GB of memory, each exporting regions of
// 128 MB - 1 GB. One Linux process per enclave attaches to that enclave's
// region in a 1:1 pattern, all concurrently.
//
// Paper result: throughput stays ~13 GB/s as enclaves scale, with a small
// dip from 1 to 2 enclaves (attributed to core-0 IPI serialization in the
// Pisces channel plus contention on shared Linux mm structures) and flat
// behaviour beyond 2 — i.e. no scalability bottleneck in the name server
// or routing protocol.
#include "bench_util.hpp"
#include "workloads/insitu.hpp"
#include "xemem/system.hpp"

namespace xemem {
namespace {

double run_config(u32 enclaves, u64 region_bytes, int reps) {
  sim::Engine eng(31337 + enclaves);
  Node node(hw::Machine::r420());
  // Management enclave: service core 0; attacher processes get their own
  // cores (socket-1 cores; enclave *memory* stays on socket 0, matching
  // the paper's single-NUMA memory discipline).
  auto& mgmt = node.add_linux_mgmt(
      "linux", 0, {0, 1, 2, 3, 12, 13, 14, 15, 16, 17, 18, 19});
  for (u32 i = 0; i < enclaves; ++i) {
    node.add_cokernel("k" + std::to_string(i), 0, {4 + i},
                      region_bytes + (64ull << 20));
  }

  RunningStats per_attacher_gbps;
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();

    struct Pair {
      os::Process* exporter;
      os::Process* attacher;
      Segid segid;
    };
    std::vector<Pair> pairs(enclaves);
    for (u32 i = 0; i < enclaves; ++i) {
      auto& ck = node.enclave("k" + std::to_string(i));
      pairs[i].exporter = ck.create_process(region_bytes + kPageSize).value();
      pairs[i].attacher = node.enclave("linux")
                              .create_process(1ull << 20,
                                              &node.machine().core(12 + i))
                              .value();
      auto sid = co_await node.kernel("k" + std::to_string(i))
                     .xpmem_make(*pairs[i].exporter,
                                 pairs[i].exporter->image_base(), region_bytes);
      XEMEM_ASSERT(sid.ok());
      pairs[i].segid = sid.value();
    }

    // All attachers run concurrently (the contention is the experiment).
    sim::Barrier done(enclaves + 1);
    auto attacher_loop = [&](u32 i) -> sim::Task<void> {
      auto grant = co_await mgmt.xpmem_get(pairs[i].segid);
      XEMEM_ASSERT(grant.ok());
      u64 attach_ns = 0;  // the paper's metric: attachment throughput only
      for (int r = 0; r < reps; ++r) {
        const u64 t0 = sim::now();
        auto att = co_await mgmt.xpmem_attach(*pairs[i].attacher, grant.value(), 0,
                                              region_bytes);
        attach_ns += sim::now() - t0;
        XEMEM_ASSERT(att.ok());
        XEMEM_ASSERT(
            (co_await mgmt.xpmem_detach(*pairs[i].attacher, att.value())).ok());
      }
      per_attacher_gbps.add(gb_per_s(region_bytes * static_cast<u64>(reps), attach_ns));
      co_await done.arrive_and_wait();
    };
    for (u32 i = 0; i < enclaves; ++i) {
      sim::Engine::current()->spawn(attacher_loop(i));
    }
    co_await done.arrive_and_wait();
  };
  eng.run(main());
  return per_attacher_gbps.mean();
}

}  // namespace
}  // namespace xemem

int main() {
  using namespace xemem;
  const int reps = bench::runs_override(5);
  bench::header(
      "Figure 6: Cross-enclave throughput vs number of co-kernel enclaves",
      "~13 GB/s per attacher for all sizes; slight dip from 1 to 2 enclaves "
      "(core-0 IPI + Linux mm contention), flat beyond 2");

  const u64 sizes[] = {128ull << 20, 256ull << 20, 512ull << 20, 1024ull << 20};
  const u32 counts[] = {1, 2, 4, 8};

  std::printf("%-10s %10s %10s %10s %10s   (GB/s per attacher)\n", "enclaves",
              "128MB", "256MB", "512MB", "1GB");
  double grid[4][4];
  for (int e = 0; e < 4; ++e) {
    std::printf("%-10u", counts[e]);
    for (int s = 0; s < 4; ++s) {
      grid[e][s] = run_config(counts[e], sizes[s], reps);
      std::printf(" %10.2f", grid[e][s]);
    }
    std::printf("\n");
  }

  std::printf("\nshape checks:\n");
  bench::ShapeChecks checks;
  // Attach throughput in the paper's band for every cell.
  bool in_band = true;
  for (auto& row : grid) {
    for (double v : row) in_band = in_band && v > 10.0 && v < 15.0;
  }
  checks.expect(in_band, "every configuration stays in the 10-15 GB/s band");
  checks.expect(grid[1][3] < grid[0][3],
                "1 -> 2 enclaves shows the contention dip (1 GB column)");
  const double dip = (grid[0][3] - grid[1][3]) / grid[0][3];
  checks.expect(dip > 0.01 && dip < 0.20, "the dip is modest (1-20%)");
  checks.expect(grid[3][3] > 0.95 * grid[1][3],
                "no further degradation from 2 to 8 enclaves (scalable)");
  return checks.exit_code();
}
