// Micro-benchmarks (google-benchmark) for the data structures whose real
// structural work drives the simulator's cost model:
//
//  * red-black tree insert/find/erase (the Palacios memory map) vs the
//    radix alternative — the host-CPU analogue of the section 5.4 effect;
//  * 4-level page-table map/translate (every attachment's exporter walk
//    and attacher map);
//  * frame-zone allocation policies;
//  * CG iteration and STREAM pass (the real arithmetic inside the in-situ
//    workload);
//  * aligned frame allocation and large-page mapping (ablation C support).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "hw/phys_mem.hpp"
#include "mm/page_table.hpp"
#include "palacios/memory_map.hpp"
#include "palacios/rbtree.hpp"
#include "workloads/hpccg.hpp"
#include "workloads/stream.hpp"

namespace xemem {
namespace {

void BM_RbTreeInsert(benchmark::State& state) {
  const u64 n = static_cast<u64>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    palacios::RbTree<u64, u64> tree;
    state.ResumeTiming();
    for (u64 i = 0; i < n; ++i) tree.insert(i * kPageSize, i);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_RbTreeInsert)->Range(1 << 10, 1 << 18);

void BM_RadixInsert(benchmark::State& state) {
  const u64 n = static_cast<u64>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    palacios::GuestMemoryMap map(palacios::MapBackend::radix);
    state.ResumeTiming();
    for (u64 i = 0; i < n; ++i) {
      (void)map.insert_region(GuestPaddr{i * kPageSize}, HostPaddr{i * kPageSize},
                              kPageSize);
    }
    benchmark::DoNotOptimize(map.entries());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_RadixInsert)->Range(1 << 10, 1 << 18);

void BM_RbTreeFind(benchmark::State& state) {
  palacios::RbTree<u64, u64> tree;
  const u64 n = static_cast<u64>(state.range(0));
  for (u64 i = 0; i < n; ++i) tree.insert(i, i);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(rng.uniform_u64(n)));
  }
}
BENCHMARK(BM_RbTreeFind)->Range(1 << 10, 1 << 18);

void BM_PageTableMapRange(benchmark::State& state) {
  const u64 pages = static_cast<u64>(state.range(0));
  std::vector<Pfn> pfns;
  for (u64 i = 0; i < pages; ++i) pfns.push_back(Pfn{i * 2});
  for (auto _ : state) {
    state.PauseTiming();
    mm::PageTable pt;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        pt.map_range(Vaddr{0x10000000}, pfns, mm::PageFlags::writable).ok());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(pages));
}
BENCHMARK(BM_PageTableMapRange)->Range(1 << 10, 1 << 16);

void BM_PageTableTranslateRange(benchmark::State& state) {
  const u64 pages = static_cast<u64>(state.range(0));
  mm::PageTable pt;
  std::vector<Pfn> pfns;
  for (u64 i = 0; i < pages; ++i) pfns.push_back(Pfn{i * 2});
  (void)pt.map_range(Vaddr{0x10000000}, pfns, mm::PageFlags::writable);
  for (auto _ : state) {
    auto r = pt.translate_range(Vaddr{0x10000000}, pages);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(pages));
}
BENCHMARK(BM_PageTableTranslateRange)->Range(1 << 10, 1 << 16);

void BM_FrameZoneAlloc(benchmark::State& state) {
  const bool scattered = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    hw::FrameZone zone(Pfn{0}, 1 << 20);
    state.ResumeTiming();
    auto r = zone.alloc(1 << 16,
                        scattered ? hw::AllocPolicy::scattered
                                  : hw::AllocPolicy::contiguous);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_FrameZoneAlloc)->Arg(0)->Arg(1);

void BM_CgIteration(benchmark::State& state) {
  const u32 g = static_cast<u32>(state.range(0));
  workloads::CgSolver cg(workloads::CgSolver::Grid{g, g, g});
  for (auto _ : state) {
    if (cg.residual_norm() < 1e-10) cg.reset();
    benchmark::DoNotOptimize(cg.iterate());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(cg.flops_per_iteration()));
}
BENCHMARK(BM_CgIteration)->Arg(8)->Arg(12)->Arg(16);

void BM_StreamPass(benchmark::State& state) {
  workloads::Stream stream(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    stream.pass();
    benchmark::DoNotOptimize(stream.checksum());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(state.range(0)) * 8 * 10);
}
BENCHMARK(BM_StreamPass)->Range(1 << 12, 1 << 18);

void BM_FrameZoneAlignedAlloc(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    hw::FrameZone zone(Pfn{3}, 1 << 20);
    state.ResumeTiming();
    auto r = zone.alloc_contiguous_aligned(1 << 16, 512);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_FrameZoneAlignedAlloc);

void BM_PageTableMapRangeBest_Large(benchmark::State& state) {
  const u64 pages = static_cast<u64>(state.range(0));
  std::vector<Pfn> pfns;
  for (u64 i = 0; i < pages; ++i) pfns.push_back(Pfn{1 << 20} + i);
  for (auto _ : state) {
    state.PauseTiming();
    mm::PageTable pt;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        pt.map_range_best(Vaddr{0x40000000}, pfns, mm::PageFlags::writable).ok());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(pages));
}
BENCHMARK(BM_PageTableMapRangeBest_Large)->Range(1 << 12, 1 << 16);

}  // namespace
}  // namespace xemem

BENCHMARK_MAIN();
