// Baseline comparison: local-node sharing mechanisms (paper sections 2, 3.3).
//
// The paper positions XEMEM against two single-OS/R mechanisms:
//
//  * SMARTMAP (Kitten): shared top-level page-table entries give O(1)
//    setup and zero-copy access — but only between processes of one
//    lightweight kernel, which is why Kitten *keeps* SMARTMAP for local
//    sharing while XEMEM handles cross-enclave sharing.
//  * KNEM (Linux): kernel-assisted single-copy transfers — no mapping
//    setup, but every byte moved pays a copy.
//  * XEMEM local attachments: per-page mapping setup (amortized across
//    uses), then zero-copy access.
//
// The harness reports setup cost and per-use cost for each mechanism, and
// the break-even number of uses where XEMEM's dynamic mapping beats KNEM's
// copies — quantifying the design argument of section 3.3.
#include "bench_util.hpp"
#include "os/knem.hpp"
#include "workloads/insitu.hpp"
#include "xemem/system.hpp"

namespace xemem {
namespace {

struct Row {
  double smartmap_setup_us;
  double xemem_setup_us;
  double knem_per_copy_us;
  double xemem_per_use_us;  // one full read pass through the mapping
};

Row run_size(u64 bytes) {
  sim::Engine eng(12);
  Node node(hw::Machine::r420());
  auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  node.add_cokernel("kitten0", 0, {6, 7}, bytes + (64ull << 20));

  Row row{};
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    auto* kitten = static_cast<os::KittenEnclave*>(&node.enclave("kitten0"));
    auto& linux_os = node.enclave("linux");

    // --- SMARTMAP: O(1) aliasing between two Kitten processes.
    os::Process* ka = kitten->create_process(bytes + kPageSize).value();
    os::Process* kb = kitten->create_process(1ull << 20).value();
    (void)kb;
    const u64 t0 = sim::now();
    co_await node.machine().core(7).compute(os::KittenEnclave::kSmartmapSetupCost);
    row.smartmap_setup_us = static_cast<double>(sim::now() - t0) / 1000.0;
    // (access through the window is plain zero-copy afterwards)
    XEMEM_ASSERT(
        kitten->smartmap_resolve(os::KittenEnclave::smartmap_va(*ka, ka->image_base()))
            .first == ka);

    // --- XEMEM local attachment within the Linux enclave.
    os::Process* la = linux_os.create_process(bytes + kPageSize).value();
    os::Process* lb = linux_os.create_process(1ull << 20).value();
    auto sid = co_await mgmt.xpmem_make(*la, la->image_base(), bytes);
    auto grant = co_await mgmt.xpmem_get(sid.value());
    const u64 t1 = sim::now();
    auto att = co_await mgmt.xpmem_attach(*lb, grant.value(), 0, bytes);
    XEMEM_ASSERT(att.ok());
    co_await linux_os.touch_attached(*lb, att.value().va, att.value().pages);
    row.xemem_setup_us = static_cast<double>(sim::now() - t1) / 1000.0;
    // Per-use cost: stream the region once through the zero-copy mapping.
    const u64 t2 = sim::now();
    co_await linux_os.membw().transfer(bytes);
    row.xemem_per_use_us = static_cast<double>(sim::now() - t2) / 1000.0;

    // --- KNEM single-copy between the same two Linux processes.
    os::KnemService knem(linux_os);
    auto cookie = knem.declare(*la, la->image_base(), bytes);
    XEMEM_ASSERT(cookie.ok());
    const u64 t3 = sim::now();
    auto cp = co_await knem.copy_from(cookie.value(), 0, bytes, *lb,
                                      lb->image_base());
    XEMEM_ASSERT(cp.ok());
    row.knem_per_copy_us = static_cast<double>(sim::now() - t3) / 1000.0;
  };
  eng.run(main());
  return row;
}

}  // namespace
}  // namespace xemem

int main() {
  using namespace xemem;
  bench::header(
      "Baseline: local-node sharing mechanisms (SMARTMAP / XEMEM / KNEM)",
      "SMARTMAP setup is O(1); XEMEM setup is per-page but amortizes into "
      "zero-copy use; KNEM pays a copy per transfer (sections 2, 3.3)");

  const u64 sizes[] = {64ull << 10, 1ull << 20, 16ull << 20, 256ull << 20};
  std::printf("%-10s %18s %16s %16s %16s %12s\n", "size", "smartmap_setup_us",
              "xemem_setup_us", "xemem_use_us", "knem_copy_us", "break_even");
  Row rows[4];
  for (int i = 0; i < 4; ++i) {
    rows[i] = run_size(sizes[i]);
    // Uses after which attach+N zero-copy passes beat N single copies.
    const double be = rows[i].xemem_setup_us /
                      std::max(rows[i].knem_per_copy_us - rows[i].xemem_per_use_us,
                               1e-9);
    std::printf("%-10llu %18.3f %16.1f %16.1f %16.1f %12.1f\n",
                static_cast<unsigned long long>(sizes[i] >> 10), // KiB
                rows[i].smartmap_setup_us, rows[i].xemem_setup_us,
                rows[i].xemem_per_use_us, rows[i].knem_per_copy_us, be);
  }
  std::printf("(size in KiB; break_even = uses after which XEMEM's mapping "
              "amortizes against KNEM copies)\n");

  std::printf("\nshape checks:\n");
  bench::ShapeChecks checks;
  checks.expect(rows[3].smartmap_setup_us == rows[0].smartmap_setup_us,
                "SMARTMAP setup is size-independent (one top-level entry)");
  checks.expect(rows[3].xemem_setup_us > 100 * rows[0].xemem_setup_us,
                "XEMEM setup scales with region size (per-page mapping)");
  checks.expect(rows[3].knem_per_copy_us > 2 * rows[3].xemem_per_use_us,
                "KNEM pays ~2x the traffic of zero-copy use at large sizes");
  const double be_large = rows[3].xemem_setup_us /
                          (rows[3].knem_per_copy_us - rows[3].xemem_per_use_us);
  checks.expect(be_large < 20,
                "XEMEM amortizes within a few uses even for 256 MiB regions");
  return checks.exit_code();
}
