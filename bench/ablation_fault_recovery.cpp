// Ablation: protocol behavior under deterministic channel faults.
//
// The paper's deployments (section 7) run composed applications for hours
// across independently-managed enclaves; the protocol layer must tolerate
// lost or duplicated channel messages without wedging an attach or leaking
// pins. This harness sweeps a uniform message-loss rate over the standard
// mgmt+co-kernel topology and measures attach latency, goodput, and the
// retry/dedup work the recovery machinery performs. Zero loss must cost
// zero retries (the fault layer and dedup caches are pay-for-use).
#include "bench_util.hpp"
#include "xemem/fault.hpp"
#include "xemem/system.hpp"

namespace xemem {
namespace {

constexpr u64 kRegion = 8ull << 20;  // 8 MiB per attach
constexpr int kIterations = 30;

struct LossResult {
  double attach_us_mean{0};   // mean attach round-trip, microseconds
  double goodput_gbps{0};     // attached bytes / total wall time
  u64 retries{0};             // requester-side re-sends after timeout
  u64 dup_suppressed{0};      // replays answered from dedup caches
  u64 dropped{0};             // messages the injector swallowed
  bool completed{false};      // every op eventually succeeded
};

LossResult run_loss(double loss, u64 seed) {
  sim::Engine eng(9000 + seed);
  Node node(hw::Machine::r420());
  // Tight policy so retries resolve in simulated milliseconds; generous
  // retry budget so even 20% loss converges deterministically.
  KernelConfig cfg;
  cfg.request_timeout = 1_ms;
  cfg.max_retries = 8;
  cfg.backoff_base = 100_us;
  cfg.backoff_max = 1_ms;
  node.set_kernel_config(cfg);
  if (loss > 0.0) node.enable_fault_injection(FaultSpec::loss(loss), seed);
  auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& ck = node.add_cokernel("ck", 0, {6, 7}, 256_MiB);

  LossResult out;
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* owner = node.enclave("ck").create_process(kRegion + kPageSize).value();
    os::Process* user = node.enclave("linux").create_process(1_MiB).value();
    auto sid = co_await ck.xpmem_make(*owner, owner->image_base(), kRegion);
    XEMEM_ASSERT(sid.ok());
    auto grant = co_await mgmt.xpmem_get(sid.value());
    XEMEM_ASSERT(grant.ok());

    const u64 t_begin = sim::now();
    u64 attach_ns_total = 0;
    bool ok = true;
    for (int i = 0; i < kIterations; ++i) {
      const u64 t0 = sim::now();
      auto att = co_await mgmt.xpmem_attach(*user, grant.value(), 0, kRegion);
      attach_ns_total += sim::now() - t0;
      ok = ok && att.ok();
      if (att.ok()) ok = (co_await mgmt.xpmem_detach(*user, att.value())).ok() && ok;
    }
    const u64 wall = sim::now() - t_begin;

    out.completed = ok;
    out.attach_us_mean =
        static_cast<double>(attach_ns_total) / kIterations / 1000.0;
    out.goodput_gbps = gb_per_s(kRegion * static_cast<u64>(kIterations), wall);
    out.retries = mgmt.stats().retries + ck.stats().retries;
    out.dup_suppressed = mgmt.stats().dup_suppressed + ck.stats().dup_suppressed;
    for (const auto& ep : node.faulty_endpoints()) out.dropped += ep->fault_stats().dropped;
  };
  eng.run(main());
  return out;
}

}  // namespace
}  // namespace xemem

int main() {
  using namespace xemem;
  bench::header(
      "Ablation: attach latency and goodput under channel message loss",
      "recovery is retry/backoff + idempotent replay (dedup caches); zero "
      "loss pays zero overhead, and latency degrades with loss rate instead "
      "of wedging");

  const double losses[] = {0.0, 0.05, 0.10, 0.20};
  LossResult res[4];
  std::printf("%-8s %14s %14s %10s %10s %10s %10s\n", "loss", "attach_us",
              "goodput_gbps", "retries", "dup_supp", "dropped", "done");
  for (int i = 0; i < 4; ++i) {
    res[i] = run_loss(losses[i], /*seed=*/77);
    std::printf("%-8.2f %14.1f %14.2f %10llu %10llu %10llu %10s\n", losses[i],
                res[i].attach_us_mean, res[i].goodput_gbps,
                static_cast<unsigned long long>(res[i].retries),
                static_cast<unsigned long long>(res[i].dup_suppressed),
                static_cast<unsigned long long>(res[i].dropped),
                res[i].completed ? "yes" : "NO");
  }

  std::printf("\nshape checks:\n");
  bench::ShapeChecks checks;
  bool all_done = true;
  for (const auto& r : res) all_done = all_done && r.completed;
  checks.expect(all_done, "every workload completes at every loss rate");
  checks.expect(res[0].retries == 0 && res[0].dropped == 0,
                "zero loss costs zero retries (recovery is pay-for-use)");
  bool lossy_retries = true;
  for (int i = 1; i < 4; ++i) lossy_retries = lossy_retries && res[i].retries > 0;
  checks.expect(lossy_retries, "lossy channels recover via retries");
  checks.expect(res[3].attach_us_mean > res[0].attach_us_mean,
                "loss costs latency (timeout + backoff), visibly at 20%");
  checks.expect(res[3].goodput_gbps < res[0].goodput_gbps,
                "goodput degrades with loss instead of wedging to zero");

  // Determinism spot check: the same seed reproduces the 10% row exactly.
  const LossResult again = run_loss(0.10, /*seed=*/77);
  checks.expect(again.retries == res[2].retries &&
                    again.attach_us_mean == res[2].attach_us_mean,
                "fault schedule is deterministic per seed");
  return checks.exit_code();
}
