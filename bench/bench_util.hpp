// Shared support for the experiment harnesses: paper-style table output,
// run-count control, and common topology builders.
//
// Each bench binary regenerates one table or figure of the paper and
// prints (a) the measured series, (b) the paper's reference values, and
// (c) PASS/FAIL qualitative shape checks. Set XEMEM_BENCH_RUNS to override
// the per-configuration repetition count (the simulator is deterministic
// given a seed, so repetitions exist to sample the seeded noise models,
// not hardware jitter).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace xemem::bench {

inline int runs_override(int default_runs) {
  if (const char* env = std::getenv("XEMEM_BENCH_RUNS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return default_runs;
}

inline void header(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper reference: %s\n\n", paper_ref);
}

/// A qualitative shape assertion, reported PASS/FAIL (benches exit nonzero
/// if any check fails, so CI catches shape regressions).
class ShapeChecks {
 public:
  void expect(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) failed_ = true;
  }
  bool all_passed() const { return !failed_; }
  int exit_code() const { return failed_ ? 1 : 0; }

 private:
  bool failed_{false};
};

}  // namespace xemem::bench
