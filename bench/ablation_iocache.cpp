// Ablation: cross-enclave burst-buffer I/O cache (DESIGN.md §11).
//
// Sweeps the replay families (checkpoint / dl_training / scan) over client
// count and cache capacity and reports, per cell: hit rate, attach rate,
// and warm-vs-cold access latency. The qualitative shapes this must
// reproduce: warm accesses (cached attachment, no fetch) are far cheaper
// than cold ones (backing-store latency + bandwidth); the DL-training
// family's hit rate responds to capacity (hot set resident vs thrashing);
// the streaming scan family gets little from any capacity. A second
// section measures the batched-lease-renewal satellite: total heartbeat
// messages per enclave with per-shard renewals vs one batched message per
// peer carrying the shard list.
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "iocache/cache.hpp"
#include "iocache/replay.hpp"
#include "xemem/system.hpp"

namespace xemem {
namespace {

using iocache::BackingStore;
using iocache::CacheClient;
using iocache::CacheServer;
using iocache::Family;
using iocache::family_name;

struct Row {
  Family family{Family::checkpoint};
  u32 clients{0};
  u64 capacity{0};
  u64 ops{0};
  double hit_rate{0};
  double attaches_per_sec{0};
  double warm_p50_ns{0};
  double cold_p50_ns{0};
  u64 store_reads{0};
  u64 store_writes{0};
  double sim_ms{0};
  bool clean{false};
};

KernelConfig cache_kernel_config() {
  KernelConfig cfg;
  cfg.request_timeout = 1_ms;
  cfg.max_retries = 3;
  cfg.backoff_base = 100_us;
  cfg.backoff_max = 400_us;
  cfg.lease_duration = 5_ms;
  return cfg;
}

/// Replays one rank's trace through its cache client.
sim::Task<void> drive_rank(CacheClient* c, std::vector<iocache::ReplayOp> trace,
                           u64 rank, bool* clean, u32* pending,
                           sim::Event* done) {
  u64 next_stamp = (rank + 1) * 1000000;
  for (const auto& op : trace) {
    if (op.is_write) {
      if (!(co_await c->write(op.block, next_stamp++)).ok()) *clean = false;
    } else {
      if (!(co_await c->read(op.block)).ok()) *clean = false;
    }
  }
  if (--*pending == 0) done->set();
}

Row run_cell(Family family, u32 nclients, u64 capacity, u64 file_blocks,
             u64 ops_per_rank) {
  Row row;
  row.family = family;
  row.clients = nclients;
  row.capacity = capacity;

  iocache::Config io;
  io.file_blocks = file_blocks;
  io.capacity_blocks = capacity;
  io.block_bytes = 16_KiB;
  io.num_clients = nclients;
  io.block_lease = 200_us;

  sim::Engine eng(4242);  // same seed for every cell: only the knobs move
  Node node(hw::Machine::r420());
  node.set_kernel_config(cache_kernel_config());
  node.add_linux_mgmt("linux", 0, {0, 1});
  node.add_cokernel("srv0", 0, {2, 3}, 1_GiB);
  for (u32 c = 0; c < nclients; ++c) {
    node.add_cokernel("cli" + std::to_string(c), 0, {4 + c}, 256_MiB);
  }
  BackingStore store(file_blocks, 42);

  iocache::ReplayParams rp;
  rp.file_blocks = file_blocks;
  rp.ops_per_rank = ops_per_rank;
  rp.seed = 7;

  auto main = [&]() -> sim::Task<void> {
    bool clean = true;
    co_await node.start();
    CacheServer srv(node.kernel("srv0"), node.enclave("srv0"), 0, io, store);
    std::vector<std::unique_ptr<CacheClient>> cls;
    for (u32 c = 0; c < nclients; ++c) {
      const std::string n = "cli" + std::to_string(c);
      cls.push_back(std::make_unique<CacheClient>(node.kernel(n),
                                                  node.enclave(n), c, io));
      clean = (co_await cls.back()->start()).ok() && clean;
    }
    clean = (co_await srv.start()).ok() && clean;

    const sim::TimePoint t0 = sim::now();
    u32 pending = nclients;
    sim::Event done;
    for (u32 c = 0; c < nclients; ++c) {
      sim::Engine::current()->spawn(
          drive_rank(cls[c].get(), iocache::make_trace(family, c, nclients, rp),
                     c, &clean, &pending, &done));
    }
    co_await done.wait();
    const double window_ns = static_cast<double>(sim::now() - t0);

    u64 ops = 0;
    u64 hits = 0;
    u64 attaches = 0;
    Samples warm;
    Samples cold;
    for (auto& c : cls) {
      auto& m = c->metrics();
      ops += m.ops;
      hits += m.hits;
      attaches += m.attaches;
      for (double x : m.warm_ns.values()) warm.add(x);
      for (double x : m.cold_ns.values()) cold.add(x);
    }
    row.ops = ops;
    row.hit_rate =
        ops ? static_cast<double>(hits) / static_cast<double>(ops) : 0.0;
    row.attaches_per_sec =
        window_ns > 0 ? static_cast<double>(attaches) * 1e9 / window_ns : 0.0;
    row.warm_p50_ns = warm.empty() ? 0.0 : warm.percentile(50);
    row.cold_p50_ns = cold.empty() ? 0.0 : cold.percentile(50);

    for (auto& c : cls) co_await c->shutdown();
    clean = (co_await srv.stop()).ok() && clean;
    clean = clean && node.kernel("srv0").pinned_frames() == 0;
    for (u32 c = 0; c < nclients; ++c) {
      clean =
          clean && node.kernel("cli" + std::to_string(c)).pinned_frames() == 0;
    }
    row.store_reads = store.reads();
    row.store_writes = store.writes();
    row.sim_ms = static_cast<double>(sim::now()) / 1e6;
    row.clean = clean;
  };
  eng.run(main());
  return row;
}

/// Batched-lease-renewal ablation: total heartbeat messages across the
/// node with three NS shards replicated on two enclaves, idle for a fixed
/// window; per-shard renewals vs one batched message per peer. Returns
/// {heartbeat messages sent, leases expired}.
std::pair<u64, u64> run_renewal(bool batched) {
  KernelConfig cfg = cache_kernel_config();
  cfg.enable_ns_sharding({{1, 2}, {1, 2}, {1, 2}});
  if (batched) cfg.enable_heartbeat_batching();
  sim::Engine eng(808);
  Node node(hw::Machine::r420());
  node.set_kernel_config(cfg);
  node.add_linux_mgmt("linux", 0, {0, 1});
  node.add_cokernel("cka", 0, {2, 3}, 256_MiB);
  node.add_cokernel("ckb", 0, {4, 5}, 256_MiB);
  u64 sent = 0;
  u64 expired = 0;
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    co_await sim::delay(40_ms);
    for (const char* n : {"linux", "cka", "ckb"}) {
      sent += node.kernel(n).stats().heartbeats_sent;
      expired += node.kernel(n).stats().leases_expired;
    }
  };
  eng.run(main());
  return {sent, expired};
}

void print_rows(const std::vector<Row>& rows) {
  std::printf("%12s %8s %9s %6s %9s %12s %12s %12s %8s %9s %6s\n", "family",
              "clients", "capacity", "ops", "hit_rate", "attach_per_s",
              "warm_p50_ns", "cold_p50_ns", "pfs_rd", "pfs_wr", "clean");
  for (const auto& r : rows) {
    std::printf(
        "%12s %8u %9llu %6llu %9.3f %12.0f %12.0f %12.0f %8llu %9llu %6s\n",
        family_name(r.family), r.clients,
        static_cast<unsigned long long>(r.capacity),
        static_cast<unsigned long long>(r.ops), r.hit_rate, r.attaches_per_sec,
        r.warm_p50_ns, r.cold_p50_ns,
        static_cast<unsigned long long>(r.store_reads),
        static_cast<unsigned long long>(r.store_writes),
        r.clean ? "yes" : "NO");
  }
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                u64 unbatched_msgs, u64 batched_msgs, bool passed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_iocache\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        f,
        "    {\"family\": \"%s\", \"clients\": %u, \"capacity\": %llu, "
        "\"ops\": %llu, \"hit_rate\": %.4f, \"attaches_per_sec\": %.1f, "
        "\"warm_p50_ns\": %.1f, \"cold_p50_ns\": %.1f, "
        "\"store_reads\": %llu, \"store_writes\": %llu, \"sim_ms\": %.3f, "
        "\"clean\": %s}%s\n",
        family_name(r.family), r.clients,
        static_cast<unsigned long long>(r.capacity),
        static_cast<unsigned long long>(r.ops), r.hit_rate, r.attaches_per_sec,
        r.warm_p50_ns, r.cold_p50_ns,
        static_cast<unsigned long long>(r.store_reads),
        static_cast<unsigned long long>(r.store_writes), r.sim_ms,
        r.clean ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"renewal_batching\": {\"unbatched_msgs\": %llu, "
               "\"batched_msgs\": %llu},\n  \"all_checks_passed\": %s\n}\n",
               static_cast<unsigned long long>(unbatched_msgs),
               static_cast<unsigned long long>(batched_msgs),
               passed ? "true" : "false");
  std::fclose(f);
}

double cell_hit_rate(const std::vector<Row>& rows, Family f, u32 clients,
                     u64 capacity) {
  for (const auto& r : rows) {
    if (r.family == f && r.clients == clients && r.capacity == capacity) {
      return r.hit_rate;
    }
  }
  return -1.0;
}

}  // namespace
}  // namespace xemem

int main(int argc, char** argv) {
  using namespace xemem;
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::header(
      "Ablation: burst-buffer I/O cache (replay families x clients x "
      "capacity)",
      "cache-server enclaves share PFS blocks with every job on the node "
      "through XEMEM attach-on-read; warm accesses skip the backing store "
      "entirely, so hit rate (a function of family reuse and cache "
      "capacity) sets the latency profile; batched lease renewals cut the "
      "name-service heartbeat load");

  const u64 file_blocks = 96;
  const u64 ops_per_rank = quick ? 64 : 128;
  const std::vector<u32> client_counts = {2, 6};
  const std::vector<u64> capacities = {file_blocks / 8, file_blocks / 2};

  std::vector<Row> rows;
  for (Family fam : {Family::checkpoint, Family::dl_training, Family::scan}) {
    for (u32 nc : client_counts) {
      for (u64 cap : capacities) {
        rows.push_back(run_cell(fam, nc, cap, file_blocks, ops_per_rank));
      }
    }
  }
  print_rows(rows);

  const auto [unbatched_msgs, unbatched_exp] = run_renewal(false);
  const auto [batched_msgs, batched_exp] = run_renewal(true);
  std::printf(
      "\nlease-renewal batching (3 NS shards on 2 enclaves, 40 ms idle):\n"
      "  per-shard renewals: %llu heartbeat msgs\n"
      "  batched renewals:   %llu heartbeat msgs\n",
      static_cast<unsigned long long>(unbatched_msgs),
      static_cast<unsigned long long>(batched_msgs));

  std::printf("\nshape checks:\n");
  bench::ShapeChecks checks;
  bool all_clean = true;
  bool warm_cheaper = true;
  for (const auto& r : rows) {
    all_clean = all_clean && r.clean;
    if (r.warm_p50_ns > 0 && r.cold_p50_ns > 0) {
      warm_cheaper = warm_cheaper && r.warm_p50_ns < r.cold_p50_ns;
    }
  }
  checks.expect(all_clean, "every cell converges with zero leaked pins");
  checks.expect(warm_cheaper,
                "warm accesses beat cold ones in every cell (p50)");
  const double dl_small =
      cell_hit_rate(rows, iocache::Family::dl_training, 2, capacities[0]);
  const double dl_large =
      cell_hit_rate(rows, iocache::Family::dl_training, 2, capacities[1]);
  checks.expect(dl_large > dl_small + 0.1,
                "dl_training hit rate responds to capacity (hot set resident "
                "vs thrashing)");
  const double scan_large =
      cell_hit_rate(rows, iocache::Family::scan, 2, capacities[1]);
  checks.expect(scan_large < dl_large,
                "streaming scan reuses less than dl_training at equal "
                "capacity");
  checks.expect(unbatched_exp == 0 && batched_exp == 0,
                "no lease expires under either renewal scheme");
  checks.expect(batched_msgs * 3 < unbatched_msgs * 2,
                "batched renewals cut heartbeat messages by >= a third");

  if (!json_path.empty()) {
    write_json(json_path, rows, unbatched_msgs, batched_msgs,
               checks.all_passed());
    std::printf("\njson written to %s\n", json_path.c_str());
  }
  return checks.exit_code();
}
