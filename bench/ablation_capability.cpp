// Ablation: capability-based segment permissions (DESIGN.md §9).
//
// Three questions, one harness:
//
//  1. What does live revocation cost? cap_revoke walks the derivation
//     subtree and tears down every live attachment minted under it — the
//     sweep is O(live attachments), so revocation latency is measured
//     against the number of attachments it must unmap (1..64).
//
//  2. Is owner-crash-mid-revoke recovery bounded? The deterministic
//     crashpoint hook kills the owner immediately before its k-th
//     capability command while a remote client drives
//     derive -> get -> attach -> revoke. Every k must converge (clean
//     client statuses, zero pins/refs) within the lease + retry budget.
//
//  3. Does the capability machinery cost anything when it is off?
//     The attach-path star topology (fast path on, 16 repeat attaches)
//     runs with capabilities off and on. The off row must reproduce
//     pre-capability behavior — warm attaches never touch the name
//     server, route/walk caches hit — and its warm latency is recorded
//     for cross-checking against BENCH_attach_path.json. The on row
//     quantifies the documented trade: attacher-side mapping reuse is
//     disabled (a cached mapping cannot observe revocation), so every
//     warm attach pays the owner round-trip that re-validates rights.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "xemem/system.hpp"

namespace xemem {
namespace {

KernelConfig cap_config(bool caps) {
  KernelConfig cfg;
  cfg.request_timeout = 1_ms;
  cfg.max_retries = 3;
  cfg.backoff_base = 100_us;
  cfg.backoff_max = 400_us;
  cfg.lease_duration = 5_ms;
  cfg.enable_attach_fast_path();
  if (caps) cfg.enable_capabilities();
  return cfg;
}

// ----------------------------------------- 1. revocation latency vs pins

struct RevokeRow {
  u64 live_attaches{0};
  double revoke_us{0};     // owner-side cap_revoke call latency
  u64 unmaps{0};           // pins the sweep tore down
  bool converged{false};   // post-settle: no pins, no refs, access denied
};

RevokeRow run_revocation(u64 live, u64 seed) {
  RevokeRow row;
  row.live_attaches = live;
  sim::Engine eng(7700 + seed);
  Node node(hw::Machine::r420());
  node.set_kernel_config(cap_config(/*caps=*/true));
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& owner = node.add_cokernel("owner", 0, {4, 5}, 256_MiB);
  auto& user = node.add_cokernel("user", 0, {6, 7}, 256_MiB);

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* op = node.enclave("owner").create_process(8_MiB).value();
    os::Process* up = node.enclave("user").create_process(8_MiB).value();
    auto sid = co_await owner.xpmem_make(*op, op->image_base(), 4_MiB);
    XEMEM_ASSERT(sid.ok());
    auto root = owner.cap_root(sid.value());
    XEMEM_ASSERT(root.ok());
    auto cap = co_await owner.cap_derive(root.value(), CapRights{});
    XEMEM_ASSERT(cap.ok());
    auto grant = co_await user.xpmem_get(cap.value());
    XEMEM_ASSERT(grant.ok());

    // `live` distinct 64 KiB windows, each its own owner pin (mapping
    // reuse is off under capabilities by design).
    std::vector<XpmemAttachment> atts;
    for (u64 i = 0; i < live; ++i) {
      auto att = co_await user.xpmem_attach(*up, grant.value(),
                                            (i % 64) * 64_KiB, 64_KiB);
      XEMEM_ASSERT(att.ok());
      atts.push_back(att.value());
    }

    const sim::TimePoint t0 = sim::now();
    auto rv = co_await owner.cap_revoke(cap.value());
    row.revoke_us = static_cast<double>(sim::now() - t0) / 1000.0;
    XEMEM_ASSERT(rv.ok());
    row.unmaps = owner.stats().revoke_unmaps;

    // Let the one-way unmap fan-out land, then audit convergence.
    co_await sim::delay(2_ms);
    const bool denied =
        (co_await user.xpmem_attach(*up, grant.value(), 0, 64_KiB)).error() ==
        Errc::revoked;
    row.converged = owner.pinned_frames() == 0 &&
                    node.machine().pmem().total_refs() == 0 && denied &&
                    owner.cap_accounting(sid.value()).live_attaches == 0;
  };
  eng.run(main());
  return row;
}

// ------------------------------------- 2. owner-crash-mid-revoke sweep

struct CrashRow {
  u64 crashpoint{0};
  bool crashed{false};     // the hook actually fired
  double run_us{0};        // whole client sequence, issue -> settled
  bool converged{false};   // clean statuses, zero pins/refs at the end
};

bool crash_clean(Errc e) {
  return e == Errc::unreachable || e == Errc::no_such_segid ||
         e == Errc::retry_later || e == Errc::stale_epoch ||
         e == Errc::no_name_server || e == Errc::revoked ||
         e == Errc::permission_denied || e == Errc::not_attached;
}

CrashRow run_crash(u64 k) {
  CrashRow row;
  row.crashpoint = k;
  sim::Engine eng(7800);  // same seed for every k: only the crashpoint moves
  Node node(hw::Machine::r420());
  node.set_kernel_config(cap_config(/*caps=*/true));
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& owner = node.add_cokernel("owner", 0, {4, 5}, 256_MiB);
  auto& user = node.add_cokernel("user", 0, {6, 7}, 256_MiB);
  owner.crash_after_cap_requests(k);

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* op = node.enclave("owner").create_process(8_MiB).value();
    os::Process* up = node.enclave("user").create_process(1_MiB).value();
    auto sid = co_await owner.xpmem_make(*op, op->image_base(), 64_KiB);
    XEMEM_ASSERT(sid.ok());
    auto root = owner.cap_root(sid.value());
    XEMEM_ASSERT(root.ok());

    const sim::TimePoint t0 = sim::now();
    bool clean = true;
    auto cap = co_await user.cap_derive(root.value(), CapRights{});
    if (!cap.ok()) clean = clean && crash_clean(cap.error());
    Result<XpmemAttachment> att{Errc::unreachable};
    if (cap.ok()) {
      auto grant = co_await user.xpmem_get(cap.value());
      if (grant.ok()) {
        att = co_await user.xpmem_attach(*up, grant.value(), 0, 64_KiB);
        if (!att.ok()) clean = clean && crash_clean(att.error());
      } else {
        clean = clean && crash_clean(grant.error());
      }
      auto rv = co_await user.cap_revoke(cap.value());
      if (!rv.ok()) clean = clean && crash_clean(rv.error());
    }
    if (att.ok()) {
      auto d = co_await user.xpmem_detach(*up, att.value());
      if (!d.ok()) clean = clean && crash_clean(d.error());
    }
    row.run_us = static_cast<double>(sim::now() - t0) / 1000.0;
    row.crashed = owner.is_crashed();
    row.converged = clean && owner.pinned_frames() == 0 &&
                    user.pinned_frames() == 0 &&
                    node.machine().pmem().total_refs() == 0;
  };
  eng.run(main());
  return row;
}

// -------------------------------- 3. warm attach, capabilities off vs on

struct WarmRow {
  bool caps{false};
  double cold_us{0};
  double warm_us{0};
  u64 lookup_hits{0};
  u64 walk_hits{0};
  u64 reuse_hits{0};
  u64 ns_requests_during_warm{0};
  bool completed{false};
};

WarmRow run_warm(bool caps, int repeats) {
  WarmRow row;
  row.caps = caps;
  // Star topology: both endpoints are co-kernels, every protocol message
  // transits the management enclave — the attach-path bench's hardest
  // shape, and the same config (short lease expiry excluded) so the off
  // row is directly comparable to BENCH_attach_path.json.
  sim::Engine eng(7900);
  Node node(hw::Machine::r420());
  KernelConfig cfg;
  cfg.request_timeout = 1_ms;
  cfg.max_retries = 6;
  cfg.backoff_base = 100_us;
  cfg.backoff_max = 1_ms;
  cfg.enable_attach_fast_path();
  if (caps) cfg.enable_capabilities();
  node.set_kernel_config(cfg);
  auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& owner = node.add_cokernel("owner", 0, {4, 5}, 256_MiB);
  auto& user = node.add_cokernel("user", 0, {6, 7}, 256_MiB);

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* op = node.enclave("owner").create_process(8_MiB).value();
    os::Process* up = node.enclave("user").create_process(8_MiB).value();
    auto sid = co_await owner.xpmem_make(*op, op->image_base(), 4_MiB);
    XEMEM_ASSERT(sid.ok());
    auto grant = co_await user.xpmem_get(sid.value());
    XEMEM_ASSERT(grant.ok());

    // The cold attach stays live across the warm loop: with capabilities
    // off the attacher's reuse cache can then serve repeat attaches of
    // the same range without an owner round-trip; with capabilities on
    // that cache is disabled by design (it cannot observe revocation), so
    // every warm attach pays the owner round-trip that re-validates
    // rights. The delta between the rows is the price of revocability.
    const sim::TimePoint c0 = sim::now();
    auto base = co_await user.xpmem_attach(*up, grant.value(), 0, 4_MiB);
    row.cold_us = static_cast<double>(sim::now() - c0) / 1000.0;
    XEMEM_ASSERT(base.ok());

    bool ok = true;
    u64 warm_ns_total = 0;
    const u64 ns_before_warm = mgmt.stats().ns_requests;
    for (int i = 0; i < repeats; ++i) {
      const sim::TimePoint t0 = sim::now();
      auto att = co_await user.xpmem_attach(*up, grant.value(), 0, 4_MiB);
      warm_ns_total += sim::now() - t0;
      ok = ok && att.ok();
      if (att.ok()) ok = (co_await user.xpmem_detach(*up, att.value())).ok() && ok;
    }
    row.warm_us = static_cast<double>(warm_ns_total) / repeats / 1000.0;
    row.ns_requests_during_warm = mgmt.stats().ns_requests - ns_before_warm;
    ok = (co_await user.xpmem_detach(*up, base.value())).ok() && ok;
    row.lookup_hits = user.stats().lookup_cache_hits;
    row.walk_hits = owner.stats().walk_cache_hits;
    row.reuse_hits = user.stats().reuse_hits;
    row.completed = ok && node.machine().pmem().total_refs() == 0;
  };
  eng.run(main());
  return row;
}

// ------------------------------------------------------------------ main

void write_json(const std::string& path, const std::vector<RevokeRow>& rev,
                const std::vector<CrashRow>& crash,
                const std::vector<WarmRow>& warm, bool passed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_capability\",\n");
  std::fprintf(f, "  \"revocation_latency\": [\n");
  for (size_t i = 0; i < rev.size(); ++i) {
    std::fprintf(f,
                 "    {\"live_attaches\": %llu, \"revoke_us\": %.2f, "
                 "\"unmaps\": %llu, \"converged\": %s}%s\n",
                 static_cast<unsigned long long>(rev[i].live_attaches),
                 rev[i].revoke_us,
                 static_cast<unsigned long long>(rev[i].unmaps),
                 rev[i].converged ? "true" : "false",
                 i + 1 < rev.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"crash_sweep\": [\n");
  for (size_t i = 0; i < crash.size(); ++i) {
    std::fprintf(f,
                 "    {\"crashpoint\": %llu, \"crashed\": %s, "
                 "\"run_us\": %.2f, \"converged\": %s}%s\n",
                 static_cast<unsigned long long>(crash[i].crashpoint),
                 crash[i].crashed ? "true" : "false", crash[i].run_us,
                 crash[i].converged ? "true" : "false",
                 i + 1 < crash.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"warm_attach\": [\n");
  for (size_t i = 0; i < warm.size(); ++i) {
    std::fprintf(
        f,
        "    {\"capabilities\": %s, \"cold_us\": %.2f, \"warm_us\": %.2f, "
        "\"lookup_cache_hits\": %llu, \"walk_cache_hits\": %llu, "
        "\"reuse_hits\": %llu, \"ns_requests_during_warm\": %llu, "
        "\"completed\": %s}%s\n",
        warm[i].caps ? "true" : "false", warm[i].cold_us, warm[i].warm_us,
        static_cast<unsigned long long>(warm[i].lookup_hits),
        static_cast<unsigned long long>(warm[i].walk_hits),
        static_cast<unsigned long long>(warm[i].reuse_hits),
        static_cast<unsigned long long>(warm[i].ns_requests_during_warm),
        warm[i].completed ? "true" : "false", i + 1 < warm.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"all_checks_passed\": %s\n}\n",
               passed ? "true" : "false");
  std::fclose(f);
}

}  // namespace
}  // namespace xemem

int main(int argc, char** argv) {
  using namespace xemem;
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::header(
      "Ablation: capability permissions and live revocation",
      "DESIGN.md §9 — cap_revoke sweeps every live attachment under the "
      "revoked subtree (cost vs attachment count), owner-crash-mid-revoke "
      "recovery stays inside the lease + retry budget, and the machinery "
      "costs nothing while KernelConfig::capabilities is off");

  // 1. Revocation latency vs live attachments.
  const std::vector<u64> counts =
      quick ? std::vector<u64>{1, 8} : std::vector<u64>{1, 4, 16, 64};
  std::vector<RevokeRow> rev;
  std::printf("revocation latency vs live attachments:\n");
  std::printf("%10s %12s %8s %10s\n", "attaches", "revoke_us", "unmaps",
              "converged");
  u64 seed = 1;
  for (u64 n : counts) {
    rev.push_back(run_revocation(n, seed++));
    const auto& r = rev.back();
    std::printf("%10llu %12.2f %8llu %10s\n",
                static_cast<unsigned long long>(r.live_attaches), r.revoke_us,
                static_cast<unsigned long long>(r.unmaps),
                r.converged ? "yes" : "NO");
  }

  // 2. Owner-crash-mid-revoke sweep.
  const u64 max_k = quick ? 4 : 6;
  std::vector<CrashRow> crash;
  std::printf("\nowner crashpoint sweep (k = command before which the owner "
              "dies; 0 = no crash):\n");
  std::printf("%6s %8s %12s %10s\n", "k", "crashed", "run_us", "converged");
  for (u64 k = 0; k <= max_k; ++k) {
    crash.push_back(run_crash(k));
    const auto& c = crash.back();
    std::printf("%6llu %8s %12.2f %10s\n",
                static_cast<unsigned long long>(c.crashpoint),
                c.crashed ? "yes" : "no", c.run_us,
                c.converged ? "yes" : "NO");
  }

  // 3. Warm attach with capabilities off vs on.
  const int reps = quick ? 8 : 16;
  std::vector<WarmRow> warm{run_warm(false, reps), run_warm(true, reps)};
  std::printf("\nwarm attach (star topology, fast path on, %d repeats):\n",
              reps);
  std::printf("%6s %9s %9s %8s %8s %8s %8s\n", "caps", "cold_us", "warm_us",
              "lookup", "walk", "reuse", "warm_ns");
  for (const auto& w : warm) {
    std::printf("%6s %9.1f %9.1f %8llu %8llu %8llu %8llu\n",
                w.caps ? "on" : "off", w.cold_us, w.warm_us,
                static_cast<unsigned long long>(w.lookup_hits),
                static_cast<unsigned long long>(w.walk_hits),
                static_cast<unsigned long long>(w.reuse_hits),
                static_cast<unsigned long long>(w.ns_requests_during_warm));
  }

  std::printf("\nshape checks:\n");
  bench::ShapeChecks checks;

  bool rev_ok = true, rev_conv = true;
  for (const auto& r : rev) {
    rev_ok = rev_ok && r.unmaps == r.live_attaches;
    rev_conv = rev_conv && r.converged;
  }
  checks.expect(rev_ok, "revocation unmaps exactly the live attachments");
  checks.expect(rev_conv,
                "every revocation converges: pins drain, refs zero, "
                "re-attach denied");
  const RevokeRow& small = rev.front();
  const RevokeRow& big = rev.back();
  checks.expect(big.revoke_us >= small.revoke_us,
                "sweep cost grows with the attachment count");
  if (big.live_attaches > small.live_attaches) {
    const double marginal = (big.revoke_us - small.revoke_us) /
                            static_cast<double>(big.live_attaches -
                                                small.live_attaches);
    checks.expect(marginal <= small.revoke_us + 1.0,
                  "per-attachment sweep cost is bounded (linear, no blowup)");
  }

  bool sweep_conv = true, any_crashed = false;
  for (const auto& c : crash) {
    sweep_conv = sweep_conv && c.converged;
    any_crashed = any_crashed || c.crashed;
  }
  checks.expect(crash.front().crashed == false && crash.front().converged,
                "k=0 (no crash) completes the full chain");
  checks.expect(any_crashed, "the sweep actually kills the owner mid-protocol");
  checks.expect(sweep_conv,
                "every crashpoint converges with clean statuses and no leaks");
  // Budget: lease expiry plus a full retry cycle per protocol step (4
  // steps), generously doubled — "bounded" means no unbounded retry loop.
  {
    const KernelConfig cfg = cap_config(true);
    const double budget_us =
        static_cast<double>(cfg.lease_duration +
                            4 * (cfg.max_retries + 1) *
                                (cfg.request_timeout + cfg.backoff_max)) /
        1000.0 * 2.0;
    bool bounded = true;
    for (const auto& c : crash) bounded = bounded && c.run_us <= budget_us;
    checks.expect(bounded, "crash recovery stays inside the lease+retry budget");
  }

  checks.expect(warm[0].completed && warm[1].completed,
                "warm-attach runs complete and leak nothing");
  checks.expect(warm[0].ns_requests_during_warm == 0,
                "capabilities off: warm attaches never touch the name server");
  checks.expect(warm[0].reuse_hits > 0,
                "capabilities off: attacher mapping reuse engages (the "
                "pre-capability fast path is intact)");
  checks.expect(warm[1].reuse_hits == 0,
                "capabilities on: mapping reuse is disabled (a cached "
                "mapping cannot observe revocation)");
  checks.expect(warm[0].warm_us <= warm[1].warm_us,
                "capabilities off is never slower than on (pay-for-use)");
  checks.expect(warm[1].walk_hits > 0,
                "capabilities on: the owner's walk cache still serves warm "
                "attaches (after the rights check)");

  if (!json_path.empty()) {
    write_json(json_path, rev, crash, warm, checks.all_passed());
    std::printf("\njson written to %s\n", json_path.c_str());
  }
  return checks.exit_code();
}
