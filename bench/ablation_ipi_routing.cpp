// Ablation B: core-0-restricted vs distributed IPI handling.
//
// Paper section 5.3 attributes the 1->2 enclave throughput dip of Figure 6
// partly to the co-kernel architecture restricting "all IPI-based
// communication with the Linux management enclave to core 0 of the
// system", and names "more intelligent mechanisms for interrupt handling"
// as future work. This harness reruns the Figure 6 8-enclave configuration
// with each co-kernel's management-side channel handled on a distinct
// Linux core, isolating the serialization component of the dip.
#include "bench_util.hpp"
#include "workloads/insitu.hpp"
#include "xemem/system.hpp"

namespace xemem {
namespace {

constexpr u64 kRegion = 512ull << 20;

double run_mode(bool distributed, u32 enclaves, int reps) {
  sim::Engine eng(500 + enclaves);
  Node node(hw::Machine::r420());
  auto& mgmt = node.add_linux_mgmt(
      "linux", 0, {0, 1, 2, 3, 12, 13, 14, 15, 16, 17, 18, 19});
  for (u32 i = 0; i < enclaves; ++i) {
    // Stock Pisces: every channel handled on core 0. Distributed: channel
    // i handled on Linux core i (0..3 spread).
    const i32 channel_core = distributed ? static_cast<i32>(i % 4) : 0;
    node.add_cokernel("k" + std::to_string(i), 0, {4 + i}, kRegion + (64ull << 20),
                      channel_core);
  }

  RunningStats per_attacher;
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    struct Pair {
      os::Process* exporter;
      os::Process* attacher;
      Segid segid;
    };
    std::vector<Pair> pairs(enclaves);
    for (u32 i = 0; i < enclaves; ++i) {
      pairs[i].exporter = node.enclave("k" + std::to_string(i))
                              .create_process(kRegion + kPageSize)
                              .value();
      pairs[i].attacher =
          node.enclave("linux")
              .create_process(1ull << 20, &node.machine().core(12 + i))
              .value();
      auto sid = co_await node.kernel("k" + std::to_string(i))
                     .xpmem_make(*pairs[i].exporter,
                                 pairs[i].exporter->image_base(), kRegion);
      pairs[i].segid = sid.value();
    }
    sim::Barrier done(enclaves + 1);
    auto loop = [&](u32 i) -> sim::Task<void> {
      auto grant = co_await mgmt.xpmem_get(pairs[i].segid);
      u64 attach_ns = 0;
      for (int r = 0; r < reps; ++r) {
        const u64 t0 = sim::now();
        auto att = co_await mgmt.xpmem_attach(*pairs[i].attacher, grant.value(), 0,
                                              kRegion);
        attach_ns += sim::now() - t0;
        XEMEM_ASSERT(att.ok());
        XEMEM_ASSERT(
            (co_await mgmt.xpmem_detach(*pairs[i].attacher, att.value())).ok());
      }
      per_attacher.add(gb_per_s(kRegion * static_cast<u64>(reps), attach_ns));
      co_await done.arrive_and_wait();
    };
    for (u32 i = 0; i < enclaves; ++i) sim::Engine::current()->spawn(loop(i));
    co_await done.arrive_and_wait();
  };
  eng.run(main());
  return per_attacher.mean();
}

}  // namespace
}  // namespace xemem

int main() {
  using namespace xemem;
  const int reps = bench::runs_override(5);
  bench::header(
      "Ablation B: IPI handling, core-0-restricted vs distributed "
      "(section 5.3 future work)",
      "distributing channel handling across management cores should recover "
      "part of the multi-enclave contention dip (the rest is shared Linux "
      "mm-structure interference, which distribution cannot remove)");

  std::printf("%-10s %18s %18s\n", "enclaves", "core0_gbps", "distributed_gbps");
  double core0[3], dist[3];
  const u32 counts[] = {2, 4, 8};
  for (int i = 0; i < 3; ++i) {
    core0[i] = run_mode(false, counts[i], reps);
    dist[i] = run_mode(true, counts[i], reps);
    std::printf("%-10u %18.2f %18.2f\n", counts[i], core0[i], dist[i]);
  }
  const double solo = run_mode(false, 1, reps);
  std::printf("%-10s %18.2f %18s\n", "1 (ref)", solo, "-");

  std::printf("\nshape checks:\n");
  bench::ShapeChecks checks;
  bool improves = true;
  for (int i = 0; i < 3; ++i) improves = improves && dist[i] >= core0[i];
  checks.expect(improves, "distributed handling never hurts");
  checks.expect(dist[2] > core0[2] + 0.01,
                "distributed handling recovers measurable throughput at 8 enclaves");
  checks.expect(dist[2] < solo,
                "a residual dip remains (Linux mm interference is not an IPI issue)");
  return checks.exit_code();
}
