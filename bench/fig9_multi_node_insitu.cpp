// Figure 9: Multi-node in-situ benchmark, weak scaling, asynchronous model.
//
// Paper setup (section 7): an 8-node R420-class cluster over QDR
// Infiniband. Per node: the HPC simulation (HPCCG via MPI, 300 iterations,
// signaling every 30 — 10 communication points) composed with a STREAM
// analytics program over a 1 GB region. Weak scaling: per-node problem
// size constant. Two system compositions:
//
//   Linux Only    — both components in the native Linux enclave;
//   Multi Enclave — the simulation in a Palacios VM on an isolated Kitten
//                   co-kernel host, analytics in native Linux.
//
// Paper result: every CG iteration ends in collectives, so one noisy node
// delays all nodes. Linux-only degrades steadily with node count (each
// node has a different runtime experience) while the multi-enclave
// configuration — despite *running the simulation virtualized* — is flat
// past 2 nodes and overtakes Linux-only, with far smaller error bars. With
// recurring attachments (Figure 9(b)), Linux-only wins at a single node
// (native attachments are cheaper than the VM path) but loses at scale.
#include "bench_util.hpp"
#include "workloads/insitu.hpp"

namespace xemem {
namespace {

workloads::InsituConfig node_config(bool recurring, net::Communicator* comm,
                                    u64 tag) {
  workloads::InsituConfig cfg;
  cfg.iterations = 300;
  cfg.signal_every = 30;  // 10 communication points
  cfg.region_bytes = 1ull << 30;
  cfg.async = true;  // the paper's multi-node runs use the async workflow
  cfg.recurring = recurring;
  // Per-iteration: ~147 ms (95 ms CPU + 640 MiB at the 12.8 GB/s socket),
  // calibrated to the paper's ~44 s single-node Linux-only bar.
  cfg.sim_compute_ns = 95'000'000;
  cfg.sim_mem_bytes = 640ull << 20;
  cfg.stream_passes = 1;
  cfg.grid = 12;
  cfg.stream_elems = 1 << 16;
  cfg.poll_interval = 2'000'000;
  cfg.comm = comm;
  cfg.allreduce_bytes = 16;
  cfg.run_tag = tag;
  return cfg;
}

struct ClusterResult {
  double job_seconds;  // completion of the slowest node's simulation
};

ClusterResult run_cluster(bool multi_enclave, bool recurring, u32 nodes, u64 seed) {
  sim::Engine eng(seed);
  std::vector<std::unique_ptr<Node>> cluster;
  for (u32 i = 0; i < nodes; ++i) {
    auto n = std::make_unique<Node>(hw::Machine::r420());
    if (multi_enclave) {
      n->add_linux_mgmt("linux", 0, {0, 1, 2, 3});
      n->add_cokernel("vmhost", 0, {4, 5, 6, 7}, 1664ull << 20);
      n->add_vm("vm", "vmhost", 1344ull << 20, {5, 6, 7});
    } else {
      n->add_linux_mgmt("linux", 0, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
    }
    cluster.push_back(std::move(n));
  }
  net::Communicator comm(nodes);

  std::vector<double> node_seconds(nodes, 0.0);
  sim::Barrier done(nodes + 1);
  auto node_main = [&](u32 i) -> sim::Task<void> {
    co_await cluster[i]->start();
    Rng noise_rng(seed * 31 + i * 1009 + 7);
    cluster[i]->spawn_std_noise(*sim::Engine::current(), noise_rng);
    auto r = co_await workloads::run_insitu(
        *cluster[i], multi_enclave ? "vm" : "linux", "linux",
        node_config(recurring, &comm, i));
    node_seconds[i] = r.sim_seconds;
    co_await done.arrive_and_wait();
  };
  auto main = [&]() -> sim::Task<void> {
    for (u32 i = 0; i < nodes; ++i) sim::Engine::current()->spawn(node_main(i));
    co_await done.arrive_and_wait();
  };
  eng.run(main());

  ClusterResult out{0.0};
  for (double s : node_seconds) out.job_seconds = std::max(out.job_seconds, s);
  return out;
}

struct Cell {
  double mean;
  double stddev;
};

Cell run_point(bool multi_enclave, bool recurring, u32 nodes, int runs) {
  RunningStats st;
  for (int r = 0; r < runs; ++r) {
    st.add(run_cluster(multi_enclave, recurring, nodes,
                       40000 + static_cast<u64>(r) * 211 + nodes * 17 +
                           (multi_enclave ? 5 : 0) + (recurring ? 3 : 0))
               .job_seconds);
  }
  return Cell{st.mean(), st.stddev()};
}

}  // namespace
}  // namespace xemem

int main() {
  using namespace xemem;
  const int runs = bench::runs_override(5);
  bench::header(
      "Figure 9: Multi-node in-situ benchmark, weak scaling, async workflow",
      "Linux-only degrades steadily with node count (no isolation -> "
      "per-iteration stragglers); multi-enclave (simulation in a VM on a "
      "Kitten host!) is flat past 2 nodes with small error bars; with "
      "recurring attachments Linux-only wins at 1 node but loses at scale");

  const u32 node_counts[] = {1, 2, 4, 8};
  Cell grid[2][2][4];  // [recurring][multi_enclave][node index]
  for (int rec = 0; rec < 2; ++rec) {
    std::printf("--- Figure 9(%c): %s shared memory attachment model ---\n",
                rec == 0 ? 'a' : 'b', rec == 0 ? "one-time" : "recurring");
    std::printf("%-8s %18s %10s %18s %10s\n", "nodes", "linux_only_s", "sd",
                "multi_enclave_s", "sd");
    for (int n = 0; n < 4; ++n) {
      grid[rec][0][n] = run_point(false, rec == 1, node_counts[n], runs);
      grid[rec][1][n] = run_point(true, rec == 1, node_counts[n], runs);
      std::printf("%-8u %18.2f %10.2f %18.2f %10.2f\n", node_counts[n],
                  grid[rec][0][n].mean, grid[rec][0][n].stddev,
                  grid[rec][1][n].mean, grid[rec][1][n].stddev);
    }
    std::printf("\n");
  }

  std::printf("shape checks:\n");
  bench::ShapeChecks checks;
  for (int rec = 0; rec < 2; ++rec) {
    const char tag = rec == 0 ? 'a' : 'b';
    auto& lin = grid[rec][0];
    auto& multi = grid[rec][1];
    checks.expect(lin[3].mean > lin[0].mean + 2.0,
                  std::string("9(") + tag + "): Linux-only degrades from 1 to 8 nodes");
    checks.expect(std::abs(multi[3].mean - multi[1].mean) / multi[1].mean < 0.04,
                  std::string("9(") + tag +
                      "): multi-enclave flat past 2 nodes (weak scaling holds)");
    checks.expect(multi[3].mean < lin[3].mean,
                  std::string("9(") + tag + "): multi-enclave wins at 8 nodes");
    checks.expect(lin[3].stddev > multi[3].stddev,
                  std::string("9(") + tag +
                      "): Linux-only error bars exceed multi-enclave at scale");
  }
  checks.expect(grid[1][0][0].mean < grid[1][1][0].mean,
                "9(b): Linux-only outperforms multi-enclave at a single node "
                "(native attachments beat the VM path)");
  return checks.exit_code();
}
