// Table 2: Cross-enclave shared-memory throughput with virtual machines.
//
// Paper setup (section 5.4): 1 GB attachments, three configurations:
//   Kitten exports  -> native Linux attaches:   12.841 GB/s
//   Kitten exports  -> Linux VM attaches:        3.991 GB/s
//                      (8.79 GB/s without the rb-tree inserts)
//   Linux VM exports -> native Kitten attaches: 12.606 GB/s
//
// The VM rows exercise the Palacios paths of Figure 4: guest attachments
// insert one memory-map entry per page (the dominant cost, ~80% of attach
// time), while guest exports only *walk* the map, which stays cheap while
// the map is small.
#include "bench_util.hpp"
#include "os/guest_linux.hpp"
#include "workloads/insitu.hpp"
#include "xemem/system.hpp"

namespace xemem {
namespace {

constexpr u64 kRegion = 1ull << 30;

struct Row {
  double gbps;
  double gbps_wo_rb;  // only meaningful for the VM-attacher row
};

/// Generic measurement: @p exporter_name exports 1 GB; @p attacher_name
/// attaches repeatedly. Returns attachment throughput (and, when the
/// attacher is a VM, the throughput with the charged VMM map time
/// subtracted — the paper's "(w/o rb-tree inserts)" column).
Row measure(Node& node, sim::Engine& eng, const std::string& exporter_name,
            const std::string& attacher_name, int reps) {
  Row row{};
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    auto& exp_os = node.enclave(exporter_name);
    auto& att_os = node.enclave(attacher_name);
    os::Process* exporter = exp_os.create_process(kRegion + kPageSize).value();
    os::Process* attacher = att_os.create_process(4ull << 20).value();

    auto segid = co_await node.kernel(exporter_name)
                     .xpmem_make(*exporter, exporter->image_base(), kRegion);
    XEMEM_ASSERT(segid.ok());
    auto grant = co_await node.kernel(attacher_name).xpmem_get(segid.value());
    XEMEM_ASSERT(grant.ok());

    auto* guest = dynamic_cast<os::GuestLinuxEnclave*>(&att_os);
    if (guest != nullptr) guest->reset_vmm_map_ns();

    u64 attach_ns = 0;
    for (int r = 0; r < reps; ++r) {
      const u64 t0 = sim::now();
      auto att = co_await node.kernel(attacher_name)
                     .xpmem_attach(*attacher, grant.value(), 0, kRegion);
      attach_ns += sim::now() - t0;
      XEMEM_ASSERT(att.ok());
      XEMEM_ASSERT((co_await node.kernel(attacher_name)
                        .xpmem_detach(*attacher, att.value()))
                       .ok());
    }
    row.gbps = gb_per_s(kRegion * static_cast<u64>(reps), attach_ns);
    if (guest != nullptr) {
      row.gbps_wo_rb =
          gb_per_s(kRegion * static_cast<u64>(reps), attach_ns - guest->vmm_map_ns());
    }
  };
  eng.run(main());
  return row;
}

Row kitten_to_linux(int reps) {
  sim::Engine eng(71);
  Node node(hw::Machine::r420());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  node.add_cokernel("kitten0", 0, {6}, kRegion + (64ull << 20));
  return measure(node, eng, "kitten0", "linux", reps);
}

Row kitten_to_vm(int reps) {
  sim::Engine eng(72);
  Node node(hw::Machine::r420());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  node.add_cokernel("kitten0", 0, {6}, kRegion + (64ull << 20));
  node.add_vm("vm0", "linux", 2ull << 30, {4, 5});
  return measure(node, eng, "kitten0", "vm0", reps);
}

Row vm_to_kitten(int reps) {
  sim::Engine eng(73);
  Node node(hw::Machine::r420());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  node.add_cokernel("kitten0", 0, {6}, 2ull << 30);
  node.add_vm("vm0", "linux", kRegion + (256ull << 20), {4, 5});
  return measure(node, eng, "vm0", "kitten0", reps);
}

}  // namespace
}  // namespace xemem

int main() {
  using namespace xemem;
  const int reps = bench::runs_override(5);
  bench::header(
      "Table 2: Cross-enclave throughput with virtual machine enclaves (1 GB)",
      "Kitten->Linux 12.841 GB/s; Kitten->Linux(VM) 3.991 GB/s (8.79 w/o "
      "rb-tree inserts); Linux(VM)->Kitten 12.606 GB/s");

  const Row r1 = kitten_to_linux(reps);
  const Row r2 = kitten_to_vm(reps);
  const Row r3 = vm_to_kitten(reps);

  std::printf("%-14s %-14s %10s %22s\n", "exporting", "attaching", "GB/s",
              "(w/o rb-tree inserts)");
  std::printf("%-14s %-14s %10.3f %22s\n", "Kitten", "Linux", r1.gbps, "(N/A)");
  std::printf("%-14s %-14s %10.3f %22.2f\n", "Kitten", "Linux (VM)", r2.gbps,
              r2.gbps_wo_rb);
  std::printf("%-14s %-14s %10.3f %22s\n", "Linux (VM)", "Kitten", r3.gbps, "(N/A)");

  std::printf("\nshape checks:\n");
  bench::ShapeChecks checks;
  checks.expect(r1.gbps > 11.0 && r1.gbps < 15.0,
                "native row lands near the paper's 12.8 GB/s");
  checks.expect(r2.gbps > 3.0 && r2.gbps < 5.5,
                "VM-attacher row shows the ~3x slowdown (paper: 3.99 GB/s)");
  checks.expect(r1.gbps / r2.gbps > 2.4 && r1.gbps / r2.gbps < 4.0,
                "native : VM-attach ratio is roughly 3x");
  checks.expect(r2.gbps_wo_rb > 7.0 && r2.gbps_wo_rb < 11.0,
                "subtracting rb-tree insert time recovers ~8.8 GB/s");
  const double rb_fraction = 1.0 - r2.gbps / r2.gbps_wo_rb;
  checks.expect(rb_fraction > 0.4,
                "memory-map updates dominate VM attach cost (paper: ~80% of "
                "the mapping phase)");
  checks.expect(r3.gbps > 11.0 && r3.gbps < 15.0,
                "guest-export row stays fast (paper: 12.6 GB/s — map lookups "
                "are cheap while the map is small)");
  return checks.exit_code();
}
