// Figure 8: Single-node in-situ benchmark across enclave configurations.
//
// Paper setup (section 6): HPCCG (600 CG iterations, signaling every 40 —
// 15 communication points) composed with STREAM over a 512 MB region on
// the 4-core/8-thread OptiPlex. Four enclave configurations (Table 3):
//
//   Linux/Linux                 — both components in the native Linux enclave
//   Kitten/Linux                — simulation in a Kitten co-kernel
//   Kitten/Linux VM (Linux host)  — analytics in a Palacios VM on Linux
//   Kitten/Linux VM (Kitten host) — analytics in a Palacios VM on Kitten
//
// crossed with synchronous/asynchronous execution (Figure 8 a+b columns)
// and one-time/recurring attachment models (Figure 8(a) vs 8(b)). Each bar
// is mean +/- stddev of 10 runs.
//
// Paper shape: async < sync everywhere; Kitten/Linux best overall; under
// sync, analytics overheads (virtualization, host noise) surface directly;
// recurring + sync is the worst case for the VM configs (rb-tree inserts)
// and also hurts Linux-only badly (fault semantics) with large variance;
// multi-enclave configurations are consistently low-variance.
#include "bench_util.hpp"
#include "workloads/insitu.hpp"

namespace xemem {
namespace {

enum class Config { linux_linux, kitten_linux, kitten_vm_on_linux, kitten_vm_on_kitten };

const char* config_name(Config c) {
  switch (c) {
    case Config::linux_linux: return "Linux/Linux";
    case Config::kitten_linux: return "Kitten/Linux";
    case Config::kitten_vm_on_linux: return "Kitten/Linux VM (Linux host)";
    case Config::kitten_vm_on_kitten: return "Kitten/Linux VM (Kitten host)";
  }
  return "?";
}

workloads::InsituConfig base_config(bool async, bool recurring) {
  workloads::InsituConfig cfg;
  cfg.iterations = 600;
  cfg.signal_every = 40;  // 15 communication points
  cfg.region_bytes = 512ull << 20;
  cfg.async = async;
  cfg.recurring = recurring;
  // Per-iteration simulation work, calibrated so 600 iterations of the
  // undisturbed simulation take ~143.5 s (the paper's fastest async bar):
  // 162 ms CPU + 1 GiB of memory traffic at the 14 GB/s socket (~76.7 ms).
  cfg.sim_compute_ns = 162'000'000;
  cfg.sim_mem_bytes = 1ull << 30;
  cfg.stream_passes = 1;  // analytics: copy-in (2x) + one STREAM pass (10x)
  cfg.grid = 12;
  cfg.stream_elems = 1 << 16;
  cfg.poll_interval = 2'000'000;  // 2 ms (iterations are ~240 ms)
  return cfg;
}

double one_run(Config config, const workloads::InsituConfig& cfg, u64 seed,
               double* residual) {
  sim::Engine eng(seed);
  Node node(hw::Machine::optiplex());
  std::string sim_name, an_name;
  switch (config) {
    case Config::linux_linux:
      node.add_linux_mgmt("linux", 0, {0, 1, 2, 3, 4, 5, 6, 7});
      sim_name = "linux";
      an_name = "linux";
      break;
    case Config::kitten_linux:
      node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
      node.add_cokernel("sim", 0, {4, 5, 6, 7}, 768ull << 20);
      sim_name = "sim";
      an_name = "linux";
      break;
    case Config::kitten_vm_on_linux:
      node.add_linux_mgmt("linux", 0, {0, 1});
      node.add_cokernel("sim", 0, {4, 5, 6, 7}, 768ull << 20);
      node.add_vm("vm", "linux", 256ull << 20, {2, 3});
      sim_name = "sim";
      an_name = "vm";
      break;
    case Config::kitten_vm_on_kitten:
      node.add_linux_mgmt("linux", 0, {0, 1});
      node.add_cokernel("sim", 0, {4, 5, 6, 7}, 768ull << 20);
      node.add_cokernel("vmhost", 0, {2, 3}, 384ull << 20);
      node.add_vm("vm", "vmhost", 256ull << 20, {3});
      sim_name = "sim";
      an_name = "vm";
      break;
  }

  double out = 0;
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    Rng noise_rng(seed * 977 + 13);
    node.spawn_std_noise(eng, noise_rng);
    auto r = co_await workloads::run_insitu(node, sim_name, an_name, cfg);
    out = r.sim_seconds;
    if (residual) *residual = r.residual;
  };
  eng.run(main());
  return out;
}

struct Cell {
  double mean;
  double stddev;
};

Cell run_cell(Config config, bool async, bool recurring, int runs) {
  RunningStats stats;
  double residual = 1.0;
  for (int r = 0; r < runs; ++r) {
    stats.add(one_run(config, base_config(async, recurring),
                      1000 + static_cast<u64>(r) * 7919 +
                          static_cast<u64>(config) * 131,
                      &residual));
  }
  XEMEM_ASSERT_MSG(residual < 1e-8, "CG failed to converge");
  return Cell{stats.mean(), stats.stddev()};
}

}  // namespace
}  // namespace xemem

int main() {
  using namespace xemem;
  const int runs = bench::runs_override(10);
  bench::header(
      "Figure 8: Single-node in-situ benchmark (HPCCG + STREAM, 512 MB region)",
      "async < sync in every configuration; Kitten/Linux best; multi-enclave "
      "bars are consistent while Linux-only shows wide error bars, worst "
      "under the recurring+synchronous model (fault semantics / rb-trees)");

  const Config configs[] = {Config::linux_linux, Config::kitten_linux,
                            Config::kitten_vm_on_linux, Config::kitten_vm_on_kitten};

  Cell table[2][2][4];  // [recurring][async][config]
  for (int rec = 0; rec < 2; ++rec) {
    std::printf("--- Figure 8(%c): %s shared memory attachment model ---\n",
                rec == 0 ? 'a' : 'b', rec == 0 ? "one-time" : "recurring");
    std::printf("%-32s %12s %10s %12s %10s\n", "config", "sync_mean_s", "sync_sd",
                "async_mean_s", "async_sd");
    for (int c = 0; c < 4; ++c) {
      table[rec][0][c] = run_cell(configs[c], /*async=*/false, rec == 1, runs);
      table[rec][1][c] = run_cell(configs[c], /*async=*/true, rec == 1, runs);
      std::printf("%-32s %12.2f %10.2f %12.2f %10.2f\n", config_name(configs[c]),
                  table[rec][0][c].mean, table[rec][0][c].stddev,
                  table[rec][1][c].mean, table[rec][1][c].stddev);
    }
    std::printf("\n");
  }

  std::printf("shape checks:\n");
  bench::ShapeChecks checks;
  bool async_faster = true;
  for (int rec = 0; rec < 2; ++rec) {
    for (int c = 0; c < 4; ++c) {
      async_faster = async_faster && table[rec][1][c].mean < table[rec][0][c].mean;
    }
  }
  checks.expect(async_faster, "asynchronous beats synchronous in every cell");

  // "Best" within half a standard deviation: in the async columns the
  // multi-enclave configurations are statistically tied (as in the paper's
  // plot, where those bars are nearly equal).
  bool kl_best = true;
  for (int rec = 0; rec < 2; ++rec) {
    for (int mode = 0; mode < 2; ++mode) {
      for (int c = 0; c < 4; ++c) {
        kl_best = kl_best && table[rec][mode][1].mean <= table[rec][mode][c].mean + 0.3;
      }
    }
  }
  checks.expect(kl_best, "Kitten/Linux outperforms (or ties) every configuration");

  // Isolation claim: the Kitten-hosted configurations (Kitten/Linux and
  // VM-on-Kitten) are far more consistent than Linux-only. (VM-on-Linux
  // legitimately inherits some host-Linux variance under sync, visible in
  // the paper's Figure 8(b) bars as well.)
  const double linux_sd = std::max(table[0][0][0].stddev, table[1][0][0].stddev);
  double isolated_sd = 0;
  for (int c : {1, 3}) {
    isolated_sd = std::max(isolated_sd,
                           std::max(table[0][0][c].stddev, table[1][0][c].stddev));
  }
  checks.expect(linux_sd > 1.5 * isolated_sd,
                "isolated (Kitten-hosted) runs are more consistent than Linux-only");

  checks.expect(table[1][0][0].mean > table[0][0][0].mean + 0.5,
                "recurring+sync visibly hurts Linux-only (fault semantics)");
  checks.expect(table[1][0][2].mean > table[0][0][2].mean + 0.5,
                "recurring+sync visibly hurts the VM-on-Linux config (rb-tree)");
  const double async_gap =
      std::abs(table[1][1][0].mean - table[0][1][0].mean) / table[0][1][0].mean;
  checks.expect(async_gap < 0.02,
                "asynchronous execution largely hides recurring overheads");
  checks.expect(table[0][0][2].mean >= table[0][0][1].mean,
                "sync: virtualized analytics is no faster than native analytics");
  return checks.exit_code();
}
