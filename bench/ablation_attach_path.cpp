// Ablation: the attach fast path (extent-compressed wire PFNs, segid->owner
// route caching, owner-side walk memoization, attacher-side mapping reuse).
//
// The paper's attach cost (section 6.2, figure 5) is dominated by the
// name-server hop and the per-page wire/remap work. This harness sweeps
// export contiguity (Kitten contiguous vs Linux scattered), repeat count,
// and topology (2-enclave, where the attacher IS the name server, vs a
// 3-enclave star where user->owner traffic transits the management enclave)
// with the fast path off and on, and reports cold/warm attach latency plus
// the cache and wire-byte counters. A final probe verifies the invalidation
// coupling: xpmem_remove and owner crash() leave every cache cold.
//
// All fast-path knobs default off, so the "off" rows reproduce historical
// behavior byte-for-byte; the "on" rows show what each layer buys.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "xemem/system.hpp"

namespace xemem {
namespace {

struct Row {
  std::string owner_os;   // "kitten" (contiguous) | "linux" (scattered)
  std::string topology;   // "2encl" | "3encl-star"
  bool fast{false};
  int repeats{1};
  u64 region{0};
  double cold_us{0};       // first attach (name-server resolution included)
  double warm_us{0};       // mean of attaches 2..N (0 when repeats == 1)
  u64 extents_shipped{0};
  u64 wire_bytes_saved{0};
  u64 lookup_hits{0};
  u64 walk_hits{0};
  u64 ns_requests_during_warm{0};
  bool completed{false};
};

KernelConfig base_config(bool fast) {
  KernelConfig cfg;
  cfg.request_timeout = 1_ms;
  cfg.max_retries = 6;
  cfg.backoff_base = 100_us;
  cfg.backoff_max = 1_ms;
  if (fast) cfg.enable_attach_fast_path();
  return cfg;
}

Row run_case(bool contiguous, bool star, bool fast, int repeats, u64 seed) {
  Row row;
  row.owner_os = contiguous ? "kitten" : "linux";
  row.topology = star ? "3encl-star" : "2encl";
  row.fast = fast;
  row.repeats = repeats;
  // 4 MiB is the acceptance shape (a contiguous Kitten export must ship as
  // O(1) extents); the scattered Linux case uses 1 MiB so the 8 MiB owner
  // image stays comfortably within the pool.
  row.region = contiguous ? 4_MiB : 1_MiB;

  sim::Engine eng(7300 + seed);
  Node node(hw::Machine::r420());
  node.set_kernel_config(base_config(fast));
  auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  XememKernel* owner_k = nullptr;
  XememKernel* user_k = nullptr;
  std::string owner_name, user_name;
  if (star) {
    // Star: both endpoints are co-kernels; every protocol message transits
    // the management enclave (which is also the name server).
    owner_k = &node.add_cokernel("owner", 0, {4, 5}, 256_MiB);
    user_k = &node.add_cokernel("user", 0, {6, 7}, 256_MiB);
    owner_name = "owner";
    user_name = "user";
  } else if (contiguous) {
    owner_k = &node.add_cokernel("ck", 0, {6, 7}, 256_MiB);
    user_k = &mgmt;
    owner_name = "ck";
    user_name = "linux";
  } else {
    owner_k = &mgmt;
    user_k = &node.add_cokernel("ck", 0, {6, 7}, 256_MiB);
    owner_name = "linux";
    user_name = "ck";
  }

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* op = node.enclave(owner_name).create_process(8_MiB).value();
    os::Process* up = node.enclave(user_name).create_process(1_MiB).value();
    auto sid = co_await owner_k->xpmem_make(*op, op->image_base(), row.region);
    XEMEM_ASSERT(sid.ok());
    auto grant = co_await user_k->xpmem_get(sid.value());
    XEMEM_ASSERT(grant.ok());

    bool ok = true;
    u64 warm_ns_total = 0;
    u64 ns_before_warm = 0;
    for (int i = 0; i < repeats; ++i) {
      if (i == 1) ns_before_warm = mgmt.stats().ns_requests;
      const sim::TimePoint t0 = sim::now();
      auto att = co_await user_k->xpmem_attach(*up, grant.value(), 0, row.region);
      const u64 dt = sim::now() - t0;
      if (i == 0) {
        row.cold_us = static_cast<double>(dt) / 1000.0;
      } else {
        warm_ns_total += dt;
      }
      ok = ok && att.ok();
      if (att.ok()) ok = (co_await user_k->xpmem_detach(*up, att.value())).ok() && ok;
    }
    if (repeats > 1) {
      row.warm_us = static_cast<double>(warm_ns_total) / (repeats - 1) / 1000.0;
      row.ns_requests_during_warm = mgmt.stats().ns_requests - ns_before_warm;
    }
    row.extents_shipped = owner_k->stats().extents_shipped;
    row.wire_bytes_saved = owner_k->stats().wire_bytes_saved;
    row.lookup_hits = user_k->stats().lookup_cache_hits;
    row.walk_hits = owner_k->stats().walk_cache_hits;
    row.completed = ok && node.machine().pmem().total_refs() == 0;
  };
  eng.run(main());
  return row;
}

struct InvalidationProbe {
  // After xpmem_remove:
  u64 walk_entries_after_remove{~0ull};
  bool stale_attach_failed{false};
  bool route_dropped_after_remove{false};
  // After owner crash():
  u64 owner_cache_entries_after_crash{~0ull};  // sum over the dead kernel
  u64 refs_after_crash{~0ull};
  bool reuse_dropped_after_crash{false};
  bool route_dropped_after_crash{false};
  bool completed{false};
};

InvalidationProbe run_invalidation(u64 seed) {
  InvalidationProbe p;
  sim::Engine eng(7400 + seed);
  Node node(hw::Machine::r420());
  KernelConfig cfg = base_config(/*fast=*/true);
  cfg.lease_duration = 5_ms;
  node.set_kernel_config(cfg);
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& owner_k = node.add_cokernel("owner", 0, {4, 5}, 256_MiB);
  auto& user_k = node.add_cokernel("user", 0, {6, 7}, 256_MiB);

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* op = node.enclave("owner").create_process(8_MiB).value();
    os::Process* up = node.enclave("user").create_process(1_MiB).value();

    // --- remove: every cache the segment warmed must go cold.
    auto sid = co_await owner_k.xpmem_make(*op, op->image_base(), 1_MiB);
    XEMEM_ASSERT(sid.ok());
    auto grant = co_await user_k.xpmem_get(sid.value());
    XEMEM_ASSERT(grant.ok());
    auto att = co_await user_k.xpmem_attach(*up, grant.value(), 0, 1_MiB);
    XEMEM_ASSERT(att.ok());
    XEMEM_ASSERT((co_await user_k.xpmem_detach(*up, att.value())).ok());
    XEMEM_ASSERT((co_await owner_k.xpmem_remove(*op, sid.value())).ok());
    p.walk_entries_after_remove = owner_k.walk_cache_entries();
    auto stale = co_await user_k.xpmem_attach(*up, grant.value(), 0, 1_MiB);
    p.stale_attach_failed = !stale.ok();
    p.route_dropped_after_remove = !user_k.knows_owner(sid.value());

    // --- crash: the dead kernel's caches die with it; the attacher's
    // entries drain on next use and the pins are gone immediately.
    auto sid2 = co_await owner_k.xpmem_make(*op, op->image_base(), 1_MiB, "v");
    XEMEM_ASSERT(sid2.ok());
    auto grant2 = co_await user_k.xpmem_get(sid2.value());
    XEMEM_ASSERT(grant2.ok());
    auto att2 = co_await user_k.xpmem_attach(*up, grant2.value(), 0, 1_MiB);
    XEMEM_ASSERT(att2.ok());
    owner_k.crash();
    p.owner_cache_entries_after_crash = owner_k.walk_cache_entries() +
                                        owner_k.owner_cache_entries() +
                                        owner_k.attach_cache_entries();
    p.refs_after_crash = node.machine().pmem().total_refs();
    auto det = co_await user_k.xpmem_detach(*up, att2.value());
    (void)det;  // fails (owner unreachable) but unmaps and drops the entry
    p.reuse_dropped_after_crash = user_k.attach_cache_entries() == 0;
    p.route_dropped_after_crash = !user_k.knows_owner(sid2.value());
    p.completed = true;
  };
  eng.run(main());
  return p;
}

void print_rows(const std::vector<Row>& rows) {
  std::printf("%-8s %-11s %-5s %7s %9s %9s %8s %10s %8s %8s %8s %5s\n",
              "owner", "topology", "fast", "repeats", "cold_us", "warm_us",
              "extents", "saved_B", "lookup", "walk", "warm_ns", "done");
  for (const auto& r : rows) {
    std::printf("%-8s %-11s %-5s %7d %9.1f %9.1f %8llu %10llu %8llu %8llu %8llu %5s\n",
                r.owner_os.c_str(), r.topology.c_str(), r.fast ? "on" : "off",
                r.repeats, r.cold_us, r.warm_us,
                static_cast<unsigned long long>(r.extents_shipped),
                static_cast<unsigned long long>(r.wire_bytes_saved),
                static_cast<unsigned long long>(r.lookup_hits),
                static_cast<unsigned long long>(r.walk_hits),
                static_cast<unsigned long long>(r.ns_requests_during_warm),
                r.completed ? "yes" : "NO");
  }
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                const InvalidationProbe& p, bool passed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_attach_path\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        f,
        "    {\"owner_os\": \"%s\", \"topology\": \"%s\", \"fast_path\": %s, "
        "\"repeats\": %d, \"region_bytes\": %llu, \"cold_us\": %.2f, "
        "\"warm_us\": %.2f, \"extents_shipped\": %llu, "
        "\"wire_bytes_saved\": %llu, \"lookup_cache_hits\": %llu, "
        "\"walk_cache_hits\": %llu, \"ns_requests_during_warm\": %llu, "
        "\"completed\": %s}%s\n",
        r.owner_os.c_str(), r.topology.c_str(), r.fast ? "true" : "false",
        r.repeats, static_cast<unsigned long long>(r.region), r.cold_us,
        r.warm_us, static_cast<unsigned long long>(r.extents_shipped),
        static_cast<unsigned long long>(r.wire_bytes_saved),
        static_cast<unsigned long long>(r.lookup_hits),
        static_cast<unsigned long long>(r.walk_hits),
        static_cast<unsigned long long>(r.ns_requests_during_warm),
        r.completed ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n  \"invalidation\": {\"walk_entries_after_remove\": %llu, "
      "\"stale_attach_failed\": %s, \"route_dropped_after_remove\": %s, "
      "\"owner_cache_entries_after_crash\": %llu, \"refs_after_crash\": %llu, "
      "\"reuse_dropped_after_crash\": %s, \"route_dropped_after_crash\": %s},\n"
      "  \"all_checks_passed\": %s\n}\n",
      static_cast<unsigned long long>(p.walk_entries_after_remove),
      p.stale_attach_failed ? "true" : "false",
      p.route_dropped_after_remove ? "true" : "false",
      static_cast<unsigned long long>(p.owner_cache_entries_after_crash),
      static_cast<unsigned long long>(p.refs_after_crash),
      p.reuse_dropped_after_crash ? "true" : "false",
      p.route_dropped_after_crash ? "true" : "false",
      passed ? "true" : "false");
  std::fclose(f);
}

const Row* find(const std::vector<Row>& rows, const char* os, const char* topo,
                bool fast, int repeats) {
  for (const auto& r : rows) {
    if (r.owner_os == os && r.topology == topo && r.fast == fast &&
        r.repeats == repeats) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace
}  // namespace xemem

int main(int argc, char** argv) {
  using namespace xemem;
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::header(
      "Ablation: attach fast path (extents, route cache, walk memo, reuse)",
      "section 6.2 / figure 5 — attach cost is the name-server hop plus "
      "per-page wire and remap work; the fast path removes the hop for "
      "repeat attaches and compresses contiguous exports to O(1) extents, "
      "while remove/crash/lease expiry leave every cache cold");

  const std::vector<int> repeat_set = quick ? std::vector<int>{1, 4}
                                            : std::vector<int>{1, 4, 16};
  // Sweep: contiguity (kitten vs linux owner, 2-enclave) and topology
  // (3-enclave star, contiguous owner) x fast path x repeat count.
  struct Case {
    bool contiguous, star;
  };
  const Case cases[] = {{true, false}, {false, false}, {true, true}};
  std::vector<Row> rows;
  u64 seed = 1;
  for (const auto& c : cases) {
    for (const bool fast : {false, true}) {
      for (const int reps : repeat_set) {
        rows.push_back(run_case(c.contiguous, c.star, fast, reps, seed++));
      }
    }
  }
  print_rows(rows);

  std::printf("\ninvalidation probe (remove / crash, fast path on):\n");
  const InvalidationProbe inv = run_invalidation(99);
  std::printf(
      "  walk entries after remove: %llu, stale attach failed: %s, route "
      "dropped: %s\n  owner cache entries after crash: %llu, pmem refs after "
      "crash: %llu,\n  reuse entry dropped: %s, route dropped: %s\n",
      static_cast<unsigned long long>(inv.walk_entries_after_remove),
      inv.stale_attach_failed ? "yes" : "NO",
      inv.route_dropped_after_remove ? "yes" : "NO",
      static_cast<unsigned long long>(inv.owner_cache_entries_after_crash),
      static_cast<unsigned long long>(inv.refs_after_crash),
      inv.reuse_dropped_after_crash ? "yes" : "NO",
      inv.route_dropped_after_crash ? "yes" : "NO");

  std::printf("\nshape checks:\n");
  bench::ShapeChecks checks;
  bool all_done = true;
  for (const auto& r : rows) all_done = all_done && r.completed;
  checks.expect(all_done, "every configuration completes and leaks nothing");

  const int max_reps = repeat_set.back();
  const Row* kit_on = find(rows, "kitten", "2encl", true, 1);
  const Row* kit_off = find(rows, "kitten", "2encl", false, 1);
  const Row* lin_on = find(rows, "linux", "2encl", true, 1);
  const Row* star_on = find(rows, "kitten", "3encl-star", true, max_reps);
  const Row* star_off = find(rows, "kitten", "3encl-star", false, max_reps);
  if (kit_on == nullptr || kit_off == nullptr || lin_on == nullptr ||
      star_on == nullptr || star_off == nullptr) {
    std::fprintf(stderr, "internal error: sweep row missing\n");
    return 1;
  }

  checks.expect(kit_on->extents_shipped >= 1 && kit_on->extents_shipped <= 3,
                "contiguous 4 MiB export ships as <= 3 extents");
  checks.expect(kit_on->extents_shipped * mm::PfnList::kExtentWireBytes <=
                    3 * mm::PfnList::kExtentWireBytes,
                "extent wire bytes for the contiguous export fit in 3 records");
  checks.expect(kit_on->wire_bytes_saved >
                    4_MiB / kPageSize * 8 -
                        3 * mm::PfnList::kExtentWireBytes - 1,
                "extent encoding saves nearly the whole flat PFN payload");
  checks.expect(lin_on->extents_shipped * mm::PfnList::kExtentWireBytes <=
                    1_MiB / kPageSize * 8,
                "scattered export never ships more bytes than flat");
  checks.expect(kit_off->extents_shipped == 0 && kit_off->lookup_hits == 0 &&
                    kit_off->walk_hits == 0,
                "fast path off ships flat and touches no cache (pay-for-use)");
  checks.expect(star_on->lookup_hits > 0,
                "repeat attach hits the segid->owner route cache");
  checks.expect(star_on->ns_requests_during_warm == 0,
                "warm attaches never touch the name server");
  checks.expect(star_on->warm_us < star_on->cold_us,
                "warm attach is faster than cold (route + walk cached)");
  checks.expect(star_on->warm_us < star_off->warm_us,
                "fast path beats the baseline on warm repeat attaches");
  checks.expect(inv.completed && inv.walk_entries_after_remove == 0 &&
                    inv.stale_attach_failed && inv.route_dropped_after_remove,
                "xpmem_remove leaves walk/route caches cold, stale attach fails");
  checks.expect(inv.owner_cache_entries_after_crash == 0 &&
                    inv.refs_after_crash == 0 && inv.reuse_dropped_after_crash &&
                    inv.route_dropped_after_crash,
                "owner crash leaves no warm cache and no pinned frame anywhere");

  if (!json_path.empty()) {
    write_json(json_path, rows, inv, checks.all_passed());
    std::printf("\njson written to %s\n", json_path.c_str());
  }
  return checks.exit_code();
}
