// Figure 5: Cross-enclave throughput using shared memory vs RDMA Verbs/IB.
//
// Paper setup (section 5.2): one Kitten co-kernel enclave plus the Linux
// control enclave. A Kitten process exports a region of 128 MB - 1 GB; a
// Linux process repeatedly attaches to it, measuring attach time and
// attach+read time. The RDMA comparison writes the same sizes between two
// SR-IOV virtual functions assigned to KVM VMs.
//
// Paper result: XEMEM attach ~13 GB/s, attach+read ~12 GB/s, both flat in
// region size; RDMA slightly below 3.5 GB/s. The point: XEMEM's dynamic
// mapping overhead does not reduce shared-memory throughput to the level
// of a network-based transport.
//
// Note on repetitions: the paper attaches 500 times to average out
// hardware jitter; this simulator is deterministic per seed, so fewer
// repetitions suffice (XEMEM_BENCH_RUNS overrides).
#include "bench_util.hpp"
#include "common/costs.hpp"
#include "net/ib.hpp"
#include "workloads/insitu.hpp"
#include "xemem/system.hpp"

namespace xemem {
namespace {

struct SizeResult {
  double attach_gbps;
  double attach_read_gbps;
  double rdma_gbps;
};

SizeResult run_size(u64 region_bytes, int reps) {
  sim::Engine eng(2025);
  Node node(hw::Machine::r420());
  auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3, 4, 5});
  auto& kitten = node.add_cokernel("kitten0", 0, {6}, region_bytes + (64ull << 20));

  SizeResult out{};
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    auto& kitten_os = node.enclave("kitten0");
    auto& linux_os = node.enclave("linux");
    os::Process* exporter = kitten_os.create_process(region_bytes + kPageSize).value();
    os::Process* attacher =
        linux_os.create_process(1ull << 20, &node.machine().core(2)).value();

    auto segid =
        co_await kitten.xpmem_make(*exporter, exporter->image_base(), region_bytes);
    auto grant = co_await mgmt.xpmem_get(segid.value());

    const u64 pages = pages_for(region_bytes);
    u64 attach_ns_total = 0;
    u64 read_ns_total = 0;
    for (int r = 0; r < reps; ++r) {
      const u64 t0 = sim::now();
      auto att = co_await mgmt.xpmem_attach(*attacher, grant.value(), 0, region_bytes);
      XEMEM_ASSERT(att.ok());
      const u64 t1 = sim::now();
      // "Read out the memory contents": per-page verification touch (one
      // cache line per page; see costs.hpp for the calibration argument).
      co_await linux_os.membw().transfer(pages * costs::kReadTouchBytesPerPage);
      co_await attacher->core()->compute(pages * costs::kReadLoopPerPage);
      const u64 t2 = sim::now();
      attach_ns_total += t1 - t0;
      read_ns_total += t2 - t1;
      XEMEM_ASSERT((co_await mgmt.xpmem_detach(*attacher, att.value())).ok());
    }
    out.attach_gbps = gb_per_s(region_bytes * reps, attach_ns_total);
    out.attach_read_gbps =
        gb_per_s(region_bytes * reps, attach_ns_total + read_ns_total);

    // RDMA comparison: write bandwidth between two SR-IOV VFs.
    net::IbDevice ib;
    ib.enable_sriov(2);
    const u64 t0 = sim::now();
    for (int r = 0; r < reps; ++r) co_await ib.vf(0).rdma_write(region_bytes);
    out.rdma_gbps = gb_per_s(region_bytes * reps, sim::now() - t0);
  };
  eng.run(main());
  return out;
}

}  // namespace
}  // namespace xemem

int main() {
  using namespace xemem;
  const int reps = bench::runs_override(10);
  bench::header(
      "Figure 5: Cross-enclave throughput, XEMEM shared memory vs RDMA Verbs/IB",
      "XEMEM attach ~13 GB/s, attach+read ~12 GB/s, RDMA just under 3.5 GB/s; "
      "all flat across 128 MB - 1 GB");

  std::printf("%-10s %18s %24s %12s\n", "size_mb", "xemem_attach_gbps",
              "xemem_attach_read_gbps", "rdma_gbps");
  const u64 sizes[] = {128ull << 20, 256ull << 20, 512ull << 20, 1024ull << 20};
  double min_attach = 1e9, max_attach = 0, last_rdma = 0, last_attach = 0,
         last_read = 0;
  for (u64 s : sizes) {
    auto r = run_size(s, reps);
    std::printf("%-10llu %18.2f %24.2f %12.2f\n",
                static_cast<unsigned long long>(s >> 20), r.attach_gbps,
                r.attach_read_gbps, r.rdma_gbps);
    min_attach = std::min(min_attach, r.attach_gbps);
    max_attach = std::max(max_attach, r.attach_gbps);
    last_attach = r.attach_gbps;
    last_read = r.attach_read_gbps;
    last_rdma = r.rdma_gbps;
  }

  std::printf("\nshape checks:\n");
  bench::ShapeChecks checks;
  checks.expect(last_attach > 11.0 && last_attach < 15.0,
                "attach throughput lands near the paper's ~13 GB/s");
  checks.expect(last_read < last_attach && last_read > 10.5,
                "attach+read slightly below attach, near ~12 GB/s");
  checks.expect(last_rdma > 3.0 && last_rdma < 3.5,
                "RDMA lands slightly under 3.5 GB/s");
  checks.expect(last_attach > 3.0 * last_rdma,
                "XEMEM sustains >3x the RDMA transport");
  checks.expect((max_attach - min_attach) / max_attach < 0.10,
                "attach throughput flat across region sizes (good scalability)");
  return checks.exit_code();
}
