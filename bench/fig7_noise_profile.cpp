// Figure 7: Noise profile of a Kitten enclave serving XEMEM attachments.
//
// Paper setup (section 5.5): a single-core Kitten enclave exports regions
// of 4 KB, 2 MB, and 1 GB; the Selfish Detour benchmark runs on that core
// for 10 seconds while a Linux process attaches to each region, sleeps one
// second, and repeats.
//
// Paper result: Kitten's baseline is a dense band of ~12 us detours plus
// sparse ~100 us events (SMIs). 4 KB attachment service disappears into
// the baseline; 2 MB service is visible but below the SMI band; 1 GB
// service produces detours two orders of magnitude above everything else
// (the 23,000-24,000 us band of the figure's top panel).
#include <algorithm>

#include "bench_util.hpp"
#include "workloads/detour.hpp"
#include "xemem/system.hpp"

namespace xemem {
namespace {

struct Profile {
  workloads::DetourTrace trace;
  u64 attaches{0};
};

Profile run_profile(bool with_attachments) {
  sim::Engine eng(424242);
  Node node(hw::Machine::r420());
  auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  node.add_cokernel("kitten0", 0, {6}, (1ull << 30) + (64ull << 20));

  Profile out;
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    auto& kitten_os = node.enclave("kitten0");
    auto& kernel = node.kernel("kitten0");
    hw::Core& kcore = node.machine().core(6);

    // Kitten's own noise signature + machine SMIs on the measured core.
    Rng rng(9);
    hw::spawn_noise(eng, kcore, hw::kitten_noise(), rng, 11'000'000'000ull);
    hw::spawn_noise(eng, kcore, hw::smi_noise(), rng, 11'000'000'000ull);

    // Export the three regions from a process on the measured core.
    os::Process* exporter = kitten_os.create_process((1ull << 30) + (8ull << 20))
                                .value();
    const u64 sizes[] = {4096, 2ull << 20, 1ull << 30};
    Segid segids[3];
    for (int i = 0; i < 3; ++i) {
      auto sid = co_await kernel.xpmem_make(
          *exporter, exporter->image_base() + static_cast<u64>(i) * (4096 + (2ull << 20)),
          sizes[i]);
      XEMEM_ASSERT(sid.ok());
      segids[i] = sid.value();
    }

    // Linux attacher: attach each region, sleep 1 s, repeat (section 5.5).
    os::Process* attacher =
        node.enclave("linux").create_process(1ull << 20, &node.machine().core(2))
            .value();
    auto attacher_loop = [&]() -> sim::Task<void> {
      XpmemGrant grants[3];
      for (int i = 0; i < 3; ++i) {
        auto g = co_await mgmt.xpmem_get(segids[i]);
        XEMEM_ASSERT(g.ok());
        grants[i] = g.value();
      }
      for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 3; ++i) {
          auto att =
              co_await mgmt.xpmem_attach(*attacher, grants[i], 0, sizes[i]);
          XEMEM_ASSERT(att.ok());
          ++out.attaches;
          XEMEM_ASSERT((co_await mgmt.xpmem_detach(*attacher, att.value())).ok());
        }
        co_await sim::delay(1'000'000'000ull);  // sleep(1)
      }
    };
    if (with_attachments) eng.spawn(attacher_loop());

    // 10 seconds of Selfish Detour on the Kitten core.
    out.trace = co_await workloads::selfish_detour(kcore, 10'000'000'000ull);
  };
  eng.run(main());
  return out;
}

u64 count_band(const workloads::DetourTrace& t, double lo_us, double hi_us) {
  u64 n = 0;
  for (const auto& d : t.detours) {
    const double us = static_cast<double>(d.duration) / 1000.0;
    if (us >= lo_us && us < hi_us) ++n;
  }
  return n;
}

}  // namespace
}  // namespace xemem

int main() {
  using namespace xemem;
  bench::header(
      "Figure 7: Noise profile of a Kitten enclave serving XEMEM attachments",
      "dense ~12 us baseline band; sparse ~100-160 us SMIs; 2 MB service "
      "detours ~45 us (below the SMI band); 1 GB service detours in the "
      "23,000-24,000 us band — two orders above any other event");

  auto base = run_profile(/*with_attachments=*/false);
  auto full = run_profile(/*with_attachments=*/true);

  auto summarize = [](const char* name, workloads::DetourTrace& t) {
    std::printf("%s: %zu detours over 10 s (%.3f%% of CPU time)\n", name,
                t.detours.size(), 100.0 * t.noise_fraction(10'000'000'000ull));
    const double bands[][2] = {{1, 30},      {30, 80},        {80, 300},
                               {300, 10000}, {10000, 100000}};
    const char* labels[] = {"1-30us (LWK baseline)", "30-80us (2MB service)",
                            "80-300us (SMI band)", "0.3-10ms",
                            "10-100ms (1GB service)"};
    for (int i = 0; i < 5; ++i) {
      u64 n = 0;
      double mean = 0;
      for (const auto& d : t.detours) {
        const double us = static_cast<double>(d.duration) / 1000.0;
        if (us >= bands[i][0] && us < bands[i][1]) {
          ++n;
          mean += us;
        }
      }
      if (n > 0) {
        std::printf("  %-26s %6llu events, mean %10.1f us\n", labels[i],
                    static_cast<unsigned long long>(n), mean / static_cast<double>(n));
      }
    }
  };

  std::printf("baseline (no attachments):\n");
  summarize("  detour trace", base.trace);
  std::printf("\nwith attachment service (4 KB / 2 MB / 1 GB every second):\n");
  summarize("  detour trace", full.trace);
  std::printf("  attachments served: %llu\n",
              static_cast<unsigned long long>(full.attaches));

  std::printf("\nshape checks:\n");
  bench::ShapeChecks checks;
  checks.expect(count_band(base.trace, 8, 20) > 1000,
                "dense baseline band near 12 us");
  checks.expect(count_band(base.trace, 80, 300) >= 5 &&
                    count_band(base.trace, 80, 300) <= 40,
                "sparse SMI band near 100-160 us");
  checks.expect(count_band(base.trace, 1000, 1e6) == 0,
                "baseline has no millisecond-scale events");
  // 4 KB service (and the ~10 us chunked PFN-list transmissions of the
  // larger attachments) hide inside the baseline band: the band grows only
  // modestly and its mean stays near 12 us, so in the paper's plot these
  // events are indistinguishable from LWK housekeeping.
  const double base_small = static_cast<double>(count_band(base.trace, 8, 20));
  const double full_small = static_cast<double>(count_band(full.trace, 8, 20));
  checks.expect((full_small - base_small) / base_small < 0.25,
                "4 KB attachments (and chunk transmissions) vanish into the "
                "12 us baseline band");
  checks.expect(count_band(full.trace, 30, 80) >= 10,
                "2 MB service appears as ~45 us detours (below the SMI band)");
  const u64 huge = count_band(full.trace, 10000, 100000);
  checks.expect(huge == 10, "exactly the ten 1 GB services appear as ~23 ms detours");
  double huge_mean = 0;
  for (const auto& d : full.trace.detours) {
    const double us = static_cast<double>(d.duration) / 1000.0;
    if (us >= 10000) huge_mean += us;
  }
  if (huge > 0) huge_mean /= static_cast<double>(huge);
  checks.expect(huge_mean > 20000 && huge_mean < 27000,
                "1 GB detours land in the paper's 23,000-24,000 us band");
  return checks.exit_code();
}
