// Ablation C: 2 MiB large-page mappings (extension beyond the paper).
//
// The paper's costs are page-granular: a 1 GiB attachment walks and maps
// 262,144 entries, which is both the Figure 5 critical path and the 23 ms
// Figure 7 detour. With 2 MiB mappings the same region is 512 entries.
// This harness measures three configurations of the Figure 5 experiment:
//
//   4K / 4K       — the paper's system (baseline);
//   2M export /4K — Kitten exports large pages, Linux still maps 4 KiB
//                   (the exporter-side walk collapses; the attacher-side
//                   map still dominates);
//   2M / 2M       — Kitten-to-Kitten with large pages on both sides (the
//                   whole mapping path collapses).
//
// It also reports the exporter-side service time for one 1 GiB attachment
// (the Figure 7 detour that would perturb an HPC simulation).
#include "bench_util.hpp"
#include "os/kitten.hpp"
#include "workloads/insitu.hpp"
#include "xemem/system.hpp"

namespace xemem {
namespace {

constexpr u64 kRegion = 1ull << 30;

struct Row {
  double gbps;
  double walk_ms;  // exporter-side service (the Figure 7 detour)
};

Row run_config(bool exporter_large, bool attacher_kitten, bool attacher_large,
               int reps) {
  sim::Engine eng(321);
  Node node(hw::Machine::r420());
  auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  node.add_cokernel("exp", 0, {6}, kRegion + (256ull << 20));
  if (attacher_kitten) node.add_cokernel("att", 0, {7}, 64ull << 20);
  XememKernel& att_kernel = attacher_kitten ? node.kernel("att") : mgmt;
  const std::string att_name = attacher_kitten ? "att" : "linux";

  Row row{};
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    auto* exp = static_cast<os::KittenEnclave*>(&node.enclave("exp"));
    exp->set_large_pages(exporter_large);
    if (attacher_kitten) {
      static_cast<os::KittenEnclave*>(&node.enclave(att_name))
          ->set_large_pages(attacher_large);
    }
    os::Process* owner = exp->create_process(kRegion + kPageSize).value();
    os::Process* user = node.enclave(att_name).create_process(1ull << 20).value();

    auto sid = co_await node.kernel("exp").xpmem_make(*owner, owner->image_base(),
                                                      kRegion);
    auto grant = co_await att_kernel.xpmem_get(sid.value());
    XEMEM_ASSERT(grant.ok());

    hw::Core& exp_core = node.machine().core(6);
    u64 attach_ns = 0;
    u64 walk_ns = 0;
    for (int r = 0; r < reps; ++r) {
      const u64 stolen0 = exp_core.stolen_ns();
      const u64 t0 = sim::now();
      auto att = co_await att_kernel.xpmem_attach(*user, grant.value(), 0, kRegion);
      attach_ns += sim::now() - t0;
      XEMEM_ASSERT(att.ok());
      walk_ns += exp_core.stolen_ns() - stolen0;
      XEMEM_ASSERT((co_await att_kernel.xpmem_detach(*user, att.value())).ok());
    }
    row.gbps = gb_per_s(kRegion * static_cast<u64>(reps), attach_ns);
    row.walk_ms = static_cast<double>(walk_ns) / static_cast<double>(reps) / 1e6;
  };
  eng.run(main());
  return row;
}

}  // namespace
}  // namespace xemem

int main() {
  using namespace xemem;
  const int reps = bench::runs_override(5);
  bench::header(
      "Ablation C: 2 MiB large-page mappings (extension; 1 GiB attachments)",
      "baseline ~13 GB/s with a ~23 ms exporter-side walk; large-page "
      "exports collapse the walk; large pages on both sides collapse the "
      "whole mapping path");

  const Row base = run_config(false, false, false, reps);
  const Row exp_large = run_config(true, false, false, reps);
  const Row both_large = run_config(true, true, true, reps);
  const Row k2k_4k = run_config(false, true, false, reps);

  std::printf("%-34s %10s %18s\n", "configuration", "GB/s", "exporter_svc_ms");
  std::printf("%-34s %10.2f %18.3f\n", "4K export / 4K attach (paper)", base.gbps,
              base.walk_ms);
  std::printf("%-34s %10.2f %18.3f\n", "2M export / 4K attach (Linux)",
              exp_large.gbps, exp_large.walk_ms);
  std::printf("%-34s %10.2f %18.3f\n", "4K export / 4K attach (Kitten)", k2k_4k.gbps,
              k2k_4k.walk_ms);
  std::printf("%-34s %10.2f %18.3f\n", "2M export / 2M attach (Kitten)",
              both_large.gbps, both_large.walk_ms);

  std::printf("\nshape checks:\n");
  bench::ShapeChecks checks;
  checks.expect(base.gbps > 11 && base.gbps < 15,
                "baseline reproduces the Figure 5 plateau");
  checks.expect(base.walk_ms > 20 && base.walk_ms < 27,
                "baseline exporter service is the Figure 7 ~23 ms detour");
  checks.expect(exp_large.walk_ms < 0.5,
                "large-page exports collapse the exporter-side walk (the "
                "Figure 7 detour all but disappears)");
  checks.expect(exp_large.gbps > 1.3 * base.gbps,
                "collapsing the walk lifts end-to-end throughput");
  checks.expect(both_large.gbps > 4 * base.gbps,
                "large pages on both sides collapse the whole mapping path");
  return checks.exit_code();
}
