// Collectives scaling: flat vs topology-aware hierarchical algorithms
// (extension beyond the paper; src/collectives/).
//
// Sweeps rank count x enclave topology x message size for allreduce —
// the data-parallel hot path — and reports a per-operation table at the
// largest topology. The flat algorithm serializes all ranks on one
// control segment, so its reduce chain grows O(ranks); the hierarchical
// algorithm reduces inside each enclave in parallel and crosses enclaves
// leader-to-leader, shrinking the serial chain to O(enclaves) — the XHC
// shape. The member-crash path is also exercised: a collective over a
// crash()ed enclave must return an error within the configured timeout.
//
// Usage: collectives_scaling [--quick] [--json PATH]
//   --quick  smoke subset (CI); --json also emits every row as JSON.
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "collectives/comm.hpp"
#include "xemem/system.hpp"

namespace xemem {
namespace {

using coll::Algo;
using coll::Comm;
using coll::OpKind;
using coll::ReduceOp;

/// Four sockets x 10 threads so up to four single-socket enclaves hold
/// eight ranks each (the R420 tops out at two sockets).
hw::MachineConfig quad_socket() {
  hw::MachineConfig cfg;
  for (int s = 0; s < 4; ++s) cfg.sockets.push_back(hw::SocketConfig{10, 4_GiB, 12.8});
  return cfg;
}

std::vector<u32> socket_cores(u32 socket, u32 count) {
  std::vector<u32> ids;
  for (u32 c = 0; c < count; ++c) ids.push_back(socket * 10 + c);
  return ids;
}

struct OpRow {
  std::string op;
  std::string algo;
  u32 ranks{};
  u32 enclaves{};
  u64 bytes{};
  double ns_per_op{};
  u64 bytes_moved{};
  u64 polls{};
  u64 attaches{};
  u64 exports{};
};

struct Harness {
  u32 ranks;
  u32 enclaves;
  coll::CollConfig cfg;
  sim::Engine eng;
  Node node;
  std::vector<Comm::Member> members;
  std::vector<std::unique_ptr<Comm>> comms;
  std::vector<std::string> placement;

  Harness(u32 n, u32 e, u64 max_bytes, sim::Duration timeout)
      : ranks(n), enclaves(e), eng(1000 + n * 17 + e), node(quad_socket()) {
    cfg.slot_bytes = std::max<u64>(1_MiB, max_bytes);
    cfg.chunk_bytes = 64_KiB;
    cfg.poll_interval = 2'000;  // 2 us: sharpen small-message latency
    cfg.timeout = timeout;
    node.add_linux_mgmt("e0", 0, socket_cores(0, 8));
    for (u32 s = 1; s < e; ++s) {
      node.add_cokernel("e" + std::to_string(s), s, socket_cores(s, 8), 2_GiB);
    }
    for (u32 r = 0; r < n; ++r) {
      placement.push_back("e" + std::to_string(r * e / n));
    }
  }

  sim::Task<void> setup() {
    co_await node.start();
    std::vector<u32> next_core(enclaves, 0);
    for (u32 r = 0; r < ranks; ++r) {
      auto& enclave = node.enclave(placement[r]);
      const u32 e = placement[r].back() - '0';
      hw::Core* core = enclave.cores()[next_core[e]++ % enclave.cores().size()];
      auto proc = enclave.create_process(
          Comm::region_bytes(ranks, cfg) + kPageSize, core);
      XEMEM_ASSERT_MSG(proc.ok(), "bench process creation failed");
      members.push_back(Comm::Member{&node.kernel(placement[r]), &enclave,
                                     proc.value(), core,
                                     proc.value()->image_base()});
    }
  }

  sim::Task<void> run_ranks(const std::vector<u32>& who,
                            std::function<sim::Task<void>(u32)> body) {
    u32 pending = static_cast<u32>(who.size());
    sim::Event all_done;
    auto wrap = [&](u32 r) -> sim::Task<void> {
      co_await body(r);
      if (--pending == 0) all_done.set();
    };
    for (u32 r : who) sim::Engine::current()->spawn(wrap(r));
    co_await all_done.wait();
  }

  std::vector<u32> all_ranks() const {
    std::vector<u32> v;
    for (u32 r = 0; r < ranks; ++r) v.push_back(r);
    return v;
  }

  sim::Task<void> make_comms() {
    comms.resize(ranks);
    co_await run_ranks(all_ranks(), [&](u32 r) -> sim::Task<void> {
      auto c = co_await Comm::create(members[r], "bench", r, ranks, cfg);
      XEMEM_ASSERT_MSG(c.ok(), "bench comm bootstrap failed");
      comms[r] = std::move(c).value();
    });
  }

  /// Aggregate a counter across every rank's communicator.
  u64 sum_stats(std::function<u64(const coll::CommStats&)> f) const {
    u64 total = 0;
    for (const auto& c : comms) {
      if (c) total += f(c->stats());
    }
    return total;
  }
};

/// One timed configuration: @p reps allreduces of @p bytes under @p algo.
OpRow run_allreduce_case(u32 ranks, u32 enclaves, u64 bytes, Algo algo,
                         int reps) {
  Harness h(ranks, enclaves, bytes, sim::Duration{2'000'000'000ull});
  OpRow row{"allreduce", coll::algo_name(algo), ranks, enclaves, bytes};
  const u64 elems = bytes / sizeof(double);
  auto main = [&]() -> sim::Task<void> {
    co_await h.setup();
    co_await h.make_comms();
    co_await h.run_ranks(h.all_ranks(), [&](u32 r) -> sim::Task<void> {
      std::vector<double> in(elems, 1.0 + r), out(elems, 0.0);
      XEMEM_ASSERT((co_await h.comms[r]->barrier(algo)).ok());
      for (int i = 0; i < reps; ++i) {
        XEMEM_ASSERT((co_await h.comms[r]->allreduce(in.data(), out.data(),
                                                     elems, ReduceOp::sum, algo))
                         .ok());
      }
    });
    row.ns_per_op = h.comms[0]->stats().of(OpKind::allreduce).latency_ns.mean();
    row.bytes_moved = h.sum_stats(
        [](const coll::CommStats& s) { return s.of(OpKind::allreduce).bytes_moved; });
    row.polls = h.sum_stats([](const coll::CommStats& s) { return s.total_polls(); });
    row.attaches = h.sum_stats([](const coll::CommStats& s) { return s.attaches; });
    row.exports = h.sum_stats([](const coll::CommStats& s) { return s.exports; });
    co_await h.run_ranks(h.all_ranks(), [&](u32 r) -> sim::Task<void> {
      (void)co_await h.comms[r]->finalize();
    });
  };
  h.eng.run(main());
  return row;
}

/// Per-operation table at one topology (every op, one algorithm).
std::vector<OpRow> run_op_table(u32 ranks, u32 enclaves, u64 bytes, Algo algo,
                                int reps) {
  Harness h(ranks, enclaves, bytes, sim::Duration{2'000'000'000ull});
  const u64 elems = bytes / sizeof(double);
  std::vector<OpRow> rows;
  auto main = [&]() -> sim::Task<void> {
    co_await h.setup();
    co_await h.make_comms();
    co_await h.run_ranks(h.all_ranks(), [&](u32 r) -> sim::Task<void> {
      std::vector<double> in(elems, 1.0 + r), out(elems, 0.0);
      std::vector<double> gath(elems * h.ranks, 0.0);
      std::vector<u8> blob(bytes, static_cast<u8>(r));
      for (int i = 0; i < reps; ++i) {
        XEMEM_ASSERT((co_await h.comms[r]->barrier(algo)).ok());
        XEMEM_ASSERT(
            (co_await h.comms[r]->bcast(blob.data(), bytes, 0, algo)).ok());
        XEMEM_ASSERT((co_await h.comms[r]->reduce(in.data(), out.data(), elems,
                                                  0, ReduceOp::sum, algo))
                         .ok());
        XEMEM_ASSERT((co_await h.comms[r]->allreduce(in.data(), out.data(),
                                                     elems, ReduceOp::sum, algo))
                         .ok());
        XEMEM_ASSERT((co_await h.comms[r]->allgather(in.data(),
                                                     elems * sizeof(double) / h.ranks,
                                                     gath.data(), algo))
                         .ok());
      }
    });
    for (u32 k = 0; k < coll::kOpKindCount; ++k) {
      const auto kind = static_cast<OpKind>(k);
      OpRow row{coll::op_name(kind), coll::algo_name(algo), ranks, enclaves,
                bytes};
      row.ns_per_op = h.comms[0]->stats().of(kind).latency_ns.mean();
      row.bytes_moved = h.sum_stats(
          [kind](const coll::CommStats& s) { return s.of(kind).bytes_moved; });
      row.polls = h.sum_stats(
          [kind](const coll::CommStats& s) { return s.of(kind).polls; });
      row.attaches = h.sum_stats([](const coll::CommStats& s) { return s.attaches; });
      row.exports = h.sum_stats([](const coll::CommStats& s) { return s.exports; });
      rows.push_back(row);
    }
    co_await h.run_ranks(h.all_ranks(), [&](u32 r) -> sim::Task<void> {
      (void)co_await h.comms[r]->finalize();
    });
  };
  h.eng.run(main());
  return rows;
}

/// Crash an enclave mid-communicator: survivors' allreduce must return an
/// error within the configured timeout. Returns the observed worst-case
/// error latency in ns (0 on misbehavior).
double run_crash_case(sim::Duration timeout) {
  Harness h(8, 4, 64_KiB, timeout);
  double worst_ns = 0;
  bool all_failed = true;
  auto main = [&]() -> sim::Task<void> {
    co_await h.setup();
    co_await h.make_comms();
    // Ranks 6 and 7 live in enclave e3: kill it.
    h.node.kernel("e3").crash();
    std::vector<u32> survivors;
    for (u32 r = 0; r < 6; ++r) survivors.push_back(r);
    co_await h.run_ranks(survivors, [&](u32 r) -> sim::Task<void> {
      std::vector<double> in(8192, 1.0), out(8192, 0.0);
      const sim::TimePoint t0 = sim::now();
      auto st = co_await h.comms[r]->allreduce(in.data(), out.data(), 8192,
                                               ReduceOp::sum, Algo::flat);
      const double took = static_cast<double>(sim::now() - t0);
      if (st.ok() || st.error() != Errc::unreachable) all_failed = false;
      worst_ns = std::max(worst_ns, took);
    });
    co_await h.run_ranks(survivors, [&](u32 r) -> sim::Task<void> {
      (void)co_await h.comms[r]->finalize();
    });
  };
  h.eng.run(main());
  return all_failed ? worst_ns : 0;
}

void print_rows(const std::vector<OpRow>& rows) {
  std::printf("%-10s %-5s %6s %9s %10s %12s %14s %9s %9s\n", "op", "algo",
              "ranks", "enclaves", "bytes", "us/op", "bytes_moved", "polls",
              "attaches");
  for (const auto& r : rows) {
    std::printf("%-10s %-5s %6u %9u %10llu %12.1f %14llu %9llu %9llu\n",
                r.op.c_str(), r.algo.c_str(), r.ranks, r.enclaves,
                static_cast<unsigned long long>(r.bytes), r.ns_per_op / 1e3,
                static_cast<unsigned long long>(r.bytes_moved),
                static_cast<unsigned long long>(r.polls),
                static_cast<unsigned long long>(r.attaches));
  }
}

void write_json(const std::string& path, const std::vector<OpRow>& rows,
                double crash_error_ns, double crash_timeout_ns, bool passed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"collectives_scaling\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        f,
        "    {\"op\": \"%s\", \"algo\": \"%s\", \"ranks\": %u, \"enclaves\": "
        "%u, \"bytes\": %llu, \"ns_per_op\": %.1f, \"bytes_moved\": %llu, "
        "\"polls\": %llu, \"attaches\": %llu, \"exports\": %llu}%s\n",
        r.op.c_str(), r.algo.c_str(), r.ranks, r.enclaves,
        static_cast<unsigned long long>(r.bytes), r.ns_per_op,
        static_cast<unsigned long long>(r.bytes_moved),
        static_cast<unsigned long long>(r.polls),
        static_cast<unsigned long long>(r.attaches),
        static_cast<unsigned long long>(r.exports),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"crash\": {\"error_ns\": %.0f, \"timeout_ns\": %.0f},\n"
               "  \"all_checks_passed\": %s\n}\n",
               crash_error_ns, crash_timeout_ns, passed ? "true" : "false");
  std::fclose(f);
}

}  // namespace
}  // namespace xemem

int main(int argc, char** argv) {
  using namespace xemem;
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  const int reps = bench::runs_override(quick ? 2 : 5);
  bench::header(
      "Collectives scaling: flat vs hierarchical (extension; src/collectives/)",
      "no paper counterpart — the XHC shape: intra-enclave reduction "
      "parallelism shrinks the flat algorithm's O(ranks) serial chain to "
      "O(enclaves)");

  struct Topo {
    u32 ranks, enclaves;
  };
  std::vector<Topo> topos = quick
                                ? std::vector<Topo>{{8, 1}, {8, 4}}
                                : std::vector<Topo>{{8, 1}, {8, 2}, {8, 4}, {16, 4}, {32, 4}};
  std::vector<u64> sizes =
      quick ? std::vector<u64>{64_KiB} : std::vector<u64>{64, 64_KiB, 1_MiB};

  std::vector<OpRow> rows;
  std::printf("allreduce sweep (%d reps/config):\n", reps);
  for (const Topo& t : topos) {
    for (u64 bytes : sizes) {
      for (Algo algo : {Algo::flat, Algo::hierarchical}) {
        rows.push_back(run_allreduce_case(t.ranks, t.enclaves, bytes, algo, reps));
      }
    }
  }
  print_rows(rows);

  const u32 table_ranks = quick ? 8 : 32;
  std::printf("\nper-operation table (%u ranks / 4 enclaves, 64 KiB):\n",
              table_ranks);
  std::vector<OpRow> table;
  for (Algo algo : {Algo::flat, Algo::hierarchical}) {
    auto part = run_op_table(table_ranks, 4, 64_KiB, algo, reps);
    table.insert(table.end(), part.begin(), part.end());
  }
  print_rows(table);
  rows.insert(rows.end(), table.begin(), table.end());

  const double crash_timeout_ns = 20e6;  // 20 ms
  const double crash_ns = run_crash_case(sim::Duration{20'000'000});
  std::printf("\nmember-crash path: survivors' allreduce errored in %.2f ms "
              "(timeout 20 ms)\n",
              crash_ns / 1e6);

  std::printf("\nshape checks:\n");
  bench::ShapeChecks checks;
  auto find = [&](u32 ranks, u32 enclaves, u64 bytes, const char* algo) -> const OpRow* {
    for (const auto& r : rows) {
      if (r.op == "allreduce" && r.ranks == ranks && r.enclaves == enclaves &&
          r.bytes == bytes && r.algo == algo) {
        return &r;
      }
    }
    return nullptr;
  };
  const u64 probe = 64_KiB;
  const OpRow* flat84 = find(8, 4, probe, "flat");
  const OpRow* hier84 = find(8, 4, probe, "hier");
  checks.expect(flat84 != nullptr && hier84 != nullptr &&
                    hier84->ns_per_op < flat84->ns_per_op,
                "hierarchical allreduce beats flat at 4 enclaves x 8 ranks");
  if (!quick) {
    const OpRow* flat324 = find(32, 4, probe, "flat");
    const OpRow* hier324 = find(32, 4, probe, "hier");
    checks.expect(flat324 != nullptr && hier324 != nullptr &&
                      hier324->ns_per_op < flat324->ns_per_op,
                  "hierarchical advantage grows at 32 ranks (leaders reduce "
                  "8-deep subtrees in parallel)");
    const OpRow* flat81 = find(8, 1, probe, "flat");
    const OpRow* hier81 = find(8, 1, probe, "hier");
    checks.expect(flat81 != nullptr && hier81 != nullptr &&
                      hier81->ns_per_op < 1.15 * flat81->ns_per_op,
                  "single enclave: hierarchical degenerates to ~flat cost");
  }
  checks.expect(crash_ns > 0 && crash_ns <= crash_timeout_ns + 1e6,
                "crashed enclave: survivors get an error within the timeout");

  if (!json_path.empty()) {
    write_json(json_path, rows, crash_ns, crash_timeout_ns, checks.all_passed());
    std::printf("\njson written to %s\n", json_path.c_str());
  }
  return checks.exit_code();
}
