// Ablation A: red-black tree vs radix-tree Palacios memory map.
//
// Paper section 5.4 identifies per-page red-black-tree inserts as ~80% of
// the guest-attachment mapping cost and proposes, as future work, "more
// intelligent radix tree based data structures that can more appropriately
// mimic a page table's organization". This harness implements that future
// work (palacios::MapBackend::radix) and measures the Table 2 VM-attacher
// configuration under both backends.
//
// Expectation: the radix backend approaches the paper's "(w/o rb-tree
// inserts)" 8.79 GB/s figure, because a fixed-depth radix descent has no
// comparisons and no re-balancing.
#include "bench_util.hpp"
#include "os/guest_linux.hpp"
#include "workloads/insitu.hpp"
#include "xemem/system.hpp"

namespace xemem {
namespace {

constexpr u64 kRegion = 1ull << 30;

double run_backend(palacios::MapBackend backend, int reps) {
  sim::Engine eng(99);
  Node node(hw::Machine::r420());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  node.add_cokernel("kitten0", 0, {6}, kRegion + (64ull << 20));
  node.add_vm("vm0", "linux", 2ull << 30, {4, 5}, backend);

  double gbps = 0;
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* exporter =
        node.enclave("kitten0").create_process(kRegion + kPageSize).value();
    os::Process* attacher = node.enclave("vm0").create_process(4ull << 20).value();
    auto segid = co_await node.kernel("kitten0").xpmem_make(
        *exporter, exporter->image_base(), kRegion);
    auto grant = co_await node.kernel("vm0").xpmem_get(segid.value());
    u64 attach_ns = 0;
    for (int r = 0; r < reps; ++r) {
      const u64 t0 = sim::now();
      auto att = co_await node.kernel("vm0").xpmem_attach(*attacher, grant.value(),
                                                          0, kRegion);
      attach_ns += sim::now() - t0;
      XEMEM_ASSERT(att.ok());
      XEMEM_ASSERT(
          (co_await node.kernel("vm0").xpmem_detach(*attacher, att.value())).ok());
    }
    gbps = gb_per_s(kRegion * static_cast<u64>(reps), attach_ns);
  };
  eng.run(main());
  return gbps;
}

}  // namespace
}  // namespace xemem

int main() {
  using namespace xemem;
  const int reps = bench::runs_override(5);
  bench::header(
      "Ablation A: Palacios memory-map structure (section 5.4 future work)",
      "rb-tree backend ~3.99 GB/s for 1 GB guest attachments; removing the "
      "insert cost would yield 8.79 GB/s — a radix map should approach that");

  const double rb = run_backend(palacios::MapBackend::rbtree, reps);
  const double rx = run_backend(palacios::MapBackend::radix, reps);
  std::printf("%-24s %10s\n", "memory-map backend", "GB/s");
  std::printf("%-24s %10.3f\n", "red-black tree", rb);
  std::printf("%-24s %10.3f\n", "radix (future work)", rx);
  std::printf("speedup from radix map: %.2fx\n", rx / rb);

  std::printf("\nshape checks:\n");
  bench::ShapeChecks checks;
  checks.expect(rb > 3.0 && rb < 5.5, "rb-tree backend near the paper's 3.99 GB/s");
  checks.expect(rx > 7.0 && rx < 10.5,
                "radix backend approaches the paper's 8.79 GB/s w/o-inserts bound");
  checks.expect(rx / rb > 1.6, "the proposed radix map removes most of the overhead");
  return checks.exit_code();
}
