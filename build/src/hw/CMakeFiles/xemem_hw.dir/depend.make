# Empty dependencies file for xemem_hw.
# This may be replaced when dependencies are built.
