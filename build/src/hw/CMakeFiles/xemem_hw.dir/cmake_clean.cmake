file(REMOVE_RECURSE
  "CMakeFiles/xemem_hw.dir/phys_mem.cpp.o"
  "CMakeFiles/xemem_hw.dir/phys_mem.cpp.o.d"
  "libxemem_hw.a"
  "libxemem_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xemem_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
