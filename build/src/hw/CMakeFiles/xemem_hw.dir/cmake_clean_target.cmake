file(REMOVE_RECURSE
  "libxemem_hw.a"
)
