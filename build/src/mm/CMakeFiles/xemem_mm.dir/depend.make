# Empty dependencies file for xemem_mm.
# This may be replaced when dependencies are built.
