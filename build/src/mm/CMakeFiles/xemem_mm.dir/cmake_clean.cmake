file(REMOVE_RECURSE
  "CMakeFiles/xemem_mm.dir/page_table.cpp.o"
  "CMakeFiles/xemem_mm.dir/page_table.cpp.o.d"
  "libxemem_mm.a"
  "libxemem_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xemem_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
