file(REMOVE_RECURSE
  "libxemem_mm.a"
)
