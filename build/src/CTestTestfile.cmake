# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("hw")
subdirs("mm")
subdirs("palacios")
subdirs("pisces")
subdirs("os")
subdirs("xemem")
subdirs("net")
subdirs("workloads")
