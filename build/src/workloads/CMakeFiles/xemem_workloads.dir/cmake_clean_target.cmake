file(REMOVE_RECURSE
  "libxemem_workloads.a"
)
