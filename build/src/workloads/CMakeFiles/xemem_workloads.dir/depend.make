# Empty dependencies file for xemem_workloads.
# This may be replaced when dependencies are built.
