file(REMOVE_RECURSE
  "CMakeFiles/xemem_workloads.dir/hpccg.cpp.o"
  "CMakeFiles/xemem_workloads.dir/hpccg.cpp.o.d"
  "CMakeFiles/xemem_workloads.dir/insitu.cpp.o"
  "CMakeFiles/xemem_workloads.dir/insitu.cpp.o.d"
  "libxemem_workloads.a"
  "libxemem_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xemem_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
