file(REMOVE_RECURSE
  "libxemem_xemem.a"
)
