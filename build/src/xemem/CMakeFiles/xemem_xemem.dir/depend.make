# Empty dependencies file for xemem_xemem.
# This may be replaced when dependencies are built.
