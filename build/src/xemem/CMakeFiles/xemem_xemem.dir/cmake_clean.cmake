file(REMOVE_RECURSE
  "CMakeFiles/xemem_xemem.dir/kernel.cpp.o"
  "CMakeFiles/xemem_xemem.dir/kernel.cpp.o.d"
  "libxemem_xemem.a"
  "libxemem_xemem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xemem_xemem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
