# Empty compiler generated dependencies file for xemem_os.
# This may be replaced when dependencies are built.
