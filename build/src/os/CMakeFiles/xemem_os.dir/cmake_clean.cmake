file(REMOVE_RECURSE
  "CMakeFiles/xemem_os.dir/enclave.cpp.o"
  "CMakeFiles/xemem_os.dir/enclave.cpp.o.d"
  "CMakeFiles/xemem_os.dir/guest_linux.cpp.o"
  "CMakeFiles/xemem_os.dir/guest_linux.cpp.o.d"
  "CMakeFiles/xemem_os.dir/kitten.cpp.o"
  "CMakeFiles/xemem_os.dir/kitten.cpp.o.d"
  "CMakeFiles/xemem_os.dir/linux.cpp.o"
  "CMakeFiles/xemem_os.dir/linux.cpp.o.d"
  "libxemem_os.a"
  "libxemem_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xemem_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
