
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/enclave.cpp" "src/os/CMakeFiles/xemem_os.dir/enclave.cpp.o" "gcc" "src/os/CMakeFiles/xemem_os.dir/enclave.cpp.o.d"
  "/root/repo/src/os/guest_linux.cpp" "src/os/CMakeFiles/xemem_os.dir/guest_linux.cpp.o" "gcc" "src/os/CMakeFiles/xemem_os.dir/guest_linux.cpp.o.d"
  "/root/repo/src/os/kitten.cpp" "src/os/CMakeFiles/xemem_os.dir/kitten.cpp.o" "gcc" "src/os/CMakeFiles/xemem_os.dir/kitten.cpp.o.d"
  "/root/repo/src/os/linux.cpp" "src/os/CMakeFiles/xemem_os.dir/linux.cpp.o" "gcc" "src/os/CMakeFiles/xemem_os.dir/linux.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/xemem_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/xemem_mm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
