file(REMOVE_RECURSE
  "libxemem_os.a"
)
