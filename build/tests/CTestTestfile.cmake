# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_channels[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_dynamic[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_knem[1]_include.cmake")
include("/root/repo/build/tests/test_large_pages[1]_include.cmake")
include("/root/repo/build/tests/test_mm[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_palacios[1]_include.cmake")
include("/root/repo/build/tests/test_permissions[1]_include.cmake")
include("/root/repo/build/tests/test_ring[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_shm[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_xemem[1]_include.cmake")
