# Empty compiler generated dependencies file for test_permissions.
# This may be replaced when dependencies are built.
