file(REMOVE_RECURSE
  "CMakeFiles/test_permissions.dir/test_permissions.cpp.o"
  "CMakeFiles/test_permissions.dir/test_permissions.cpp.o.d"
  "test_permissions"
  "test_permissions.pdb"
  "test_permissions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_permissions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
