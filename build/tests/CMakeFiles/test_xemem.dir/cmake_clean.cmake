file(REMOVE_RECURSE
  "CMakeFiles/test_xemem.dir/test_xemem.cpp.o"
  "CMakeFiles/test_xemem.dir/test_xemem.cpp.o.d"
  "test_xemem"
  "test_xemem.pdb"
  "test_xemem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xemem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
