# Empty dependencies file for test_xemem.
# This may be replaced when dependencies are built.
