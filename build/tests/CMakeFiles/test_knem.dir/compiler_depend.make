# Empty compiler generated dependencies file for test_knem.
# This may be replaced when dependencies are built.
