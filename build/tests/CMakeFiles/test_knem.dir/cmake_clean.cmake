file(REMOVE_RECURSE
  "CMakeFiles/test_knem.dir/test_knem.cpp.o"
  "CMakeFiles/test_knem.dir/test_knem.cpp.o.d"
  "test_knem"
  "test_knem.pdb"
  "test_knem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
