file(REMOVE_RECURSE
  "CMakeFiles/test_large_pages.dir/test_large_pages.cpp.o"
  "CMakeFiles/test_large_pages.dir/test_large_pages.cpp.o.d"
  "test_large_pages"
  "test_large_pages.pdb"
  "test_large_pages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_large_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
