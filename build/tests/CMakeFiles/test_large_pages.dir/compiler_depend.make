# Empty compiler generated dependencies file for test_large_pages.
# This may be replaced when dependencies are built.
