file(REMOVE_RECURSE
  "CMakeFiles/test_palacios.dir/test_palacios.cpp.o"
  "CMakeFiles/test_palacios.dir/test_palacios.cpp.o.d"
  "test_palacios"
  "test_palacios.pdb"
  "test_palacios[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_palacios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
