# Empty dependencies file for test_palacios.
# This may be replaced when dependencies are built.
