file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_service.dir/checkpoint_service.cpp.o"
  "CMakeFiles/checkpoint_service.dir/checkpoint_service.cpp.o.d"
  "checkpoint_service"
  "checkpoint_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
