# Empty compiler generated dependencies file for checkpoint_service.
# This may be replaced when dependencies are built.
