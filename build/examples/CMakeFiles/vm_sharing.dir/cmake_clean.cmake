file(REMOVE_RECURSE
  "CMakeFiles/vm_sharing.dir/vm_sharing.cpp.o"
  "CMakeFiles/vm_sharing.dir/vm_sharing.cpp.o.d"
  "vm_sharing"
  "vm_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
