# Empty dependencies file for vm_sharing.
# This may be replaced when dependencies are built.
