file(REMOVE_RECURSE
  "CMakeFiles/insitu_pipeline.dir/insitu_pipeline.cpp.o"
  "CMakeFiles/insitu_pipeline.dir/insitu_pipeline.cpp.o.d"
  "insitu_pipeline"
  "insitu_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
