file(REMOVE_RECURSE
  "CMakeFiles/ablation_ipi_routing.dir/ablation_ipi_routing.cpp.o"
  "CMakeFiles/ablation_ipi_routing.dir/ablation_ipi_routing.cpp.o.d"
  "ablation_ipi_routing"
  "ablation_ipi_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ipi_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
