file(REMOVE_RECURSE
  "CMakeFiles/ablation_large_pages.dir/ablation_large_pages.cpp.o"
  "CMakeFiles/ablation_large_pages.dir/ablation_large_pages.cpp.o.d"
  "ablation_large_pages"
  "ablation_large_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_large_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
