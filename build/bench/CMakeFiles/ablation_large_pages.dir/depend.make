# Empty dependencies file for ablation_large_pages.
# This may be replaced when dependencies are built.
