file(REMOVE_RECURSE
  "CMakeFiles/fig9_multi_node_insitu.dir/fig9_multi_node_insitu.cpp.o"
  "CMakeFiles/fig9_multi_node_insitu.dir/fig9_multi_node_insitu.cpp.o.d"
  "fig9_multi_node_insitu"
  "fig9_multi_node_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_multi_node_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
