# Empty compiler generated dependencies file for fig9_multi_node_insitu.
# This may be replaced when dependencies are built.
