file(REMOVE_RECURSE
  "CMakeFiles/ablation_memory_map.dir/ablation_memory_map.cpp.o"
  "CMakeFiles/ablation_memory_map.dir/ablation_memory_map.cpp.o.d"
  "ablation_memory_map"
  "ablation_memory_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memory_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
