# Empty dependencies file for ablation_memory_map.
# This may be replaced when dependencies are built.
