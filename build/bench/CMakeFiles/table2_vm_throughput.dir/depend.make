# Empty dependencies file for table2_vm_throughput.
# This may be replaced when dependencies are built.
