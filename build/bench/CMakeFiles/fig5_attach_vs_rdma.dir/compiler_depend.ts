# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5_attach_vs_rdma.
