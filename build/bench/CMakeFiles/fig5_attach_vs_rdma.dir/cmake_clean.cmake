file(REMOVE_RECURSE
  "CMakeFiles/fig5_attach_vs_rdma.dir/fig5_attach_vs_rdma.cpp.o"
  "CMakeFiles/fig5_attach_vs_rdma.dir/fig5_attach_vs_rdma.cpp.o.d"
  "fig5_attach_vs_rdma"
  "fig5_attach_vs_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_attach_vs_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
