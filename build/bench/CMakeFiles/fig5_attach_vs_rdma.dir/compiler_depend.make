# Empty compiler generated dependencies file for fig5_attach_vs_rdma.
# This may be replaced when dependencies are built.
