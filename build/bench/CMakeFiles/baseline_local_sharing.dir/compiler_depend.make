# Empty compiler generated dependencies file for baseline_local_sharing.
# This may be replaced when dependencies are built.
