file(REMOVE_RECURSE
  "CMakeFiles/baseline_local_sharing.dir/baseline_local_sharing.cpp.o"
  "CMakeFiles/baseline_local_sharing.dir/baseline_local_sharing.cpp.o.d"
  "baseline_local_sharing"
  "baseline_local_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_local_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
