# Empty compiler generated dependencies file for fig7_noise_profile.
# This may be replaced when dependencies are built.
