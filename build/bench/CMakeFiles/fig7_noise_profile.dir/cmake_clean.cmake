file(REMOVE_RECURSE
  "CMakeFiles/fig7_noise_profile.dir/fig7_noise_profile.cpp.o"
  "CMakeFiles/fig7_noise_profile.dir/fig7_noise_profile.cpp.o.d"
  "fig7_noise_profile"
  "fig7_noise_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_noise_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
