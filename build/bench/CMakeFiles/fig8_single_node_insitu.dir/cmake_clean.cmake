file(REMOVE_RECURSE
  "CMakeFiles/fig8_single_node_insitu.dir/fig8_single_node_insitu.cpp.o"
  "CMakeFiles/fig8_single_node_insitu.dir/fig8_single_node_insitu.cpp.o.d"
  "fig8_single_node_insitu"
  "fig8_single_node_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_single_node_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
