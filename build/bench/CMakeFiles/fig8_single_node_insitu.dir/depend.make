# Empty dependencies file for fig8_single_node_insitu.
# This may be replaced when dependencies are built.
