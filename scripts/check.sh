#!/usr/bin/env bash
# Full local gate: tier-1 build + tests, then the same suite under
# AddressSanitizer/UBSan (catches lifetime bugs the coroutine-heavy
# simulator is prone to), plus optional standalone UBSan and TSan legs
# (the sim is single-threaded by design; the TSan leg guards that
# invariant against accidental thread use).
# Usage: scripts/check.sh [--asan-only|--fast|--ubsan|--tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
asan_only=0
ubsan=0
tsan=0
case "${1:-}" in
  --fast) fast=1 ;;
  --asan-only) asan_only=1 ;;
  --ubsan) ubsan=1 ;;
  --tsan) tsan=1 ;;
  "") ;;
  *) echo "usage: $0 [--asan-only|--fast|--ubsan|--tsan]" >&2; exit 2 ;;
esac

if [[ $tsan -eq 1 ]]; then
  echo "== sanitizers: standalone tsan build + ctest =="
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j
  ctest --preset tsan -j "$(nproc)"
  echo "all checks passed"
  exit 0
fi

if [[ $ubsan -eq 1 ]]; then
  echo "== sanitizers: standalone ubsan build + ctest =="
  cmake --preset ubsan >/dev/null
  cmake --build --preset ubsan -j
  ctest --preset ubsan -j "$(nproc)"
  echo "all checks passed"
  exit 0
fi

if [[ $asan_only -eq 0 ]]; then
  echo "== tier-1: RelWithDebInfo build + ctest =="
  cmake -B build -S . >/dev/null
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j "$(nproc)"

  echo "== collectives bench smoke (JSON next to the ablations) =="
  ./build/bench/collectives_scaling --quick --json build/collectives_scaling.json

  echo "== attach fast-path ablation smoke =="
  ./build/bench/ablation_attach_path --quick --json build/attach_path.json
  cp build/attach_path.json BENCH_attach_path.json

  echo "== name-service failover crashpoint-sweep smoke =="
  ./build/bench/ablation_ns_failover --quick --json build/ns_failover.json
  cp build/ns_failover.json BENCH_ns_failover.json

  echo "== sharded name-service churn-storm smoke =="
  ./build/bench/ablation_ns_shard --quick --json build/ns_shard.json
  cp build/ns_shard.json BENCH_ns_shard.json

  echo "== capability revocation ablation smoke =="
  ./build/bench/ablation_capability --quick --json build/capability.json
  cp build/capability.json BENCH_capability.json

  echo "== burst-buffer I/O cache ablation smoke =="
  ./build/bench/ablation_iocache --quick --json build/iocache.json
  cp build/iocache.json BENCH_iocache.json
fi

if [[ $fast -eq 0 ]]; then
  echo "== sanitizers: asan+ubsan build + ctest =="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j
  ctest --preset asan -j "$(nproc)"

  echo "== collectives bench smoke (asan) =="
  ./build-asan/bench/collectives_scaling --quick --json build-asan/collectives_scaling.json

  echo "== attach fast-path ablation smoke (asan) =="
  ./build-asan/bench/ablation_attach_path --quick --json build-asan/attach_path.json

  echo "== name-service failover crashpoint-sweep smoke (asan) =="
  ./build-asan/bench/ablation_ns_failover --quick --json build-asan/ns_failover.json

  echo "== sharded name-service churn-storm smoke (asan) =="
  ./build-asan/bench/ablation_ns_shard --quick --json build-asan/ns_shard.json
  cp build-asan/ns_shard.json BENCH_ns_shard.json

  echo "== capability revocation ablation smoke (asan) =="
  ./build-asan/bench/ablation_capability --quick --json build-asan/capability.json
  cp build-asan/capability.json BENCH_capability.json

  echo "== burst-buffer I/O cache ablation smoke (asan) =="
  ./build-asan/bench/ablation_iocache --quick --json build-asan/iocache.json
  cp build-asan/iocache.json BENCH_iocache.json
fi

echo "all checks passed"
