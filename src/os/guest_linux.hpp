// Linux running inside a Palacios VM (paper section 4.4).
//
// Identical userspace behaviour to LinuxEnclave, but the frames its page
// tables reference are *guest* frames, so every XEMEM operation crosses
// the VMM boundary:
//
//  * Export (Figure 4(b)): the guest pins + walks its page tables to get a
//    guest frame list, stages it through the virtual PCI device window,
//    and issues a hypercall; Palacios walks the memory map per page to
//    build the host frame list. Cheap while the map is small — this is
//    Table 2's 12.6 GB/s row.
//  * Attach (Figure 4(a)): Palacios allocates fresh hot-plug guest pages,
//    inserts one memory-map entry per host frame (the red-black-tree cost
//    of Table 2's 3.99 GB/s row), stages the new guest-frame list through
//    the PCI window, raises a virtual IRQ, and the guest maps the frames
//    into the attaching process — each guest PTE update paying the
//    nested-paging surcharge.
#pragma once

#include <unordered_map>

#include "common/costs.hpp"
#include "os/enclave.hpp"
#include "palacios/vm.hpp"

namespace xemem::os {

class GuestLinuxEnclave final : public Enclave {
 public:
  /// @param vm         the Palacios container this guest runs in
  /// @param host_core  core where VMM work (map updates, hypercall
  ///                   handling) executes — a core of the *host* enclave
  GuestLinuxEnclave(std::string name, hw::Machine& machine, palacios::PalaciosVm& vm,
                    sim::SharedBandwidth& membw, std::vector<hw::Core*> guest_cores,
                    hw::Core* guest_service_core, hw::Core* host_core)
      : Enclave(std::move(name), machine, vm.guest_ram(), membw,
                std::move(guest_cores), guest_service_core),
        vm_(vm),
        host_core_(host_core) {}

  palacios::PalaciosVm& vm() { return vm_; }
  hw::Core* host_core() { return host_core_; }

  Result<Process*> create_process(u64 image_bytes, hw::Core* core = nullptr) override;

  sim::Task<Result<mm::PfnList>> service_make_pfn_list(Process& owner, Vaddr va,
                                                       u64 pages) override;
  sim::Task<Result<Vaddr>> map_attachment(Process& attacher,
                                          const mm::PfnList& host_frames, bool lazy,
                                          bool writable) override;
  sim::Task<void> touch_attached(Process& attacher, Vaddr va, u64 pages) override;
  sim::Task<Result<void>> unmap_attachment(Process& attacher, Vaddr va,
                                           u64 pages) override;

  Result<Pfn> frame_to_host(Pfn domain_frame) const override {
    return vm_.translate_gfn(Gfn{domain_frame.value()});
  }

  /// Nested-paging overhead on bandwidth-bound guest kernels (~10% for
  /// STREAM-class access patterns under 4 KiB nested mappings).
  double mem_overhead_factor() const override { return 1.10; }

  /// Cumulative simulated time charged for VMM memory-map updates during
  /// attachments — the quantity Table 2 isolates as "(w/o rb-tree
  /// inserts)". Reset before a measurement window.
  u64 vmm_map_ns() const { return vmm_map_ns_; }
  void reset_vmm_map_ns() { vmm_map_ns_ = 0; }

 private:
  /// PCI-window staging of @p bytes: sender-side copy + world switch +
  /// receiver-side copy (see palacios/pci_channel.hpp; the attach path
  /// stages PFN lists through the same device).
  sim::Task<void> pci_stage(u64 bytes, hw::Core* from, hw::Core* to);

  palacios::PalaciosVm& vm_;
  hw::Core* host_core_;
  u64 vmm_map_ns_{0};
  // Guest frames of each live attachment, keyed by (pid, va), for unmap.
  std::unordered_map<u64, std::vector<Gfn>> attachments_;
  static u64 att_key(const Process& p, Vaddr va) {
    return (static_cast<u64>(p.pid()) << 48) ^ va.value();
  }
};

}  // namespace xemem::os
