// Kitten lightweight-kernel personality.
//
// Kitten (paper section 4) maps every virtual region of a process to
// physical memory statically at process creation from contiguous blocks,
// and originally supported local shared memory only through SMARTMAP
// page-table aliasing. XEMEM adds (paper section 4.3):
//  * dynamic heap expansion — a virtual region above the static image into
//    which remote PFN lists are mapped, without disturbing SMARTMAP or the
//    static regions;
//  * PFN-list generation using the kernel's existing page-table walkers.
#pragma once

#include "common/costs.hpp"
#include "os/enclave.hpp"

namespace xemem::os {

class KittenEnclave final : public Enclave {
 public:
  using Enclave::Enclave;

  /// Eagerly allocates contiguous frames and maps the whole image at
  /// creation — Kitten's static address-space policy. Contiguity is what
  /// keeps Kitten exports compressible and its noise profile flat.
  Result<Process*> create_process(u64 image_bytes, hw::Core* core = nullptr) override;

  sim::Task<Result<mm::PfnList>> service_make_pfn_list(Process& owner, Vaddr va,
                                                       u64 pages) override;
  sim::Task<Result<Vaddr>> map_attachment(Process& attacher,
                                          const mm::PfnList& host_frames, bool lazy,
                                          bool writable) override;
  sim::Task<Result<Vaddr>> map_attachment_extents(
      Process& attacher, const std::vector<hw::FrameExtent>& extents, bool lazy,
      bool writable) override;
  sim::Task<void> touch_attached(Process& attacher, Vaddr va, u64 pages) override;
  sim::Task<Result<void>> unmap_attachment(Process& attacher, Vaddr va,
                                           u64 pages) override;
  Result<Pfn> frame_to_host(Pfn domain_frame) const override {
    return domain_frame;  // native enclave: domain frames are host frames
  }

  // ------------------------------------------------------------ SMARTMAP
  //
  // SMARTMAP [Brightwell et al., SC'08] gives every local process a window
  // onto every other local process's address space by sharing top-level
  // page-table entries: process T's memory appears in process V at
  //   smartmap_va(T, va) = (T.pid + 1) << 39 | va.
  // Setup is O(1) (one top-level entry), which is why the paper keeps
  // SMARTMAP for *local* sharing while XEMEM handles cross-enclave
  // sharing. bench/micro_datastructures compares the two local paths.

  static Vaddr smartmap_va(const Process& target, Vaddr va) {
    return Vaddr{((static_cast<u64>(target.pid()) + 1) << 39) | va.value()};
  }

  /// Resolve a SMARTMAP window address to (target process, local VA);
  /// nullptr if the slot does not name a live process.
  std::pair<Process*, Vaddr> smartmap_resolve(Vaddr smartmap_addr) {
    const u32 slot = static_cast<u32>(smartmap_addr.value() >> 39);
    if (slot == 0) return {nullptr, Vaddr{}};
    Process* t = process(slot - 1);
    return {t, Vaddr{smartmap_addr.value() & ((1ull << 39) - 1)}};
  }

  /// Read through a SMARTMAP window (data plane).
  Result<void> smartmap_read(Vaddr smartmap_addr, void* dst, u64 len) {
    auto [target, va] = smartmap_resolve(smartmap_addr);
    if (target == nullptr) return Errc::invalid_argument;
    return proc_read(*target, va, dst, len);
  }
  Result<void> smartmap_write(Vaddr smartmap_addr, const void* src, u64 len) {
    auto [target, va] = smartmap_resolve(smartmap_addr);
    if (target == nullptr) return Errc::invalid_argument;
    return proc_write(*target, va, src, len);
  }

  /// Simulated cost of establishing a SMARTMAP window: one top-level PTE
  /// write, independent of region size.
  static constexpr u64 kSmartmapSetupCost = 2 * costs::kPtEntryVisit;

  // -------------------------------------------------------- large pages
  //
  // Extension beyond the paper: with 2 MiB mappings a 1 GiB export is 512
  // page-table entries instead of 262,144, collapsing both the exporter's
  // PFN-list walk and the attacher's mapping cost (the dominant terms of
  // Figure 5 / Figure 7). bench/ablation_large_pages quantifies it. The
  // trade-off is granularity: frames must be 2 MiB-aligned and regions are
  // shared in 2 MiB units.
  void set_large_pages(bool on) { large_pages_ = on; }
  bool large_pages() const { return large_pages_; }

 private:
  Result<std::vector<hw::FrameExtent>> frames_alloc(u64 pages);

  bool large_pages_{false};
};

}  // namespace xemem::os
