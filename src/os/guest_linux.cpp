#include "os/guest_linux.hpp"

namespace xemem::os {

Result<Process*> GuestLinuxEnclave::create_process(u64 image_bytes, hw::Core* core) {
  const u64 pages = pages_for(image_bytes);
  // Guest Linux allocates guest frames page-at-a-time like native Linux.
  auto fr = frames().alloc(pages, hw::AllocPolicy::scattered);
  if (!fr.ok()) return fr.error();

  auto proc = std::make_unique<Process>(next_pid(), this, pick_core(core));
  Process* p = proc.get();
  const Vaddr base = p->alloc_va(image_bytes);
  const auto list = mm::PfnList::from_extents(fr.value());
  auto mapped = p->pt().map_range(
      base, list.pfns, mm::PageFlags::writable | mm::PageFlags::user);
  if (!mapped.ok()) {
    for (auto e : fr.value()) frames().free(e);
    return mapped.error();
  }
  p->adopt_frames(fr.value());
  p->set_image(base, pages);
  return add_process(std::move(proc));
}

sim::Task<void> GuestLinuxEnclave::pci_stage(u64 bytes, hw::Core* from, hw::Core* to) {
  const u64 copy_ns =
      static_cast<u64>(static_cast<double>(bytes) / costs::kPciWindowBytesPerNs);
  co_await from->run_irq(copy_ns);               // stage into the window
  co_await sim::delay(costs::kVmEntryExit);      // IRQ injection / hypercall
  co_await to->run_irq(copy_ns);                 // copy out on the other side
}

sim::Task<Result<mm::PfnList>> GuestLinuxEnclave::service_make_pfn_list(
    Process& owner, Vaddr va, u64 pages) {
  // Guest side: get_user_pages + page-table walk, yielding *guest* frames.
  mm::WalkStats st;
  auto gframes = owner.pt().translate_range(va, pages, &st);
  if (!gframes.ok()) co_return gframes.error();
  co_await service_core()->run_irq(pages * costs::kLinuxPinPerPage +
                                   st.entries_visited * costs::kPtEntryVisit);

  // Stage the guest frame list through the PCI device and hypercall out
  // (Figure 4(b), steps 1-2).
  std::vector<Gfn> gfns;
  gfns.reserve(gframes.value().size());
  for (Pfn f : gframes.value()) gfns.push_back(Gfn{f.value()});
  co_await pci_stage(gfns.size() * sizeof(u64), service_core(), host_core_);

  // Host side: Palacios walks the memory map per page (steps 3-4).
  palacios::MapWork work;
  auto host = vm_.guest_to_host(gfns, &work);
  if (!host.ok()) co_return host.error();
  co_await host_core_->run_irq(vm_.map_work_cost(work));
  co_return std::move(host).value();
}

sim::Task<Result<Vaddr>> GuestLinuxEnclave::map_attachment(
    Process& attacher, const mm::PfnList& host_frames, bool lazy, bool writable) {
  (void)lazy;  // remote frames reach a guest only through the VMM: eager
  // Host side (Figure 4(a) steps 1-2): allocate new guest pages and map
  // them to the host frames — one memory-map entry per page.
  auto mapped = vm_.map_host_frames(host_frames);
  if (!mapped.ok()) co_return mapped.error();
  auto [gfns, work] = std::move(mapped).value();
  const u64 map_ns = vm_.map_work_cost(work);
  vmm_map_ns_ += map_ns;
  co_await host_core_->run_irq(map_ns);

  // Steps 3-4: stage the new guest-frame list through the device and
  // raise the virtual IRQ.
  co_await pci_stage(gfns.size() * sizeof(u64), host_core_, service_core());

  // Step 5 (guest): map the new guest pages into the attaching process.
  const Vaddr va = attacher.alloc_va(host_frames.byte_span());
  mm::PfnList gf;
  gf.pfns.reserve(gfns.size());
  for (Gfn g : gfns) gf.pfns.push_back(Pfn{g.value()});
  const mm::PageFlags flags =
      writable ? mm::PageFlags::writable | mm::PageFlags::user : mm::PageFlags::user;
  mm::WalkStats st;
  auto r = attacher.pt().map_range(va, gf.pfns, flags, &st);
  if (!r.ok()) {
    (void)vm_.unmap_host_frames(gfns);
    co_return r.error();
  }
  const u64 guest_map_cost =
      st.entries_visited * costs::kPtEntryVisit +
      gf.pfns.size() * (costs::kLinuxMapPerPage + costs::kVmGuestMapExtraPerPage);
  co_await attacher.core()->compute(guest_map_cost);

  attachments_.emplace(att_key(attacher, va), std::move(gfns));
  co_return va;
}

sim::Task<void> GuestLinuxEnclave::touch_attached(Process&, Vaddr, u64) {
  co_return;  // guest attachments are installed eagerly
}

sim::Task<Result<void>> GuestLinuxEnclave::unmap_attachment(Process& attacher,
                                                            Vaddr va, u64 pages) {
  auto it = attachments_.find(att_key(attacher, va));
  if (it == attachments_.end()) co_return Errc::not_attached;
  std::vector<Gfn> gfns = std::move(it->second);
  attachments_.erase(it);
  XEMEM_ASSERT(gfns.size() == pages);

  mm::WalkStats st;
  auto r = attacher.pt().unmap_range(va, pages, &st);
  if (!r.ok()) co_return r;
  co_await attacher.core()->compute(st.entries_visited * costs::kPtEntryVisit);

  // Hypercall so Palacios can retire the hot-plug region and its map
  // entries.
  co_await pci_stage(gfns.size() * sizeof(u64), service_core(), host_core_);
  auto work = vm_.unmap_host_frames(gfns);
  if (!work.ok()) co_return work.error();
  co_await host_core_->run_irq(vm_.map_work_cost(work.value()));
  co_return Result<void>{};
}

}  // namespace xemem::os
