// Linux fullweight personality.
//
// Models the behaviours of the paper's Linux XEMEM kernel module
// (section 4.3):
//  * exports pin memory with get_user_pages before the page-table walk;
//  * remote attachments map eagerly with vm_mmap + remap_pfn_range;
//  * *local* (single-OS) attachments use Linux's native page-fault
//    semantics: the mapping is installed lazily, one fault per page on
//    first touch — the overhead the paper blames for the Linux-only
//    configuration's recurring-attachment slowdown and variance
//    (section 6.4);
//  * per-page map work is inflated by a small interference factor while
//    multiple attachments are in flight in the same Linux instance
//    (shared mm structures; paper section 5.3).
//
// Process memory is allocated page-at-a-time from a fragmented pool
// (AllocPolicy::scattered), so Linux exports produce non-contiguous PFN
// lists — the property that forces per-page Palacios memory-map entries.
#pragma once

#include <unordered_map>

#include "common/costs.hpp"
#include "os/enclave.hpp"

namespace xemem::os {

class LinuxEnclave final : public Enclave {
 public:
  using Enclave::Enclave;

  /// Creates the process image from scattered frames. Population is eager
  /// (the CG/STREAM workloads touch their whole working set in the first
  /// iteration anyway); XEMEM-attachment fault semantics are modeled
  /// separately via map_attachment(lazy=true).
  Result<Process*> create_process(u64 image_bytes, hw::Core* core = nullptr) override;

  sim::Task<Result<mm::PfnList>> service_make_pfn_list(Process& owner, Vaddr va,
                                                       u64 pages) override;
  sim::Task<Result<Vaddr>> map_attachment(Process& attacher,
                                          const mm::PfnList& host_frames, bool lazy,
                                          bool writable) override;
  sim::Task<Result<Vaddr>> map_attachment_extents(
      Process& attacher, const std::vector<hw::FrameExtent>& extents, bool lazy,
      bool writable) override;
  sim::Task<void> touch_attached(Process& attacher, Vaddr va, u64 pages) override;
  sim::Task<Result<void>> unmap_attachment(Process& attacher, Vaddr va,
                                           u64 pages) override;
  Result<Pfn> frame_to_host(Pfn domain_frame) const override { return domain_frame; }
  bool lazy_local_attach() const override { return true; }

  /// Pages of lazily-attached regions still waiting for their first fault
  /// (diagnostics / tests).
  u64 pending_fault_pages() const {
    u64 n = 0;
    for (auto& [va, rec] : lazy_) n += rec.remaining;
    return n;
  }

 private:
  struct LazyRange {
    mm::PfnList frames;
    u64 remaining;  // pages not yet faulted in
    bool writable;
  };

  /// Interference multiplier on per-page map work (see costs.hpp).
  double smp_factor() const {
    return attach_inflight_ > 1 ? 1.0 + costs::kLinuxSmpInterference : 1.0;
  }

  // Lazily attached ranges keyed by (pid, base va).
  std::unordered_map<u64, LazyRange> lazy_;
  static u64 lazy_key(const Process& p, Vaddr va) {
    return (static_cast<u64>(p.pid()) << 48) ^ va.value();
  }
};

}  // namespace xemem::os
