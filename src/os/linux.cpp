#include "os/linux.hpp"

namespace xemem::os {

Result<Process*> LinuxEnclave::create_process(u64 image_bytes, hw::Core* core) {
  const u64 pages = pages_for(image_bytes);
  auto fr = frames().alloc(pages, hw::AllocPolicy::scattered);
  if (!fr.ok()) return fr.error();

  auto proc = std::make_unique<Process>(next_pid(), this, pick_core(core));
  Process* p = proc.get();
  const Vaddr base = p->alloc_va(image_bytes);
  const auto list = mm::PfnList::from_extents(fr.value());
  auto mapped = p->pt().map_range(
      base, list.pfns, mm::PageFlags::writable | mm::PageFlags::user);
  if (!mapped.ok()) {
    for (auto e : fr.value()) frames().free(e);
    return mapped.error();
  }
  p->adopt_frames(fr.value());
  p->set_image(base, pages);
  return add_process(std::move(proc));
}

sim::Task<Result<mm::PfnList>> LinuxEnclave::service_make_pfn_list(Process& owner,
                                                                   Vaddr va,
                                                                   u64 pages) {
  // get_user_pages: pin the range (pages are generally already present —
  // the function's main purpose is preventing page-out; see the paper's
  // footnote 1), then walk the page tables to build the list.
  mm::WalkStats st;
  auto pfns = owner.pt().translate_range(va, pages, &st);
  if (!pfns.ok()) co_return pfns.error();
  const u64 cost = pages * costs::kLinuxPinPerPage +
                   st.entries_visited * costs::kPtEntryVisit;
  co_await service_core()->run_irq(cost);
  co_return mm::PfnList{std::move(pfns).value()};
}

sim::Task<Result<Vaddr>> LinuxEnclave::map_attachment(Process& attacher,
                                                      const mm::PfnList& host_frames,
                                                      bool lazy, bool writable) {
  const Vaddr va = attacher.alloc_va(host_frames.byte_span());
  if (lazy) {
    // Single-OS fault semantics: vm_mmap reserves the VMA now; PTEs are
    // installed page-by-page on first touch (touch_attached).
    lazy_.emplace(lazy_key(attacher, va),
                  LazyRange{host_frames, host_frames.page_count(), writable});
    co_await attacher.core()->compute(costs::kNameServerOp);  // VMA setup
    co_return va;
  }

  // Remote attachment: vm_mmap + remap_pfn_range, eager.
  ++attach_inflight_;
  const mm::PageFlags flags =
      writable ? mm::PageFlags::writable | mm::PageFlags::user : mm::PageFlags::user;
  mm::WalkStats st;
  auto r = attacher.pt().map_range(va, host_frames.pfns, flags, &st);
  if (!r.ok()) {
    --attach_inflight_;
    co_return r.error();
  }
  const double per_page = static_cast<double>(costs::kLinuxMapPerPage) * smp_factor();
  const u64 cost =
      st.entries_visited * costs::kPtEntryVisit +
      static_cast<u64>(static_cast<double>(host_frames.page_count()) * per_page);
  co_await attacher.core()->compute(cost);
  --attach_inflight_;
  co_return va;
}

sim::Task<Result<Vaddr>> LinuxEnclave::map_attachment_extents(
    Process& attacher, const std::vector<hw::FrameExtent>& extents, bool lazy,
    bool writable) {
  if (lazy) {
    // Single-OS fault semantics tracks per-page fault-in state: keep the
    // flat-list path, which the lazy_ bookkeeping is built around.
    co_return co_await map_attachment(attacher, mm::PfnList::from_extents(extents),
                                      lazy, writable);
  }
  // Eager remote attachment, run-at-a-time: same remap_pfn_range cost
  // model as map_attachment, without materializing per-page PFNs first.
  u64 pages = 0;
  for (const auto& e : extents) pages += e.count;
  const Vaddr va = attacher.alloc_va(pages * kPageSize);
  ++attach_inflight_;
  const mm::PageFlags flags =
      writable ? mm::PageFlags::writable | mm::PageFlags::user : mm::PageFlags::user;
  mm::WalkStats st;
  Vaddr cur = va;
  std::vector<Pfn> run;
  for (const auto& e : extents) {
    run.clear();
    run.reserve(e.count);
    for (u64 i = 0; i < e.count; ++i) run.push_back(e.start + i);
    auto r = attacher.pt().map_range(cur, run, flags, &st);
    if (!r.ok()) {
      --attach_inflight_;
      co_return r.error();
    }
    cur += e.count * kPageSize;
  }
  const double per_page = static_cast<double>(costs::kLinuxMapPerPage) * smp_factor();
  const u64 cost = st.entries_visited * costs::kPtEntryVisit +
                   static_cast<u64>(static_cast<double>(pages) * per_page);
  co_await attacher.core()->compute(cost);
  --attach_inflight_;
  co_return va;
}

sim::Task<void> LinuxEnclave::touch_attached(Process& attacher, Vaddr va, u64 pages) {
  auto it = lazy_.find(lazy_key(attacher, va));
  if (it == lazy_.end()) co_return;  // eagerly-mapped range: no fault cost
  LazyRange& rec = it->second;
  const u64 to_fault = std::min(pages, rec.remaining);
  if (to_fault == 0) co_return;
  // Install the PTEs for the faulting pages (front of the range first).
  const u64 first = rec.frames.page_count() - rec.remaining;
  const mm::PageFlags flags = rec.writable
                                  ? mm::PageFlags::writable | mm::PageFlags::user
                                  : mm::PageFlags::user;
  mm::WalkStats st;
  for (u64 i = 0; i < to_fault; ++i) {
    auto r = attacher.pt().map(va + (first + i) * kPageSize,
                               rec.frames.pfns[first + i], flags, &st);
    if (!r.ok()) break;  // already mapped (double touch): stop silently
  }
  rec.remaining -= to_fault;
  co_await attacher.core()->compute(to_fault * costs::kLinuxFaultPerPage +
                                    st.entries_visited * costs::kPtEntryVisit);
}

sim::Task<Result<void>> LinuxEnclave::unmap_attachment(Process& attacher, Vaddr va,
                                                       u64 pages) {
  // Lazily-attached ranges may be only partially populated.
  auto it = lazy_.find(lazy_key(attacher, va));
  u64 mapped_pages = pages;
  if (it != lazy_.end()) {
    mapped_pages = it->second.frames.page_count() - it->second.remaining;
    lazy_.erase(it);
  }
  mm::WalkStats st;
  if (mapped_pages > 0) {
    auto r = attacher.pt().unmap_range(va, mapped_pages, &st);
    if (!r.ok()) co_return r;
  }
  co_await attacher.core()->compute(st.entries_visited * costs::kPtEntryVisit);
  co_return Result<void>{};
}

}  // namespace xemem::os
