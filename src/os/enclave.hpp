// The enclave OS/R abstraction.
//
// An Enclave is one independent system-software stack managing a partition
// of the node's hardware (paper section 1): some cores, a slice of a NUMA
// zone's frames, and a share of the socket's memory bandwidth. The XEMEM
// protocol layer drives enclaves exclusively through the personality hooks
// below — the localized address-space management principle of paper
// section 3.4: every enclave performs its memory mapping operations
// locally, with its own OS's techniques and costs.
//
// Personalities:
//  * KittenEnclave     — lightweight kernel: eager static address spaces,
//                        SMARTMAP local sharing, dynamic heap extension.
//  * LinuxEnclave      — fullweight: VMAs, demand-fault semantics for
//                        local attachments, get_user_pages pinning.
//  * GuestLinuxEnclave — Linux inside a Palacios VM: guest frame numbers,
//                        memory-map translation, virtual PCI notifications.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "hw/machine.hpp"
#include "mm/pfn_list.hpp"
#include "os/process.hpp"
#include "sim/task.hpp"

namespace xemem::os {

class Enclave {
 public:
  /// @param frames        the frame pool this enclave manages
  /// @param membw         the socket bandwidth its memory traffic shares
  /// @param cores         cores owned by the enclave (apps run here)
  /// @param service_core  core where kernel XEMEM servicing executes (for
  ///                      the Linux management enclave this is core 0, per
  ///                      the stock Pisces design)
  Enclave(std::string name, hw::Machine& machine, hw::FrameZone& frames,
          sim::SharedBandwidth& membw, std::vector<hw::Core*> cores,
          hw::Core* service_core)
      : name_(std::move(name)),
        machine_(machine),
        frames_(frames),
        membw_(membw),
        cores_(std::move(cores)),
        service_core_(service_core) {}

  virtual ~Enclave() = default;
  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  const std::string& name() const { return name_; }
  hw::Machine& machine() { return machine_; }
  hw::FrameZone& frames() { return frames_; }
  sim::SharedBandwidth& membw() { return membw_; }
  const std::vector<hw::Core*>& cores() const { return cores_; }
  hw::Core* service_core() { return service_core_; }

  /// Enclave ID assigned by the name server via the routing protocol
  /// (invalid until registration completes).
  EnclaveId id() const { return id_; }
  void set_id(EnclaveId id) { id_ = id; }

  // ------------------------------------------------------------- processes

  /// Create a process with @p image_bytes of memory, pinned to @p core
  /// (nullptr: first enclave core). Population policy is per-personality.
  virtual Result<Process*> create_process(u64 image_bytes,
                                          hw::Core* core = nullptr) = 0;

  /// Tear down a process, returning its frames to the enclave pool.
  void destroy_process(Process* p) {
    for (auto e : p->owned_frames()) frames_.free(e);
    procs_.erase(p->pid());
  }

  Process* process(u32 pid) {
    auto it = procs_.find(pid);
    return it == procs_.end() ? nullptr : it->second.get();
  }

  // --------------------------------------------- XEMEM personality hooks

  /// Export-side servicing (paper section 4.3): pin the region if the OS
  /// pages, walk the page tables, and return the backing frames as *host*
  /// frames (VM personalities translate internally). Executes in kernel
  /// context on the service core — the time is stolen from whatever
  /// application computation runs there (Figure 7).
  virtual sim::Task<Result<mm::PfnList>> service_make_pfn_list(Process& owner,
                                                               Vaddr va,
                                                               u64 pages) = 0;

  /// Attach-side mapping: install @p host_frames into @p attacher's
  /// address space with the local OS's facilities. @p lazy selects the
  /// single-OS Linux fault-semantics path (mapping deferred to first
  /// touch; see touch_attached). @p writable false maps the pages
  /// read-only (XPMEM read-only grants). Returns the attachment's base VA.
  virtual sim::Task<Result<Vaddr>> map_attachment(Process& attacher,
                                                  const mm::PfnList& host_frames,
                                                  bool lazy, bool writable) = 0;

  /// Extent-aware attach-side mapping: like map_attachment, but consumes
  /// the wire's extent-compressed frame runs directly. The base
  /// implementation expands to a flat list; native personalities override
  /// to map run-at-a-time without materializing per-page PFNs (and Kitten
  /// picks 2 MiB entries per suitably aligned run in large-page mode).
  virtual sim::Task<Result<Vaddr>> map_attachment_extents(
      Process& attacher, const std::vector<hw::FrameExtent>& extents, bool lazy,
      bool writable) {
    co_return co_await map_attachment(
        attacher, mm::PfnList::from_extents(extents), lazy, writable);
  }

  /// First-touch of an attached range (demand-fault charges where the
  /// personality maps lazily; no-op otherwise).
  virtual sim::Task<void> touch_attached(Process& attacher, Vaddr va,
                                         u64 pages) = 0;

  /// Remove an attachment created by map_attachment.
  virtual sim::Task<Result<void>> unmap_attachment(Process& attacher, Vaddr va,
                                                   u64 pages) = 0;

  /// Data-plane translation: a frame number in this enclave's domain
  /// (host PFN for native enclaves, guest frame for VMs) to a host PFN.
  virtual Result<Pfn> frame_to_host(Pfn domain_frame) const = 0;

  /// Whether intra-enclave attachments use lazy fault semantics (true for
  /// fullweight Linux; see paper section 6.4).
  virtual bool lazy_local_attach() const { return false; }

  /// Multiplier on streaming-memory work performed by this enclave's
  /// applications (VM personalities pay nested-paging TLB overhead on
  /// bandwidth-bound kernels; natives pay none).
  virtual double mem_overhead_factor() const { return 1.0; }

  // ----------------------------------------------------------- data plane

  /// Copy @p len bytes into the process's address space at @p va. The
  /// range must be mapped (call touch_attached first for lazy mappings)
  /// and writable — writes through read-only attachments fail with
  /// permission_denied, mirroring the fault the MMU would raise.
  /// Not time-charged: workload models charge their own memory traffic.
  Result<void> proc_write(Process& p, Vaddr va, const void* src, u64 len);
  Result<void> proc_read(Process& p, Vaddr va, void* dst, u64 len);

  /// Number of XEMEM attachments currently being installed in this
  /// enclave (drives the Linux SMP interference model; see costs.hpp).
  u32 attach_inflight() const { return attach_inflight_; }

 protected:
  Process* add_process(std::unique_ptr<Process> p) {
    Process* raw = p.get();
    procs_.emplace(raw->pid(), std::move(p));
    return raw;
  }
  u32 next_pid() { return next_pid_++; }

  hw::Core* pick_core(hw::Core* requested) {
    if (requested != nullptr) return requested;
    XEMEM_ASSERT(!cores_.empty());
    return cores_[0];
  }

  u32 attach_inflight_{0};

 private:
  std::string name_;
  hw::Machine& machine_;
  hw::FrameZone& frames_;
  sim::SharedBandwidth& membw_;
  std::vector<hw::Core*> cores_;
  hw::Core* service_core_;
  EnclaveId id_{EnclaveId::invalid()};
  std::unordered_map<u32, std::unique_ptr<Process>> procs_;
  u32 next_pid_{1};
};

}  // namespace xemem::os
