#include "os/enclave.hpp"

#include <algorithm>

namespace xemem::os {

Result<void> Enclave::proc_write(Process& p, Vaddr va, const void* src, u64 len) {
  const u8* s = static_cast<const u8*>(src);
  while (len > 0) {
    auto pte = p.pt().lookup(Vaddr{page_align_down(va.value())});
    if (!pte) return Errc::invalid_argument;
    if (!mm::has_flag(pte->flags, mm::PageFlags::writable)) {
      return Errc::permission_denied;  // write fault on a read-only mapping
    }
    auto host = frame_to_host(pte->pfn);
    if (!host.ok()) return host.error();
    const u64 off = va.value() & kPageMask;
    const u64 n = std::min(len, kPageSize - off);
    machine_.pmem().write(host.value().paddr() + off, s, n);
    s += n;
    va += n;
    len -= n;
  }
  return {};
}

Result<void> Enclave::proc_read(Process& p, Vaddr va, void* dst, u64 len) {
  u8* d = static_cast<u8*>(dst);
  while (len > 0) {
    auto pte = p.pt().lookup(Vaddr{page_align_down(va.value())});
    if (!pte) return Errc::invalid_argument;
    auto host = frame_to_host(pte->pfn);
    if (!host.ok()) return host.error();
    const u64 off = va.value() & kPageMask;
    const u64 n = std::min(len, kPageSize - off);
    machine_.pmem().read(host.value().paddr() + off, d, n);
    d += n;
    va += n;
    len -= n;
  }
  return {};
}

}  // namespace xemem::os
