// KNEM-style kernel-assisted single-copy transfers (baseline).
//
// KNEM [Goglin & Moreaud, JPDC 2013] is the single-OS alternative the
// paper's related work contrasts with (section 2): instead of mapping the
// source region into the destination address space (XEMEM's zero-copy
// model), a process *declares* a region and receives a cookie; the kernel
// then copies data directly between the two address spaces on request —
// one copy, no mapping, but paid on every transfer.
//
// This implementation operates within a single enclave (KNEM is
// "designed to operate in a single OS/R environment and would require
// significant modifications to support a multi-enclave configuration"),
// walks both processes' real page tables, moves real bytes through the
// machine's data plane, and charges the per-page walk plus the copy
// through the socket's shared bandwidth.
#pragma once

#include <unordered_map>

#include "common/costs.hpp"
#include "os/enclave.hpp"

namespace xemem::os {

class KnemService {
 public:
  explicit KnemService(Enclave& os) : os_(os) {}

  KnemService(const KnemService&) = delete;
  KnemService& operator=(const KnemService&) = delete;

  /// Declare [va, va+bytes) of @p owner for kernel-assisted access.
  /// Returns a cookie the peer passes to copy_from/copy_to.
  Result<u64> declare(Process& owner, Vaddr va, u64 bytes) {
    if ((va.value() & kPageMask) != 0 || bytes == 0) return Errc::invalid_argument;
    // Validate the region is mapped (cheap check of both ends).
    if (!owner.pt().lookup(va) ||
        !owner.pt().lookup(Vaddr{page_align_down(va.value() + bytes - 1)})) {
      return Errc::invalid_argument;
    }
    const u64 cookie = next_cookie_++;
    regions_.emplace(cookie, Region{&owner, va, bytes});
    return cookie;
  }

  Result<void> undeclare(u64 cookie) {
    return regions_.erase(cookie) == 1 ? Result<void>{}
                                       : Result<void>{Errc::not_attached};
  }

  /// Single-copy receive: the kernel copies [offset, offset+len) of the
  /// declared region into @p dst's address space at @p dst_va. Charged:
  /// a page-table walk over both ranges plus one memcpy through the
  /// socket's shared memory bandwidth (read + write traffic).
  sim::Task<Result<void>> copy_from(u64 cookie, u64 offset, u64 len, Process& dst,
                                    Vaddr dst_va) {
    co_return co_await transfer(cookie, offset, len, dst, dst_va, /*to_region=*/false);
  }

  /// Single-copy send into the declared region.
  sim::Task<Result<void>> copy_to(u64 cookie, u64 offset, u64 len, Process& src,
                                  Vaddr src_va) {
    co_return co_await transfer(cookie, offset, len, src, src_va, /*to_region=*/true);
  }

  u64 declared_regions() const { return regions_.size(); }

 private:
  struct Region {
    Process* owner;
    Vaddr va;
    u64 bytes;
  };

  sim::Task<Result<void>> transfer(u64 cookie, u64 offset, u64 len, Process& peer,
                                   Vaddr peer_va, bool to_region) {
    auto it = regions_.find(cookie);
    if (it == regions_.end()) co_return Errc::not_attached;
    const Region& r = it->second;
    if (offset + len > r.bytes) co_return Errc::invalid_argument;

    // Kernel-side charge: walk both page-table ranges once per page...
    const u64 pages = pages_for(len) + 1;
    co_await peer.core()->compute(pages * 2 * 4 * costs::kPtEntryVisit);
    // ...and one copy (read source + write destination traffic).
    co_await os_.membw().transfer(2 * len);

    // Real data movement through the data plane (page-by-page via the
    // processes' own mappings).
    std::vector<u8> buf(std::min<u64>(len, 1 << 20));
    u64 moved = 0;
    while (moved < len) {
      const u64 n = std::min<u64>(buf.size(), len - moved);
      if (to_region) {
        auto rd = os_.proc_read(peer, peer_va + moved, buf.data(), n);
        if (!rd.ok()) co_return rd;
        auto wr = os_.proc_write(*r.owner, r.va + offset + moved, buf.data(), n);
        if (!wr.ok()) co_return wr;
      } else {
        auto rd = os_.proc_read(*r.owner, r.va + offset + moved, buf.data(), n);
        if (!rd.ok()) co_return rd;
        auto wr = os_.proc_write(peer, peer_va + moved, buf.data(), n);
        if (!wr.ok()) co_return wr;
      }
      moved += n;
    }
    co_return Result<void>{};
  }

  Enclave& os_;
  std::unordered_map<u64, Region> regions_;
  u64 next_cookie_{1};
};

}  // namespace xemem::os
