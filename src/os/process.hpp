// A process inside one enclave OS.
//
// Owns a real 4-level page table and a simple virtual-address-space
// cursor. Frame ownership is tracked so enclave teardown (and the leak
// property tests) can verify that every attach/detach/remove cycle
// restores the machine's frame accounting.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "hw/core.hpp"
#include "hw/phys_mem.hpp"
#include "mm/page_table.hpp"

namespace xemem::os {

class Enclave;

class Process {
 public:
  Process(u32 pid, Enclave* os, hw::Core* core) : pid_(pid), os_(os), core_(core) {}

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  u32 pid() const { return pid_; }
  Enclave& os() { return *os_; }
  hw::Core* core() { return core_; }
  mm::PageTable& pt() { return pt_; }
  const mm::PageTable& pt() const { return pt_; }

  /// Reserve @p bytes of virtual address space (page-granular bump
  /// allocator; regions are never recycled, as in short-lived HPC
  /// processes).
  Vaddr alloc_va(u64 bytes) {
    const Vaddr va{va_cursor_};
    va_cursor_ += page_align_up(bytes);
    return va;
  }

  /// Reserve VA space starting at a multiple of @p align (e.g. 2 MiB so
  /// the region is eligible for large-page mappings).
  Vaddr alloc_va_aligned(u64 bytes, u64 align) {
    va_cursor_ = (va_cursor_ + align - 1) / align * align;
    return alloc_va(bytes);
  }

  /// Record frames this process owns (freed by Enclave::destroy_process).
  void adopt_frames(const std::vector<hw::FrameExtent>& exts) {
    owned_.insert(owned_.end(), exts.begin(), exts.end());
  }
  const std::vector<hw::FrameExtent>& owned_frames() const { return owned_; }

  /// Base virtual address of the process's statically-created memory
  /// (heap/data); set by the personality at creation.
  Vaddr image_base() const { return image_base_; }
  u64 image_pages() const { return image_pages_; }
  void set_image(Vaddr base, u64 pages) {
    image_base_ = base;
    image_pages_ = pages;
  }

 private:
  u32 pid_;
  Enclave* os_;
  hw::Core* core_;
  mm::PageTable pt_;
  u64 va_cursor_{0x10000000};
  std::vector<hw::FrameExtent> owned_;
  Vaddr image_base_{};
  u64 image_pages_{0};
};

}  // namespace xemem::os
