#include "os/kitten.hpp"

namespace xemem::os {

Result<Process*> KittenEnclave::create_process(u64 image_bytes, hw::Core* core) {
  constexpr u64 kSpan = mm::PageTable::kLargeSpan;
  // In large-page mode, round the image up to a 2 MiB multiple and demand
  // aligned frames so the whole image maps with large entries.
  u64 pages = pages_for(image_bytes);
  if (large_pages_) pages = (pages + kSpan - 1) / kSpan * kSpan;

  std::vector<hw::FrameExtent> extents;
  if (large_pages_) {
    auto fr = frames().alloc_contiguous_aligned(pages, kSpan);
    if (!fr.ok()) return fr.error();
    extents.push_back(fr.value());
  } else {
    auto fr = frames_alloc(pages);
    if (!fr.ok()) return fr.error();
    extents = std::move(fr).value();
  }

  auto proc = std::make_unique<Process>(next_pid(), this, pick_core(core));
  Process* p = proc.get();
  const Vaddr base = large_pages_
                         ? p->alloc_va_aligned(pages * kPageSize, kSpan * kPageSize)
                         : p->alloc_va(image_bytes);

  // Kitten maps the entire image statically at creation (large entries
  // where alignment permits).
  const auto list = mm::PfnList::from_extents(extents);
  const auto flags = mm::PageFlags::writable | mm::PageFlags::user;
  auto mapped = large_pages_ ? p->pt().map_range_best(base, list.pfns, flags)
                             : p->pt().map_range(base, list.pfns, flags);
  if (!mapped.ok()) {
    for (auto e : extents) frames().free(e);
    return mapped.error();
  }
  p->adopt_frames(extents);
  p->set_image(base, pages);
  return add_process(std::move(proc));
}

Result<std::vector<hw::FrameExtent>> KittenEnclave::frames_alloc(u64 pages) {
  // Contiguous-first (the LWK manages large blocks); scattered fallback
  // only if the pool has fragmented.
  auto r = frames().alloc(pages, hw::AllocPolicy::contiguous);
  if (r.ok()) return r;
  return frames().alloc(pages, hw::AllocPolicy::scattered);
}

sim::Task<Result<mm::PfnList>> KittenEnclave::service_make_pfn_list(Process& owner,
                                                                    Vaddr va,
                                                                    u64 pages) {
  // Kernel command-thread work on the service core: the page-table walk.
  // Kitten has no paging, so there is nothing to pin.
  mm::WalkStats st;
  auto pfns = owner.pt().translate_range(va, pages, &st);
  if (!pfns.ok()) co_return pfns.error();
  co_await service_core()->run_irq(st.entries_visited * costs::kPtEntryVisit);
  co_return mm::PfnList{std::move(pfns).value()};
}

sim::Task<Result<Vaddr>> KittenEnclave::map_attachment(Process& attacher,
                                                       const mm::PfnList& host_frames,
                                                       bool lazy, bool writable) {
  (void)lazy;  // Kitten always maps eagerly — it has no fault path at all.
  // Dynamic heap expansion: carve a fresh virtual region above the static
  // image and install the remote frames there. In large-page mode, align
  // the region and use 2 MiB entries for eligible frame runs.
  constexpr u64 kSpan = mm::PageTable::kLargeSpan;
  const Vaddr va =
      large_pages_
          ? attacher.alloc_va_aligned(host_frames.byte_span(), kSpan * kPageSize)
          : attacher.alloc_va(host_frames.byte_span());
  const mm::PageFlags flags =
      writable ? mm::PageFlags::writable | mm::PageFlags::user : mm::PageFlags::user;
  mm::WalkStats st;
  auto r = large_pages_
               ? attacher.pt().map_range_best(va, host_frames.pfns, flags, &st)
               : attacher.pt().map_range(va, host_frames.pfns, flags, &st);
  if (!r.ok()) co_return r.error();
  const u64 cost = st.entries_visited * costs::kPtEntryVisit +
                   host_frames.page_count() * costs::kKittenMapPerPage;
  co_await attacher.core()->compute(cost);
  co_return va;
}

sim::Task<Result<Vaddr>> KittenEnclave::map_attachment_extents(
    Process& attacher, const std::vector<hw::FrameExtent>& extents, bool lazy,
    bool writable) {
  (void)lazy;  // Kitten always maps eagerly — it has no fault path at all.
  // Extent-aware variant of map_attachment: one map_range call per run,
  // never materializing the flat per-page list. Runs are maximal, so
  // large-page candidates never straddle run boundaries and map_range_best
  // finds exactly the 2 MiB entries the flat path would.
  constexpr u64 kSpan = mm::PageTable::kLargeSpan;
  u64 pages = 0;
  for (const auto& e : extents) pages += e.count;
  const Vaddr va = large_pages_
                       ? attacher.alloc_va_aligned(pages * kPageSize, kSpan * kPageSize)
                       : attacher.alloc_va(pages * kPageSize);
  const mm::PageFlags flags =
      writable ? mm::PageFlags::writable | mm::PageFlags::user : mm::PageFlags::user;
  mm::WalkStats st;
  Vaddr cur = va;
  std::vector<Pfn> run;
  for (const auto& e : extents) {
    run.clear();
    run.reserve(e.count);
    for (u64 i = 0; i < e.count; ++i) run.push_back(e.start + i);
    auto r = large_pages_ ? attacher.pt().map_range_best(cur, run, flags, &st)
                          : attacher.pt().map_range(cur, run, flags, &st);
    if (!r.ok()) co_return r.error();  // fresh VA region: cannot conflict
    cur += e.count * kPageSize;
  }
  const u64 cost =
      st.entries_visited * costs::kPtEntryVisit + pages * costs::kKittenMapPerPage;
  co_await attacher.core()->compute(cost);
  co_return va;
}

sim::Task<void> KittenEnclave::touch_attached(Process&, Vaddr, u64) {
  co_return;  // everything is mapped eagerly; first touch costs nothing extra
}

sim::Task<Result<void>> KittenEnclave::unmap_attachment(Process& attacher, Vaddr va,
                                                        u64 pages) {
  mm::WalkStats st;
  auto r = attacher.pt().unmap_range(va, pages, &st);
  if (!r.ok()) co_return r;
  co_await attacher.core()->compute(st.entries_visited * costs::kPtEntryVisit);
  co_return Result<void>{};
}

}  // namespace xemem::os
