// Processor-sharing (fair-share) resource model.
//
// Models a capacity shared equally among all concurrent users — the main
// use is a NUMA socket's memory bandwidth: when the HPC simulation and the
// analytics program stream memory at the same time (the asynchronous
// in-situ model of paper section 6.2.1), each sees roughly half the socket
// bandwidth. This is the classic M/G/1-PS fluid model: with n active jobs,
// every job progresses at capacity/n.
//
// Implementation: between membership changes all jobs deplete at the same
// rate, so only the minimum-remaining job can finish next. A generation-
// counted timer fires at that completion time; admissions bump the
// generation to invalidate stale timers.
#pragma once

#include <cmath>
#include <coroutine>
#include <list>

#include "common/assert.hpp"
#include "sim/engine.hpp"

namespace xemem::sim {

class SharedBandwidth {
 public:
  /// @param bytes_per_ns total capacity (e.g. 12.8 for a 12.8 GB/s socket).
  explicit SharedBandwidth(double bytes_per_ns) : cap_(bytes_per_ns) {
    XEMEM_ASSERT(bytes_per_ns > 0);
  }

  /// Awaitable: move @p bytes through the resource, sharing capacity fairly
  /// with all concurrent transfers. Completes when the full amount has been
  /// transferred.
  auto transfer(u64 bytes) {
    struct Awaiter {
      SharedBandwidth* r;
      u64 bytes;
      bool await_ready() const noexcept { return bytes == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        auto* eng = Engine::current();
        r->advance(eng->now());
        r->jobs_.push_back(Job{static_cast<double>(bytes), h});
        r->arm_timer(eng);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, bytes};
  }

  /// Number of concurrently active transfers (diagnostics / tests).
  size_t active() const { return jobs_.size(); }

  /// Instantaneous per-job rate in bytes/ns.
  double current_rate() const {
    return jobs_.empty() ? cap_ : cap_ / static_cast<double>(jobs_.size());
  }

 private:
  struct Job {
    double remaining;
    std::coroutine_handle<> h;
  };

  /// Deplete all active jobs for the time elapsed since the last update.
  void advance(TimePoint t) {
    if (t <= last_) {
      last_ = t;
      return;
    }
    if (!jobs_.empty()) {
      const double dec =
          static_cast<double>(t - last_) * cap_ / static_cast<double>(jobs_.size());
      for (auto& j : jobs_) j.remaining -= dec;
    }
    last_ = t;
  }

  void arm_timer(Engine* eng) {
    ++timer_gen_;
    if (jobs_.empty()) return;
    double min_rem = jobs_.front().remaining;
    for (const auto& j : jobs_) min_rem = std::min(min_rem, j.remaining);
    // Sub-byte residue counts as done (floating-point tolerance).
    double dt_ns = std::max(min_rem, 0.0) * static_cast<double>(jobs_.size()) / cap_;
    TimePoint fire = std::max(eng->now(), last_ + static_cast<u64>(std::ceil(dt_ns)));
    const u64 gen = timer_gen_;
    eng->call_at(fire, [this, gen] { on_timer(gen); });
  }

  void on_timer(u64 gen) {
    if (gen != timer_gen_) return;  // superseded by a membership change
    auto* eng = Engine::current();
    advance(eng->now());
    for (auto it = jobs_.begin(); it != jobs_.end();) {
      if (it->remaining <= 0.5) {
        eng->schedule_at(eng->now(), it->h);
        it = jobs_.erase(it);
      } else {
        ++it;
      }
    }
    arm_timer(eng);
  }

  double cap_;
  TimePoint last_{0};
  u64 timer_gen_{0};
  std::list<Job> jobs_;
};

}  // namespace xemem::sim
