// Coroutine task type for simulation actors.
//
// Every simulated activity — an OS servicing an attachment, a workload
// iterating its solver loop, an IPI handler — is a `sim::Task<T>`
// coroutine. Tasks are lazy (they do not run until awaited or spawned on
// an Engine) and single-threaded: the whole simulation executes inside one
// OS thread, so determinism is structural, not locked-in.
//
// Ownership: the Task object owns the coroutine frame and destroys it in
// its destructor. Awaiting a child task keeps the Task object alive in the
// parent's frame for the child's whole lifetime, so the common
// `co_await some_child_coroutine(...)` pattern is safe. Detached tasks are
// kept alive by the Engine until they complete (see engine.hpp).
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/assert.hpp"

namespace xemem::sim {

template <typename T = void>
class Task;

namespace detail {

/// State shared by Task<T> and Task<void> promises: continuation chaining,
/// exception capture, and the completion flag used by Engine::run / spawn.
struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};
  bool* done_flag{nullptr};

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      if (p.done_flag != nullptr) *p.done_flag = true;
      // Symmetric transfer back to whoever co_awaited this task; root tasks
      // (spawned or run by the Engine) have no continuation.
      return p.continuation ? p.continuation : std::noop_coroutine();
    }

    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine producing a value of type T.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// Awaiting a task starts it and suspends the awaiter until it finishes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;  // symmetric transfer: start the child immediately
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        XEMEM_ASSERT_MSG(p.value.has_value(), "task finished without a value");
        return std::move(*p.value);
      }
    };
    return Awaiter{h_};
  }

  std::coroutine_handle<> handle() const { return h_; }
  bool valid() const { return h_ != nullptr; }

  /// Engine plumbing: arrange for *flag to become true at completion.
  void set_done_flag(bool* flag) { h_.promise().done_flag = flag; }

  /// Extract the result after completion (Engine::run uses this).
  T take_result() {
    auto& p = h_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    XEMEM_ASSERT_MSG(p.value.has_value(), "task not complete");
    return std::move(*p.value);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  friend struct promise_type;

  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> h_{};
};

/// Task<void>: same machinery, no value.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;
      }
      void await_resume() {
        auto& p = h.promise();
        if (p.exception) std::rethrow_exception(p.exception);
      }
    };
    return Awaiter{h_};
  }

  std::coroutine_handle<> handle() const { return h_; }
  bool valid() const { return h_ != nullptr; }
  void set_done_flag(bool* flag) { h_.promise().done_flag = flag; }

  void take_result() {
    auto& p = h_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
  }

  /// Release ownership of the frame (Engine detach plumbing only).
  std::coroutine_handle<promise_type> release() { return std::exchange(h_, nullptr); }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  friend struct promise_type;

  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> h_{};
};

}  // namespace xemem::sim
