// Synchronization primitives for simulation coroutines.
//
// These mirror the kernel-level constructs the real system uses: an Event
// is a wakeup flag (completion notification), a Mailbox is a kernel message
// queue (the command queues behind each cross-enclave channel), a Semaphore
// bounds concurrent access to a modeled resource, and a Barrier lets
// benchmark harnesses launch N workers and join them.
//
// All primitives are strictly FIFO: waiters wake in arrival order, which
// keeps simulations deterministic.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "sim/engine.hpp"

namespace xemem::sim {

/// One-shot / resettable wakeup flag. `set()` releases every current
/// waiter; waiters arriving after `set()` (and before `reset()`) do not
/// block.
class Event {
 public:
  bool is_set() const { return set_; }

  void set() {
    set_ = true;
    auto* eng = Engine::current();
    for (auto h : waiters_) eng->schedule_at(eng->now(), h);
    waiters_.clear();
  }

  void reset() { set_ = false; }

  auto wait() {
    struct Awaiter {
      Event* ev;
      bool await_ready() const noexcept { return ev->set_; }
      void await_suspend(std::coroutine_handle<> h) { ev->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  bool set_{false};
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO message queue between coroutines.
///
/// send() never blocks; recv() suspends until a message is available.
/// Delivery order matches send order, and when several receivers wait,
/// messages are handed out in receiver-arrival order.
template <typename T>
class Mailbox {
 public:
  void send(T msg) {
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      *w.slot = std::move(msg);
      auto* eng = Engine::current();
      eng->schedule_at(eng->now(), w.h);
      return;
    }
    queue_.push_back(std::move(msg));
  }

  /// Awaitable receive.
  auto recv() {
    struct Awaiter {
      Mailbox* mb;
      std::optional<T> slot;

      bool await_ready() noexcept {
        if (!mb->queue_.empty()) {
          slot = std::move(mb->queue_.front());
          mb->queue_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        mb->waiters_.push_back(Waiter{h, &slot});
      }
      T await_resume() {
        XEMEM_ASSERT(slot.has_value());
        return std::move(*slot);
      }
    };
    return Awaiter{this, std::nullopt};
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  size_t pending() const { return queue_.size(); }
  bool has_waiters() const { return !waiters_.empty(); }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    std::optional<T>* slot;
  };

  std::deque<T> queue_;
  std::deque<Waiter> waiters_;
};

/// Counting semaphore with FIFO handoff.
class Semaphore {
 public:
  explicit Semaphore(u64 initial) : count_(initial) {}

  auto acquire() {
    struct Awaiter {
      Semaphore* s;
      bool await_ready() const noexcept {
        if (s->count_ > 0) {
          --s->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { s->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release() {
    if (!waiters_.empty()) {
      // Hand the permit directly to the oldest waiter (no barging).
      auto h = waiters_.front();
      waiters_.pop_front();
      auto* eng = Engine::current();
      eng->schedule_at(eng->now(), h);
      return;
    }
    ++count_;
  }

  u64 available() const { return count_; }

 private:
  u64 count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Mutual exclusion (a binary semaphore with scoped-lock sugar).
class Mutex {
 public:
  Mutex() : sem_(1) {}

  [[nodiscard]] Task<void> lock() {
    co_await sem_.acquire();
  }
  void unlock() { sem_.release(); }

  /// `co_await mtx.with([&]() -> Task<void> { ... })` convenience is not
  /// provided; callers use lock()/unlock() explicitly, matching the
  /// spinlock discipline of the kernel code being modeled.
 private:
  Semaphore sem_;
};

/// Reusable barrier for @p parties coroutines.
class Barrier {
 public:
  explicit Barrier(u64 parties) : parties_(parties) { XEMEM_ASSERT(parties > 0); }

  /// Suspend until all parties have arrived; the last arriver releases all.
  auto arrive_and_wait() {
    struct Awaiter {
      Barrier* b;
      bool await_ready() const noexcept { return b->parties_ == 1; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (b->arrived_ + 1 == b->parties_) {
          b->arrived_ = 0;
          auto* eng = Engine::current();
          for (auto w : b->waiters_) eng->schedule_at(eng->now(), w);
          b->waiters_.clear();
          return false;  // last arriver proceeds immediately
        }
        ++b->arrived_;
        b->waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  u64 parties_;
  u64 arrived_{0};
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace xemem::sim
