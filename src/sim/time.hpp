// Virtual time for the discrete-event simulation.
//
// All performance numbers the benchmark harnesses report are measured in
// this virtual clock, which advances only when simulation events fire.
// Durations and time points are nanosecond counts; see common/units.hpp
// for the `_us` / `_ms` literals used by the cost model.
#pragma once

#include "common/types.hpp"

namespace xemem::sim {

/// Absolute simulated time in nanoseconds since simulation start.
using TimePoint = u64;
/// Simulated duration in nanoseconds.
using Duration = u64;

inline constexpr TimePoint kTimeZero = 0;

}  // namespace xemem::sim
