// The discrete-event simulation engine.
//
// A single Engine instance drives one experiment: it owns the virtual
// clock, the pending-event queue, and all detached actor tasks. Events at
// equal times fire in FIFO scheduling order (a monotonically increasing
// sequence number breaks ties), which makes runs bit-for-bit reproducible.
//
// Coroutines obtain "their" engine through Engine::current(), which is set
// for the duration of every resumption — simulation code can simply write
//   co_await sim::delay(5_us);
// without threading an engine pointer through every call.
#pragma once

#include <coroutine>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace xemem::sim {

class Engine {
 public:
  explicit Engine(u64 seed = 1) : rng_(seed) {}
  ~Engine() { drain_detached(); }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  TimePoint now() const { return now_; }

  /// Root RNG for this run; models fork() child streams from it.
  Rng& rng() { return rng_; }

  /// Engine driving the currently-executing coroutine (set during step()).
  static Engine* current() {
    XEMEM_ASSERT_MSG(current_ != nullptr, "no simulation engine is running");
    return current_;
  }

  /// Schedule @p h to resume at absolute time @p t (>= now).
  void schedule_at(TimePoint t, std::coroutine_handle<> h) {
    XEMEM_ASSERT(t >= now_);
    queue_.push(Event{t, seq_++, h, {}});
  }

  /// Schedule @p h to resume after @p d.
  void schedule_after(Duration d, std::coroutine_handle<> h) {
    schedule_at(now_ + d, h);
  }

  /// Schedule a plain callback (used by non-coroutine models, e.g. the
  /// processor-sharing resource's completion timers).
  void call_at(TimePoint t, std::function<void()> fn) {
    XEMEM_ASSERT(t >= now_);
    queue_.push(Event{t, seq_++, nullptr, std::move(fn)});
  }

  /// Launch a detached background actor. The engine keeps the coroutine
  /// frame alive until it completes; an exception escaping a detached task
  /// aborts the simulation (actors are expected to handle their own errors).
  void spawn(Task<void> task) {
    auto node = std::make_unique<Detached>();
    node->handle = task.release();
    node->handle.promise().done_flag = &node->done;
    detached_.push_back(std::move(node));
    schedule_at(now_, detached_.back()->handle);
  }

  /// Run @p main to completion (processing all events it transitively
  /// depends on) and return its result. Detached actors keep running only
  /// while events remain reachable before main finishes.
  template <typename T>
  T run(Task<T> main) {
    bool done = false;
    main.set_done_flag(&done);
    schedule_at(now_, main.handle());
    while (!done) {
      XEMEM_ASSERT_MSG(step(), "simulation deadlocked: main task never finished");
    }
    reap();
    return main.take_result();
  }

  /// Process events until the queue is empty.
  void run_until_idle() {
    while (step()) {
    }
    reap();
  }

  /// Process events until the clock would pass @p t, then set now = t.
  void run_until(TimePoint t) {
    while (!queue_.empty() && queue_.top().t <= t) {
      XEMEM_ASSERT(step());
    }
    XEMEM_ASSERT(t >= now_);
    now_ = t;
    reap();
  }

  /// Execute one event. Returns false if the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();
    queue_.pop();
    XEMEM_ASSERT(ev.t >= now_);
    now_ = ev.t;
    Engine* prev = current_;
    current_ = this;
    if (ev.h) {
      ev.h.resume();
    } else {
      ev.fn();
    }
    current_ = prev;
    if (++steps_since_reap_ >= 4096) reap();
    return true;
  }

  /// Number of events processed so far (diagnostics).
  u64 events_processed() const { return seq_; }

 private:
  struct Event {
    TimePoint t;
    u64 seq;
    std::coroutine_handle<> h;
    std::function<void()> fn;

    // Min-heap on (time, sequence): earliest first, FIFO within a time.
    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  struct Detached {
    std::coroutine_handle<Task<void>::promise_type> handle{};
    bool done{false};

    ~Detached() {
      if (handle) {
        if (done && handle.promise().exception) {
          // Surface actor failures instead of silently dropping them.
          try {
            std::rethrow_exception(handle.promise().exception);
          } catch (const std::exception& e) {
            XEMEM_PANIC(e.what());
          } catch (...) {
            XEMEM_PANIC("detached simulation task failed");
          }
        }
        handle.destroy();
      }
    }
  };

  void reap() {
    steps_since_reap_ = 0;
    std::erase_if(detached_, [](const std::unique_ptr<Detached>& d) { return d->done; });
  }

  void drain_detached() {
    // Unfinished actors at teardown are destroyed while suspended; their
    // frames unwind normally because Task locals are regular RAII objects.
    detached_.clear();
  }

  TimePoint now_{kTimeZero};
  u64 seq_{0};
  u64 steps_since_reap_{0};
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::unique_ptr<Detached>> detached_;
  Rng rng_;

  static inline Engine* current_ = nullptr;
};

/// Awaitable: suspend the current coroutine for @p d simulated nanoseconds.
inline auto delay(Duration d) {
  struct Awaiter {
    Duration d;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      Engine::current()->schedule_after(d, h);
    }
    void await_resume() const noexcept {}
  };
  return Awaiter{d};
}

/// Awaitable: suspend until absolute simulated time @p t (no-op if past).
inline auto delay_until(TimePoint t) {
  struct Awaiter {
    TimePoint t;
    bool await_ready() const noexcept { return Engine::current()->now() >= t; }
    void await_suspend(std::coroutine_handle<> h) const {
      Engine::current()->schedule_at(t, h);
    }
    void await_resume() const noexcept {}
  };
  return Awaiter{t};
}

/// Awaitable: yield to other events scheduled at the current time.
inline auto yield_now() { return delay(0); }

/// Convenience: current simulated time from coroutine context.
inline TimePoint now() { return Engine::current()->now(); }

}  // namespace xemem::sim
