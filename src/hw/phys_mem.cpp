#include "hw/phys_mem.hpp"

#include <algorithm>

namespace xemem::hw {

Result<std::vector<FrameExtent>> FrameZone::alloc(u64 count, AllocPolicy policy) {
  if (count == 0) return Errc::invalid_argument;
  if (count > free_count_) return Errc::out_of_memory;

  std::vector<FrameExtent> out;

  if (policy == AllocPolicy::contiguous) {
    // First-fit over the (address-ordered) free list.
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->second >= count) {
        out.push_back(FrameExtent{Pfn{it->first}, count});
        const u64 rest = it->second - count;
        const u64 new_start = it->first + count;
        free_.erase(it);
        if (rest > 0) free_.emplace(new_start, rest);
        free_count_ -= count;
        return out;
      }
    }
    return Errc::out_of_memory;  // fragmented: no single run large enough
  }

  // Scattered: take pages in small chunks, alternating between the front
  // and the back of free extents so that even a freshly-created zone hands
  // out non-adjacent runs — modeling a fragmented Linux page pool. The
  // chunk size (8 pages) keeps allocator overhead low while reliably
  // breaking contiguity.
  constexpr u64 kChunk = 8;
  u64 remaining = count;
  u64 skip = scatter_cursor_ % std::max<u64>(free_.size(), 1);
  while (remaining > 0) {
    XEMEM_ASSERT(!free_.empty());
    auto it = free_.begin();
    std::advance(it, skip % free_.size());
    skip = 1;  // after the first pick, walk round-robin
    const u64 take = std::min({remaining, it->second, kChunk});
    const bool from_back = (scatter_cursor_++ & 1) != 0 && it->second > take;
    const u64 ext_start = it->first;
    const u64 ext_len = it->second;
    const u64 chunk_start = from_back ? ext_start + ext_len - take : ext_start;
    out.push_back(FrameExtent{Pfn{chunk_start}, take});
    free_.erase(it);
    if (from_back) {
      free_.emplace(ext_start, ext_len - take);
    } else if (ext_len > take) {
      free_.emplace(ext_start + take, ext_len - take);
    }
    free_count_ -= take;
    remaining -= take;
  }
  return out;
}

Result<FrameExtent> FrameZone::alloc_contiguous_aligned(u64 count,
                                                        u64 align_frames) {
  if (count == 0 || align_frames == 0) return Errc::invalid_argument;
  if (count > free_count_) return Errc::out_of_memory;
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const u64 start = it->first;
    const u64 len = it->second;
    const u64 aligned = (start + align_frames - 1) / align_frames * align_frames;
    const u64 skip = aligned - start;
    if (skip >= len || len - skip < count) continue;
    // Split the extent into [start, aligned) + taken + tail.
    free_.erase(it);
    if (skip > 0) free_.emplace(start, skip);
    const u64 tail = len - skip - count;
    if (tail > 0) free_.emplace(aligned + count, tail);
    free_count_ -= count;
    return FrameExtent{Pfn{aligned}, count};
  }
  return Errc::out_of_memory;
}

void FrameZone::free(FrameExtent ext) {
  XEMEM_ASSERT(ext.count > 0);
  XEMEM_ASSERT_MSG(owns(ext.start) && owns(ext.start + (ext.count - 1)),
                   "free of frames outside zone");
  for (u64 i = 0; i < ext.count; ++i) {
    XEMEM_ASSERT_MSG(refcount(ext.start + i) == 0, "free of still-referenced frame");
  }
  // Insert and coalesce with neighbors.
  auto [it, inserted] = free_.emplace(ext.start.value(), ext.count);
  XEMEM_ASSERT_MSG(inserted, "double free of frame extent");
  // Coalesce with successor.
  auto next = std::next(it);
  if (next != free_.end()) {
    XEMEM_ASSERT_MSG(it->first + it->second <= next->first, "double free (overlap)");
    if (it->first + it->second == next->first) {
      it->second += next->second;
      free_.erase(next);
    }
  }
  // Coalesce with predecessor.
  if (it != free_.begin()) {
    auto prev = std::prev(it);
    XEMEM_ASSERT_MSG(prev->first + prev->second <= it->first, "double free (overlap)");
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_.erase(it);
    }
  }
  free_count_ += ext.count;
}

bool FrameZone::is_allocated(Pfn pfn) const {
  if (!owns(pfn)) return false;
  // Allocated iff not inside any free extent.
  auto it = free_.upper_bound(pfn.value());
  if (it == free_.begin()) return true;
  --it;
  return !(it->first <= pfn.value() && pfn.value() < it->first + it->second);
}

u32 PhysicalMemory::add_zone(u64 bytes) {
  const u64 frames = pages_for(bytes);
  zones_.push_back(std::make_unique<FrameZone>(Pfn{next_base_frame_}, frames));
  next_base_frame_ += frames;
  return static_cast<u32>(zones_.size() - 1);
}

FrameZone& PhysicalMemory::zone_of(Pfn pfn) {
  for (auto& z : zones_) {
    if (z->owns(pfn)) return *z;
  }
  XEMEM_PANIC("pfn outside all zones");
}

u8* PhysicalMemory::backing_for(Pfn pfn) const {
  auto it = backing_.find(pfn.value());
  if (it == backing_.end()) {
    auto page = std::make_unique<u8[]>(kPageSize);
    std::memset(page.get(), 0, kPageSize);
    it = backing_.emplace(pfn.value(), std::move(page)).first;
  }
  return it->second.get();
}

std::span<u8, kPageSize> PhysicalMemory::frame_data(Pfn pfn) {
  return std::span<u8, kPageSize>{backing_for(pfn), kPageSize};
}

void PhysicalMemory::write(HostPaddr pa, const void* src, u64 len) {
  const u8* s = static_cast<const u8*>(src);
  while (len > 0) {
    const Pfn pfn = Pfn::of(pa);
    const u64 off = pa.value() & kPageMask;
    const u64 n = std::min(len, kPageSize - off);
    std::memcpy(backing_for(pfn) + off, s, n);
    s += n;
    pa += n;
    len -= n;
  }
}

void PhysicalMemory::read(HostPaddr pa, void* dst, u64 len) const {
  u8* d = static_cast<u8*>(dst);
  while (len > 0) {
    const Pfn pfn = Pfn::of(pa);
    const u64 off = pa.value() & kPageMask;
    const u64 n = std::min(len, kPageSize - off);
    std::memcpy(d, backing_for(pfn) + off, n);
    d += n;
    pa += n;
    len -= n;
  }
}

}  // namespace xemem::hw
