// Simulated physical memory: frame allocation, reference counting, and a
// lazily-backed data plane.
//
// Control plane: every page frame of the simulated machine is tracked with
// an allocation state and a share/pin reference count. XEMEM attachments
// take references on the exporter's frames, so tests can verify that
// detach/remove sequences return the machine to a leak-free state — the
// paper's dynamic mapping design (section 3.3) depends on this bookkeeping.
//
// Data plane: frames are backed by real host memory, allocated lazily on
// first access. Workloads genuinely read and write shared memory (the
// in-situ stop/go signal variables, verification patterns), but a frame
// that is only ever mapped — the common case in the throughput experiments,
// which attach a 1 GiB region 500 times without touching most of it — costs
// nothing on the host.
#pragma once

#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace xemem::hw {

/// Allocation policy for a frame request.
enum class AllocPolicy {
  /// One physically contiguous run (Kitten-style block allocation: the LWK
  /// maps whole regions eagerly from large contiguous extents).
  contiguous,
  /// Deliberately scattered frames (Linux-style page-at-a-time allocation
  /// from a fragmented pool). Scattered PFN lists are what force the
  /// Palacios memory map to take one red-black-tree entry per page
  /// (paper section 4.4).
  scattered,
};

/// A run of physically contiguous frames [start, start + count).
struct FrameExtent {
  Pfn start;
  u64 count;
};

/// Physical memory of one NUMA zone: extent-based allocator + frame table.
class FrameZone {
 public:
  /// Manages frames [base, base + frames).
  FrameZone(Pfn base, u64 frames) : base_(base), frames_(frames) {
    free_.emplace(base.value(), frames);
    free_count_ = frames;
  }

  FrameZone(const FrameZone&) = delete;
  FrameZone& operator=(const FrameZone&) = delete;

  u64 total_frames() const { return frames_; }
  u64 free_frames() const { return free_count_; }
  Pfn base() const { return base_; }

  /// Allocate @p count frames. Contiguous requests return one extent;
  /// scattered requests deliberately split across free extents (round-robin
  /// over the free list) to produce non-contiguous PFN lists.
  Result<std::vector<FrameExtent>> alloc(u64 count, AllocPolicy policy);

  /// Allocate one contiguous extent whose start frame is a multiple of
  /// @p align_frames (2 MiB large-page mappings need 512-frame alignment).
  Result<FrameExtent> alloc_contiguous_aligned(u64 count, u64 align_frames);

  /// Release one extent. Frames must be allocated and unreferenced.
  void free(FrameExtent ext);

  /// Share/pin refcounting. A frame may be freed only at refcount 0;
  /// alloc() sets refcount 0 (owner's allocation is tracked separately).
  void ref(Pfn pfn) { ++refcounts_[pfn.value()]; }
  void unref(Pfn pfn) {
    auto it = refcounts_.find(pfn.value());
    XEMEM_ASSERT_MSG(it != refcounts_.end() && it->second > 0,
                     "unref of unreferenced frame");
    if (--it->second == 0) refcounts_.erase(it);
  }
  u64 refcount(Pfn pfn) const {
    auto it = refcounts_.find(pfn.value());
    return it == refcounts_.end() ? 0 : it->second;
  }
  /// Total outstanding share references (leak checking in tests).
  u64 total_refs() const {
    u64 n = 0;
    for (auto& [pfn, c] : refcounts_) n += c;
    return n;
  }

  bool owns(Pfn pfn) const {
    return pfn >= base_ && pfn.value() < base_.value() + frames_;
  }
  bool is_allocated(Pfn pfn) const;

 private:
  Pfn base_;
  u64 frames_;
  u64 free_count_;
  // Free extents keyed by start frame number -> length. Adjacent extents are
  // coalesced on free.
  std::map<u64, u64> free_;
  std::unordered_map<u64, u64> refcounts_;
  u64 scatter_cursor_{0};
};

/// Whole-machine physical memory: the set of NUMA zones plus the lazily
/// backed data plane.
class PhysicalMemory {
 public:
  /// Append a NUMA zone of @p bytes; returns its zone index. Zones are laid
  /// out back to back in the physical address space.
  u32 add_zone(u64 bytes);

  u32 zone_count() const { return static_cast<u32>(zones_.size()); }
  FrameZone& zone(u32 idx) {
    XEMEM_ASSERT(idx < zones_.size());
    return *zones_[idx];
  }
  /// Zone owning @p pfn (asserts if unowned).
  FrameZone& zone_of(Pfn pfn);

  /// Raw access to one frame's backing bytes (allocated+zeroed on demand).
  std::span<u8, kPageSize> frame_data(Pfn pfn);

  /// Convenience: copy @p len bytes to/from a physical address range that
  /// may span frames.
  void write(HostPaddr pa, const void* src, u64 len);
  void read(HostPaddr pa, void* dst, u64 len) const;

  /// Number of frames with real host backing (diagnostics).
  u64 backed_frames() const { return backing_.size(); }

  /// Machine-global share/pin refcounts. XEMEM pins exported frames here
  /// (rather than in a FrameZone) because enclaves own carved sub-zones of
  /// the socket zones: the pin must be visible wherever the frame came
  /// from. Leak tests assert total_refs() == 0 after teardown.
  void ref(Pfn pfn) { ++share_refs_[pfn.value()]; }
  /// Reference every frame of a contiguous run. Pinning works run-at-a-time
  /// so callers holding extent-compressed frame lists never expand them just
  /// to bump refcounts.
  void ref_run(FrameExtent ext) {
    for (u64 i = 0; i < ext.count; ++i) ++share_refs_[ext.start.value() + i];
  }
  void unref_run(FrameExtent ext) {
    for (u64 i = 0; i < ext.count; ++i) unref(ext.start + i);
  }
  void unref(Pfn pfn) {
    auto it = share_refs_.find(pfn.value());
    XEMEM_ASSERT_MSG(it != share_refs_.end() && it->second > 0,
                     "unref of unreferenced frame");
    if (--it->second == 0) share_refs_.erase(it);
  }
  u64 refcount(Pfn pfn) const {
    auto it = share_refs_.find(pfn.value());
    return it == share_refs_.end() ? 0 : it->second;
  }
  u64 total_refs() const {
    u64 n = 0;
    for (auto& [p, c] : share_refs_) n += c;
    return n;
  }

 private:
  std::vector<std::unique_ptr<FrameZone>> zones_;
  u64 next_base_frame_{0};
  // Lazily-populated data plane.
  mutable std::unordered_map<u64, std::unique_ptr<u8[]>> backing_;
  std::unordered_map<u64, u64> share_refs_;

  u8* backing_for(Pfn pfn) const;
};

}  // namespace xemem::hw
