// Simulated CPU cores with interrupt accounting.
//
// A Core models one hardware thread. Two kinds of activity execute on it:
//
//  * Interrupt-context work (`run_irq`): IPI handlers, timer ticks, SMIs,
//    noise-daemon bursts. Handlers are serialized per core — exactly the
//    property that makes the Pisces channel's core-0 restriction a
//    contention point (paper section 5.3).
//  * Application compute (`compute`): workload phases charge virtual CPU
//    time; any interrupt-context time that lands on the core while a
//    computation is in flight *steals* from it, extending the computation.
//    This is the mechanism behind both the OS-noise experiment (Figure 7,
//    where the selfish-detour loop observes the stolen gaps) and the
//    variance of the Linux-only in-situ configurations (Figures 8 and 9).
#pragma once

#include "common/types.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace xemem::hw {

class Core {
 public:
  Core(u32 id, u32 socket) : id_(id), socket_(socket) {}

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  u32 id() const { return id_; }
  u32 socket() const { return socket_; }

  /// Execute @p d nanoseconds of interrupt-context work on this core.
  /// Handlers are serialized: if another handler is in flight, this one
  /// queues behind it. Completes when the handler finishes.
  ///
  /// Back-to-back handlers merge into contiguous busy segments; the
  /// closed-segment accumulator plus the current segment give an exact
  /// busy-time integral B(t), which compute() uses for precise
  /// stolen-time accounting.
  sim::Task<void> run_irq(sim::Duration d) {
    auto* eng = sim::Engine::current();
    const sim::TimePoint start = std::max(eng->now(), irq_free_at_);
    if (start > irq_free_at_) {
      // Gap since the previous segment: close it.
      busy_closed_ += irq_free_at_ - seg_start_;
      seg_start_ = start;
    }
    const sim::TimePoint end = start + d;
    irq_free_at_ = end;
    stolen_ns_ += d;
    ++irq_events_;
    co_await sim::delay_until(end);
  }

  /// Total interrupt-busy time in [0, t] for t <= now (or t in the
  /// currently scheduled busy segment).
  u64 busy_integral(sim::TimePoint t) const {
    const sim::TimePoint seg_end = std::min(t, irq_free_at_);
    const u64 current = seg_end > seg_start_ ? seg_end - seg_start_ : 0;
    return busy_closed_ + current;
  }

  /// Execute @p work nanoseconds of application compute on this core.
  /// Interrupt-context time overlapping the computation is stolen from it:
  /// the task finishes after `work` ns of interrupt-free core time, using
  /// the exact busy-interval overlap (a handler outliving the window
  /// blocks the core for its tail but is not double-charged).
  sim::Task<void> compute(sim::Duration work) {
    u64 remaining = work;
    while (remaining > 0) {
      // If interrupt context currently owns the core, wait it out.
      if (sim::now() < irq_free_at_) {
        co_await sim::delay_until(irq_free_at_);
        continue;
      }
      const u64 busy_before = busy_integral(sim::now());
      co_await sim::delay(remaining);
      // Re-run exactly the cycles interrupts overlapped with the window.
      remaining = busy_integral(sim::now()) - busy_before;
    }
  }

  /// True if interrupt context currently occupies the core.
  bool in_irq() const { return sim::Engine::current()->now() < irq_free_at_; }

  /// Cumulative interrupt-context nanoseconds charged to this core.
  u64 stolen_ns() const { return stolen_ns_; }
  /// Number of interrupt-context executions.
  u64 irq_events() const { return irq_events_; }
  /// Time at which the last queued handler completes.
  sim::TimePoint irq_free_at() const { return irq_free_at_; }

 private:
  u32 id_;
  u32 socket_;
  sim::TimePoint irq_free_at_{0};
  sim::TimePoint seg_start_{0};  // start of the current busy segment
  u64 busy_closed_{0};           // busy time of all closed segments
  u64 stolen_ns_{0};
  u64 irq_events_{0};
};

}  // namespace xemem::hw
