// Inter-processor interrupt delivery.
//
// The Pisces cross-enclave channel (paper section 4.5) signals message
// availability by sending an IPI to a specific core of the destination
// enclave. The IpiController routes a (core, vector) pair to a registered
// handler; the handler's fixed cost executes in interrupt context on the
// destination core (stealing application time there), after which the
// handler callback runs — typically waking the enclave's kernel command
// thread through a mailbox.
#pragma once

#include <functional>
#include <unordered_map>

#include "common/assert.hpp"
#include "hw/core.hpp"
#include "sim/engine.hpp"

namespace xemem::hw {

class IpiController {
 public:
  using Handler = std::function<void()>;

  /// Register the handler for @p vector on @p core. Re-registration
  /// replaces the previous handler (enclave teardown/reboot).
  void register_handler(Core* core, u32 vector, sim::Duration handler_cost,
                        Handler fn) {
    XEMEM_ASSERT(core != nullptr);
    handlers_[key(core->id(), vector)] = Entry{core, handler_cost, std::move(fn)};
  }

  void unregister_handler(u32 core_id, u32 vector) {
    handlers_.erase(key(core_id, vector));
  }

  /// Post an IPI: fire-and-forget from the sender's perspective, exactly
  /// like a hardware APIC write. The handler runs (serialized) on the
  /// destination core and its callback fires when the handler retires.
  void post(u32 core_id, u32 vector) {
    auto it = handlers_.find(key(core_id, vector));
    XEMEM_ASSERT_MSG(it != handlers_.end(), "IPI to unregistered vector");
    ++delivered_;
    sim::Engine::current()->spawn(deliver(&it->second));
  }

  u64 delivered() const { return delivered_; }

 private:
  struct Entry {
    Core* core;
    sim::Duration cost;
    Handler fn;
  };

  static u64 key(u32 core_id, u32 vector) {
    return (static_cast<u64>(core_id) << 32) | vector;
  }

  static sim::Task<void> deliver(Entry* e) {
    co_await e->core->run_irq(e->cost);
    e->fn();
  }

  std::unordered_map<u64, Entry> handlers_;
  u64 delivered_{0};
};

}  // namespace xemem::hw
