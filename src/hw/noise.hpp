// OS and hardware noise models.
//
// The paper's Figure 7 measures the Kitten enclave's noise profile with
// the ANL Selfish Detour benchmark and finds (a) a dense band of ~12 us
// detours, (b) sparse ~100 us events attributed to SMIs, and (c) detours
// injected by XEMEM attachment servicing. Figures 8 and 9 show that the
// Linux-only configurations suffer both longer mean runtimes and much
// higher run-to-run variance, attributed to the interference a fullweight
// OS imposes on co-located workloads.
//
// Each noise component below is an independent event stream executed in
// interrupt context on one core (see hw::Core), so noise automatically
// steals time from whatever application compute is in flight there.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hw/core.hpp"
#include "sim/engine.hpp"

namespace xemem::hw {

/// One recurring source of stolen CPU time on a core.
struct NoiseComponent {
  const char* name;
  /// Mean inter-arrival time. Periodic sources use uniform jitter around
  /// this; Poisson sources draw exponential inter-arrivals.
  double period_ns;
  /// For periodic sources: uniform jitter fraction (0.2 = +/-20%).
  double period_jitter;
  bool poisson_arrivals;
  /// Event duration: lognormal with this median...
  double duration_median_ns;
  /// ...and this sigma (log-space). sigma 0 gives deterministic durations.
  double duration_sigma;
};

/// A named set of components (an OS personality's noise signature).
struct NoiseProfile {
  const char* name;
  std::vector<NoiseComponent> components;
};

/// Hardware-only noise every enclave inherits: System Management
/// Interrupts. Calibrated to the sparse ~100-160 us band Figure 7 shows
/// even on Kitten (the paper: "less frequent interruptions likely caused
/// by periodic hardware events such as SMIs around the 100 us mark").
inline NoiseProfile smi_noise() {
  return NoiseProfile{
      "smi",
      {NoiseComponent{"smi", /*period=*/static_cast<double>(700_ms), 0.3,
                      /*poisson=*/false, /*median=*/static_cast<double>(110_us),
                      /*sigma=*/0.15}}};
}

/// Kitten LWK noise: the dense band of short detours Figure 7 shows
/// around 12 us (minimal kernel housekeeping). Total utilization is
/// ~0.25% — "largely non-existent" as the paper puts it. SMIs are a
/// hardware property: apply smi_noise() separately to every core of the
/// machine (xemem::Node::spawn_std_noise does this).
inline NoiseProfile kitten_noise() {
  return NoiseProfile{"kitten",
                      {NoiseComponent{"lwk-housekeeping", static_cast<double>(5_ms),
                                      0.5, /*poisson=*/false,
                                      static_cast<double>(12_us), 0.05}}};
}

/// Fullweight Linux noise: 1 kHz timer ticks, short daemon wakeups, and
/// rare heavyweight bursts (kswapd scans, cron, journald flushes). The
/// burst component carries the run-to-run variance that produces the wide
/// error bars of the paper's Linux-only configurations (Figures 8 and 9).
inline NoiseProfile linux_noise() {
  return NoiseProfile{
      "linux",
      {
          NoiseComponent{"timer-tick", static_cast<double>(1_ms), 0.02,
                         /*poisson=*/false, static_cast<double>(4_us), 0.05},
          NoiseComponent{"daemon-wakeup", static_cast<double>(25_ms), 0.0,
                         /*poisson=*/true, static_cast<double>(300_us), 0.8},
          NoiseComponent{"daemon-burst", static_cast<double>(10_s), 0.0,
                         /*poisson=*/true, static_cast<double>(80_ms), 1.4},
      }};
}

/// Guest Linux inside a Palacios VM: ticks cost more (each tick takes a
/// VM exit) but the freshly-booted guest runs fewer daemons; bursts are
/// rarer and smaller. The Kitten-hosted VM inherits only SMIs from the
/// host; the Linux-hosted VM should additionally receive linux_noise() on
/// its physical cores (composed by the experiment configuration).
inline NoiseProfile vm_linux_noise() {
  return NoiseProfile{
      "vm-linux",
      {
          NoiseComponent{"guest-tick", static_cast<double>(1_ms), 0.02,
                         /*poisson=*/false, static_cast<double>(7_us), 0.05},
          NoiseComponent{"guest-daemon", static_cast<double>(50_ms), 0.0,
                         /*poisson=*/true, static_cast<double>(200_us), 0.6},
          NoiseComponent{"guest-burst", static_cast<double>(15_s), 0.0,
                         /*poisson=*/true, static_cast<double>(25_ms), 0.8},
      }};
}

namespace detail {

inline sim::Task<void> noise_actor(Core* core, NoiseComponent c, Rng rng,
                                   sim::TimePoint until) {
  // Random initial phase so components do not all fire at t=0.
  co_await sim::delay(static_cast<u64>(rng.uniform(0.0, c.period_ns)));
  while (sim::now() < until) {
    const double gap =
        c.poisson_arrivals
            ? rng.exponential(c.period_ns)
            : c.period_ns * rng.uniform(1.0 - c.period_jitter, 1.0 + c.period_jitter);
    co_await sim::delay(static_cast<u64>(std::max(gap, 1.0)));
    if (sim::now() >= until) break;
    const double dur =
        c.duration_sigma == 0.0
            ? c.duration_median_ns
            : rng.lognormal(std::log(c.duration_median_ns), c.duration_sigma);
    co_await core->run_irq(static_cast<u64>(std::max(dur, 1.0)));
  }
}

}  // namespace detail

/// Launch every component of @p profile on @p core until simulated time
/// @p until (default: effectively forever — suspended actors are reclaimed
/// at engine teardown).
inline void spawn_noise(sim::Engine& eng, Core& core, const NoiseProfile& profile,
                        Rng& parent_rng, sim::TimePoint until = ~u64{0}) {
  for (const auto& c : profile.components) {
    eng.spawn(detail::noise_actor(&core, c, parent_rng.fork(), until));
  }
}

}  // namespace xemem::hw
