// The simulated node: NUMA sockets, cores, memory, IPIs.
//
// Mirrors the two evaluation platforms of the paper:
//  * section 5.1: Dell PowerEdge R420 — dual-socket 6-core Xeon with
//    hyperthreading (24 hardware threads), 2 NUMA sockets x 16 GB.
//  * section 6.3: Dell OptiPlex — single-socket 4-core i7 with
//    hyperthreading (8 threads), one memory zone of 8 GB.
//
// Each socket owns a FrameZone (its physical memory) and a SharedBandwidth
// (its memory controller): concurrent streams within a socket contend
// fairly, while cross-socket traffic is avoided by construction — the
// paper pins every enclave to a single NUMA domain (sections 5.1, 7.1) and
// so do the experiment harnesses.
#pragma once

#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "hw/core.hpp"
#include "hw/ipi.hpp"
#include "hw/phys_mem.hpp"
#include "sim/shared_resource.hpp"

namespace xemem::hw {

struct SocketConfig {
  u32 cores;               ///< hardware threads in this socket
  u64 memory_bytes;        ///< size of the socket's NUMA zone
  double mem_bw_bytes_per_ns;  ///< memory controller bandwidth (GB/s == B/ns)
};

struct MachineConfig {
  std::vector<SocketConfig> sockets;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg) {
    u32 core_id = 0;
    for (u32 s = 0; s < cfg.sockets.size(); ++s) {
      const auto& sc = cfg.sockets[s];
      const u32 zone = pmem_.add_zone(sc.memory_bytes);
      XEMEM_ASSERT(zone == s);
      bw_.push_back(std::make_unique<sim::SharedBandwidth>(sc.mem_bw_bytes_per_ns));
      for (u32 c = 0; c < sc.cores; ++c) {
        cores_.push_back(std::make_unique<Core>(core_id++, s));
      }
    }
  }

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  PhysicalMemory& pmem() { return pmem_; }
  IpiController& ipi() { return ipi_; }

  u32 core_count() const { return static_cast<u32>(cores_.size()); }
  Core& core(u32 id) {
    XEMEM_ASSERT(id < cores_.size());
    return *cores_[id];
  }

  u32 socket_count() const { return static_cast<u32>(bw_.size()); }
  sim::SharedBandwidth& socket_bw(u32 socket) {
    XEMEM_ASSERT(socket < bw_.size());
    return *bw_[socket];
  }
  FrameZone& zone(u32 socket) { return pmem_.zone(socket); }

  /// Paper section 5.1 platform: dual-socket 6-core Xeon E5 @ 2.1 GHz with
  /// HT (24 threads), 2 x 16 GB NUMA, interleaving disabled. Per-socket
  /// sustained memory bandwidth ~12.8 GB/s (2-channel DDR3-1333 class).
  static MachineConfig r420() {
    return MachineConfig{{SocketConfig{12, 16ull << 30, 12.8},
                          SocketConfig{12, 16ull << 30, 12.8}}};
  }

  /// Paper section 6.3 platform: single-socket 4-core i7 @ 3.4 GHz with HT
  /// (8 threads), one 8 GB zone, ~14 GB/s sustained.
  static MachineConfig optiplex() {
    return MachineConfig{{SocketConfig{8, 8ull << 30, 14.0}}};
  }

 private:
  PhysicalMemory pmem_;
  IpiController ipi_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::unique_ptr<sim::SharedBandwidth>> bw_;
};

}  // namespace xemem::hw
