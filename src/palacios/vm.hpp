// Palacios virtual machine container.
//
// Owns a guest's physical address space: the RAM region (carved from large
// contiguous host blocks, so the initial memory map is a handful of
// entries) plus a hot-plug region above RAM into which XEMEM attachments
// are materialized (paper Figure 4(a): "Allocate New Guest Pages").
//
// Host frames arriving in XEMEM attachments are inserted into the memory
// map one entry per page, without coalescing — matching the shipping
// Palacios implementation the paper measures in section 5.4 ("the process
// of updating the memory map may require a new entry in the red-black tree
// for each host page frame"). The MapBackend::radix alternative implements
// the paper's proposed fix; bench/ablation_memory_map compares them.
#pragma once

#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/costs.hpp"
#include "common/status.hpp"
#include "hw/machine.hpp"
#include "mm/pfn_list.hpp"
#include "palacios/memory_map.hpp"

namespace xemem::palacios {

class PalaciosVm {
 public:
  struct Config {
    std::string name;
    u64 guest_ram_bytes;
    u64 hotplug_bytes;  ///< GPA window reserved for XEMEM attachments
    MapBackend backend{MapBackend::rbtree};
  };

  /// @param host_zone  the host NUMA zone backing guest RAM.
  PalaciosVm(Config cfg, hw::FrameZone& host_zone)
      : cfg_(std::move(cfg)),
        host_zone_(host_zone),
        map_(cfg_.backend),
        guest_ram_(Pfn{0}, pages_for(cfg_.guest_ram_bytes)),
        hotplug_(Pfn{pages_for(cfg_.guest_ram_bytes)}, pages_for(cfg_.hotplug_bytes)) {
  }

  ~PalaciosVm() {
    for (auto e : host_ram_extents_) host_zone_.free(e);
  }

  PalaciosVm(const PalaciosVm&) = delete;
  PalaciosVm& operator=(const PalaciosVm&) = delete;

  /// Allocate host RAM and populate the initial GPA->HPA map. The host
  /// allocation is contiguous-first: typical Palacios deployments hand the
  /// guest a few large blocks, keeping the initial map tiny — which is why
  /// Table 2's guest-export path (map lookups, no inserts) stays fast.
  Result<void> init() {
    auto r = host_zone_.alloc(guest_ram_.total_frames(), hw::AllocPolicy::contiguous);
    if (!r.ok()) {
      // Fall back to scattered chunks if the host zone is fragmented.
      r = host_zone_.alloc(guest_ram_.total_frames(), hw::AllocPolicy::scattered);
      if (!r.ok()) return r.error();
    }
    host_ram_extents_ = std::move(r).value();
    u64 gpa = 0;
    for (auto e : host_ram_extents_) {
      auto ins = map_.insert_region(GuestPaddr{gpa}, e.start.paddr(),
                                    e.count * kPageSize, nullptr);
      if (!ins.ok()) return ins;
      gpa += e.count * kPageSize;
    }
    return {};
  }

  const std::string& name() const { return cfg_.name; }
  GuestMemoryMap& memory_map() { return map_; }
  const GuestMemoryMap& memory_map() const { return map_; }

  /// Guest-physical RAM allocator (frame numbers are *guest* frames; the
  /// Pfn type is reused as a domain-local frame number).
  hw::FrameZone& guest_ram() { return guest_ram_; }

  /// Figure 4(a): materialize a host PFN list as new guest-physical pages.
  /// Allocates a fresh hot-plug GPA run and inserts one memory-map entry
  /// per page (see file comment). Returns the new guest frames and the
  /// structural work for the caller's time charge.
  Result<std::pair<std::vector<Gfn>, MapWork>> map_host_frames(
      const mm::PfnList& host) {
    auto gpas = hotplug_.alloc(host.page_count(), hw::AllocPolicy::contiguous);
    if (!gpas.ok()) return gpas.error();
    XEMEM_ASSERT(gpas.value().size() == 1);
    const Pfn gfn0 = gpas.value()[0].start;
    MapWork work;
    std::vector<Gfn> gfns;
    gfns.reserve(host.page_count());
    for (u64 i = 0; i < host.page_count(); ++i) {
      const Gfn gfn{gfn0.value() + i};
      auto ins = map_.insert_region(gfn.paddr(), host.pfns[i].paddr(), kPageSize,
                                    &work);
      if (!ins.ok()) {
        for (u64 j = 0; j < i; ++j) {
          (void)map_.remove_region(Gfn{gfn0.value() + j}.paddr(), kPageSize, &work);
        }
        hotplug_.free(gpas.value()[0]);
        return ins.error();
      }
      gfns.push_back(gfn);
    }
    return std::pair{std::move(gfns), work};
  }

  /// Tear down a hot-plug attachment created by map_host_frames.
  Result<MapWork> unmap_host_frames(const std::vector<Gfn>& gfns) {
    MapWork work;
    for (Gfn g : gfns) {
      auto r = map_.remove_region(g.paddr(), kPageSize, &work);
      if (!r.ok()) return r.error();
    }
    if (!gfns.empty()) {
      hotplug_.free(hw::FrameExtent{Pfn{gfns.front().value()},
                                    static_cast<u64>(gfns.size())});
    }
    return work;
  }

  /// Figure 4(b): translate guest frames exported by the guest into host
  /// frames, walking the memory map per page.
  Result<mm::PfnList> guest_to_host(const std::vector<Gfn>& gfns,
                                    MapWork* work = nullptr) {
    return map_.translate_frames(gfns, work);
  }

  /// Data-plane translation of one guest frame (no charge; correctness).
  Result<Pfn> translate_gfn(Gfn gfn) const {
    auto hpa = map_.translate(gfn.paddr(), nullptr);
    if (!hpa) return Errc::invalid_argument;
    return Pfn::of(*hpa);
  }

  /// Simulated-time charge for @p work on this VM's memory-map backend.
  u64 map_work_cost(const MapWork& work) const {
    if (cfg_.backend == MapBackend::rbtree) {
      return work.steps * costs::kRbStepCost + work.rotations * costs::kRbRotationCost;
    }
    return work.steps * costs::kRadixStepCost;
  }

 private:
  Config cfg_;
  hw::FrameZone& host_zone_;
  GuestMemoryMap map_;
  hw::FrameZone guest_ram_;  // guest frame numbers [0, ram)
  hw::FrameZone hotplug_;    // guest frame numbers [ram, ram + hotplug)
  std::vector<hw::FrameExtent> host_ram_extents_;
};

}  // namespace xemem::palacios
