// The Palacios virtual PCI device channel (paper sections 4.4-4.5).
//
// Host<->guest messages stage their payload through the device's memory
// window and notify the other side with a world switch: the host raises a
// virtual IRQ into the guest; the guest issues a hypercall into the host.
// Messages without PFN-list payloads ("simple command header") cost only
// the header copy plus the notification; attach responses additionally pay
// the window copy on both sides.
//
// All handler-side work executes in interrupt context on the destination
// side's core (hw::Core::run_irq), so VM channel traffic perturbs guest
// computation exactly the way the in-situ experiments require.
#pragma once

#include "common/costs.hpp"
#include "hw/core.hpp"
#include "xemem/channel.hpp"

namespace xemem::palacios {

class PciEndpoint final : public ChannelEndpoint {
 public:
  /// @param self_core  core whose time pays this side's staging copy
  /// @param peer_core  core that takes the notification and copy-out
  PciEndpoint(hw::Core* self_core, hw::Core* peer_core)
      : self_core_(self_core), peer_core_(peer_core) {}

  void set_peer(PciEndpoint* peer) { peer_ = peer; }

  sim::Task<void> send(Message msg) override {
    XEMEM_ASSERT(peer_ != nullptr);
    account(msg);
    const u64 bytes = msg.wire_bytes();
    const u64 copy_ns =
        static_cast<u64>(static_cast<double>(bytes) / costs::kPciWindowBytesPerNs);
    // Stage into the device window (sender side, kernel context).
    co_await self_core_->run_irq(copy_ns);
    // World switch: IRQ injection or hypercall, paid by the sender...
    co_await sim::delay(costs::kVmEntryExit);
    // ...then the destination handler copies the message out of the window.
    co_await peer_core_->run_irq(costs::kVmEntryExit / 2 + copy_ns);
    peer_->inbox().send(std::move(msg));
  }

 private:
  hw::Core* self_core_;
  hw::Core* peer_core_;
  PciEndpoint* peer_{nullptr};
};

/// Build the host/guest channel for one VM. `a` is the host-side endpoint
/// (sends raise IRQs into @p guest_core); `b` is the guest-side endpoint
/// (sends hypercall into @p host_core).
inline ChannelPair make_pci_channel(hw::Core* host_core, hw::Core* guest_core) {
  auto host_ep = std::make_unique<PciEndpoint>(host_core, guest_core);
  auto guest_ep = std::make_unique<PciEndpoint>(guest_core, host_core);
  host_ep->set_peer(guest_ep.get());
  guest_ep->set_peer(host_ep.get());
  return ChannelPair{std::move(host_ep), std::move(guest_ep)};
}

}  // namespace xemem::palacios
