// The Palacios guest memory map: GPA -> HPA translation.
//
// Palacios tracks each guest's physical address space as a set of entries,
// each mapping a physically contiguous guest region to a physically
// contiguous host region. Normal guest RAM is carved from large host
// blocks, so the map starts tiny; XEMEM attachments of scattered host
// frames add one entry per page (paper section 4.4), and the paper shows
// the resulting red-black-tree inserts dominate guest attach cost
// (section 5.4: 3.99 GB/s with inserts vs 8.79 GB/s without).
//
// Two backends are provided:
//  * MapBackend::rbtree — the shipping Palacios design (RbTree of region
//    entries, O(log n) insert with re-balancing);
//  * MapBackend::radix — the paper's proposed future-work replacement, a
//    page-table-like 512-ary radix keyed by guest frame number with O(4)
//    per-page cost and no re-balancing. `bench/ablation_memory_map`
//    quantifies the difference.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "mm/pfn_list.hpp"
#include "palacios/rbtree.hpp"

namespace xemem::palacios {

enum class MapBackend { rbtree, radix };

/// Structural work of a memory-map operation (for the VMM's time charge).
struct MapWork {
  u64 steps{0};      ///< node/slot visits
  u64 rotations{0};  ///< rb-tree rotations (0 for radix)
  u64 entries_touched{0};

  MapWork& operator+=(const MapWork& o) {
    steps += o.steps;
    rotations += o.rotations;
    entries_touched += o.entries_touched;
    return *this;
  }
};

class GuestMemoryMap {
 public:
  explicit GuestMemoryMap(MapBackend backend) : backend_(backend) {
    if (backend == MapBackend::radix) radix_root_ = std::make_unique<RadixNode>();
  }

  MapBackend backend() const { return backend_; }

  /// Map guest region [gpa, gpa+bytes) to host region [hpa, hpa+bytes).
  /// Both must be page aligned; the guest range must be unmapped.
  Result<void> insert_region(GuestPaddr gpa, HostPaddr hpa, u64 bytes,
                             MapWork* work = nullptr);

  /// Remove the mapping of guest region [gpa, gpa+bytes).
  Result<void> remove_region(GuestPaddr gpa, u64 bytes, MapWork* work = nullptr);

  /// Translate one guest physical address.
  std::optional<HostPaddr> translate(GuestPaddr gpa, MapWork* work = nullptr) const;

  /// Translate a guest frame list to host frames (Figure 4(b) path).
  Result<mm::PfnList> translate_frames(const std::vector<Gfn>& gfns,
                                       MapWork* work = nullptr) const;

  /// Number of live map entries (rb-tree nodes / radix leaf slots).
  u64 entries() const { return entries_; }

  /// rb-tree backend only: verify the red-black invariants.
  bool validate() const {
    return backend_ == MapBackend::rbtree ? rb_.validate() : true;
  }

 private:
  struct Region {
    HostPaddr hpa;
    u64 bytes;
  };

  // ---- radix backend: 4-level 512-ary tree keyed by guest frame number.
  struct RadixNode {
    std::array<std::unique_ptr<RadixNode>, 512> children{};
    std::array<u64, 512> slot{};  // level-1: hpa | present-bit
    u16 used{0};
  };
  static constexpr u64 kPresent = 1;

  static u32 radix_index(Gfn gfn, int level) {
    return static_cast<u32>((gfn.value() >> (9 * (level - 1))) & 0x1ff);
  }

  Result<void> radix_insert_page(Gfn gfn, HostPaddr hpa, MapWork& w);
  Result<void> radix_remove_page(Gfn gfn, MapWork& w);
  std::optional<HostPaddr> radix_translate(GuestPaddr gpa, MapWork& w) const;

  MapBackend backend_;
  RbTree<u64, Region> rb_;  // key: gpa start
  std::unique_ptr<RadixNode> radix_root_;
  u64 entries_{0};
};

inline Result<void> GuestMemoryMap::insert_region(GuestPaddr gpa, HostPaddr hpa,
                                                  u64 bytes, MapWork* work) {
  if ((gpa.value() | hpa.value() | bytes) & kPageMask) return Errc::invalid_argument;
  if (bytes == 0) return Errc::invalid_argument;
  MapWork w;
  if (backend_ == MapBackend::rbtree) {
    // Overlap check against floor neighbor and (implicitly) the insert probe.
    RbOpStats st;
    auto [fk, fv] = rb_.floor(gpa.value() + bytes - 1, &st);
    if (fk != nullptr && *fk + fv->bytes > gpa.value()) {
      w.steps += st.nodes_visited;
      if (work) *work += w;
      return Errc::already_exists;
    }
    RbOpStats ins;
    auto [slot, fresh] = rb_.insert(gpa.value(), Region{hpa, bytes}, &ins);
    (void)slot;
    XEMEM_ASSERT(fresh);  // overlap check above covers exact duplicates
    w.steps += st.nodes_visited + ins.nodes_visited + ins.recolorings;
    w.rotations += ins.rotations;
    w.entries_touched += 1;
    ++entries_;
    if (work) *work += w;
    return {};
  }
  const u64 pages = bytes >> kPageShift;
  for (u64 i = 0; i < pages; ++i) {
    auto r = radix_insert_page(Gfn::of(gpa + i * kPageSize), hpa + i * kPageSize, w);
    if (!r.ok()) {
      // Roll back prior pages of this call.
      for (u64 j = 0; j < i; ++j) {
        (void)radix_remove_page(Gfn::of(gpa + j * kPageSize), w);
      }
      if (work) *work += w;
      return r;
    }
  }
  if (work) *work += w;
  return {};
}

inline Result<void> GuestMemoryMap::remove_region(GuestPaddr gpa, u64 bytes,
                                                  MapWork* work) {
  if ((gpa.value() | bytes) & kPageMask) return Errc::invalid_argument;
  MapWork w;
  if (backend_ == MapBackend::rbtree) {
    RbOpStats st;
    Region* r = rb_.find(gpa.value(), &st);
    w.steps += st.nodes_visited;
    if (r == nullptr || r->bytes != bytes) {
      if (work) *work += w;
      return Errc::invalid_argument;
    }
    RbOpStats er;
    rb_.erase(gpa.value(), &er);
    w.steps += er.nodes_visited + er.recolorings;
    w.rotations += er.rotations;
    w.entries_touched += 1;
    --entries_;
    if (work) *work += w;
    return {};
  }
  const u64 pages = bytes >> kPageShift;
  for (u64 i = 0; i < pages; ++i) {
    auto r = radix_remove_page(Gfn::of(gpa + i * kPageSize), w);
    if (!r.ok()) {
      if (work) *work += w;
      return r;
    }
  }
  if (work) *work += w;
  return {};
}

inline std::optional<HostPaddr> GuestMemoryMap::translate(GuestPaddr gpa,
                                                          MapWork* work) const {
  MapWork w;
  std::optional<HostPaddr> out;
  if (backend_ == MapBackend::rbtree) {
    RbOpStats st;
    auto [k, v] = const_cast<RbTree<u64, Region>&>(rb_).floor(gpa.value(), &st);
    w.steps += st.nodes_visited;
    if (k != nullptr && gpa.value() < *k + v->bytes) {
      out = v->hpa + (gpa.value() - *k);
    }
  } else {
    out = radix_translate(gpa, w);
  }
  if (work) *work += w;
  return out;
}

inline Result<mm::PfnList> GuestMemoryMap::translate_frames(
    const std::vector<Gfn>& gfns, MapWork* work) const {
  mm::PfnList out;
  out.pfns.reserve(gfns.size());
  for (Gfn g : gfns) {
    auto hpa = translate(g.paddr(), work);
    if (!hpa) return Errc::invalid_argument;
    out.pfns.push_back(Pfn::of(*hpa));
  }
  return out;
}

inline Result<void> GuestMemoryMap::radix_insert_page(Gfn gfn, HostPaddr hpa,
                                                      MapWork& w) {
  RadixNode* node = radix_root_.get();
  for (int level = 4; level >= 2; --level) {
    ++w.steps;
    auto& child = node->children[radix_index(gfn, level)];
    if (!child) {
      child = std::make_unique<RadixNode>();
      ++node->used;
    }
    node = child.get();
  }
  ++w.steps;
  u64& slot = node->slot[radix_index(gfn, 1)];
  if (slot & kPresent) return Errc::already_exists;
  slot = hpa.value() | kPresent;
  ++node->used;
  ++entries_;
  ++w.entries_touched;
  return {};
}

inline Result<void> GuestMemoryMap::radix_remove_page(Gfn gfn, MapWork& w) {
  RadixNode* node = radix_root_.get();
  for (int level = 4; level >= 2 && node; --level) {
    ++w.steps;
    node = node->children[radix_index(gfn, level)].get();
  }
  if (!node) return Errc::invalid_argument;
  ++w.steps;
  u64& slot = node->slot[radix_index(gfn, 1)];
  if (!(slot & kPresent)) return Errc::invalid_argument;
  slot = 0;
  --node->used;
  --entries_;
  ++w.entries_touched;
  // Interior nodes are retained (as real radix page tables usually do);
  // entry accounting is what the ablation measures.
  return {};
}

inline std::optional<HostPaddr> GuestMemoryMap::radix_translate(GuestPaddr gpa,
                                                                MapWork& w) const {
  const Gfn gfn = Gfn::of(gpa);
  const RadixNode* node = radix_root_.get();
  for (int level = 4; level >= 2 && node; --level) {
    ++w.steps;
    node = node->children[radix_index(gfn, level)].get();
  }
  if (!node) return std::nullopt;
  ++w.steps;
  const u64 slot = node->slot[radix_index(gfn, 1)];
  if (!(slot & kPresent)) return std::nullopt;
  return HostPaddr{(slot & ~kPresent) | (gpa.value() & kPageMask)};
}

}  // namespace xemem::palacios
