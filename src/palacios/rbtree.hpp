// Red-black tree with operation instrumentation.
//
// Palacios maintains each guest's GPA->HPA memory map as a red-black tree
// whose entries map physically contiguous guest regions to physically
// contiguous host regions (paper section 4.4). XEMEM attachments of
// scattered host frames force one entry per page, and the paper measures
// (section 5.4) that the resulting inserts and re-balancing dominate guest
// attachment cost — removing them raises throughput from 3.99 GB/s to
// 8.79 GB/s on a 1 GB region.
//
// To reproduce that effect honestly, this is a from-scratch CLRS-style
// red-black tree that counts the structural work (nodes visited, rotations,
// recolorings) of every operation; the VMM charges simulated time
// proportional to those counts. A validate() routine checks the red-black
// invariants for the property tests.
#pragma once

#include <functional>
#include <utility>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace xemem::palacios {

/// Structural work performed by one tree operation; the basis of the VMM's
/// simulated-time charge for memory-map updates.
struct RbOpStats {
  u64 nodes_visited{0};
  u64 rotations{0};
  u64 recolorings{0};

  RbOpStats& operator+=(const RbOpStats& o) {
    nodes_visited += o.nodes_visited;
    rotations += o.rotations;
    recolorings += o.recolorings;
    return *this;
  }
};

template <typename K, typename V, typename Cmp = std::less<K>>
class RbTree {
 public:
  RbTree() {
    nil_.color = Color::black;
    nil_.left = nil_.right = nil_.parent = &nil_;
    root_ = &nil_;
  }

  ~RbTree() { clear(); }

  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;

  u64 size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Insert key -> value. Returns (value slot, true) on success or
  /// (existing slot, false) if the key is already present.
  std::pair<V*, bool> insert(const K& key, V value, RbOpStats* stats = nullptr) {
    RbOpStats local;
    Node* parent = &nil_;
    Node* cur = root_;
    while (cur != &nil_) {
      ++local.nodes_visited;
      parent = cur;
      if (cmp_(key, cur->key)) {
        cur = cur->left;
      } else if (cmp_(cur->key, key)) {
        cur = cur->right;
      } else {
        if (stats) *stats += local;
        return {&cur->value, false};
      }
    }
    Node* n = new Node{key, std::move(value), Color::red, &nil_, &nil_, parent};
    if (parent == &nil_) {
      root_ = n;
    } else if (cmp_(key, parent->key)) {
      parent->left = n;
    } else {
      parent->right = n;
    }
    ++size_;
    insert_fixup(n, local);
    if (stats) *stats += local;
    return {&n->value, true};
  }

  /// Find exact key.
  V* find(const K& key, RbOpStats* stats = nullptr) {
    Node* n = find_node(key, stats);
    return n == &nil_ ? nullptr : &n->value;
  }
  const V* find(const K& key, RbOpStats* stats = nullptr) const {
    return const_cast<RbTree*>(this)->find(key, stats);
  }

  /// Greatest key <= @p key (interval lookup for region maps); nullptr pair
  /// members if no such key exists.
  std::pair<const K*, V*> floor(const K& key, RbOpStats* stats = nullptr) {
    RbOpStats local;
    Node* best = &nil_;
    Node* cur = root_;
    while (cur != &nil_) {
      ++local.nodes_visited;
      if (cmp_(key, cur->key)) {
        cur = cur->left;
      } else {
        best = cur;  // cur->key <= key
        cur = cur->right;
      }
    }
    if (stats) *stats += local;
    if (best == &nil_) return {nullptr, nullptr};
    return {&best->key, &best->value};
  }

  /// Remove @p key. Returns false if absent.
  bool erase(const K& key, RbOpStats* stats = nullptr) {
    RbOpStats local;
    Node* z = find_node_counting(key, local);
    if (z == &nil_) {
      if (stats) *stats += local;
      return false;
    }
    erase_node(z, local);
    if (stats) *stats += local;
    return true;
  }

  /// In-order traversal.
  void for_each(const std::function<void(const K&, const V&)>& fn) const {
    walk(root_, fn);
  }

  void clear() {
    free_subtree(root_);
    root_ = &nil_;
    size_ = 0;
  }

  /// Check every red-black invariant; used by the property tests.
  ///  1. the root is black;
  ///  2. no red node has a red child;
  ///  3. every root-to-leaf path has the same black height;
  ///  4. in-order keys are strictly increasing;
  ///  5. parent pointers are consistent.
  bool validate() const {
    if (root_ == &nil_) return true;
    if (root_->color != Color::black) return false;
    if (root_->parent != &nil_) return false;
    int black_height = -1;
    const K* prev = nullptr;
    return validate_rec(root_, 0, black_height, prev);
  }

 private:
  enum class Color : u8 { red, black };

  struct Node {
    K key;
    V value;
    Color color;
    Node* left;
    Node* right;
    Node* parent;
  };

  Node* find_node(const K& key, RbOpStats* stats) {
    RbOpStats local;
    Node* n = find_node_counting(key, local);
    if (stats) *stats += local;
    return n;
  }

  Node* find_node_counting(const K& key, RbOpStats& local) {
    Node* cur = root_;
    while (cur != &nil_) {
      ++local.nodes_visited;
      if (cmp_(key, cur->key)) {
        cur = cur->left;
      } else if (cmp_(cur->key, key)) {
        cur = cur->right;
      } else {
        return cur;
      }
    }
    return &nil_;
  }

  void rotate_left(Node* x, RbOpStats& st) {
    ++st.rotations;
    Node* y = x->right;
    x->right = y->left;
    if (y->left != &nil_) y->left->parent = x;
    y->parent = x->parent;
    if (x->parent == &nil_) {
      root_ = y;
    } else if (x == x->parent->left) {
      x->parent->left = y;
    } else {
      x->parent->right = y;
    }
    y->left = x;
    x->parent = y;
  }

  void rotate_right(Node* x, RbOpStats& st) {
    ++st.rotations;
    Node* y = x->left;
    x->left = y->right;
    if (y->right != &nil_) y->right->parent = x;
    y->parent = x->parent;
    if (x->parent == &nil_) {
      root_ = y;
    } else if (x == x->parent->right) {
      x->parent->right = y;
    } else {
      x->parent->left = y;
    }
    y->right = x;
    x->parent = y;
  }

  void insert_fixup(Node* z, RbOpStats& st) {
    while (z->parent->color == Color::red) {
      Node* gp = z->parent->parent;
      if (z->parent == gp->left) {
        Node* uncle = gp->right;
        if (uncle->color == Color::red) {
          z->parent->color = Color::black;
          uncle->color = Color::black;
          gp->color = Color::red;
          st.recolorings += 3;
          z = gp;
        } else {
          if (z == z->parent->right) {
            z = z->parent;
            rotate_left(z, st);
          }
          z->parent->color = Color::black;
          gp->color = Color::red;
          st.recolorings += 2;
          rotate_right(gp, st);
        }
      } else {
        Node* uncle = gp->left;
        if (uncle->color == Color::red) {
          z->parent->color = Color::black;
          uncle->color = Color::black;
          gp->color = Color::red;
          st.recolorings += 3;
          z = gp;
        } else {
          if (z == z->parent->left) {
            z = z->parent;
            rotate_right(z, st);
          }
          z->parent->color = Color::black;
          gp->color = Color::red;
          st.recolorings += 2;
          rotate_left(gp, st);
        }
      }
    }
    if (root_->color != Color::black) {
      root_->color = Color::black;
      ++st.recolorings;
    }
  }

  void transplant(Node* u, Node* v) {
    if (u->parent == &nil_) {
      root_ = v;
    } else if (u == u->parent->left) {
      u->parent->left = v;
    } else {
      u->parent->right = v;
    }
    v->parent = u->parent;
  }

  Node* minimum(Node* n, RbOpStats& st) {
    while (n->left != &nil_) {
      ++st.nodes_visited;
      n = n->left;
    }
    return n;
  }

  void erase_node(Node* z, RbOpStats& st) {
    Node* y = z;
    Color y_original = y->color;
    Node* x;
    if (z->left == &nil_) {
      x = z->right;
      transplant(z, z->right);
    } else if (z->right == &nil_) {
      x = z->left;
      transplant(z, z->left);
    } else {
      y = minimum(z->right, st);
      y_original = y->color;
      x = y->right;
      if (y->parent == z) {
        x->parent = y;  // x may be nil; CLRS relies on this
      } else {
        transplant(y, y->right);
        y->right = z->right;
        y->right->parent = y;
      }
      transplant(z, y);
      y->left = z->left;
      y->left->parent = y;
      y->color = z->color;
    }
    delete z;
    --size_;
    if (y_original == Color::black) erase_fixup(x, st);
    // Restore the sentinel (transplant may have set its parent).
    nil_.parent = &nil_;
    nil_.left = nil_.right = &nil_;
  }

  void erase_fixup(Node* x, RbOpStats& st) {
    while (x != root_ && x->color == Color::black) {
      ++st.nodes_visited;
      if (x == x->parent->left) {
        Node* w = x->parent->right;
        if (w->color == Color::red) {
          w->color = Color::black;
          x->parent->color = Color::red;
          st.recolorings += 2;
          rotate_left(x->parent, st);
          w = x->parent->right;
        }
        if (w->left->color == Color::black && w->right->color == Color::black) {
          w->color = Color::red;
          ++st.recolorings;
          x = x->parent;
        } else {
          if (w->right->color == Color::black) {
            w->left->color = Color::black;
            w->color = Color::red;
            st.recolorings += 2;
            rotate_right(w, st);
            w = x->parent->right;
          }
          w->color = x->parent->color;
          x->parent->color = Color::black;
          w->right->color = Color::black;
          st.recolorings += 3;
          rotate_left(x->parent, st);
          x = root_;
        }
      } else {
        Node* w = x->parent->left;
        if (w->color == Color::red) {
          w->color = Color::black;
          x->parent->color = Color::red;
          st.recolorings += 2;
          rotate_right(x->parent, st);
          w = x->parent->left;
        }
        if (w->right->color == Color::black && w->left->color == Color::black) {
          w->color = Color::red;
          ++st.recolorings;
          x = x->parent;
        } else {
          if (w->left->color == Color::black) {
            w->right->color = Color::black;
            w->color = Color::red;
            st.recolorings += 2;
            rotate_left(w, st);
            w = x->parent->left;
          }
          w->color = x->parent->color;
          x->parent->color = Color::black;
          w->left->color = Color::black;
          st.recolorings += 3;
          rotate_right(x->parent, st);
          x = root_;
        }
      }
    }
    if (x->color != Color::black) {
      x->color = Color::black;
      ++st.recolorings;
    }
  }

  void walk(Node* n, const std::function<void(const K&, const V&)>& fn) const {
    if (n == &nil_) return;
    walk(n->left, fn);
    fn(n->key, n->value);
    walk(n->right, fn);
  }

  void free_subtree(Node* n) {
    if (n == &nil_ || n == nullptr) return;
    free_subtree(n->left);
    free_subtree(n->right);
    delete n;
  }

  bool validate_rec(const Node* n, int blacks, int& expected, const K*& prev) const {
    if (n == &nil_) {
      if (expected < 0) expected = blacks;
      return blacks == expected;
    }
    if (n->color == Color::red &&
        (n->left->color == Color::red || n->right->color == Color::red)) {
      return false;
    }
    if (n->left != &nil_ && n->left->parent != n) return false;
    if (n->right != &nil_ && n->right->parent != n) return false;
    const int b = blacks + (n->color == Color::black ? 1 : 0);
    if (!validate_rec(n->left, b, expected, prev)) return false;
    if (prev != nullptr && !cmp_(*prev, n->key)) return false;
    prev = &n->key;
    return validate_rec(n->right, b, expected, prev);
  }

  // Sentinel nil node (CLRS-style); nil_.value is default-constructed and
  // never read.
  Node nil_{K{}, V{}, Color::black, nullptr, nullptr, nullptr};
  Node* root_;
  u64 size_{0};
  Cmp cmp_{};
};

}  // namespace xemem::palacios
