#include "mm/page_table.hpp"

namespace xemem::mm {

Result<void> PageTable::map(Vaddr va, Pfn pfn, PageFlags flags, WalkStats* stats) {
  if ((va.value() & kPageMask) != 0) return Errc::invalid_argument;
  WalkStats local;
  if (!root_) {
    root_ = std::make_unique<Node>();
    ++nodes_;
    ++local.tables_allocated;
  }
  Node* node = root_.get();
  for (int level = 4; level >= 2; --level) {
    const u32 idx = index_at(va, level);
    ++local.entries_visited;
    if (level == 2 && (node->pte[idx] & kPresent)) {
      // A 2 MiB mapping already covers this window.
      if (stats) *stats += local;
      return Errc::already_exists;
    }
    auto& child = node->children[idx];
    if (!child) {
      child = std::make_unique<Node>();
      ++node->used;
      ++nodes_;
      ++local.tables_allocated;
    }
    node = child.get();
  }
  const u32 idx = index_at(va, 1);
  ++local.entries_visited;
  if (node->pte[idx] & kPresent) {
    if (stats) *stats += local;
    return Errc::already_exists;
  }
  node->pte[idx] = encode(pfn, flags);
  ++node->used;
  ++mapped_;
  if (stats) *stats += local;
  return {};
}

Result<void> PageTable::map_large(Vaddr va, Pfn pfn, PageFlags flags,
                                  WalkStats* stats) {
  constexpr u64 kLargeBytes = kLargeSpan * kPageSize;
  if (va.value() % kLargeBytes != 0 || pfn.value() % kLargeSpan != 0) {
    return Errc::invalid_argument;
  }
  WalkStats local;
  if (!root_) {
    root_ = std::make_unique<Node>();
    ++nodes_;
    ++local.tables_allocated;
  }
  Node* node = root_.get();
  for (int level = 4; level >= 3; --level) {
    const u32 idx = index_at(va, level);
    ++local.entries_visited;
    auto& child = node->children[idx];
    if (!child) {
      child = std::make_unique<Node>();
      ++node->used;
      ++nodes_;
      ++local.tables_allocated;
    }
    node = child.get();
  }
  const u32 idx = index_at(va, 2);
  ++local.entries_visited;
  if ((node->pte[idx] & kPresent) || node->children[idx]) {
    // Already a large mapping, or 4 KiB mappings exist inside the window.
    if (stats) *stats += local;
    return Errc::already_exists;
  }
  node->pte[idx] = encode(pfn, flags) | kLargeBit;
  ++node->used;
  mapped_ += kLargeSpan;
  ++large_;
  if (stats) *stats += local;
  return {};
}

Result<void> PageTable::map_range(Vaddr va, const std::vector<Pfn>& pfns,
                                  PageFlags flags, WalkStats* stats) {
  for (u64 i = 0; i < pfns.size(); ++i) {
    auto r = map(va + i * kPageSize, pfns[i], flags, stats);
    if (!r.ok()) {
      // Roll back the partial mapping so failures leave no residue.
      for (u64 j = 0; j < i; ++j) {
        (void)unmap(va + j * kPageSize, stats);
      }
      return r;
    }
  }
  return {};
}

Result<void> PageTable::unmap(Vaddr va, WalkStats* stats) {
  if ((va.value() & kPageMask) != 0) return Errc::invalid_argument;
  WalkStats local;
  Node* path[4] = {nullptr, nullptr, nullptr, nullptr};  // path[l-1] = node at level l
  Node* node = root_.get();
  for (int level = 4; level >= 2 && node; --level) {
    path[level - 1] = node;
    const u32 idx = index_at(va, level);
    ++local.entries_visited;
    if (level == 2 && (node->pte[idx] & kPresent)) {
      if (stats) *stats += local;
      return Errc::invalid_argument;  // inside a large mapping: unmap_large
    }
    node = node->children[idx].get();
  }
  if (!node) {
    if (stats) *stats += local;
    return Errc::not_attached;
  }
  path[0] = node;
  const u32 l1 = index_at(va, 1);
  ++local.entries_visited;
  if (!(node->pte[l1] & kPresent)) {
    if (stats) *stats += local;
    return Errc::not_attached;
  }
  node->pte[l1] = 0;
  --node->used;
  --mapped_;

  // Reclaim empty paging structures bottom-up (root is kept).
  for (int level = 1; level <= 3; ++level) {
    Node* cur = path[level - 1];
    Node* parent = path[level];
    if (cur->used != 0 || parent == nullptr) break;
    const u32 idx = index_at(va, level + 1);
    parent->children[idx].reset();
    --parent->used;
    --nodes_;
    ++local.tables_freed;
  }
  if (stats) *stats += local;
  return {};
}

Result<void> PageTable::unmap_large(Vaddr va, WalkStats* stats) {
  constexpr u64 kLargeBytes = kLargeSpan * kPageSize;
  if (va.value() % kLargeBytes != 0) return Errc::invalid_argument;
  WalkStats local;
  Node* path[4] = {nullptr, nullptr, nullptr, nullptr};
  Node* node = root_.get();
  for (int level = 4; level >= 3 && node; --level) {
    path[level - 1] = node;
    ++local.entries_visited;
    node = node->children[index_at(va, level)].get();
  }
  if (!node) {
    if (stats) *stats += local;
    return Errc::not_attached;
  }
  path[1] = node;
  const u32 idx = index_at(va, 2);
  ++local.entries_visited;
  if (!(node->pte[idx] & kPresent) || !(node->pte[idx] & kLargeBit)) {
    if (stats) *stats += local;
    return Errc::not_attached;
  }
  node->pte[idx] = 0;
  --node->used;
  mapped_ -= kLargeSpan;
  --large_;

  for (int level = 2; level <= 3; ++level) {
    Node* cur = path[level - 1];
    Node* parent = path[level];
    if (cur->used != 0 || parent == nullptr) break;
    const u32 pidx = index_at(va, level + 1);
    parent->children[pidx].reset();
    --parent->used;
    --nodes_;
    ++local.tables_freed;
  }
  if (stats) *stats += local;
  return {};
}

Result<void> PageTable::unmap_range(Vaddr va, u64 count, WalkStats* stats) {
  // Honors mixed mappings: a 2 MiB-aligned position covered by a large
  // mapping releases the whole window in one step.
  u64 done = 0;
  while (done < count) {
    const Vaddr cur = va + done * kPageSize;
    auto view = lookup(cur, nullptr);
    if (view && view->large) {
      if (cur.value() % (kLargeSpan * kPageSize) != 0 || count - done < kLargeSpan) {
        return Errc::invalid_argument;  // partial large-page unmap
      }
      auto r = unmap_large(cur, stats);
      if (!r.ok()) return r;
      done += kLargeSpan;
      continue;
    }
    auto r = unmap(cur, stats);
    if (!r.ok()) return r;
    ++done;
  }
  return {};
}

std::optional<PteView> PageTable::lookup(Vaddr va, WalkStats* stats) const {
  WalkStats local;
  Node* node = root_.get();
  std::optional<PteView> out;
  for (int level = 4; level >= 2 && node; --level) {
    ++local.entries_visited;
    const u32 idx = index_at(va, level);
    if (level == 2 && (node->pte[idx] & kPresent)) {
      // Large mapping: resolve the queried 4 KiB page within it.
      PteView v = decode(node->pte[idx]);
      const u64 off = (va.value() >> kPageShift) & (kLargeSpan - 1);
      out = PteView{v.pfn + off, v.flags, true};
      if (stats) *stats += local;
      return out;
    }
    node = node->children[idx].get();
  }
  if (node) {
    ++local.entries_visited;
    const u64 pte = node->pte[index_at(va, 1)];
    if (pte & kPresent) out = decode(pte);
  }
  if (stats) *stats += local;
  return out;
}

Result<std::vector<Pfn>> PageTable::translate_range(Vaddr va, u64 count,
                                                    WalkStats* stats) const {
  if ((va.value() & kPageMask) != 0) return Errc::invalid_argument;
  std::vector<Pfn> out;
  out.reserve(count);
  u64 i = 0;
  while (i < count) {
    auto pte = lookup(va + i * kPageSize, stats);
    if (!pte) return Errc::invalid_argument;
    if (pte->large) {
      // One walk resolves the whole 2 MiB window: enumerate the covered
      // frames without re-walking per page (this is where large-page
      // exports collapse the PFN-list generation cost).
      const u64 off = ((va.value() >> kPageShift) + i) & (kLargeSpan - 1);
      const u64 run = std::min(count - i, kLargeSpan - off);
      for (u64 k = 0; k < run; ++k) out.push_back(pte->pfn + k);
      i += run;
    } else {
      out.push_back(pte->pfn);
      ++i;
    }
  }
  return out;
}

Result<void> PageTable::map_range_best(Vaddr va, const std::vector<Pfn>& pfns,
                                       PageFlags flags, WalkStats* stats) {
  u64 i = 0;
  while (i < pfns.size()) {
    const Vaddr cur = va + i * kPageSize;
    const bool aligned = cur.value() % (kLargeSpan * kPageSize) == 0 &&
                         pfns[i].value() % kLargeSpan == 0 &&
                         pfns.size() - i >= kLargeSpan;
    bool contiguous = aligned;
    if (aligned) {
      for (u64 k = 1; k < kLargeSpan && contiguous; ++k) {
        contiguous = pfns[i + k].value() == pfns[i].value() + k;
      }
    }
    Result<void> r =
        contiguous ? map_large(cur, pfns[i], flags, stats)
                   : map(cur, pfns[i], flags, stats);
    if (!r.ok()) {
      (void)unmap_range(va, i, stats);  // roll back what we installed
      return r;
    }
    i += contiguous ? kLargeSpan : 1;
  }
  return {};
}

}  // namespace xemem::mm
