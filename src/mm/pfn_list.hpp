// PFN lists: the payload of XEMEM attachment responses.
//
// When an enclave services a remote attachment it walks page tables and
// produces the list of physical frames backing the exported region (paper
// sections 4.2-4.3). The list is then shipped through a cross-enclave
// channel — its wire size determines the channel transfer cost — and the
// attaching enclave maps it page by page.
//
// Extent compression matters for the Palacios memory map: a contiguous
// Kitten export compresses to a single extent (one red-black-tree entry),
// while a scattered Linux export stays one entry per page, which is
// exactly the overhead the paper quantifies in section 5.4.
#pragma once

#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "hw/phys_mem.hpp"

namespace xemem::mm {

/// A flat page-frame list with helpers for wire-size accounting and
/// extent compression.
struct PfnList {
  /// Bytes one extent occupies on a channel: 8 B start frame + 4 B run
  /// length (run lengths never exceed an enclave's frame count, which fits
  /// 32 bits for any machine this simulates).
  static constexpr u64 kExtentWireBytes = 12;

  std::vector<Pfn> pfns;

  u64 page_count() const { return pfns.size(); }
  u64 byte_span() const { return pfns.size() * kPageSize; }

  /// Bytes this list occupies on a channel (8 bytes per entry, matching
  /// the u64 frame numbers the real implementation ships).
  u64 wire_bytes() const { return pfns.size() * sizeof(u64); }

  /// Number of maximal contiguous runs, without materializing them.
  u64 extent_count() const {
    u64 n = 0;
    for (size_t i = 0; i < pfns.size(); ++i) {
      if (i == 0 || pfns[i - 1].value() + 1 != pfns[i].value()) ++n;
    }
    return n;
  }

  /// Bytes the extent encoding of this list would occupy on a channel.
  /// Counts runs in place so benches can report both encodings without
  /// materializing the list twice.
  u64 extent_wire_bytes() const { return extent_count() * kExtentWireBytes; }

  /// Collapse runs of consecutive frames into extents.
  std::vector<hw::FrameExtent> extents() const {
    std::vector<hw::FrameExtent> out;
    out.reserve(extent_count());
    for (Pfn p : pfns) {
      if (!out.empty() && out.back().start.value() + out.back().count == p.value()) {
        ++out.back().count;
      } else {
        out.push_back(hw::FrameExtent{p, 1});
      }
    }
    return out;
  }

  /// Copy of pages [first, first + count) of this list (attachment reuse
  /// maps sub-windows of an already-fetched frame list).
  PfnList slice(u64 first, u64 count) const {
    XEMEM_ASSERT(first + count <= pfns.size());
    PfnList l;
    l.pfns.assign(pfns.begin() + static_cast<long>(first),
                  pfns.begin() + static_cast<long>(first + count));
    return l;
  }

  /// Expand extents back to a flat list (inverse of extents()).
  static PfnList from_extents(const std::vector<hw::FrameExtent>& exts) {
    PfnList l;
    u64 total = 0;
    for (const auto& e : exts) total += e.count;
    l.pfns.reserve(total);
    for (auto e : exts) {
      for (u64 i = 0; i < e.count; ++i) l.pfns.push_back(e.start + i);
    }
    return l;
  }
};

}  // namespace xemem::mm
