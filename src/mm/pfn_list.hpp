// PFN lists: the payload of XEMEM attachment responses.
//
// When an enclave services a remote attachment it walks page tables and
// produces the list of physical frames backing the exported region (paper
// sections 4.2-4.3). The list is then shipped through a cross-enclave
// channel — its wire size determines the channel transfer cost — and the
// attaching enclave maps it page by page.
//
// Extent compression matters for the Palacios memory map: a contiguous
// Kitten export compresses to a single extent (one red-black-tree entry),
// while a scattered Linux export stays one entry per page, which is
// exactly the overhead the paper quantifies in section 5.4.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "hw/phys_mem.hpp"

namespace xemem::mm {

/// A flat page-frame list with helpers for wire-size accounting and
/// extent compression.
struct PfnList {
  std::vector<Pfn> pfns;

  u64 page_count() const { return pfns.size(); }
  u64 byte_span() const { return pfns.size() * kPageSize; }

  /// Bytes this list occupies on a channel (8 bytes per entry, matching
  /// the u64 frame numbers the real implementation ships).
  u64 wire_bytes() const { return pfns.size() * sizeof(u64); }

  /// Collapse runs of consecutive frames into extents.
  std::vector<hw::FrameExtent> extents() const {
    std::vector<hw::FrameExtent> out;
    for (Pfn p : pfns) {
      if (!out.empty() && out.back().start.value() + out.back().count == p.value()) {
        ++out.back().count;
      } else {
        out.push_back(hw::FrameExtent{p, 1});
      }
    }
    return out;
  }

  /// Expand extents back to a flat list (inverse of extents()).
  static PfnList from_extents(const std::vector<hw::FrameExtent>& exts) {
    PfnList l;
    for (auto e : exts) {
      for (u64 i = 0; i < e.count; ++i) l.pfns.push_back(e.start + i);
    }
    return l;
  }
};

}  // namespace xemem::mm
