// x86-64-style 4-level page tables.
//
// Every enclave OS personality manages process address spaces through this
// structure. It is a real radix tree — map/unmap/walk genuinely traverse
// and mutate 512-ary levels — because two XEMEM code paths depend on its
// mechanics (paper section 4.3):
//
//  * PFN-list generation: when an enclave receives a remote attachment
//    request for a segid it owns, it walks the owning process's page
//    tables to produce the list of physical frames backing the region.
//  * Attachment mapping: the attaching enclave installs the received PFN
//    list into the attaching process's page tables using its local OS's
//    mapping routines.
//
// Walk statistics (entries visited, tables allocated/freed) are reported to
// the caller so OS personalities can charge simulated time proportional to
// the structural work actually performed.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace xemem::mm {

/// PTE permission/attribute flags (subset of x86-64).
enum class PageFlags : u64 {
  none = 0,
  writable = 1ull << 1,
  user = 1ull << 2,
};

constexpr PageFlags operator|(PageFlags a, PageFlags b) {
  return static_cast<PageFlags>(static_cast<u64>(a) | static_cast<u64>(b));
}
constexpr bool has_flag(PageFlags set, PageFlags f) {
  return (static_cast<u64>(set) & static_cast<u64>(f)) != 0;
}

/// Decoded view of one present PTE. For a 2 MiB large mapping resolved at
/// a 4 KiB granularity, `pfn` is the frame of the *queried page* (base
/// frame + offset within the large page) and `large` is set.
struct PteView {
  Pfn pfn;
  PageFlags flags;
  bool large{false};
};

/// Counters describing the structural work of one operation; used by the
/// OS personalities to charge simulated time.
struct WalkStats {
  u64 entries_visited{0};   ///< directory + leaf slots touched
  u64 tables_allocated{0};  ///< new paging structures created
  u64 tables_freed{0};      ///< paging structures reclaimed by unmap

  WalkStats& operator+=(const WalkStats& o) {
    entries_visited += o.entries_visited;
    tables_allocated += o.tables_allocated;
    tables_freed += o.tables_freed;
    return *this;
  }
};

class PageTable {
 public:
  PageTable() = default;
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  /// Number of 4 KiB pages covered by one large (2 MiB) mapping.
  static constexpr u64 kLargeSpan = 512;

  /// Install a mapping va -> pfn. Fails with already_exists if va is mapped.
  Result<void> map(Vaddr va, Pfn pfn, PageFlags flags, WalkStats* stats = nullptr);

  /// Install a 2 MiB large-page mapping at level 2. @p va must be 2 MiB
  /// aligned and @p pfn 512-frame aligned; the whole 2 MiB window must be
  /// unmapped. One entry covers 512 base pages — the walk/map cost drops
  /// accordingly (see bench/ablation_large_pages).
  Result<void> map_large(Vaddr va, Pfn pfn, PageFlags flags,
                         WalkStats* stats = nullptr);

  /// Remove a large mapping installed by map_large.
  Result<void> unmap_large(Vaddr va, WalkStats* stats = nullptr);

  /// Map @p count consecutive pages starting at @p va to the given frames.
  Result<void> map_range(Vaddr va, const std::vector<Pfn>& pfns, PageFlags flags,
                         WalkStats* stats = nullptr);

  /// Like map_range, but uses 2 MiB large mappings wherever the VA and a
  /// 512-frame run of the PFN list are suitably aligned and contiguous,
  /// falling back to 4 KiB pages elsewhere.
  Result<void> map_range_best(Vaddr va, const std::vector<Pfn>& pfns,
                              PageFlags flags, WalkStats* stats = nullptr);

  /// Remove the mapping at @p va, reclaiming empty paging structures.
  Result<void> unmap(Vaddr va, WalkStats* stats = nullptr);

  /// Unmap @p count consecutive pages starting at @p va.
  Result<void> unmap_range(Vaddr va, u64 count, WalkStats* stats = nullptr);

  /// Walk the tree for @p va; nullopt if not present.
  std::optional<PteView> lookup(Vaddr va, WalkStats* stats = nullptr) const;

  /// Generate the PFN list for pages [va, va + count*4K) — the core of
  /// XEMEM's attachment servicing. Every page must be present.
  Result<std::vector<Pfn>> translate_range(Vaddr va, u64 count,
                                           WalkStats* stats = nullptr) const;

  /// Number of present 4 KiB-equivalent mappings (a large mapping counts
  /// as kLargeSpan).
  u64 mapped_pages() const { return mapped_; }
  /// Number of live 2 MiB mappings.
  u64 large_mappings() const { return large_; }
  /// Number of live paging-structure nodes (leak diagnostics).
  u64 table_nodes() const { return nodes_; }

 private:
  // One paging-structure page. Levels 4..2 use children; level 1 uses pte.
  // (Separate leaf/dir types would save memory; a single node type keeps
  // the walk logic uniform and the simulator's footprint is modest.)
  struct Node {
    std::array<std::unique_ptr<Node>, 512> children{};
    std::array<u64, 512> pte{};
    u16 used{0};  // occupied slots at this node
  };

  static constexpr u64 kPresent = 1ull << 0;
  static constexpr u64 kLargeBit = 1ull << 7;  // x86 PS bit position
  static constexpr u64 kPfnShift = 12;

  static u32 index_at(Vaddr va, int level) {
    // level 4 -> bits 39..47, level 1 -> bits 12..20.
    return static_cast<u32>((va.value() >> (kPageShift + 9 * (level - 1))) & 0x1ff);
  }

  static u64 encode(Pfn pfn, PageFlags flags) {
    return kPresent | (static_cast<u64>(flags) & 0x6) | (pfn.value() << kPfnShift);
  }
  static PteView decode(u64 pte) {
    return PteView{Pfn{pte >> kPfnShift},
                   static_cast<PageFlags>(pte & 0x6)};
  }

  std::unique_ptr<Node> root_;
  u64 mapped_{0};
  u64 nodes_{0};
  u64 large_{0};
};

}  // namespace xemem::mm
