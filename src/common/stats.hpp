// Streaming and exact statistics used by the benchmark harnesses, plus the
// bounded accounting map the kernel uses for per-key bookkeeping that must
// not grow with workload size.
#pragma once

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace xemem {

/// Bounded per-key accounting: an unordered_map with FIFO eviction once it
/// holds more than `cap` keys. The kernel uses it for per-segment capability
/// accounting (and revocation tombstones) where the key space is unbounded
/// over a long run but only recent keys matter — memory stays O(cap)
/// regardless of how many segments ever existed. Eviction drops whole
/// entries; `evictions()` exposes how much history was shed so tests can
/// assert the bound actually engaged.
template <typename K, typename V, typename Hash = std::hash<K>>
class BoundedAccountingMap {
 public:
  explicit BoundedAccountingMap(u64 cap = 1024) : cap_(cap < 1 ? 1 : cap) {}

  void set_cap(u64 cap) {
    cap_ = cap < 1 ? 1 : cap;
    shrink();
  }
  u64 cap() const { return cap_; }

  /// Value for @p k, inserting (and possibly evicting the oldest key) if
  /// absent. Reference stays valid until the next touch()/erase().
  V& touch(const K& k) {
    auto it = map_.find(k);
    if (it != map_.end()) return it->second;
    fifo_.push_back(k);
    map_[k];
    shrink();
    // cap_ >= 1 and the new key sits at the fifo back, so shrink() cannot
    // have evicted it — unless an older duplicate fifo entry for the same
    // key (erase + re-touch) was popped as victim. Reinsert in that case.
    return map_[k];
  }

  const V* find(const K& k) const {
    auto it = map_.find(k);
    return it == map_.end() ? nullptr : &it->second;
  }
  V* find(const K& k) {
    auto it = map_.find(k);
    return it == map_.end() ? nullptr : &it->second;
  }

  bool contains(const K& k) const { return map_.count(k) != 0; }

  void erase(const K& k) { map_.erase(k); }  // fifo entry lazily skipped

  u64 size() const { return map_.size(); }
  u64 evictions() const { return evictions_; }
  void clear() {
    map_.clear();
    fifo_.clear();
  }

  auto begin() const { return map_.begin(); }
  auto end() const { return map_.end(); }

 private:
  void shrink() {
    while (map_.size() > cap_ && !fifo_.empty()) {
      const K victim = fifo_.front();
      fifo_.pop_front();
      if (map_.erase(victim) != 0) ++evictions_;
    }
    // Drop stale fifo heads left by erase() so the queue cannot outgrow
    // the map by more than the erased keys.
    while (fifo_.size() > 2 * cap_ + 2) {
      const K head = fifo_.front();
      fifo_.pop_front();
      if (map_.count(head) != 0) fifo_.push_back(head);
    }
  }

  u64 cap_;
  u64 evictions_{0};
  std::unordered_map<K, V, Hash> map_;
  std::deque<K> fifo_;
};

/// Welford streaming mean/variance — O(1) memory, numerically stable.
/// Used where the harness only needs mean ± stddev (e.g. the error bars in
/// the paper's Figures 8 and 9).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  u64 count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  u64 n_{0};
  double mean_{0};
  double m2_{0};
  double min_{0};
  double max_{0};
};

/// Exact sample collector with percentiles — used by the noise-profile
/// harness (Figure 7) where the distribution's tail is the whole point.
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  void reserve(size_t n) { xs_.reserve(n); }
  size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  const std::vector<double>& values() const { return xs_; }

  double mean() const {
    double s = 0;
    for (double x : xs_) s += x;
    return xs_.empty() ? 0.0 : s / static_cast<double>(xs_.size());
  }

  /// Percentile by linear interpolation on the sorted sample, q in [0, 100].
  double percentile(double q) {
    XEMEM_ASSERT(!xs_.empty());
    sort();
    const double rank = q / 100.0 * static_cast<double>(xs_.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, xs_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs_[lo] + frac * (xs_[hi] - xs_[lo]);
  }

  double min() {
    XEMEM_ASSERT(!xs_.empty());
    sort();
    return xs_.front();
  }
  double max() {
    XEMEM_ASSERT(!xs_.empty());
    sort();
    return xs_.back();
  }

 private:
  void sort() {
    if (!sorted_) {
      std::sort(xs_.begin(), xs_.end());
      sorted_ = true;
    }
  }
  std::vector<double> xs_;
  bool sorted_{true};
};

/// Sustained-rate accumulator for the ablation harnesses: counts events
/// over an explicitly marked simulated-time window (the simulator clock is
/// u64 nanoseconds), so throughput rows report ops/sec of the measured
/// phase rather than of the whole run including setup.
class Throughput {
 public:
  void begin(u64 now_ns) { t0_ = now_ns; }
  void end(u64 now_ns) { t1_ = now_ns; }
  void add(u64 events = 1) { n_ += events; }

  u64 events() const { return n_; }
  double seconds() const {
    return t1_ > t0_ ? static_cast<double>(t1_ - t0_) / 1e9 : 0.0;
  }
  double per_sec() const {
    const double s = seconds();
    return s > 0.0 ? static_cast<double>(n_) / s : 0.0;
  }

 private:
  u64 t0_{0};
  u64 t1_{0};
  u64 n_{0};
};

/// Fixed-bucket histogram over a log scale; prints ASCII sparklines in the
/// Figure-7 harness.
class LogHistogram {
 public:
  /// Buckets are decades/sub-decades over [lo, hi); values are clamped.
  LogHistogram(double lo, double hi, int buckets_per_decade = 4)
      : lo_(lo), hi_(hi), bpd_(buckets_per_decade) {
    XEMEM_ASSERT(lo > 0 && hi > lo);
    const double decades = std::log10(hi / lo);
    counts_.assign(static_cast<size_t>(std::ceil(decades * bpd_)) + 1, 0);
  }

  void add(double x) {
    x = std::clamp(x, lo_, hi_);
    auto idx = static_cast<size_t>(std::log10(x / lo_) * bpd_);
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
  }

  size_t buckets() const { return counts_.size(); }
  u64 count_at(size_t i) const { return counts_[i]; }
  /// Lower edge of bucket @p i.
  double edge(size_t i) const {
    return lo_ * std::pow(10.0, static_cast<double>(i) / bpd_);
  }

 private:
  double lo_, hi_;
  int bpd_;
  std::vector<u64> counts_;
};

/// Counters of the cross-enclave I/O cache (src/iocache/). Kept here so
/// the attribution rules stay next to the kernel's own Stats conventions:
/// a cache hit is an access served from a resident block (the attach it
/// triggers — if any — is counted by the kernel as exactly one of
/// local_attaches, attaches_issued, or reuse_hits, never two); a miss is
/// an access that had to fetch from the backing store.
struct IoCacheStats {
  u64 hits{0};        ///< accesses served from a resident block
  u64 misses{0};      ///< accesses that triggered a backing-store fetch
  u64 evictions{0};   ///< blocks reclaimed to make room
  u64 writebacks{0};  ///< dirty blocks flushed to the backing store
  u64 revoked_evictions{0};  ///< evictions that live-unmapped attachers
  u64 dirty_marks{0};        ///< write-back intents received from clients
  u64 lease_wait_ns{0};      ///< simulated time evictions spent waiting
                             ///  out unexpired attacher leases
};

}  // namespace xemem
