// Calibrated cost model for the XEMEM simulation.
//
// Every XEMEM/OS/VMM operation in this repository executes for real on
// real data structures (page tables, red-black trees, channels) and then
// charges simulated time from the constants below. The constants are
// calibrated so the *magnitudes* land near the paper's reported numbers on
// its 2.1 GHz Xeon platform; the *shapes* (who wins, crossovers, scaling)
// then emerge from the mechanisms rather than from curve fitting.
//
// Key calibration anchors (derivations inline below):
//  * Figure 5:  native cross-enclave attach ~13 GB/s, attach+read ~12 GB/s,
//               RDMA/QDR-IB ~3.4 GB/s.
//  * Figure 7:  1 GiB attachment service detour 23-24 ms on Kitten,
//               2 MiB ~45 us, 4 KiB below the 12 us noise floor.
//  * Table 2:   Kitten->Linux 12.8 GB/s; Kitten->Linux-VM 3.99 GB/s with
//               rb-tree inserts, 8.79 GB/s without; Linux-VM->Kitten
//               12.6 GB/s.
#pragma once

#include "common/types.hpp"
#include "common/units.hpp"

namespace xemem::costs {

// ---------------------------------------------------------------------------
// Page-table mechanics (native kernel on a ~2 GHz Xeon).
//
// A 4 KiB page walk visits 4 paging-structure entries. With 22 ns per
// entry a 1 GiB walk costs 262144 x 4 x 22 ns = 23.1 ms — which is both
// the Figure 7 detour band for 1 GiB attachments (23,000-24,000 us) and
// the exporter-side share of the Figure 5 attach path.
inline constexpr u64 kPtEntryVisit = 22_ns;

// Kitten's address-space bookkeeping per mapped page beyond the raw entry
// writes (the LWK keeps region lists, no VMA machinery): small.
inline constexpr u64 kKittenMapPerPage = 25_ns;

// Linux vm_mmap + remap_pfn_range bookkeeping per page (VMA maintenance,
// accounting, TLB shoot-down amortization). Calibration: the Figure 5
// attach path is  walk(23.1 ms) + channel(0.65 ms) + linux map
// (262144 x (4 x 22 + 120) ns = 54.5 ms)  ~= 78.3 ms per 1 GiB
// => 13.1 GB/s, matching the reported ~13 GB/s plateau.
inline constexpr u64 kLinuxMapPerPage = 120_ns;

// get_user_pages pinning per page on the Linux export path.
inline constexpr u64 kLinuxPinPerPage = 60_ns;

// Demand-fault cost per page (trap, VMA lookup under mmap_sem, PTE
// install, return — ~1.5 us under concurrent mm activity on the paper's
// hardware generation). Single-OS Linux XEMEM attachments install
// mappings lazily with page-fault semantics (paper section 6.4 blames this
// for the Linux-only recurring-attachment overhead); first touch of each
// attached page pays this.
inline constexpr u64 kLinuxFaultPerPage = 1500_ns;

// ---------------------------------------------------------------------------
// Cross-enclave channels.

// Pisces IPI channel (paper section 4.5): vector latency until the handler
// starts, the handler's own execution (stolen from the destination core —
// always core 0 of the Linux management enclave in the stock co-kernel
// design, the source of the Figure 6 contention dip), and the shared-
// memory window through which messages are copied in 64 KiB chunks.
inline constexpr u64 kIpiLatency = 1200_ns;
inline constexpr u64 kIpiHandlerCost = 2_us;
inline constexpr u64 kChannelChunk = 64 * 1024;
inline constexpr double kChannelCopyBytesPerNs = 8.0;  // kernel memcpy

// Interference factor applied to Linux per-page map work while more than
// one XEMEM attachment is in flight inside one Linux enclave: shared mm
// structures (mmap_sem, page-table pages) bounce between cores. This is a
// presence effect, not a proportional one — the paper observes a dip from
// 1 to 2 enclaves and flat scaling beyond (section 5.3).
inline constexpr double kLinuxSmpInterference = 0.08;

// ---------------------------------------------------------------------------
// Palacios VMM (paper sections 4.4, 5.4).

// World switch: interrupt injection into the guest or hypercall exit.
inline constexpr u64 kVmEntryExit = 1600_ns;

// Virtual PCI device window copy bandwidth (PFN lists staged through it).
inline constexpr double kPciWindowBytesPerNs = 8.0;

// Red-black tree memory-map charges, per structural step counted by the
// real tree. Calibration: Table 2 attributes 250.6 - 113.8 = 136.8 ms of
// a 1 GiB guest attachment to rb-tree inserts, i.e. ~522 ns per insert.
// The instrumented tree reports ~65 steps per insert at 262144 entries
// (overlap-check descent + insert descent + recolorings), so ~8 ns per
// step — a cache-resident pointer chase — hits the target:
//   65 x 8 + 0.6 x 25 ~= 535 ns.
inline constexpr u64 kRbStepCost = 8_ns;
inline constexpr u64 kRbRotationCost = 25_ns;

// Radix-map step (the paper's proposed future-work structure): a fixed
// 4-level descent with no re-balancing, cheaper per step (no comparisons).
inline constexpr u64 kRadixStepCost = 6_ns;

// Extra per-page cost of installing guest mappings from inside a VM
// (nested-paging maintenance on every guest PTE update). Calibration:
// without rb-tree inserts, Table 2 reports 8.79 GB/s for a 1 GiB guest
// attachment => ~113.8 ms total; the native-path components sum to
// ~78.5 ms, leaving ~35 ms / 262144 pages = ~135 ns per page.
inline constexpr u64 kVmGuestMapExtraPerPage = 135_ns;

// ---------------------------------------------------------------------------
// XEMEM control plane.

// Name-server segid allocation / lookup processing.
inline constexpr u64 kNameServerOp = 3_us;
// Per-hop command routing cost (map lookup + forward).
inline constexpr u64 kRouteHop = 1500_ns;

// ---------------------------------------------------------------------------
// Attach+read modeling (Figure 5 "XEMEM Attach + Read").
//
// The measured gap between attach (13 GB/s) and attach+read (12 GB/s) on a
// 1 GiB region implies the read pass adds only ~6.4 ms — far less than
// streaming 1 GiB through DRAM — so the benchmark's "read out the memory
// contents" is modeled as a per-page verification touch (one cache line
// per page) rather than a full stream: 64 B at socket bandwidth plus loop
// overhead per page.
inline constexpr u64 kReadTouchBytesPerPage = 64;
inline constexpr u64 kReadLoopPerPage = 15_ns;

// ---------------------------------------------------------------------------
// RDMA / Infiniband (Figure 5 comparison).
//
// QDR 4x Infiniband: 32 Gbit/s signalling, 8b/10b encoding => 3.2 GB/s
// payload ceiling; the paper measures "slightly less than 3.5 GB/s" with
// large MTU writes, so the model uses a 3.4 B/ns effective link rate with
// a small per-operation initiation cost.
inline constexpr double kIbLinkBytesPerNs = 3.4;
inline constexpr u64 kIbPostOverhead = 1500_ns;
inline constexpr u64 kIbMtu = 4096;
inline constexpr u64 kIbPerMtuOverhead = 60_ns;  // headers/credits per MTU

// Cluster interconnect latency for multi-node collectives (section 7).
inline constexpr u64 kIbEndToEndLatency = 1800_ns;

// ---------------------------------------------------------------------------
// Parallel-filesystem backing store (src/iocache/).
//
// The burst-buffer cache "fetches" missed blocks from a modeled PFS.
// Calibrated to a Lustre-class filesystem of the paper's era as seen from
// one compute node: ~100 us RPC round-trip to an OSS for a read, a bit
// more for a write (commit), and a few GB/s of per-client streaming
// bandwidth shared by all concurrent transfers (one SharedBandwidth
// instance models the node's external I/O path).
inline constexpr u64 kPfsReadLatency = 100_us;
inline constexpr u64 kPfsWriteLatency = 150_us;
inline constexpr double kPfsBytesPerNs = 2.0;  // ~2 GB/s external I/O path

// ---------------------------------------------------------------------------
// Shared-memory collectives (src/collectives/).
//
// The collective engine moves payloads through XEMEM attachments in
// chunks so reduction arithmetic overlaps copy cost. The copy side rides
// the socket's SharedBandwidth; the constants below charge the compute
// side.

// One poll of a remote control word: an uncached load across the
// attachment plus the spin-loop body.
inline constexpr u64 kCollPollCost = 80_ns;

// Reduction arithmetic throughput (combine two streams, write one):
// deliberately below socket copy bandwidth so the reduce stage — not the
// copy — dominates large payloads, which is what makes parallelizing the
// reduction across per-enclave leaders pay off.
inline constexpr double kCollReduceBytesPerNs = 1.6;

// Fixed cost per published chunk (flag update, bookkeeping, fence).
inline constexpr u64 kCollChunkOverhead = 150_ns;

}  // namespace xemem::costs
