// Byte-size and time-unit helpers used throughout the simulator.
#pragma once

#include "common/types.hpp"

namespace xemem {

inline constexpr u64 operator""_KiB(unsigned long long v) { return v * 1024ull; }
inline constexpr u64 operator""_MiB(unsigned long long v) { return v * 1024ull * 1024; }
inline constexpr u64 operator""_GiB(unsigned long long v) {
  return v * 1024ull * 1024 * 1024;
}

/// Simulated durations are plain nanosecond counts; these literals keep the
/// cost model readable (e.g. `2_us` instead of `2000`).
inline constexpr u64 operator""_ns(unsigned long long v) { return v; }
inline constexpr u64 operator""_us(unsigned long long v) { return v * 1000ull; }
inline constexpr u64 operator""_ms(unsigned long long v) { return v * 1000000ull; }
inline constexpr u64 operator""_s(unsigned long long v) { return v * 1000000000ull; }

/// Convert nanoseconds to floating-point seconds (for reporting).
inline constexpr double ns_to_s(u64 ns) { return static_cast<double>(ns) * 1e-9; }
/// Throughput in GB/s (decimal GB, as the paper reports) for @p bytes moved
/// in @p ns simulated nanoseconds.
inline constexpr double gb_per_s(u64 bytes, u64 ns) {
  return ns == 0 ? 0.0 : static_cast<double>(bytes) / static_cast<double>(ns);
}

}  // namespace xemem
