// Core integer and address types shared by every module.
//
// The simulated machine uses x86-64-style addressing: 4 KiB base pages,
// 64-bit virtual and physical addresses. Physical frame numbers (PFNs)
// index frames of the simulated physical memory arena (see hw/phys_mem.hpp).
// Strong typedefs keep guest-physical, host-physical, and virtual addresses
// from being mixed up across the VMM translation layers.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace xemem {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Base page size of the simulated machine (x86-64 4 KiB pages).
inline constexpr u64 kPageSize = 4096;
inline constexpr u64 kPageShift = 12;
inline constexpr u64 kPageMask = kPageSize - 1;

/// Round @p x down / up to a page boundary.
constexpr u64 page_align_down(u64 x) { return x & ~kPageMask; }
constexpr u64 page_align_up(u64 x) { return (x + kPageMask) & ~kPageMask; }
/// Number of pages needed to cover @p bytes.
constexpr u64 pages_for(u64 bytes) { return page_align_up(bytes) >> kPageShift; }

namespace detail {

/// CRTP strong integer wrapper: comparable, hashable, explicit-constructed.
/// Arithmetic is deliberately restricted to offsetting so that, e.g., two
/// addresses cannot be multiplied by accident. Offset operators return the
/// derived type so `pfn + 1` is still a Pfn.
template <typename Derived>
struct StrongU64 {
  u64 v{0};

  constexpr StrongU64() = default;
  constexpr explicit StrongU64(u64 value) : v(value) {}

  constexpr u64 value() const { return v; }
  constexpr auto operator<=>(const StrongU64&) const = default;

  constexpr Derived operator+(u64 off) const { return Derived{v + off}; }
  constexpr Derived operator-(u64 off) const { return Derived{v - off}; }
  constexpr u64 operator-(StrongU64 other) const { return v - other.v; }
  constexpr Derived& operator+=(u64 off) {
    v += off;
    return static_cast<Derived&>(*this);
  }
};

}  // namespace detail

/// Host-physical address within the simulated machine's memory arena.
struct HostPaddr : detail::StrongU64<HostPaddr> {
  using StrongU64::StrongU64;
};

/// Guest-physical address within a Palacios VM.
struct GuestPaddr : detail::StrongU64<GuestPaddr> {
  using StrongU64::StrongU64;
};

/// Virtual address within some process address space (host or guest).
struct Vaddr : detail::StrongU64<Vaddr> {
  using StrongU64::StrongU64;
};

/// Host-physical frame number: HostPaddr >> kPageShift.
struct Pfn : detail::StrongU64<Pfn> {
  using StrongU64::StrongU64;
  constexpr HostPaddr paddr() const { return HostPaddr{v << kPageShift}; }
  static constexpr Pfn of(HostPaddr pa) { return Pfn{pa.value() >> kPageShift}; }
};

/// Guest-physical frame number: GuestPaddr >> kPageShift.
struct Gfn : detail::StrongU64<Gfn> {
  using StrongU64::StrongU64;
  constexpr GuestPaddr paddr() const { return GuestPaddr{v << kPageShift}; }
  static constexpr Gfn of(GuestPaddr pa) { return Gfn{pa.value() >> kPageShift}; }
};

/// Globally unique shared-memory segment identifier, allocated by the
/// XEMEM name server (paper section 3.1). Value 0 is reserved as invalid.
struct Segid : detail::StrongU64<Segid> {
  using StrongU64::StrongU64;
  constexpr bool valid() const { return v != 0; }
};

/// Globally unique enclave identifier, allocated by the name server via
/// the hierarchical routing protocol (paper section 3.2).
/// Value 0 is the name-server enclave itself; ~0 is invalid/unassigned.
struct EnclaveId : detail::StrongU64<EnclaveId> {
  using StrongU64::StrongU64;
  static constexpr EnclaveId invalid() { return EnclaveId{~u64{0}}; }
  constexpr bool valid() const { return v != ~u64{0}; }
};

}  // namespace xemem

template <>
struct std::hash<xemem::HostPaddr> {
  size_t operator()(xemem::HostPaddr a) const { return std::hash<xemem::u64>{}(a.v); }
};
template <>
struct std::hash<xemem::Vaddr> {
  size_t operator()(xemem::Vaddr a) const { return std::hash<xemem::u64>{}(a.v); }
};
template <>
struct std::hash<xemem::Pfn> {
  size_t operator()(xemem::Pfn a) const { return std::hash<xemem::u64>{}(a.v); }
};
template <>
struct std::hash<xemem::Segid> {
  size_t operator()(xemem::Segid a) const { return std::hash<xemem::u64>{}(a.v); }
};
template <>
struct std::hash<xemem::EnclaveId> {
  size_t operator()(xemem::EnclaveId a) const { return std::hash<xemem::u64>{}(a.v); }
};
