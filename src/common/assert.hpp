// Always-on assertion macros.
//
// Simulation correctness bugs (double-freed frames, page-table corruption,
// routing loops) must fail loudly in every build type, so these do not
// compile out under NDEBUG the way <cassert> does.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace xemem::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "XEMEM_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace xemem::detail

/// Abort with a diagnostic if @p expr is false. Never compiled out.
#define XEMEM_ASSERT(expr)                                                   \
  do {                                                                       \
    if (!(expr)) ::xemem::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Like XEMEM_ASSERT but with an explanatory message.
#define XEMEM_ASSERT_MSG(expr, msg)                                            \
  do {                                                                         \
    if (!(expr)) ::xemem::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

/// Unconditional failure for unreachable code paths.
#define XEMEM_PANIC(msg) ::xemem::detail::assert_fail("panic", __FILE__, __LINE__, msg)
