// Deterministic random number generation for the simulator.
//
// Every stochastic model (OS noise arrival times, daemon burst lengths,
// SMI jitter) draws from an Rng seeded from the experiment configuration,
// so simulation runs are exactly reproducible. xoshiro256** is used for
// speed and quality; distributions are implemented directly so results
// do not depend on the standard library's unspecified algorithms.
#pragma once

#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace xemem {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialize the state from @p seed via splitmix64 so that nearby
  /// seeds produce uncorrelated streams.
  void reseed(u64 seed) {
    u64 x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  /// Derive an independent child stream (used to give each enclave/core its
  /// own noise stream while keeping the whole experiment one-seed
  /// reproducible).
  Rng fork() { return Rng(next()); }

  u64 next() {
    auto rotl = [](u64 x, int k) { return (x << k) | (x >> (64 - k)); };
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Rejection-free modulo bias is negligible for
  /// the small ranges used here, but we use Lemire's method anyway.
  u64 uniform_u64(u64 n) {
    XEMEM_ASSERT(n > 0);
    // Lemire's nearly-divisionless bounded generation.
    unsigned __int128 m = static_cast<unsigned __int128>(next()) * n;
    return static_cast<u64>(m >> 64);
  }

  /// Exponential with mean @p mean (inter-arrival times of noise events).
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (no cached second value; simplicity over
  /// speed — noise draws are rare relative to simulation events).
  double normal(double mu = 0.0, double sigma = 1.0) {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    double u2 = uniform();
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * std::numbers::pi * u2);
    return mu + sigma * z;
  }

  /// Log-normal: heavy-ish right tail used for Linux daemon burst durations;
  /// parameterized by the mean/sigma of the underlying normal.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

 private:
  u64 state_[4]{};
};

}  // namespace xemem
