// Lightweight Result<T> error handling.
//
// The XEMEM control plane (name server, routing, attach protocol) reports
// recoverable failures — unknown segid, permission size mismatch, enclave
// unreachable — through Result rather than exceptions, mirroring the
// errno-style returns of the real XPMEM kernel interface while staying
// type-safe. (std::expected is C++23; this is the minimal subset we need.)
#pragma once

#include <utility>
#include <variant>

#include "common/assert.hpp"

namespace xemem {

/// Error codes for XEMEM control-plane operations. Values intentionally
/// mirror the classes of failure the XPMEM ioctl interface can report.
enum class Errc {
  ok = 0,
  no_such_segid,      ///< segid not registered with the name server
  no_such_enclave,    ///< enclave id unknown / unreachable
  permission_denied,  ///< xpmem_get permission check failed
  invalid_argument,   ///< bad offset/size/alignment
  out_of_memory,      ///< frame or virtual-address-space exhaustion
  already_exists,     ///< duplicate registration
  not_attached,       ///< detach of a region that is not attached
  busy,               ///< removal while attachments outstanding
  unreachable,        ///< routing failed to find a path
  protocol_error,     ///< malformed cross-enclave message
  no_name_server,     ///< name service terminally lost (no standby promoted)
  stale_epoch,        ///< request carried an old name-service epoch; retry
  retry_later,        ///< transient (e.g. registry rebuilding); retry
  not_primary,        ///< shard write sent to a follower; retry elsewhere
  no_quorum,          ///< terminal: shard lost its majority past the grace
  revoked,            ///< terminal: capability (or an ancestor) was revoked
};

/// Human-readable name for an error code.
const char* errc_name(Errc e);

/// Result<T>: either a value or an Errc. Result<void> carries only status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Errc e) : v_(e) { XEMEM_ASSERT(e != Errc::ok); }

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  Errc error() const { return ok() ? Errc::ok : std::get<Errc>(v_); }

  T& value() & {
    XEMEM_ASSERT_MSG(ok(), "Result::value() on error");
    return std::get<T>(v_);
  }
  const T& value() const& {
    XEMEM_ASSERT_MSG(ok(), "Result::value() on error");
    return std::get<T>(v_);
  }
  T&& value() && {
    XEMEM_ASSERT_MSG(ok(), "Result::value() on error");
    return std::get<T>(std::move(v_));
  }

  T value_or(T fallback) const { return ok() ? std::get<T>(v_) : std::move(fallback); }

 private:
  std::variant<T, Errc> v_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() : e_(Errc::ok) {}
  Result(Errc e) : e_(e) {}  // NOLINT: implicit by design

  bool ok() const { return e_ == Errc::ok; }
  explicit operator bool() const { return ok(); }
  Errc error() const { return e_; }

 private:
  Errc e_;
};

inline const char* errc_name(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::no_such_segid: return "no_such_segid";
    case Errc::no_such_enclave: return "no_such_enclave";
    case Errc::permission_denied: return "permission_denied";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::out_of_memory: return "out_of_memory";
    case Errc::already_exists: return "already_exists";
    case Errc::not_attached: return "not_attached";
    case Errc::busy: return "busy";
    case Errc::unreachable: return "unreachable";
    case Errc::protocol_error: return "protocol_error";
    case Errc::no_name_server: return "no_name_server";
    case Errc::stale_epoch: return "stale_epoch";
    case Errc::retry_later: return "retry_later";
    case Errc::not_primary: return "not_primary";
    case Errc::no_quorum: return "no_quorum";
    case Errc::revoked: return "revoked";
  }
  return "unknown";
}

}  // namespace xemem
