// Minimal leveled logging.
//
// Default level is `warn` so tests and benches run quietly; examples raise
// it to `info` to narrate the protocol, and `trace` dumps every simulation
// event for debugging. Controlled globally (the simulator is single-threaded
// by construction, so no synchronization is needed).
#pragma once

#include <cstdarg>
#include <cstdio>

namespace xemem {

enum class LogLevel { trace = 0, debug, info, warn, error, off };

namespace detail {
inline LogLevel g_log_level = LogLevel::warn;
}

inline void set_log_level(LogLevel lvl) { detail::g_log_level = lvl; }
inline LogLevel log_level() { return detail::g_log_level; }

namespace detail {

inline void vlog(LogLevel lvl, const char* tag, const char* fmt, std::va_list ap) {
  if (lvl < g_log_level) return;
  static const char* names[] = {"TRACE", "DEBUG", "INFO ", "WARN ", "ERROR"};
  std::fprintf(stderr, "[%s] %s: ", names[static_cast<int>(lvl)], tag);
  std::vfprintf(stderr, fmt, ap);
  std::fputc('\n', stderr);
}

inline void log(LogLevel lvl, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

inline void log(LogLevel lvl, const char* tag, const char* fmt, ...) {
  if (lvl < g_log_level) return;
  std::va_list ap;
  va_start(ap, fmt);
  vlog(lvl, tag, fmt, ap);
  va_end(ap);
}

}  // namespace detail
}  // namespace xemem

#define XLOG_TRACE(tag, ...) ::xemem::detail::log(::xemem::LogLevel::trace, tag, __VA_ARGS__)
#define XLOG_DEBUG(tag, ...) ::xemem::detail::log(::xemem::LogLevel::debug, tag, __VA_ARGS__)
#define XLOG_INFO(tag, ...) ::xemem::detail::log(::xemem::LogLevel::info, tag, __VA_ARGS__)
#define XLOG_WARN(tag, ...) ::xemem::detail::log(::xemem::LogLevel::warn, tag, __VA_ARGS__)
#define XLOG_ERROR(tag, ...) ::xemem::detail::log(::xemem::LogLevel::error, tag, __VA_ARGS__)
