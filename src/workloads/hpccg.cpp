#include "workloads/hpccg.hpp"

#include <algorithm>

namespace xemem::workloads {

CgSolver::CgSolver(Grid g) : grid_(g), n_(u64{g.nx} * g.ny * g.nz) {
  XEMEM_ASSERT(n_ > 0);
  row_ptr_.reserve(n_ + 1);
  row_ptr_.push_back(0);
  auto index = [&](u32 x, u32 y, u32 z) -> u32 {
    return x + grid_.nx * (y + grid_.ny * z);
  };
  for (u32 z = 0; z < grid_.nz; ++z) {
    for (u32 y = 0; y < grid_.ny; ++y) {
      for (u32 x = 0; x < grid_.nx; ++x) {
        const u32 row = index(x, y, z);
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const i64 nx = static_cast<i64>(x) + dx;
              const i64 ny = static_cast<i64>(y) + dy;
              const i64 nz = static_cast<i64>(z) + dz;
              if (nx < 0 || ny < 0 || nz < 0 || nx >= grid_.nx || ny >= grid_.ny ||
                  nz >= grid_.nz) {
                continue;
              }
              const u32 col = index(static_cast<u32>(nx), static_cast<u32>(ny),
                                    static_cast<u32>(nz));
              cols_.push_back(col);
              vals_.push_back(col == row ? 27.0 : -1.0);
            }
          }
        }
        row_ptr_.push_back(cols_.size());
      }
    }
  }
  b_.resize(n_);
  // b = A * ones: exact solution is the all-ones vector.
  for (u64 i = 0; i < n_; ++i) {
    double s = 0;
    for (u64 k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) s += vals_[k];
    b_[i] = s;
  }
  reset();
}

void CgSolver::reset() {
  x_.assign(n_, 0.0);
  r_ = b_;  // r = b - A*0
  p_ = r_;
  ap_.assign(n_, 0.0);
  rr_ = dot(r_, r_);
  iters_ = 0;
}

void CgSolver::matvec(const std::vector<double>& x, std::vector<double>& y) const {
  for (u64 i = 0; i < n_; ++i) {
    double s = 0;
    for (u64 k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      s += vals_[k] * x[cols_[k]];
    }
    y[i] = s;
  }
}

double CgSolver::dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double CgSolver::iterate() {
  // The in-situ benchmark runs a fixed iteration count (600) regardless of
  // convergence, but on the scaled-down grid CG reaches machine precision
  // long before that; past convergence the recurrences lose positive
  // definiteness to rounding. Hold the converged state instead (the charged
  // per-iteration work is modeled separately, so timing is unaffected).
  if (rr_ < 1e-24) {
    ++iters_;
    return std::sqrt(rr_);
  }
  matvec(p_, ap_);
  const double p_ap = dot(p_, ap_);
  XEMEM_ASSERT_MSG(p_ap > 0, "matrix lost positive definiteness");
  const double alpha = rr_ / p_ap;
  for (u64 i = 0; i < n_; ++i) {
    x_[i] += alpha * p_[i];
    r_[i] -= alpha * ap_[i];
  }
  const double rr_new = dot(r_, r_);
  const double beta = rr_new / rr_;
  for (u64 i = 0; i < n_; ++i) p_[i] = r_[i] + beta * p_[i];
  rr_ = rr_new;
  ++iters_;
  return std::sqrt(rr_);
}

double CgSolver::solution_error() const {
  double e = 0;
  for (double v : x_) e = std::max(e, std::fabs(v - 1.0));
  return e;
}

CgSlab::CgSlab(CgSolver::Grid g, u32 rank, u32 ranks)
    : grid_(g), rank_(rank), ranks_(ranks) {
  XEMEM_ASSERT(ranks > 0 && rank < ranks);
  XEMEM_ASSERT_MSG(g.nz >= ranks, "need at least one z-plane per rank");
  const u32 base = g.nz / ranks;
  const u32 rem = g.nz % ranks;
  z0_ = rank * base + std::min(rank, rem);
  nzl_ = base + (rank < rem ? 1 : 0);
  plane_ = u64{g.nx} * g.ny;
  nloc_ = plane_ * nzl_;

  // b = A * ones over owned rows: 27 minus one per in-bounds neighbor.
  b_.resize(nloc_);
  for (u32 zl = 0; zl < nzl_; ++zl) {
    const i64 zg = static_cast<i64>(z0_) + zl;
    for (u32 y = 0; y < grid_.ny; ++y) {
      for (u32 x = 0; x < grid_.nx; ++x) {
        double s = 27.0;
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const i64 nx = static_cast<i64>(x) + dx;
              const i64 ny = static_cast<i64>(y) + dy;
              const i64 nz = zg + dz;
              if (nx < 0 || ny < 0 || nz < 0 || nx >= grid_.nx ||
                  ny >= grid_.ny || nz >= grid_.nz) {
                continue;
              }
              s -= 1.0;
            }
          }
        }
        b_[plane_ * zl + grid_.nx * y + x] = s;
      }
    }
  }
  reset();
}

void CgSlab::reset() {
  x_.assign(nloc_, 0.0);
  r_ = b_;  // r = b - A*0
  ap_.assign(nloc_, 0.0);
  p_.assign(plane_ * (nzl_ + 2ull), 0.0);
  for (u64 i = 0; i < nloc_; ++i) p_[plane_ + i] = r_[i];
  rr_ = initial_rr_partial();  // caller overwrites with the global value
  iters_ = 0;
  converged_ = false;
}

double CgSlab::initial_rr_partial() const {
  double s = 0;
  for (u64 i = 0; i < nloc_; ++i) s += r_[i] * r_[i];
  return s;
}

void CgSlab::pack_boundary(double* out) const {
  const double* lo = p_.data() + plane_;         // lowest owned plane
  const double* hi = p_.data() + plane_ * nzl_;  // highest owned plane
  for (u64 i = 0; i < plane_; ++i) out[i] = lo[i];
  for (u64 i = 0; i < plane_; ++i) out[plane_ + i] = hi[i];
}

void CgSlab::unpack_halo(const double* gathered) {
  // gathered = rank-ordered [low | high] plane pairs from pack_boundary.
  if (rank_ > 0) {
    const double* below_hi = gathered + (rank_ - 1) * 2 * plane_ + plane_;
    for (u64 i = 0; i < plane_; ++i) p_[i] = below_hi[i];
  }
  if (rank_ + 1 < ranks_) {
    const double* above_lo = gathered + (rank_ + 1) * 2 * plane_;
    double* halo_hi = p_.data() + plane_ * (nzl_ + 1ull);
    for (u64 i = 0; i < plane_; ++i) halo_hi[i] = above_lo[i];
  }
}

double CgSlab::apply_row(u32 x, u32 y, u32 zl, const double* p) const {
  const i64 zg = static_cast<i64>(z0_) + zl;
  double s = 0;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const i64 nx = static_cast<i64>(x) + dx;
        const i64 ny = static_cast<i64>(y) + dy;
        const i64 nz = zg + dz;
        if (nx < 0 || ny < 0 || nz < 0 || nx >= grid_.nx || ny >= grid_.ny ||
            nz >= grid_.nz) {
          continue;
        }
        // p is halo-offset storage: owned plane zl lives at index zl + 1.
        const u64 idx = plane_ * static_cast<u64>(zl + dz + 1) +
                        grid_.nx * static_cast<u64>(ny) + static_cast<u64>(nx);
        const double coeff = (dx == 0 && dy == 0 && dz == 0) ? 27.0 : -1.0;
        s += coeff * p[idx];
      }
    }
  }
  return s;
}

double CgSlab::matvec_dot_partial() {
  // Same converged-hold policy as CgSolver::iterate: past machine
  // precision the recurrences lose positive definiteness to rounding, so
  // the math freezes while the caller keeps driving exchanges.
  converged_ = rr_ < 1e-24;
  double pap = 0;
  for (u32 zl = 0; zl < nzl_; ++zl) {
    for (u32 y = 0; y < grid_.ny; ++y) {
      for (u32 x = 0; x < grid_.nx; ++x) {
        const u64 i = plane_ * zl + grid_.nx * y + x;
        ap_[i] = apply_row(x, y, zl, p_.data());
        pap += p_[plane_ + i] * ap_[i];
      }
    }
  }
  return pap;
}

double CgSlab::update_partial(double pap_global) {
  if (!converged_) {
    XEMEM_ASSERT_MSG(pap_global > 0, "matrix lost positive definiteness");
    const double alpha = rr_ / pap_global;
    for (u64 i = 0; i < nloc_; ++i) {
      x_[i] += alpha * p_[plane_ + i];
      r_[i] -= alpha * ap_[i];
    }
  }
  double s = 0;
  for (u64 i = 0; i < nloc_; ++i) s += r_[i] * r_[i];
  return s;
}

void CgSlab::finish_iteration(double rr_global) {
  if (!converged_) {
    const double beta = rr_global / rr_;
    for (u64 i = 0; i < nloc_; ++i) p_[plane_ + i] = r_[i] + beta * p_[plane_ + i];
    rr_ = rr_global;
  }
  ++iters_;
}

double CgSlab::solution_error_partial() const {
  double e = 0;
  for (double v : x_) e = std::max(e, std::fabs(v - 1.0));
  return e;
}

}  // namespace xemem::workloads
