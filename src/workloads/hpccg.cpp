#include "workloads/hpccg.hpp"

namespace xemem::workloads {

CgSolver::CgSolver(Grid g) : grid_(g), n_(u64{g.nx} * g.ny * g.nz) {
  XEMEM_ASSERT(n_ > 0);
  row_ptr_.reserve(n_ + 1);
  row_ptr_.push_back(0);
  auto index = [&](u32 x, u32 y, u32 z) -> u32 {
    return x + grid_.nx * (y + grid_.ny * z);
  };
  for (u32 z = 0; z < grid_.nz; ++z) {
    for (u32 y = 0; y < grid_.ny; ++y) {
      for (u32 x = 0; x < grid_.nx; ++x) {
        const u32 row = index(x, y, z);
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const i64 nx = static_cast<i64>(x) + dx;
              const i64 ny = static_cast<i64>(y) + dy;
              const i64 nz = static_cast<i64>(z) + dz;
              if (nx < 0 || ny < 0 || nz < 0 || nx >= grid_.nx || ny >= grid_.ny ||
                  nz >= grid_.nz) {
                continue;
              }
              const u32 col = index(static_cast<u32>(nx), static_cast<u32>(ny),
                                    static_cast<u32>(nz));
              cols_.push_back(col);
              vals_.push_back(col == row ? 27.0 : -1.0);
            }
          }
        }
        row_ptr_.push_back(cols_.size());
      }
    }
  }
  b_.resize(n_);
  // b = A * ones: exact solution is the all-ones vector.
  for (u64 i = 0; i < n_; ++i) {
    double s = 0;
    for (u64 k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) s += vals_[k];
    b_[i] = s;
  }
  reset();
}

void CgSolver::reset() {
  x_.assign(n_, 0.0);
  r_ = b_;  // r = b - A*0
  p_ = r_;
  ap_.assign(n_, 0.0);
  rr_ = dot(r_, r_);
  iters_ = 0;
}

void CgSolver::matvec(const std::vector<double>& x, std::vector<double>& y) const {
  for (u64 i = 0; i < n_; ++i) {
    double s = 0;
    for (u64 k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      s += vals_[k] * x[cols_[k]];
    }
    y[i] = s;
  }
}

double CgSolver::dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double CgSolver::iterate() {
  // The in-situ benchmark runs a fixed iteration count (600) regardless of
  // convergence, but on the scaled-down grid CG reaches machine precision
  // long before that; past convergence the recurrences lose positive
  // definiteness to rounding. Hold the converged state instead (the charged
  // per-iteration work is modeled separately, so timing is unaffected).
  if (rr_ < 1e-24) {
    ++iters_;
    return std::sqrt(rr_);
  }
  matvec(p_, ap_);
  const double p_ap = dot(p_, ap_);
  XEMEM_ASSERT_MSG(p_ap > 0, "matrix lost positive definiteness");
  const double alpha = rr_ / p_ap;
  for (u64 i = 0; i < n_; ++i) {
    x_[i] += alpha * p_[i];
    r_[i] -= alpha * ap_[i];
  }
  const double rr_new = dot(r_, r_);
  const double beta = rr_new / rr_;
  for (u64 i = 0; i < n_; ++i) p_[i] = r_[i] + beta * p_[i];
  rr_ = rr_new;
  ++iters_;
  return std::sqrt(rr_);
}

double CgSolver::solution_error() const {
  double e = 0;
  for (double v : x_) e = std::max(e, std::fabs(v - 1.0));
  return e;
}

}  // namespace xemem::workloads
