// Selfish Detour noise benchmark (Beckman et al., ANL).
//
// The benchmark runs a tight timing loop and records every "detour" — an
// interval where the loop's step took noticeably longer than the expected
// quantum, i.e. the CPU was executing instructions that are not part of
// the user's application (paper section 5.5 / Figure 7).
//
// In the simulator the loop repeatedly executes a small quantum of
// application compute on its core; any interrupt-context work (noise
// components, XEMEM attachment servicing) stretches the quantum, and the
// stretch beyond the quantum is recorded as a detour with its timestamp.
#pragma once

#include <vector>

#include "hw/core.hpp"
#include "sim/engine.hpp"

namespace xemem::workloads {

struct Detour {
  sim::TimePoint at;       ///< when the detour completed
  sim::Duration duration;  ///< stolen time (beyond the sampling quantum)
};

struct DetourTrace {
  std::vector<Detour> detours;
  u64 samples{0};
  sim::Duration quantum{0};

  /// Fraction of the run spent in detours.
  double noise_fraction(sim::Duration run_length) const {
    u64 stolen = 0;
    for (const auto& d : detours) stolen += d.duration;
    return static_cast<double>(stolen) / static_cast<double>(run_length);
  }
};

/// Run the detour loop on @p core for @p run_for simulated time.
/// @p quantum is the sampling granularity (the paper's rdtsc loop step,
/// coarsened to keep event counts tractable); any stretch greater than
/// @p min_detour is recorded.
inline sim::Task<DetourTrace> selfish_detour(hw::Core& core, sim::Duration run_for,
                                             sim::Duration quantum = 2000 /*2us*/,
                                             sim::Duration min_detour = 500) {
  DetourTrace trace;
  trace.quantum = quantum;
  const sim::TimePoint end = sim::now() + run_for;
  while (sim::now() < end) {
    const sim::TimePoint t0 = sim::now();
    co_await core.compute(quantum);
    ++trace.samples;
    const sim::Duration stretch = (sim::now() - t0) - quantum;
    if (stretch >= min_detour) {
      trace.detours.push_back(Detour{sim::now(), stretch});
    }
  }
  co_return trace;
}

}  // namespace xemem::workloads
