// HPCCG exchanges over the collectives subsystem.
//
// Drives a CgSlab (workloads/hpccg.hpp) through its per-iteration
// exchange protocol using a coll::Comm — the shape HPCCG has on a real
// machine: one halo exchange (boundary z-planes to the adjacent slabs,
// carried here by an allgather of every rank's two boundary planes) plus
// two dot-product allreduces (p.Ap and the new r.r). Each rank's actor
// coroutine owns its own Comm handle and calls cg_comm_solve with its own
// slab; the calls rendezvous through the communicator exactly like MPI
// ranks. See tests/test_cg_slab.cpp for the convergence check against the
// serial CgSolver and bench/collectives_scaling.cpp for the scaling use.
#pragma once

#include "collectives/comm.hpp"
#include "workloads/hpccg.hpp"

namespace xemem::workloads {

struct CgCommResult {
  double residual{0};        ///< global residual 2-norm after the run
  u32 iterations{0};         ///< iterations completed
  double local_error{0};     ///< this rank's max |x_i - 1| over owned rows
};

/// Run @p iterations of distributed CG on @p cg over @p comm
/// (comm.size() must equal the slab decomposition's rank count; every
/// rank calls this collectively). @p algo forces one algorithm for every
/// exchange; Algo::automatic consults the communicator's tuning policy.
/// Fails with the collective's status if the communicator dies mid-solve.
sim::Task<Result<CgCommResult>> cg_comm_solve(coll::Comm& comm, CgSlab& cg,
                                              u32 iterations,
                                              coll::Algo algo = coll::Algo::automatic);

}  // namespace xemem::workloads
