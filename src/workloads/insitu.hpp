// Composed in-situ workload (paper sections 6-7).
//
// Couples the HPC simulation (HPCCG conjugate gradient) with the analytics
// program (STREAM) through XEMEM shared memory, reproducing the paper's
// benchmark structure:
//
//  * The simulation exports a data region and a small control page. Every
//    `signal_every` iterations it signals the analytics program by writing
//    a counter in shared memory; the analytics program polls that counter
//    (the paper: "operations like event notifications must be supported
//    via ad hoc techniques like polling on variables in memory").
//  * Synchronous model: the simulation then polls a done-counter until the
//    analytics pass completes. Asynchronous model: it continues
//    immediately and the two contend for the socket's memory bandwidth.
//  * One-time model: the data region is exported/attached once. Recurring
//    model: the simulation exports a fresh region at every communication
//    point, which the analytics program discovers by name, attaches,
//    processes, and detaches — paying the full attachment path each time.
//
// The CG arithmetic and STREAM kernels execute for real on scaled-down
// arrays; per-iteration *charged* work is configured to the paper's
// problem scale (see the Figure 8/9 harnesses for the calibration).
#pragma once

#include <string>

#include "net/fabric.hpp"
#include "workloads/hpccg.hpp"
#include "workloads/stream.hpp"
#include "xemem/system.hpp"

namespace xemem::workloads {

struct InsituConfig {
  // Workflow shape (paper section 6.1: 600 iterations, signal every 40).
  u32 iterations{600};
  u32 signal_every{40};
  u64 region_bytes{512ull << 20};
  bool async{false};
  bool recurring{false};

  // Modeled per-iteration simulation work (calibrated in the harnesses).
  u64 sim_compute_ns{132'000'000};
  u64 sim_mem_bytes{1ull << 30};

  // Analytics: full STREAM passes over the (modeled) region per signal.
  u32 stream_passes{1};

  // Real-math scale (grid for CG, elements for STREAM).
  u32 grid{12};
  u32 stream_elems{1 << 16};

  // Multi-node (Figure 9): per-iteration collectives on this communicator.
  net::Communicator* comm{nullptr};
  u64 allreduce_bytes{16};

  // Carry the go/done control handshake over the shared-memory
  // collectives subsystem (src/collectives/) instead of raw polling on
  // control-page words: "go" is a bcast of the signal counter from the
  // simulation rank; "done" is a barrier (synchronous model only). Note
  // the bcast rendezvouses at each signal point, so the asynchronous
  // model's fire-and-forget signal gains a hand-off rendezvous; data
  // movement and the attach models are unchanged.
  bool use_shm_collectives{false};

  // Polling granularity for the shared-memory signal variables.
  sim::Duration poll_interval{200'000};  // 200 us

  // Unique tag for published segment names (one per concurrent run).
  u64 run_tag{0};
};

struct InsituResult {
  double sim_seconds{0};      ///< HPC simulation completion time
  double residual{0};         ///< CG residual after the run (real math)
  double solution_error{0};   ///< max |x_i - 1| against the exact solution
  u32 attaches_performed{0};  ///< analytics-side attachment count
  double analytics_seconds{0};
  u64 coll_ops{0};  ///< simulation-side collective ops (use_shm_collectives)
};

/// Run one composed in-situ benchmark between two enclaves of @p node.
/// The simulation process runs in @p sim_enclave, analytics in
/// @p analytics_enclave (they may be the same enclave — the paper's
/// Linux-only baseline). Returns when both components finish.
sim::Task<InsituResult> run_insitu(Node& node, const std::string& sim_enclave,
                                   const std::string& analytics_enclave,
                                   InsituConfig cfg);

}  // namespace xemem::workloads
