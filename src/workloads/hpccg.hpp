// HPCCG-style conjugate-gradient solver (real numerics).
//
// The paper's in-situ HPC simulation component is HPCCG from the Mantevo
// suite (section 6.1): an iterative conjugate-gradient solve on a sparse
// matrix from a 27-point stencil, with collective operations between
// iterations. This is a faithful reimplementation: CSR matrix assembly,
// real matvec/dot/axpy arithmetic, and a residual that provably converges
// (the tests check it). The solver is pure computation — the in-situ
// harness couples it to the simulator by charging modeled per-iteration
// time (the paper's problem sizes would not fit this container, so the
// grid is scaled down while the *charged* work matches the paper's scale;
// see DESIGN.md).
#pragma once

#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace xemem::workloads {

/// Sparse SPD system from a 27-point stencil on an nx x ny x nz grid:
/// diagonal 27, off-diagonals -1 (H PCCG's generate_matrix), b = A*ones so
/// the exact solution is the all-ones vector.
class CgSolver {
 public:
  struct Grid {
    u32 nx, ny, nz;
  };

  explicit CgSolver(Grid g);

  /// Run one CG iteration; returns the residual 2-norm after the update.
  double iterate();

  /// Iterations completed since construction/reset.
  u32 iterations() const { return iters_; }
  double residual_norm() const { return std::sqrt(rr_); }

  /// Error against the known exact solution (all ones).
  double solution_error() const;

  void reset();

  u64 rows() const { return n_; }
  u64 nonzeros() const { return static_cast<u64>(cols_.size()); }

  /// Real floating-point work of one iteration (matvec + 2 dots + 3 axpy).
  u64 flops_per_iteration() const { return 2 * nonzeros() + 10 * rows(); }

 private:
  void matvec(const std::vector<double>& x, std::vector<double>& y) const;
  static double dot(const std::vector<double>& a, const std::vector<double>& b);

  Grid grid_;
  u64 n_;
  // CSR storage.
  std::vector<u64> row_ptr_;
  std::vector<u32> cols_;
  std::vector<double> vals_;
  std::vector<double> b_, x_, r_, p_, ap_;
  double rr_{0};
  u32 iters_{0};
};

}  // namespace xemem::workloads
