// HPCCG-style conjugate-gradient solver (real numerics).
//
// The paper's in-situ HPC simulation component is HPCCG from the Mantevo
// suite (section 6.1): an iterative conjugate-gradient solve on a sparse
// matrix from a 27-point stencil, with collective operations between
// iterations. This is a faithful reimplementation: CSR matrix assembly,
// real matvec/dot/axpy arithmetic, and a residual that provably converges
// (the tests check it). The solver is pure computation — the in-situ
// harness couples it to the simulator by charging modeled per-iteration
// time (the paper's problem sizes would not fit this container, so the
// grid is scaled down while the *charged* work matches the paper's scale;
// see DESIGN.md).
#pragma once

#include <cmath>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace xemem::workloads {

/// Sparse SPD system from a 27-point stencil on an nx x ny x nz grid:
/// diagonal 27, off-diagonals -1 (H PCCG's generate_matrix), b = A*ones so
/// the exact solution is the all-ones vector.
class CgSolver {
 public:
  struct Grid {
    u32 nx, ny, nz;
  };

  explicit CgSolver(Grid g);

  /// Run one CG iteration; returns the residual 2-norm after the update.
  double iterate();

  /// Iterations completed since construction/reset.
  u32 iterations() const { return iters_; }
  double residual_norm() const { return std::sqrt(rr_); }

  /// Error against the known exact solution (all ones).
  double solution_error() const;

  void reset();

  u64 rows() const { return n_; }
  u64 nonzeros() const { return static_cast<u64>(cols_.size()); }

  /// Real floating-point work of one iteration (matvec + 2 dots + 3 axpy).
  u64 flops_per_iteration() const { return 2 * nonzeros() + 10 * rows(); }

 private:
  void matvec(const std::vector<double>& x, std::vector<double>& y) const;
  static double dot(const std::vector<double>& a, const std::vector<double>& b);

  Grid grid_;
  u64 n_;
  // CSR storage.
  std::vector<u64> row_ptr_;
  std::vector<u32> cols_;
  std::vector<double> vals_;
  std::vector<double> b_, x_, r_, p_, ap_;
  double rr_{0};
  u32 iters_{0};
};

/// Slab-partitioned parallel CG on the same 27-point stencil system: rank
/// r owns a contiguous block of z-planes. The class is pure local math
/// with an explicit caller-driven step protocol, so any collective
/// backend can carry the exchanges (workloads/cg_comm.hpp drives it over
/// coll::Comm, matching HPCCG's per-iteration exchange shape: one halo
/// exchange plus two dot-product reductions):
///
///   set_global_rr(allreduce(initial_rr_partial()))      // once
///   per iteration:
///     pack_boundary(buf); allgather(buf) -> unpack_halo(all)
///     pap = allreduce(matvec_dot_partial())
///     rr  = allreduce(update_partial(pap))
///     finish_iteration(rr)
///
/// Requires nz >= ranks (every rank owns at least one plane).
class CgSlab {
 public:
  CgSlab(CgSolver::Grid g, u32 rank, u32 ranks);

  u64 plane_elems() const { return u64{grid_.nx} * grid_.ny; }
  /// Elements of pack_boundary()'s output: this rank's lowest and highest
  /// p-planes (the halo an adjacent slab needs).
  u64 boundary_elems() const { return 2 * plane_elems(); }
  u32 local_planes() const { return nzl_; }
  u64 local_rows() const { return nloc_; }

  /// Local contribution to the initial r.r (caller sums across ranks and
  /// feeds the global value back through set_global_rr).
  double initial_rr_partial() const;
  void set_global_rr(double rr) { rr_ = rr; }

  /// Write [lowest local p-plane | highest local p-plane] to @p out.
  void pack_boundary(double* out) const;
  /// Consume the rank-ordered concatenation of every rank's
  /// pack_boundary() output (an allgather result) and fill this slab's
  /// halo planes from its neighbors' facing planes.
  void unpack_halo(const double* gathered);
  /// Local matvec (ap = A p over owned rows, using the halo planes) and
  /// the local contribution to p.Ap.
  double matvec_dot_partial();
  /// Alpha step (x += alpha p, r -= alpha ap) from the reduced p.Ap;
  /// returns the local contribution to the new r.r.
  double update_partial(double pap_global);
  /// Beta step (p = r + beta p) from the reduced r.r; ends the iteration.
  void finish_iteration(double rr_global);

  u32 iterations() const { return iters_; }
  double residual_norm() const { return std::sqrt(rr_); }
  /// Local max |x_i - 1| over owned rows (exact solution is all ones).
  double solution_error_partial() const;
  void reset();

 private:
  double apply_row(u32 x, u32 y, u32 zl, const double* p) const;

  CgSolver::Grid grid_;
  u32 rank_, ranks_;
  u32 z0_, nzl_;  // owned global plane range [z0_, z0_ + nzl_)
  u64 plane_, nloc_;
  std::vector<double> b_, x_, r_, ap_;
  std::vector<double> p_;  // (nzl_ + 2) planes: [halo_low | owned | halo_high]
  double rr_{0};           // global r.r (caller-reduced)
  u32 iters_{0};
  bool converged_{false};
};

}  // namespace xemem::workloads
