#include "workloads/cg_comm.hpp"

namespace xemem::workloads {

sim::Task<Result<CgCommResult>> cg_comm_solve(coll::Comm& comm, CgSlab& cg,
                                              u32 iterations, coll::Algo algo) {
  std::vector<double> boundary(cg.boundary_elems());
  std::vector<double> gathered(cg.boundary_elems() * comm.size());

  // Global initial r.r (b.b): the one bootstrap reduction.
  double rr_local = cg.initial_rr_partial();
  double rr = 0;
  auto st = co_await comm.allreduce(&rr_local, &rr, 1, coll::ReduceOp::sum, algo);
  if (!st.ok()) co_return st.error();
  cg.set_global_rr(rr);

  for (u32 it = 0; it < iterations; ++it) {
    // Halo exchange: everyone contributes its two boundary p-planes.
    cg.pack_boundary(boundary.data());
    st = co_await comm.allgather(boundary.data(),
                                 boundary.size() * sizeof(double),
                                 gathered.data(), algo);
    if (!st.ok()) co_return st.error();
    cg.unpack_halo(gathered.data());

    double pap_local = cg.matvec_dot_partial();
    double pap = 0;
    st = co_await comm.allreduce(&pap_local, &pap, 1, coll::ReduceOp::sum, algo);
    if (!st.ok()) co_return st.error();

    double rrn_local = cg.update_partial(pap);
    double rrn = 0;
    st = co_await comm.allreduce(&rrn_local, &rrn, 1, coll::ReduceOp::sum, algo);
    if (!st.ok()) co_return st.error();
    cg.finish_iteration(rrn);
  }

  co_return CgCommResult{cg.residual_norm(), cg.iterations(),
                         cg.solution_error_partial()};
}

}  // namespace xemem::workloads
