#include "workloads/insitu.hpp"

#include <string>

#include "collectives/comm.hpp"
#include "common/log.hpp"

namespace xemem::workloads {
namespace {

// Control-page layout (shared-memory signal variables, section 6.1).
constexpr u64 kGoOff = 0;
constexpr u64 kDoneOff = 8;

std::string data_name(u64 tag, u32 k) {
  return "insitu-" + std::to_string(tag) + "-data-" + std::to_string(k);
}
std::string ctl_name(u64 tag) { return "insitu-" + std::to_string(tag) + "-ctl"; }
std::string coll_name(u64 tag) { return "insitu-" + std::to_string(tag) + "-coll"; }

/// Communicator policy for the go/done handshake: payloads are one u64,
/// so small slots keep the reserved region tiny; the polling cadence
/// matches the raw control-page model for a fair comparison.
coll::CollConfig handshake_cfg(const InsituConfig& cfg) {
  coll::CollConfig cc;
  cc.slot_bytes = 4 * kPageSize;
  cc.chunk_bytes = 4 * kPageSize;
  cc.poll_interval = cfg.poll_interval;
  return cc;
}

/// Poll a shared u64 until it reaches @p expect (the paper's ad hoc
/// notification mechanism: polling on variables in shared memory).
sim::Task<void> poll_at_least(os::Enclave& os, os::Process& p, Vaddr va, u64 expect,
                              sim::Duration interval) {
  for (;;) {
    u64 v = 0;
    auto r = os.proc_read(p, va, &v, sizeof(v));
    XEMEM_ASSERT_MSG(r.ok(), "signal variable unmapped");
    if (v >= expect) co_return;
    co_await sim::delay(interval);
  }
}

/// A memory-bandwidth-bound phase anchored to a core: bytes stream through
/// the socket's shared-bandwidth resource in chunks, with a small CPU
/// driver step per chunk. The per-chunk compute step is what couples the
/// phase to the core's interrupt-context noise: a daemon burst stalls the
/// loop until the core is free again (within one chunk's granularity).
sim::Task<void> streamed_work(hw::Core* core, sim::SharedBandwidth& bw, u64 bytes) {
  constexpr u64 kChunk = 16ull << 20;
  constexpr u64 kCpuPerChunk = 5'000;  // 5 us driver loop per 16 MiB
  while (bytes > 0) {
    const u64 n = std::min(bytes, kChunk);
    co_await bw.transfer(n);
    co_await core->compute(kCpuPerChunk);
    bytes -= n;
  }
}

/// Pick distinct app cores when simulation and analytics share an enclave,
/// avoiding the enclave's service core where possible.
hw::Core* app_core(os::Enclave& os, u32 preference) {
  const auto& cores = os.cores();
  std::vector<hw::Core*> usable;
  for (hw::Core* c : cores) {
    if (c != os.service_core()) usable.push_back(c);
  }
  if (usable.empty()) return cores[0];
  return usable[preference % usable.size()];
}

struct Ctx {
  InsituConfig cfg;
  XememKernel* sim_k;
  XememKernel* an_k;
  os::Enclave* sim_os;
  os::Enclave* an_os;
  os::Process* sim_proc;
  os::Process* an_proc;
  hw::Core* sim_core;
  hw::Core* an_core;
  u32 total_signals;
  Vaddr ctl_va;   // control page in the simulation's address space
  Vaddr data_va;  // data region in the simulation's address space
  Vaddr sim_coll_va{};  // reserved Comm regions (use_shm_collectives)
  Vaddr an_coll_va{};
  std::unique_ptr<coll::Comm> sim_comm;
  std::unique_ptr<coll::Comm> an_comm;
  Segid ctl_segid;
  std::vector<Segid> data_segids;
  InsituResult result;
  sim::Event sim_finished;
  sim::Event analytics_finished;
};

sim::Task<void> simulation_actor(Ctx* c) {
  const InsituConfig& cfg = c->cfg;
  if (cfg.use_shm_collectives) {
    auto cm = co_await coll::Comm::create(
        coll::Comm::Member{c->sim_k, c->sim_os, c->sim_proc, c->sim_core,
                           c->sim_coll_va},
        coll_name(cfg.run_tag), 0, 2, handshake_cfg(cfg));
    XEMEM_ASSERT_MSG(cm.ok(), "simulation comm bootstrap failed");
    c->sim_comm = std::move(cm.value());
  }
  CgSolver cg(CgSolver::Grid{cfg.grid, cfg.grid, cfg.grid});
  const sim::TimePoint start = sim::now();
  u32 signals = 0;

  for (u32 it = 1; it <= cfg.iterations; ++it) {
    // Real conjugate-gradient arithmetic (scaled grid)...
    cg.iterate();
    // ...charged at the modeled problem scale. A virtualized simulation
    // pays its nested-paging overhead on the memory-bound share.
    co_await c->sim_core->compute(cfg.sim_compute_ns);
    co_await streamed_work(
        c->sim_core, c->sim_os->membw(),
        static_cast<u64>(static_cast<double>(cfg.sim_mem_bytes) *
                         c->sim_os->mem_overhead_factor()));

    // Collectives between iterations (two dot-product allreduces).
    if (cfg.comm != nullptr) {
      co_await cfg.comm->allreduce(cfg.allreduce_bytes);
      co_await cfg.comm->allreduce(cfg.allreduce_bytes);
    }

    if (it % cfg.signal_every == 0 && signals < c->total_signals) {
      ++signals;
      if (cfg.recurring) {
        // Export a fresh region for this communication point.
        auto sid = co_await c->sim_k->xpmem_make(*c->sim_proc, c->data_va,
                                                 cfg.region_bytes,
                                                 data_name(cfg.run_tag, signals));
        XEMEM_ASSERT_MSG(sid.ok(), "recurring export failed");
        c->data_segids.push_back(sid.value());
      }
      // Signal the analytics program through shared memory: either the
      // collective handshake or the paper's raw control-page polling.
      u64 go = signals;
      if (cfg.use_shm_collectives) {
        XEMEM_ASSERT((co_await c->sim_comm->bcast(&go, sizeof(go), 0)).ok());
        if (!cfg.async) {
          // Synchronous model: barrier until the analytics pass completes.
          XEMEM_ASSERT((co_await c->sim_comm->barrier()).ok());
        }
      } else {
        XEMEM_ASSERT(c->sim_os->proc_write(*c->sim_proc, c->ctl_va + kGoOff,
                                           &go, sizeof(go))
                         .ok());
        if (!cfg.async) {
          // Synchronous model: wait for the analytics pass to complete.
          co_await poll_at_least(*c->sim_os, *c->sim_proc, c->ctl_va + kDoneOff,
                                 signals, cfg.poll_interval);
        }
      }
    }
  }

  c->result.sim_seconds = ns_to_s(sim::now() - start);
  if (c->sim_comm) {
    for (u32 k = 0; k < coll::kOpKindCount; ++k) {
      c->result.coll_ops += c->sim_comm->stats().op[k].ops;
    }
    XEMEM_ASSERT((co_await c->sim_comm->finalize()).ok());
  }
  c->result.residual = cg.residual_norm();
  c->result.solution_error = cg.solution_error();
  c->sim_finished.set();
}

sim::Task<void> analytics_actor(Ctx* c) {
  const InsituConfig& cfg = c->cfg;
  const sim::TimePoint start = sim::now();

  // Signal channel: either join the communicator or attach the control
  // page (raw signal variables).
  XpmemGrant ctl_grant{};
  XpmemAttachment ctl_att{};
  if (cfg.use_shm_collectives) {
    auto cm = co_await coll::Comm::create(
        coll::Comm::Member{c->an_k, c->an_os, c->an_proc, c->an_core,
                           c->an_coll_va},
        coll_name(cfg.run_tag), 1, 2, handshake_cfg(cfg));
    XEMEM_ASSERT_MSG(cm.ok(), "analytics comm bootstrap failed");
    c->an_comm = std::move(cm.value());
  } else {
    auto g = co_await c->an_k->xpmem_get(c->ctl_segid);
    XEMEM_ASSERT(g.ok());
    ctl_grant = g.value();
    auto att =
        co_await c->an_k->xpmem_attach(*c->an_proc, ctl_grant, 0, kPageSize);
    XEMEM_ASSERT(att.ok());
    ctl_att = att.value();
    co_await c->an_os->touch_attached(*c->an_proc, ctl_att.va, 1);
  }

  Stream stream(cfg.stream_elems);
  XpmemGrant data_grant{};
  XpmemAttachment data_att{};
  bool attached = false;

  for (u32 k = 1; k <= c->total_signals; ++k) {
    if (cfg.use_shm_collectives) {
      u64 go = 0;
      XEMEM_ASSERT((co_await c->an_comm->bcast(&go, sizeof(go), 0)).ok());
      XEMEM_ASSERT_MSG(go == k, "go signal out of order");
    } else {
      co_await poll_at_least(*c->an_os, *c->an_proc, ctl_att.va + kGoOff, k,
                             cfg.poll_interval);
    }

    if (cfg.recurring || !attached) {
      // Discover the exported region by name and attach it.
      const auto name = data_name(cfg.run_tag, cfg.recurring ? k : 1);
      auto sid = co_await c->an_k->xpmem_search(name);
      XEMEM_ASSERT_MSG(sid.ok(), "exported region not discoverable");
      auto g = co_await c->an_k->xpmem_get(sid.value());
      XEMEM_ASSERT(g.ok());
      data_grant = g.value();
      auto att = co_await c->an_k->xpmem_attach(*c->an_proc, data_grant, 0,
                                                cfg.region_bytes);
      XEMEM_ASSERT_MSG(att.ok(), "data attach failed");
      data_att = att.value();
      attached = true;
      ++c->result.attaches_performed;
      // First touch: under single-OS Linux fault semantics this is where
      // the per-page fault cost lands (paper section 6.4).
      co_await c->an_os->touch_attached(*c->an_proc, data_att.va, data_att.pages);
    }

    // Copy the shared region into a private array (read + write traffic)
    // and verify real data through the real mapping. VM personalities pay
    // their nested-paging overhead on streaming work.
    const double vfac = c->an_os->mem_overhead_factor();
    co_await streamed_work(c->an_core, c->an_os->membw(),
                           static_cast<u64>(2.0 * static_cast<double>(cfg.region_bytes) * vfac));
    std::vector<double> probe(std::min<u64>(cfg.stream_elems, 4096));
    XEMEM_ASSERT(c->an_os->proc_read(*c->an_proc, data_att.va, probe.data(),
                                     probe.size() * sizeof(double))
                     .ok());
    stream.load(probe.data(), probe.size());

    // STREAM over the private array: real kernels, modeled traffic.
    stream.pass();
    co_await streamed_work(
        c->an_core, c->an_os->membw(),
        static_cast<u64>(static_cast<double>(cfg.stream_passes *
                                             Stream::bytes_per_pass(cfg.region_bytes)) *
                         vfac));

    if (cfg.recurring) {
      XEMEM_ASSERT((co_await c->an_k->xpmem_detach(*c->an_proc, data_att)).ok());
      XEMEM_ASSERT((co_await c->an_k->xpmem_release(data_grant)).ok());
      attached = false;
    }

    // Signal completion back to the simulation.
    if (cfg.use_shm_collectives) {
      if (!cfg.async) {
        XEMEM_ASSERT((co_await c->an_comm->barrier()).ok());
      }
    } else {
      const u64 done = k;
      XEMEM_ASSERT(c->an_os->proc_write(*c->an_proc, ctl_att.va + kDoneOff,
                                        &done, sizeof(done))
                       .ok());
    }
  }

  if (attached) {
    XEMEM_ASSERT((co_await c->an_k->xpmem_detach(*c->an_proc, data_att)).ok());
    XEMEM_ASSERT((co_await c->an_k->xpmem_release(data_grant)).ok());
  }
  if (c->an_comm) {
    XEMEM_ASSERT((co_await c->an_comm->finalize()).ok());
  } else {
    XEMEM_ASSERT((co_await c->an_k->xpmem_detach(*c->an_proc, ctl_att)).ok());
    XEMEM_ASSERT((co_await c->an_k->xpmem_release(ctl_grant)).ok());
  }

  c->result.analytics_seconds = ns_to_s(sim::now() - start);
  c->analytics_finished.set();
}

}  // namespace

sim::Task<InsituResult> run_insitu(Node& node, const std::string& sim_enclave,
                                   const std::string& analytics_enclave,
                                   InsituConfig cfg) {
  auto ctx = std::make_unique<Ctx>();
  Ctx* c = ctx.get();
  c->cfg = cfg;
  c->sim_k = &node.kernel(sim_enclave);
  c->an_k = &node.kernel(analytics_enclave);
  c->sim_os = &node.enclave(sim_enclave);
  c->an_os = &node.enclave(analytics_enclave);
  c->total_signals = cfg.iterations / cfg.signal_every;

  // Simulation image: control page + data region + slack (+ reserved
  // communicator region when the handshake rides the collectives).
  const u64 coll_region =
      cfg.use_shm_collectives ? coll::Comm::region_bytes(2, handshake_cfg(cfg)) : 0;
  auto sim_proc = c->sim_os->create_process(page_align_up(cfg.region_bytes) +
                                            2 * kPageSize + coll_region);
  XEMEM_ASSERT_MSG(sim_proc.ok(), "simulation process creation failed");
  c->sim_proc = sim_proc.value();
  auto an_proc = c->an_os->create_process((4ull << 20) + coll_region);
  XEMEM_ASSERT_MSG(an_proc.ok(), "analytics process creation failed");
  c->an_proc = an_proc.value();

  const bool same_enclave = c->sim_os == c->an_os;
  c->sim_core = app_core(*c->sim_os, 0);
  c->an_core = app_core(*c->an_os, same_enclave ? 1 : 0);

  c->ctl_va = c->sim_proc->image_base();
  c->data_va = c->sim_proc->image_base() + kPageSize;
  if (cfg.use_shm_collectives) {
    c->sim_coll_va = c->data_va + page_align_up(cfg.region_bytes) + kPageSize;
    c->an_coll_va = c->an_proc->image_base() + (4ull << 20);
  }

  // Export the control page, and the data region for the one-time model.
  auto ctl = co_await c->sim_k->xpmem_make(*c->sim_proc, c->ctl_va, kPageSize,
                                           ctl_name(cfg.run_tag));
  XEMEM_ASSERT_MSG(ctl.ok(), "control export failed");
  c->ctl_segid = ctl.value();
  if (!cfg.recurring) {
    auto sid = co_await c->sim_k->xpmem_make(*c->sim_proc, c->data_va,
                                             cfg.region_bytes,
                                             data_name(cfg.run_tag, 1));
    XEMEM_ASSERT_MSG(sid.ok(), "data export failed");
    c->data_segids.push_back(sid.value());
  }

  auto* eng = sim::Engine::current();
  eng->spawn(simulation_actor(c));
  eng->spawn(analytics_actor(c));
  co_await c->sim_finished.wait();
  co_await c->analytics_finished.wait();

  // Teardown: withdraw every export; all attachments are detached by now,
  // so removal must succeed and leave the machine leak-free.
  for (Segid sid : c->data_segids) {
    XEMEM_ASSERT((co_await c->sim_k->xpmem_remove(*c->sim_proc, sid)).ok());
  }
  XEMEM_ASSERT((co_await c->sim_k->xpmem_remove(*c->sim_proc, c->ctl_segid)).ok());

  co_return c->result;
}

}  // namespace xemem::workloads
