// STREAM kernels (real arithmetic), from the HPC Challenge suite.
//
// The paper's analytics component runs STREAM over the region exported by
// the simulation (section 6.1): it first copies the shared memory into a
// private array, then executes the four STREAM kernels over it. The
// arithmetic here is real (checksummed in tests); the in-situ harness
// charges the *modeled* region's memory traffic to the simulator
// separately, since STREAM is bandwidth-bound.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace xemem::workloads {

class Stream {
 public:
  explicit Stream(size_t n) : a_(n, 1.0), b_(n, 2.0), c_(n, 0.0) {}

  void copy() {
    for (size_t i = 0; i < a_.size(); ++i) c_[i] = a_[i];
  }
  void scale(double s) {
    for (size_t i = 0; i < a_.size(); ++i) b_[i] = s * c_[i];
  }
  void add() {
    for (size_t i = 0; i < a_.size(); ++i) c_[i] = a_[i] + b_[i];
  }
  void triad(double s) {
    for (size_t i = 0; i < a_.size(); ++i) a_[i] = b_[i] + s * c_[i];
  }

  /// One full STREAM pass (copy, scale, add, triad).
  void pass(double s = 3.0) {
    copy();
    scale(s);
    add();
    triad(s);
  }

  /// Load external data into the source array (the "copy shared memory to
  /// a private array" step of the paper's analytics program).
  void load(const double* src, size_t n) {
    for (size_t i = 0; i < n && i < a_.size(); ++i) a_[i] = src[i];
  }

  double checksum() const {
    double s = 0;
    for (size_t i = 0; i < a_.size(); ++i) s += a_[i] + b_[i] + c_[i];
    return s;
  }

  size_t size() const { return a_.size(); }

  /// Bytes moved per full pass for a modeled array of @p array_bytes
  /// (copy 2x, scale 2x, add 3x, triad 3x => 10 array lengths).
  static u64 bytes_per_pass(u64 array_bytes) { return 10 * array_bytes; }

 private:
  std::vector<double> a_, b_, c_;
};

}  // namespace xemem::workloads
