// Topology-aware hierarchical collective algorithms (the XHC shape):
// members exchange with their enclave leader over the enclave-local
// segment (intra phase), leaders exchange over their cross-enclave XEMEM
// attachments to the control segment (cross phase), then fan back out.
//
// Every phase below burns its sequence number on EVERY rank — including
// ranks the phase skips — because participation is decided purely from
// globally known values (op, root, topology), never from data. That keeps
// the communicator-wide sequence counter identical across ranks, which the
// stamping protocol requires.
#include <cstring>

#include "collectives/comm.hpp"

namespace xemem::coll {

namespace {

constexpr u32 kNoRank = 0xffffffffu;

/// Local-segment indices of an enclave's non-leader members: 1..parties-1.
std::vector<u32> member_idxs(u32 parties) {
  std::vector<u32> v;
  for (u32 i = 1; i < parties; ++i) v.push_back(i);
  return v;
}

/// All local-segment indices except @p skip.
std::vector<u32> idxs_except(u32 parties, u32 skip) {
  std::vector<u32> v;
  for (u32 i = 0; i < parties; ++i) {
    if (i != skip) v.push_back(i);
  }
  return v;
}

}  // namespace

sim::Task<Result<void>> Comm::hier_barrier(OpCtx& ctx) {
  // Intra gather: members report to their leader.
  const u64 s1 = next_seq();
  if (local_.valid()) {
    ++ctx.st->intra_phases;
    if (leader_) {
      if (auto r = co_await seg_wait_done(local_, s1, member_idxs(local_.parties),
                                          ctx);
          !r.ok()) {
        co_return r;
      }
    } else {
      if (auto r = seg_signal(local_, s1); !r.ok()) co_return r;
    }
  }
  // Cross barrier among leaders over the control segment.
  const u64 s2 = next_seq();
  if (groups_.size() > 1 && leader_) {
    ++ctx.st->cross_phases;
    if (auto r = seg_signal(root_, s2); !r.ok()) co_return r;
    if (auto r = co_await seg_wait_done(root_, s2, leader_indices_except(kNoRank),
                                        ctx);
        !r.ok()) {
      co_return r;
    }
  }
  // Intra release: leaders wave their members through.
  const u64 s3 = next_seq();
  if (local_.valid()) {
    ++ctx.st->intra_phases;
    if (leader_) {
      if (auto r = seg_signal(local_, s3); !r.ok()) co_return r;
    } else {
      if (auto r = co_await seg_wait_done(local_, s3, std::vector<u32>(1, 0u), ctx); !r.ok()) {
        co_return r;
      }
    }
  }
  co_return Result<void>{};
}

sim::Task<Result<void>> Comm::hier_bcast(void* data, u64 bytes, u32 root,
                                         OpCtx& ctx) {
  const u32 lr = leader_of(root);
  const bool in_root_group = same_group(rank_, root);

  // Phase 1 (only when the root is not its enclave's leader): the root
  // seeds its own enclave, which also lands the data on that leader.
  const u64 s1 = next_seq();
  if (root != lr && in_root_group) {
    ++ctx.st->intra_phases;
    const u32 ridx = local_idx_of(root);
    if (rank_ == root) {
      if (auto r = co_await seg_publish(local_, s1, data, bytes, ctx); !r.ok()) {
        co_return r;
      }
      if (auto r = co_await seg_wait_done(local_, s1,
                                          idxs_except(local_.parties, ridx), ctx);
          !r.ok()) {
        co_return r;
      }
    } else {
      if (auto r = co_await seg_consume(local_, s1, ridx, data, bytes, nullptr,
                                        ctx);
          !r.ok()) {
        co_return r;
      }
      if (auto r = seg_signal(local_, s1); !r.ok()) co_return r;
    }
  }

  // Phase 2: the root's leader broadcasts to the other leaders.
  const u64 s2 = next_seq();
  if (groups_.size() > 1 && leader_) {
    ++ctx.st->cross_phases;
    if (rank_ == lr) {
      if (auto r = co_await seg_publish(root_, s2, data, bytes, ctx); !r.ok()) {
        co_return r;
      }
      if (auto r = co_await seg_wait_done(root_, s2, leader_indices_except(lr),
                                          ctx);
          !r.ok()) {
        co_return r;
      }
    } else {
      if (auto r = co_await seg_consume(root_, s2, lr, data, bytes, nullptr, ctx);
          !r.ok()) {
        co_return r;
      }
      if (auto r = seg_signal(root_, s2); !r.ok()) co_return r;
    }
  }

  // Phase 3: leaders fan out inside every enclave phase 1 didn't cover.
  const u64 s3 = next_seq();
  const bool covered_by_phase1 = in_root_group && root != lr;
  if (local_.valid() && !covered_by_phase1) {
    ++ctx.st->intra_phases;
    if (leader_) {
      if (auto r = co_await seg_publish(local_, s3, data, bytes, ctx); !r.ok()) {
        co_return r;
      }
      if (auto r = co_await seg_wait_done(local_, s3, member_idxs(local_.parties),
                                          ctx);
          !r.ok()) {
        co_return r;
      }
    } else {
      if (auto r = co_await seg_consume(local_, s3, 0, data, bytes, nullptr, ctx);
          !r.ok()) {
        co_return r;
      }
      if (auto r = seg_signal(local_, s3); !r.ok()) co_return r;
    }
  }
  co_return Result<void>{};
}

sim::Task<Result<void>> Comm::hier_reduce(const double* in, double* out,
                                          u64 elems, u32 root, ReduceOp op,
                                          OpCtx& ctx) {
  const u64 bytes = elems * sizeof(double);
  const u32 lr = leader_of(root);
  std::vector<double> acc;  // leaders accumulate here

  // Phase 1: each leader reduces its enclave's contributions. Leaders of
  // different enclaves work in parallel — this is the win over the flat
  // algorithm's single O(ranks) chain at the root.
  const u64 s1 = next_seq();
  if (local_.valid()) {
    ++ctx.st->intra_phases;
    if (leader_) {
      acc.assign(in, in + elems);
      for (u32 j = 1; j < local_.parties; ++j) {
        if (auto r = co_await seg_consume(local_, s1, j, acc.data(), bytes, &op,
                                          ctx);
            !r.ok()) {
          co_return r;
        }
      }
      if (auto r = seg_signal(local_, s1); !r.ok()) co_return r;
    } else {
      if (auto r = co_await seg_publish(local_, s1, in, bytes, ctx); !r.ok()) {
        co_return r;
      }
      if (auto r = co_await seg_wait_done(local_, s1, std::vector<u32>(1, 0u), ctx); !r.ok()) {
        co_return r;
      }
    }
  } else if (leader_) {
    acc.assign(in, in + elems);
  }

  // Phase 2: the root's leader reduces the other leaders' partials.
  const u64 s2 = next_seq();
  if (groups_.size() > 1 && leader_) {
    ++ctx.st->cross_phases;
    if (rank_ == lr) {
      for (const auto& g : groups_) {
        if (g.ranks[0] == lr) continue;
        if (auto r = co_await seg_consume(root_, s2, g.ranks[0], acc.data(),
                                          bytes, &op, ctx);
            !r.ok()) {
          co_return r;
        }
      }
      if (auto r = seg_signal(root_, s2); !r.ok()) co_return r;
    } else {
      if (auto r = co_await seg_publish(root_, s2, acc.data(), bytes, ctx);
          !r.ok()) {
        co_return r;
      }
      if (auto r = co_await seg_wait_done(root_, s2, std::vector<u32>(1, lr), ctx); !r.ok()) {
        co_return r;
      }
    }
  }

  // Phase 3: hand the result to the root. When the root is not its
  // enclave's leader the hop stays intra-enclave (they share a segment).
  const u64 s3 = next_seq();
  if (root != lr) {
    if (rank_ == lr) {
      ++ctx.st->intra_phases;
      if (auto r = co_await seg_publish(local_, s3, acc.data(), bytes, ctx);
          !r.ok()) {
        co_return r;
      }
      if (auto r = co_await seg_wait_done(local_, s3, std::vector<u32>(1, local_idx_of(root)), ctx);
          !r.ok()) {
        co_return r;
      }
    } else if (rank_ == root) {
      ++ctx.st->intra_phases;
      if (auto r = co_await seg_consume(local_, s3, 0, out, bytes, nullptr, ctx);
          !r.ok()) {
        co_return r;
      }
      if (auto r = seg_signal(local_, s3); !r.ok()) co_return r;
    }
  } else if (rank_ == root) {
    std::memcpy(out, acc.data(), bytes);
  }
  co_return Result<void>{};
}

sim::Task<Result<void>> Comm::hier_allgather(const void* in, u64 bytes_per_rank,
                                             void* out, OpCtx& ctx) {
  // Phase 3 moves the fully assembled result through one slot, and phase 2
  // moves whole group blocks; both are bounded by the total.
  const u64 total = static_cast<u64>(size_) * bytes_per_rank;
  if (total > cfg_.slot_bytes) co_return Errc::invalid_argument;

  const Group& mine = groups_[my_group_];
  auto* dst = static_cast<u8*>(out);
  std::vector<u8> groupbuf;  // leaders: my enclave's block, group order

  // Phase 1: members hand their contribution to the leader.
  const u64 s1 = next_seq();
  if (local_.valid()) {
    ++ctx.st->intra_phases;
    if (leader_) {
      groupbuf.resize(mine.ranks.size() * bytes_per_rank);
      std::memcpy(groupbuf.data(), in, bytes_per_rank);
      for (u32 j = 1; j < local_.parties; ++j) {
        if (auto r = co_await seg_consume(local_, s1, j,
                                          groupbuf.data() + j * bytes_per_rank,
                                          bytes_per_rank, nullptr, ctx);
            !r.ok()) {
          co_return r;
        }
      }
      if (auto r = seg_signal(local_, s1); !r.ok()) co_return r;
    } else {
      if (auto r = co_await seg_publish(local_, s1, in, bytes_per_rank, ctx);
          !r.ok()) {
        co_return r;
      }
      if (auto r = co_await seg_wait_done(local_, s1, std::vector<u32>(1, 0u), ctx); !r.ok()) {
        co_return r;
      }
    }
  } else if (leader_) {
    const auto* src = static_cast<const u8*>(in);
    groupbuf.assign(src, src + bytes_per_rank);
  }

  // Phase 2: leaders exchange group blocks, scattering each incoming
  // block to its members' rank positions (rank numbering interleaves
  // across enclaves, so blocks can't just be concatenated).
  const u64 s2 = next_seq();
  if (leader_) {
    for (u32 j = 0; j < mine.ranks.size(); ++j) {
      std::memcpy(dst + static_cast<u64>(mine.ranks[j]) * bytes_per_rank,
                  groupbuf.data() + j * bytes_per_rank, bytes_per_rank);
    }
    if (groups_.size() > 1) {
      ++ctx.st->cross_phases;
      if (auto r = co_await seg_publish(root_, s2, groupbuf.data(),
                                        groupbuf.size(), ctx);
          !r.ok()) {
        co_return r;
      }
      std::vector<u8> block;
      for (const auto& g : groups_) {
        if (&g == &mine) continue;
        block.resize(g.ranks.size() * bytes_per_rank);
        if (auto r = co_await seg_consume(root_, s2, g.ranks[0], block.data(),
                                          block.size(), nullptr, ctx);
            !r.ok()) {
          co_return r;
        }
        for (u32 j = 0; j < g.ranks.size(); ++j) {
          std::memcpy(dst + static_cast<u64>(g.ranks[j]) * bytes_per_rank,
                      block.data() + j * bytes_per_rank, bytes_per_rank);
        }
      }
      if (auto r = seg_signal(root_, s2); !r.ok()) co_return r;
      if (auto r = co_await seg_wait_done(root_, s2, leader_indices_except(kNoRank),
                                          ctx);
          !r.ok()) {
        co_return r;
      }
    }
  }

  // Phase 3: leaders publish the assembled result to their members.
  const u64 s3 = next_seq();
  if (local_.valid()) {
    ++ctx.st->intra_phases;
    if (leader_) {
      if (auto r = co_await seg_publish(local_, s3, out, total, ctx); !r.ok()) {
        co_return r;
      }
      if (auto r = co_await seg_wait_done(local_, s3, member_idxs(local_.parties),
                                          ctx);
          !r.ok()) {
        co_return r;
      }
    } else {
      if (auto r = co_await seg_consume(local_, s3, 0, out, total, nullptr, ctx);
          !r.ok()) {
        co_return r;
      }
      if (auto r = seg_signal(local_, s3); !r.ok()) co_return r;
    }
  }
  co_return Result<void>{};
}

}  // namespace xemem::coll
