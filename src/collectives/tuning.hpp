// Algorithm selection for the collective engine.
//
// Mirrors the tuning tables hierarchical shared-memory MPI collectives
// ship with: the flat single-segment algorithm wins when the group is
// small or the payload tiny (fewer phases, no extra hop through the
// leader), while the topology-aware hierarchical algorithm wins once
// several enclaves contribute enough ranks that (a) the root's serial
// reduce chain dominates and (b) per-enclave leaders can reduce their
// members in parallel. The table below encodes the crossovers measured by
// bench/collectives_scaling.cpp; callers override per-op via the Algo
// argument or per-communicator via CollConfig::algo.
#pragma once

#include "collectives/stats.hpp"
#include "common/units.hpp"

namespace xemem::coll {

enum class Algo : u8 { automatic, flat, hierarchical };

inline const char* algo_name(Algo a) {
  switch (a) {
    case Algo::automatic: return "auto";
    case Algo::flat: return "flat";
    case Algo::hierarchical: return "hier";
  }
  return "?";
}

/// One tuning-table row: the first row whose thresholds all hold picks the
/// algorithm (rows are ordered most-specific first).
struct TuningEntry {
  OpKind op;
  u32 min_ranks;
  u32 min_enclaves;
  u64 min_bytes;
  Algo algo;
};

inline constexpr TuningEntry kTuningTable[] = {
    // Wide barriers across several enclaves: the flat counter page takes
    // O(ranks) polls per rank; going through leaders caps the fan-in.
    {OpKind::barrier, 16, 3, 0, Algo::hierarchical},
    // Rooted data movement: once >=2 enclaves hold >=6 ranks and payloads
    // stop being latency-bound, parallel per-enclave reduction/fan-out
    // beats the root's serial chain.
    {OpKind::bcast, 6, 2, 32_KiB, Algo::hierarchical},
    {OpKind::reduce, 6, 2, 16_KiB, Algo::hierarchical},
    {OpKind::allreduce, 6, 2, 16_KiB, Algo::hierarchical},
    // Very wide groups: hierarchical pays off even for small payloads
    // because the reduce chain is pure per-contribution overhead.
    {OpKind::reduce, 16, 3, 0, Algo::hierarchical},
    {OpKind::allreduce, 16, 3, 0, Algo::hierarchical},
    // allgather has no table entry: every rank's slot moves exactly once
    // in the flat algorithm and all pulls proceed in parallel, so the
    // hierarchical variant's extra leader hop never amortizes.
};

/// Pick an algorithm for @p op over @p ranks ranks spread across
/// @p enclaves enclaves moving @p bytes per rank.
inline Algo choose(OpKind op, u32 ranks, u32 enclaves, u64 bytes) {
  if (enclaves < 2) return Algo::flat;  // no cross-enclave structure to exploit
  for (const auto& e : kTuningTable) {
    if (e.op == op && ranks >= e.min_ranks && enclaves >= e.min_enclaves &&
        bytes >= e.min_bytes) {
      return e.algo;
    }
  }
  return Algo::flat;
}

}  // namespace xemem::coll
