// Reduction operators for the collective engine.
//
// Collectives reduce arrays of doubles (the element type of every exchange
// the repo's workloads perform: CG partial dot products, halo plane
// merges). The arithmetic executes for real — a reduce's result is the
// exact serial combination in rank order, so runs are bit-reproducible —
// and the *time* is charged separately by the engine from
// costs::kCollReduceBytesPerNs.
#pragma once

#include <algorithm>

#include "common/types.hpp"

namespace xemem::coll {

enum class ReduceOp : u8 { sum, min, max };

inline const char* reduce_name(ReduceOp op) {
  switch (op) {
    case ReduceOp::sum: return "sum";
    case ReduceOp::min: return "min";
    case ReduceOp::max: return "max";
  }
  return "?";
}

/// acc[i] = acc[i] <op> in[i] for i in [0, n).
inline void reduce_apply(ReduceOp op, double* acc, const double* in, u64 n) {
  switch (op) {
    case ReduceOp::sum:
      for (u64 i = 0; i < n; ++i) acc[i] += in[i];
      break;
    case ReduceOp::min:
      for (u64 i = 0; i < n; ++i) acc[i] = std::min(acc[i], in[i]);
      break;
    case ReduceOp::max:
      for (u64 i = 0; i < n; ++i) acc[i] = std::max(acc[i], in[i]);
      break;
  }
}

}  // namespace xemem::coll
