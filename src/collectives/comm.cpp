// Communicator bootstrap, sequence-stamped segment primitives, and the
// flat collective algorithms. The hierarchical algorithms live in
// hierarchical.cpp.
//
// Segment word map (applies to the control segment and to every
// enclave-local segment; all words u64, written through shm::ShmWord):
//
//   +0   magic      "XEMCOLL1" — attachers verify the exporter formatted it
//   +8   parties    member-table entries
//   +16  status     sticky communicator status (Errc value; control
//                   segment only — local segments reserve the word)
//   +24..63         reserved
//   +64  member table, parties x 32 bytes:
//        +0  enclave id + 1 (0 = not yet published; bootstrap only)
//        +8  reserved
//        +16 contrib — seq-stamped chunk-publish cursor (single writer)
//        +24 done    — seq-stamped signal/ack word (single writer)
//   +header_bytes   parties staging slots, slot_stride bytes each
//
// Sequence stamping: every segment-level sub-operation consumes one
// communicator-wide sequence number on *every* rank (participants and
// bystanders alike), and single-writer words are stamped
// (seq << 20) | progress. Stamps only grow, so words never reset and a
// reader can never confuse op N's progress with op N+1's.
#include "collectives/comm.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace xemem::coll {

namespace {

constexpr u64 kMagic = 0x58454d434f4c4c31ull;  // "XEMCOLL1"
constexpr u64 kMagicOff = 0;
constexpr u64 kPartiesOff = 8;
constexpr u64 kStatusOff = 16;
constexpr u64 kFieldEnclave = 0;
constexpr u64 kFieldContrib = 16;
constexpr u64 kFieldDone = 24;

u64 chunk_count(u64 bytes, u64 chunk) { return (bytes + chunk - 1) / chunk; }

// Bootstrap-time protocol errors worth retrying within the bootstrap
// deadline: transient routing loss, a name service mid-failover (promoted
// standby still absorbing re-registrations), or a registry entry that has
// not been replayed yet. Everything else (permission, argument, protocol
// errors) is terminal.
bool bootstrap_retryable(Errc e) {
  switch (e) {
    case Errc::unreachable:
    case Errc::no_name_server:
    case Errc::retry_later:
    case Errc::stale_epoch:
    case Errc::no_such_segid:
    // Sharded name service: a write bounced off a follower mid-election,
    // or a shard past its partition grace. no_quorum is terminal per
    // request, but the shard may regain its majority (heal, re-election)
    // within the bootstrap deadline, so keep trying until then.
    case Errc::not_primary:
    case Errc::no_quorum:
      return true;
    // Capability model (DESIGN.md §9): revocation is terminal by design —
    // a revoked control segment never comes back under the same cap, so
    // retrying would spin until the deadline for a determined outcome.
    case Errc::revoked:
      return false;
    default:
      return false;
  }
}

u64 reduce_ns(u64 bytes) {
  return static_cast<u64>(static_cast<double>(bytes) / costs::kCollReduceBytesPerNs);
}

}  // namespace

// ------------------------------------------------------------------ geometry

u64 Comm::seg_bytes(u32 parties, const CollConfig& cfg) {
  const u64 header = page_align_up(64 + 32ull * parties);
  return header + parties * page_align_up(cfg.slot_bytes);
}

u64 Comm::region_bytes(u32 size, const CollConfig& cfg) {
  // Control segment (rank 0) plus a worst-case local segment (leaders);
  // every rank reserves both because roles are unknown until bootstrap.
  return 2 * seg_bytes(size, cfg);
}

Comm::Comm(Member m, std::string name, u32 rank, u32 size, CollConfig cfg)
    : m_(m),
      name_(std::move(name)),
      rank_(rank),
      size_(size),
      cfg_(cfg),
      core_(m.core != nullptr ? m.core : m.proc->core()) {
  if (cfg_.bootstrap_timeout == 0) cfg_.bootstrap_timeout = cfg_.timeout;
}

sim::Task<Result<std::unique_ptr<Comm>>> Comm::create(Member m, std::string name,
                                                      u32 rank, u32 size,
                                                      CollConfig cfg) {
  XEMEM_ASSERT_MSG(m.kernel != nullptr && m.os != nullptr && m.proc != nullptr,
                   "Comm::create: incomplete Member");
  XEMEM_ASSERT_MSG(size > 0 && rank < size, "Comm::create: bad rank/size");
  XEMEM_ASSERT_MSG(cfg.chunk_bytes > 0 && cfg.slot_bytes >= cfg.chunk_bytes,
                   "Comm::create: bad chunk/slot sizing");
  auto comm = std::unique_ptr<Comm>(new Comm(m, std::move(name), rank, size, cfg));
  auto r = co_await comm->bootstrap();
  if (!r.ok()) {
    co_await comm->finalize();  // best-effort unwind of partial bootstrap
    co_return r.error();
  }
  co_return std::move(comm);
}

// ----------------------------------------------------------------- words

Result<u64> Comm::load_word(const Seg& seg, u64 off) const {
  return shm::ShmWord(*m_.os, *m_.proc, seg.base + off).load();
}

Result<void> Comm::store_word(const Seg& seg, u64 off, u64 v) {
  return shm::ShmWord(*m_.os, *m_.proc, seg.base + off).store(v);
}

Errc Comm::post_status(Errc e) {
  if (root_.valid()) {
    auto cur = load_word(root_, kStatusOff);
    if (cur.ok() && cur.value() == 0) {
      (void)store_word(root_, kStatusOff, static_cast<u64>(e));
    }
  }
  return e;
}

Result<void> Comm::check_status() const {
  if (!root_.valid()) return Result<void>{};
  auto v = load_word(root_, kStatusOff);
  if (!v.ok()) return v.error();
  if (v.value() != 0) return static_cast<Errc>(v.value());
  return Result<void>{};
}

Errc Comm::status() const {
  auto s = check_status();
  return s.ok() ? Errc::ok : s.error();
}

// ------------------------------------------------------------- primitives

sim::Task<Result<void>> Comm::wait_word(const Seg& seg, u64 off, u64 target,
                                        OpCtx& ctx) {
  for (;;) {
    auto v = load_word(seg, off);
    if (!v.ok()) co_return post_status(v.error());
    ++ctx.st->polls;
    if (v.value() >= target) co_return Result<void>{};
    if (auto s = check_status(); !s.ok()) co_return s;
    if (ctx.dl.expired()) co_return post_status(Errc::unreachable);
    co_await core_->compute(costs::kCollPollCost);
    co_await sim::delay(cfg_.poll_interval);
  }
}

Result<void> Comm::seg_signal(Seg& seg, u64 seq) {
  auto r = store_word(seg, seg.member_off(seg.my_idx, kFieldDone), stamp(seq, 1));
  if (!r.ok()) return post_status(r.error());
  return r;
}

sim::Task<Result<void>> Comm::seg_wait_done(Seg& seg, u64 seq,
                                            const std::vector<u32>& parties,
                                            OpCtx& ctx) {
  const u64 target = stamp(seq, 1);
  size_t met = 0;  // parties[0..met) already observed at the target stamp
  for (;;) {
    while (met < parties.size()) {
      auto v = load_word(seg, seg.member_off(parties[met], kFieldDone));
      if (!v.ok()) co_return post_status(v.error());
      ++ctx.st->polls;
      if (v.value() < target) break;
      ++met;
    }
    if (met == parties.size()) co_return Result<void>{};
    if (auto s = check_status(); !s.ok()) co_return s;
    if (ctx.dl.expired()) co_return post_status(Errc::unreachable);
    co_await core_->compute(costs::kCollPollCost);
    co_await sim::delay(cfg_.poll_interval);
  }
}

sim::Task<Result<void>> Comm::seg_publish(Seg& seg, u64 seq, const void* data,
                                          u64 bytes, OpCtx& ctx) {
  const u64 slot = seg.slot_off(seg.my_idx);
  const u64 contrib = seg.member_off(seg.my_idx, kFieldContrib);
  const auto* src = static_cast<const u8*>(data);
  const u64 chunks = chunk_count(bytes, cfg_.chunk_bytes);
  for (u64 k = 0; k < chunks; ++k) {
    const u64 off = k * cfg_.chunk_bytes;
    const u64 len = std::min(cfg_.chunk_bytes, bytes - off);
    auto w = m_.os->proc_write(*m_.proc, seg.base + slot + off, src + off, len);
    if (!w.ok()) co_return post_status(w.error());
    co_await m_.os->membw().transfer(len);
    co_await core_->compute(costs::kCollChunkOverhead);
    auto p = store_word(seg, contrib, stamp(seq, k + 1));
    if (!p.ok()) co_return post_status(p.error());
    ++ctx.st->chunks;
    ctx.st->bytes_moved += len;
  }
  co_return Result<void>{};
}

/// Pipeline state for one in-flight chunk fetch.
struct Comm::FetchState {
  Result<void> st{};
  sim::Event done;
  std::vector<u8> buf;
  u64 len{0};
  OpCtx* ctx{nullptr};
};

sim::Task<void> Comm::fetch_chunk(Comm* c, Seg* seg, u64 contrib_off, u64 target,
                                  Vaddr src_va, FetchState* fs) {
  auto w = co_await c->wait_word(*seg, contrib_off, target, *fs->ctx);
  if (!w.ok()) {
    fs->st = w;
    fs->done.set();
    co_return;
  }
  auto r = c->m_.os->proc_read(*c->m_.proc, src_va, fs->buf.data(), fs->len);
  if (!r.ok()) {
    fs->st = c->post_status(r.error());
    fs->done.set();
    co_return;
  }
  co_await c->m_.os->membw().transfer(fs->len);
  fs->done.set();
}

sim::Task<Result<void>> Comm::seg_consume(Seg& seg, u64 seq, u32 src_idx,
                                          void* dst, u64 bytes,
                                          const ReduceOp* rop, OpCtx& ctx) {
  const u64 slot = seg.slot_off(src_idx);
  const u64 contrib_off = seg.member_off(src_idx, kFieldContrib);
  const u64 chunks = chunk_count(bytes, cfg_.chunk_bytes);

  if (rop == nullptr) {
    // Straight copy: fetch each chunk as soon as it is published.
    auto* out = static_cast<u8*>(dst);
    for (u64 k = 0; k < chunks; ++k) {
      const u64 off = k * cfg_.chunk_bytes;
      const u64 len = std::min(cfg_.chunk_bytes, bytes - off);
      auto w = co_await wait_word(seg, contrib_off, stamp(seq, k + 1), ctx);
      if (!w.ok()) co_return w;
      auto r = m_.os->proc_read(*m_.proc, seg.base + slot + off, out + off, len);
      if (!r.ok()) co_return post_status(r.error());
      co_await m_.os->membw().transfer(len);
      co_await core_->compute(costs::kCollChunkOverhead);
      ++ctx.st->chunks;
      ctx.st->bytes_moved += len;
    }
    co_return Result<void>{};
  }

  // Reduction: overlap the fetch of chunk k+1 (bandwidth) with the
  // arithmetic of chunk k (CPU) — a two-buffer pipeline. Every spawned
  // fetch is joined before the next loop step, so no fetch outlives an
  // early error return.
  auto* acc = static_cast<double*>(dst);
  FetchState fs[2];
  for (auto& f : fs) f.ctx = &ctx;
  fs[0].len = std::min(cfg_.chunk_bytes, bytes);
  fs[0].buf.resize(fs[0].len);
  co_await fetch_chunk(this, &seg, contrib_off, stamp(seq, 1), seg.base + slot,
                       &fs[0]);
  for (u64 k = 0; k < chunks; ++k) {
    FetchState& cur = fs[k % 2];
    if (!cur.st.ok()) co_return cur.st;
    const u64 off = k * cfg_.chunk_bytes;
    const u64 len = std::min(cfg_.chunk_bytes, bytes - off);
    const bool more = k + 1 < chunks;
    if (more) {
      FetchState& nxt = fs[(k + 1) % 2];
      const u64 noff = (k + 1) * cfg_.chunk_bytes;
      nxt.st = Result<void>{};
      nxt.done.reset();
      nxt.len = std::min(cfg_.chunk_bytes, bytes - noff);
      nxt.buf.resize(nxt.len);
      sim::Engine::current()->spawn(fetch_chunk(this, &seg, contrib_off,
                                                stamp(seq, k + 2),
                                                seg.base + slot + noff, &nxt));
    }
    co_await core_->compute(reduce_ns(len));
    reduce_apply(*rop, acc + off / sizeof(double),
                 reinterpret_cast<const double*>(cur.buf.data()),
                 len / sizeof(double));
    ++ctx.st->chunks;
    ctx.st->bytes_moved += len;
    if (more) co_await fs[(k + 1) % 2].done.wait();
  }
  co_return Result<void>{};
}

// -------------------------------------------------------------- bootstrap

sim::Task<Result<void>> Comm::attach_by_name(const std::string& seg_name,
                                             u32 parties, u32 my_idx, Seg* out,
                                             OpCtx& ctx) {
  const u64 bytes = seg_bytes(parties, cfg_);
  // The whole search -> get -> attach chain retries within the bootstrap
  // deadline: the exporter may not have published the name yet, and a name
  // service failing over mid-bootstrap answers with retryable statuses
  // until the registry is rebuilt.
  Segid sid{};
  Result<XpmemGrant> grant{Errc::unreachable};
  Result<XpmemAttachment> att{Errc::unreachable};
  for (;;) {
    auto s = co_await m_.kernel->xpmem_search(seg_name);
    if (s.ok()) {
      sid = s.value();
      grant = co_await m_.kernel->xpmem_get(sid);
      if (grant.ok()) {
        att = co_await m_.kernel->xpmem_attach(*m_.proc, grant.value(), 0, bytes);
        if (att.ok()) break;
        // The grant is useless without the attachment: best-effort drop it
        // before retrying so the owner's grant count does not creep up.
        (void)co_await m_.kernel->xpmem_release(grant.value());
        if (!bootstrap_retryable(att.error())) co_return att.error();
      } else if (!bootstrap_retryable(grant.error())) {
        co_return grant.error();
      }
    }
    if (ctx.dl.expired()) {
      if (!att.ok() && s.ok() && grant.ok()) co_return att.error();
      if (!grant.ok() && s.ok()) co_return grant.error();
      co_return Errc::unreachable;
    }
    co_await sim::delay(cfg_.poll_interval);
  }
  co_await m_.os->touch_attached(*m_.proc, att.value().va, att.value().pages);

  out->base = att.value().va;
  out->parties = parties;
  out->my_idx = my_idx;
  out->header_bytes = page_align_up(64 + 32ull * parties);
  out->slot_stride = page_align_up(cfg_.slot_bytes);
  out->attached = true;
  out->att = att.value();
  out->grant = grant.value();
  out->segid = sid;
  ++stats_.attaches;
  if (!att.value().local) ++stats_.cross_attaches;

  auto magic = load_word(*out, kMagicOff);
  auto np = load_word(*out, kPartiesOff);
  if (!magic.ok() || !np.ok()) co_return Errc::protocol_error;
  if (magic.value() != kMagic || np.value() != parties) {
    co_return Errc::protocol_error;
  }
  co_return Result<void>{};
}

sim::Task<Result<void>> Comm::bootstrap() {
  OpStats scratch;
  OpCtx ctx{shm::Deadline(cfg_.bootstrap_timeout), &scratch};
  const u64 root_bytes = seg_bytes(size_, cfg_);

  // Phase 1: rank 0 formats and exports the control segment; everyone
  // else discovers it by name and attaches.
  if (rank_ == 0) {
    root_.base = m_.region;
    root_.parties = size_;
    root_.my_idx = 0;
    root_.header_bytes = page_align_up(64 + 32ull * size_);
    root_.slot_stride = page_align_up(cfg_.slot_bytes);
    root_.exported = true;
    for (u64 off = kStatusOff; off < 64 + 32ull * size_; off += 8) {
      if (auto r = store_word(root_, off, 0); !r.ok()) co_return r;
    }
    if (auto r = store_word(root_, kPartiesOff, size_); !r.ok()) co_return r;
    if (auto r = store_word(root_, kMagicOff, kMagic); !r.ok()) co_return r;
    // The export must land in the name server's registry; retry through a
    // failover window (the exporter keeps its local record, so a replayed
    // segid_alloc under a new epoch is safe).
    Result<Segid> sid{Errc::unreachable};
    for (;;) {
      sid = co_await m_.kernel->xpmem_make(*m_.proc, root_.base, root_bytes,
                                           name_);
      if (sid.ok() || !bootstrap_retryable(sid.error()) || ctx.dl.expired()) {
        break;
      }
      co_await sim::delay(cfg_.poll_interval);
    }
    if (!sid.ok()) co_return sid.error();
    root_.segid = sid.value();
    ++stats_.exports;
  } else {
    auto r = co_await attach_by_name(name_, size_, rank_, &root_, ctx);
    if (!r.ok()) co_return r;
  }

  // Phase 2: publish my enclave identity, then wait for the full member
  // table (sub-op seq 1) and derive the topology from it.
  const u64 my_enclave = m_.os->id().value();
  if (auto r = store_word(root_, root_.member_off(rank_, kFieldEnclave),
                          my_enclave + 1);
      !r.ok()) {
    co_return r;
  }
  if (auto r = seg_signal(root_, 1); !r.ok()) co_return r;
  std::vector<u32> everyone(size_);
  for (u32 i = 0; i < size_; ++i) everyone[i] = i;
  if (auto r = co_await seg_wait_done(root_, 1, everyone, ctx); !r.ok()) {
    co_return r;
  }

  for (u32 r = 0; r < size_; ++r) {
    auto e = load_word(root_, root_.member_off(r, kFieldEnclave));
    if (!e.ok()) co_return e.error();
    XEMEM_ASSERT(e.value() != 0);
    const u64 enclave = e.value() - 1;
    u32 gi = 0;
    for (; gi < groups_.size(); ++gi) {
      if (groups_[gi].enclave_id == enclave) break;
    }
    if (gi == groups_.size()) groups_.push_back(Group{enclave, {}});
    groups_[gi].ranks.push_back(r);
    if (r == rank_) my_group_ = gi;
  }
  leader_ = groups_[my_group_].ranks[0] == rank_;

  // Phase 3: each multi-rank enclave assembles its local segment — the
  // leader exports, members attach through the intra-enclave fast path.
  const Group& g = groups_[my_group_];
  if (g.ranks.size() > 1) {
    const u32 parties = static_cast<u32>(g.ranks.size());
    const std::string local_name =
        name_ + ".g" + std::to_string(g.ranks[0]);
    if (leader_) {
      local_.base = m_.region + root_bytes;
      local_.parties = parties;
      local_.my_idx = 0;
      local_.header_bytes = page_align_up(64 + 32ull * parties);
      local_.slot_stride = page_align_up(cfg_.slot_bytes);
      local_.exported = true;
      for (u64 off = kStatusOff; off < 64 + 32ull * parties; off += 8) {
        if (auto r = store_word(local_, off, 0); !r.ok()) co_return r;
      }
      if (auto r = store_word(local_, kPartiesOff, parties); !r.ok()) co_return r;
      if (auto r = store_word(local_, kMagicOff, kMagic); !r.ok()) co_return r;
      Result<Segid> sid{Errc::unreachable};
      for (;;) {
        sid = co_await m_.kernel->xpmem_make(*m_.proc, local_.base,
                                             seg_bytes(parties, cfg_),
                                             local_name);
        if (sid.ok() || !bootstrap_retryable(sid.error()) || ctx.dl.expired()) {
          break;
        }
        co_await sim::delay(cfg_.poll_interval);
      }
      if (!sid.ok()) co_return sid.error();
      local_.segid = sid.value();
      ++stats_.exports;
    } else {
      auto r = co_await attach_by_name(local_name, parties, local_idx_of(rank_),
                                       &local_, ctx);
      if (!r.ok()) co_return r;
    }
  }

  // Phase 4: one full-group rendezvous (sub-op seq 2) so no rank issues
  // an operation before every segment exists.
  if (auto r = seg_signal(root_, 2); !r.ok()) co_return r;
  if (auto r = co_await seg_wait_done(root_, 2, everyone, ctx); !r.ok()) {
    co_return r;
  }
  seq_ = 3;
  stats_.bootstrap_polls = scratch.polls;
  co_return Result<void>{};
}

// -------------------------------------------------------------- topology

const Comm::Group& Comm::group_of(u32 r) const {
  for (const auto& g : groups_) {
    for (u32 m : g.ranks) {
      if (m == r) return g;
    }
  }
  XEMEM_PANIC("Comm: rank not in any group");
}

u32 Comm::local_idx_of(u32 r) const {
  const Group& g = group_of(r);
  for (u32 i = 0; i < g.ranks.size(); ++i) {
    if (g.ranks[i] == r) return i;
  }
  XEMEM_PANIC("Comm: rank not in its group");
}

bool Comm::same_group(u32 a, u32 b) const {
  return &group_of(a) == &group_of(b);
}

std::vector<u32> Comm::leader_indices_except(u32 skip_rank) const {
  std::vector<u32> out;
  for (const auto& g : groups_) {
    if (g.ranks[0] != skip_rank) out.push_back(g.ranks[0]);
  }
  return out;
}

Algo Comm::resolve(OpKind op, u64 bytes, Algo override_algo) const {
  Algo a = override_algo != Algo::automatic ? override_algo : cfg_.algo;
  if (a == Algo::automatic) {
    a = choose(op, size_, static_cast<u32>(groups_.size()), bytes);
  }
  return a;
}

// -------------------------------------------------------- flat algorithms

sim::Task<Result<void>> Comm::flat_barrier(OpCtx& ctx) {
  const u64 s = next_seq();
  if (auto r = seg_signal(root_, s); !r.ok()) co_return r;
  std::vector<u32> everyone(size_);
  for (u32 i = 0; i < size_; ++i) everyone[i] = i;
  ++ctx.st->cross_phases;
  co_return co_await seg_wait_done(root_, s, everyone, ctx);
}

sim::Task<Result<void>> Comm::flat_bcast(void* data, u64 bytes, u32 root,
                                         OpCtx& ctx) {
  const u64 s = next_seq();
  ++ctx.st->cross_phases;
  if (rank_ == root) {
    if (auto r = co_await seg_publish(root_, s, data, bytes, ctx); !r.ok()) {
      co_return r;
    }
    std::vector<u32> others;
    for (u32 i = 0; i < size_; ++i) {
      if (i != root) others.push_back(i);
    }
    co_return co_await seg_wait_done(root_, s, others, ctx);
  }
  if (auto r = co_await seg_consume(root_, s, root, data, bytes, nullptr, ctx);
      !r.ok()) {
    co_return r;
  }
  co_return seg_signal(root_, s);
}

sim::Task<Result<void>> Comm::flat_reduce(const double* in, double* out,
                                          u64 elems, u32 root, ReduceOp op,
                                          OpCtx& ctx) {
  const u64 bytes = elems * sizeof(double);
  const u64 s = next_seq();
  ++ctx.st->cross_phases;
  if (rank_ == root) {
    if (out != in) std::memmove(out, in, bytes);
    // The root's chain visits every contributor in rank order — this is
    // the serial O(ranks) bottleneck the hierarchical algorithm splits.
    for (u32 r = 0; r < size_; ++r) {
      if (r == root) continue;
      if (auto c = co_await seg_consume(root_, s, r, out, bytes, &op, ctx);
          !c.ok()) {
        co_return c;
      }
    }
    co_return seg_signal(root_, s);
  }
  if (auto r = co_await seg_publish(root_, s, in, bytes, ctx); !r.ok()) {
    co_return r;
  }
  co_return co_await seg_wait_done(root_, s, std::vector<u32>(1, root), ctx);
}

sim::Task<Result<void>> Comm::flat_allgather(const void* in, u64 bytes_per_rank,
                                             void* out, OpCtx& ctx) {
  const u64 s = next_seq();
  ++ctx.st->cross_phases;
  if (auto r = co_await seg_publish(root_, s, in, bytes_per_rank, ctx); !r.ok()) {
    co_return r;
  }
  auto* dst = static_cast<u8*>(out);
  std::memcpy(dst + static_cast<u64>(rank_) * bytes_per_rank, in, bytes_per_rank);
  // Pull peers starting after my own rank so concurrent pulls spread
  // across source slots instead of all draining rank 0 first.
  for (u32 step = 1; step < size_; ++step) {
    const u32 r = (rank_ + step) % size_;
    if (auto c = co_await seg_consume(root_, s, r,
                                      dst + static_cast<u64>(r) * bytes_per_rank,
                                      bytes_per_rank, nullptr, ctx);
        !c.ok()) {
      co_return c;
    }
  }
  if (auto r = seg_signal(root_, s); !r.ok()) co_return r;
  std::vector<u32> everyone(size_);
  for (u32 i = 0; i < size_; ++i) everyone[i] = i;
  co_return co_await seg_wait_done(root_, s, everyone, ctx);
}

// ------------------------------------------------------------- public ops

template <typename F>
sim::Task<Result<void>> Comm::run_op(OpKind kind, u64 bytes, Algo algo, F body) {
  (void)bytes;
  (void)algo;
  OpStats& st = stats_.of(kind);
  if (finalized_) {
    ++st.failures;
    co_return Errc::invalid_argument;
  }
  if (auto s = check_status(); !s.ok()) {
    ++st.failures;
    co_return s;
  }
  OpCtx ctx{shm::Deadline(cfg_.timeout), &st};
  const sim::TimePoint t0 = sim::now();
  Result<void> r = co_await body(ctx);
  if (r.ok()) {
    ++st.ops;
    st.latency_ns.add(static_cast<double>(sim::now() - t0));
  } else {
    ++st.failures;
  }
  co_return r;
}

sim::Task<Result<void>> Comm::barrier(Algo algo) {
  const Algo a = resolve(OpKind::barrier, 0, algo);
  return run_op(OpKind::barrier, 0, a,
                [this, a](OpCtx& ctx) -> sim::Task<Result<void>> {
                  if (a == Algo::hierarchical) co_return co_await hier_barrier(ctx);
                  co_return co_await flat_barrier(ctx);
                });
}

sim::Task<Result<void>> Comm::bcast(void* data, u64 bytes, u32 root, Algo algo) {
  const Algo a = resolve(OpKind::bcast, bytes, algo);
  return run_op(
      OpKind::bcast, bytes, a,
      [this, a, data, bytes, root](OpCtx& ctx) -> sim::Task<Result<void>> {
        if (root >= size_ || bytes > cfg_.slot_bytes) {
          co_return Errc::invalid_argument;
        }
        if (bytes == 0 || size_ == 1) co_return Result<void>{};
        if (a == Algo::hierarchical) {
          co_return co_await hier_bcast(data, bytes, root, ctx);
        }
        co_return co_await flat_bcast(data, bytes, root, ctx);
      });
}

sim::Task<Result<void>> Comm::reduce(const double* in, double* out, u64 elems,
                                     u32 root, ReduceOp op, Algo algo) {
  const u64 bytes = elems * sizeof(double);
  const Algo a = resolve(OpKind::reduce, bytes, algo);
  return run_op(
      OpKind::reduce, bytes, a,
      [this, a, in, out, elems, root, op](OpCtx& ctx) -> sim::Task<Result<void>> {
        const u64 b = elems * sizeof(double);
        if (root >= size_ || b > cfg_.slot_bytes) co_return Errc::invalid_argument;
        if (elems == 0) co_return Result<void>{};
        if (size_ == 1) {
          if (out != in) std::memmove(out, in, b);
          co_return Result<void>{};
        }
        if (a == Algo::hierarchical) {
          co_return co_await hier_reduce(in, out, elems, root, op, ctx);
        }
        co_return co_await flat_reduce(in, out, elems, root, op, ctx);
      });
}

sim::Task<Result<void>> Comm::allreduce(const double* in, double* out, u64 elems,
                                        ReduceOp op, Algo algo) {
  const u64 bytes = elems * sizeof(double);
  const Algo a = resolve(OpKind::allreduce, bytes, algo);
  return run_op(
      OpKind::allreduce, bytes, a,
      [this, a, in, out, elems, op](OpCtx& ctx) -> sim::Task<Result<void>> {
        const u64 b = elems * sizeof(double);
        if (b > cfg_.slot_bytes) co_return Errc::invalid_argument;
        if (elems == 0) co_return Result<void>{};
        if (size_ == 1) {
          if (out != in) std::memmove(out, in, b);
          co_return Result<void>{};
        }
        // reduce-to-0 + bcast-from-0: rank 0 is its enclave's leader, so
        // the hierarchical composition needs no extra root hop.
        if (a == Algo::hierarchical) {
          if (auto r = co_await hier_reduce(in, out, elems, 0, op, ctx); !r.ok()) {
            co_return r;
          }
          co_return co_await hier_bcast(out, b, 0, ctx);
        }
        if (auto r = co_await flat_reduce(in, out, elems, 0, op, ctx); !r.ok()) {
          co_return r;
        }
        co_return co_await flat_bcast(out, b, 0, ctx);
      });
}

sim::Task<Result<void>> Comm::allgather(const void* in, u64 bytes_per_rank,
                                        void* out, Algo algo) {
  const Algo a = resolve(OpKind::allgather, bytes_per_rank, algo);
  return run_op(
      OpKind::allgather, bytes_per_rank, a,
      [this, a, in, bytes_per_rank, out](OpCtx& ctx) -> sim::Task<Result<void>> {
        if (bytes_per_rank > cfg_.slot_bytes) co_return Errc::invalid_argument;
        if (bytes_per_rank == 0) co_return Result<void>{};
        if (size_ == 1) {
          std::memcpy(out, in, bytes_per_rank);
          co_return Result<void>{};
        }
        if (a == Algo::hierarchical) {
          co_return co_await hier_allgather(in, bytes_per_rank, out, ctx);
        }
        co_return co_await flat_allgather(in, bytes_per_rank, out, ctx);
      });
}

// --------------------------------------------------------------- teardown

sim::Task<Result<void>> Comm::finalize() {
  if (finalized_) co_return Result<void>{};
  const bool healthy = root_.valid() && check_status().ok() && seq_ >= 3;
  if (healthy) {
    // Quiesce: no rank tears its mappings down while another is still
    // inside an operation. Best-effort — a dead member must not wedge us.
    OpStats scratch;
    OpCtx ctx{shm::Deadline(cfg_.timeout), &scratch};
    (void)co_await flat_barrier(ctx);
  }
  finalized_ = true;

  Result<void> worst{};
  auto teardown = [&](Seg& seg) -> sim::Task<void> {
    if (seg.attached) {
      auto d = co_await m_.kernel->xpmem_detach(*m_.proc, seg.att);
      if (!d.ok()) worst = d;
      auto rel = co_await m_.kernel->xpmem_release(seg.grant);
      if (!rel.ok()) worst = rel;
      seg.attached = false;
    }
    if (seg.exported) {
      // Remove succeeds only once every attacher detached; poll busy.
      shm::Deadline dl(cfg_.timeout);
      for (;;) {
        auto rm = co_await m_.kernel->xpmem_remove(*m_.proc, seg.segid);
        if (rm.ok()) break;
        if (rm.error() != Errc::busy || dl.expired()) {
          worst = rm;
          break;
        }
        co_await sim::delay(cfg_.poll_interval);
      }
      seg.exported = false;
    }
  };
  co_await teardown(local_);
  co_await teardown(root_);
  co_return worst;
}

// Explicit instantiation not needed: run_op is used only in this TU and
// hierarchical.cpp contains no run_op calls.

}  // namespace xemem::coll
