// Cross-enclave collective operations over XEMEM shared memory.
//
// A Comm is an ordered group of processes — spread across arbitrary
// enclaves of one node — that communicates exclusively through shared
// segments, the only channel the paper's composed applications have
// (section 6.1). Bootstrap needs nothing but the XEMEM name service: rank
// 0 exports one *control segment* under the communicator's name; every
// rank discovers it by name, attaches, publishes its enclave identity in
// the member table, and derives the topology (which ranks share an
// enclave) from the table. No out-of-band channel exists at any point.
//
// Every operation — barrier, bcast, reduce, allreduce, allgather — comes
// in two algorithms:
//
//  * flat          — all ranks operate directly on the control segment:
//                    one slot and a few control words per rank, everyone
//                    polls the same control page. Optimal for small
//                    groups and tiny payloads.
//  * hierarchical  — the XHC shape: the lowest rank in each enclave is
//                    that enclave's *leader*; members exchange with their
//                    leader over an enclave-local segment (intra phase),
//                    leaders exchange over their XEMEM attachments to the
//                    control segment (cross phase), then fan back out.
//                    Per-enclave leaders reduce their members in
//                    parallel, so the serial chain at the root shrinks
//                    from O(ranks) to O(enclaves).
//
// Large payloads move in chunks (CollConfig::chunk_bytes): a consumer
// overlaps fetching chunk k+1 (socket bandwidth) with reducing chunk k
// (CPU), so reduction compute hides copy cost.
//
// Progress words use *sequence-stamped* publishing: every segment-level
// sub-operation consumes one communicator-wide sequence number, and each
// single-writer control word is stamped (seq << 20) | progress. Stamps
// are strictly monotonic, so no control word ever needs resetting and no
// reset barrier exists — but all ranks must issue the same collectives in
// the same order (MPI semantics).
//
// Failure semantics: every wait is bounded by CollConfig::timeout. A rank
// that times out (e.g. a member's enclave crash()ed mid-operation —
// survivors cannot observe the death directly, exactly as in the paper's
// polling-only world) posts the error into the control segment's status
// word and returns Errc::unreachable; every other rank fails fast when it
// next polls. A posted status is sticky: the communicator is dead and
// every later operation fails immediately.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "collectives/reduce_ops.hpp"
#include "collectives/stats.hpp"
#include "collectives/tuning.hpp"
#include "xemem/shm_sync.hpp"
#include "xemem/system.hpp"

namespace xemem::coll {

/// Per-communicator policy knobs.
struct CollConfig {
  /// Per-rank staging slot: bounds the largest single payload (bcast /
  /// reduce: message bytes; allgather: ranks * bytes_per_rank).
  u64 slot_bytes{256_KiB};
  /// Pipeline granularity for chunked data movement.
  u64 chunk_bytes{64_KiB};
  /// Control-word polling cadence.
  sim::Duration poll_interval{20'000};  // 20 us
  /// Bound on every wait inside one operation; expiry fails the
  /// collective with Errc::unreachable (the member-crash path).
  sim::Duration timeout{2'000'000'000ull};  // 2 s
  /// Bound on bootstrap discovery/attach (0: use `timeout`).
  sim::Duration bootstrap_timeout{0};
  /// Algorithm policy; `automatic` consults the tuning table per call.
  Algo algo{Algo::automatic};
};

class Comm {
 public:
  /// One rank's local resources. @p region is the base VA of
  /// region_bytes() bytes of mapped memory in @p proc, reserved for the
  /// segments this rank may export (rank 0: the control segment; enclave
  /// leaders: their local segment). @p core defaults to the process's
  /// core.
  struct Member {
    XememKernel* kernel{nullptr};
    os::Enclave* os{nullptr};
    os::Process* proc{nullptr};
    hw::Core* core{nullptr};
    Vaddr region{};
  };

  /// Bytes of @p proc memory each rank must reserve for a communicator of
  /// @p size ranks under @p cfg (callers size process images with this).
  static u64 region_bytes(u32 size, const CollConfig& cfg);

  /// Collective constructor: every rank of the group calls create() with
  /// the same @p name, @p size, and @p cfg and its own @p rank; all calls
  /// complete once the group is fully bootstrapped. Fails with
  /// Errc::unreachable if the group does not assemble within the
  /// bootstrap timeout.
  static sim::Task<Result<std::unique_ptr<Comm>>> create(Member m,
                                                         std::string name,
                                                         u32 rank, u32 size,
                                                         CollConfig cfg = {});

  ~Comm() = default;
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  // ------------------------------------------------------------ operations
  //
  // All ranks must call the same operations in the same order (MPI
  // ordering semantics). `algo` overrides the per-communicator policy for
  // one call.

  sim::Task<Result<void>> barrier(Algo algo = Algo::automatic);

  /// Broadcast @p bytes from @p root's @p data into everyone else's.
  sim::Task<Result<void>> bcast(void* data, u64 bytes, u32 root,
                                Algo algo = Algo::automatic);

  /// Element-wise reduction of @p elems doubles; the result lands in
  /// @p out on @p root only (rank order, bit-reproducible).
  sim::Task<Result<void>> reduce(const double* in, double* out, u64 elems,
                                 u32 root, ReduceOp op = ReduceOp::sum,
                                 Algo algo = Algo::automatic);

  /// reduce + redistribution: the result lands in @p out on every rank.
  sim::Task<Result<void>> allreduce(const double* in, double* out, u64 elems,
                                    ReduceOp op = ReduceOp::sum,
                                    Algo algo = Algo::automatic);

  /// Every rank contributes @p bytes_per_rank from @p in; @p out (size *
  /// bytes_per_rank bytes) receives all contributions in rank order.
  sim::Task<Result<void>> allgather(const void* in, u64 bytes_per_rank,
                                    void* out, Algo algo = Algo::automatic);

  /// Orderly teardown: barrier, then detach/release/remove every segment.
  /// Best-effort after a failure (a dead communicator still detaches its
  /// local mappings).
  sim::Task<Result<void>> finalize();

  // ---------------------------------------------------------- introspection

  u32 rank() const { return rank_; }
  u32 size() const { return size_; }
  const std::string& name() const { return name_; }
  u32 enclave_count() const { return static_cast<u32>(groups_.size()); }
  bool is_leader() const { return leader_; }
  /// Ranks sharing this rank's enclave, in rank order (self included).
  const std::vector<u32>& group_ranks() const {
    return groups_[my_group_].ranks;
  }
  const CommStats& stats() const { return stats_; }
  const CollConfig& config() const { return cfg_; }
  /// Algorithm the tuning policy would pick for @p op at @p bytes.
  Algo resolve(OpKind op, u64 bytes, Algo override_algo) const;
  /// Sticky communicator status (Errc::ok while healthy).
  Errc status() const;

 private:
  Comm(Member m, std::string name, u32 rank, u32 size, CollConfig cfg);

  /// One enclave's ranks (rank order; ranks[0] is the leader).
  struct Group {
    u64 enclave_id{0};
    std::vector<u32> ranks;
  };

  /// One rank's view of a shared segment (control or enclave-local): the
  /// base VA is this rank's own mapping — export VA for the exporter,
  /// attachment VA for everyone else.
  struct Seg {
    Vaddr base{};
    u32 parties{0};
    u32 my_idx{0};
    u64 header_bytes{0};
    u64 slot_stride{0};
    bool attached{false};
    bool exported{false};
    XpmemAttachment att{};
    XpmemGrant grant{};
    Segid segid{};

    bool valid() const { return parties > 0; }
    u64 member_off(u32 idx, u64 field) const { return 64 + idx * 32ull + field; }
    u64 slot_off(u32 idx) const { return header_bytes + idx * slot_stride; }
  };

  /// Shared state of one operation: the deadline every wait honors and
  /// the stats bucket phases account into.
  struct OpCtx {
    shm::Deadline dl;
    OpStats* st;
  };

  // Segment geometry/layout (see comm.cpp for the word map).
  static u64 seg_bytes(u32 parties, const CollConfig& cfg);

  // Control-word access through this rank's mapping (shm::ShmWord).
  Result<u64> load_word(const Seg& seg, u64 off) const;
  Result<void> store_word(const Seg& seg, u64 off, u64 v);

  // Sticky failure propagation through the control segment's status word.
  Errc post_status(Errc e);
  Result<void> check_status() const;

  // Sequence-stamped primitives (each burns one seq on every rank).
  u64 next_seq() { return seq_++; }
  static u64 stamp(u64 seq, u64 progress) { return (seq << 20) | progress; }
  sim::Task<Result<void>> wait_word(const Seg& seg, u64 off, u64 target,
                                    OpCtx& ctx);
  Result<void> seg_signal(Seg& seg, u64 seq);
  sim::Task<Result<void>> seg_wait_done(Seg& seg, u64 seq,
                                        const std::vector<u32>& parties,
                                        OpCtx& ctx);
  sim::Task<Result<void>> seg_publish(Seg& seg, u64 seq, const void* data,
                                      u64 bytes, OpCtx& ctx);
  sim::Task<Result<void>> seg_consume(Seg& seg, u64 seq, u32 src_idx, void* dst,
                                      u64 bytes, const ReduceOp* rop,
                                      OpCtx& ctx);

  // Pipelined fetch of one chunk (spawned to overlap with reduction).
  struct FetchState;
  static sim::Task<void> fetch_chunk(Comm* c, Seg* seg, u64 contrib_off,
                                     u64 target, Vaddr src_va, FetchState* fs);

  // Flat algorithms (all ranks on the control segment).
  sim::Task<Result<void>> flat_barrier(OpCtx& ctx);
  sim::Task<Result<void>> flat_bcast(void* data, u64 bytes, u32 root,
                                     OpCtx& ctx);
  sim::Task<Result<void>> flat_reduce(const double* in, double* out, u64 elems,
                                      u32 root, ReduceOp op, OpCtx& ctx);
  sim::Task<Result<void>> flat_allgather(const void* in, u64 bytes_per_rank,
                                         void* out, OpCtx& ctx);

  // Hierarchical algorithms (intra phase over local segments, cross phase
  // over the control segment between leaders).
  sim::Task<Result<void>> hier_barrier(OpCtx& ctx);
  sim::Task<Result<void>> hier_bcast(void* data, u64 bytes, u32 root,
                                     OpCtx& ctx);
  sim::Task<Result<void>> hier_reduce(const double* in, double* out, u64 elems,
                                      u32 root, ReduceOp op, OpCtx& ctx);
  sim::Task<Result<void>> hier_allgather(const void* in, u64 bytes_per_rank,
                                         void* out, OpCtx& ctx);

  // Shared op prologue/epilogue (status check, stats, latency). Takes the
  // body by value: coroutine parameters are moved into the frame, so the
  // lambda stays alive while the caller's returned Task is suspended.
  template <typename F>
  sim::Task<Result<void>> run_op(OpKind kind, u64 bytes, Algo algo, F body);

  sim::Task<Result<void>> bootstrap();
  sim::Task<Result<void>> attach_by_name(const std::string& seg_name,
                                         u32 parties, u32 my_idx, Seg* out,
                                         OpCtx& ctx);

  // Topology helpers.
  const Group& group_of(u32 r) const;
  u32 leader_of(u32 r) const { return group_of(r).ranks[0]; }
  u32 local_idx_of(u32 r) const;
  bool same_group(u32 a, u32 b) const;
  std::vector<u32> leader_indices_except(u32 skip_rank) const;

  Member m_;
  std::string name_;
  u32 rank_;
  u32 size_;
  CollConfig cfg_;
  hw::Core* core_{nullptr};

  Seg root_;   // the control segment (parties = size, idx = rank)
  Seg local_;  // this enclave's segment (invalid when the group is just me)

  std::vector<Group> groups_;  // ordered by lowest member rank
  u32 my_group_{0};
  bool leader_{false};

  u64 seq_{0};
  bool finalized_{false};
  CommStats stats_;
};

}  // namespace xemem::coll
