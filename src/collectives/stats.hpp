// Per-communicator introspection counters.
//
// Every collective operation accounts its phases, chunk traffic, and
// control-page polls here, per operation kind, with latency folded into
// the common RunningStats machinery — so the flat-vs-hierarchical
// ablation (bench/collectives_scaling.cpp) is quantitative: the
// hierarchical win shows up as fewer serial reduce chunks at the root and
// more intra-enclave phases, not just a smaller wall-clock number.
#pragma once

#include "common/stats.hpp"
#include "common/types.hpp"

namespace xemem::coll {

enum class OpKind : u8 { barrier, bcast, reduce, allreduce, allgather };
inline constexpr u32 kOpKindCount = 5;

inline const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::barrier: return "barrier";
    case OpKind::bcast: return "bcast";
    case OpKind::reduce: return "reduce";
    case OpKind::allreduce: return "allreduce";
    case OpKind::allgather: return "allgather";
  }
  return "?";
}

/// Counters for one operation kind on one rank's communicator endpoint.
struct OpStats {
  u64 ops{0};           ///< completed operations
  u64 failures{0};      ///< operations that returned an error
  u64 bytes_moved{0};   ///< payload bytes this rank pushed or pulled
  u64 chunks{0};        ///< pipeline chunks this rank pushed or pulled
  u64 polls{0};         ///< control-word polls while waiting
  u64 intra_phases{0};  ///< intra-enclave phases executed
  u64 cross_phases{0};  ///< cross-enclave phases executed
  RunningStats latency_ns;  ///< per-op completion latency on this rank
};

/// All counters for one rank's communicator endpoint.
struct CommStats {
  OpStats op[kOpKindCount];
  u64 attaches{0};        ///< segment attachments made during bootstrap
  u64 cross_attaches{0};  ///< ...of which crossed an enclave boundary
  u64 exports{0};         ///< segments this rank exported
  u64 bootstrap_polls{0};  ///< control-word polls during create()

  OpStats& of(OpKind k) { return op[static_cast<u32>(k)]; }
  const OpStats& of(OpKind k) const { return op[static_cast<u32>(k)]; }

  u64 total_polls() const {
    u64 t = bootstrap_polls;
    for (const auto& o : op) t += o.polls;
    return t;
  }
  u64 total_bytes() const {
    u64 t = 0;
    for (const auto& o : op) t += o.bytes_moved;
    return t;
  }
};

}  // namespace xemem::coll
