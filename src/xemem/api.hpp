// XPMEM-compatible user-level API types (paper Table 1).
//
// The XEMEM API is backwards compatible with SGI/Cray XPMEM so unmodified
// applications run without knowledge of enclave topology:
//
//   xpmem_make    — export an address region, returns a segid
//   xpmem_remove  — withdraw an exported region
//   xpmem_get     — request access to a segid, returns a permission grant
//   xpmem_release — drop a permission grant
//   xpmem_attach  — map (part of) a granted region, returns a local VA
//   xpmem_detach  — unmap an attachment
//
// The operations live on xemem::XememKernel (the per-enclave kernel
// module); these are the value types they exchange with user code.
#pragma once

#include "common/types.hpp"

namespace xemem {

/// Access mode of an export or grant (XPMEM's permit model, reduced to the
/// two modes the kernel interface distinguishes: XPMEM_RDONLY/XPMEM_RDWR).
enum class AccessMode : u8 { read_only, read_write };

/// Permission grant returned by xpmem_get: the right to attach (parts of)
/// the segment. Carries the region size so callers can bound attachments,
/// and the granted access mode (attachments under a read-only grant map
/// without write permission — enforced at the PTE level).
struct XpmemGrant {
  Segid segid{};
  u64 size{0};
  AccessMode mode{AccessMode::read_write};

  bool valid() const { return segid.valid(); }
};

/// A live attachment returned by xpmem_attach.
///
/// XPMEM permits byte-granular offsets: the kernel maps whole pages but
/// `va` points at the requested byte. `map_base` is the page-aligned
/// mapping start (what detach unmaps); `va - map_base` is the sub-page
/// offset of the request.
struct XpmemAttachment {
  Segid segid{};
  Vaddr va{};        ///< address of the requested offset (may be unaligned)
  Vaddr map_base{};  ///< page-aligned base of the underlying mapping
  u64 pages{0};
  EnclaveId owner{EnclaveId::invalid()};
  u64 owner_handle{0};  ///< owner-side pin record (sent back on detach)
  bool local{false};    ///< owner is in the attacher's own enclave

  u64 bytes() const { return pages * kPageSize; }
};

}  // namespace xemem
