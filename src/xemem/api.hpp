// XPMEM-compatible user-level API types (paper Table 1).
//
// The XEMEM API is backwards compatible with SGI/Cray XPMEM so unmodified
// applications run without knowledge of enclave topology:
//
//   xpmem_make    — export an address region, returns a segid
//   xpmem_remove  — withdraw an exported region
//   xpmem_get     — request access to a segid, returns a permission grant
//   xpmem_release — drop a permission grant
//   xpmem_attach  — map (part of) a granted region, returns a local VA
//   xpmem_detach  — unmap an attachment
//
// The operations live on xemem::XememKernel (the per-enclave kernel
// module); these are the value types they exchange with user code.
#pragma once

#include "common/types.hpp"

namespace xemem {

/// Access mode of an export or grant (XPMEM's permit model, reduced to the
/// two modes the kernel interface distinguishes: XPMEM_RDONLY/XPMEM_RDWR).
enum class AccessMode : u8 { read_only, read_write };

/// Permission grant returned by xpmem_get: the right to attach (parts of)
/// the segment. Carries the region size so callers can bound attachments,
/// and the granted access mode (attachments under a read-only grant map
/// without write permission — enforced at the PTE level).
struct XpmemGrant {
  Segid segid{};
  u64 size{0};
  AccessMode mode{AccessMode::read_write};
  u64 cap{0};  ///< capability the grant was issued under (0 = classic permit)

  bool valid() const { return segid.valid(); }
};

/// Rights carried by a capability (Elasticlave/Zeno model). Every field can
/// only be narrowed on derivation — the owner capability minted by
/// xpmem_make holds the widest rights the export allows.
struct CapRights {
  AccessMode access{AccessMode::read_write};
  u64 attach_limit{0};  ///< max concurrent owner-served attaches (0 = unlimited)
  u64 window_off{0};    ///< absolute byte offset of the accessible window
  u64 window_size{0};   ///< window length in bytes (0 = to end of segment)
  bool transferable{true};  ///< usable by enclaves other than the holder
  bool derivable{true};     ///< may mint further-restricted children
};

/// An unforgeable (by convention — ids are sparse in a 64-bit space)
/// reference to a segment plus the rights to use it. The owner mints the
/// root via xpmem_make when capabilities are enabled; cap_derive mints
/// restricted children. `rights` is a client-side snapshot for display;
/// the owner's derivation tree is authoritative on every get/attach.
struct Capability {
  Segid segid{};
  u64 id{0};
  CapRights rights{};

  bool valid() const { return segid.valid() && id != 0; }
};

/// A live attachment returned by xpmem_attach.
///
/// XPMEM permits byte-granular offsets: the kernel maps whole pages but
/// `va` points at the requested byte. `map_base` is the page-aligned
/// mapping start (what detach unmaps); `va - map_base` is the sub-page
/// offset of the request.
struct XpmemAttachment {
  Segid segid{};
  Vaddr va{};        ///< address of the requested offset (may be unaligned)
  Vaddr map_base{};  ///< page-aligned base of the underlying mapping
  u64 pages{0};
  EnclaveId owner{EnclaveId::invalid()};
  u64 owner_handle{0};  ///< owner-side pin record (sent back on detach)
  bool local{false};    ///< owner is in the attacher's own enclave

  u64 bytes() const { return pages * kPageSize; }
};

}  // namespace xemem
