// XEMEM cross-enclave wire protocol.
//
// Kernel-level messages exchanged between enclave OSes (paper sections
// 3.2, 4.2, 4.5). Messages either carry one of the XPMEM commands
// (Table 1), the routing-protocol control traffic (name-server discovery
// and enclave-ID allocation), or the name-space discoverability queries.
//
// Every message is routed by (src, dst) enclave IDs through the
// hierarchical topology; responses correlate to requests via req_id.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "mm/pfn_list.hpp"

namespace xemem {

enum class Cmd : u8 {
  // Routing protocol (section 3.2).
  ping_ns,           ///< broadcast: "do you know a path to the name server?"
  ping_ns_resp,      ///< "yes, through me"
  alloc_enclave_id,  ///< request a unique enclave ID from the name server
  enclave_id_resp,

  // Name space (sections 3.1, 4.2).
  segid_alloc,       ///< request a fresh segid (owner registers a region)
  segid_alloc_resp,
  segid_remove,      ///< owner withdraws a segid
  segid_remove_resp,
  name_lookup,       ///< discoverability: resolve a well-known name -> segid
  name_lookup_resp,
  name_list,         ///< discoverability: enumerate all published names
  name_list_resp,    ///< '\n'-joined names + parallel segid payload

  // Dynamic partitioning (section 3.2): an enclave leaving the system
  // tells the name server to retire its routes and any segids it owned.
  enclave_shutdown,

  // Liveness: one-way lease renewal sent by registered enclaves to the
  // name server. Enclaves whose lease lapses (abrupt crash, severed
  // channel) are garbage-collected by the name server.
  heartbeat,

  // XPMEM commands (Table 1) that cross enclaves.
  get,          ///< request access permission for a segid
  get_resp,     ///< grant (carries region size) or denial
  release,      ///< drop a permission grant
  attach,       ///< request the PFN list for (segid, offset, size)
  attach_resp,  ///< PFN list payload
  detach,       ///< drop an attachment (owner unpins)
  detach_resp,

  // Name-service failover (DESIGN.md §"Name-service failover"): the
  // standby's end-to-end liveness probe, the epoch announcement flooded
  // after a promotion, and the re-registration round in which surviving
  // owners replay their exports to rebuild the registry.
  ns_probe,       ///< standby -> name server: "are you alive?"
  ns_probe_resp,
  ns_announce,    ///< one-way flood: "epoch msg.epoch is live, NS is msg.src"
  reregister,     ///< survivor replays locally-owned exports to the new NS
  reregister_resp,

  // Sharded name service (DESIGN.md §6c): the quorum-replication protocol
  // among a shard's replica group, plus neighbor route learning.
  shard_replicate,       ///< primary -> follower: append one op at msg.offset
  shard_replicate_resp,
  shard_sync,            ///< primary -> lagging follower: log suffix catch-up
  shard_sync_resp,
  shard_vote,            ///< candidate -> peer: promise epoch msg.shard_epoch?
  shard_vote_resp,       ///< promise carries the voter's full op log
  shard_probe,           ///< follower -> primary liveness probe
  shard_probe_resp,
  shard_announce,        ///< one-way: "shard msg.shard epoch msg.shard_epoch
                         ///  is live, primary is msg.src"
  hello,                 ///< one-way: "enclave msg.src is on this channel" —
                         ///  neighbors learn direct routes at registration

  // Capability model (DESIGN.md §9): derivation and revocation are served
  // by the segment owner; cap_revoked is the owner's one-way unmap fan-out
  // to enclaves holding live attachments under a revoked subtree.
  cap_derive,       ///< mint a restricted child of msg.cap (rights in payload)
  cap_derive_resp,  ///< minted child id in resp.cap
  cap_revoke,       ///< revoke msg.cap and its entire derivation subtree
  cap_revoke_resp,
  cap_revoked,      ///< one-way owner -> attacher: caps+handles in payload
                    ///  are dead; unmap locally, drop caches
};

const char* cmd_name(Cmd c);

/// A kernel-level cross-enclave message.
struct Message {
  Cmd cmd{};
  EnclaveId src{EnclaveId::invalid()};
  EnclaveId dst{EnclaveId::invalid()};
  u64 req_id{0};
  /// Name-service epoch the sender believes is current. The system boots
  /// in epoch 1; every name-server promotion bumps it. The name server
  /// rejects older epochs with Errc::stale_epoch (retryable), and any node
  /// seeing a newer epoch adopts it and re-resolves its NS direction.
  u64 epoch{1};
  /// Sharded name service (DESIGN.md §6c): registry shard this message is
  /// bound for, and the per-shard epoch the sender believes is current.
  /// shard_epoch == 0 marks classic (unsharded) traffic; replicas reject
  /// older shard epochs with Errc::stale_epoch and rejections carry the
  /// current one so clients re-resolve the shard's primary.
  u32 shard{0};
  u64 shard_epoch{0};

  Segid segid{};
  u64 offset{0};
  u64 size{0};
  u8 access{1};  ///< requested/granted AccessMode (0 = read-only, 1 = rw)
  /// Capability id presented with get/attach/cap_derive (0 = classic
  /// permit path), or the minted child id on a cap_derive_resp. Validated
  /// owner-side against the segment's derivation tree.
  u64 cap{0};
  Errc status{Errc::ok};

  /// PFN list (attach_resp) or other bulk payload, as raw u64s.
  std::vector<u64> payload;
  /// Extent-compressed PFN payload (attach_resp): runs of physically
  /// contiguous frames at mm::PfnList::kExtentWireBytes each. An attach
  /// response carries its frames either here or flat in `payload`, never
  /// both — the owner picks whichever encoding is smaller (a contiguous
  /// Kitten export is O(1) extents instead of 8 B/page; see §5.4 of the
  /// paper for the per-page overhead this removes from the channel).
  /// Receivers must decode both forms unconditionally so mixed kernel
  /// configurations interoperate.
  std::vector<hw::FrameExtent> extents;
  /// Well-known name for publish/lookup.
  std::string name;

  /// Fixed header size on a channel (command, ids, req ids, status, sizes).
  static constexpr u64 kHeaderBytes = 64;

  /// Bytes this message occupies on a channel.
  u64 wire_bytes() const {
    return kHeaderBytes + payload.size() * sizeof(u64) +
           extents.size() * mm::PfnList::kExtentWireBytes + name.size();
  }

  bool is_response() const {
    switch (cmd) {
      case Cmd::ping_ns_resp:
      case Cmd::enclave_id_resp:
      case Cmd::segid_alloc_resp:
      case Cmd::segid_remove_resp:
      case Cmd::name_lookup_resp:
      case Cmd::name_list_resp:
      case Cmd::get_resp:
      case Cmd::attach_resp:
      case Cmd::detach_resp:
      case Cmd::ns_probe_resp:
      case Cmd::reregister_resp:
      case Cmd::shard_replicate_resp:
      case Cmd::shard_sync_resp:
      case Cmd::shard_vote_resp:
      case Cmd::shard_probe_resp:
      case Cmd::cap_derive_resp:
      case Cmd::cap_revoke_resp:
        return true;
      default:
        return false;
    }
  }

  /// One-way messages have no correlated response: forwarders must not
  /// remember them in their response-retrace tables, and senders never
  /// retry them.
  bool is_one_way() const {
    switch (cmd) {
      case Cmd::release:
      case Cmd::enclave_shutdown:
      case Cmd::heartbeat:
      case Cmd::ns_announce:
      case Cmd::shard_announce:
      case Cmd::hello:
      case Cmd::cap_revoked:
        return true;
      default:
        return false;
    }
  }
};

inline const char* cmd_name(Cmd c) {
  switch (c) {
    case Cmd::ping_ns: return "ping_ns";
    case Cmd::ping_ns_resp: return "ping_ns_resp";
    case Cmd::alloc_enclave_id: return "alloc_enclave_id";
    case Cmd::enclave_shutdown: return "enclave_shutdown";
    case Cmd::heartbeat: return "heartbeat";
    case Cmd::enclave_id_resp: return "enclave_id_resp";
    case Cmd::segid_alloc: return "segid_alloc";
    case Cmd::segid_alloc_resp: return "segid_alloc_resp";
    case Cmd::segid_remove: return "segid_remove";
    case Cmd::segid_remove_resp: return "segid_remove_resp";
    case Cmd::name_lookup: return "name_lookup";
    case Cmd::name_lookup_resp: return "name_lookup_resp";
    case Cmd::name_list: return "name_list";
    case Cmd::name_list_resp: return "name_list_resp";
    case Cmd::get: return "get";
    case Cmd::get_resp: return "get_resp";
    case Cmd::release: return "release";
    case Cmd::attach: return "attach";
    case Cmd::attach_resp: return "attach_resp";
    case Cmd::detach: return "detach";
    case Cmd::detach_resp: return "detach_resp";
    case Cmd::ns_probe: return "ns_probe";
    case Cmd::ns_probe_resp: return "ns_probe_resp";
    case Cmd::ns_announce: return "ns_announce";
    case Cmd::reregister: return "reregister";
    case Cmd::reregister_resp: return "reregister_resp";
    case Cmd::shard_replicate: return "shard_replicate";
    case Cmd::shard_replicate_resp: return "shard_replicate_resp";
    case Cmd::shard_sync: return "shard_sync";
    case Cmd::shard_sync_resp: return "shard_sync_resp";
    case Cmd::shard_vote: return "shard_vote";
    case Cmd::shard_vote_resp: return "shard_vote_resp";
    case Cmd::shard_probe: return "shard_probe";
    case Cmd::shard_probe_resp: return "shard_probe_resp";
    case Cmd::shard_announce: return "shard_announce";
    case Cmd::hello: return "hello";
    case Cmd::cap_derive: return "cap_derive";
    case Cmd::cap_derive_resp: return "cap_derive_resp";
    case Cmd::cap_revoke: return "cap_revoke";
    case Cmd::cap_revoke_resp: return "cap_revoke_resp";
    case Cmd::cap_revoked: return "cap_revoked";
  }
  return "?";
}

/// Segids are epoch-prefixed: the top bits carry the name-service epoch
/// that minted them, the low bits a per-epoch counter. A name server
/// reborn in a later epoch restarts its counter at 1 yet can never
/// re-issue a segid still live from a prior epoch.
constexpr u32 kSegidEpochShift = 48;
constexpr u64 kSegidSeqMask = (1ull << kSegidEpochShift) - 1;

constexpr u64 make_segid_value(u64 epoch, u64 seq) {
  return (epoch << kSegidEpochShift) | seq;
}

constexpr u64 segid_epoch(Segid s) { return s.value() >> kSegidEpochShift; }

/// Sharded name service: a segid's home shard. The minting primary of
/// shard s issues sequence numbers congruent to s (mod the shard count),
/// so segid-keyed commands route back to the shard that minted them
/// without any lookup.
constexpr u32 shard_of_segid(Segid s, u32 nshards) {
  return static_cast<u32>((s.value() & kSegidSeqMask) % nshards);
}

/// Well-known names hash to their shard (FNV-1a), so publish and search
/// agree on the home shard without consulting any directory.
inline u32 shard_of_name(const std::string& name, u32 nshards) {
  u64 h = 14695981039346656037ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<u32>(h % nshards);
}

}  // namespace xemem
