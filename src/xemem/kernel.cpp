#include "xemem/kernel.hpp"

#include <algorithm>
#include <map>

#include "common/log.hpp"
#include "sim/engine.hpp"

namespace xemem {

namespace {
// Globally unique request ids (the simulator is single-threaded; a plain
// counter suffices and keeps intermediate forwarding tables collision-free
// even before enclaves hold ids).
u64 g_req_counter = 1;

// Response command correlated to a request command (for rejections built
// before the request is dispatched, e.g. the stale-epoch guard).
Cmd response_cmd(Cmd c) {
  switch (c) {
    case Cmd::ping_ns: return Cmd::ping_ns_resp;
    case Cmd::alloc_enclave_id: return Cmd::enclave_id_resp;
    case Cmd::segid_alloc: return Cmd::segid_alloc_resp;
    case Cmd::segid_remove: return Cmd::segid_remove_resp;
    case Cmd::name_lookup: return Cmd::name_lookup_resp;
    case Cmd::name_list: return Cmd::name_list_resp;
    case Cmd::get: return Cmd::get_resp;
    case Cmd::attach: return Cmd::attach_resp;
    case Cmd::detach: return Cmd::detach_resp;
    case Cmd::ns_probe: return Cmd::ns_probe_resp;
    case Cmd::reregister: return Cmd::reregister_resp;
    case Cmd::shard_replicate: return Cmd::shard_replicate_resp;
    case Cmd::shard_sync: return Cmd::shard_sync_resp;
    case Cmd::shard_vote: return Cmd::shard_vote_resp;
    case Cmd::shard_probe: return Cmd::shard_probe_resp;
    case Cmd::cap_derive: return Cmd::cap_derive_resp;
    case Cmd::cap_revoke: return Cmd::cap_revoke_resp;
    default: return c;
  }
}
}  // namespace

// Registry commands a client stamps with (shard, shard_epoch); everything
// else carrying shard fields is the replica group's internal protocol.
bool XememKernel::is_shard_client_cmd(Cmd c) {
  switch (c) {
    case Cmd::segid_alloc:
    case Cmd::segid_remove:
    case Cmd::name_lookup:
    case Cmd::name_list:
    case Cmd::get:
    case Cmd::attach:
    case Cmd::detach:
    case Cmd::release:
    case Cmd::cap_derive:
    case Cmd::cap_revoke:
    case Cmd::heartbeat:
      return true;
    default:
      return false;
  }
}

// Capability-protocol commands served by the segment's owner enclave; they
// route exactly like get/attach (name server or home shard resolves the
// owner, then forwards).
bool XememKernel::is_cap_cmd(Cmd c) {
  return c == Cmd::cap_derive || c == Cmd::cap_revoke;
}

bool XememKernel::is_shard_service_cmd(Cmd c) {
  switch (c) {
    case Cmd::shard_replicate:
    case Cmd::shard_sync:
    case Cmd::shard_vote:
    case Cmd::shard_probe:
    case Cmd::shard_announce:
      return true;
    default:
      return false;
  }
}

void XememKernel::encode_shard_ops(const std::vector<ShardOp>& ops, Message* m) {
  bool first = m->name.empty() && m->payload.empty();
  for (const auto& op : ops) {
    m->payload.push_back(static_cast<u64>(op.kind));
    m->payload.push_back(op.epoch);
    m->payload.push_back(op.segid);
    m->payload.push_back(op.size);
    m->payload.push_back(op.owner);
    if (!first) m->name += '\n';
    m->name += op.name;
    first = false;
  }
}

std::vector<XememKernel::ShardOp> XememKernel::decode_shard_ops(const Message& m) {
  std::vector<ShardOp> ops;
  const u64 n = m.payload.size() / 5;
  ops.reserve(n);
  size_t pos = 0;
  for (u64 i = 0; i < n; ++i) {
    ShardOp op;
    op.kind = static_cast<ShardOp::Kind>(m.payload[5 * i]);
    op.epoch = m.payload[5 * i + 1];
    op.segid = m.payload[5 * i + 2];
    op.size = m.payload[5 * i + 3];
    op.owner = m.payload[5 * i + 4];
    const size_t next = m.name.find('\n', pos);
    op.name = m.name.substr(pos, next - pos);
    pos = next == std::string::npos ? m.name.size() : next + 1;
    ops.push_back(std::move(op));
  }
  return ops;
}

bool XememKernel::same_shard_op(const ShardOp& a, const ShardOp& b) {
  return a.kind == b.kind && a.epoch == b.epoch && a.segid == b.segid &&
         a.owner == b.owner;
}

XememKernel::XememKernel(os::Enclave& os, bool is_name_server, KernelConfig cfg)
    : os_(os), is_ns_(is_name_server), cfg_(cfg) {
  if (cfg_.request_timeout == 0) cfg_.request_timeout = kRequestTimeout;
  if (cfg_.ping_timeout == 0) cfg_.ping_timeout = kPingTimeout;
  if (cfg_.lease_duration > 0) {
    // A heartbeat period at or beyond the lease duration would let healthy
    // enclaves flap in and out of the registry: normalize the
    // misconfiguration at construction instead of silently flapping.
    if (cfg_.heartbeat_period >= cfg_.lease_duration) {
      XLOG_WARN("xemem",
                "%s: heartbeat_period >= lease_duration; normalizing to "
                "lease_duration / 3",
                os_.name().c_str());
      cfg_.heartbeat_period = 0;
    }
    if (cfg_.heartbeat_period == 0) {
      cfg_.heartbeat_period = std::max<sim::Duration>(cfg_.lease_duration / 3, 1);
    }
  }
  if (cfg_.ns_probe_period == 0) {
    cfg_.ns_probe_period =
        cfg_.lease_duration > 0
            ? std::max<sim::Duration>(cfg_.lease_duration / 3, 1)
            : 10'000'000ull;  // 10 ms
  }
  if (cfg_.ns_recovery_grace == 0) {
    cfg_.ns_recovery_grace =
        std::max<sim::Duration>(cfg_.lease_duration, 2 * cfg_.request_timeout);
  }
  // A forwarder entry must outlive every legitimate retry of its request.
  if (cfg_.fwd_ttl == 0) {
    cfg_.fwd_ttl = 2 * (cfg_.request_timeout + cfg_.backoff_max);
  }
  if (cfg_.dedup_cache_cap == 0) cfg_.dedup_cache_cap = 1;
  // A dedup entry idle longer than the worst-case retry window can no
  // longer be hit legitimately; the same bound as fwd_ttl.
  if (cfg_.dedup_ttl == 0) {
    cfg_.dedup_ttl = 2 * (cfg_.request_timeout + cfg_.backoff_max);
  }
  if (!cfg_.ns_shards.empty()) {
    if (cfg_.quorum_timeout == 0) cfg_.quorum_timeout = cfg_.request_timeout;
    if (cfg_.partition_grace == 0) cfg_.partition_grace = cfg_.ns_recovery_grace;
    if (cfg_.shard_probe_period == 0) {
      cfg_.shard_probe_period = cfg_.ns_probe_period;
    }
    if (cfg_.shard_probe_misses == 0) cfg_.shard_probe_misses = 1;
    for (const auto& group : cfg_.ns_shards) {
      XEMEM_ASSERT_MSG(!group.empty(), "empty shard replica group");
      for (u64 e : group) {
        XEMEM_ASSERT_MSG(e != 0, "enclave 0 (root) cannot host a shard");
      }
    }
    shard_epoch_.assign(cfg_.ns_shards.size(), 1);
  }
  if (cfg_.capabilities) {
    if (cfg_.cap_table_cap == 0) cfg_.cap_table_cap = 256;
    if (cfg_.cap_accounting_cap == 0) cfg_.cap_accounting_cap = 1024;
    revoked_caps_.set_cap(cfg_.cap_accounting_cap);
    revoked_handles_.set_cap(cfg_.cap_accounting_cap);
    cap_accounting_.set_cap(cfg_.cap_accounting_cap);
  }
}

void XememKernel::add_channel(ChannelEndpoint* ep) {
  channels_.push_back(ep);
  // Channels appear at co-kernel/VM boot time, which may be long after
  // this kernel started (dynamic repartitioning): service it immediately.
  if (started_) sim::Engine::current()->spawn(service_loop(ep));
}

void XememKernel::start() {
  XEMEM_ASSERT(!started_);
  started_ = true;
  auto* eng = sim::Engine::current();
  for (auto* ep : channels_) eng->spawn(service_loop(ep));
  if (is_ns_) {
    os_.set_id(EnclaveId{0});
    registered_.set();
  } else {
    eng->spawn(discovery());
  }
  if (cfg_.lease_duration > 0) {
    // Liveness machinery is opt-in (KernelConfig::lease_duration): these
    // actors run for the kernel's whole lifetime, so enabling them makes
    // Engine::run_until_idle() unsuitable for the enclosing experiment.
    eng->spawn(is_ns_ ? lease_reaper() : heartbeat_actor());
  }
  if (cfg_.ns_failover && !is_ns_) eng->spawn(standby_actor());
  if (sharding_enabled()) {
    eng->spawn(shard_bootstrap_actor());
    eng->spawn(hello_actor());
  }
}

void XememKernel::crash() {
  // A name-server crash is a defined failure mode: with a standby
  // configured the epoch machinery recovers (DESIGN.md §"Name-service
  // failover"); without one, NS-bound requests fail with no_name_server
  // once discovery exhausts its probe rounds.
  if (crashed_) return;
  crashed_ = true;
  stopped_ = true;
  // The dying OS's memory is reclaimed by the node: every frame pinned on
  // behalf of attachers is released. Attachments in surviving enclaves
  // keep their (now dangling) mappings until they detach, exactly like an
  // abrupt peer death on real hardware.
  for (auto& [h, rec] : pins_) unpin_frames(rec.frames.extents());
  pins_.clear();
  exports_.clear();
  pending_fwd_.clear();
  fwd_log_.clear();
  // Attach fast-path caches die with the kernel: memoized walks reference
  // exports that no longer exist, learned owner routes will be retired by
  // lease expiry, and the reuse entries' owner-side pins are orphaned just
  // like any attachment whose attacher dies without detaching.
  walk_cache_.clear();
  walk_fifo_.clear();
  owner_cache_.clear();
  owner_fifo_.clear();
  attach_cache_.clear();
  // Capability state dies with the kernel: derivation trees describe
  // exports that no longer exist, and the attacher-side mapping records
  // point into an OS being reclaimed.
  cap_trees_.clear();
  cap_maps_.clear();
  revoked_caps_.clear();
  revoked_handles_.clear();
  // A dying name server takes its registry with it; survivors hold the
  // durable truth (their own exports) and replay it to a promoted standby.
  ns_segids_.clear();
  ns_names_.clear();
  ns_leases_.clear();
  XLOG_WARN("xemem", "%s: enclave crashed (abrupt)", os_.name().c_str());
}

sim::Task<void> XememKernel::wait_registered() { co_await registered_.wait(); }

sim::Task<Result<void>> XememKernel::shutdown() {
  XEMEM_ASSERT_MSG(!is_ns_, "the name-server enclave cannot shut down");
  for (const auto& [sid, rec] : exports_) {
    if (rec.attachments > 0) co_return Errc::busy;
  }
  // Withdraw every export from the global name space.
  std::vector<u64> sids;
  sids.reserve(exports_.size());
  for (const auto& [sid, rec] : exports_) sids.push_back(sid);
  for (u64 sid : sids) {
    Message req;
    req.cmd = Cmd::segid_remove;
    req.dst = EnclaveId{0};
    req.segid = Segid{sid};
    if (sharding_enabled()) {
      req.shard = shard_of_segid(req.segid,
                                 static_cast<u32>(cfg_.ns_shards.size()));
      req.shard_epoch = shard_believed_epoch(req.shard);
    }
    auto resp = co_await request(std::move(req));
    if (!resp.ok()) co_return resp.error();
    exports_.erase(sid);
  }
  // Tell the name server to retire this enclave (one-way; also retires any
  // segids registered but not locally tracked).
  Message bye;
  bye.cmd = Cmd::enclave_shutdown;
  bye.dst = EnclaveId{0};
  bye.src = id();
  bye.req_id = g_req_counter++;
  bye.epoch = ns_epoch_;
  ChannelEndpoint* via = route_for(bye.dst);
  if (via != nullptr) co_await via->send(std::move(bye));
  stopped_ = true;
  walk_cache_.clear();
  walk_fifo_.clear();
  owner_cache_.clear();
  owner_fifo_.clear();
  attach_cache_.clear();
  co_return Result<void>{};
}

// --------------------------------------------------------------- discovery

sim::Task<void> XememKernel::discovery() {
  // Paper section 3.2: broadcast on every channel until some neighbor
  // responds that it knows a path to the name server; then request an
  // enclave ID through that channel. Probes are single-shot (retrying a
  // probe on a dead link would only stall the sweep; the outer loop
  // already re-probes every channel with backoff). Sweeps are bounded by
  // discovery_max_rounds: a fully partitioned enclave (or one orphaned by
  // a standby-less name-server death) must not retry into the void
  // forever — it surfaces a terminal state instead, and a later
  // ns_announce (failover) revives it.
  if (discovering_) co_return;
  discovering_ = true;
  u32 rounds = 0;
  while (!crashed_ && !stopped_ && !is_ns_) {
    while (ns_channel_ == nullptr) {
      if (crashed_ || stopped_ || is_ns_) {
        discovering_ = false;
        co_return;
      }
      const std::vector<ChannelEndpoint*> eps = channels_;  // request() suspends
      for (auto* ep : eps) {
        Message ping;
        ping.cmd = Cmd::ping_ns;
        auto resp = co_await request(std::move(ping), ep, cfg_.ping_timeout,
                                     /*max_retries=*/0);
        if (resp.ok() && resp.value().status == Errc::ok) {
          ns_channel_ = ep;
          break;
        }
      }
      if (ns_channel_ != nullptr) break;
      if (cfg_.discovery_max_rounds != 0 &&
          ++rounds >= cfg_.discovery_max_rounds) {
        ns_lost_ = true;
        // Unblock wait_registered() waiters; the id stays invalid and
        // registration_failed() reports the terminal state.
        registered_.set();
        XLOG_WARN("xemem",
                  "%s: discovery exhausted %u probe rounds with no path to a "
                  "name server",
                  os_.name().c_str(), rounds);
        discovering_ = false;
        co_return;
      }
      co_await sim::delay(200'000 /*200us backoff*/);
    }

    // Re-discovery after a route loss keeps the already-allocated ID; only
    // first-time registration allocates one.
    if (id().valid()) break;

    Message alloc;
    alloc.cmd = Cmd::alloc_enclave_id;
    alloc.dst = EnclaveId{0};
    auto resp = co_await request(std::move(alloc), ns_channel_);
    if (resp.ok() && resp.value().status == Errc::ok) {
      os_.set_id(EnclaveId{resp.value().payload.at(0)});
      XLOG_DEBUG("xemem", "%s registered as enclave %llu", os_.name().c_str(),
                 static_cast<unsigned long long>(id().value()));
      registered_.set();
      break;
    }
    // The name server went silent (or rejected us) mid-registration:
    // forget the direction and re-probe, still bounded by the round limit.
    ns_channel_ = nullptr;
    if (cfg_.discovery_max_rounds != 0 && ++rounds >= cfg_.discovery_max_rounds) {
      ns_lost_ = true;
      registered_.set();
      XLOG_WARN("xemem", "%s: registration exhausted its probe rounds",
                os_.name().c_str());
      break;
    }
  }
  discovering_ = false;
}

// Lease renewal: while the enclave lives, the name server hears from it at
// least every heartbeat_period (default lease_duration / 3), so a healthy
// enclave is never garbage-collected even when it is otherwise idle.
sim::Task<void> XememKernel::heartbeat_actor() {
  co_await registered_.wait();
  while (!stopped_ && !crashed_ && !is_ns_) {  // a promoted standby stops
    Message hb;
    hb.cmd = Cmd::heartbeat;
    hb.dst = EnclaveId{0};
    hb.src = id();
    hb.req_id = g_req_counter++;
    hb.epoch = ns_epoch_;
    ChannelEndpoint* via = route_for(hb.dst);
    if (via != nullptr) {
      ++stats_.heartbeats_sent;
      co_await via->send(std::move(hb));  // one-way
    }
    // Sharded registry: leases live on the shard replicas, so the renewal
    // fans out to every replica of every shard (not just a primary —
    // followers must not garbage-collect an idle owner after an election
    // just because the renewal raced the epoch bump).
    if (sharding_enabled() && cfg_.batched_heartbeats) {
      // Batched renewal: one message per peer enclave per tick, carrying
      // in the payload every additional shard that peer hosts a replica
      // of. Ordered map: deterministic send order across runs.
      std::map<u64, std::vector<u64>> by_peer;
      for (u32 s = 0; s < cfg_.ns_shards.size(); ++s) {
        for (u64 peer : cfg_.ns_shards[s]) {
          if (peer == id().value()) {
            // We host this replica ourselves: renew in place.
            auto it = shard_replicas_.find(s);
            if (it != shard_replicas_.end()) {
              auto l = it->second->leases.find(id().value());
              if (l != it->second->leases.end()) {
                l->second = sim::now() + cfg_.lease_duration;
              }
            }
            continue;
          }
          by_peer[peer].push_back(s);
        }
      }
      for (auto& [peer, shards] : by_peer) {
        if (stopped_ || crashed_) break;
        Message shb;
        shb.cmd = Cmd::heartbeat;
        shb.dst = EnclaveId{peer};
        shb.src = id();
        shb.req_id = g_req_counter++;
        shb.epoch = ns_epoch_;
        shb.shard = static_cast<u32>(shards.front());
        shb.shard_epoch = shard_believed_epoch(static_cast<u32>(shards.front()));
        shb.payload.assign(shards.begin() + 1, shards.end());
        ChannelEndpoint* out = route_for(shb.dst);
        if (out != nullptr) {
          ++stats_.heartbeats_sent;
          co_await out->send(std::move(shb));  // one-way
        }
      }
    } else if (sharding_enabled()) {
      for (u32 s = 0; s < cfg_.ns_shards.size(); ++s) {
        if (stopped_ || crashed_) break;
        for (u64 peer : cfg_.ns_shards[s]) {
          if (peer == id().value()) {
            // We host this replica ourselves: renew in place.
            auto it = shard_replicas_.find(s);
            if (it != shard_replicas_.end()) {
              auto l = it->second->leases.find(id().value());
              if (l != it->second->leases.end()) {
                l->second = sim::now() + cfg_.lease_duration;
              }
            }
            continue;
          }
          Message shb;
          shb.cmd = Cmd::heartbeat;
          shb.dst = EnclaveId{peer};
          shb.src = id();
          shb.req_id = g_req_counter++;
          shb.epoch = ns_epoch_;
          shb.shard = s;
          shb.shard_epoch = shard_believed_epoch(s);
          ChannelEndpoint* out = route_for(shb.dst);
          if (out != nullptr) {
            ++stats_.heartbeats_sent;
            co_await out->send(std::move(shb));  // one-way
          }
        }
      }
    }
    co_await sim::delay(cfg_.heartbeat_period);
  }
}

// ------------------------------------------------- name-service failover

// The designated standby probes the name server end-to-end (not just the
// next hop: ping_ns is answered by neighbors, so only a routed
// request/response proves the NS itself is alive). A run of unanswered
// probes is the promotion trigger.
sim::Task<void> XememKernel::standby_actor() {
  co_await registered_.wait();
  if (!id().valid() || id().value() != standby_id()) co_return;
  u32 misses = 0;
  for (;;) {
    co_await sim::delay(cfg_.ns_probe_period);
    if (stopped_ || crashed_ || is_ns_) co_return;
    Message probe;
    probe.cmd = Cmd::ns_probe;
    probe.dst = EnclaveId{0};
    auto resp = co_await request(std::move(probe), nullptr, cfg_.ping_timeout,
                                 /*max_retries=*/0);
    if (stopped_ || crashed_ || is_ns_) co_return;
    if (resp.ok() && resp.value().status == Errc::ok) {
      misses = 0;
      continue;
    }
    if (++misses >= cfg_.ns_probe_misses) {
      promote();
      co_return;
    }
  }
}

void XememKernel::promote() {
  if (is_ns_ || crashed_ || stopped_) return;
  is_ns_ = true;
  ++ns_epoch_;
  ++stats_.ns_failovers;
  promote_time_ = sim::now();
  ns_recovery_until_ = sim::now() + cfg_.ns_recovery_grace;
  ns_channel_ = nullptr;  // the NS direction is now "here"
  ns_lost_ = false;
  rereg_epoch_ = ns_epoch_;
  // Segid allocation restarts at 1 under the new epoch prefix — a reborn
  // name server can never re-issue a segid live from a prior epoch.
  next_segid_ = 1;
  // Never re-issue a live enclave id either: resume above the high-water
  // mark observed in traffic (survivors also push it up as they
  // re-register).
  next_enclave_id_ = std::max(
      next_enclave_id_, std::max(max_seen_enclave_, id().value()) + 1);
  // Rebuild the registry from the durable source of truth: owners. Start
  // with this enclave's own exports; survivors replay theirs in the
  // re-registration round.
  ns_segids_.clear();
  ns_names_.clear();
  ns_leases_.clear();
  for (const auto& [sid, rec] : exports_) {
    ns_segids_[sid] = NsSegidRecord{id(), rec.pages * kPageSize, rec.name};
    if (!rec.name.empty()) ns_names_[rec.name] = Segid{sid};
  }
  auto* eng = sim::Engine::current();
  eng->spawn(announce_epoch());
  if (cfg_.lease_duration > 0) eng->spawn(lease_reaper());
  XLOG_WARN("xemem", "%s: promoted to name server, epoch %llu",
            os_.name().c_str(), static_cast<unsigned long long>(ns_epoch_));
}

sim::Task<void> XememKernel::announce_epoch() {
  // Snapshot: channels_ may grow (dynamic repartitioning adds links) while
  // this coroutine is suspended in send(), invalidating iterators.
  const std::vector<ChannelEndpoint*> eps = channels_;
  for (auto* ep : eps) {
    Message ann;
    ann.cmd = Cmd::ns_announce;
    ann.src = id();
    ann.req_id = g_req_counter++;
    ann.epoch = ns_epoch_;
    co_await ep->send(std::move(ann));
  }
}

// Replay this enclave's locally-owned exports to the newly promoted name
// server so the registry converges to the pre-crash truth. Runs once per
// adopted epoch; request() retries carry it through a lossy channel.
sim::Task<void> XememKernel::reregister_actor() {
  const u64 target_epoch = ns_epoch_;
  while (ns_channel_ == nullptr) {
    if (crashed_ || stopped_ || is_ns_ || ns_epoch_ != target_epoch) co_return;
    co_await sim::delay(200'000);
  }
  if (crashed_ || stopped_ || is_ns_ || ns_epoch_ != target_epoch) co_return;
  Message req;
  req.cmd = Cmd::reregister;
  req.dst = EnclaveId{0};
  for (const auto& [sid, rec] : exports_) {
    req.payload.push_back(sid);
    req.payload.push_back(rec.pages * kPageSize);
    if (!req.name.empty() || req.payload.size() > 2) req.name += '\n';
    req.name += rec.name;
  }
  (void)co_await request(std::move(req));
}

bool XememKernel::maybe_adopt_epoch(const Message& msg, ChannelEndpoint* from) {
  if (msg.epoch <= ns_epoch_) return false;
  if (is_ns_) {
    // Competing name servers (a spurious promotion while the original
    // lived) are out of scope: log and stand pat — the higher epoch owns
    // the survivors regardless, since they adopt it from its traffic.
    XLOG_WARN("xemem", "%s: name server saw newer epoch %llu (own %llu)",
              os_.name().c_str(), static_cast<unsigned long long>(msg.epoch),
              static_cast<unsigned long long>(ns_epoch_));
    return false;
  }
  ns_epoch_ = msg.epoch;
  ns_lost_ = false;
  // An announce (or any message from the name server itself) arrives from
  // the NS direction; anything else only proves the epoch moved, so the
  // direction must be re-discovered.
  if (msg.cmd == Cmd::ns_announce || msg.src == EnclaveId{0}) {
    ns_channel_ = from;
  } else {
    ns_channel_ = nullptr;
  }
  auto* eng = sim::Engine::current();
  if (id().valid()) {
    if (rereg_epoch_ < ns_epoch_) {
      rereg_epoch_ = ns_epoch_;
      eng->spawn(reregister_actor());
    }
  } else {
    // Never managed to register (e.g. the old NS died mid-registration):
    // the new name server is a fresh chance.
    eng->spawn(discovery());
  }
  if (ns_channel_ == nullptr) eng->spawn(discovery());
  return true;
}

// Name-server sweep: expire leases even when no traffic arrives (the lazy
// sweep in ns_handle covers the common case, but a fully idle system must
// still collect its dead).
sim::Task<void> XememKernel::lease_reaper() {
  while (!stopped_) {
    co_await sim::delay(cfg_.heartbeat_period);
    if (stopped_) co_return;
    ns_gc_expired_leases();
  }
}

void XememKernel::ns_touch_lease(EnclaveId e) {
  if (cfg_.lease_duration == 0 || !e.valid() || e == EnclaveId{0}) return;
  // Renew-only: an enclave whose lease already expired has been
  // garbage-collected and must not be resurrected by stale traffic.
  auto it = ns_leases_.find(e.value());
  if (it != ns_leases_.end()) it->second = sim::now() + cfg_.lease_duration;
}

void XememKernel::ns_gc_expired_leases() {
  if (cfg_.lease_duration == 0 || ns_leases_.empty()) return;
  const sim::TimePoint t = sim::now();
  std::vector<u64> dead;
  for (const auto& [e, expiry] : ns_leases_) {
    if (expiry <= t) dead.push_back(e);
  }
  for (u64 e : dead) {
    ns_leases_.erase(e);
    enclave_map_.erase(e);
    for (auto it = ns_segids_.begin(); it != ns_segids_.end();) {
      if (it->second.owner == EnclaveId{e}) {
        if (!it->second.name.empty()) ns_names_.erase(it->second.name);
        it = ns_segids_.erase(it);
      } else {
        ++it;
      }
    }
    ++stats_.leases_expired;
    XLOG_WARN("xemem", "name server: lease of enclave %llu expired, "
              "garbage-collected its segids/names/routes",
              static_cast<unsigned long long>(e));
  }
}

// ---------------------------------------------------------------- plumbing

sim::Task<void> XememKernel::service_loop(ChannelEndpoint* ep) {
  for (;;) {
    Message msg = co_await ep->inbox().recv();
    co_await handle(std::move(msg), ep);
  }
}

ChannelEndpoint* XememKernel::route_for(EnclaveId dst) {
  auto it = enclave_map_.find(dst.value());
  if (it != enclave_map_.end()) return it->second;
  return ns_channel_;  // default route: toward the name server
}

sim::Task<Result<Message>> XememKernel::request(Message msg) {
  co_return co_await request(std::move(msg), nullptr);
}

sim::Task<void> XememKernel::timeout_actor(XememKernel* k, u64 rid,
                                           sim::Duration t) {
  co_await sim::delay(t);
  auto it = k->pending_resp_.find(rid);
  if (it != k->pending_resp_.end()) {
    // Deliver an expiry sentinel; the real response (if it ever arrives)
    // is dropped as an orphan because the waiter has gone.
    Message expired;
    expired.req_id = rid;
    expired.status = Errc::unreachable;
    it->second->send(std::move(expired));
  }
}

sim::Task<Result<Message>> XememKernel::request(Message msg, ChannelEndpoint* via_in,
                                                sim::Duration timeout,
                                                i32 max_retries) {
  msg.req_id = g_req_counter++;
  if (msg.src == EnclaveId::invalid()) msg.src = id();
  const u64 rid = msg.req_id;
  if (timeout == 0) timeout = cfg_.request_timeout;
  const u32 retries =
      max_retries < 0 ? cfg_.max_retries : static_cast<u32>(max_retries);
  sim::Duration backoff = cfg_.backoff_base;

  // Sharded registry traffic re-resolves its destination on every attempt:
  // the believed primary of its shard's current epoch, rotated through the
  // replica group on not_primary bounces and timeouts so a dead or deposed
  // primary cannot absorb the whole retry budget.
  const bool shard_bound = sharding_enabled() && msg.shard_epoch != 0 &&
                           is_shard_client_cmd(msg.cmd);
  u32 rot = 0;

  for (u32 attempt = 0;; ++attempt) {
    if (crashed_) co_return Errc::unreachable;
    if (shard_bound) {
      const auto& group = cfg_.ns_shards[msg.shard];
      const u64 believed = shard_believed_epoch(msg.shard);
      msg.shard_epoch = believed;
      msg.dst = EnclaveId{group[(believed - 1 + rot) % group.size()]};
    }
    ChannelEndpoint* via = via_in != nullptr ? via_in : route_for(msg.dst);
    if (via == nullptr) {
      // NS-bound traffic with the name service terminally lost (discovery
      // exhausted, no standby promoted) fails with the dedicated status so
      // callers can distinguish "no name server anywhere" from a transient
      // routing failure.
      co_return (msg.dst == EnclaveId{0} && ns_lost_) ? Errc::no_name_server
                                                      : Errc::unreachable;
    }

    sim::Mailbox<Message> mb;
    pending_resp_[rid] = &mb;
    sim::Engine::current()->spawn(timeout_actor(this, rid, timeout));
    Message copy = msg;  // keep the original for retransmission
    copy.epoch = ns_epoch_;  // re-stamp: an epoch may be adopted mid-retry
    co_await via->send(std::move(copy));
    Message resp = co_await mb.recv();
    pending_resp_.erase(rid);
    if (!(resp.status == Errc::unreachable && resp.cmd == Cmd::ping_ns)) {
      // A real response (the sentinel has a default-constructed cmd).
      // Retryable rejections — the epoch moved under us, or the new name
      // server is still rebuilding its registry — are retried under the
      // same req_id with the usual backoff; everything else returns.
      const bool retryable = !crashed_ && (resp.status == Errc::stale_epoch ||
                                           resp.status == Errc::retry_later ||
                                           resp.status == Errc::not_primary);
      if (!retryable || attempt >= retries) {
        // Remember the id so a late duplicate of this response is counted,
        // not warned about.
        completed_reqs_[rid] = 1;
        completed_log_.emplace_back(rid, sim::now());
        while (completed_log_.size() > cfg_.dedup_cache_cap) {
          completed_reqs_.erase(completed_log_.front().first);
          completed_log_.pop_front();
          ++stats_.dedup_evictions;
        }
        co_return resp;
      }
      ++stats_.retries;
      if (shard_bound) {
        // A not_primary bounce means "try the next replica"; an epoch or
        // grace rejection means "re-resolve the believed primary afresh"
        // (maybe_adopt_shard_epoch already absorbed the response's epoch).
        rot = resp.status == Errc::not_primary ? rot + 1 : 0;
      }
      co_await sim::delay(backoff);
      backoff = std::min<sim::Duration>(backoff * 2, cfg_.backoff_max);
      continue;
    }

    ++stats_.timeouts;
    if (shard_bound) ++rot;  // a silent replica: rotate before retrying
    if (attempt >= retries) {
      // The destination stayed silent through every retry: treat the
      // learned route (if any) as stale so later traffic falls back to
      // the default route and rediscovers.
      if (msg.dst != EnclaveId::invalid() && msg.dst != EnclaveId{0}) {
        enclave_map_.erase(msg.dst.value());
        // Learned-route invalidation extends to the segid->owner cache:
        // anything we believed this enclave owned must be re-resolved
        // through the name server, which will have garbage-collected the
        // segids if the owner really died (lease expiry).
        drop_owner_cache_for(msg.dst);
      }
      // If the silent link was our path toward the name server, forget it
      // and re-run discovery over the remaining channels (the enclave ID
      // is retained; only the route is re-learned).
      if (!is_ns_ && via == ns_channel_) {
        ns_channel_ = nullptr;
        for (auto it = enclave_map_.begin(); it != enclave_map_.end();) {
          it = it->second == via ? enclave_map_.erase(it) : std::next(it);
        }
        sim::Engine::current()->spawn(discovery());
      }
      co_return (msg.dst == EnclaveId{0} && ns_lost_) ? Errc::no_name_server
                                                      : Errc::unreachable;
    }
    ++stats_.retries;
    co_await sim::delay(backoff);
    backoff = std::min<sim::Duration>(backoff * 2, cfg_.backoff_max);
  }
}

sim::Task<Result<Message>> XememKernel::request_to_owner(Message msg) {
  if (is_ns_ && !sharding_enabled()) {
    // We *are* the name server: resolve the owner locally instead of
    // sending to ourselves.
    auto it = ns_segids_.find(msg.segid.value());
    if (it == ns_segids_.end()) {
      // During the post-promotion grace window the registry may simply not
      // have heard the owner's re-registration yet: tell the caller to
      // retry rather than condemning a segid that is about to reappear.
      co_return in_recovery_grace() ? Errc::retry_later : Errc::no_such_segid;
    }
    co_await os_.service_core()->run_irq(costs::kNameServerOp);
    msg.dst = it->second.owner;
    XEMEM_ASSERT_MSG(msg.dst != id(),
                     "self-owned segid must use the local fast path");
    co_return co_await request(std::move(msg));
  }

  // Fast path: a previous response taught us which enclave owns this
  // segid, so address it directly — intermediate enclaves forward by
  // destination id and the request never climbs to the name server for a
  // lookup. A stale entry must never change outcomes: on transport
  // failure or a no-such-segid answer (removed/crashed owner), drop the
  // entry and fall back once to the authoritative name-server route.
  const Segid sid = msg.segid;
  auto cached = owner_cache_.find(sid.value());
  if (cached != owner_cache_.end()) {
    Message direct = msg;
    direct.dst = cached->second;
    ++stats_.lookup_cache_hits;
    auto fast = co_await request(std::move(direct));
    if (fast.ok() && fast.value().status != Errc::no_such_segid) {
      co_return fast;
    }
    drop_owner_cache(sid);
  }

  if (sharding_enabled()) {
    // Route to the segid's home shard (derivable from the segid itself);
    // the serving replica forwards to the owner like the classic NS does.
    msg.shard = shard_of_segid(sid, static_cast<u32>(cfg_.ns_shards.size()));
    msg.shard_epoch = shard_believed_epoch(msg.shard);
  } else {
    msg.dst = EnclaveId{0};
  }
  auto resp = co_await request(std::move(msg));
  if (cfg_.owner_route_cache && resp.ok() && resp.value().status == Errc::ok) {
    cache_owner(sid, resp.value().src);
  }
  co_return resp;
}

sim::Task<void> XememKernel::forward(Message msg, ChannelEndpoint* from) {
  // Requests remember their inbound channel so the response can retrace
  // the path even before routing tables know the requester. One-way
  // messages (release, heartbeat, enclave_shutdown) have no response to
  // retrace and must not pollute the table. Entries expire after fwd_ttl
  // (see prune_pending_fwd) so a request whose response never arrives —
  // the owner crashed, the response was lost past every retry — cannot
  // leak its entry forever.
  if (!msg.is_response() && !msg.is_one_way()) {
    if (!pending_fwd_.contains(msg.req_id)) {
      fwd_log_.emplace_back(msg.req_id, sim::now());
    }
    pending_fwd_[msg.req_id] = from;
  }
  ++stats_.messages_forwarded;
  ChannelEndpoint* out = route_for(msg.dst);
  // Note: out == from is legitimate — e.g. the name server bouncing an
  // attach back down the same link when the owner lives in the subtree the
  // request came from. The hierarchy is a tree, so forwarding terminates.
  // A missing route is reachable, not a bug: owner-cache direct addressing
  // can target an enclave whose route the name server's lease GC already
  // reclaimed. Drop the message; the sender's retry/timeout machinery owns
  // recovery (and evicts its stale cache entry on exhaustion).
  if (out == nullptr) co_return;
  co_await os_.service_core()->run_irq(costs::kRouteHop);
  co_await out->send(std::move(msg));
}

sim::Task<void> XememKernel::handle(Message msg, ChannelEndpoint* from) {
  if (crashed_) co_return;  // a dead enclave hears nothing
  prune_pending_fwd();

  // Track the highest enclave id seen in any traffic: a promoted standby
  // resumes id allocation above this high-water mark.
  if (msg.src.valid()) {
    max_seen_enclave_ = std::max(max_seen_enclave_, msg.src.value());
  }

  // Epoch adoption: any message carrying a newer name-service epoch moves
  // this node forward (and triggers re-registration / re-discovery).
  const bool adopted = maybe_adopt_epoch(msg, from);
  maybe_adopt_shard_epoch(msg);
  if (msg.cmd == Cmd::ns_announce) {
    // Flood: re-announce on every other link, but only on first adoption —
    // peer links can form cycles, and the strictly-newer check is what
    // terminates the flood.
    if (adopted) {
      const std::vector<ChannelEndpoint*> eps = channels_;  // send() suspends
      for (auto* ep : eps) {
        if (ep == from) continue;
        Message ann = msg;
        co_await ep->send(std::move(ann));
      }
    }
    co_return;
  }
  if (msg.cmd == Cmd::hello) {
    // A directly linked peer announced itself: learn the route so traffic
    // to it (shard commands, replication) skips the management-hub detour.
    if (msg.src.valid()) enclave_map_[msg.src.value()] = from;
    co_return;
  }

  // 1. Responses retracing a forwarded request.
  if (msg.is_response()) {
    auto fwd = pending_fwd_.find(msg.req_id);
    if (fwd != pending_fwd_.end()) {
      ChannelEndpoint* back = fwd->second;
      pending_fwd_.erase(fwd);
      // Learn routes from enclave-id allocations passing through us
      // (paper section 3.2's LWK D / VM F example).
      if (msg.cmd == Cmd::enclave_id_resp && msg.status == Errc::ok) {
        enclave_map_[msg.payload.at(0)] = back;
      }
      co_await os_.service_core()->run_irq(costs::kRouteHop);
      co_await back->send(std::move(msg));
      co_return;
    }
    auto wait = pending_resp_.find(msg.req_id);
    if (wait != pending_resp_.end()) {
      wait->second->send(std::move(msg));
      co_return;
    }
    if (completed_reqs_.contains(msg.req_id)) {
      // Duplicate of a response we already consumed (a retry raced its
      // original, or the channel replayed the delivery).
      ++stats_.dup_suppressed;
      co_return;
    }
    XLOG_DEBUG("xemem", "%s: dropping orphan response %s", os_.name().c_str(),
               cmd_name(msg.cmd));
    co_return;
  }

  // 2. Channel-local probes are answered immediately, never forwarded.
  if (msg.cmd == Cmd::ping_ns) {
    Message resp;
    resp.cmd = Cmd::ping_ns_resp;
    resp.req_id = msg.req_id;
    resp.src = id();
    resp.epoch = ns_epoch_;
    resp.status = (is_ns_ || ns_channel_ != nullptr) ? Errc::ok : Errc::unreachable;
    co_await from->send(std::move(resp));
    co_return;
  }

  // 3. Name-server-addressed traffic.
  if (msg.dst == EnclaveId{0}) {
    if (is_ns_) {
      co_await ns_handle(std::move(msg), from);
    } else {
      co_await forward(std::move(msg), from);
    }
    co_return;
  }

  // 4a. Sharded name service: traffic addressed to a replica this enclave
  // hosts — the replica-group protocol itself, or a client registry
  // command stamped with shard fields. Handled detached: a quorum write
  // suspends awaiting acks that can retrace the very channel it arrived
  // on (hub-relayed replication), so an inline await would head-of-line
  // block the service loop against itself until the quorum timeout. The
  // replica state machine already tolerates the reordering this allows —
  // hub-relayed delivery reorders anyway.
  if (msg.dst == id() && sharding_enabled() &&
      (is_shard_service_cmd(msg.cmd) || msg.shard_epoch != 0)) {
    sim::Engine::current()->spawn(shard_handle(std::move(msg), from));
    co_return;
  }

  // 4. Traffic addressed to this enclave: owner-side servicing. Commands
  // are idempotent per req_id: a duplicate delivery (channel replay, or a
  // retry whose original did arrive) is answered from the response cache
  // instead of re-executing — re-serving an attach would double-pin
  // frames, and re-serving a detach would fail with not_attached.
  if (msg.dst == id()) {
    Message cached;
    if (dedup_hit(msg.req_id, &cached)) {
      ++stats_.dup_suppressed;
      if (!msg.is_one_way()) co_await route_response(std::move(cached), from);
      co_return;
    }
    switch (msg.cmd) {
      case Cmd::get: {
        if (cap_crashpoint(msg)) co_return;
        Message resp = co_await serve_get(msg);
        dedup_store(msg.req_id, resp);
        co_await route_response(std::move(resp), from);
        co_return;
      }
      case Cmd::attach: {
        if (cap_crashpoint(msg)) co_return;
        Message resp = co_await serve_attach(msg);
        dedup_store(msg.req_id, resp);
        co_await route_response(std::move(resp), from);
        co_return;
      }
      case Cmd::detach: {
        Message resp = co_await serve_detach(msg);
        dedup_store(msg.req_id, resp);
        co_await route_response(std::move(resp), from);
        co_return;
      }
      case Cmd::cap_derive: {
        if (cap_crashpoint(msg)) co_return;
        Message resp = co_await serve_cap_derive(msg);
        dedup_store(msg.req_id, resp);
        co_await route_response(std::move(resp), from);
        co_return;
      }
      case Cmd::cap_revoke: {
        if (cap_crashpoint(msg)) co_return;
        Message resp = co_await serve_cap_revoke(msg);
        dedup_store(msg.req_id, resp);
        co_await route_response(std::move(resp), from);
        co_return;
      }
      case Cmd::cap_revoked: {
        co_await apply_cap_revoked(std::move(msg));
        co_return;  // one-way
      }
      case Cmd::release: {
        dedup_store(msg.req_id, Message{});  // marker: suppress replays
        auto it = exports_.find(msg.segid.value());
        if (it != exports_.end() && it->second.grants > 0) --it->second.grants;
        co_return;  // one-way
      }
      default:
        XLOG_WARN("xemem", "%s: unexpected command %s", os_.name().c_str(),
                  cmd_name(msg.cmd));
        co_return;
    }
  }

  // 5. Everything else is in transit.
  co_await forward(std::move(msg), from);
}

sim::Task<void> XememKernel::route_response(Message resp, ChannelEndpoint* from) {
  // Prefer an exact learned route; otherwise retrace the path the request
  // arrived on (always valid in the tree topology); only fall back to the
  // default name-server route when neither is available.
  auto it = enclave_map_.find(resp.dst.value());
  ChannelEndpoint* out = it != enclave_map_.end() ? it->second : from;
  if (out == nullptr) out = ns_channel_;
  if (out == nullptr) co_return;  // no path back: drop
  co_await out->send(std::move(resp));
}

bool XememKernel::dedup_hit(u64 rid, Message* out) {
  prune_dedup();
  auto it = dedup_.find(rid);
  if (it == dedup_.end()) return false;
  *out = it->second.resp;
  // Touch: move to the LRU tail and refresh the idle-TTL clock, so an
  // entry still absorbing retries is the last to be evicted.
  it->second.touched = sim::now();
  dedup_lru_.splice(dedup_lru_.end(), dedup_lru_, it->second.pos);
  return true;
}

void XememKernel::dedup_store(u64 rid, const Message& resp) {
  prune_dedup();
  auto it = dedup_.find(rid);
  if (it != dedup_.end()) {
    it->second.resp = resp;
    it->second.touched = sim::now();
    dedup_lru_.splice(dedup_lru_.end(), dedup_lru_, it->second.pos);
    return;
  }
  dedup_lru_.push_back(rid);
  dedup_.emplace(rid, DedupEntry{resp, sim::now(), std::prev(dedup_lru_.end())});
  while (dedup_.size() > cfg_.dedup_cache_cap) {
    dedup_.erase(dedup_lru_.front());
    dedup_lru_.pop_front();
    ++stats_.dedup_evictions;
  }
}

// Expire dedup entries idle past their TTL: a retry can no longer arrive
// for them (fwd_ttl bounds the forwarding fabric the same way), so keeping
// them only delays capacity eviction of entries that still matter.
void XememKernel::prune_dedup() {
  const sim::TimePoint t = sim::now();
  while (!dedup_lru_.empty()) {
    auto it = dedup_.find(dedup_lru_.front());
    XEMEM_ASSERT(it != dedup_.end());
    if (it->second.touched + cfg_.dedup_ttl > t) break;
    dedup_.erase(it);
    dedup_lru_.pop_front();
    ++stats_.dedup_evictions;
  }
  // The completed-request id log ages out on the same clock.
  while (!completed_log_.empty() &&
         completed_log_.front().second + cfg_.dedup_ttl <= t) {
    if (completed_reqs_.erase(completed_log_.front().first) != 0) {
      ++stats_.dedup_evictions;
    }
    completed_log_.pop_front();
  }
}

void XememKernel::prune_pending_fwd() {
  const sim::TimePoint t = sim::now();
  while (!fwd_log_.empty() && fwd_log_.front().second + cfg_.fwd_ttl <= t) {
    if (pending_fwd_.erase(fwd_log_.front().first) != 0) ++stats_.fwd_expired;
    fwd_log_.pop_front();
  }
  prune_dedup();
}

// ------------------------------------------------------------- name server

sim::Task<void> XememKernel::ns_handle(Message msg, ChannelEndpoint* from) {
  XEMEM_ASSERT(is_ns_);
  ++stats_.ns_requests;
  // Deterministic crashpoint hook (tests/bench): die on the N-th
  // NS-bound command, consuming it before any processing — the sweep
  // never observes a half-applied registry mutation.
  if (crash_after_ns_requests_ != 0 &&
      stats_.ns_requests >= crash_after_ns_requests_) {
    crash();
    co_return;
  }
  co_await os_.service_core()->run_irq(costs::kNameServerOp);

  // Epoch guard: a request stamped with an older name-service epoch comes
  // from a node that has not yet heard of this promotion. Reject it with a
  // retryable status carrying the current epoch — the sender adopts it,
  // re-resolves its NS direction if needed, and retries under the same
  // req_id. Never cached in the dedup table: the retry must re-execute.
  if (msg.epoch < ns_epoch_) {
    ++stats_.epoch_rejects;
    if (msg.is_one_way()) co_return;
    Message rej;
    rej.cmd = response_cmd(msg.cmd);
    rej.req_id = msg.req_id;
    rej.src = EnclaveId{0};
    rej.dst = msg.src;
    rej.status = Errc::stale_epoch;
    rej.epoch = ns_epoch_;
    co_await from->send(std::move(rej));
    co_return;
  }

  // Liveness bookkeeping: sweep expired leases lazily on every command
  // (so a retry against a dead owner's segid fails fast with
  // no_such_segid even between reaper ticks), then renew the sender's.
  ns_gc_expired_leases();
  ns_touch_lease(msg.src);

  // Name-server commands are idempotent per req_id, mirroring the
  // owner-side cache: a retried segid_alloc must not leak a second segid
  // and a retried alloc_enclave_id must not burn a second ID.
  Message cached;
  if (dedup_hit(msg.req_id, &cached)) {
    ++stats_.dup_suppressed;
    if (!msg.is_one_way()) co_await from->send(std::move(cached));
    co_return;
  }

  Message resp;
  resp.req_id = msg.req_id;
  resp.src = EnclaveId{0};
  resp.dst = msg.src;
  resp.epoch = ns_epoch_;
  resp.status = Errc::ok;

  switch (msg.cmd) {
    case Cmd::heartbeat:
      co_return;  // one-way; the renewal above is the whole effect
    case Cmd::ns_probe: {
      // End-to-end liveness probe from the standby. Never dedup-cached:
      // each probe must reflect the current moment.
      resp.cmd = Cmd::ns_probe_resp;
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::reregister: {
      // A survivor replays its locally-owned exports after a promotion:
      // reinstall its route, lease, and registry entries. Idempotent by
      // construction (map inserts), so a retried replay is harmless.
      enclave_map_[msg.src.value()] = from;
      if (cfg_.lease_duration > 0) {
        ns_leases_[msg.src.value()] = sim::now() + cfg_.lease_duration;
      }
      next_enclave_id_ = std::max(next_enclave_id_, msg.src.value() + 1);
      size_t pos = 0;
      const u64 n = msg.payload.size() / 2;
      for (u64 i = 0; i < n; ++i) {
        const u64 sid = msg.payload[2 * i];
        const u64 size = msg.payload[2 * i + 1];
        const size_t next = msg.name.find('\n', pos);
        std::string nm = msg.name.substr(pos, next - pos);
        pos = next == std::string::npos ? msg.name.size() : next + 1;
        ns_segids_[sid] = NsSegidRecord{msg.src, size, nm};
        if (!nm.empty()) ns_names_[nm] = Segid{sid};
      }
      ++stats_.reregistrations;
      if (promote_time_ != 0) {
        stats_.recovery_latency = sim::now() - promote_time_;
      }
      resp.cmd = Cmd::reregister_resp;
      dedup_store(msg.req_id, resp);
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::enclave_shutdown: {
      enclave_map_.erase(msg.src.value());
      ns_leases_.erase(msg.src.value());
      for (auto it = ns_segids_.begin(); it != ns_segids_.end();) {
        if (it->second.owner == msg.src) {
          if (!it->second.name.empty()) ns_names_.erase(it->second.name);
          it = ns_segids_.erase(it);
        } else {
          ++it;
        }
      }
      co_return;  // one-way
    }
    case Cmd::alloc_enclave_id: {
      const u64 fresh = next_enclave_id_++;
      enclave_map_[fresh] = from;
      if (cfg_.lease_duration > 0) {
        ns_leases_[fresh] = sim::now() + cfg_.lease_duration;
      }
      resp.cmd = Cmd::enclave_id_resp;
      resp.dst = EnclaveId{fresh};
      resp.payload.push_back(fresh);
      dedup_store(msg.req_id, resp);
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::segid_alloc: {
      if (!msg.name.empty() && ns_names_.contains(msg.name)) {
        resp.cmd = Cmd::segid_alloc_resp;
        resp.status = Errc::already_exists;
        dedup_store(msg.req_id, resp);
        co_await from->send(std::move(resp));
        co_return;
      }
      const Segid sid{make_segid_value(ns_epoch_, next_segid_++)};
      ns_segids_[sid.value()] = NsSegidRecord{msg.src, msg.size, msg.name};
      if (!msg.name.empty()) ns_names_[msg.name] = sid;
      resp.cmd = Cmd::segid_alloc_resp;
      resp.segid = sid;
      dedup_store(msg.req_id, resp);
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::segid_remove: {
      auto it = ns_segids_.find(msg.segid.value());
      resp.cmd = Cmd::segid_remove_resp;
      if (it == ns_segids_.end()) {
        // Misses inside the post-promotion grace window are answered with
        // retry_later (and never dedup-cached): the entry may simply not
        // have been replayed yet.
        resp.status = in_recovery_grace() ? Errc::retry_later
                                          : Errc::no_such_segid;
        if (resp.status == Errc::retry_later) {
          co_await from->send(std::move(resp));
          co_return;
        }
      } else {
        if (!it->second.name.empty()) ns_names_.erase(it->second.name);
        ns_segids_.erase(it);
      }
      dedup_store(msg.req_id, resp);
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::name_lookup: {
      resp.cmd = Cmd::name_lookup_resp;
      auto it = ns_names_.find(msg.name);
      if (it == ns_names_.end()) {
        resp.status = in_recovery_grace() ? Errc::retry_later
                                          : Errc::no_such_segid;
      } else {
        resp.segid = it->second;
        resp.size = ns_segids_[it->second.value()].size;
      }
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::name_list: {
      resp.cmd = Cmd::name_list_resp;
      for (const auto& [name, sid] : ns_names_) {
        if (!resp.name.empty()) resp.name += '\n';
        resp.name += name;
        resp.payload.push_back(sid.value());
      }
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::get:
    case Cmd::attach:
    case Cmd::detach:
    case Cmd::cap_derive:
    case Cmd::cap_revoke:
    case Cmd::release: {
      // Forward to the owning enclave (paper section 4.2: "the name
      // server, which maps segids to enclaves, forwards the command to
      // the destination enclave which owns the segid").
      auto it = ns_segids_.find(msg.segid.value());
      if (it == ns_segids_.end()) {
        if (msg.cmd == Cmd::release) co_return;  // one-way: drop
        Message err;
        err.cmd = response_cmd(msg.cmd);
        err.req_id = msg.req_id;
        err.src = EnclaveId{0};
        err.dst = msg.src;
        err.epoch = ns_epoch_;
        err.status = in_recovery_grace() ? Errc::retry_later
                                         : Errc::no_such_segid;
        if (err.status != Errc::retry_later) dedup_store(msg.req_id, err);
        co_await from->send(std::move(err));
        co_return;
      }
      const EnclaveId owner = it->second.owner;
      if (owner == id()) {
        // This name server's own enclave owns the segid (the boot NS has
        // id 0; a promoted standby keeps its own id): serve directly.
        if (cap_crashpoint(msg)) co_return;
        Message resp2;
        switch (msg.cmd) {
          case Cmd::get: resp2 = co_await serve_get(msg); break;
          case Cmd::attach: resp2 = co_await serve_attach(msg); break;
          case Cmd::detach: resp2 = co_await serve_detach(msg); break;
          case Cmd::cap_derive: resp2 = co_await serve_cap_derive(msg); break;
          case Cmd::cap_revoke: resp2 = co_await serve_cap_revoke(msg); break;
          default: {
            dedup_store(msg.req_id, Message{});  // one-way release marker
            auto ex = exports_.find(msg.segid.value());
            if (ex != exports_.end() && ex->second.grants > 0) --ex->second.grants;
            co_return;
          }
        }
        dedup_store(msg.req_id, resp2);
        co_await from->send(std::move(resp2));
        co_return;
      }
      msg.dst = owner;
      co_await forward(std::move(msg), from);
      co_return;
    }
    case Cmd::cap_revoked:
      // The name server's own enclave held attachments under a revoked
      // subtree: the owner's fan-out addresses it as dst 0 like every
      // other NS-bound message. Apply the teardown locally.
      co_await apply_cap_revoked(std::move(msg));
      co_return;
    default:
      XLOG_WARN("xemem", "name server: unexpected %s", cmd_name(msg.cmd));
      co_return;
  }
}

// ----------------------------------------------------- owner-side servicing

sim::Task<Message> XememKernel::serve_get(const Message& msg) {
  Message resp;
  resp.cmd = Cmd::get_resp;
  resp.req_id = msg.req_id;
  resp.src = id();
  resp.dst = msg.src;
  resp.epoch = ns_epoch_;
  auto it = exports_.find(msg.segid.value());
  if (it == exports_.end() || it->second.removing) {
    resp.status = Errc::no_such_segid;
    co_return resp;
  }
  const auto want = static_cast<AccessMode>(msg.access);
  CapNode* node = nullptr;
  if (cfg_.capabilities) {
    // Server-side capability validation: the presented cap id (0 resolves
    // to the root unless the export demands explicit caps) must be live,
    // usable by this presenter, and at least as strong as the wanted mode.
    const Errc ce =
        cap_check(msg.segid.value(), msg.cap, msg.src, want, 0, 0, false, &node);
    if (ce != Errc::ok) {
      resp.status = ce;
      co_return resp;
    }
  }
  if (want == AccessMode::read_write &&
      it->second.max_access == AccessMode::read_only) {
    resp.status = Errc::permission_denied;
    co_return resp;
  }
  ++it->second.grants;
  resp.status = Errc::ok;
  resp.segid = msg.segid;
  resp.size = it->second.pages * kPageSize;
  resp.access = msg.access;
  if (node != nullptr) resp.cap = node->id;
  co_return resp;
}

sim::Task<Message> XememKernel::serve_attach(const Message& msg) {
  Message resp;
  resp.cmd = Cmd::attach_resp;
  resp.req_id = msg.req_id;
  resp.src = id();
  resp.dst = msg.src;
  resp.epoch = ns_epoch_;

  auto it = exports_.find(msg.segid.value());
  if (it == exports_.end() || it->second.removing) {
    resp.status = Errc::no_such_segid;
    co_return resp;
  }
  ExportRecord& rec = it->second;
  const u64 pages = pages_for(msg.size);
  if ((msg.offset & kPageMask) != 0 ||
      (msg.offset >> kPageShift) + pages > rec.pages || pages == 0) {
    resp.status = Errc::invalid_argument;
    co_return resp;
  }

  // Rights check BEFORE any cache can answer: a memoized walk or warm
  // route must never let a weaker capability holder bypass the window,
  // access-mode, or attach-limit validation (the fast path is a cache of
  // frames, not of authorization).
  CapNode* node = nullptr;
  if (cfg_.capabilities) {
    const Errc ce =
        cap_check(msg.segid.value(), msg.cap, msg.src,
                  static_cast<AccessMode>(msg.access), msg.offset, msg.size,
                  true, &node);
    if (ce != Errc::ok) {
      resp.status = ce;
      co_return resp;
    }
  }

  // Reserve the attachment before the page-table walk suspends: a
  // concurrent remove must see the count and return busy rather than
  // erase the export out from under the walk.
  ++rec.attachments;

  mm::PfnList frames;
  const auto walk_key = std::make_tuple(msg.segid.value(), msg.offset, pages);
  auto memo = walk_cache_.find(walk_key);
  if (memo != walk_cache_.end()) {
    // Repeat window: reuse the memoized page-table walk. Frames are still
    // pinned per attachment below (each pin record unpins independently on
    // detach), but the walk cost — and for guest enclaves the PCI staging
    // of the frame list — is paid once per window, not once per attacher.
    frames = memo->second;
    ++stats_.walk_cache_hits;
  } else {
    auto walked = co_await os_.service_make_pfn_list(*rec.proc,
                                                     rec.va + msg.offset, pages);
    if (!walked.ok()) {
      --rec.attachments;
      resp.status = walked.error();
      co_return resp;
    }
    frames = std::move(walked).value();
    if (cfg_.walk_cache) {
      walk_cache_.emplace(walk_key, frames);
      walk_fifo_.push_back(walk_key);
      while (walk_fifo_.size() > cfg_.walk_cache_cap) {
        walk_cache_.erase(walk_fifo_.front());
        walk_fifo_.pop_front();
      }
    }
  }
  pin_frames(frames.extents());
  ++stats_.attaches_served;
  stats_.pages_shared += frames.page_count();
  const u64 handle = next_handle_++;
  resp.status = Errc::ok;
  resp.segid = msg.segid;
  resp.offset = handle;  // owner-side pin handle, echoed back on detach
  resp.size = msg.size;
  encode_pfn_payload(resp, frames);
  u64 capid = 0;
  if (node != nullptr) {
    // Charge the attach to its capability so cap_revoke can find and tear
    // down exactly the attachments minted under the revoked subtree.
    capid = node->id;
    ++node->live_attaches;
    ++cap_acct(msg.segid.value()).live_attaches;
    resp.cap = capid;
  }
  pins_.emplace(handle, PinRecord{msg.segid, std::move(frames), capid, msg.src});
  co_return resp;
}

sim::Task<Message> XememKernel::serve_detach(const Message& msg) {
  Message resp;
  resp.cmd = Cmd::detach_resp;
  resp.req_id = msg.req_id;
  resp.src = id();
  resp.dst = msg.src;
  resp.epoch = ns_epoch_;

  auto pin = pins_.find(msg.offset);  // offset carries the owner handle
  if (pin == pins_.end() || pin->second.segid != msg.segid) {
    // A detach of a handle that revocation already swept answers with the
    // terminal status, not not_attached: the attacher learns its mapping
    // died under it and tears down cleanly.
    resp.status = cfg_.capabilities && handle_revoked(msg.segid.value(), msg.offset)
                      ? Errc::revoked
                      : Errc::not_attached;
    co_return resp;
  }
  if (cfg_.capabilities && pin->second.cap != 0) {
    auto t = cap_trees_.find(msg.segid.value());
    if (t != cap_trees_.end()) {
      auto n = t->second.nodes.find(pin->second.cap);
      if (n != t->second.nodes.end() && n->second.live_attaches > 0) {
        --n->second.live_attaches;
      }
    }
    if (auto* a = cap_accounting_.find(msg.segid.value());
        a != nullptr && a->live_attaches > 0) {
      --a->live_attaches;
    }
  }
  unpin_frames(pin->second.frames.extents());
  pins_.erase(pin);
  auto ex = exports_.find(msg.segid.value());
  if (ex != exports_.end()) {
    XEMEM_ASSERT(ex->second.attachments > 0);
    --ex->second.attachments;
  }
  resp.status = Errc::ok;
  co_return resp;
}

u64 XememKernel::reap_attacher_pins(EnclaveId attacher) {
  u64 released = 0;
  for (auto it = pins_.begin(); it != pins_.end();) {
    PinRecord& pin = it->second;
    if (pin.attacher.value() != attacher.value()) {
      ++it;
      continue;
    }
    unpin_frames(pin.frames.extents());
    auto ex = exports_.find(pin.segid.value());
    if (ex != exports_.end() && ex->second.attachments > 0) {
      --ex->second.attachments;
    }
    if (cfg_.capabilities && pin.cap != 0) {
      auto t = cap_trees_.find(pin.segid.value());
      if (t != cap_trees_.end()) {
        auto n = t->second.nodes.find(pin.cap);
        if (n != t->second.nodes.end() && n->second.live_attaches > 0) {
          --n->second.live_attaches;
        }
      }
      if (auto* a = cap_accounting_.find(pin.segid.value());
          a != nullptr && a->live_attaches > 0) {
        --a->live_attaches;
      }
    }
    ++released;
    it = pins_.erase(it);
  }
  return released;
}

// --------------------------------------------- capability model (§9)

namespace {

// cap_derive rights wire codec: 6 u64s in the request payload, 5 echoed in
// the response (the holder binding is server state, not a right).
void encode_cap_rights(const CapRights& r, u64 holder, std::vector<u64>* out) {
  out->push_back(static_cast<u64>(r.access));
  out->push_back(r.attach_limit);
  out->push_back(r.window_off);
  out->push_back(r.window_size);
  out->push_back((r.transferable ? 1u : 0u) | (r.derivable ? 2u : 0u));
  out->push_back(holder);
}

CapRights decode_cap_rights(const std::vector<u64>& p) {
  CapRights r;
  if (p.size() < 5) return r;
  r.access = static_cast<AccessMode>(p[0]);
  r.attach_limit = p[1];
  r.window_off = p[2];
  r.window_size = p[3];
  r.transferable = (p[4] & 1u) != 0;
  r.derivable = (p[4] & 2u) != 0;
  return r;
}

}  // namespace

u64 XememKernel::mint_cap_id(CapTree& tree) {
  // splitmix64 over a per-kernel counter salted with the enclave id:
  // deterministic per seed (the crashpoint-sweep tests depend on it), yet
  // sparse in 64 bits — unforgeable by convention, like real XPMEM segids.
  for (;;) {
    u64 z = (next_cap_seq_++ + (id().value() << 32)) + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    if (z != 0 && !tree.nodes.contains(z)) return z;
  }
}

XememKernel::SegAccounting& XememKernel::cap_acct(u64 segid) {
  return cap_accounting_.touch(segid);
}

void XememKernel::tombstone_cap(u64 cap_id) {
  if (cap_id != 0) revoked_caps_.touch(cap_id) = 1;
}

void XememKernel::tombstone_handle(u64 segid, u64 handle) {
  revoked_handles_.touch({segid, handle}) = 1;
}

bool XememKernel::cap_crashpoint(const Message& msg) {
  if (crash_after_cap_requests_ == 0 || !cfg_.capabilities) return false;
  // Only capability-relevant owner-side commands advance the countdown:
  // derive/revoke always, get/attach only when they present a capability.
  const bool relevant =
      is_cap_cmd(msg.cmd) ||
      ((msg.cmd == Cmd::get || msg.cmd == Cmd::attach) && msg.cap != 0);
  if (!relevant) return false;
  if (++cap_requests_seen_ >= crash_after_cap_requests_) {
    crash();
    return true;
  }
  return false;
}

Errc XememKernel::cap_check(u64 segid, u64 cap_id, EnclaveId presenter,
                            AccessMode want, u64 offset, u64 size,
                            bool attaching, CapNode** out) {
  if (out != nullptr) *out = nullptr;
  if (!cfg_.capabilities) return Errc::ok;
  auto deny = [&](Errc e) {
    ++stats_.cap_denials;
    ++cap_acct(segid).denials;
    return e;
  };
  auto tree_it = cap_trees_.find(segid);
  if (tree_it == cap_trees_.end()) return Errc::ok;  // pre-capability export
  CapTree& tree = tree_it->second;
  u64 resolved = cap_id;
  if (resolved == 0) {
    // Capless (classic permit) access rides the root capability, so legacy
    // tenants keep working — and revoking the root cuts them off too.
    if (tree.require_cap) return deny(Errc::permission_denied);
    resolved = tree.root;
  }
  auto node_it = tree.nodes.find(resolved);
  if (node_it == tree.nodes.end()) return deny(Errc::permission_denied);
  CapNode& node = node_it->second;
  if (node.revoked) return deny(Errc::revoked);
  if (!node.rights.transferable && node.holder != 0 &&
      presenter.value() != node.holder) {
    return deny(Errc::permission_denied);
  }
  if (want == AccessMode::read_write &&
      node.rights.access == AccessMode::read_only) {
    return deny(Errc::permission_denied);
  }
  if (attaching) {
    const auto ex = exports_.find(segid);
    const u64 seg_bytes =
        ex != exports_.end() ? ex->second.pages * kPageSize : 0;
    const u64 wend = node.rights.window_size != 0
                         ? node.rights.window_off + node.rights.window_size
                         : seg_bytes;
    if (offset < node.rights.window_off || offset + size > wend) {
      return deny(Errc::permission_denied);
    }
    if (node.rights.attach_limit != 0 &&
        node.live_attaches >= node.rights.attach_limit) {
      return deny(Errc::permission_denied);
    }
  }
  if (out != nullptr) *out = &node;
  return Errc::ok;
}

Result<Capability> XememKernel::cap_derive_local(u64 segid, u64 parent_id,
                                                 EnclaveId presenter,
                                                 CapRights rights, u64 holder) {
  auto deny = [&](Errc e) {
    ++stats_.cap_denials;
    ++cap_acct(segid).denials;
    return Result<Capability>{e};
  };
  auto tree_it = cap_trees_.find(segid);
  if (tree_it == cap_trees_.end()) return Errc::no_such_segid;
  CapTree& tree = tree_it->second;
  const u64 pid = parent_id != 0 ? parent_id : tree.root;
  auto pit = tree.nodes.find(pid);
  if (pit == tree.nodes.end()) return deny(Errc::permission_denied);
  CapNode& parent = pit->second;  // unordered_map references survive insert
  if (parent.revoked) return deny(Errc::revoked);
  if (!parent.rights.derivable) return deny(Errc::permission_denied);
  if (!parent.rights.transferable && parent.holder != 0 &&
      presenter.value() != parent.holder) {
    return deny(Errc::permission_denied);
  }

  // The rights lattice only narrows on derivation; any widening attempt is
  // an escalation and is denied (and accounted).
  if (parent.rights.access == AccessMode::read_only &&
      rights.access == AccessMode::read_write) {
    return deny(Errc::permission_denied);
  }
  const auto ex = exports_.find(segid);
  const u64 seg_bytes = ex != exports_.end() ? ex->second.pages * kPageSize : 0;
  const u64 parent_end = parent.rights.window_size != 0
                             ? parent.rights.window_off + parent.rights.window_size
                             : seg_bytes;
  const u64 child_end = rights.window_size != 0
                            ? rights.window_off + rights.window_size
                            : seg_bytes;
  if (rights.window_off < parent.rights.window_off || child_end > parent_end ||
      rights.window_off > child_end) {
    return deny(Errc::permission_denied);
  }
  if (parent.rights.attach_limit != 0 &&
      (rights.attach_limit == 0 ||
       rights.attach_limit > parent.rights.attach_limit)) {
    return deny(Errc::permission_denied);
  }
  if (!parent.rights.transferable && rights.transferable) {
    return deny(Errc::permission_denied);
  }

  if (tree.nodes.size() >= cfg_.cap_table_cap) return Errc::out_of_memory;
  const u64 cid = mint_cap_id(tree);
  // A non-transferable child with no explicit holder binds to whoever
  // derived it.
  if (!rights.transferable && holder == 0) holder = presenter.value();
  CapNode child;
  child.id = cid;
  child.parent = pid;
  child.rights = rights;
  child.holder = holder;
  tree.nodes.emplace(cid, std::move(child));
  parent.children.push_back(cid);
  ++stats_.caps_derived;
  ++cap_acct(segid).derived_caps;
  return Capability{Segid{segid}, cid, rights};
}

Result<Capability> XememKernel::cap_root(Segid segid) const {
  if (!cfg_.capabilities) return Errc::invalid_argument;
  auto it = cap_trees_.find(segid.value());
  if (it == cap_trees_.end()) return Errc::no_such_segid;
  const CapNode& root = it->second.nodes.at(it->second.root);
  if (root.revoked) return Errc::revoked;
  return Capability{segid, root.id, root.rights};
}

Result<void> XememKernel::cap_require(os::Process& owner, Segid segid) {
  if (!cfg_.capabilities) return Errc::invalid_argument;
  auto ex = exports_.find(segid.value());
  if (ex == exports_.end()) return Errc::no_such_segid;
  if (ex->second.proc != &owner) return Errc::permission_denied;
  auto it = cap_trees_.find(segid.value());
  if (it == cap_trees_.end()) return Errc::no_such_segid;
  it->second.require_cap = true;
  return Result<void>{};
}

XememKernel::SegAccounting XememKernel::cap_accounting(Segid segid) const {
  const auto* a = cap_accounting_.find(segid.value());
  return a != nullptr ? *a : SegAccounting{};
}

u64 XememKernel::cap_count(Segid segid) const {
  auto it = cap_trees_.find(segid.value());
  if (it == cap_trees_.end()) return 0;
  u64 n = 0;
  for (const auto& [cid, node] : it->second.nodes) {
    if (!node.revoked) ++n;
  }
  return n;
}

sim::Task<Result<Capability>> XememKernel::cap_derive(const Capability& parent,
                                                      CapRights rights,
                                                      u64 holder) {
  if (!cfg_.capabilities || !parent.valid()) co_return Errc::invalid_argument;
  if (revoked_caps_.contains(parent.id)) co_return Errc::revoked;
  if (exports_.contains(parent.segid.value())) {
    co_return cap_derive_local(parent.segid.value(), parent.id, id(), rights,
                               holder);
  }
  Message req;
  req.cmd = Cmd::cap_derive;
  req.dst = EnclaveId{0};
  req.segid = parent.segid;
  req.cap = parent.id;
  encode_cap_rights(rights, holder, &req.payload);
  auto resp = co_await request_to_owner(std::move(req));
  if (!resp.ok()) co_return resp.error();
  Message& r = resp.value();
  if (r.status == Errc::revoked) tombstone_cap(parent.id);
  if (r.status != Errc::ok) co_return r.status;
  co_return Capability{parent.segid, r.cap, decode_cap_rights(r.payload)};
}

sim::Task<Result<void>> XememKernel::cap_revoke(const Capability& cap) {
  if (!cfg_.capabilities || !cap.valid()) co_return Errc::invalid_argument;
  if (exports_.contains(cap.segid.value())) {
    // Owner-local revoke: run the same server core directly (it unmaps
    // local attachments inline and fans out to remote attachers).
    Message fake;
    fake.segid = cap.segid;
    fake.cap = cap.id;
    fake.src = id();
    Message resp = co_await serve_cap_revoke(fake);
    tombstone_cap(cap.id);
    co_return resp.status == Errc::ok ? Result<void>{}
                                      : Result<void>{resp.status};
  }
  if (revoked_caps_.contains(cap.id)) co_return Result<void>{};  // idempotent
  Message req;
  req.cmd = Cmd::cap_revoke;
  req.dst = EnclaveId{0};
  req.segid = cap.segid;
  req.cap = cap.id;
  auto resp = co_await request_to_owner(std::move(req));
  if (!resp.ok()) co_return resp.error();
  if (resp.value().status == Errc::ok) tombstone_cap(cap.id);
  co_return resp.value().status == Errc::ok
      ? Result<void>{}
      : Result<void>{resp.value().status};
}

sim::Task<Message> XememKernel::serve_cap_derive(const Message& msg) {
  Message resp;
  resp.cmd = Cmd::cap_derive_resp;
  resp.req_id = msg.req_id;
  resp.src = id();
  resp.dst = msg.src;
  resp.epoch = ns_epoch_;
  if (!cfg_.capabilities || msg.payload.size() < 6) {
    resp.status = Errc::invalid_argument;
    co_return resp;
  }
  co_await os_.service_core()->run_irq(costs::kNameServerOp);
  const CapRights rights = decode_cap_rights(msg.payload);
  const u64 holder = msg.payload[5];
  auto derived = cap_derive_local(msg.segid.value(), msg.cap, msg.src, rights,
                                  holder);
  if (!derived.ok()) {
    resp.status = derived.error();
    co_return resp;
  }
  resp.status = Errc::ok;
  resp.segid = msg.segid;
  resp.cap = derived.value().id;
  encode_cap_rights(derived.value().rights, 0, &resp.payload);
  resp.payload.pop_back();  // holder binding is server state, not a right
  co_return resp;
}

sim::Task<Message> XememKernel::serve_cap_revoke(const Message& msg) {
  Message resp;
  resp.cmd = Cmd::cap_revoke_resp;
  resp.req_id = msg.req_id;
  resp.src = id();
  resp.dst = msg.src;
  resp.epoch = ns_epoch_;
  if (!cfg_.capabilities) {
    resp.status = Errc::invalid_argument;
    co_return resp;
  }
  auto tree_it = cap_trees_.find(msg.segid.value());
  if (tree_it == cap_trees_.end()) {
    resp.status = Errc::no_such_segid;
    co_return resp;
  }
  CapTree& tree = tree_it->second;
  auto node_it = tree.nodes.find(msg.cap);
  if (node_it == tree.nodes.end()) {
    resp.status = Errc::invalid_argument;
    co_return resp;
  }
  if (node_it->second.revoked) {
    resp.status = Errc::ok;  // idempotent: a retried revoke re-succeeds
    co_return resp;
  }

  // Walk the derivation subtree, marking every node revoked. Possession of
  // the cap id is the revoke authority (capability model: whoever can name
  // it can kill it) — typically the owner or the holder itself.
  std::vector<u64> stack{msg.cap};
  std::unordered_map<u64, u8> subtree;
  while (!stack.empty()) {
    const u64 cid = stack.back();
    stack.pop_back();
    auto it = tree.nodes.find(cid);
    if (it == tree.nodes.end() || it->second.revoked) continue;
    it->second.revoked = true;
    subtree.emplace(cid, 1);
    for (u64 ch : it->second.children) stack.push_back(ch);
  }
  ++stats_.revocations;
  ++cap_acct(msg.segid.value()).revocations;

  // Sweep every live attachment minted under the subtree: release the
  // owner pin, tombstone the handle, and group the teardown work per
  // attacher enclave for the one-way fan-out.
  std::map<u64, std::vector<u64>> by_attacher;  // enclave -> handles
  u64 unmaps = 0;
  for (auto it = pins_.begin(); it != pins_.end();) {
    PinRecord& pin = it->second;
    if (pin.segid != msg.segid || pin.cap == 0 || !subtree.contains(pin.cap)) {
      ++it;
      continue;
    }
    unpin_frames(pin.frames.extents());
    tombstone_handle(msg.segid.value(), it->first);
    by_attacher[pin.attacher.value()].push_back(it->first);
    auto ex = exports_.find(msg.segid.value());
    if (ex != exports_.end() && ex->second.attachments > 0) {
      --ex->second.attachments;
    }
    if (auto* a = cap_accounting_.find(msg.segid.value());
        a != nullptr && a->live_attaches > 0) {
      --a->live_attaches;
    }
    ++stats_.revoke_unmaps;
    ++unmaps;
    it = pins_.erase(it);
  }
  // Reuse the PR-3 invalidation plumbing: memoized walks for the segment
  // are flushed (conservative — survivors re-walk), and our own route
  // entry for it drops.
  drop_walk_cache(msg.segid);
  drop_owner_cache(msg.segid);

  // Fan the revocation out. Remote attachers get a one-way cap_revoked
  // carrying the dead cap ids and their handles; best-effort delivery —
  // server-side validation is the backstop for anyone who missed it.
  const std::vector<u64> dead_caps = [&] {
    std::vector<u64> v;
    v.reserve(subtree.size());
    for (const auto& [cid, one] : subtree) v.push_back(cid);
    std::sort(v.begin(), v.end());  // deterministic wire order
    return v;
  }();
  for (auto& [enclave, handles] : by_attacher) {
    if (enclave == id().value()) {
      // Our own enclave held attachments (owner self-attach): tear the
      // local mappings down inline.
      for (u64 cid : dead_caps) tombstone_cap(cid);
      for (u64 h : handles) co_await unmap_revoked_handle(msg.segid.value(), h);
      continue;
    }
    Message note;
    note.cmd = Cmd::cap_revoked;
    note.src = id();
    note.dst = EnclaveId{enclave};
    note.req_id = g_req_counter++;
    note.epoch = ns_epoch_;
    note.segid = msg.segid;
    note.cap = msg.cap;
    note.size = dead_caps.size();  // payload = [caps...] ++ [handles...]
    note.payload = dead_caps;
    note.payload.insert(note.payload.end(), handles.begin(), handles.end());
    ChannelEndpoint* via = route_for(note.dst);
    if (via == nullptr) continue;  // unreachable: their next access learns
    co_await via->send(std::move(note));
  }

  resp.status = Errc::ok;
  resp.size = unmaps;
  co_return resp;
}

sim::Task<void> XememKernel::apply_cap_revoked(Message msg) {
  if (!cfg_.capabilities) co_return;
  const u64 segid = msg.segid.value();
  const u64 ncaps = std::min<u64>(msg.size, msg.payload.size());
  for (u64 i = 0; i < ncaps; ++i) tombstone_cap(msg.payload[i]);
  for (u64 i = ncaps; i < msg.payload.size(); ++i) {
    const u64 handle = msg.payload[i];
    tombstone_handle(segid, handle);
    // Mapping-reuse drop: the shared owner pin is gone; nothing may be
    // served from these frames again.
    attach_cache_.erase({segid, handle});
    co_await unmap_revoked_handle(segid, handle);
  }
  // Route-cache evict, same as every other invalidation path.
  drop_owner_cache(msg.segid);
}

sim::Task<void> XememKernel::unmap_revoked_handle(u64 segid, u64 handle) {
  auto it = cap_maps_.find({segid, handle});
  if (it == cap_maps_.end()) co_return;
  std::vector<CapMapRec> recs = std::move(it->second);
  cap_maps_.erase(it);
  for (auto& rec : recs) {
    // Already-unmapped is fine (the application detached concurrently);
    // any later load/store through the cleared PTEs surfaces as a graceful
    // error from proc_read/proc_write, never a wild pointer.
    auto r = co_await os_.unmap_attachment(*rec.proc, rec.map_base, rec.pages);
    (void)r;
  }
}

void XememKernel::pin_frames(const std::vector<hw::FrameExtent>& runs) {
  auto& pm = os_.machine().pmem();
  for (const auto& e : runs) pm.ref_run(e);
}

void XememKernel::unpin_frames(const std::vector<hw::FrameExtent>& runs) {
  auto& pm = os_.machine().pmem();
  for (const auto& e : runs) pm.unref_run(e);
}

void XememKernel::encode_pfn_payload(Message& resp, const mm::PfnList& frames) {
  const u64 flat_bytes = frames.wire_bytes();
  if (cfg_.extent_wire) {
    const u64 ext_bytes = frames.extent_wire_bytes();
    // Pick the smaller encoding: a fully scattered list costs 12 B/extent
    // vs 8 B/page flat, so compression is not unconditionally a win.
    if (ext_bytes < flat_bytes) {
      resp.extents = frames.extents();
      stats_.extents_shipped += resp.extents.size();
      stats_.wire_bytes_saved += flat_bytes - ext_bytes;
      return;
    }
  }
  resp.payload.reserve(resp.payload.size() + frames.page_count());
  for (Pfn p : frames.pfns) resp.payload.push_back(p.value());
}

mm::PfnList XememKernel::decode_pfn_payload(const Message& resp) {
  if (!resp.extents.empty()) return mm::PfnList::from_extents(resp.extents);
  mm::PfnList frames;
  frames.pfns.reserve(resp.payload.size());
  for (u64 v : resp.payload) frames.pfns.push_back(Pfn{v});
  return frames;
}

void XememKernel::cache_owner(Segid segid, EnclaveId owner) {
  if (!cfg_.owner_route_cache || !owner.valid() || owner == EnclaveId{0} ||
      owner == id()) {
    return;
  }
  if (!owner_cache_.contains(segid.value())) owner_fifo_.push_back(segid.value());
  owner_cache_[segid.value()] = owner;
  while (owner_fifo_.size() > cfg_.owner_cache_cap) {
    owner_cache_.erase(owner_fifo_.front());
    owner_fifo_.pop_front();
  }
}

void XememKernel::drop_owner_cache(Segid segid) {
  // The FIFO entry stays behind; evicting an already-dropped key later is
  // a harmless no-op and the deque is bounded by owner_cache_cap anyway.
  owner_cache_.erase(segid.value());
}

void XememKernel::drop_owner_cache_for(EnclaveId dead) {
  for (auto it = owner_cache_.begin(); it != owner_cache_.end();) {
    it = it->second == dead ? owner_cache_.erase(it) : std::next(it);
  }
}

void XememKernel::drop_walk_cache(Segid segid) {
  for (auto it = walk_cache_.begin(); it != walk_cache_.end();) {
    it = std::get<0>(it->first) == segid.value() ? walk_cache_.erase(it)
                                                 : std::next(it);
  }
}

u64 XememKernel::pinned_frames() const {
  u64 n = 0;
  for (const auto& [h, rec] : pins_) n += rec.frames.page_count();
  return n;
}

// ---------------------------------------------------------------- user API

sim::Task<Result<Segid>> XememKernel::xpmem_make(os::Process& owner, Vaddr va,
                                                 u64 size, std::string name,
                                                 AccessMode max_access) {
  if ((va.value() & kPageMask) != 0 || size == 0) co_return Errc::invalid_argument;
  const u64 pages = pages_for(size);

  Segid sid{};
  if (is_ns_ && !sharding_enabled()) {
    co_await os_.service_core()->run_irq(costs::kNameServerOp);
    if (!name.empty()) {
      if (ns_names_.contains(name)) co_return Errc::already_exists;
    }
    sid = Segid{make_segid_value(ns_epoch_, next_segid_++)};
    ns_segids_[sid.value()] = NsSegidRecord{id(), size, name};
    if (!name.empty()) ns_names_[name] = sid;
  } else {
    Message req;
    req.cmd = Cmd::segid_alloc;
    req.dst = EnclaveId{0};
    req.size = size;
    req.name = name;
    if (sharding_enabled()) {
      // Named exports hash to their home shard (search must agree);
      // anonymous ones round-robin so registration load spreads.
      const auto S = static_cast<u32>(cfg_.ns_shards.size());
      req.shard = name.empty() ? static_cast<u32>(shard_rr_++ % S)
                               : shard_of_name(name, S);
      req.shard_epoch = shard_believed_epoch(req.shard);
    }
    auto resp = co_await request(std::move(req));
    if (!resp.ok()) co_return resp.error();
    if (resp.value().status != Errc::ok) co_return resp.value().status;
    sid = resp.value().segid;
  }
  exports_.emplace(sid.value(),
                   ExportRecord{&owner, va, pages, std::move(name), max_access});
  ++stats_.makes;
  if (cfg_.capabilities) {
    // Mint the owner capability: the widest rights the export allows (full
    // window, unlimited attaches, transferable, derivable). Everything a
    // peer gets is derived — and therefore revocable — from this root.
    CapTree tree;
    CapNode root;
    root.id = mint_cap_id(tree);
    root.rights = CapRights{max_access, 0, 0, 0, true, true};
    tree.root = root.id;
    tree.nodes.emplace(root.id, std::move(root));
    cap_trees_[sid.value()] = std::move(tree);
    ++stats_.caps_minted;
    cap_acct(sid.value());  // reserve the accounting slot
  }
  co_return sid;
}

sim::Task<Result<void>> XememKernel::xpmem_remove(os::Process& owner, Segid segid) {
  auto it = exports_.find(segid.value());
  if (it == exports_.end()) co_return Errc::no_such_segid;
  if (it->second.proc != &owner) co_return Errc::permission_denied;
  if (it->second.attachments > 0) co_return Errc::busy;
  // Tombstone before the deregistration round-trip: an attach or get that
  // arrives while we await below must not slip past the busy check above
  // (it would pin frames on an export about to be erased).
  it->second.removing = true;

  if (is_ns_ && !sharding_enabled()) {
    co_await os_.service_core()->run_irq(costs::kNameServerOp);
    auto ns = ns_segids_.find(segid.value());
    if (ns != ns_segids_.end()) {
      if (!ns->second.name.empty()) ns_names_.erase(ns->second.name);
      ns_segids_.erase(ns);
    }
  } else {
    Message req;
    req.cmd = Cmd::segid_remove;
    req.dst = EnclaveId{0};
    req.segid = segid;
    if (sharding_enabled()) {
      req.shard = shard_of_segid(segid, static_cast<u32>(cfg_.ns_shards.size()));
      req.shard_epoch = shard_believed_epoch(req.shard);
    }
    auto resp = co_await request(std::move(req));
    if (!resp.ok()) {
      it->second.removing = false;
      co_return resp.error();
    }
    if (resp.value().status != Errc::ok) {
      it->second.removing = false;
      co_return resp.value().status;
    }
  }
  exports_.erase(it);
  // The export is gone: memoized walks for it must never serve again (a
  // later attach must fail no_such_segid, not hand out freed frames).
  drop_walk_cache(segid);
  drop_owner_cache(segid);
  cap_trees_.erase(segid.value());  // no attachments existed; tree retires
  co_return Result<void>{};
}

sim::Task<Result<XpmemGrant>> XememKernel::xpmem_get(Segid segid, AccessMode want) {
  if (!segid.valid()) co_return Errc::invalid_argument;
  // Local fast path.
  auto it = exports_.find(segid.value());
  if (it != exports_.end() && it->second.removing) co_return Errc::no_such_segid;
  if (it != exports_.end()) {
    if (want == AccessMode::read_write &&
        it->second.max_access == AccessMode::read_only) {
      co_return Errc::permission_denied;
    }
    u64 capid = 0;
    if (cfg_.capabilities) {
      // A capless local get rides the export's root capability (so classic
      // tenants keep working); a revoked root denies even the owner path.
      CapNode* node = nullptr;
      const Errc ce =
          cap_check(segid.value(), 0, id(), want, 0, 0, false, &node);
      if (ce != Errc::ok) co_return ce;
      capid = node->id;
    }
    ++it->second.grants;
    co_return XpmemGrant{segid, it->second.pages * kPageSize, want, capid};
  }
  Message req;
  req.cmd = Cmd::get;
  req.dst = EnclaveId{0};
  req.segid = segid;
  req.access = static_cast<u8>(want);
  auto resp = co_await request_to_owner(std::move(req));
  if (!resp.ok()) co_return resp.error();
  if (resp.value().status != Errc::ok) co_return resp.value().status;
  // Under capabilities the owner resolved the capability this grant rides
  // (the root, for a capless request) and echoed its id.
  co_return XpmemGrant{segid, resp.value().size,
                       static_cast<AccessMode>(resp.value().access),
                       resp.value().cap};
}

sim::Task<Result<XpmemGrant>> XememKernel::xpmem_get(const Capability& cap,
                                                     AccessMode want) {
  if (!cfg_.capabilities || !cap.valid()) co_return Errc::invalid_argument;
  if (revoked_caps_.contains(cap.id)) co_return Errc::revoked;
  auto it = exports_.find(cap.segid.value());
  if (it != exports_.end()) {
    CapNode* node = nullptr;
    const Errc ce =
        cap_check(cap.segid.value(), cap.id, id(), want, 0, 0, false, &node);
    if (ce != Errc::ok) co_return ce;
    ++it->second.grants;
    co_return XpmemGrant{cap.segid, it->second.pages * kPageSize, want, node->id};
  }
  Message req;
  req.cmd = Cmd::get;
  req.dst = EnclaveId{0};
  req.segid = cap.segid;
  req.access = static_cast<u8>(want);
  req.cap = cap.id;
  auto resp = co_await request_to_owner(std::move(req));
  if (!resp.ok()) co_return resp.error();
  if (resp.value().status == Errc::revoked) tombstone_cap(cap.id);
  if (resp.value().status != Errc::ok) co_return resp.value().status;
  co_return XpmemGrant{cap.segid, resp.value().size,
                       static_cast<AccessMode>(resp.value().access),
                       resp.value().cap != 0 ? resp.value().cap : cap.id};
}

sim::Task<Result<void>> XememKernel::xpmem_release(const XpmemGrant& grant) {
  auto it = exports_.find(grant.segid.value());
  if (it != exports_.end()) {
    if (it->second.grants > 0) --it->second.grants;
    co_return Result<void>{};
  }
  Message req;
  req.cmd = Cmd::release;
  req.dst = EnclaveId{0};
  req.segid = grant.segid;
  req.src = id();
  req.req_id = g_req_counter++;
  req.epoch = ns_epoch_;
  if (is_ns_ && !sharding_enabled()) {
    auto ns = ns_segids_.find(grant.segid.value());
    if (ns == ns_segids_.end()) co_return Errc::no_such_segid;
    req.dst = ns->second.owner;
  } else if (auto oc = owner_cache_.find(grant.segid.value());
             oc != owner_cache_.end()) {
    // One-way releases benefit from the owner cache too: send straight to
    // the owner instead of bouncing off the name server.
    req.dst = oc->second;
    ++stats_.lookup_cache_hits;
  } else if (sharding_enabled()) {
    // One-way and best-effort: aim at the believed primary of the segid's
    // home shard, which forwards to the owner. A missed grant decrement is
    // tolerable (releases are advisory; remove still fails busy only on
    // attachments).
    const auto S = static_cast<u32>(cfg_.ns_shards.size());
    req.shard = shard_of_segid(grant.segid, S);
    req.shard_epoch = shard_believed_epoch(req.shard);
    const auto& group = cfg_.ns_shards[req.shard];
    req.dst = EnclaveId{group[(req.shard_epoch - 1) % group.size()]};
  }
  ChannelEndpoint* via = route_for(req.dst);
  if (via == nullptr) co_return Errc::unreachable;
  co_await via->send(std::move(req));  // one-way
  co_return Result<void>{};
}

sim::Task<Result<XpmemAttachment>> XememKernel::xpmem_attach(os::Process& attacher,
                                                             const XpmemGrant& grant,
                                                             u64 offset, u64 size) {
  if (!grant.valid() || size == 0 || offset + size > grant.size) {
    co_return Errc::invalid_argument;
  }
  // XPMEM permits byte-granular requests: map the covering pages and
  // return an address pointing at the requested byte.
  const u64 page_off = page_align_down(offset);
  const u64 sub = offset - page_off;
  const u64 pages = pages_for(sub + size);

  // A capability known revoked fails fast locally — no protocol traffic,
  // terminal status (the owner would only tell us the same thing).
  if (cfg_.capabilities && grant.cap != 0 && revoked_caps_.contains(grant.cap)) {
    co_return Errc::revoked;
  }

  // Local fast path: exporter lives in this enclave (paper section 4.2:
  // "the attachment proceeds using the conventions of the local OS").
  auto it = exports_.find(grant.segid.value());
  if (it != exports_.end() && it->second.removing) co_return Errc::no_such_segid;
  if (it != exports_.end()) {
    ExportRecord& rec = it->second;
    if ((page_off >> kPageShift) + pages > rec.pages) {
      co_return Errc::invalid_argument;
    }
    CapNode* node = nullptr;
    if (cfg_.capabilities) {
      // The local fast path enforces the same server-side validation the
      // remote path gets: window, access mode, attach limit (checked on
      // the page-rounded request, like the wire carries it).
      const Errc ce = cap_check(grant.segid.value(), grant.cap, id(),
                                grant.mode, page_off, pages * kPageSize, true,
                                &node);
      if (ce != Errc::ok) co_return ce;
    }
    // Reserved before the walk suspends so a concurrent remove returns
    // busy instead of erasing the export under us.
    ++rec.attachments;
    auto frames =
        co_await os_.service_make_pfn_list(*rec.proc, rec.va + page_off, pages);
    if (!frames.ok()) {
      --rec.attachments;
      co_return frames.error();
    }
    pin_frames(frames.value().extents());
    ++stats_.local_attaches;
    stats_.pages_shared += frames.value().page_count();
    auto va = co_await os_.map_attachment(attacher, frames.value(),
                                          os_.lazy_local_attach(),
                                          grant.mode == AccessMode::read_write);
    if (!va.ok()) {
      unpin_frames(frames.value().extents());
      --rec.attachments;
      co_return va.error();
    }
    const u64 handle = next_handle_++;
    u64 capid = 0;
    if (node != nullptr) {
      capid = node->id;
      ++node->live_attaches;
      ++cap_acct(grant.segid.value()).live_attaches;
    }
    pins_.emplace(handle,
                  PinRecord{grant.segid, std::move(frames).value(), capid, id()});
    if (cfg_.capabilities) {
      cap_maps_[{grant.segid.value(), handle}].push_back(
          CapMapRec{&attacher, va.value(), pages});
    }
    co_return XpmemAttachment{grant.segid, va.value() + sub, va.value(), pages,
                              id(), handle, true};
  }

  const bool writable = grant.mode == AccessMode::read_write;

  // Attacher-side mapping reuse: a window contained in one of our live
  // attachments of this segment needs no protocol traffic at all — the
  // frames are known and the owner already holds a pin covering them.
  // Install a fresh local mapping and share the owner-side pin by
  // refcount; the last detach releases it remotely. Safe against reuse of
  // stale frames because entries only exist while their remote pin does
  // (detach/crash erase them) and segids are never recycled.
  //
  // Under capabilities the cache cannot be trusted at all for remote
  // segments: a revocation sweeping the owner's pins propagates here via
  // a one-way note, and until it lands a cached entry would hand out
  // frames the owner has already unpinned. Rights must be re-validated by
  // the owner on every attach — reuse is a capabilities-off optimization
  // (pay-for-use; see DESIGN.md §9).
  if (cfg_.attach_reuse && !cfg_.capabilities) {
    for (auto& [key, entry] : attach_cache_) {
      if (key.first != grant.segid.value()) continue;
      if (entry.page_off > page_off ||
          page_off + pages * kPageSize > entry.page_off + entry.pages * kPageSize) {
        continue;
      }
      auto va = co_await os_.map_attachment(
          attacher,
          entry.frames.slice((page_off - entry.page_off) >> kPageShift, pages),
          false, writable);
      if (!va.ok()) co_return va.error();
      ++entry.refs;
      ++stats_.reuse_hits;
      co_return XpmemAttachment{grant.segid, va.value() + sub, va.value(),
                                pages, entry.owner, key.second, false};
    }
  }

  // Remote path: route the attach through the name server to the owner.
  Message req;
  req.cmd = Cmd::attach;
  req.dst = EnclaveId{0};
  req.segid = grant.segid;
  req.offset = page_off;
  req.size = pages * kPageSize;
  req.access = static_cast<u8>(grant.mode);
  req.cap = grant.cap;
  auto resp = co_await request_to_owner(std::move(req));
  if (!resp.ok()) co_return resp.error();
  Message& r = resp.value();
  if (r.status == Errc::revoked) tombstone_cap(grant.cap);
  if (r.status != Errc::ok) co_return r.status;

  mm::PfnList frames = decode_pfn_payload(r);
  ++stats_.attaches_issued;
  // An extent-encoded response hands its runs straight to the extent-aware
  // mapping path, which maps run-at-a-time (and lets Kitten pick 2 MiB
  // entries per aligned run) instead of expanding to a flat list first.
  auto va = r.extents.empty()
                ? co_await os_.map_attachment(attacher, frames, false, writable)
                : co_await os_.map_attachment_extents(attacher, r.extents,
                                                      false, writable);
  if (!va.ok()) co_return va.error();
  if (cfg_.capabilities) {
    // Revocation raced this attach and its fan-out overtook the response:
    // the owner already released the pin, so the mapping we just installed
    // is dead. Tear it down and surface the terminal status.
    const u64 effective = grant.cap != 0 ? grant.cap : r.cap;
    if (handle_revoked(grant.segid.value(), r.offset) ||
        (effective != 0 && revoked_caps_.contains(effective))) {
      co_await os_.unmap_attachment(attacher, va.value(), pages);
      co_return Errc::revoked;
    }
    cap_maps_[{grant.segid.value(), r.offset}].push_back(
        CapMapRec{&attacher, va.value(), pages});
  }
  if (cfg_.attach_reuse) {
    attach_cache_.emplace(
        std::make_pair(grant.segid.value(), r.offset),
        ReuseEntry{page_off, pages, std::move(frames), r.src, 1, grant.cap});
  }
  co_return XpmemAttachment{grant.segid, va.value() + sub, va.value(), pages,
                            r.src, r.offset, false};
}

sim::Task<Result<void>> XememKernel::xpmem_detach(os::Process& attacher,
                                                  const XpmemAttachment& att) {
  auto unmapped = co_await os_.unmap_attachment(attacher, att.map_base, att.pages);
  // A retried detach may find the range already unmapped by a failed
  // predecessor (local half done, owner half lost with a dying forwarder)
  // — or by a revocation sweep that got here first.
  // Push on to the owner-side release anyway so its pin cannot leak.
  if (!unmapped.ok() && unmapped.error() != Errc::not_attached) co_return unmapped;

  if (cfg_.capabilities) {
    // Retire our teardown record for this mapping (the revocation fan-out
    // must not unmap an address the application already recycled).
    auto cm = cap_maps_.find({att.segid.value(), att.owner_handle});
    if (cm != cap_maps_.end()) {
      auto& recs = cm->second;
      for (auto r = recs.begin(); r != recs.end(); ++r) {
        if (r->map_base == att.map_base && r->proc == &attacher) {
          recs.erase(r);
          break;
        }
      }
      if (recs.empty()) cap_maps_.erase(cm);
    }
  }

  if (att.local) {
    auto pin = pins_.find(att.owner_handle);
    if (pin == pins_.end()) {
      // Revocation swept the pin before this detach: the teardown already
      // happened, so the detach succeeds vacuously.
      if (cfg_.capabilities && handle_revoked(att.segid.value(), att.owner_handle)) {
        co_return Result<void>{};
      }
      co_return Errc::not_attached;
    }
    if (cfg_.capabilities && pin->second.cap != 0) {
      auto t = cap_trees_.find(att.segid.value());
      if (t != cap_trees_.end()) {
        auto n = t->second.nodes.find(pin->second.cap);
        if (n != t->second.nodes.end() && n->second.live_attaches > 0) {
          --n->second.live_attaches;
        }
      }
      if (auto* a = cap_accounting_.find(att.segid.value());
          a != nullptr && a->live_attaches > 0) {
        --a->live_attaches;
      }
    }
    unpin_frames(pin->second.frames.extents());
    pins_.erase(pin);
    auto ex = exports_.find(att.segid.value());
    if (ex != exports_.end() && ex->second.attachments > 0) --ex->second.attachments;
    co_return Result<void>{};
  }

  // Other local attachments may share this owner-side pin (attach_reuse):
  // only the last one releases it remotely.
  const auto reuse_key = std::make_pair(att.segid.value(), att.owner_handle);
  auto cached = attach_cache_.find(reuse_key);
  if (cached != attach_cache_.end() && --cached->second.refs > 0) {
    co_return Result<void>{};
  }

  if (cfg_.capabilities && handle_revoked(att.segid.value(), att.owner_handle)) {
    // The owner already released this pin when it revoked the capability:
    // a detach round-trip would only be told "revoked". Clean up locally.
    attach_cache_.erase(reuse_key);
    co_return Result<void>{};
  }

  Message req;
  req.cmd = Cmd::detach;
  req.dst = EnclaveId{0};
  req.segid = att.segid;
  req.offset = att.owner_handle;
  auto resp = co_await request_to_owner(std::move(req));
  // Erase by key, not iterator: a concurrent crash() clears the cache
  // while we awaited the response. Drop the entry even on a failed detach
  // (the owner is unreachable or gone; reusing its frames would be stale).
  attach_cache_.erase(reuse_key);
  if (!resp.ok()) co_return resp.error();
  // "revoked" on a detach means the owner tore the attachment down before
  // we asked: the end state (unmapped, unpinned) is what a detach wants.
  co_return resp.value().status == Errc::ok || resp.value().status == Errc::revoked
      ? Result<void>{}
      : Result<void>{resp.value().status};
}

namespace {

std::vector<std::pair<std::string, Segid>> decode_name_list(const Message& m) {
  std::vector<std::pair<std::string, Segid>> out;
  size_t pos = 0;
  for (u64 sid : m.payload) {
    const size_t next = m.name.find('\n', pos);
    out.emplace_back(m.name.substr(pos, next - pos), Segid{sid});
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

}  // namespace

sim::Task<Result<std::vector<std::pair<std::string, Segid>>>>
XememKernel::xpmem_list() {
  if (is_ns_ && !sharding_enabled()) {
    co_await os_.service_core()->run_irq(costs::kNameServerOp);
    std::vector<std::pair<std::string, Segid>> out;
    for (const auto& [name, sid] : ns_names_) out.emplace_back(name, sid);
    co_return out;
  }
  if (sharding_enabled()) {
    // The registry is partitioned: enumerate every shard and merge.
    std::vector<std::pair<std::string, Segid>> out;
    for (u32 s = 0; s < cfg_.ns_shards.size(); ++s) {
      Message req;
      req.cmd = Cmd::name_list;
      req.shard = s;
      req.shard_epoch = shard_believed_epoch(s);
      auto resp = co_await request(std::move(req));
      if (!resp.ok()) co_return resp.error();
      if (resp.value().status != Errc::ok) co_return resp.value().status;
      for (auto& p : decode_name_list(resp.value())) out.push_back(std::move(p));
    }
    co_return out;
  }
  Message req;
  req.cmd = Cmd::name_list;
  req.dst = EnclaveId{0};
  auto resp = co_await request(std::move(req));
  if (!resp.ok()) co_return resp.error();
  if (resp.value().status != Errc::ok) co_return resp.value().status;
  co_return decode_name_list(resp.value());
}

sim::Task<Result<Segid>> XememKernel::xpmem_search(const std::string& name) {
  if (is_ns_ && !sharding_enabled()) {
    co_await os_.service_core()->run_irq(costs::kNameServerOp);
    auto it = ns_names_.find(name);
    if (it == ns_names_.end()) co_return Errc::no_such_segid;
    co_return it->second;
  }
  Message req;
  req.cmd = Cmd::name_lookup;
  req.dst = EnclaveId{0};
  req.name = name;
  if (sharding_enabled()) {
    req.shard = shard_of_name(name, static_cast<u32>(cfg_.ns_shards.size()));
    req.shard_epoch = shard_believed_epoch(req.shard);
  }
  auto resp = co_await request(std::move(req));
  if (!resp.ok()) co_return resp.error();
  if (resp.value().status != Errc::ok) co_return resp.value().status;
  co_return resp.value().segid;
}

// ---------------------------------------- sharded name service (DESIGN §6c)

sim::Task<void> XememKernel::shard_bootstrap_actor() {
  co_await registered_.wait();
  if (crashed_ || stopped_ || !id().valid()) co_return;
  auto* eng = sim::Engine::current();
  for (u32 s = 0; s < cfg_.ns_shards.size(); ++s) {
    const auto& group = cfg_.ns_shards[s];
    for (u32 i = 0; i < group.size(); ++i) {
      if (group[i] != id().value()) continue;
      auto rep = std::make_unique<ShardReplica>();
      rep->shard = s;
      rep->self_index = i;
      rep->primary = (i == 0);  // boot primary of epoch 1
      rep->last_primary_contact = sim::now();
      for (u64 peer : group) {
        if (peer != id().value()) rep->peer_contact[peer] = sim::now();
      }
      shard_replicas_.emplace(s, std::move(rep));
      eng->spawn(shard_probe_actor(s));
      if (cfg_.lease_duration > 0) eng->spawn(shard_lease_reaper(s));
    }
  }
}

sim::Task<void> XememKernel::hello_actor() {
  co_await registered_.wait();
  if (crashed_ || stopped_ || !id().valid()) co_return;
  // Snapshot: channels_ may grow while this coroutine suspends in send().
  const std::vector<ChannelEndpoint*> eps = channels_;
  for (auto* ep : eps) {
    Message m;
    m.cmd = Cmd::hello;
    m.src = id();
    m.req_id = g_req_counter++;
    m.epoch = ns_epoch_;
    co_await ep->send(std::move(m));
  }
}

sim::Task<void> XememKernel::shard_handle(Message msg, ChannelEndpoint* from) {
  auto repit = shard_replicas_.find(msg.shard);
  if (repit == shard_replicas_.end()) {
    // Misaddressed: a stale believed epoch can point a client at an
    // enclave that hosts no replica of this shard. Retryable — the client
    // rotates and eventually reaches a member carrying the real epoch.
    if (msg.is_one_way()) co_return;
    Message rej;
    rej.cmd = response_cmd(msg.cmd);
    rej.req_id = msg.req_id;
    rej.src = id();
    rej.dst = msg.src;
    rej.epoch = ns_epoch_;
    rej.shard = msg.shard;
    rej.shard_epoch = shard_believed_epoch(msg.shard);
    rej.status = Errc::retry_later;
    co_await from->send(std::move(rej));
    co_return;
  }
  ShardReplica* rep = repit->second.get();
  ++stats_.shard_requests;
  // Deterministic crashpoint hook: die on the N-th shard-service command,
  // consuming it before any processing (the sweep never observes a
  // half-applied mutation).
  if (crash_after_shard_requests_ != 0 &&
      stats_.shard_requests >= crash_after_shard_requests_) {
    crash();
    co_return;
  }
  co_await os_.service_core()->run_irq(costs::kNameServerOp);
  if (crashed_ || stopped_) co_return;

  const auto& group = cfg_.ns_shards[msg.shard];
  if (msg.src.valid() &&
      std::find(group.begin(), group.end(), msg.src.value()) != group.end()) {
    rep->peer_contact[msg.src.value()] = sim::now();
  }

  Message resp;
  resp.cmd = response_cmd(msg.cmd);
  resp.req_id = msg.req_id;
  resp.src = id();
  resp.dst = msg.src;
  resp.epoch = ns_epoch_;
  resp.shard = msg.shard;
  resp.shard_epoch = rep->epoch;
  resp.status = Errc::ok;

  // ----- Replica-group protocol.

  if (msg.cmd == Cmd::shard_probe) {
    // A follower checking on its believed primary. A not_primary answer
    // (carrying our epoch) redirects it without counting as a miss.
    resp.status = rep->primary ? Errc::ok : Errc::not_primary;
    co_await from->send(std::move(resp));
    co_return;
  }

  if (msg.cmd == Cmd::shard_vote) {
    // Paxos-style prepare: promise the proposal unless already promised
    // (or in) something at least as new; a promise carries the full op
    // log so the winner adopts the most complete history in the quorum.
    const u64 flr = std::max(rep->epoch, rep->promised);
    if (msg.shard_epoch <= flr) {
      resp.status = Errc::stale_epoch;
      resp.shard_epoch = flr;
    } else {
      rep->promised = msg.shard_epoch;
      encode_shard_ops(rep->log, &resp);
      resp.offset = rep->log.size();
    }
    co_await from->send(std::move(resp));
    co_return;
  }

  if (msg.cmd == Cmd::shard_announce) {
    if (msg.shard_epoch > rep->epoch) {
      rep->epoch = msg.shard_epoch;
      rep->primary = false;
      rep->promoting = false;  // abort any in-flight candidacy: it lost
      rep->last_primary_contact = sim::now();
      rep->quorum_lost_at = 0;
      if (msg.shard < shard_epoch_.size()) {
        shard_epoch_[msg.shard] =
            std::max(shard_epoch_[msg.shard], msg.shard_epoch);
      }
    }
    co_return;  // one-way
  }

  if (msg.cmd == Cmd::shard_replicate || msg.cmd == Cmd::shard_sync) {
    const u64 flr = std::max(rep->epoch, rep->promised);
    if (msg.shard_epoch < flr) {
      resp.status = Errc::stale_epoch;
      resp.shard_epoch = flr;
      co_await from->send(std::move(resp));
      co_return;
    }
    if (msg.shard_epoch > rep->epoch || rep->primary) {
      // A primary of a newer epoch exists (or we wrongly believed we led):
      // step down and follow it.
      rep->epoch = msg.shard_epoch;
      rep->primary = false;
      rep->promoting = false;
      if (msg.shard < shard_epoch_.size()) {
        shard_epoch_[msg.shard] =
            std::max(shard_epoch_[msg.shard], msg.shard_epoch);
      }
    }
    rep->last_primary_contact = sim::now();
    rep->quorum_lost_at = 0;
    if (msg.offset > rep->log.size()) {
      // Gap: we missed earlier entries. Ask for a catch-up suffix starting
      // at our log end (retry_later + offset is the protocol for that).
      resp.status = Errc::retry_later;
      resp.offset = rep->log.size();
      co_await from->send(std::move(resp));
      co_return;
    }
    const std::vector<ShardOp> ops = decode_shard_ops(msg);
    bool truncated = false;
    u64 index = msg.offset;
    for (const auto& op : ops) {
      if (index < rep->log.size()) {
        if (!same_shard_op(rep->log[index], op)) {
          // Conflict: an uncommitted tail from a deposed primary. The
          // current primary's log wins; drop ours from here on.
          rep->log.resize(index);
          truncated = true;
          rep->log.push_back(op);
        }
      } else {
        rep->log.push_back(op);
      }
      ++index;
    }
    if (truncated) {
      shard_rebuild(rep);
    } else {
      while (rep->applied < rep->log.size()) {
        shard_apply(rep, rep->log[rep->applied]);
        ++rep->applied;
      }
    }
    if (msg.cmd == Cmd::shard_replicate) {
      ++stats_.replications;
    } else {
      ++stats_.catchups;
    }
    resp.offset = rep->log.size();
    resp.shard_epoch = rep->epoch;
    co_await from->send(std::move(resp));
    co_return;
  }

  // ----- Client registry commands.

  if (msg.cmd == Cmd::heartbeat) {
    // Lease renewal is epoch-agnostic and renew-only: an idle-but-alive
    // owner must never be garbage-collected because its renewal raced an
    // election it had not heard about.
    if (cfg_.lease_duration > 0 && msg.src.valid()) {
      auto renew = [&](ShardReplica* r) {
        auto l = r->leases.find(msg.src.value());
        if (l != r->leases.end()) l->second = sim::now() + cfg_.lease_duration;
      };
      renew(rep);
      // Batched renewal (sender has batched_heartbeats on): the payload
      // lists every additional shard we host whose renewal the sender
      // coalesced into this one message.
      for (u64 s : msg.payload) {
        auto extra = shard_replicas_.find(static_cast<u32>(s));
        if (extra != shard_replicas_.end()) renew(extra->second.get());
      }
    }
    co_return;  // one-way
  }

  if (msg.shard_epoch < rep->epoch) {
    ++stats_.epoch_rejects;
    if (msg.is_one_way()) co_return;
    resp.status = Errc::stale_epoch;
    co_await from->send(std::move(resp));
    co_return;
  }
  if (msg.shard_epoch > rep->epoch) {
    // The client is ahead of us: an election we have not heard of. Never
    // serve from a view we know is behind.
    if (msg.is_one_way()) co_return;
    resp.status = Errc::retry_later;
    co_await from->send(std::move(resp));
    co_return;
  }

  Message cached;
  if (dedup_hit(msg.req_id, &cached)) {
    ++stats_.dup_suppressed;
    if (!msg.is_one_way()) co_await from->send(std::move(cached));
    co_return;
  }

  const bool is_write =
      msg.cmd == Cmd::segid_alloc || msg.cmd == Cmd::segid_remove;
  if (is_write && !rep->primary) {
    ++stats_.not_primary_rejects;
    resp.status = Errc::not_primary;
    co_await from->send(std::move(resp));
    co_return;
  }

  if (!shard_is_fresh(*rep)) {
    // Minority side of a partition (or an isolated replica): answer
    // retry_later inside the grace window, terminal no_quorum after it.
    if (msg.cmd == Cmd::release) co_return;  // one-way: drop
    resp.status = shard_unavailable_status(rep);
    if (resp.status == Errc::no_quorum) ++stats_.no_quorum_rejects;
    co_await from->send(std::move(resp));
    co_return;
  }

  switch (msg.cmd) {
    case Cmd::segid_alloc: {
      if (!msg.name.empty() && rep->names.contains(msg.name)) {
        resp.status = Errc::already_exists;
        dedup_store(msg.req_id, resp);
        co_await from->send(std::move(resp));
        co_return;
      }
      // The minting shard issues sequence numbers congruent to itself
      // (mod the shard count) so shard_of_segid routes segid-keyed
      // commands home without a directory; the epoch prefix keeps segids
      // unique across elections (seq restarts per epoch).
      const auto S = static_cast<u64>(cfg_.ns_shards.size());
      ShardOp op;
      op.kind = ShardOp::Kind::alloc;
      op.epoch = rep->epoch;
      op.segid = make_segid_value(rep->epoch, rep->next_seq * S + rep->shard);
      op.size = msg.size;
      op.owner = msg.src.value();
      op.name = msg.name;
      ++rep->next_seq;
      auto committed = co_await shard_quorum_commit(rep, op);
      if (crashed_ || stopped_) co_return;
      resp.shard_epoch = rep->epoch;
      if (!committed.ok()) {
        // Never dedup-stored: the client's retry must re-execute against
        // whichever primary survives.
        resp.status = committed.error();
        if (resp.status == Errc::no_quorum) ++stats_.no_quorum_rejects;
        co_await from->send(std::move(resp));
        co_return;
      }
      resp.segid = Segid{op.segid};
      dedup_store(msg.req_id, resp);
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::segid_remove: {
      auto it = rep->segids.find(msg.segid.value());
      if (it == rep->segids.end()) {
        // Authoritative: this replica is fresh and the quorum-intersection
        // property makes its committed view complete.
        resp.status = Errc::no_such_segid;
        dedup_store(msg.req_id, resp);
        co_await from->send(std::move(resp));
        co_return;
      }
      ShardOp op;
      op.kind = ShardOp::Kind::remove;
      op.epoch = rep->epoch;
      op.segid = msg.segid.value();
      op.size = it->second.size;
      op.owner = it->second.owner.value();
      op.name = it->second.name;
      auto committed = co_await shard_quorum_commit(rep, op);
      if (crashed_ || stopped_) co_return;
      resp.shard_epoch = rep->epoch;
      if (!committed.ok()) {
        resp.status = committed.error();
        if (resp.status == Errc::no_quorum) ++stats_.no_quorum_rejects;
        co_await from->send(std::move(resp));
        co_return;
      }
      dedup_store(msg.req_id, resp);
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::name_lookup: {
      auto it = rep->names.find(msg.name);
      if (it == rep->names.end()) {
        resp.status = Errc::no_such_segid;
      } else {
        resp.segid = it->second;
        resp.size = rep->segids[it->second.value()].size;
      }
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::name_list: {
      for (const auto& [nm, sid] : rep->names) {
        if (!resp.name.empty()) resp.name += '\n';
        resp.name += nm;
        resp.payload.push_back(sid.value());
      }
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::get:
    case Cmd::attach:
    case Cmd::detach:
    case Cmd::cap_derive:
    case Cmd::cap_revoke:
    case Cmd::release: {
      // Segid-keyed commands resolve the owner here and forward, exactly
      // like the classic name server (the response retraces through the
      // pending_fwd_ table).
      auto it = rep->segids.find(msg.segid.value());
      if (it == rep->segids.end()) {
        if (msg.cmd == Cmd::release) co_return;  // one-way: drop
        resp.status = Errc::no_such_segid;
        dedup_store(msg.req_id, resp);
        co_await from->send(std::move(resp));
        co_return;
      }
      const EnclaveId owner = it->second.owner;
      if (owner == id()) {
        if (cap_crashpoint(msg)) co_return;
        Message resp2;
        switch (msg.cmd) {
          case Cmd::get: resp2 = co_await serve_get(msg); break;
          case Cmd::attach: resp2 = co_await serve_attach(msg); break;
          case Cmd::detach: resp2 = co_await serve_detach(msg); break;
          case Cmd::cap_derive: resp2 = co_await serve_cap_derive(msg); break;
          case Cmd::cap_revoke: resp2 = co_await serve_cap_revoke(msg); break;
          default: {
            dedup_store(msg.req_id, Message{});  // one-way release marker
            auto ex = exports_.find(msg.segid.value());
            if (ex != exports_.end() && ex->second.grants > 0) {
              --ex->second.grants;
            }
            co_return;
          }
        }
        dedup_store(msg.req_id, resp2);
        co_await from->send(std::move(resp2));
        co_return;
      }
      msg.dst = owner;
      msg.shard = 0;
      msg.shard_epoch = 0;  // leaves the shard fabric: plain owner traffic
      co_await forward(std::move(msg), from);
      co_return;
    }
    default:
      XLOG_WARN("xemem", "%s: shard %u: unexpected %s", os_.name().c_str(),
                msg.shard, cmd_name(msg.cmd));
      co_return;
  }
}

sim::Task<Result<void>> XememKernel::shard_quorum_commit(ShardReplica* rep,
                                                         ShardOp op) {
  // One write in flight per shard: the log index appended below must be
  // settled (committed or rolled back) before the next write picks its own.
  co_await rep->write_mutex.lock();
  if (crashed_ || stopped_) {
    rep->write_mutex.unlock();
    co_return Errc::unreachable;
  }
  if (!rep->primary || rep->epoch != op.epoch) {
    rep->write_mutex.unlock();
    co_return Errc::not_primary;
  }
  const u64 index = rep->log.size();
  const u64 epoch = rep->epoch;
  XEMEM_ASSERT_MSG(rep->applied == index,
                   "primary log must be fully applied before a new write");
  rep->log.push_back(op);

  const auto& group = cfg_.ns_shards[rep->shard];
  auto round = std::make_shared<QuorumRound>();
  round->total = static_cast<u32>(group.size());
  round->majority = round->total / 2 + 1;
  if (round->acks >= round->majority) round->settled.set();  // group of one
  auto* eng = sim::Engine::current();
  for (u64 peer : group) {
    if (peer == id().value()) continue;
    eng->spawn(shard_replicate_to(this, rep, peer, index, op, round));
  }
  // Each replication attempt is bounded by quorum_timeout, so this wait is
  // bounded too: a replica crashing mid-replication can delay the round,
  // never hang it.
  co_await round->settled.wait();

  const bool won = round->acks >= round->majority && !crashed_ && !stopped_ &&
                   rep->primary && rep->epoch == epoch;
  if (won) {
    shard_apply(rep, rep->log[index]);
    rep->applied = index + 1;
    rep->quorum_lost_at = 0;
    ++stats_.quorum_writes;
    rep->write_mutex.unlock();
    co_return Result<void>{};
  }
  ++stats_.quorum_fails;
  // Roll the unacknowledged tail back so a failed write leaves no trace —
  // unless an adoption already rewrote the log underneath us.
  if (rep->log.size() == index + 1 && rep->applied <= index &&
      same_shard_op(rep->log[index], op)) {
    rep->log.pop_back();
  }
  rep->write_mutex.unlock();
  if (crashed_ || stopped_) co_return Errc::unreachable;
  if (!rep->primary || rep->epoch != epoch) co_return Errc::not_primary;
  co_return shard_unavailable_status(rep);
}

sim::Task<void> XememKernel::shard_replicate_to(
    XememKernel* k, ShardReplica* rep, u64 peer, u64 index, ShardOp op,
    std::shared_ptr<QuorumRound> round) {
  bool acked = false;
  Message m;
  m.cmd = Cmd::shard_replicate;
  m.src = k->id();
  m.dst = EnclaveId{peer};
  m.shard = rep->shard;
  m.shard_epoch = op.epoch;
  m.offset = index;
  encode_shard_ops({op}, &m);
  auto resp = co_await k->request(std::move(m), nullptr, k->cfg_.quorum_timeout,
                                  /*max_retries=*/0);
  if (!k->crashed_ && !k->stopped_ && resp.ok()) {
    Message& r = resp.value();
    if (r.status == Errc::ok) {
      acked = true;
    } else if (r.status == Errc::retry_later && r.offset < index) {
      // The follower is missing earlier entries: ship the whole suffix it
      // lacks in one shard_sync, bounded like the replicate itself. Guard
      // against the log shifting underneath us while suspended (adoption).
      if (rep->epoch == op.epoch && rep->log.size() > index &&
          same_shard_op(rep->log[index], op)) {
        Message sync;
        sync.cmd = Cmd::shard_sync;
        sync.src = k->id();
        sync.dst = EnclaveId{peer};
        sync.shard = rep->shard;
        sync.shard_epoch = op.epoch;
        sync.offset = r.offset;
        const std::vector<ShardOp> suffix(
            rep->log.begin() + static_cast<i64>(r.offset),
            rep->log.begin() + static_cast<i64>(index) + 1);
        encode_shard_ops(suffix, &sync);
        auto sr = co_await k->request(std::move(sync), nullptr,
                                      k->cfg_.quorum_timeout, 0);
        if (!k->crashed_ && !k->stopped_ && sr.ok()) {
          if (sr.value().status == Errc::ok) {
            acked = true;
          } else if (sr.value().status == Errc::stale_epoch &&
                     sr.value().shard_epoch > rep->epoch) {
            rep->epoch = sr.value().shard_epoch;
            rep->primary = false;
          }
        }
      }
    } else if (r.status == Errc::stale_epoch && r.shard_epoch > rep->epoch) {
      // Deposed: a newer epoch exists somewhere in the group.
      rep->epoch = r.shard_epoch;
      rep->primary = false;
      rep->promoting = false;
    }
  }
  if (acked && !k->crashed_) {
    ++round->acks;
    rep->peer_contact[peer] = sim::now();
  }
  ++round->done;
  if (round->acks >= round->majority || round->done >= round->total) {
    round->settled.set();
  }
}

sim::Task<void> XememKernel::shard_probe_actor(u32 shard) {
  auto it = shard_replicas_.find(shard);
  if (it == shard_replicas_.end()) co_return;
  ShardReplica* rep = it->second.get();
  const auto& group = cfg_.ns_shards[shard];
  u32 misses = 0;
  for (;;) {
    co_await sim::delay(cfg_.shard_probe_period);
    if (stopped_ || crashed_) co_return;
    if (rep->primary) {
      misses = 0;
      if (!shard_is_fresh(*rep)) {
        // Check-quorum: a primary that lost its majority probes its peers
        // directly — to refresh contact after a healed partition, or to
        // learn it was deposed while isolated and step down. Without this
        // a deposed primary would keep answering retry_later/no_quorum
        // forever: nobody probes *it*, and announces were lost to the
        // partition.
        for (u64 peer : group) {
          if (peer == id().value()) continue;
          Message probe;
          probe.cmd = Cmd::shard_probe;
          probe.dst = EnclaveId{peer};
          probe.shard = shard;
          probe.shard_epoch = rep->epoch;
          auto pr = co_await request(std::move(probe), nullptr,
                                     cfg_.ping_timeout, /*max_retries=*/0);
          if (stopped_ || crashed_) co_return;
          if (!rep->primary) break;  // deposed mid-probe by other traffic
          if (!pr.ok()) continue;
          if (pr.value().shard_epoch > rep->epoch) {
            rep->epoch = pr.value().shard_epoch;
            rep->primary = false;
            rep->promoting = false;
            rep->last_primary_contact = sim::now();
            rep->quorum_lost_at = 0;
            if (shard < shard_epoch_.size()) {
              shard_epoch_[shard] =
                  std::max(shard_epoch_[shard], pr.value().shard_epoch);
            }
            XLOG_WARN("xemem", "%s: shard %u primary deposed by epoch %llu",
                      os_.name().c_str(), shard,
                      (unsigned long long)rep->epoch);
            break;
          }
          rep->peer_contact[peer] = sim::now();
        }
      }
      continue;
    }
    const u64 primary = group[(rep->epoch - 1) % group.size()];
    if (primary == id().value()) {
      // The epoch maps the primary slot to us but we are not (yet) primary
      // — a vote is in flight or an announce is coming; don't probe self.
      misses = 0;
      continue;
    }
    Message probe;
    probe.cmd = Cmd::shard_probe;
    probe.dst = EnclaveId{primary};
    probe.shard = shard;
    probe.shard_epoch = rep->epoch;
    auto resp = co_await request(std::move(probe), nullptr, cfg_.ping_timeout,
                                 /*max_retries=*/0);
    if (stopped_ || crashed_) co_return;
    if (rep->primary) {
      misses = 0;
      continue;
    }
    if (resp.ok()) {
      Message& r = resp.value();
      if (r.shard_epoch > rep->epoch) {
        // Someone is ahead of us: adopt and give the new regime a fresh
        // probe cycle before judging it.
        rep->epoch = r.shard_epoch;
        rep->promoting = false;
        rep->last_primary_contact = sim::now();
        if (shard < shard_epoch_.size()) {
          shard_epoch_[shard] = std::max(shard_epoch_[shard], r.shard_epoch);
        }
        misses = 0;
        continue;
      }
      if (r.status == Errc::ok) {
        misses = 0;
        rep->last_primary_contact = sim::now();
        rep->quorum_lost_at = 0;
        continue;
      }
    }
    if (++misses >= cfg_.shard_probe_misses) {
      misses = 0;
      co_await shard_try_promote(shard);
      if (stopped_ || crashed_) co_return;
    }
  }
}

sim::Task<void> XememKernel::shard_try_promote(u32 shard) {
  auto mapit = shard_replicas_.find(shard);
  if (mapit == shard_replicas_.end()) co_return;
  ShardReplica* rep = mapit->second.get();
  if (rep->promoting || rep->primary || crashed_ || stopped_) co_return;
  rep->promoting = true;
  const auto& group = cfg_.ns_shards[shard];
  const auto n = static_cast<u64>(group.size());
  // Candidate epochs are position-keyed — the smallest epoch above
  // everything seen whose primary slot ((e-1) % n) is this replica — so
  // concurrent candidates never propose the same epoch.
  const u64 flr = std::max(rep->epoch, rep->promised) + 1;
  const u64 e = flr + ((rep->self_index + n - ((flr - 1) % n)) % n);
  rep->promised = e;
  u32 votes = 1;  // self
  bool outbid = false;
  std::vector<ShardOp> best = rep->log;
  for (u64 peer : group) {
    if (peer == id().value()) continue;
    if (crashed_ || stopped_ || !rep->promoting) break;
    Message vote;
    vote.cmd = Cmd::shard_vote;
    vote.dst = EnclaveId{peer};
    vote.shard = shard;
    vote.shard_epoch = e;
    auto resp = co_await request(std::move(vote), nullptr, cfg_.quorum_timeout,
                                 /*max_retries=*/0);
    if (crashed_ || stopped_) {
      rep->promoting = false;
      co_return;
    }
    if (!resp.ok()) continue;
    Message& r = resp.value();
    if (r.status == Errc::stale_epoch) {
      if (r.shard_epoch > rep->promised) rep->promised = r.shard_epoch;
      outbid = true;
      continue;
    }
    if (r.status != Errc::ok) continue;
    ++votes;
    rep->peer_contact[peer] = sim::now();
    // Adopt the most complete log in the vote quorum: any op committed by
    // a prior primary lives on a majority, and majorities intersect, so
    // the best log in our quorum contains every committed op.
    std::vector<ShardOp> peer_log = decode_shard_ops(r);
    const u64 be = best.empty() ? 0 : best.back().epoch;
    const u64 pe = peer_log.empty() ? 0 : peer_log.back().epoch;
    if (pe > be || (pe == be && peer_log.size() > best.size())) {
      best = std::move(peer_log);
    }
  }
  const auto majority = static_cast<u32>(n / 2 + 1);
  if (!outbid && !crashed_ && !stopped_ && rep->promoting &&
      votes >= majority && e > rep->epoch) {
    rep->epoch = e;
    rep->primary = true;
    rep->next_seq = 1;  // the epoch prefix keeps restarted seqs unique
    rep->log = std::move(best);
    shard_rebuild(rep);  // re-arms every lease at now + lease_duration
    rep->quorum_lost_at = 0;
    rep->last_primary_contact = sim::now();
    for (u64 peer : group) {
      if (peer != id().value()) rep->peer_contact[peer] = sim::now();
    }
    if (shard < shard_epoch_.size()) {
      shard_epoch_[shard] = std::max(shard_epoch_[shard], e);
    }
    ++stats_.shard_promotions;
    sim::Engine::current()->spawn(shard_announce_actor(shard, e));
    XLOG_WARN("xemem", "%s: promoted to primary of shard %u, epoch %llu "
              "(log %zu)",
              os_.name().c_str(), shard, static_cast<unsigned long long>(e),
              rep->log.size());
  }
  rep->promoting = false;
}

sim::Task<void> XememKernel::shard_announce_actor(u32 shard, u64 epoch) {
  // Targeted one-way announce to the replica group (clients learn the
  // epoch lazily from their first stale_epoch rejection).
  const std::vector<u64> group = cfg_.ns_shards[shard];  // send() suspends
  for (u64 peer : group) {
    if (peer == id().value()) continue;
    if (crashed_ || stopped_) co_return;
    Message ann;
    ann.cmd = Cmd::shard_announce;
    ann.src = id();
    ann.dst = EnclaveId{peer};
    ann.req_id = g_req_counter++;
    ann.epoch = ns_epoch_;
    ann.shard = shard;
    ann.shard_epoch = epoch;
    ChannelEndpoint* via = route_for(ann.dst);
    if (via != nullptr) co_await via->send(std::move(ann));
  }
}

sim::Task<void> XememKernel::shard_lease_reaper(u32 shard) {
  auto it = shard_replicas_.find(shard);
  if (it == shard_replicas_.end()) co_return;
  ShardReplica* rep = it->second.get();
  for (;;) {
    co_await sim::delay(cfg_.heartbeat_period);
    if (stopped_ || crashed_) co_return;
    // Expiry is a replicated decision: only a fresh primary may GC, and it
    // does so through the log so every replica collects the same enclave
    // at the same index (a follower's local clocks never GC anything).
    if (!rep->primary || !shard_is_fresh(*rep)) continue;
    std::vector<u64> dead;
    const sim::TimePoint t = sim::now();
    for (const auto& [e, expiry] : rep->leases) {
      if (expiry <= t) dead.push_back(e);
    }
    for (u64 enclave : dead) {
      if (stopped_ || crashed_ || !rep->primary) break;
      auto l = rep->leases.find(enclave);
      if (l == rep->leases.end() || l->second > sim::now()) continue;  // renewed
      ShardOp op;
      op.kind = ShardOp::Kind::lease_gc;
      op.epoch = rep->epoch;
      op.owner = enclave;
      auto committed = co_await shard_quorum_commit(rep, op);
      if (committed.ok()) {
        ++stats_.leases_expired;
        XLOG_WARN("xemem", "%s: shard %u: lease of enclave %llu expired, "
                  "garbage-collected via the log",
                  os_.name().c_str(), shard,
                  static_cast<unsigned long long>(enclave));
      }
    }
  }
}

void XememKernel::shard_apply(ShardReplica* rep, const ShardOp& op) {
  switch (op.kind) {
    case ShardOp::Kind::alloc: {
      rep->segids[op.segid] =
          NsSegidRecord{EnclaveId{op.owner}, op.size, op.name};
      if (!op.name.empty()) rep->names[op.name] = Segid{op.segid};
      if (cfg_.lease_duration > 0) {
        rep->leases[op.owner] = sim::now() + cfg_.lease_duration;
      }
      break;
    }
    case ShardOp::Kind::remove: {
      auto it = rep->segids.find(op.segid);
      if (it != rep->segids.end()) {
        if (!it->second.name.empty()) rep->names.erase(it->second.name);
        rep->segids.erase(it);
      }
      break;
    }
    case ShardOp::Kind::lease_gc: {
      rep->leases.erase(op.owner);
      for (auto it = rep->segids.begin(); it != rep->segids.end();) {
        if (it->second.owner == EnclaveId{op.owner}) {
          if (!it->second.name.empty()) rep->names.erase(it->second.name);
          it = rep->segids.erase(it);
        } else {
          ++it;
        }
      }
      break;
    }
  }
}

void XememKernel::shard_rebuild(ShardReplica* rep) {
  rep->segids.clear();
  rep->names.clear();
  rep->leases.clear();
  rep->applied = 0;
  for (const auto& op : rep->log) {
    shard_apply(rep, op);
    ++rep->applied;
  }
}

u64 XememKernel::shard_believed_epoch(u32 shard) const {
  auto it = shard_replicas_.find(shard);
  if (it != shard_replicas_.end()) return it->second->epoch;
  if (shard < shard_epoch_.size()) return std::max<u64>(shard_epoch_[shard], 1);
  return 1;
}

void XememKernel::maybe_adopt_shard_epoch(const Message& msg) {
  if (!sharding_enabled() || msg.shard_epoch == 0) return;
  if (msg.shard >= shard_epoch_.size()) return;
  if (msg.shard_epoch > shard_epoch_[msg.shard]) {
    shard_epoch_[msg.shard] = msg.shard_epoch;
  }
}

bool XememKernel::shard_is_fresh(const ShardReplica& rep) const {
  const auto& group = cfg_.ns_shards[rep.shard];
  const auto n = group.size();
  if (n == 1) return true;  // a replication factor of one is always "fresh"
  // "Recent" = a couple of probe cycles: within that bound a partitioned
  // minority keeps answering from possibly-stale state (retry_later tells
  // the client so), beyond it the majority side has certainly elected.
  const sim::Duration bound =
      2 * static_cast<sim::Duration>(cfg_.shard_probe_misses) *
      cfg_.shard_probe_period;
  const sim::TimePoint t = sim::now();
  if (!rep.primary) return rep.last_primary_contact + bound >= t;
  u32 heard = 1;  // self
  for (const auto& [peer, when] : rep.peer_contact) {
    if (when + bound >= t) ++heard;
  }
  return heard >= n / 2 + 1;
}

Errc XememKernel::shard_unavailable_status(ShardReplica* rep) {
  // The grace window anchors at the first observed quorum loss; any
  // successful quorum write or primary contact resets it.
  if (rep->quorum_lost_at == 0) rep->quorum_lost_at = sim::now();
  return sim::now() - rep->quorum_lost_at <= cfg_.partition_grace
             ? Errc::retry_later
             : Errc::no_quorum;
}

}  // namespace xemem
