#include "xemem/kernel.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "sim/engine.hpp"

namespace xemem {

namespace {
// Globally unique request ids (the simulator is single-threaded; a plain
// counter suffices and keeps intermediate forwarding tables collision-free
// even before enclaves hold ids).
u64 g_req_counter = 1;

// Response command correlated to a request command (for rejections built
// before the request is dispatched, e.g. the stale-epoch guard).
Cmd response_cmd(Cmd c) {
  switch (c) {
    case Cmd::ping_ns: return Cmd::ping_ns_resp;
    case Cmd::alloc_enclave_id: return Cmd::enclave_id_resp;
    case Cmd::segid_alloc: return Cmd::segid_alloc_resp;
    case Cmd::segid_remove: return Cmd::segid_remove_resp;
    case Cmd::name_lookup: return Cmd::name_lookup_resp;
    case Cmd::name_list: return Cmd::name_list_resp;
    case Cmd::get: return Cmd::get_resp;
    case Cmd::attach: return Cmd::attach_resp;
    case Cmd::detach: return Cmd::detach_resp;
    case Cmd::ns_probe: return Cmd::ns_probe_resp;
    case Cmd::reregister: return Cmd::reregister_resp;
    default: return c;
  }
}
}  // namespace

XememKernel::XememKernel(os::Enclave& os, bool is_name_server, KernelConfig cfg)
    : os_(os), is_ns_(is_name_server), cfg_(cfg) {
  if (cfg_.request_timeout == 0) cfg_.request_timeout = kRequestTimeout;
  if (cfg_.ping_timeout == 0) cfg_.ping_timeout = kPingTimeout;
  if (cfg_.lease_duration > 0) {
    // A heartbeat period at or beyond the lease duration would let healthy
    // enclaves flap in and out of the registry: normalize the
    // misconfiguration at construction instead of silently flapping.
    if (cfg_.heartbeat_period >= cfg_.lease_duration) {
      XLOG_WARN("xemem",
                "%s: heartbeat_period >= lease_duration; normalizing to "
                "lease_duration / 3",
                os_.name().c_str());
      cfg_.heartbeat_period = 0;
    }
    if (cfg_.heartbeat_period == 0) {
      cfg_.heartbeat_period = std::max<sim::Duration>(cfg_.lease_duration / 3, 1);
    }
  }
  if (cfg_.ns_probe_period == 0) {
    cfg_.ns_probe_period =
        cfg_.lease_duration > 0
            ? std::max<sim::Duration>(cfg_.lease_duration / 3, 1)
            : 10'000'000ull;  // 10 ms
  }
  if (cfg_.ns_recovery_grace == 0) {
    cfg_.ns_recovery_grace =
        std::max<sim::Duration>(cfg_.lease_duration, 2 * cfg_.request_timeout);
  }
  // A forwarder entry must outlive every legitimate retry of its request.
  if (cfg_.fwd_ttl == 0) {
    cfg_.fwd_ttl = 2 * (cfg_.request_timeout + cfg_.backoff_max);
  }
  if (cfg_.dedup_cache_cap == 0) cfg_.dedup_cache_cap = 1;
}

void XememKernel::add_channel(ChannelEndpoint* ep) {
  channels_.push_back(ep);
  // Channels appear at co-kernel/VM boot time, which may be long after
  // this kernel started (dynamic repartitioning): service it immediately.
  if (started_) sim::Engine::current()->spawn(service_loop(ep));
}

void XememKernel::start() {
  XEMEM_ASSERT(!started_);
  started_ = true;
  auto* eng = sim::Engine::current();
  for (auto* ep : channels_) eng->spawn(service_loop(ep));
  if (is_ns_) {
    os_.set_id(EnclaveId{0});
    registered_.set();
  } else {
    eng->spawn(discovery());
  }
  if (cfg_.lease_duration > 0) {
    // Liveness machinery is opt-in (KernelConfig::lease_duration): these
    // actors run for the kernel's whole lifetime, so enabling them makes
    // Engine::run_until_idle() unsuitable for the enclosing experiment.
    eng->spawn(is_ns_ ? lease_reaper() : heartbeat_actor());
  }
  if (cfg_.ns_failover && !is_ns_) eng->spawn(standby_actor());
}

void XememKernel::crash() {
  // A name-server crash is a defined failure mode: with a standby
  // configured the epoch machinery recovers (DESIGN.md §"Name-service
  // failover"); without one, NS-bound requests fail with no_name_server
  // once discovery exhausts its probe rounds.
  if (crashed_) return;
  crashed_ = true;
  stopped_ = true;
  // The dying OS's memory is reclaimed by the node: every frame pinned on
  // behalf of attachers is released. Attachments in surviving enclaves
  // keep their (now dangling) mappings until they detach, exactly like an
  // abrupt peer death on real hardware.
  for (auto& [h, rec] : pins_) unpin_frames(rec.frames.extents());
  pins_.clear();
  exports_.clear();
  pending_fwd_.clear();
  fwd_log_.clear();
  // Attach fast-path caches die with the kernel: memoized walks reference
  // exports that no longer exist, learned owner routes will be retired by
  // lease expiry, and the reuse entries' owner-side pins are orphaned just
  // like any attachment whose attacher dies without detaching.
  walk_cache_.clear();
  walk_fifo_.clear();
  owner_cache_.clear();
  owner_fifo_.clear();
  attach_cache_.clear();
  // A dying name server takes its registry with it; survivors hold the
  // durable truth (their own exports) and replay it to a promoted standby.
  ns_segids_.clear();
  ns_names_.clear();
  ns_leases_.clear();
  XLOG_WARN("xemem", "%s: enclave crashed (abrupt)", os_.name().c_str());
}

sim::Task<void> XememKernel::wait_registered() { co_await registered_.wait(); }

sim::Task<Result<void>> XememKernel::shutdown() {
  XEMEM_ASSERT_MSG(!is_ns_, "the name-server enclave cannot shut down");
  for (const auto& [sid, rec] : exports_) {
    if (rec.attachments > 0) co_return Errc::busy;
  }
  // Withdraw every export from the global name space.
  std::vector<u64> sids;
  sids.reserve(exports_.size());
  for (const auto& [sid, rec] : exports_) sids.push_back(sid);
  for (u64 sid : sids) {
    Message req;
    req.cmd = Cmd::segid_remove;
    req.dst = EnclaveId{0};
    req.segid = Segid{sid};
    auto resp = co_await request(std::move(req));
    if (!resp.ok()) co_return resp.error();
    exports_.erase(sid);
  }
  // Tell the name server to retire this enclave (one-way; also retires any
  // segids registered but not locally tracked).
  Message bye;
  bye.cmd = Cmd::enclave_shutdown;
  bye.dst = EnclaveId{0};
  bye.src = id();
  bye.req_id = g_req_counter++;
  bye.epoch = ns_epoch_;
  ChannelEndpoint* via = route_for(bye.dst);
  if (via != nullptr) co_await via->send(std::move(bye));
  stopped_ = true;
  walk_cache_.clear();
  walk_fifo_.clear();
  owner_cache_.clear();
  owner_fifo_.clear();
  attach_cache_.clear();
  co_return Result<void>{};
}

// --------------------------------------------------------------- discovery

sim::Task<void> XememKernel::discovery() {
  // Paper section 3.2: broadcast on every channel until some neighbor
  // responds that it knows a path to the name server; then request an
  // enclave ID through that channel. Probes are single-shot (retrying a
  // probe on a dead link would only stall the sweep; the outer loop
  // already re-probes every channel with backoff). Sweeps are bounded by
  // discovery_max_rounds: a fully partitioned enclave (or one orphaned by
  // a standby-less name-server death) must not retry into the void
  // forever — it surfaces a terminal state instead, and a later
  // ns_announce (failover) revives it.
  if (discovering_) co_return;
  discovering_ = true;
  u32 rounds = 0;
  while (!crashed_ && !stopped_ && !is_ns_) {
    while (ns_channel_ == nullptr) {
      if (crashed_ || stopped_ || is_ns_) {
        discovering_ = false;
        co_return;
      }
      const std::vector<ChannelEndpoint*> eps = channels_;  // request() suspends
      for (auto* ep : eps) {
        Message ping;
        ping.cmd = Cmd::ping_ns;
        auto resp = co_await request(std::move(ping), ep, cfg_.ping_timeout,
                                     /*max_retries=*/0);
        if (resp.ok() && resp.value().status == Errc::ok) {
          ns_channel_ = ep;
          break;
        }
      }
      if (ns_channel_ != nullptr) break;
      if (cfg_.discovery_max_rounds != 0 &&
          ++rounds >= cfg_.discovery_max_rounds) {
        ns_lost_ = true;
        // Unblock wait_registered() waiters; the id stays invalid and
        // registration_failed() reports the terminal state.
        registered_.set();
        XLOG_WARN("xemem",
                  "%s: discovery exhausted %u probe rounds with no path to a "
                  "name server",
                  os_.name().c_str(), rounds);
        discovering_ = false;
        co_return;
      }
      co_await sim::delay(200'000 /*200us backoff*/);
    }

    // Re-discovery after a route loss keeps the already-allocated ID; only
    // first-time registration allocates one.
    if (id().valid()) break;

    Message alloc;
    alloc.cmd = Cmd::alloc_enclave_id;
    alloc.dst = EnclaveId{0};
    auto resp = co_await request(std::move(alloc), ns_channel_);
    if (resp.ok() && resp.value().status == Errc::ok) {
      os_.set_id(EnclaveId{resp.value().payload.at(0)});
      XLOG_DEBUG("xemem", "%s registered as enclave %llu", os_.name().c_str(),
                 static_cast<unsigned long long>(id().value()));
      registered_.set();
      break;
    }
    // The name server went silent (or rejected us) mid-registration:
    // forget the direction and re-probe, still bounded by the round limit.
    ns_channel_ = nullptr;
    if (cfg_.discovery_max_rounds != 0 && ++rounds >= cfg_.discovery_max_rounds) {
      ns_lost_ = true;
      registered_.set();
      XLOG_WARN("xemem", "%s: registration exhausted its probe rounds",
                os_.name().c_str());
      break;
    }
  }
  discovering_ = false;
}

// Lease renewal: while the enclave lives, the name server hears from it at
// least every heartbeat_period (default lease_duration / 3), so a healthy
// enclave is never garbage-collected even when it is otherwise idle.
sim::Task<void> XememKernel::heartbeat_actor() {
  co_await registered_.wait();
  while (!stopped_ && !crashed_ && !is_ns_) {  // a promoted standby stops
    Message hb;
    hb.cmd = Cmd::heartbeat;
    hb.dst = EnclaveId{0};
    hb.src = id();
    hb.req_id = g_req_counter++;
    hb.epoch = ns_epoch_;
    ChannelEndpoint* via = route_for(hb.dst);
    if (via != nullptr) co_await via->send(std::move(hb));  // one-way
    co_await sim::delay(cfg_.heartbeat_period);
  }
}

// ------------------------------------------------- name-service failover

// The designated standby probes the name server end-to-end (not just the
// next hop: ping_ns is answered by neighbors, so only a routed
// request/response proves the NS itself is alive). A run of unanswered
// probes is the promotion trigger.
sim::Task<void> XememKernel::standby_actor() {
  co_await registered_.wait();
  if (!id().valid() || id().value() != standby_id()) co_return;
  u32 misses = 0;
  for (;;) {
    co_await sim::delay(cfg_.ns_probe_period);
    if (stopped_ || crashed_ || is_ns_) co_return;
    Message probe;
    probe.cmd = Cmd::ns_probe;
    probe.dst = EnclaveId{0};
    auto resp = co_await request(std::move(probe), nullptr, cfg_.ping_timeout,
                                 /*max_retries=*/0);
    if (stopped_ || crashed_ || is_ns_) co_return;
    if (resp.ok() && resp.value().status == Errc::ok) {
      misses = 0;
      continue;
    }
    if (++misses >= cfg_.ns_probe_misses) {
      promote();
      co_return;
    }
  }
}

void XememKernel::promote() {
  if (is_ns_ || crashed_ || stopped_) return;
  is_ns_ = true;
  ++ns_epoch_;
  ++stats_.ns_failovers;
  promote_time_ = sim::now();
  ns_recovery_until_ = sim::now() + cfg_.ns_recovery_grace;
  ns_channel_ = nullptr;  // the NS direction is now "here"
  ns_lost_ = false;
  rereg_epoch_ = ns_epoch_;
  // Segid allocation restarts at 1 under the new epoch prefix — a reborn
  // name server can never re-issue a segid live from a prior epoch.
  next_segid_ = 1;
  // Never re-issue a live enclave id either: resume above the high-water
  // mark observed in traffic (survivors also push it up as they
  // re-register).
  next_enclave_id_ = std::max(
      next_enclave_id_, std::max(max_seen_enclave_, id().value()) + 1);
  // Rebuild the registry from the durable source of truth: owners. Start
  // with this enclave's own exports; survivors replay theirs in the
  // re-registration round.
  ns_segids_.clear();
  ns_names_.clear();
  ns_leases_.clear();
  for (const auto& [sid, rec] : exports_) {
    ns_segids_[sid] = NsSegidRecord{id(), rec.pages * kPageSize, rec.name};
    if (!rec.name.empty()) ns_names_[rec.name] = Segid{sid};
  }
  auto* eng = sim::Engine::current();
  eng->spawn(announce_epoch());
  if (cfg_.lease_duration > 0) eng->spawn(lease_reaper());
  XLOG_WARN("xemem", "%s: promoted to name server, epoch %llu",
            os_.name().c_str(), static_cast<unsigned long long>(ns_epoch_));
}

sim::Task<void> XememKernel::announce_epoch() {
  // Snapshot: channels_ may grow (dynamic repartitioning adds links) while
  // this coroutine is suspended in send(), invalidating iterators.
  const std::vector<ChannelEndpoint*> eps = channels_;
  for (auto* ep : eps) {
    Message ann;
    ann.cmd = Cmd::ns_announce;
    ann.src = id();
    ann.req_id = g_req_counter++;
    ann.epoch = ns_epoch_;
    co_await ep->send(std::move(ann));
  }
}

// Replay this enclave's locally-owned exports to the newly promoted name
// server so the registry converges to the pre-crash truth. Runs once per
// adopted epoch; request() retries carry it through a lossy channel.
sim::Task<void> XememKernel::reregister_actor() {
  const u64 target_epoch = ns_epoch_;
  while (ns_channel_ == nullptr) {
    if (crashed_ || stopped_ || is_ns_ || ns_epoch_ != target_epoch) co_return;
    co_await sim::delay(200'000);
  }
  if (crashed_ || stopped_ || is_ns_ || ns_epoch_ != target_epoch) co_return;
  Message req;
  req.cmd = Cmd::reregister;
  req.dst = EnclaveId{0};
  for (const auto& [sid, rec] : exports_) {
    req.payload.push_back(sid);
    req.payload.push_back(rec.pages * kPageSize);
    if (!req.name.empty() || req.payload.size() > 2) req.name += '\n';
    req.name += rec.name;
  }
  (void)co_await request(std::move(req));
}

bool XememKernel::maybe_adopt_epoch(const Message& msg, ChannelEndpoint* from) {
  if (msg.epoch <= ns_epoch_) return false;
  if (is_ns_) {
    // Competing name servers (a spurious promotion while the original
    // lived) are out of scope: log and stand pat — the higher epoch owns
    // the survivors regardless, since they adopt it from its traffic.
    XLOG_WARN("xemem", "%s: name server saw newer epoch %llu (own %llu)",
              os_.name().c_str(), static_cast<unsigned long long>(msg.epoch),
              static_cast<unsigned long long>(ns_epoch_));
    return false;
  }
  ns_epoch_ = msg.epoch;
  ns_lost_ = false;
  // An announce (or any message from the name server itself) arrives from
  // the NS direction; anything else only proves the epoch moved, so the
  // direction must be re-discovered.
  if (msg.cmd == Cmd::ns_announce || msg.src == EnclaveId{0}) {
    ns_channel_ = from;
  } else {
    ns_channel_ = nullptr;
  }
  auto* eng = sim::Engine::current();
  if (id().valid()) {
    if (rereg_epoch_ < ns_epoch_) {
      rereg_epoch_ = ns_epoch_;
      eng->spawn(reregister_actor());
    }
  } else {
    // Never managed to register (e.g. the old NS died mid-registration):
    // the new name server is a fresh chance.
    eng->spawn(discovery());
  }
  if (ns_channel_ == nullptr) eng->spawn(discovery());
  return true;
}

// Name-server sweep: expire leases even when no traffic arrives (the lazy
// sweep in ns_handle covers the common case, but a fully idle system must
// still collect its dead).
sim::Task<void> XememKernel::lease_reaper() {
  while (!stopped_) {
    co_await sim::delay(cfg_.heartbeat_period);
    if (stopped_) co_return;
    ns_gc_expired_leases();
  }
}

void XememKernel::ns_touch_lease(EnclaveId e) {
  if (cfg_.lease_duration == 0 || !e.valid() || e == EnclaveId{0}) return;
  // Renew-only: an enclave whose lease already expired has been
  // garbage-collected and must not be resurrected by stale traffic.
  auto it = ns_leases_.find(e.value());
  if (it != ns_leases_.end()) it->second = sim::now() + cfg_.lease_duration;
}

void XememKernel::ns_gc_expired_leases() {
  if (cfg_.lease_duration == 0 || ns_leases_.empty()) return;
  const sim::TimePoint t = sim::now();
  std::vector<u64> dead;
  for (const auto& [e, expiry] : ns_leases_) {
    if (expiry <= t) dead.push_back(e);
  }
  for (u64 e : dead) {
    ns_leases_.erase(e);
    enclave_map_.erase(e);
    for (auto it = ns_segids_.begin(); it != ns_segids_.end();) {
      if (it->second.owner == EnclaveId{e}) {
        if (!it->second.name.empty()) ns_names_.erase(it->second.name);
        it = ns_segids_.erase(it);
      } else {
        ++it;
      }
    }
    ++stats_.leases_expired;
    XLOG_WARN("xemem", "name server: lease of enclave %llu expired, "
              "garbage-collected its segids/names/routes",
              static_cast<unsigned long long>(e));
  }
}

// ---------------------------------------------------------------- plumbing

sim::Task<void> XememKernel::service_loop(ChannelEndpoint* ep) {
  for (;;) {
    Message msg = co_await ep->inbox().recv();
    co_await handle(std::move(msg), ep);
  }
}

ChannelEndpoint* XememKernel::route_for(EnclaveId dst) {
  auto it = enclave_map_.find(dst.value());
  if (it != enclave_map_.end()) return it->second;
  return ns_channel_;  // default route: toward the name server
}

sim::Task<Result<Message>> XememKernel::request(Message msg) {
  co_return co_await request(std::move(msg), nullptr);
}

sim::Task<void> XememKernel::timeout_actor(XememKernel* k, u64 rid,
                                           sim::Duration t) {
  co_await sim::delay(t);
  auto it = k->pending_resp_.find(rid);
  if (it != k->pending_resp_.end()) {
    // Deliver an expiry sentinel; the real response (if it ever arrives)
    // is dropped as an orphan because the waiter has gone.
    Message expired;
    expired.req_id = rid;
    expired.status = Errc::unreachable;
    it->second->send(std::move(expired));
  }
}

sim::Task<Result<Message>> XememKernel::request(Message msg, ChannelEndpoint* via_in,
                                                sim::Duration timeout,
                                                i32 max_retries) {
  msg.req_id = g_req_counter++;
  if (msg.src == EnclaveId::invalid()) msg.src = id();
  const u64 rid = msg.req_id;
  if (timeout == 0) timeout = cfg_.request_timeout;
  const u32 retries =
      max_retries < 0 ? cfg_.max_retries : static_cast<u32>(max_retries);
  sim::Duration backoff = cfg_.backoff_base;

  for (u32 attempt = 0;; ++attempt) {
    if (crashed_) co_return Errc::unreachable;
    ChannelEndpoint* via = via_in != nullptr ? via_in : route_for(msg.dst);
    if (via == nullptr) {
      // NS-bound traffic with the name service terminally lost (discovery
      // exhausted, no standby promoted) fails with the dedicated status so
      // callers can distinguish "no name server anywhere" from a transient
      // routing failure.
      co_return (msg.dst == EnclaveId{0} && ns_lost_) ? Errc::no_name_server
                                                      : Errc::unreachable;
    }

    sim::Mailbox<Message> mb;
    pending_resp_[rid] = &mb;
    sim::Engine::current()->spawn(timeout_actor(this, rid, timeout));
    Message copy = msg;  // keep the original for retransmission
    copy.epoch = ns_epoch_;  // re-stamp: an epoch may be adopted mid-retry
    co_await via->send(std::move(copy));
    Message resp = co_await mb.recv();
    pending_resp_.erase(rid);
    if (!(resp.status == Errc::unreachable && resp.cmd == Cmd::ping_ns)) {
      // A real response (the sentinel has a default-constructed cmd).
      // Retryable rejections — the epoch moved under us, or the new name
      // server is still rebuilding its registry — are retried under the
      // same req_id with the usual backoff; everything else returns.
      const bool retryable = !crashed_ && (resp.status == Errc::stale_epoch ||
                                           resp.status == Errc::retry_later);
      if (!retryable || attempt >= retries) {
        // Remember the id so a late duplicate of this response is counted,
        // not warned about.
        completed_reqs_[rid] = 1;
        completed_fifo_.push_back(rid);
        while (completed_fifo_.size() > cfg_.dedup_cache_cap) {
          completed_reqs_.erase(completed_fifo_.front());
          completed_fifo_.pop_front();
        }
        co_return resp;
      }
      ++stats_.retries;
      co_await sim::delay(backoff);
      backoff = std::min<sim::Duration>(backoff * 2, cfg_.backoff_max);
      continue;
    }

    ++stats_.timeouts;
    if (attempt >= retries) {
      // The destination stayed silent through every retry: treat the
      // learned route (if any) as stale so later traffic falls back to
      // the default route and rediscovers.
      if (msg.dst != EnclaveId::invalid() && msg.dst != EnclaveId{0}) {
        enclave_map_.erase(msg.dst.value());
        // Learned-route invalidation extends to the segid->owner cache:
        // anything we believed this enclave owned must be re-resolved
        // through the name server, which will have garbage-collected the
        // segids if the owner really died (lease expiry).
        drop_owner_cache_for(msg.dst);
      }
      // If the silent link was our path toward the name server, forget it
      // and re-run discovery over the remaining channels (the enclave ID
      // is retained; only the route is re-learned).
      if (!is_ns_ && via == ns_channel_) {
        ns_channel_ = nullptr;
        for (auto it = enclave_map_.begin(); it != enclave_map_.end();) {
          it = it->second == via ? enclave_map_.erase(it) : std::next(it);
        }
        sim::Engine::current()->spawn(discovery());
      }
      co_return (msg.dst == EnclaveId{0} && ns_lost_) ? Errc::no_name_server
                                                      : Errc::unreachable;
    }
    ++stats_.retries;
    co_await sim::delay(backoff);
    backoff = std::min<sim::Duration>(backoff * 2, cfg_.backoff_max);
  }
}

sim::Task<Result<Message>> XememKernel::request_to_owner(Message msg) {
  if (is_ns_) {
    // We *are* the name server: resolve the owner locally instead of
    // sending to ourselves.
    auto it = ns_segids_.find(msg.segid.value());
    if (it == ns_segids_.end()) {
      // During the post-promotion grace window the registry may simply not
      // have heard the owner's re-registration yet: tell the caller to
      // retry rather than condemning a segid that is about to reappear.
      co_return in_recovery_grace() ? Errc::retry_later : Errc::no_such_segid;
    }
    co_await os_.service_core()->run_irq(costs::kNameServerOp);
    msg.dst = it->second.owner;
    XEMEM_ASSERT_MSG(msg.dst != id(),
                     "self-owned segid must use the local fast path");
    co_return co_await request(std::move(msg));
  }

  // Fast path: a previous response taught us which enclave owns this
  // segid, so address it directly — intermediate enclaves forward by
  // destination id and the request never climbs to the name server for a
  // lookup. A stale entry must never change outcomes: on transport
  // failure or a no-such-segid answer (removed/crashed owner), drop the
  // entry and fall back once to the authoritative name-server route.
  const Segid sid = msg.segid;
  auto cached = owner_cache_.find(sid.value());
  if (cached != owner_cache_.end()) {
    Message direct = msg;
    direct.dst = cached->second;
    ++stats_.lookup_cache_hits;
    auto fast = co_await request(std::move(direct));
    if (fast.ok() && fast.value().status != Errc::no_such_segid) {
      co_return fast;
    }
    drop_owner_cache(sid);
  }

  msg.dst = EnclaveId{0};
  auto resp = co_await request(std::move(msg));
  if (cfg_.owner_route_cache && resp.ok() && resp.value().status == Errc::ok) {
    cache_owner(sid, resp.value().src);
  }
  co_return resp;
}

sim::Task<void> XememKernel::forward(Message msg, ChannelEndpoint* from) {
  // Requests remember their inbound channel so the response can retrace
  // the path even before routing tables know the requester. One-way
  // messages (release, heartbeat, enclave_shutdown) have no response to
  // retrace and must not pollute the table. Entries expire after fwd_ttl
  // (see prune_pending_fwd) so a request whose response never arrives —
  // the owner crashed, the response was lost past every retry — cannot
  // leak its entry forever.
  if (!msg.is_response() && !msg.is_one_way()) {
    if (!pending_fwd_.contains(msg.req_id)) {
      fwd_log_.emplace_back(msg.req_id, sim::now());
    }
    pending_fwd_[msg.req_id] = from;
  }
  ++stats_.messages_forwarded;
  ChannelEndpoint* out = route_for(msg.dst);
  // Note: out == from is legitimate — e.g. the name server bouncing an
  // attach back down the same link when the owner lives in the subtree the
  // request came from. The hierarchy is a tree, so forwarding terminates.
  // A missing route is reachable, not a bug: owner-cache direct addressing
  // can target an enclave whose route the name server's lease GC already
  // reclaimed. Drop the message; the sender's retry/timeout machinery owns
  // recovery (and evicts its stale cache entry on exhaustion).
  if (out == nullptr) co_return;
  co_await os_.service_core()->run_irq(costs::kRouteHop);
  co_await out->send(std::move(msg));
}

sim::Task<void> XememKernel::handle(Message msg, ChannelEndpoint* from) {
  if (crashed_) co_return;  // a dead enclave hears nothing
  prune_pending_fwd();

  // Track the highest enclave id seen in any traffic: a promoted standby
  // resumes id allocation above this high-water mark.
  if (msg.src.valid()) {
    max_seen_enclave_ = std::max(max_seen_enclave_, msg.src.value());
  }

  // Epoch adoption: any message carrying a newer name-service epoch moves
  // this node forward (and triggers re-registration / re-discovery).
  const bool adopted = maybe_adopt_epoch(msg, from);
  if (msg.cmd == Cmd::ns_announce) {
    // Flood: re-announce on every other link, but only on first adoption —
    // peer links can form cycles, and the strictly-newer check is what
    // terminates the flood.
    if (adopted) {
      const std::vector<ChannelEndpoint*> eps = channels_;  // send() suspends
      for (auto* ep : eps) {
        if (ep == from) continue;
        Message ann = msg;
        co_await ep->send(std::move(ann));
      }
    }
    co_return;
  }

  // 1. Responses retracing a forwarded request.
  if (msg.is_response()) {
    auto fwd = pending_fwd_.find(msg.req_id);
    if (fwd != pending_fwd_.end()) {
      ChannelEndpoint* back = fwd->second;
      pending_fwd_.erase(fwd);
      // Learn routes from enclave-id allocations passing through us
      // (paper section 3.2's LWK D / VM F example).
      if (msg.cmd == Cmd::enclave_id_resp && msg.status == Errc::ok) {
        enclave_map_[msg.payload.at(0)] = back;
      }
      co_await os_.service_core()->run_irq(costs::kRouteHop);
      co_await back->send(std::move(msg));
      co_return;
    }
    auto wait = pending_resp_.find(msg.req_id);
    if (wait != pending_resp_.end()) {
      wait->second->send(std::move(msg));
      co_return;
    }
    if (completed_reqs_.contains(msg.req_id)) {
      // Duplicate of a response we already consumed (a retry raced its
      // original, or the channel replayed the delivery).
      ++stats_.dup_suppressed;
      co_return;
    }
    XLOG_DEBUG("xemem", "%s: dropping orphan response %s", os_.name().c_str(),
               cmd_name(msg.cmd));
    co_return;
  }

  // 2. Channel-local probes are answered immediately, never forwarded.
  if (msg.cmd == Cmd::ping_ns) {
    Message resp;
    resp.cmd = Cmd::ping_ns_resp;
    resp.req_id = msg.req_id;
    resp.src = id();
    resp.epoch = ns_epoch_;
    resp.status = (is_ns_ || ns_channel_ != nullptr) ? Errc::ok : Errc::unreachable;
    co_await from->send(std::move(resp));
    co_return;
  }

  // 3. Name-server-addressed traffic.
  if (msg.dst == EnclaveId{0}) {
    if (is_ns_) {
      co_await ns_handle(std::move(msg), from);
    } else {
      co_await forward(std::move(msg), from);
    }
    co_return;
  }

  // 4. Traffic addressed to this enclave: owner-side servicing. Commands
  // are idempotent per req_id: a duplicate delivery (channel replay, or a
  // retry whose original did arrive) is answered from the response cache
  // instead of re-executing — re-serving an attach would double-pin
  // frames, and re-serving a detach would fail with not_attached.
  if (msg.dst == id()) {
    Message cached;
    if (dedup_hit(msg.req_id, &cached)) {
      ++stats_.dup_suppressed;
      if (!msg.is_one_way()) co_await route_response(std::move(cached), from);
      co_return;
    }
    switch (msg.cmd) {
      case Cmd::get: {
        Message resp = co_await serve_get(msg);
        dedup_store(msg.req_id, resp);
        co_await route_response(std::move(resp), from);
        co_return;
      }
      case Cmd::attach: {
        Message resp = co_await serve_attach(msg);
        dedup_store(msg.req_id, resp);
        co_await route_response(std::move(resp), from);
        co_return;
      }
      case Cmd::detach: {
        Message resp = co_await serve_detach(msg);
        dedup_store(msg.req_id, resp);
        co_await route_response(std::move(resp), from);
        co_return;
      }
      case Cmd::release: {
        dedup_store(msg.req_id, Message{});  // marker: suppress replays
        auto it = exports_.find(msg.segid.value());
        if (it != exports_.end() && it->second.grants > 0) --it->second.grants;
        co_return;  // one-way
      }
      default:
        XLOG_WARN("xemem", "%s: unexpected command %s", os_.name().c_str(),
                  cmd_name(msg.cmd));
        co_return;
    }
  }

  // 5. Everything else is in transit.
  co_await forward(std::move(msg), from);
}

sim::Task<void> XememKernel::route_response(Message resp, ChannelEndpoint* from) {
  // Prefer an exact learned route; otherwise retrace the path the request
  // arrived on (always valid in the tree topology); only fall back to the
  // default name-server route when neither is available.
  auto it = enclave_map_.find(resp.dst.value());
  ChannelEndpoint* out = it != enclave_map_.end() ? it->second : from;
  if (out == nullptr) out = ns_channel_;
  if (out == nullptr) co_return;  // no path back: drop
  co_await out->send(std::move(resp));
}

bool XememKernel::dedup_hit(u64 rid, Message* out) const {
  auto it = dedup_.find(rid);
  if (it == dedup_.end()) return false;
  *out = it->second;
  return true;
}

void XememKernel::dedup_store(u64 rid, const Message& resp) {
  if (!dedup_.contains(rid)) dedup_fifo_.push_back(rid);
  dedup_[rid] = resp;
  while (dedup_fifo_.size() > cfg_.dedup_cache_cap) {
    dedup_.erase(dedup_fifo_.front());
    dedup_fifo_.pop_front();
  }
}

void XememKernel::prune_pending_fwd() {
  const sim::TimePoint t = sim::now();
  while (!fwd_log_.empty() && fwd_log_.front().second + cfg_.fwd_ttl <= t) {
    if (pending_fwd_.erase(fwd_log_.front().first) != 0) ++stats_.fwd_expired;
    fwd_log_.pop_front();
  }
}

// ------------------------------------------------------------- name server

sim::Task<void> XememKernel::ns_handle(Message msg, ChannelEndpoint* from) {
  XEMEM_ASSERT(is_ns_);
  ++stats_.ns_requests;
  // Deterministic crashpoint hook (tests/bench): die on the N-th
  // NS-bound command, consuming it before any processing — the sweep
  // never observes a half-applied registry mutation.
  if (crash_after_ns_requests_ != 0 &&
      stats_.ns_requests >= crash_after_ns_requests_) {
    crash();
    co_return;
  }
  co_await os_.service_core()->run_irq(costs::kNameServerOp);

  // Epoch guard: a request stamped with an older name-service epoch comes
  // from a node that has not yet heard of this promotion. Reject it with a
  // retryable status carrying the current epoch — the sender adopts it,
  // re-resolves its NS direction if needed, and retries under the same
  // req_id. Never cached in the dedup table: the retry must re-execute.
  if (msg.epoch < ns_epoch_) {
    ++stats_.epoch_rejects;
    if (msg.is_one_way()) co_return;
    Message rej;
    rej.cmd = response_cmd(msg.cmd);
    rej.req_id = msg.req_id;
    rej.src = EnclaveId{0};
    rej.dst = msg.src;
    rej.status = Errc::stale_epoch;
    rej.epoch = ns_epoch_;
    co_await from->send(std::move(rej));
    co_return;
  }

  // Liveness bookkeeping: sweep expired leases lazily on every command
  // (so a retry against a dead owner's segid fails fast with
  // no_such_segid even between reaper ticks), then renew the sender's.
  ns_gc_expired_leases();
  ns_touch_lease(msg.src);

  // Name-server commands are idempotent per req_id, mirroring the
  // owner-side cache: a retried segid_alloc must not leak a second segid
  // and a retried alloc_enclave_id must not burn a second ID.
  Message cached;
  if (dedup_hit(msg.req_id, &cached)) {
    ++stats_.dup_suppressed;
    if (!msg.is_one_way()) co_await from->send(std::move(cached));
    co_return;
  }

  Message resp;
  resp.req_id = msg.req_id;
  resp.src = EnclaveId{0};
  resp.dst = msg.src;
  resp.epoch = ns_epoch_;
  resp.status = Errc::ok;

  switch (msg.cmd) {
    case Cmd::heartbeat:
      co_return;  // one-way; the renewal above is the whole effect
    case Cmd::ns_probe: {
      // End-to-end liveness probe from the standby. Never dedup-cached:
      // each probe must reflect the current moment.
      resp.cmd = Cmd::ns_probe_resp;
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::reregister: {
      // A survivor replays its locally-owned exports after a promotion:
      // reinstall its route, lease, and registry entries. Idempotent by
      // construction (map inserts), so a retried replay is harmless.
      enclave_map_[msg.src.value()] = from;
      if (cfg_.lease_duration > 0) {
        ns_leases_[msg.src.value()] = sim::now() + cfg_.lease_duration;
      }
      next_enclave_id_ = std::max(next_enclave_id_, msg.src.value() + 1);
      size_t pos = 0;
      const u64 n = msg.payload.size() / 2;
      for (u64 i = 0; i < n; ++i) {
        const u64 sid = msg.payload[2 * i];
        const u64 size = msg.payload[2 * i + 1];
        const size_t next = msg.name.find('\n', pos);
        std::string nm = msg.name.substr(pos, next - pos);
        pos = next == std::string::npos ? msg.name.size() : next + 1;
        ns_segids_[sid] = NsSegidRecord{msg.src, size, nm};
        if (!nm.empty()) ns_names_[nm] = Segid{sid};
      }
      ++stats_.reregistrations;
      if (promote_time_ != 0) {
        stats_.recovery_latency = sim::now() - promote_time_;
      }
      resp.cmd = Cmd::reregister_resp;
      dedup_store(msg.req_id, resp);
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::enclave_shutdown: {
      enclave_map_.erase(msg.src.value());
      ns_leases_.erase(msg.src.value());
      for (auto it = ns_segids_.begin(); it != ns_segids_.end();) {
        if (it->second.owner == msg.src) {
          if (!it->second.name.empty()) ns_names_.erase(it->second.name);
          it = ns_segids_.erase(it);
        } else {
          ++it;
        }
      }
      co_return;  // one-way
    }
    case Cmd::alloc_enclave_id: {
      const u64 fresh = next_enclave_id_++;
      enclave_map_[fresh] = from;
      if (cfg_.lease_duration > 0) {
        ns_leases_[fresh] = sim::now() + cfg_.lease_duration;
      }
      resp.cmd = Cmd::enclave_id_resp;
      resp.dst = EnclaveId{fresh};
      resp.payload.push_back(fresh);
      dedup_store(msg.req_id, resp);
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::segid_alloc: {
      if (!msg.name.empty() && ns_names_.contains(msg.name)) {
        resp.cmd = Cmd::segid_alloc_resp;
        resp.status = Errc::already_exists;
        dedup_store(msg.req_id, resp);
        co_await from->send(std::move(resp));
        co_return;
      }
      const Segid sid{make_segid_value(ns_epoch_, next_segid_++)};
      ns_segids_[sid.value()] = NsSegidRecord{msg.src, msg.size, msg.name};
      if (!msg.name.empty()) ns_names_[msg.name] = sid;
      resp.cmd = Cmd::segid_alloc_resp;
      resp.segid = sid;
      dedup_store(msg.req_id, resp);
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::segid_remove: {
      auto it = ns_segids_.find(msg.segid.value());
      resp.cmd = Cmd::segid_remove_resp;
      if (it == ns_segids_.end()) {
        // Misses inside the post-promotion grace window are answered with
        // retry_later (and never dedup-cached): the entry may simply not
        // have been replayed yet.
        resp.status = in_recovery_grace() ? Errc::retry_later
                                          : Errc::no_such_segid;
        if (resp.status == Errc::retry_later) {
          co_await from->send(std::move(resp));
          co_return;
        }
      } else {
        if (!it->second.name.empty()) ns_names_.erase(it->second.name);
        ns_segids_.erase(it);
      }
      dedup_store(msg.req_id, resp);
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::name_lookup: {
      resp.cmd = Cmd::name_lookup_resp;
      auto it = ns_names_.find(msg.name);
      if (it == ns_names_.end()) {
        resp.status = in_recovery_grace() ? Errc::retry_later
                                          : Errc::no_such_segid;
      } else {
        resp.segid = it->second;
        resp.size = ns_segids_[it->second.value()].size;
      }
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::name_list: {
      resp.cmd = Cmd::name_list_resp;
      for (const auto& [name, sid] : ns_names_) {
        if (!resp.name.empty()) resp.name += '\n';
        resp.name += name;
        resp.payload.push_back(sid.value());
      }
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::get:
    case Cmd::attach:
    case Cmd::detach:
    case Cmd::release: {
      // Forward to the owning enclave (paper section 4.2: "the name
      // server, which maps segids to enclaves, forwards the command to
      // the destination enclave which owns the segid").
      auto it = ns_segids_.find(msg.segid.value());
      if (it == ns_segids_.end()) {
        if (msg.cmd == Cmd::release) co_return;  // one-way: drop
        Message err;
        err.cmd = response_cmd(msg.cmd);
        err.req_id = msg.req_id;
        err.src = EnclaveId{0};
        err.dst = msg.src;
        err.epoch = ns_epoch_;
        err.status = in_recovery_grace() ? Errc::retry_later
                                         : Errc::no_such_segid;
        if (err.status != Errc::retry_later) dedup_store(msg.req_id, err);
        co_await from->send(std::move(err));
        co_return;
      }
      const EnclaveId owner = it->second.owner;
      if (owner == id()) {
        // This name server's own enclave owns the segid (the boot NS has
        // id 0; a promoted standby keeps its own id): serve directly.
        Message resp2;
        switch (msg.cmd) {
          case Cmd::get: resp2 = co_await serve_get(msg); break;
          case Cmd::attach: resp2 = co_await serve_attach(msg); break;
          case Cmd::detach: resp2 = co_await serve_detach(msg); break;
          default: {
            dedup_store(msg.req_id, Message{});  // one-way release marker
            auto ex = exports_.find(msg.segid.value());
            if (ex != exports_.end() && ex->second.grants > 0) --ex->second.grants;
            co_return;
          }
        }
        dedup_store(msg.req_id, resp2);
        co_await from->send(std::move(resp2));
        co_return;
      }
      msg.dst = owner;
      co_await forward(std::move(msg), from);
      co_return;
    }
    default:
      XLOG_WARN("xemem", "name server: unexpected %s", cmd_name(msg.cmd));
      co_return;
  }
}

// ----------------------------------------------------- owner-side servicing

sim::Task<Message> XememKernel::serve_get(const Message& msg) {
  Message resp;
  resp.cmd = Cmd::get_resp;
  resp.req_id = msg.req_id;
  resp.src = id();
  resp.dst = msg.src;
  resp.epoch = ns_epoch_;
  auto it = exports_.find(msg.segid.value());
  if (it == exports_.end()) {
    resp.status = Errc::no_such_segid;
    co_return resp;
  }
  const auto want = static_cast<AccessMode>(msg.access);
  if (want == AccessMode::read_write &&
      it->second.max_access == AccessMode::read_only) {
    resp.status = Errc::permission_denied;
    co_return resp;
  }
  ++it->second.grants;
  resp.status = Errc::ok;
  resp.segid = msg.segid;
  resp.size = it->second.pages * kPageSize;
  resp.access = msg.access;
  co_return resp;
}

sim::Task<Message> XememKernel::serve_attach(const Message& msg) {
  Message resp;
  resp.cmd = Cmd::attach_resp;
  resp.req_id = msg.req_id;
  resp.src = id();
  resp.dst = msg.src;
  resp.epoch = ns_epoch_;

  auto it = exports_.find(msg.segid.value());
  if (it == exports_.end()) {
    resp.status = Errc::no_such_segid;
    co_return resp;
  }
  ExportRecord& rec = it->second;
  const u64 pages = pages_for(msg.size);
  if ((msg.offset & kPageMask) != 0 ||
      (msg.offset >> kPageShift) + pages > rec.pages || pages == 0) {
    resp.status = Errc::invalid_argument;
    co_return resp;
  }

  mm::PfnList frames;
  const auto walk_key = std::make_tuple(msg.segid.value(), msg.offset, pages);
  auto memo = walk_cache_.find(walk_key);
  if (memo != walk_cache_.end()) {
    // Repeat window: reuse the memoized page-table walk. Frames are still
    // pinned per attachment below (each pin record unpins independently on
    // detach), but the walk cost — and for guest enclaves the PCI staging
    // of the frame list — is paid once per window, not once per attacher.
    frames = memo->second;
    ++stats_.walk_cache_hits;
  } else {
    auto walked = co_await os_.service_make_pfn_list(*rec.proc,
                                                     rec.va + msg.offset, pages);
    if (!walked.ok()) {
      resp.status = walked.error();
      co_return resp;
    }
    frames = std::move(walked).value();
    if (cfg_.walk_cache) {
      walk_cache_.emplace(walk_key, frames);
      walk_fifo_.push_back(walk_key);
      while (walk_fifo_.size() > cfg_.walk_cache_cap) {
        walk_cache_.erase(walk_fifo_.front());
        walk_fifo_.pop_front();
      }
    }
  }
  pin_frames(frames.extents());
  ++stats_.attaches_served;
  stats_.pages_shared += frames.page_count();
  const u64 handle = next_handle_++;
  ++rec.attachments;
  resp.status = Errc::ok;
  resp.segid = msg.segid;
  resp.offset = handle;  // owner-side pin handle, echoed back on detach
  resp.size = msg.size;
  encode_pfn_payload(resp, frames);
  pins_.emplace(handle, PinRecord{msg.segid, std::move(frames)});
  co_return resp;
}

sim::Task<Message> XememKernel::serve_detach(const Message& msg) {
  Message resp;
  resp.cmd = Cmd::detach_resp;
  resp.req_id = msg.req_id;
  resp.src = id();
  resp.dst = msg.src;
  resp.epoch = ns_epoch_;

  auto pin = pins_.find(msg.offset);  // offset carries the owner handle
  if (pin == pins_.end() || pin->second.segid != msg.segid) {
    resp.status = Errc::not_attached;
    co_return resp;
  }
  unpin_frames(pin->second.frames.extents());
  pins_.erase(pin);
  auto ex = exports_.find(msg.segid.value());
  if (ex != exports_.end()) {
    XEMEM_ASSERT(ex->second.attachments > 0);
    --ex->second.attachments;
  }
  resp.status = Errc::ok;
  co_return resp;
}

void XememKernel::pin_frames(const std::vector<hw::FrameExtent>& runs) {
  auto& pm = os_.machine().pmem();
  for (const auto& e : runs) pm.ref_run(e);
}

void XememKernel::unpin_frames(const std::vector<hw::FrameExtent>& runs) {
  auto& pm = os_.machine().pmem();
  for (const auto& e : runs) pm.unref_run(e);
}

void XememKernel::encode_pfn_payload(Message& resp, const mm::PfnList& frames) {
  const u64 flat_bytes = frames.wire_bytes();
  if (cfg_.extent_wire) {
    const u64 ext_bytes = frames.extent_wire_bytes();
    // Pick the smaller encoding: a fully scattered list costs 12 B/extent
    // vs 8 B/page flat, so compression is not unconditionally a win.
    if (ext_bytes < flat_bytes) {
      resp.extents = frames.extents();
      stats_.extents_shipped += resp.extents.size();
      stats_.wire_bytes_saved += flat_bytes - ext_bytes;
      return;
    }
  }
  resp.payload.reserve(resp.payload.size() + frames.page_count());
  for (Pfn p : frames.pfns) resp.payload.push_back(p.value());
}

mm::PfnList XememKernel::decode_pfn_payload(const Message& resp) {
  if (!resp.extents.empty()) return mm::PfnList::from_extents(resp.extents);
  mm::PfnList frames;
  frames.pfns.reserve(resp.payload.size());
  for (u64 v : resp.payload) frames.pfns.push_back(Pfn{v});
  return frames;
}

void XememKernel::cache_owner(Segid segid, EnclaveId owner) {
  if (!cfg_.owner_route_cache || !owner.valid() || owner == EnclaveId{0} ||
      owner == id()) {
    return;
  }
  if (!owner_cache_.contains(segid.value())) owner_fifo_.push_back(segid.value());
  owner_cache_[segid.value()] = owner;
  while (owner_fifo_.size() > cfg_.owner_cache_cap) {
    owner_cache_.erase(owner_fifo_.front());
    owner_fifo_.pop_front();
  }
}

void XememKernel::drop_owner_cache(Segid segid) {
  // The FIFO entry stays behind; evicting an already-dropped key later is
  // a harmless no-op and the deque is bounded by owner_cache_cap anyway.
  owner_cache_.erase(segid.value());
}

void XememKernel::drop_owner_cache_for(EnclaveId dead) {
  for (auto it = owner_cache_.begin(); it != owner_cache_.end();) {
    it = it->second == dead ? owner_cache_.erase(it) : std::next(it);
  }
}

void XememKernel::drop_walk_cache(Segid segid) {
  for (auto it = walk_cache_.begin(); it != walk_cache_.end();) {
    it = std::get<0>(it->first) == segid.value() ? walk_cache_.erase(it)
                                                 : std::next(it);
  }
}

u64 XememKernel::pinned_frames() const {
  u64 n = 0;
  for (const auto& [h, rec] : pins_) n += rec.frames.page_count();
  return n;
}

// ---------------------------------------------------------------- user API

sim::Task<Result<Segid>> XememKernel::xpmem_make(os::Process& owner, Vaddr va,
                                                 u64 size, std::string name,
                                                 AccessMode max_access) {
  if ((va.value() & kPageMask) != 0 || size == 0) co_return Errc::invalid_argument;
  const u64 pages = pages_for(size);

  Segid sid{};
  if (is_ns_) {
    co_await os_.service_core()->run_irq(costs::kNameServerOp);
    if (!name.empty()) {
      if (ns_names_.contains(name)) co_return Errc::already_exists;
    }
    sid = Segid{make_segid_value(ns_epoch_, next_segid_++)};
    ns_segids_[sid.value()] = NsSegidRecord{id(), size, name};
    if (!name.empty()) ns_names_[name] = sid;
  } else {
    Message req;
    req.cmd = Cmd::segid_alloc;
    req.dst = EnclaveId{0};
    req.size = size;
    req.name = name;
    auto resp = co_await request(std::move(req));
    if (!resp.ok()) co_return resp.error();
    if (resp.value().status != Errc::ok) co_return resp.value().status;
    sid = resp.value().segid;
  }
  exports_.emplace(sid.value(),
                   ExportRecord{&owner, va, pages, std::move(name), max_access});
  ++stats_.makes;
  co_return sid;
}

sim::Task<Result<void>> XememKernel::xpmem_remove(os::Process& owner, Segid segid) {
  auto it = exports_.find(segid.value());
  if (it == exports_.end()) co_return Errc::no_such_segid;
  if (it->second.proc != &owner) co_return Errc::permission_denied;
  if (it->second.attachments > 0) co_return Errc::busy;

  if (is_ns_) {
    co_await os_.service_core()->run_irq(costs::kNameServerOp);
    auto ns = ns_segids_.find(segid.value());
    if (ns != ns_segids_.end()) {
      if (!ns->second.name.empty()) ns_names_.erase(ns->second.name);
      ns_segids_.erase(ns);
    }
  } else {
    Message req;
    req.cmd = Cmd::segid_remove;
    req.dst = EnclaveId{0};
    req.segid = segid;
    auto resp = co_await request(std::move(req));
    if (!resp.ok()) co_return resp.error();
    if (resp.value().status != Errc::ok) co_return resp.value().status;
  }
  exports_.erase(it);
  // The export is gone: memoized walks for it must never serve again (a
  // later attach must fail no_such_segid, not hand out freed frames).
  drop_walk_cache(segid);
  drop_owner_cache(segid);
  co_return Result<void>{};
}

sim::Task<Result<XpmemGrant>> XememKernel::xpmem_get(Segid segid, AccessMode want) {
  if (!segid.valid()) co_return Errc::invalid_argument;
  // Local fast path.
  auto it = exports_.find(segid.value());
  if (it != exports_.end()) {
    if (want == AccessMode::read_write &&
        it->second.max_access == AccessMode::read_only) {
      co_return Errc::permission_denied;
    }
    ++it->second.grants;
    co_return XpmemGrant{segid, it->second.pages * kPageSize, want};
  }
  Message req;
  req.cmd = Cmd::get;
  req.dst = EnclaveId{0};
  req.segid = segid;
  req.access = static_cast<u8>(want);
  auto resp = co_await request_to_owner(std::move(req));
  if (!resp.ok()) co_return resp.error();
  if (resp.value().status != Errc::ok) co_return resp.value().status;
  co_return XpmemGrant{segid, resp.value().size,
                       static_cast<AccessMode>(resp.value().access)};
}

sim::Task<Result<void>> XememKernel::xpmem_release(const XpmemGrant& grant) {
  auto it = exports_.find(grant.segid.value());
  if (it != exports_.end()) {
    if (it->second.grants > 0) --it->second.grants;
    co_return Result<void>{};
  }
  Message req;
  req.cmd = Cmd::release;
  req.dst = EnclaveId{0};
  req.segid = grant.segid;
  req.src = id();
  req.req_id = g_req_counter++;
  req.epoch = ns_epoch_;
  if (is_ns_) {
    auto ns = ns_segids_.find(grant.segid.value());
    if (ns == ns_segids_.end()) co_return Errc::no_such_segid;
    req.dst = ns->second.owner;
  } else if (auto oc = owner_cache_.find(grant.segid.value());
             oc != owner_cache_.end()) {
    // One-way releases benefit from the owner cache too: send straight to
    // the owner instead of bouncing off the name server.
    req.dst = oc->second;
    ++stats_.lookup_cache_hits;
  }
  ChannelEndpoint* via = route_for(req.dst);
  if (via == nullptr) co_return Errc::unreachable;
  co_await via->send(std::move(req));  // one-way
  co_return Result<void>{};
}

sim::Task<Result<XpmemAttachment>> XememKernel::xpmem_attach(os::Process& attacher,
                                                             const XpmemGrant& grant,
                                                             u64 offset, u64 size) {
  if (!grant.valid() || size == 0 || offset + size > grant.size) {
    co_return Errc::invalid_argument;
  }
  // XPMEM permits byte-granular requests: map the covering pages and
  // return an address pointing at the requested byte.
  const u64 page_off = page_align_down(offset);
  const u64 sub = offset - page_off;
  const u64 pages = pages_for(sub + size);

  // Local fast path: exporter lives in this enclave (paper section 4.2:
  // "the attachment proceeds using the conventions of the local OS").
  auto it = exports_.find(grant.segid.value());
  if (it != exports_.end()) {
    ExportRecord& rec = it->second;
    if ((page_off >> kPageShift) + pages > rec.pages) {
      co_return Errc::invalid_argument;
    }
    auto frames =
        co_await os_.service_make_pfn_list(*rec.proc, rec.va + page_off, pages);
    if (!frames.ok()) co_return frames.error();
    pin_frames(frames.value().extents());
    ++stats_.local_attaches;
    stats_.pages_shared += frames.value().page_count();
    auto va = co_await os_.map_attachment(attacher, frames.value(),
                                          os_.lazy_local_attach(),
                                          grant.mode == AccessMode::read_write);
    if (!va.ok()) {
      unpin_frames(frames.value().extents());
      co_return va.error();
    }
    const u64 handle = next_handle_++;
    ++rec.attachments;
    pins_.emplace(handle, PinRecord{grant.segid, std::move(frames).value()});
    co_return XpmemAttachment{grant.segid, va.value() + sub, va.value(), pages,
                              id(), handle, true};
  }

  const bool writable = grant.mode == AccessMode::read_write;

  // Attacher-side mapping reuse: a window contained in one of our live
  // attachments of this segment needs no protocol traffic at all — the
  // frames are known and the owner already holds a pin covering them.
  // Install a fresh local mapping and share the owner-side pin by
  // refcount; the last detach releases it remotely. Safe against reuse of
  // stale frames because entries only exist while their remote pin does
  // (detach/crash erase them) and segids are never recycled.
  if (cfg_.attach_reuse) {
    for (auto& [key, entry] : attach_cache_) {
      if (key.first != grant.segid.value()) continue;
      if (entry.page_off > page_off ||
          page_off + pages * kPageSize > entry.page_off + entry.pages * kPageSize) {
        continue;
      }
      auto va = co_await os_.map_attachment(
          attacher,
          entry.frames.slice((page_off - entry.page_off) >> kPageShift, pages),
          false, writable);
      if (!va.ok()) co_return va.error();
      ++entry.refs;
      ++stats_.reuse_hits;
      co_return XpmemAttachment{grant.segid, va.value() + sub, va.value(),
                                pages, entry.owner, key.second, false};
    }
  }

  // Remote path: route the attach through the name server to the owner.
  Message req;
  req.cmd = Cmd::attach;
  req.dst = EnclaveId{0};
  req.segid = grant.segid;
  req.offset = page_off;
  req.size = pages * kPageSize;
  auto resp = co_await request_to_owner(std::move(req));
  if (!resp.ok()) co_return resp.error();
  Message& r = resp.value();
  if (r.status != Errc::ok) co_return r.status;

  mm::PfnList frames = decode_pfn_payload(r);
  ++stats_.attaches_issued;
  // An extent-encoded response hands its runs straight to the extent-aware
  // mapping path, which maps run-at-a-time (and lets Kitten pick 2 MiB
  // entries per aligned run) instead of expanding to a flat list first.
  auto va = r.extents.empty()
                ? co_await os_.map_attachment(attacher, frames, false, writable)
                : co_await os_.map_attachment_extents(attacher, r.extents,
                                                      false, writable);
  if (!va.ok()) co_return va.error();
  if (cfg_.attach_reuse) {
    attach_cache_.emplace(
        std::make_pair(grant.segid.value(), r.offset),
        ReuseEntry{page_off, pages, std::move(frames), r.src, 1});
  }
  co_return XpmemAttachment{grant.segid, va.value() + sub, va.value(), pages,
                            r.src, r.offset, false};
}

sim::Task<Result<void>> XememKernel::xpmem_detach(os::Process& attacher,
                                                  const XpmemAttachment& att) {
  auto unmapped = co_await os_.unmap_attachment(attacher, att.map_base, att.pages);
  // A retried detach may find the range already unmapped by a failed
  // predecessor (local half done, owner half lost with a dying forwarder).
  // Push on to the owner-side release anyway so its pin cannot leak.
  if (!unmapped.ok() && unmapped.error() != Errc::not_attached) co_return unmapped;

  if (att.local) {
    auto pin = pins_.find(att.owner_handle);
    if (pin == pins_.end()) co_return Errc::not_attached;
    unpin_frames(pin->second.frames.extents());
    pins_.erase(pin);
    auto ex = exports_.find(att.segid.value());
    if (ex != exports_.end() && ex->second.attachments > 0) --ex->second.attachments;
    co_return Result<void>{};
  }

  // Other local attachments may share this owner-side pin (attach_reuse):
  // only the last one releases it remotely.
  const auto reuse_key = std::make_pair(att.segid.value(), att.owner_handle);
  auto cached = attach_cache_.find(reuse_key);
  if (cached != attach_cache_.end() && --cached->second.refs > 0) {
    co_return Result<void>{};
  }

  Message req;
  req.cmd = Cmd::detach;
  req.dst = EnclaveId{0};
  req.segid = att.segid;
  req.offset = att.owner_handle;
  auto resp = co_await request_to_owner(std::move(req));
  // Erase by key, not iterator: a concurrent crash() clears the cache
  // while we awaited the response. Drop the entry even on a failed detach
  // (the owner is unreachable or gone; reusing its frames would be stale).
  attach_cache_.erase(reuse_key);
  if (!resp.ok()) co_return resp.error();
  co_return resp.value().status == Errc::ok ? Result<void>{}
                                            : Result<void>{resp.value().status};
}

namespace {

std::vector<std::pair<std::string, Segid>> decode_name_list(const Message& m) {
  std::vector<std::pair<std::string, Segid>> out;
  size_t pos = 0;
  for (u64 sid : m.payload) {
    const size_t next = m.name.find('\n', pos);
    out.emplace_back(m.name.substr(pos, next - pos), Segid{sid});
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

}  // namespace

sim::Task<Result<std::vector<std::pair<std::string, Segid>>>>
XememKernel::xpmem_list() {
  if (is_ns_) {
    co_await os_.service_core()->run_irq(costs::kNameServerOp);
    std::vector<std::pair<std::string, Segid>> out;
    for (const auto& [name, sid] : ns_names_) out.emplace_back(name, sid);
    co_return out;
  }
  Message req;
  req.cmd = Cmd::name_list;
  req.dst = EnclaveId{0};
  auto resp = co_await request(std::move(req));
  if (!resp.ok()) co_return resp.error();
  if (resp.value().status != Errc::ok) co_return resp.value().status;
  co_return decode_name_list(resp.value());
}

sim::Task<Result<Segid>> XememKernel::xpmem_search(const std::string& name) {
  if (is_ns_) {
    co_await os_.service_core()->run_irq(costs::kNameServerOp);
    auto it = ns_names_.find(name);
    if (it == ns_names_.end()) co_return Errc::no_such_segid;
    co_return it->second;
  }
  Message req;
  req.cmd = Cmd::name_lookup;
  req.dst = EnclaveId{0};
  req.name = name;
  auto resp = co_await request(std::move(req));
  if (!resp.ok()) co_return resp.error();
  if (resp.value().status != Errc::ok) co_return resp.value().status;
  co_return resp.value().segid;
}

}  // namespace xemem
