#include "xemem/kernel.hpp"

#include "common/log.hpp"
#include "sim/engine.hpp"

namespace xemem {

namespace {
// Globally unique request ids (the simulator is single-threaded; a plain
// counter suffices and keeps intermediate forwarding tables collision-free
// even before enclaves hold ids).
u64 g_req_counter = 1;
}  // namespace

XememKernel::XememKernel(os::Enclave& os, bool is_name_server)
    : os_(os), is_ns_(is_name_server) {}

void XememKernel::add_channel(ChannelEndpoint* ep) {
  channels_.push_back(ep);
  // Channels appear at co-kernel/VM boot time, which may be long after
  // this kernel started (dynamic repartitioning): service it immediately.
  if (started_) sim::Engine::current()->spawn(service_loop(ep));
}

void XememKernel::start() {
  XEMEM_ASSERT(!started_);
  started_ = true;
  auto* eng = sim::Engine::current();
  for (auto* ep : channels_) eng->spawn(service_loop(ep));
  if (is_ns_) {
    os_.set_id(EnclaveId{0});
    registered_.set();
  } else {
    eng->spawn(discovery());
  }
}

sim::Task<void> XememKernel::wait_registered() { co_await registered_.wait(); }

sim::Task<Result<void>> XememKernel::shutdown() {
  XEMEM_ASSERT_MSG(!is_ns_, "the name-server enclave cannot shut down");
  for (const auto& [sid, rec] : exports_) {
    if (rec.attachments > 0) co_return Errc::busy;
  }
  // Withdraw every export from the global name space.
  std::vector<u64> sids;
  sids.reserve(exports_.size());
  for (const auto& [sid, rec] : exports_) sids.push_back(sid);
  for (u64 sid : sids) {
    Message req;
    req.cmd = Cmd::segid_remove;
    req.dst = EnclaveId{0};
    req.segid = Segid{sid};
    auto resp = co_await request(std::move(req));
    if (!resp.ok()) co_return resp.error();
    exports_.erase(sid);
  }
  // Tell the name server to retire this enclave (one-way; also retires any
  // segids registered but not locally tracked).
  Message bye;
  bye.cmd = Cmd::enclave_shutdown;
  bye.dst = EnclaveId{0};
  bye.src = id();
  bye.req_id = g_req_counter++;
  ChannelEndpoint* via = route_for(bye.dst);
  if (via != nullptr) co_await via->send(std::move(bye));
  stopped_ = true;
  co_return Result<void>{};
}

// --------------------------------------------------------------- discovery

sim::Task<void> XememKernel::discovery() {
  // Paper section 3.2: broadcast on every channel until some neighbor
  // responds that it knows a path to the name server; then request an
  // enclave ID through that channel.
  while (ns_channel_ == nullptr) {
    for (auto* ep : channels_) {
      Message ping;
      ping.cmd = Cmd::ping_ns;
      auto resp = co_await request(std::move(ping), ep, kPingTimeout);
      if (resp.ok() && resp.value().status == Errc::ok) {
        ns_channel_ = ep;
        break;
      }
    }
    if (ns_channel_ == nullptr) co_await sim::delay(200'000 /*200us backoff*/);
  }

  Message alloc;
  alloc.cmd = Cmd::alloc_enclave_id;
  alloc.dst = EnclaveId{0};
  auto resp = co_await request(std::move(alloc), ns_channel_);
  XEMEM_ASSERT_MSG(resp.ok() && resp.value().status == Errc::ok,
                   "enclave id allocation failed");
  os_.set_id(EnclaveId{resp.value().payload.at(0)});
  XLOG_DEBUG("xemem", "%s registered as enclave %llu", os_.name().c_str(),
             static_cast<unsigned long long>(id().value()));
  registered_.set();
}

// ---------------------------------------------------------------- plumbing

sim::Task<void> XememKernel::service_loop(ChannelEndpoint* ep) {
  for (;;) {
    Message msg = co_await ep->inbox().recv();
    co_await handle(std::move(msg), ep);
  }
}

ChannelEndpoint* XememKernel::route_for(EnclaveId dst) {
  auto it = enclave_map_.find(dst.value());
  if (it != enclave_map_.end()) return it->second;
  return ns_channel_;  // default route: toward the name server
}

sim::Task<Result<Message>> XememKernel::request(Message msg) {
  co_return co_await request(std::move(msg), nullptr);
}

sim::Task<void> XememKernel::timeout_actor(XememKernel* k, u64 rid,
                                           sim::Duration t) {
  co_await sim::delay(t);
  auto it = k->pending_resp_.find(rid);
  if (it != k->pending_resp_.end()) {
    // Deliver an expiry sentinel; the real response (if it ever arrives)
    // is dropped as an orphan because the waiter has gone.
    Message expired;
    expired.req_id = rid;
    expired.status = Errc::unreachable;
    it->second->send(std::move(expired));
  }
}

sim::Task<Result<Message>> XememKernel::request(Message msg, ChannelEndpoint* via,
                                                sim::Duration timeout) {
  msg.req_id = g_req_counter++;
  if (msg.src == EnclaveId::invalid()) msg.src = id();
  const u64 rid = msg.req_id;
  if (via == nullptr) via = route_for(msg.dst);
  if (via == nullptr) co_return Errc::unreachable;
  if (timeout == 0) timeout = kRequestTimeout;

  sim::Mailbox<Message> mb;
  pending_resp_[rid] = &mb;
  sim::Engine::current()->spawn(timeout_actor(this, rid, timeout));
  co_await via->send(std::move(msg));
  Message resp = co_await mb.recv();
  pending_resp_.erase(rid);
  if (resp.status == Errc::unreachable && resp.cmd == Cmd::ping_ns) {
    co_return Errc::unreachable;  // expiry sentinel (default-constructed cmd)
  }
  co_return resp;
}

sim::Task<Result<Message>> XememKernel::request_to_owner(Message msg) {
  if (is_ns_) {
    // We *are* the name server: resolve the owner locally instead of
    // sending to ourselves.
    auto it = ns_segids_.find(msg.segid.value());
    if (it == ns_segids_.end()) co_return Errc::no_such_segid;
    co_await os_.service_core()->run_irq(costs::kNameServerOp);
    msg.dst = it->second.owner;
    XEMEM_ASSERT_MSG(msg.dst != EnclaveId{0},
                     "NS-owned segid must use the local fast path");
  } else {
    msg.dst = EnclaveId{0};
  }
  co_return co_await request(std::move(msg));
}

sim::Task<void> XememKernel::forward(Message msg, ChannelEndpoint* from) {
  // Requests remember their inbound channel so the response can retrace
  // the path even before routing tables know the requester.
  if (!msg.is_response()) pending_fwd_[msg.req_id] = from;
  ++stats_.messages_forwarded;
  ChannelEndpoint* out = route_for(msg.dst);
  // Note: out == from is legitimate — e.g. the name server bouncing an
  // attach back down the same link when the owner lives in the subtree the
  // request came from. The hierarchy is a tree, so forwarding terminates.
  XEMEM_ASSERT_MSG(out != nullptr, "routing dead end");
  co_await os_.service_core()->run_irq(costs::kRouteHop);
  co_await out->send(std::move(msg));
}

sim::Task<void> XememKernel::handle(Message msg, ChannelEndpoint* from) {
  // 1. Responses retracing a forwarded request.
  if (msg.is_response()) {
    auto fwd = pending_fwd_.find(msg.req_id);
    if (fwd != pending_fwd_.end()) {
      ChannelEndpoint* back = fwd->second;
      pending_fwd_.erase(fwd);
      // Learn routes from enclave-id allocations passing through us
      // (paper section 3.2's LWK D / VM F example).
      if (msg.cmd == Cmd::enclave_id_resp && msg.status == Errc::ok) {
        enclave_map_[msg.payload.at(0)] = back;
      }
      co_await os_.service_core()->run_irq(costs::kRouteHop);
      co_await back->send(std::move(msg));
      co_return;
    }
    auto wait = pending_resp_.find(msg.req_id);
    if (wait != pending_resp_.end()) {
      wait->second->send(std::move(msg));
      co_return;
    }
    XLOG_WARN("xemem", "%s: dropping orphan response %s", os_.name().c_str(),
              cmd_name(msg.cmd));
    co_return;
  }

  // 2. Channel-local probes are answered immediately, never forwarded.
  if (msg.cmd == Cmd::ping_ns) {
    Message resp;
    resp.cmd = Cmd::ping_ns_resp;
    resp.req_id = msg.req_id;
    resp.src = id();
    resp.status = (is_ns_ || ns_channel_ != nullptr) ? Errc::ok : Errc::unreachable;
    co_await from->send(std::move(resp));
    co_return;
  }

  // 3. Name-server-addressed traffic.
  if (msg.dst == EnclaveId{0}) {
    if (is_ns_) {
      co_await ns_handle(std::move(msg), from);
    } else {
      co_await forward(std::move(msg), from);
    }
    co_return;
  }

  // 4. Traffic addressed to this enclave: owner-side servicing.
  if (msg.dst == id()) {
    switch (msg.cmd) {
      case Cmd::get: {
        Message resp = co_await serve_get(msg);
        co_await route_response(std::move(resp), from);
        co_return;
      }
      case Cmd::attach: {
        Message resp = co_await serve_attach(msg);
        co_await route_response(std::move(resp), from);
        co_return;
      }
      case Cmd::detach: {
        Message resp = co_await serve_detach(msg);
        co_await route_response(std::move(resp), from);
        co_return;
      }
      case Cmd::release: {
        auto it = exports_.find(msg.segid.value());
        if (it != exports_.end() && it->second.grants > 0) --it->second.grants;
        co_return;  // one-way
      }
      default:
        XLOG_WARN("xemem", "%s: unexpected command %s", os_.name().c_str(),
                  cmd_name(msg.cmd));
        co_return;
    }
  }

  // 5. Everything else is in transit.
  co_await forward(std::move(msg), from);
}

sim::Task<void> XememKernel::route_response(Message resp, ChannelEndpoint* from) {
  ChannelEndpoint* out = route_for(resp.dst);
  if (out == nullptr) out = from;  // fall back to retracing the request path
  co_await out->send(std::move(resp));
}

// ------------------------------------------------------------- name server

sim::Task<void> XememKernel::ns_handle(Message msg, ChannelEndpoint* from) {
  XEMEM_ASSERT(is_ns_);
  ++stats_.ns_requests;
  co_await os_.service_core()->run_irq(costs::kNameServerOp);

  Message resp;
  resp.req_id = msg.req_id;
  resp.src = EnclaveId{0};
  resp.dst = msg.src;
  resp.status = Errc::ok;

  switch (msg.cmd) {
    case Cmd::enclave_shutdown: {
      enclave_map_.erase(msg.src.value());
      for (auto it = ns_segids_.begin(); it != ns_segids_.end();) {
        if (it->second.owner == msg.src) {
          if (!it->second.name.empty()) ns_names_.erase(it->second.name);
          it = ns_segids_.erase(it);
        } else {
          ++it;
        }
      }
      co_return;  // one-way
    }
    case Cmd::alloc_enclave_id: {
      const u64 fresh = next_enclave_id_++;
      enclave_map_[fresh] = from;
      resp.cmd = Cmd::enclave_id_resp;
      resp.dst = EnclaveId{fresh};
      resp.payload.push_back(fresh);
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::segid_alloc: {
      if (!msg.name.empty() && ns_names_.contains(msg.name)) {
        resp.cmd = Cmd::segid_alloc_resp;
        resp.status = Errc::already_exists;
        co_await from->send(std::move(resp));
        co_return;
      }
      const Segid sid{next_segid_++};
      ns_segids_[sid.value()] = NsSegidRecord{msg.src, msg.size, msg.name};
      if (!msg.name.empty()) ns_names_[msg.name] = sid;
      resp.cmd = Cmd::segid_alloc_resp;
      resp.segid = sid;
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::segid_remove: {
      auto it = ns_segids_.find(msg.segid.value());
      resp.cmd = Cmd::segid_remove_resp;
      if (it == ns_segids_.end()) {
        resp.status = Errc::no_such_segid;
      } else {
        if (!it->second.name.empty()) ns_names_.erase(it->second.name);
        ns_segids_.erase(it);
      }
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::name_lookup: {
      resp.cmd = Cmd::name_lookup_resp;
      auto it = ns_names_.find(msg.name);
      if (it == ns_names_.end()) {
        resp.status = Errc::no_such_segid;
      } else {
        resp.segid = it->second;
        resp.size = ns_segids_[it->second.value()].size;
      }
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::name_list: {
      resp.cmd = Cmd::name_list_resp;
      for (const auto& [name, sid] : ns_names_) {
        if (!resp.name.empty()) resp.name += '\n';
        resp.name += name;
        resp.payload.push_back(sid.value());
      }
      co_await from->send(std::move(resp));
      co_return;
    }
    case Cmd::get:
    case Cmd::attach:
    case Cmd::detach:
    case Cmd::release: {
      // Forward to the owning enclave (paper section 4.2: "the name
      // server, which maps segids to enclaves, forwards the command to
      // the destination enclave which owns the segid").
      auto it = ns_segids_.find(msg.segid.value());
      if (it == ns_segids_.end()) {
        if (msg.cmd == Cmd::release) co_return;  // one-way: drop
        Message err;
        err.cmd = msg.cmd == Cmd::get      ? Cmd::get_resp
                  : msg.cmd == Cmd::attach ? Cmd::attach_resp
                                           : Cmd::detach_resp;
        err.req_id = msg.req_id;
        err.src = EnclaveId{0};
        err.dst = msg.src;
        err.status = Errc::no_such_segid;
        co_await from->send(std::move(err));
        co_return;
      }
      const EnclaveId owner = it->second.owner;
      if (owner == EnclaveId{0}) {
        // The name server's own enclave owns the segid: serve directly.
        Message resp2;
        switch (msg.cmd) {
          case Cmd::get: resp2 = co_await serve_get(msg); break;
          case Cmd::attach: resp2 = co_await serve_attach(msg); break;
          case Cmd::detach: resp2 = co_await serve_detach(msg); break;
          default: {
            auto ex = exports_.find(msg.segid.value());
            if (ex != exports_.end() && ex->second.grants > 0) --ex->second.grants;
            co_return;
          }
        }
        co_await from->send(std::move(resp2));
        co_return;
      }
      msg.dst = owner;
      co_await forward(std::move(msg), from);
      co_return;
    }
    default:
      XLOG_WARN("xemem", "name server: unexpected %s", cmd_name(msg.cmd));
      co_return;
  }
}

// ----------------------------------------------------- owner-side servicing

sim::Task<Message> XememKernel::serve_get(const Message& msg) {
  Message resp;
  resp.cmd = Cmd::get_resp;
  resp.req_id = msg.req_id;
  resp.src = id();
  resp.dst = msg.src;
  auto it = exports_.find(msg.segid.value());
  if (it == exports_.end()) {
    resp.status = Errc::no_such_segid;
    co_return resp;
  }
  const auto want = static_cast<AccessMode>(msg.access);
  if (want == AccessMode::read_write &&
      it->second.max_access == AccessMode::read_only) {
    resp.status = Errc::permission_denied;
    co_return resp;
  }
  ++it->second.grants;
  resp.status = Errc::ok;
  resp.segid = msg.segid;
  resp.size = it->second.pages * kPageSize;
  resp.access = msg.access;
  co_return resp;
}

sim::Task<Message> XememKernel::serve_attach(const Message& msg) {
  Message resp;
  resp.cmd = Cmd::attach_resp;
  resp.req_id = msg.req_id;
  resp.src = id();
  resp.dst = msg.src;

  auto it = exports_.find(msg.segid.value());
  if (it == exports_.end()) {
    resp.status = Errc::no_such_segid;
    co_return resp;
  }
  ExportRecord& rec = it->second;
  const u64 pages = pages_for(msg.size);
  if ((msg.offset & kPageMask) != 0 ||
      (msg.offset >> kPageShift) + pages > rec.pages || pages == 0) {
    resp.status = Errc::invalid_argument;
    co_return resp;
  }

  auto frames = co_await os_.service_make_pfn_list(*rec.proc,
                                                   rec.va + msg.offset, pages);
  if (!frames.ok()) {
    resp.status = frames.error();
    co_return resp;
  }
  pin_frames(frames.value());
  ++stats_.attaches_served;
  stats_.pages_shared += frames.value().page_count();
  const u64 handle = next_handle_++;
  ++rec.attachments;
  resp.status = Errc::ok;
  resp.segid = msg.segid;
  resp.offset = handle;  // owner-side pin handle, echoed back on detach
  resp.size = msg.size;
  resp.payload.reserve(frames.value().page_count());
  for (Pfn p : frames.value().pfns) resp.payload.push_back(p.value());
  pins_.emplace(handle, PinRecord{msg.segid, std::move(frames).value()});
  co_return resp;
}

sim::Task<Message> XememKernel::serve_detach(const Message& msg) {
  Message resp;
  resp.cmd = Cmd::detach_resp;
  resp.req_id = msg.req_id;
  resp.src = id();
  resp.dst = msg.src;

  auto pin = pins_.find(msg.offset);  // offset carries the owner handle
  if (pin == pins_.end() || pin->second.segid != msg.segid) {
    resp.status = Errc::not_attached;
    co_return resp;
  }
  unpin_frames(pin->second.frames);
  pins_.erase(pin);
  auto ex = exports_.find(msg.segid.value());
  if (ex != exports_.end()) {
    XEMEM_ASSERT(ex->second.attachments > 0);
    --ex->second.attachments;
  }
  resp.status = Errc::ok;
  co_return resp;
}

void XememKernel::pin_frames(const mm::PfnList& frames) {
  auto& pm = os_.machine().pmem();
  for (Pfn p : frames.pfns) pm.ref(p);
}

void XememKernel::unpin_frames(const mm::PfnList& frames) {
  auto& pm = os_.machine().pmem();
  for (Pfn p : frames.pfns) pm.unref(p);
}

u64 XememKernel::pinned_frames() const {
  u64 n = 0;
  for (const auto& [h, rec] : pins_) n += rec.frames.page_count();
  return n;
}

// ---------------------------------------------------------------- user API

sim::Task<Result<Segid>> XememKernel::xpmem_make(os::Process& owner, Vaddr va,
                                                 u64 size, std::string name,
                                                 AccessMode max_access) {
  if ((va.value() & kPageMask) != 0 || size == 0) co_return Errc::invalid_argument;
  const u64 pages = pages_for(size);

  Segid sid{};
  if (is_ns_) {
    co_await os_.service_core()->run_irq(costs::kNameServerOp);
    if (!name.empty()) {
      if (ns_names_.contains(name)) co_return Errc::already_exists;
    }
    sid = Segid{next_segid_++};
    ns_segids_[sid.value()] = NsSegidRecord{EnclaveId{0}, size, name};
    if (!name.empty()) ns_names_[name] = sid;
  } else {
    Message req;
    req.cmd = Cmd::segid_alloc;
    req.dst = EnclaveId{0};
    req.size = size;
    req.name = name;
    auto resp = co_await request(std::move(req));
    if (!resp.ok()) co_return resp.error();
    if (resp.value().status != Errc::ok) co_return resp.value().status;
    sid = resp.value().segid;
  }
  exports_.emplace(sid.value(),
                   ExportRecord{&owner, va, pages, std::move(name), max_access});
  ++stats_.makes;
  co_return sid;
}

sim::Task<Result<void>> XememKernel::xpmem_remove(os::Process& owner, Segid segid) {
  auto it = exports_.find(segid.value());
  if (it == exports_.end()) co_return Errc::no_such_segid;
  if (it->second.proc != &owner) co_return Errc::permission_denied;
  if (it->second.attachments > 0) co_return Errc::busy;

  if (is_ns_) {
    co_await os_.service_core()->run_irq(costs::kNameServerOp);
    auto ns = ns_segids_.find(segid.value());
    if (ns != ns_segids_.end()) {
      if (!ns->second.name.empty()) ns_names_.erase(ns->second.name);
      ns_segids_.erase(ns);
    }
  } else {
    Message req;
    req.cmd = Cmd::segid_remove;
    req.dst = EnclaveId{0};
    req.segid = segid;
    auto resp = co_await request(std::move(req));
    if (!resp.ok()) co_return resp.error();
    if (resp.value().status != Errc::ok) co_return resp.value().status;
  }
  exports_.erase(it);
  co_return Result<void>{};
}

sim::Task<Result<XpmemGrant>> XememKernel::xpmem_get(Segid segid, AccessMode want) {
  if (!segid.valid()) co_return Errc::invalid_argument;
  // Local fast path.
  auto it = exports_.find(segid.value());
  if (it != exports_.end()) {
    if (want == AccessMode::read_write &&
        it->second.max_access == AccessMode::read_only) {
      co_return Errc::permission_denied;
    }
    ++it->second.grants;
    co_return XpmemGrant{segid, it->second.pages * kPageSize, want};
  }
  Message req;
  req.cmd = Cmd::get;
  req.dst = EnclaveId{0};
  req.segid = segid;
  req.access = static_cast<u8>(want);
  auto resp = co_await request_to_owner(std::move(req));
  if (!resp.ok()) co_return resp.error();
  if (resp.value().status != Errc::ok) co_return resp.value().status;
  co_return XpmemGrant{segid, resp.value().size,
                       static_cast<AccessMode>(resp.value().access)};
}

sim::Task<Result<void>> XememKernel::xpmem_release(const XpmemGrant& grant) {
  auto it = exports_.find(grant.segid.value());
  if (it != exports_.end()) {
    if (it->second.grants > 0) --it->second.grants;
    co_return Result<void>{};
  }
  Message req;
  req.cmd = Cmd::release;
  req.dst = EnclaveId{0};
  req.segid = grant.segid;
  req.src = id();
  req.req_id = g_req_counter++;
  if (is_ns_) {
    auto ns = ns_segids_.find(grant.segid.value());
    if (ns == ns_segids_.end()) co_return Errc::no_such_segid;
    req.dst = ns->second.owner;
  }
  ChannelEndpoint* via = route_for(req.dst);
  if (via == nullptr) co_return Errc::unreachable;
  co_await via->send(std::move(req));  // one-way
  co_return Result<void>{};
}

sim::Task<Result<XpmemAttachment>> XememKernel::xpmem_attach(os::Process& attacher,
                                                             const XpmemGrant& grant,
                                                             u64 offset, u64 size) {
  if (!grant.valid() || size == 0 || offset + size > grant.size) {
    co_return Errc::invalid_argument;
  }
  // XPMEM permits byte-granular requests: map the covering pages and
  // return an address pointing at the requested byte.
  const u64 page_off = page_align_down(offset);
  const u64 sub = offset - page_off;
  const u64 pages = pages_for(sub + size);

  // Local fast path: exporter lives in this enclave (paper section 4.2:
  // "the attachment proceeds using the conventions of the local OS").
  auto it = exports_.find(grant.segid.value());
  if (it != exports_.end()) {
    ExportRecord& rec = it->second;
    if ((page_off >> kPageShift) + pages > rec.pages) {
      co_return Errc::invalid_argument;
    }
    auto frames =
        co_await os_.service_make_pfn_list(*rec.proc, rec.va + page_off, pages);
    if (!frames.ok()) co_return frames.error();
    pin_frames(frames.value());
    ++stats_.attaches_served;
    ++stats_.attaches_issued;
    stats_.pages_shared += frames.value().page_count();
    auto va = co_await os_.map_attachment(attacher, frames.value(),
                                          os_.lazy_local_attach(),
                                          grant.mode == AccessMode::read_write);
    if (!va.ok()) {
      unpin_frames(frames.value());
      co_return va.error();
    }
    const u64 handle = next_handle_++;
    ++rec.attachments;
    pins_.emplace(handle, PinRecord{grant.segid, std::move(frames).value()});
    co_return XpmemAttachment{grant.segid, va.value() + sub, va.value(), pages,
                              id(), handle, true};
  }

  // Remote path: route the attach through the name server to the owner.
  Message req;
  req.cmd = Cmd::attach;
  req.dst = EnclaveId{0};
  req.segid = grant.segid;
  req.offset = page_off;
  req.size = pages * kPageSize;
  auto resp = co_await request_to_owner(std::move(req));
  if (!resp.ok()) co_return resp.error();
  Message& r = resp.value();
  if (r.status != Errc::ok) co_return r.status;

  mm::PfnList frames;
  frames.pfns.reserve(r.payload.size());
  for (u64 v : r.payload) frames.pfns.push_back(Pfn{v});
  ++stats_.attaches_issued;
  auto va = co_await os_.map_attachment(attacher, frames, false,
                                        grant.mode == AccessMode::read_write);
  if (!va.ok()) co_return va.error();
  co_return XpmemAttachment{grant.segid, va.value() + sub, va.value(), pages,
                            r.src, r.offset, false};
}

sim::Task<Result<void>> XememKernel::xpmem_detach(os::Process& attacher,
                                                  const XpmemAttachment& att) {
  auto unmapped = co_await os_.unmap_attachment(attacher, att.map_base, att.pages);
  if (!unmapped.ok()) co_return unmapped;

  if (att.local) {
    auto pin = pins_.find(att.owner_handle);
    if (pin == pins_.end()) co_return Errc::not_attached;
    unpin_frames(pin->second.frames);
    pins_.erase(pin);
    auto ex = exports_.find(att.segid.value());
    if (ex != exports_.end() && ex->second.attachments > 0) --ex->second.attachments;
    co_return Result<void>{};
  }

  Message req;
  req.cmd = Cmd::detach;
  req.dst = EnclaveId{0};
  req.segid = att.segid;
  req.offset = att.owner_handle;
  auto resp = co_await request_to_owner(std::move(req));
  if (!resp.ok()) co_return resp.error();
  co_return resp.value().status == Errc::ok ? Result<void>{}
                                            : Result<void>{resp.value().status};
}

namespace {

std::vector<std::pair<std::string, Segid>> decode_name_list(const Message& m) {
  std::vector<std::pair<std::string, Segid>> out;
  size_t pos = 0;
  for (u64 sid : m.payload) {
    const size_t next = m.name.find('\n', pos);
    out.emplace_back(m.name.substr(pos, next - pos), Segid{sid});
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

}  // namespace

sim::Task<Result<std::vector<std::pair<std::string, Segid>>>>
XememKernel::xpmem_list() {
  if (is_ns_) {
    co_await os_.service_core()->run_irq(costs::kNameServerOp);
    std::vector<std::pair<std::string, Segid>> out;
    for (const auto& [name, sid] : ns_names_) out.emplace_back(name, sid);
    co_return out;
  }
  Message req;
  req.cmd = Cmd::name_list;
  req.dst = EnclaveId{0};
  auto resp = co_await request(std::move(req));
  if (!resp.ok()) co_return resp.error();
  if (resp.value().status != Errc::ok) co_return resp.value().status;
  co_return decode_name_list(resp.value());
}

sim::Task<Result<Segid>> XememKernel::xpmem_search(const std::string& name) {
  if (is_ns_) {
    co_await os_.service_core()->run_irq(costs::kNameServerOp);
    auto it = ns_names_.find(name);
    if (it == ns_names_.end()) co_return Errc::no_such_segid;
    co_return it->second;
  }
  Message req;
  req.cmd = Cmd::name_lookup;
  req.dst = EnclaveId{0};
  req.name = name;
  auto resp = co_await request(std::move(req));
  if (!resp.ok()) co_return resp.error();
  if (resp.value().status != Errc::ok) co_return resp.value().status;
  co_return resp.value().segid;
}

}  // namespace xemem
