// A free-list allocator inside a shared region.
//
// Composed applications frequently want to place *objects* — mesh tiles,
// message buffers, result records — inside an exported region rather than
// manage raw offsets by hand. ShmAllocator manages the byte range of a
// shared region with a first-fit free list whose metadata also lives in
// the region, so any process mapping the region (from any enclave) sees a
// consistent heap. Allocations return region *offsets*, which are mapping-
// independent: each process adds its own base VA.
//
// Layout: a header block at offset 0 (magic, region size, free-list head),
// then 16-byte-aligned blocks each with an 16-byte {size, next} header.
// Free blocks are chained through the region itself.
//
// Concurrency: callers serialize externally (e.g. with shm::ShmLock placed
// in the header's reserved word) — matching how real shared-heap libraries
// over XPMEM delegate locking to the application.
#pragma once

#include <optional>

#include "os/enclave.hpp"

namespace xemem::shm {

class ShmAllocator {
 public:
  static constexpr u64 kMagic = 0x58454d48454150ull;  // "XEMHEAP"
  static constexpr u64 kAlign = 16;
  static constexpr u64 kHeaderBytes = 64;  // magic, size, head, lock word, pad

  /// View of the heap at @p base (a region VA) through @p proc's mapping.
  ShmAllocator(os::Enclave& os, os::Process& proc, Vaddr base, u64 region_bytes)
      : os_(&os), proc_(&proc), base_(base), bytes_(region_bytes) {}

  /// Format the region as an empty heap (exactly one process, once).
  Result<void> init() {
    if (bytes_ < kHeaderBytes + kAlign + 16) return Errc::invalid_argument;
    auto w = write_u64(0, kMagic);
    if (!w.ok()) return w;
    XEMEM_ASSERT(write_u64(8, bytes_).ok());
    // One free block spanning the rest of the region.
    const u64 first = kHeaderBytes;
    XEMEM_ASSERT(write_u64(16, first).ok());  // free-list head
    XEMEM_ASSERT(write_u64(24, 0).ok());      // lock word (for ShmLock)
    XEMEM_ASSERT(write_u64(first, bytes_ - kHeaderBytes).ok());  // block size
    XEMEM_ASSERT(write_u64(first + 8, 0).ok());                  // next = null
    return {};
  }

  /// True if the region holds a formatted heap (attachers verify before use).
  bool valid() const { return read_u64(0) == kMagic && read_u64(8) == bytes_; }

  /// Offset of the lock word reserved for external serialization.
  u64 lock_offset() const { return 24; }

  /// Allocate @p n bytes; returns the region offset of the payload.
  Result<u64> allocate(u64 n) {
    if (!valid()) return Errc::protocol_error;
    if (n == 0) return Errc::invalid_argument;
    const u64 need = align_up(n) + 16;  // payload + block header

    u64 prev_link = 16;  // region offset of the link pointing at `cur`
    u64 cur = read_u64(prev_link);
    while (cur != 0) {
      const u64 size = read_u64(cur);
      const u64 next = read_u64(cur + 8);
      if (size >= need) {
        const u64 rest = size - need;
        if (rest >= kAlign + 16) {
          // Split: the tail remains free.
          const u64 tail = cur + need;
          XEMEM_ASSERT(write_u64(tail, rest).ok());
          XEMEM_ASSERT(write_u64(tail + 8, next).ok());
          XEMEM_ASSERT(write_u64(prev_link, tail).ok());
          XEMEM_ASSERT(write_u64(cur, need).ok());
        } else {
          XEMEM_ASSERT(write_u64(prev_link, next).ok());
        }
        XEMEM_ASSERT(write_u64(cur + 8, kMagic).ok());  // in-use tag
        return cur + 16;
      }
      prev_link = cur + 8;
      cur = next;
    }
    return Errc::out_of_memory;
  }

  /// Release a payload offset returned by allocate (first-fit reinsertion
  /// with forward coalescing).
  Result<void> deallocate(u64 payload_off) {
    if (!valid()) return Errc::protocol_error;
    const u64 block = payload_off - 16;
    if (block < kHeaderBytes || block >= bytes_) return Errc::invalid_argument;
    if (read_u64(block + 8) != kMagic) return Errc::invalid_argument;  // not live

    // Insert into the address-ordered free list.
    u64 prev_link = 16;
    u64 cur = read_u64(prev_link);
    while (cur != 0 && cur < block) {
      prev_link = cur + 8;
      cur = read_u64(cur + 8);
    }
    XEMEM_ASSERT(write_u64(block + 8, cur).ok());
    XEMEM_ASSERT(write_u64(prev_link, block).ok());

    // Coalesce with the successor, then let the predecessor absorb us.
    coalesce(block);
    if (prev_link != 16) {
      const u64 prev_block = prev_link - 8;
      coalesce(prev_block);
    }
    return {};
  }

  /// Total free payload bytes (diagnostics / leak tests).
  u64 free_bytes() const {
    u64 total = 0;
    u64 cur = read_u64(16);
    while (cur != 0) {
      total += read_u64(cur) - 16;
      cur = read_u64(cur + 8);
    }
    return total;
  }

  /// Convenience typed access through this process's mapping.
  template <typename T>
  Result<void> write_object(u64 payload_off, const T& value) {
    return os_->proc_write(*proc_, base_ + payload_off, &value, sizeof(T));
  }
  template <typename T>
  Result<T> read_object(u64 payload_off) const {
    T out{};
    auto r = os_->proc_read(*proc_, base_ + payload_off, &out, sizeof(T));
    if (!r.ok()) return r.error();
    return out;
  }

 private:
  static u64 align_up(u64 n) { return (n + kAlign - 1) / kAlign * kAlign; }

  void coalesce(u64 block) {
    const u64 size = read_u64(block);
    const u64 next = read_u64(block + 8);
    if (next != 0 && block + size == next) {
      XEMEM_ASSERT(write_u64(block, size + read_u64(next)).ok());
      XEMEM_ASSERT(write_u64(block + 8, read_u64(next + 8)).ok());
    }
  }

  u64 read_u64(u64 off) const {
    u64 v = 0;
    XEMEM_ASSERT(os_->proc_read(*proc_, base_ + off, &v, 8).ok());
    return v;
  }
  Result<void> write_u64(u64 off, u64 v) {
    return os_->proc_write(*proc_, base_ + off, &v, 8);
  }

  os::Enclave* os_;
  os::Process* proc_;
  Vaddr base_;
  u64 bytes_;
};

}  // namespace xemem::shm
