// The XEMEM kernel module: one instance per enclave.
//
// Implements (paper section 4):
//  * the XPMEM-compatible user API (Table 1) on top of the cross-enclave
//    protocol, with a local fast path when exporter and attacher share an
//    enclave;
//  * the hierarchical routing protocol (section 3.2): name-server
//    discovery by broadcast, enclave-ID allocation through the hierarchy,
//    per-enclave routing tables learned from forwarded responses, and
//    default routing toward the name server;
//  * the name server itself (section 3.1) when this enclave hosts it:
//    globally unique segids, segid -> owner-enclave records, and the
//    well-known-name registry that provides discoverability;
//  * export-side attachment servicing: page-table walk via the enclave
//    personality, frame pinning, PFN-list responses (section 4.2).
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/costs.hpp"
#include "mm/pfn_list.hpp"
#include "os/enclave.hpp"
#include "xemem/api.hpp"
#include "xemem/channel.hpp"
#include "xemem/wire.hpp"

namespace xemem {

class XememKernel {
 public:
  /// @param is_name_server  exactly one kernel per system hosts the name
  ///                        server (deployable in any enclave; section 3.2)
  XememKernel(os::Enclave& os, bool is_name_server);

  XememKernel(const XememKernel&) = delete;
  XememKernel& operator=(const XememKernel&) = delete;

  os::Enclave& os() { return os_; }
  bool is_name_server() const { return is_ns_; }
  EnclaveId id() const { return os_.id(); }

  /// Register a channel to a neighboring enclave. Call before start().
  void add_channel(ChannelEndpoint* ep);

  /// Spawn the per-channel service loops and, for non-name-server
  /// enclaves, begin name-server discovery. Must run inside a simulation.
  void start();

  /// Awaitable: completes when this enclave holds a valid enclave ID
  /// (i.e. discovery + registration finished).
  sim::Task<void> wait_registered();

  /// Graceful shutdown for dynamic repartitioning (paper section 3.2:
  /// partitions "are likely to be dynamic and will change in response to
  /// the node's workload characteristics"). Withdraws every local export
  /// from the name server and deregisters the enclave's routes. Fails with
  /// Errc::busy while any local export has outstanding attachments; the
  /// caller must quiesce its own traffic first.
  sim::Task<Result<void>> shutdown();
  bool is_shutdown() const { return stopped_; }

  // --------------------------------------------------------- XPMEM API

  /// Export [va, va+size) of @p owner under a fresh globally-unique segid.
  /// @p name optionally publishes the segment for xpmem_search discovery;
  /// @p max_access caps what grants may request (XPMEM permit model).
  sim::Task<Result<Segid>> xpmem_make(os::Process& owner, Vaddr va, u64 size,
                                      std::string name = "",
                                      AccessMode max_access = AccessMode::read_write);

  /// Withdraw an export. Fails with Errc::busy while attachments exist.
  sim::Task<Result<void>> xpmem_remove(os::Process& owner, Segid segid);

  /// Request permission to attach @p segid with @p want access. Fails with
  /// permission_denied if the export's max access is weaker.
  sim::Task<Result<XpmemGrant>> xpmem_get(Segid segid,
                                          AccessMode want = AccessMode::read_write);

  /// Drop a permission grant.
  sim::Task<Result<void>> xpmem_release(const XpmemGrant& grant);

  /// Map [offset, offset+size) of the granted segment into @p attacher.
  sim::Task<Result<XpmemAttachment>> xpmem_attach(os::Process& attacher,
                                                  const XpmemGrant& grant,
                                                  u64 offset, u64 size);

  /// Unmap an attachment and unpin the owner-side frames.
  sim::Task<Result<void>> xpmem_detach(os::Process& attacher,
                                       const XpmemAttachment& att);

  /// Discoverability: resolve a published name to its segid via the name
  /// server.
  sim::Task<Result<Segid>> xpmem_search(const std::string& name);

  /// Discoverability: enumerate every published (name, segid) pair known
  /// to the name server (paper section 3.1: "the name server can be
  /// queried for information regarding the existence and names of shared
  /// memory regions").
  sim::Task<Result<std::vector<std::pair<std::string, Segid>>>> xpmem_list();

  // -------------------------------------------------------- diagnostics

  /// Pinned frames currently held on behalf of remote/local attachers.
  u64 pinned_frames() const;
  /// Known enclave-id -> channel routes (learned from forwarded traffic).
  u64 known_routes() const { return enclave_map_.size(); }
  u64 exports_live() const { return exports_.size(); }

  /// Default request timeout: generous against the microsecond-scale
  /// protocol, but keeps callers from wedging on a dead enclave.
  static constexpr sim::Duration kRequestTimeout = 10'000'000'000ull;  // 10 s
  /// Discovery probes use a short timeout so one dead neighbor cannot
  /// stall registration when another channel leads to the name server.
  static constexpr sim::Duration kPingTimeout = 5'000'000ull;  // 5 ms

  /// Introspection counters (the /proc/xemem-style view a real module
  /// would expose). Monotonic over the kernel's lifetime.
  struct Stats {
    u64 makes{0};            ///< segments exported by local processes
    u64 attaches_served{0};  ///< attach requests serviced as owner
    u64 attaches_issued{0};  ///< attach requests issued as attacher
    u64 pages_shared{0};     ///< pages pinned on behalf of attachers (gross)
    u64 messages_forwarded{0};  ///< routed on behalf of other enclaves
    u64 ns_requests{0};      ///< commands processed as name server
  };
  const Stats& stats() const { return stats_; }

 private:
  struct ExportRecord {
    os::Process* proc;
    Vaddr va;
    u64 pages;
    std::string name;
    AccessMode max_access{AccessMode::read_write};
    u64 attachments{0};  // outstanding attach count (blocks remove)
    u64 grants{0};
  };

  struct PinRecord {
    Segid segid;
    mm::PfnList frames;
  };

  // Name-server global state.
  struct NsSegidRecord {
    EnclaveId owner;
    u64 size;
    std::string name;
  };

  // ------------------------------------------------------------ plumbing

  sim::Task<void> service_loop(ChannelEndpoint* ep);
  sim::Task<void> handle(Message msg, ChannelEndpoint* from);
  sim::Task<void> discovery();

  /// Send a request and await its correlated response. @p via overrides
  /// route selection (used by discovery probes). @p timeout bounds the
  /// wait (0 = kRequestTimeout); expiry returns Errc::unreachable and a
  /// late response is dropped as an orphan.
  sim::Task<Result<Message>> request(Message msg);
  sim::Task<Result<Message>> request(Message msg, ChannelEndpoint* via,
                                     sim::Duration timeout = 0);
  static sim::Task<void> timeout_actor(XememKernel* k, u64 rid, sim::Duration t);
  /// Send an owner-side response toward its requester.
  sim::Task<void> route_response(Message resp, ChannelEndpoint* from);
  /// Forward @p msg toward msg.dst (or toward the name server).
  sim::Task<void> forward(Message msg, ChannelEndpoint* from);
  /// Request routed to the owner of msg.segid. On a normal enclave this
  /// just addresses the name server; on the name-server enclave itself it
  /// resolves the owner locally and routes directly.
  sim::Task<Result<Message>> request_to_owner(Message msg);
  ChannelEndpoint* route_for(EnclaveId dst);

  u64 fresh_req_id() { return (id().value() << 32) | next_req_++; }

  // Name-server command handling (only when is_ns_).
  sim::Task<void> ns_handle(Message msg, ChannelEndpoint* from);

  // Owner-side servicing of attach/detach/get for local exports.
  sim::Task<Message> serve_get(const Message& msg);
  sim::Task<Message> serve_attach(const Message& msg);
  sim::Task<Message> serve_detach(const Message& msg);

  void pin_frames(const mm::PfnList& frames);
  void unpin_frames(const mm::PfnList& frames);

  os::Enclave& os_;
  bool is_ns_;
  bool started_{false};
  bool stopped_{false};
  Stats stats_;

  std::vector<ChannelEndpoint*> channels_;
  ChannelEndpoint* ns_channel_{nullptr};  // next hop toward the name server
  std::unordered_map<u64, ChannelEndpoint*> enclave_map_;  // id -> channel
  std::unordered_map<u64, ChannelEndpoint*> pending_fwd_;  // req_id -> came-from
  std::unordered_map<u64, sim::Mailbox<Message>*> pending_resp_;
  sim::Event registered_;

  // Local exports (this enclave's processes) keyed by segid.
  std::unordered_map<u64, ExportRecord> exports_;
  // Owner-side pins keyed by handle.
  std::unordered_map<u64, PinRecord> pins_;
  u64 next_handle_{1};
  u32 next_req_{1};

  // Name-server state.
  u64 next_segid_{1};
  u64 next_enclave_id_{1};  // 0 is the name server itself
  std::unordered_map<u64, NsSegidRecord> ns_segids_;
  std::unordered_map<std::string, Segid> ns_names_;
};

}  // namespace xemem
