// The XEMEM kernel module: one instance per enclave.
//
// Implements (paper section 4):
//  * the XPMEM-compatible user API (Table 1) on top of the cross-enclave
//    protocol, with a local fast path when exporter and attacher share an
//    enclave;
//  * the hierarchical routing protocol (section 3.2): name-server
//    discovery by broadcast, enclave-ID allocation through the hierarchy,
//    per-enclave routing tables learned from forwarded responses, and
//    default routing toward the name server;
//  * the name server itself (section 3.1) when this enclave hosts it:
//    globally unique segids, segid -> owner-enclave records, and the
//    well-known-name registry that provides discoverability;
//  * export-side attachment servicing: page-table walk via the enclave
//    personality, frame pinning, PFN-list responses (section 4.2).
#pragma once

#include <deque>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/costs.hpp"
#include "common/stats.hpp"
#include "mm/pfn_list.hpp"
#include "os/enclave.hpp"
#include "xemem/api.hpp"
#include "xemem/channel.hpp"
#include "xemem/wire.hpp"

namespace xemem {

/// Tunable protocol policy. The defaults reproduce the historical
/// behavior (10 s request timeout, 5 ms discovery probes, a couple of
/// retries, no leases); tests and benches tighten them instead of
/// simulating multi-second waits.
struct KernelConfig {
  /// Request/response timeout before a retry (0 is normalized to this
  /// default at construction).
  sim::Duration request_timeout{10'000'000'000ull};  // 10 s
  /// Discovery probe timeout: short, so one dead neighbor cannot stall
  /// registration when another channel leads to the name server.
  sim::Duration ping_timeout{5'000'000ull};  // 5 ms
  /// Retries after the first timeout, with exponential backoff. Requests
  /// keep their req_id across retries so the receiving side's dedup cache
  /// can suppress re-execution of a command that in fact arrived.
  u32 max_retries{2};
  sim::Duration backoff_base{1'000'000ull};  // 1 ms, doubles per retry
  sim::Duration backoff_max{1'000'000'000ull};  // 1 s cap
  /// Lease an enclave holds on its name-server registration, renewed by
  /// heartbeats every heartbeat_period (0 = lease/heartbeat machinery
  /// disabled; crash recovery then relies solely on request timeouts).
  sim::Duration lease_duration{0};
  /// Heartbeat cadence; 0 defaults to lease_duration / 3.
  sim::Duration heartbeat_period{0};
  /// How long a forwarder remembers a routed request awaiting its
  /// response; 0 defaults to 2 * (request_timeout + backoff_max) so an
  /// entry outlives every legitimate retry of its request.
  sim::Duration fwd_ttl{0};
  /// Responses remembered for duplicate suppression (LRU eviction).
  u64 dedup_cache_cap{1024};
  /// Idle TTL on dedup-cache entries: an entry untouched for this long can
  /// no longer be hit by a legitimate retry and is evicted (0 defaults to
  /// 2 * (request_timeout + backoff_max), the same bound as fwd_ttl).
  /// Every capacity or TTL eviction bumps Stats::dedup_evictions.
  sim::Duration dedup_ttl{0};

  // ----- Attach fast path (all opt-in, like the lease machinery: the
  // defaults reproduce the historical cold-path behavior so the paper
  // harnesses keep measuring what the paper measured; tests, the
  // attach-path ablation, and throughput-hungry deployments turn the
  // layers on — see bench/ablation_attach_path and DESIGN.md §8).

  /// Ship attach responses extent-compressed whenever that encoding is
  /// smaller than 8 B/page flat PFNs (decoding is always supported, so
  /// mixed configurations interoperate).
  bool extent_wire{false};
  /// Remember segid -> owner-enclave from successful responses so repeat
  /// xpmem_get/attach/detach to a known segid address the owner directly,
  /// skipping the name-server lookup hop.
  bool owner_route_cache{false};
  /// Memoize owner-side (segid, page_off, pages) -> PfnList page-table
  /// walks so concurrent/repeat attachers of one window share one walk.
  bool walk_cache{false};
  /// Reuse already-fetched frames when re-attaching a window contained in
  /// a live attachment of the same segment (no protocol traffic at all).
  bool attach_reuse{false};
  /// Entry caps for the two unbounded-growth caches (FIFO eviction).
  u64 walk_cache_cap{64};
  u64 owner_cache_cap{1024};

  /// Convenience: turn on every attach fast-path layer.
  KernelConfig& enable_attach_fast_path() {
    extent_wire = owner_route_cache = walk_cache = attach_reuse = true;
    return *this;
  }

  // ----- Name-service failover (opt-in, like the lease machinery; see
  // DESIGN.md §"Name-service failover" and bench/ablation_ns_failover).

  /// Let a designated standby detect name-server death, promote itself,
  /// bump the name-service epoch, and rebuild the registry from surviving
  /// owners' re-registrations.
  bool ns_failover{false};
  /// Enclave id of the standby (0 = the default: the lowest allocated
  /// enclave id, i.e. enclave 1 — the first survivor to register).
  u64 ns_standby{0};
  /// Standby's end-to-end NS liveness probe cadence (0 defaults to
  /// lease_duration / 3, or 10 ms when leases are off).
  sim::Duration ns_probe_period{0};
  /// Consecutive unanswered probes before the standby promotes itself.
  u32 ns_probe_misses{3};
  /// After promotion, registry misses answer Errc::retry_later (instead of
  /// no_such_segid) for this long, covering the re-registration round
  /// (0 defaults to max(lease_duration, 2 * request_timeout)).
  sim::Duration ns_recovery_grace{0};
  /// Discovery gives up after this many full probe sweeps with no path to
  /// a name server and surfaces Errc::no_name_server to callers (0 =
  /// probe forever, the historical behavior).
  u32 discovery_max_rounds{512};

  /// Convenience: turn on name-server failover.
  KernelConfig& enable_ns_failover() {
    ns_failover = true;
    return *this;
  }

  // ----- Sharded, quorum-replicated name service (opt-in; DESIGN.md §6c).

  /// Replica groups, one per registry shard: ns_shards[s] lists the
  /// enclave ids hosting shard s; ns_shards[s][0] is the boot primary
  /// (epoch 1), and the primary of epoch e is ns_shards[s][(e-1) % size].
  /// Groups must not contain enclave 0 (the root keeps discovery,
  /// enclave-id allocation, and routing duties). Empty = classic
  /// single-registry behavior.
  std::vector<std::vector<u64>> ns_shards;
  /// Follower -> primary liveness probe cadence (0 -> ns_probe_period).
  sim::Duration shard_probe_period{0};
  /// Consecutive unanswered probes before a follower calls a vote.
  u32 shard_probe_misses{3};
  /// Per-replica bound on one quorum-write replication attempt, so an
  /// in-flight write outlives no crashed follower (0 -> request_timeout).
  sim::Duration quorum_timeout{0};
  /// After losing quorum (or primary contact), replicas answer
  /// Errc::retry_later for this long, then terminal Errc::no_quorum
  /// (0 -> ns_recovery_grace).
  sim::Duration partition_grace{0};

  /// Convenience: shard the registry across @p groups replica groups.
  KernelConfig& enable_ns_sharding(std::vector<std::vector<u64>> groups) {
    ns_shards = std::move(groups);
    return *this;
  }

  /// Coalesce lease renewals: instead of one heartbeat message per
  /// (shard, replica) pair per tick, send each peer enclave a single
  /// message per tick listing every shard it hosts a replica of (the
  /// name server keeps its one per-tick message either way). First step
  /// of the ROADMAP "registry write batching" item: segment-heavy
  /// workloads (the I/O cache's per-block exports) otherwise pay
  /// shards x replicas renewal messages per enclave per tick.
  bool batched_heartbeats{false};

  /// Convenience: turn on heartbeat batching.
  KernelConfig& enable_heartbeat_batching() {
    batched_heartbeats = true;
    return *this;
  }

  // ----- Capability model (opt-in; DESIGN.md §9). When off, the classic
  // permit path is untouched: no cap state, no extra wire fields consulted,
  // no per-segment accounting — pay-for-use like every other layer.

  /// Treat segids as capabilities: xpmem_make mints an owner capability,
  /// cap_derive mints restricted children, get/attach validate the
  /// presented capability owner-side, and cap_revoke unmaps every live
  /// attachment under the revoked subtree.
  bool capabilities{false};
  /// Max derivation-tree nodes per segment (derive past this fails with
  /// Errc::out_of_memory).
  u64 cap_table_cap{256};
  /// Entry cap on the bounded accounting maps (per-segment accounting,
  /// revoked-cap/handle tombstones). FIFO eviction past this.
  u64 cap_accounting_cap{1024};

  /// Convenience: turn on the capability model.
  KernelConfig& enable_capabilities() {
    capabilities = true;
    return *this;
  }
};

class XememKernel {
 public:
  /// @param is_name_server  exactly one kernel per system hosts the name
  ///                        server (deployable in any enclave; section 3.2)
  XememKernel(os::Enclave& os, bool is_name_server, KernelConfig cfg = {});

  XememKernel(const XememKernel&) = delete;
  XememKernel& operator=(const XememKernel&) = delete;

  os::Enclave& os() { return os_; }
  bool is_name_server() const { return is_ns_; }
  EnclaveId id() const { return os_.id(); }

  /// Register a channel to a neighboring enclave. Call before start().
  void add_channel(ChannelEndpoint* ep);

  /// Spawn the per-channel service loops and, for non-name-server
  /// enclaves, begin name-server discovery. Must run inside a simulation.
  void start();

  /// Awaitable: completes when this enclave holds a valid enclave ID
  /// (i.e. discovery + registration finished).
  sim::Task<void> wait_registered();

  /// Graceful shutdown for dynamic repartitioning (paper section 3.2:
  /// partitions "are likely to be dynamic and will change in response to
  /// the node's workload characteristics"). Withdraws every local export
  /// from the name server and deregisters the enclave's routes. Fails with
  /// Errc::busy while any local export has outstanding attachments; the
  /// caller must quiesce its own traffic first.
  sim::Task<Result<void>> shutdown();
  bool is_shutdown() const { return stopped_; }

  /// Abrupt enclave death: the kernel goes silent mid-protocol without
  /// any goodbye traffic. Messages already in flight are ignored, local
  /// requests in progress fail with Errc::unreachable after their
  /// retries, and the enclave's pinned frames are released (the dying
  /// OS's memory is reclaimed by the node). The name server learns of
  /// the death only through lease expiry (KernelConfig::lease_duration)
  /// and then garbage-collects the enclave's segids, names, and routes.
  void crash();
  bool is_crashed() const { return crashed_; }

  /// Owner-side cleanup once an *attacher* enclave is known dead (its
  /// name-service lease expired, or an application-level protocol — e.g.
  /// the I/O cache's directory re-resolution — confirmed the crash):
  /// release every frame pinned on the dead enclave's behalf and drop the
  /// corresponding export attachment counts, so exports withdrawn later
  /// don't stay busy waiting for detaches that can never arrive. The dead
  /// enclave's own page tables are its crashed kernel's problem; only
  /// this owner's bookkeeping is touched. Returns the pins released.
  u64 reap_attacher_pins(EnclaveId attacher);

  // --------------------------------------------------------- XPMEM API

  /// Export [va, va+size) of @p owner under a fresh globally-unique segid.
  /// @p name optionally publishes the segment for xpmem_search discovery;
  /// @p max_access caps what grants may request (XPMEM permit model).
  sim::Task<Result<Segid>> xpmem_make(os::Process& owner, Vaddr va, u64 size,
                                      std::string name = "",
                                      AccessMode max_access = AccessMode::read_write);

  /// Withdraw an export. Fails with Errc::busy while attachments exist.
  sim::Task<Result<void>> xpmem_remove(os::Process& owner, Segid segid);

  /// Request permission to attach @p segid with @p want access. Fails with
  /// permission_denied if the export's max access is weaker.
  sim::Task<Result<XpmemGrant>> xpmem_get(Segid segid,
                                          AccessMode want = AccessMode::read_write);

  /// Drop a permission grant.
  sim::Task<Result<void>> xpmem_release(const XpmemGrant& grant);

  /// Map [offset, offset+size) of the granted segment into @p attacher.
  sim::Task<Result<XpmemAttachment>> xpmem_attach(os::Process& attacher,
                                                  const XpmemGrant& grant,
                                                  u64 offset, u64 size);

  /// Unmap an attachment and unpin the owner-side frames.
  sim::Task<Result<void>> xpmem_detach(os::Process& attacher,
                                       const XpmemAttachment& att);

  /// Discoverability: resolve a published name to its segid via the name
  /// server.
  sim::Task<Result<Segid>> xpmem_search(const std::string& name);

  /// Discoverability: enumerate every published (name, segid) pair known
  /// to the name server (paper section 3.1: "the name server can be
  /// queried for information regarding the existence and names of shared
  /// memory regions").
  sim::Task<Result<std::vector<std::pair<std::string, Segid>>>> xpmem_list();

  // --------------------------------------- capability model (DESIGN.md §9)

  /// The owner capability minted for a local export by xpmem_make (only
  /// when capabilities are enabled). Carries the widest rights the export
  /// allows; hand-derived children to peers instead of this.
  Result<Capability> cap_root(Segid segid) const;

  /// Strict mode for a local export: once required, capless (classic
  /// permit) get/attach of the segment are denied — every requester must
  /// present a capability. Collectives and legacy tenants keep working on
  /// segments that never call this.
  Result<void> cap_require(os::Process& owner, Segid segid);

  /// Mint a restricted child of @p parent. @p rights may only narrow:
  /// access <= parent access, window within the parent window, and the
  /// transferable/derivable bits only clearable — escalation attempts fail
  /// with Errc::permission_denied. @p holder optionally binds the child to
  /// one enclave (enforced when the parent is non-transferable semantics
  /// demand it; 0 = any holder). Served by the segment owner; dedup-safe
  /// on retry (a retried derive mints once).
  sim::Task<Result<Capability>> cap_derive(const Capability& parent,
                                           CapRights rights, u64 holder = 0);

  /// Revoke @p cap and its whole derivation subtree. Live attachments
  /// minted under the subtree are unmapped everywhere: owner pins release,
  /// attacher PTEs clear, route/walk/reuse caches flush. Idempotent; a
  /// revoked root leaves the segment reachable only by... nobody.
  sim::Task<Result<void>> cap_revoke(const Capability& cap);

  /// xpmem_get presenting a capability: the grant (and every attach under
  /// it) is bound to the capability's rights, validated owner-side.
  sim::Task<Result<XpmemGrant>> xpmem_get(const Capability& cap,
                                          AccessMode want = AccessMode::read_write);

  // -------------------------------------------------------- diagnostics

  /// Pinned frames currently held on behalf of remote/local attachers.
  u64 pinned_frames() const;
  /// Known enclave-id -> channel routes (learned from forwarded traffic).
  u64 known_routes() const { return enclave_map_.size(); }
  bool knows_route(EnclaveId e) const { return enclave_map_.contains(e.value()); }
  u64 exports_live() const { return exports_.size(); }
  /// Forwarded requests still awaiting a response to retrace (bounded by
  /// KernelConfig::fwd_ttl; see the orphan-response expiry logic).
  u64 pending_forwards() const { return pending_fwd_.size(); }
  /// Name-server registry sizes (0 on non-name-server kernels).
  u64 ns_segid_count() const { return ns_segids_.size(); }
  u64 ns_name_count() const { return ns_names_.size(); }
  /// Whether the name server currently holds a live lease for @p e.
  bool ns_has_lease(EnclaveId e) const { return ns_leases_.contains(e.value()); }
  /// Attach fast-path cache occupancy (invalidation tests assert these
  /// drain back to zero after remove/crash/lease expiry).
  u64 owner_cache_entries() const { return owner_cache_.size(); }
  bool knows_owner(Segid s) const { return owner_cache_.contains(s.value()); }
  u64 walk_cache_entries() const { return walk_cache_.size(); }
  u64 attach_cache_entries() const { return attach_cache_.size(); }
  /// Name-service epoch this kernel currently believes in (starts at 1;
  /// each name-server promotion bumps it system-wide).
  u64 ns_epoch() const { return ns_epoch_; }
  /// Discovery terminally exhausted every probe round without finding a
  /// name server; NS-bound requests now fail fast with no_name_server.
  bool ns_lost() const { return ns_lost_; }
  /// Registration gave up: the enclave never obtained an id (fully
  /// partitioned, or the name server died standby-less mid-registration).
  bool registration_failed() const { return ns_lost_ && !id().valid(); }

  /// Deterministic crashpoint hook: crash() this (name-server) kernel
  /// immediately before executing its @p n-th name-server command. The
  /// crashpoint-sweep harness enumerates every protocol step this way
  /// (0 disables the hook).
  void crash_after_ns_requests(u64 n) { crash_after_ns_requests_ = n; }
  /// Same hook for shard replicas: crash() immediately before this
  /// replica's @p n-th shard-service command (any role, any shard hosted
  /// here). Extends the crashpoint sweep to shard primaries and followers.
  void crash_after_shard_requests(u64 n) { crash_after_shard_requests_ = n; }
  /// Same hook for the capability protocol: crash() this (owner) kernel
  /// immediately before serving its @p n-th capability-relevant command
  /// (cap_derive/cap_revoke, and get/attach presented with a capability).
  /// Drives the revocation crashpoint sweep (0 disables).
  void crash_after_cap_requests(u64 n) { crash_after_cap_requests_ = n; }

  // -------------------------------------- capability diagnostics (§9)

  /// Per-segment accounting surfaced in bounded memory (see
  /// KernelConfig::cap_accounting_cap): counters survive node eviction
  /// only as the aggregate Stats.
  struct SegAccounting {
    u64 live_attaches{0};  ///< attachments currently served by the owner
    u64 derived_caps{0};   ///< children minted under the segment's tree
    u64 revocations{0};    ///< revoke operations applied
    u64 denials{0};        ///< get/attach/derive rejected by cap checks
  };
  /// Accounting for @p segid (zeros if unknown/evicted).
  SegAccounting cap_accounting(Segid segid) const;
  /// Live (non-revoked) nodes in a local segment's derivation tree.
  u64 cap_count(Segid segid) const;
  /// Revoked-capability tombstones held attacher-side (bounded).
  u64 revoked_cap_count() const { return revoked_caps_.size(); }

  // ------------------------------------------ shard diagnostics (§6c)

  /// Whether the sharded name service is configured on this kernel.
  bool sharding_enabled() const { return !cfg_.ns_shards.empty(); }
  /// Whether this enclave hosts a replica of shard @p s.
  bool hosts_shard(u32 s) const { return shard_replicas_.contains(s); }
  /// Whether this replica currently believes it is shard @p s's primary.
  bool is_shard_primary(u32 s) const {
    auto it = shard_replicas_.find(s);
    return it != shard_replicas_.end() && it->second->primary;
  }
  /// The shard epoch this replica of @p s is in (0 if not hosted here).
  u64 shard_epoch_of(u32 s) const {
    auto it = shard_replicas_.find(s);
    return it != shard_replicas_.end() ? it->second->epoch : 0;
  }
  /// Registry view / op-log sizes of the local replica of shard @p s.
  u64 shard_segid_count(u32 s) const {
    auto it = shard_replicas_.find(s);
    return it != shard_replicas_.end() ? it->second->segids.size() : 0;
  }
  u64 shard_log_size(u32 s) const {
    auto it = shard_replicas_.find(s);
    return it != shard_replicas_.end() ? it->second->log.size() : 0;
  }
  /// Dedup-cache occupancy (bounded by dedup_cache_cap and dedup_ttl).
  u64 dedup_entries() const { return dedup_.size(); }

  const KernelConfig& config() const { return cfg_; }

  /// Default request timeout: generous against the microsecond-scale
  /// protocol, but keeps callers from wedging on a dead enclave.
  static constexpr sim::Duration kRequestTimeout = 10'000'000'000ull;  // 10 s
  /// Discovery probes use a short timeout so one dead neighbor cannot
  /// stall registration when another channel leads to the name server.
  static constexpr sim::Duration kPingTimeout = 5'000'000ull;  // 5 ms

  /// Introspection counters (the /proc/xemem-style view a real module
  /// would expose). Monotonic over the kernel's lifetime.
  struct Stats {
    u64 makes{0};            ///< segments exported by local processes
    u64 attaches_served{0};  ///< attach requests serviced as owner
    u64 attaches_issued{0};  ///< attach requests issued as attacher
    u64 pages_shared{0};     ///< pages pinned on behalf of attachers (gross)
    u64 messages_forwarded{0};  ///< routed on behalf of other enclaves
    u64 ns_requests{0};      ///< commands processed as name server
    u64 timeouts{0};         ///< request attempts that expired unanswered
    u64 retries{0};          ///< request re-sends after a timeout
    u64 dup_suppressed{0};   ///< duplicate deliveries answered from cache
    u64 leases_expired{0};   ///< enclaves garbage-collected as name server
    u64 fwd_expired{0};      ///< forwarded requests whose response never came
    u64 local_attaches{0};   ///< same-enclave attaches (local fast path)
    u64 lookup_cache_hits{0};///< requests routed via the segid->owner cache
    u64 walk_cache_hits{0};  ///< attaches served from a memoized walk
    u64 reuse_hits{0};       ///< attaches satisfied from already-held frames
    u64 extents_shipped{0};  ///< extent records sent in attach responses
    u64 wire_bytes_saved{0}; ///< flat-PFN bytes avoided by extent encoding
    u64 ns_failovers{0};     ///< promotions of this kernel to name server
    u64 epoch_rejects{0};    ///< stale-epoch commands rejected as name server
    u64 reregistrations{0};  ///< survivor re-registration rounds absorbed
    u64 recovery_latency{0}; ///< ns: promotion -> latest re-registration
    u64 dedup_evictions{0};  ///< dedup-cache entries evicted (cap or TTL)
    u64 shard_requests{0};   ///< commands processed as a shard replica
    u64 quorum_writes{0};    ///< shard writes committed with majority acks
    u64 quorum_fails{0};     ///< shard writes that missed their majority
    u64 replications{0};     ///< ops applied from a primary's replicate
    u64 catchups{0};         ///< log-suffix syncs absorbed as a follower
    u64 shard_promotions{0}; ///< elections won as a shard replica
    u64 not_primary_rejects{0};  ///< writes bounced because we follow
    u64 no_quorum_rejects{0};    ///< terminal rejections past the grace
    u64 caps_minted{0};      ///< owner capabilities minted by xpmem_make
    u64 caps_derived{0};     ///< children minted by cap_derive
    u64 revocations{0};      ///< cap_revoke operations applied as owner
    u64 cap_denials{0};      ///< get/attach/derive rejected by cap checks
    u64 revoke_unmaps{0};    ///< live attachments torn down by revocation
    u64 heartbeats_sent{0};  ///< lease-renewal messages put on the wire
  };
  const Stats& stats() const { return stats_; }

 private:
  struct ExportRecord {
    os::Process* proc;
    Vaddr va;
    u64 pages;
    std::string name;
    AccessMode max_access{AccessMode::read_write};
    u64 attachments{0};  // outstanding attach count (blocks remove)
    u64 grants{0};
    bool removing{false};  // remove in flight: new gets/attaches refused so
                           // none can slip in while the remove awaits the
                           // name-service deregistration
  };

  struct PinRecord {
    Segid segid;
    mm::PfnList frames;
    u64 cap{0};  ///< capability the attach was validated under (0 = classic)
    EnclaveId attacher{EnclaveId::invalid()};  ///< who holds the mapping
  };

  // ------------------------------------------- capability model (§9)

  /// One node of a segment's derivation tree (owner-side authoritative
  /// state). Rights are stored absolute (windows in segment coordinates),
  /// so validation never needs to walk ancestors.
  struct CapNode {
    u64 id{0};
    u64 parent{0};  ///< 0 for the root
    CapRights rights{};
    u64 holder{0};  ///< enclave bound to a non-transferable cap (0 = any)
    bool revoked{false};
    u64 live_attaches{0};  ///< owner-served attaches charged to this node
    std::vector<u64> children;
  };

  struct CapTree {
    u64 root{0};
    bool require_cap{false};  ///< deny capless get/attach (strict mode)
    std::unordered_map<u64, CapNode> nodes;
  };

  // Name-server global state.
  struct NsSegidRecord {
    EnclaveId owner;
    u64 size;
    std::string name;
  };

  // ----------------------------------------- sharded name service (§6c)

  /// One entry of a shard's replicated op log. The log is the durable
  /// truth: every replica's registry view is a pure replay of its log
  /// prefix, so follower catch-up and post-election adoption are log
  /// copies, not survivor re-registration rounds.
  struct ShardOp {
    enum class Kind : u8 { alloc = 1, remove = 2, lease_gc = 3 };
    Kind kind{Kind::alloc};
    u64 epoch{0};  ///< shard epoch whose primary appended it
    u64 segid{0};  ///< alloc/remove target (lease_gc: unused)
    u64 size{0};
    u64 owner{0};  ///< owning enclave (lease_gc: the expired enclave)
    std::string name;
  };

  /// Per-shard replica state. Heap-allocated (unique_ptr) so suspended
  /// quorum/vote coroutines can hold stable pointers across map growth.
  struct ShardReplica {
    u32 shard{0};
    u32 self_index{0};  ///< position in cfg_.ns_shards[shard]
    u64 epoch{1};       ///< current shard epoch (primary = group[(e-1)%n])
    u64 promised{0};    ///< highest vote proposal promised to
    bool primary{false};
    bool promoting{false};
    std::vector<ShardOp> log;
    u64 applied{0};   ///< log prefix materialized into the view below
    u64 next_seq{1};  ///< per-epoch mint counter (segid seq = seq*S + shard)
    // Registry view: a replay of the log prefix.
    std::unordered_map<u64, NsSegidRecord> segids;
    std::unordered_map<std::string, Segid> names;
    std::unordered_map<u64, sim::TimePoint> leases;  // owner -> expiry
    // Liveness bookkeeping: when each peer replica was last heard from
    // (probe answers, replicate acks, votes) and, on followers, when the
    // primary last proved itself. Drives read-freshness and the
    // retry_later -> no_quorum partition transition.
    std::unordered_map<u64, sim::TimePoint> peer_contact;
    sim::TimePoint last_primary_contact{0};
    sim::TimePoint quorum_lost_at{0};  ///< first failed write (0 = healthy)
    sim::Mutex write_mutex;  ///< quorum writes serialize per shard
  };

  /// Shared fan-out state of one quorum write (heap-shared with the
  /// per-follower replication tasks, which may outlive the commit wait).
  struct QuorumRound {
    u32 acks{1};  ///< self-ack included
    u32 done{1};
    u32 total{0};
    u32 majority{0};
    sim::Event settled;
  };

  // ------------------------------------------------------------ plumbing

  sim::Task<void> service_loop(ChannelEndpoint* ep);
  sim::Task<void> handle(Message msg, ChannelEndpoint* from);
  sim::Task<void> discovery();
  sim::Task<void> heartbeat_actor();
  sim::Task<void> lease_reaper();

  // ----- Name-service failover (DESIGN.md §"Name-service failover").
  /// The configured standby's enclave id.
  u64 standby_id() const { return cfg_.ns_standby != 0 ? cfg_.ns_standby : 1; }
  /// Standby-side liveness probing; promotes on ns_probe_misses misses.
  sim::Task<void> standby_actor();
  /// Take over the name-server role: bump the epoch, rebuild the registry
  /// from local exports, and flood the announcement.
  void promote();
  sim::Task<void> announce_epoch();
  /// Replay this enclave's exports to the newly promoted name server.
  sim::Task<void> reregister_actor();
  /// Adopt a newer epoch seen on @p msg (update NS direction, trigger
  /// re-registration/discovery). Returns true when the epoch advanced.
  bool maybe_adopt_epoch(const Message& msg, ChannelEndpoint* from);
  bool in_recovery_grace() const { return sim::now() < ns_recovery_until_; }

  /// Send a request and await its correlated response, retrying with
  /// exponential backoff on timeout (@p max_retries overrides the config;
  /// -1 = use config, 0 = single attempt). Retries reuse the req_id so
  /// receiver-side dedup caches suppress double execution. @p via
  /// overrides route selection (used by discovery probes). @p timeout
  /// bounds each attempt (0 = config request_timeout); exhaustion returns
  /// Errc::unreachable, invalidates any learned route to the destination,
  /// and a late response is dropped as a duplicate.
  sim::Task<Result<Message>> request(Message msg);
  sim::Task<Result<Message>> request(Message msg, ChannelEndpoint* via,
                                     sim::Duration timeout = 0,
                                     i32 max_retries = -1);
  static sim::Task<void> timeout_actor(XememKernel* k, u64 rid, sim::Duration t);
  /// Send an owner-side response toward its requester.
  sim::Task<void> route_response(Message resp, ChannelEndpoint* from);
  /// Forward @p msg toward msg.dst (or toward the name server).
  sim::Task<void> forward(Message msg, ChannelEndpoint* from);
  /// Request routed to the owner of msg.segid. On a normal enclave this
  /// just addresses the name server; on the name-server enclave itself it
  /// resolves the owner locally and routes directly.
  sim::Task<Result<Message>> request_to_owner(Message msg);
  ChannelEndpoint* route_for(EnclaveId dst);

  u64 fresh_req_id() { return (id().value() << 32) | next_req_++; }

  // Name-server command handling (only when is_ns_).
  sim::Task<void> ns_handle(Message msg, ChannelEndpoint* from);

  // ----- Sharded name service plumbing (DESIGN.md §6c).
  /// Commands a client addresses to a shard (as opposed to the replica
  /// group's internal protocol traffic).
  static bool is_shard_client_cmd(Cmd c);
  /// The replica-group protocol commands themselves.
  static bool is_shard_service_cmd(Cmd c);
  /// Install local ShardReplica state and actors once registered.
  sim::Task<void> shard_bootstrap_actor();
  /// One-way announce of this enclave's id on every channel after
  /// registration, so directly linked peers learn each other's routes and
  /// shard traffic need not detour through the management hub.
  sim::Task<void> hello_actor();
  /// Shard-op wire codec: 5 u64s per op in payload (kind, epoch, segid,
  /// size, owner) plus one '\n'-separated name field per op.
  static void encode_shard_ops(const std::vector<ShardOp>& ops, Message* m);
  static std::vector<ShardOp> decode_shard_ops(const Message& m);
  static bool same_shard_op(const ShardOp& a, const ShardOp& b);
  /// Serve one shard-addressed command on a hosted replica.
  sim::Task<void> shard_handle(Message msg, ChannelEndpoint* from);
  /// Append @p op, replicate to the group, apply on majority ack.
  /// Returns retry_later/no_quorum on a missed majority.
  sim::Task<Result<void>> shard_quorum_commit(ShardReplica* rep, ShardOp op);
  static sim::Task<void> shard_replicate_to(XememKernel* k, ShardReplica* rep,
                                            u64 peer, u64 index, ShardOp op,
                                            std::shared_ptr<QuorumRound> round);
  /// Follower-side probe of the believed primary; calls a vote on misses.
  sim::Task<void> shard_probe_actor(u32 shard);
  sim::Task<void> shard_try_promote(u32 shard);
  sim::Task<void> shard_announce_actor(u32 shard, u64 epoch);
  /// Primary-side lease sweep: expiries become quorum-committed lease_gc
  /// ops so followers GC the same enclaves at the same log index.
  sim::Task<void> shard_lease_reaper(u32 shard);
  /// Apply one committed op to the replica's registry view.
  void shard_apply(ShardReplica* rep, const ShardOp& op);
  /// Rebuild the view by replaying the whole log (conflict truncation,
  /// post-election adoption).
  void shard_rebuild(ShardReplica* rep);
  /// Client-side believed epoch for @p shard (local replica knows best).
  u64 shard_believed_epoch(u32 shard) const;
  void maybe_adopt_shard_epoch(const Message& msg);
  /// Read-freshness: this replica has heard from a majority (primary) or
  /// its primary (follower) recently enough to answer authoritatively.
  bool shard_is_fresh(const ShardReplica& rep) const;
  /// retry_later inside the partition grace window, no_quorum after it.
  Errc shard_unavailable_status(ShardReplica* rep);

  // Per-command idempotency: responses are remembered by req_id so a
  // retried command that actually arrived is answered from the cache
  // instead of executing twice (double-pinning frames, leaking segids).
  // LRU + idle-TTL bounded (satellite: dedup_evictions accounting).
  bool dedup_hit(u64 rid, Message* out);
  void dedup_store(u64 rid, const Message& resp);
  void prune_dedup();
  // Lease bookkeeping (name-server side; no-ops when leases disabled).
  void ns_touch_lease(EnclaveId e);
  void ns_gc_expired_leases();
  // Expire forwarded-request entries whose response never arrived.
  void prune_pending_fwd();

  // Owner-side servicing of attach/detach/get for local exports.
  sim::Task<Message> serve_get(const Message& msg);
  sim::Task<Message> serve_attach(const Message& msg);
  sim::Task<Message> serve_detach(const Message& msg);

  // ----- Capability plumbing (DESIGN.md §9).
  /// Owner-side: is @p c one of the capability-protocol commands served by
  /// the export's enclave (rides the same segid routing as get/attach)?
  static bool is_cap_cmd(Cmd c);
  /// Deterministic sparse cap-id mint (splitmix64 over a per-kernel
  /// counter; never 0, retried on intra-tree collision).
  u64 mint_cap_id(CapTree& tree);
  /// Resolve + validate a presented capability for @p segid. cap_id 0
  /// resolves to the root unless the tree requires explicit caps.
  /// @p attaching additionally checks the window ([offset,offset+size))
  /// and the attach-count limit. Returns ok and sets @p out on success;
  /// denials bump cap_denials accounting.
  Errc cap_check(u64 segid, u64 cap_id, EnclaveId presenter, AccessMode want,
                 u64 offset, u64 size, bool attaching, CapNode** out);
  /// Owner-side derive core, shared by the local API fast path and
  /// serve_cap_derive.
  Result<Capability> cap_derive_local(u64 segid, u64 parent_id,
                                      EnclaveId presenter, CapRights rights,
                                      u64 holder);
  sim::Task<Message> serve_cap_derive(const Message& msg);
  /// Owner-side revoke: mark the subtree, release pins, notify attachers.
  sim::Task<Message> serve_cap_revoke(const Message& msg);
  /// Attacher-side handling of the owner's one-way revocation fan-out.
  sim::Task<void> apply_cap_revoked(Message msg);
  /// Attacher-side local teardown of every mapping under (segid, handle).
  sim::Task<void> unmap_revoked_handle(u64 segid, u64 handle);
  /// Record a revoked cap id / owner handle in the bounded tombstone sets.
  void tombstone_cap(u64 cap_id);
  void tombstone_handle(u64 segid, u64 handle);
  bool handle_revoked(u64 segid, u64 handle) const {
    return revoked_handles_.contains({segid, handle});
  }
  /// Deterministic crashpoint: consume the cap-request countdown; true
  /// means the kernel just crashed and the caller must go silent.
  bool cap_crashpoint(const Message& msg);
  /// Per-segment accounting slot (bounded map).
  SegAccounting& cap_acct(u64 segid);

  // Pin bookkeeping works run-at-a-time so extent-compressed frame lists
  // never expand just to bump refcounts.
  void pin_frames(const std::vector<hw::FrameExtent>& runs);
  void unpin_frames(const std::vector<hw::FrameExtent>& runs);

  // Attach fast-path plumbing. encode_pfn_payload puts @p frames on an
  // attach response in whichever encoding is smaller (extent runs vs flat
  // PFNs) and accounts the savings; decode handles both unconditionally.
  void encode_pfn_payload(Message& resp, const mm::PfnList& frames);
  static mm::PfnList decode_pfn_payload(const Message& resp);
  void cache_owner(Segid segid, EnclaveId owner);
  void drop_owner_cache(Segid segid);
  void drop_owner_cache_for(EnclaveId dead);
  void drop_walk_cache(Segid segid);

  os::Enclave& os_;
  bool is_ns_;
  KernelConfig cfg_;
  bool started_{false};
  bool stopped_{false};
  bool crashed_{false};
  Stats stats_;

  std::vector<ChannelEndpoint*> channels_;
  ChannelEndpoint* ns_channel_{nullptr};  // next hop toward the name server
  std::unordered_map<u64, ChannelEndpoint*> enclave_map_;  // id -> channel
  std::unordered_map<u64, ChannelEndpoint*> pending_fwd_;  // req_id -> came-from
  std::deque<std::pair<u64, sim::TimePoint>> fwd_log_;  // insertion order/time
  std::unordered_map<u64, sim::Mailbox<Message>*> pending_resp_;
  // Requests this kernel completed (response consumed); late duplicate
  // responses to them are counted, not warned about. Bounded by the same
  // cap/TTL policy as the dedup cache.
  std::unordered_map<u64, u8> completed_reqs_;
  std::deque<std::pair<u64, sim::TimePoint>> completed_log_;
  // Served-response cache for duplicate-request suppression: LRU order in
  // dedup_lru_ (front = least recently touched), idle TTL per entry.
  struct DedupEntry {
    Message resp;
    sim::TimePoint touched;
    std::list<u64>::iterator pos;
  };
  std::unordered_map<u64, DedupEntry> dedup_;
  std::list<u64> dedup_lru_;
  sim::Event registered_;

  // Local exports (this enclave's processes) keyed by segid.
  std::unordered_map<u64, ExportRecord> exports_;
  // Owner-side pins keyed by handle.
  std::unordered_map<u64, PinRecord> pins_;

  // ----------------------------------------------- attach fast-path state
  // segid -> owning enclave, learned from successful responses. A stale
  // entry is harmless: a direct request that fails (or answers
  // no_such_segid) drops the entry and falls back to the authoritative
  // name-server route.
  std::unordered_map<u64, EnclaveId> owner_cache_;
  std::deque<u64> owner_fifo_;
  // Owner-side memoized page-table walks keyed (segid, page_off, pages).
  // Segids are globally unique and never recycled, so entries can only go
  // stale via xpmem_remove/crash — both flush them.
  std::map<std::tuple<u64, u64, u64>, mm::PfnList> walk_cache_;
  std::deque<std::tuple<u64, u64, u64>> walk_fifo_;
  // Attacher-side live remote attachments keyed (segid, owner pin handle),
  // for containment-based mapping reuse. refs counts local attachments
  // sharing the one owner-side pin; the last detach releases it remotely.
  struct ReuseEntry {
    u64 page_off;
    u64 pages;
    mm::PfnList frames;
    EnclaveId owner;
    u64 refs;
    u64 cap{0};  ///< capability the cached mapping was granted under
  };
  std::map<std::pair<u64, u64>, ReuseEntry> attach_cache_;

  // ------------------------------------------- capability state (§9)
  // Owner-side derivation trees keyed by segid (local exports only).
  std::unordered_map<u64, CapTree> cap_trees_;
  u64 next_cap_seq_{1};
  // Attacher-side record of every local mapping made under a capability,
  // keyed (segid, owner handle): the revocation fan-out tears these down
  // without the application's cooperation.
  struct CapMapRec {
    os::Process* proc;
    Vaddr map_base;
    u64 pages;
  };
  std::map<std::pair<u64, u64>, std::vector<CapMapRec>> cap_maps_;
  // Bounded tombstones: caps/handles known revoked, so later get/attach
  // fail fast locally and detach of a dead handle stays silent.
  BoundedAccountingMap<u64, u8> revoked_caps_;
  struct PairHash {
    size_t operator()(const std::pair<u64, u64>& p) const {
      return std::hash<u64>()(p.first * 0x9e3779b97f4a7c15ull ^ p.second);
    }
  };
  BoundedAccountingMap<std::pair<u64, u64>, u8, PairHash> revoked_handles_;
  // Per-segment accounting (bounded).
  BoundedAccountingMap<u64, SegAccounting> cap_accounting_;
  u64 crash_after_cap_requests_{0};
  u64 cap_requests_seen_{0};

  u64 next_handle_{1};
  u32 next_req_{1};

  // Name-server state.
  u64 next_segid_{1};
  u64 next_enclave_id_{1};  // 0 is the name server itself
  std::unordered_map<u64, NsSegidRecord> ns_segids_;
  std::unordered_map<std::string, Segid> ns_names_;
  std::unordered_map<u64, sim::TimePoint> ns_leases_;  // enclave -> expiry

  // ------------------------------------------- name-service failover state
  u64 ns_epoch_{1};
  bool ns_lost_{false};      // discovery terminally exhausted
  bool discovering_{false};  // a discovery() actor is already running
  u64 rereg_epoch_{1};       // newest epoch we (re-)registered under
  u64 max_seen_enclave_{0};  // high-water enclave id observed in traffic
  sim::TimePoint promote_time_{0};
  sim::TimePoint ns_recovery_until_{0};
  u64 crash_after_ns_requests_{0};

  // ------------------------------------------- sharded name service state
  // Replicas this enclave hosts, keyed by shard. Never erased (crash()
  // included): suspended quorum/vote coroutines hold ShardReplica*.
  std::unordered_map<u32, std::unique_ptr<ShardReplica>> shard_replicas_;
  // Client-side believed shard epochs (index = shard; boot epoch 1).
  std::vector<u64> shard_epoch_;
  u64 shard_rr_{0};  // round-robin spreader for unnamed exports
  u64 crash_after_shard_requests_{0};
};

}  // namespace xemem
