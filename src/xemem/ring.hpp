// Shared-memory message rings over XEMEM attachments.
//
// The paper's in-situ components coordinate through raw stop/go variables
// polled in shared memory, and section 6.1 flags richer event-notification
// support as future work: "we plan to investigate techniques to support
// additional features in the OS/R environments as requirements of actual
// composed workflows become more evident". This header provides that
// layer: a single-producer/single-consumer message ring living entirely
// inside an exported region, so *any* pair of enclaves that can share
// memory — native<->native, native<->VM, VM<->VM — gets ordered,
// variable-length message passing with no kernel involvement beyond the
// initial attachment.
//
// Layout inside the region:
//   page 0:  header — tail (producer cursor) at +0, head (consumer
//            cursor) at +8, both free-running u64 slot counters;
//   page 1+: capacity_slots() fixed-size slots, each `u32 len` + payload.
//
// Both endpoints operate through their *own* virtual address for the
// region (the producer's export VA, the consumer's attachment VA); all
// accesses go through the real page tables and the machine's data plane,
// so a ring across a VM boundary exercises the full GPA->HPA translation
// on every message. The simulator is single-threaded, so the classic
// SPSC ordering rules (write payload before publishing the cursor) are
// modeled structurally rather than with fences.
#pragma once

#include <optional>
#include <vector>

#include "common/units.hpp"
#include "os/enclave.hpp"

namespace xemem::shm {

namespace detail {

inline constexpr u64 kTailOff = 0;
inline constexpr u64 kHeadOff = 8;
/// Modeled CPU cost of one ring operation (cursor reads/update, slot
/// bookkeeping) — a handful of cache-line accesses.
inline constexpr u64 kRingOpCost = 120;  // ns

/// Endpoint-side view of the ring (shared by producer and consumer).
class RingView {
 public:
  RingView(os::Enclave& os, os::Process& proc, Vaddr base, u64 region_bytes,
           u32 slot_bytes)
      : os_(&os),
        proc_(&proc),
        base_(base),
        slot_bytes_(slot_bytes),
        slots_((region_bytes - kPageSize) / slot_bytes) {
    XEMEM_ASSERT_MSG(region_bytes > 2 * kPageSize, "ring region too small");
    XEMEM_ASSERT_MSG(slot_bytes > sizeof(u32), "slot too small for a length");
    XEMEM_ASSERT_MSG(slots_ > 0, "no room for slots");
  }

  u64 capacity_slots() const { return slots_; }
  u32 max_payload() const { return slot_bytes_ - sizeof(u32); }

  u64 read_u64(u64 off) const {
    u64 v = 0;
    XEMEM_ASSERT(os_->proc_read(*proc_, base_ + off, &v, 8).ok());
    return v;
  }
  Result<void> write_u64(u64 off, u64 v) {
    return os_->proc_write(*proc_, base_ + off, &v, 8);
  }

  Vaddr slot_va(u64 index) const {
    return base_ + kPageSize + (index % slots_) * slot_bytes_;
  }

  os::Enclave& os() { return *os_; }
  os::Process& proc() { return *proc_; }

 private:
  os::Enclave* os_;
  os::Process* proc_;
  Vaddr base_;
  u32 slot_bytes_;
  u64 slots_;
};

}  // namespace detail

/// Producer endpoint; constructed over the exporter's own region VA.
class RingProducer {
 public:
  RingProducer(os::Enclave& os, os::Process& proc, Vaddr base, u64 region_bytes,
               u32 slot_bytes)
      : view_(os, proc, base, region_bytes, slot_bytes) {}

  /// Zero the cursors. Call once, before the consumer attaches.
  Result<void> init() {
    auto a = view_.write_u64(detail::kTailOff, 0);
    if (!a.ok()) return a;
    return view_.write_u64(detail::kHeadOff, 0);
  }

  /// Non-blocking publish. Returns false when the ring is full.
  sim::Task<Result<bool>> try_push(const void* msg, u32 len) {
    if (len > view_.max_payload()) co_return Errc::invalid_argument;
    hw::Core* core = view_.proc().core();
    co_await core->compute(detail::kRingOpCost);
    const u64 tail = view_.read_u64(detail::kTailOff);
    const u64 head = view_.read_u64(detail::kHeadOff);
    if (tail - head >= view_.capacity_slots()) co_return false;

    // Write the slot (payload before the length publish), then the cursor.
    const Vaddr slot = view_.slot_va(tail);
    auto w1 = view_.os().proc_write(view_.proc(), slot + sizeof(u32), msg, len);
    if (!w1.ok()) co_return w1.error();
    auto w2 = view_.os().proc_write(view_.proc(), slot, &len, sizeof(u32));
    if (!w2.ok()) co_return w2.error();
    co_await view_.os().membw().transfer(len + 16);
    auto w3 = view_.write_u64(detail::kTailOff, tail + 1);
    if (!w3.ok()) co_return w3.error();
    co_return true;
  }

  /// Blocking publish: polls the consumer cursor while the ring is full.
  sim::Task<Result<void>> push(const void* msg, u32 len,
                               sim::Duration poll = 20'000 /*20 us*/) {
    for (;;) {
      auto r = co_await try_push(msg, len);
      if (!r.ok()) co_return r.error();
      if (r.value()) co_return Result<void>{};
      co_await sim::delay(poll);
    }
  }

  u64 capacity_slots() const { return view_.capacity_slots(); }
  u32 max_payload() const { return view_.max_payload(); }

 private:
  detail::RingView view_;
};

/// Consumer endpoint; constructed over the attacher's attachment VA.
class RingConsumer {
 public:
  RingConsumer(os::Enclave& os, os::Process& proc, Vaddr base, u64 region_bytes,
               u32 slot_bytes)
      : view_(os, proc, base, region_bytes, slot_bytes) {}

  /// Non-blocking receive; nullopt when the ring is empty.
  sim::Task<Result<std::optional<std::vector<u8>>>> try_pop() {
    hw::Core* core = view_.proc().core();
    co_await core->compute(detail::kRingOpCost);
    const u64 head = view_.read_u64(detail::kHeadOff);
    const u64 tail = view_.read_u64(detail::kTailOff);
    if (head == tail) co_return std::optional<std::vector<u8>>{};

    const Vaddr slot = view_.slot_va(head);
    u32 len = 0;
    auto r1 = view_.os().proc_read(view_.proc(), slot, &len, sizeof(u32));
    if (!r1.ok()) co_return r1.error();
    if (len > view_.max_payload()) co_return Errc::protocol_error;
    std::vector<u8> out(len);
    auto r2 = view_.os().proc_read(view_.proc(), slot + sizeof(u32), out.data(), len);
    if (!r2.ok()) co_return r2.error();
    co_await view_.os().membw().transfer(len + 16);
    auto r3 = view_.write_u64(detail::kHeadOff, head + 1);
    if (!r3.ok()) co_return r3.error();
    co_return std::optional<std::vector<u8>>{std::move(out)};
  }

  /// Blocking receive: polls the producer cursor while the ring is empty.
  sim::Task<Result<std::vector<u8>>> pop(sim::Duration poll = 20'000 /*20 us*/) {
    for (;;) {
      auto r = co_await try_pop();
      if (!r.ok()) co_return r.error();
      if (r.value().has_value()) co_return std::move(*r.value());
      co_await sim::delay(poll);
    }
  }

  /// Messages currently queued (diagnostics).
  u64 pending() const {
    return view_.read_u64(detail::kTailOff) - view_.read_u64(detail::kHeadOff);
  }

 private:
  mutable detail::RingView view_;
};

}  // namespace xemem::shm
