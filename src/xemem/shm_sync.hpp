// Synchronization primitives over XEMEM shared memory.
//
// Composed applications coordinate through shared memory only (paper
// section 6.1: "the underlying enclave OS/Rs only support application
// communication through shared memory, and thus operations like event
// notifications must be supported via ad hoc techniques like polling on
// variables in memory"). These are the ad hoc techniques, packaged:
//
//  * ShmFlag     — a one-shot event (the paper's stop/go signal variable);
//  * ShmLock     — a test-and-set spinlock word (polling backoff);
//  * ShmBarrier  — a sense-reversing barrier for a fixed party count;
//  * ShmCounter  — a monotonically published progress counter.
//
// Each primitive lives at a caller-chosen offset inside a shared region
// and is manipulated through a process's own mapping of that region, so
// the same object works between any enclave pair that can share memory.
// The simulator executes one coroutine at a time, so read-modify-write
// sequences are structurally atomic; on real hardware these would be
// LOCK-prefixed operations.
#pragma once

#include "os/enclave.hpp"

namespace xemem::shm {

/// Handle to one u64 word of shared memory, accessed through a specific
/// process's mapping.
class ShmWord {
 public:
  ShmWord(os::Enclave& os, os::Process& proc, Vaddr va)
      : os_(&os), proc_(&proc), va_(va) {}

  u64 load() const {
    u64 v = 0;
    XEMEM_ASSERT(os_->proc_read(*proc_, va_, &v, 8).ok());
    return v;
  }
  void store(u64 v) { XEMEM_ASSERT(os_->proc_write(*proc_, va_, &v, 8).ok()); }

  /// Structurally-atomic compare-and-swap (single-threaded simulator).
  bool cas(u64 expect, u64 desired) {
    if (load() != expect) return false;
    store(desired);
    return true;
  }
  u64 fetch_add(u64 delta) {
    const u64 v = load();
    store(v + delta);
    return v;
  }

 private:
  os::Enclave* os_;
  os::Process* proc_;
  Vaddr va_;
};

/// One-shot flag: the paper's stop/go signal variable, with polling wait.
class ShmFlag {
 public:
  ShmFlag(os::Enclave& os, os::Process& proc, Vaddr va) : word_(os, proc, va) {}

  void raise() { word_.store(1); }
  bool is_raised() const { return word_.load() != 0; }
  void clear() { word_.store(0); }

  sim::Task<void> wait(sim::Duration poll = 20'000) {
    while (!is_raised()) co_await sim::delay(poll);
  }

 private:
  ShmWord word_;
};

/// Test-and-set spinlock word with polling backoff.
class ShmLock {
 public:
  ShmLock(os::Enclave& os, os::Process& proc, Vaddr va) : word_(os, proc, va) {}

  sim::Task<void> lock(sim::Duration poll = 5'000) {
    while (!word_.cas(0, 1)) co_await sim::delay(poll);
  }
  void unlock() {
    XEMEM_ASSERT_MSG(word_.load() == 1, "unlock of a free ShmLock");
    word_.store(0);
  }
  bool try_lock() { return word_.cas(0, 1); }

 private:
  ShmWord word_;
};

/// Sense-reversing barrier for @p parties processes. Layout: two u64 words
/// (arrival count at +0, sense at +8). Each participant keeps its own
/// local sense across episodes, so the barrier is immediately reusable.
class ShmBarrier {
 public:
  static constexpr u64 kFootprint = 16;

  ShmBarrier(os::Enclave& os, os::Process& proc, Vaddr base, u64 parties)
      : count_(os, proc, base), sense_(os, proc, base + 8), parties_(parties) {}

  /// Initialize the shared words (exactly one participant, once).
  void init() {
    count_.store(0);
    sense_.store(0);
  }

  sim::Task<void> arrive_and_wait(sim::Duration poll = 10'000) {
    const u64 my_sense = 1 - local_sense_;
    if (count_.fetch_add(1) + 1 == parties_) {
      count_.store(0);
      sense_.store(my_sense);  // release everyone
    } else {
      while (sense_.load() != my_sense) co_await sim::delay(poll);
    }
    local_sense_ = my_sense;
  }

 private:
  ShmWord count_;
  ShmWord sense_;
  u64 parties_;
  u64 local_sense_{0};
};

/// Monotonic progress counter (the in-situ coupler's go/done counters).
class ShmCounter {
 public:
  ShmCounter(os::Enclave& os, os::Process& proc, Vaddr va) : word_(os, proc, va) {}

  void publish(u64 v) { word_.store(v); }
  u64 read() const { return word_.load(); }
  u64 increment() { return word_.fetch_add(1) + 1; }

  sim::Task<void> wait_at_least(u64 target, sim::Duration poll = 20'000) {
    while (word_.load() < target) co_await sim::delay(poll);
  }

 private:
  ShmWord word_;
};

}  // namespace xemem::shm
