// Synchronization primitives over XEMEM shared memory.
//
// Composed applications coordinate through shared memory only (paper
// section 6.1: "the underlying enclave OS/Rs only support application
// communication through shared memory, and thus operations like event
// notifications must be supported via ad hoc techniques like polling on
// variables in memory"). These are the ad hoc techniques, packaged:
//
//  * ShmFlag     — a one-shot event (the paper's stop/go signal variable);
//  * ShmLock     — a test-and-set spinlock word (polling backoff);
//  * ShmBarrier  — a sense-reversing barrier for a fixed party count;
//  * ShmCounter  — a monotonically published progress counter.
//
// Each primitive lives at a caller-chosen offset inside a shared region
// and is manipulated through a process's own mapping of that region, so
// the same object works between any enclave pair that can share memory.
// The simulator executes one coroutine at a time, so read-modify-write
// sequences are structurally atomic; on real hardware these would be
// LOCK-prefixed operations.
//
// Failure semantics: every access can fail — the mapping may have been
// detached, or the peer enclave crashed and its export torn down.
// Accesses propagate the underlying proc_read/proc_write Status instead
// of asserting, and every wait loop takes an optional timeout (0 = wait
// forever) that expires with Errc::unreachable, so a collective over a
// dead member degrades to an error instead of a hang.
#pragma once

#include "os/enclave.hpp"

namespace xemem::shm {

/// Deadline helper for the polling waits below: @p timeout 0 waits
/// forever, otherwise the wait fails with Errc::unreachable once the
/// simulated clock passes start + timeout.
class Deadline {
 public:
  explicit Deadline(sim::Duration timeout)
      : at_(timeout == 0 ? ~u64{0} : sim::now() + timeout) {}

  bool expired() const { return sim::now() >= at_; }
  sim::TimePoint at() const { return at_; }

 private:
  sim::TimePoint at_;
};

/// Handle to one u64 word of shared memory, accessed through a specific
/// process's mapping.
class ShmWord {
 public:
  ShmWord(os::Enclave& os, os::Process& proc, Vaddr va)
      : os_(&os), proc_(&proc), va_(va) {}

  Result<u64> load() const {
    u64 v = 0;
    if (auto r = os_->proc_read(*proc_, va_, &v, 8); !r.ok()) return r.error();
    return v;
  }
  Result<void> store(u64 v) { return os_->proc_write(*proc_, va_, &v, 8); }

  /// Structurally-atomic compare-and-swap (single-threaded simulator).
  /// Returns whether the swap happened; mapping failures surface as the
  /// underlying Status.
  Result<bool> cas(u64 expect, u64 desired) {
    auto cur = load();
    if (!cur.ok()) return cur.error();
    if (cur.value() != expect) return false;
    if (auto w = store(desired); !w.ok()) return w.error();
    return true;
  }

  /// Returns the pre-increment value.
  Result<u64> fetch_add(u64 delta) {
    auto cur = load();
    if (!cur.ok()) return cur.error();
    if (auto w = store(cur.value() + delta); !w.ok()) return w.error();
    return cur.value();
  }

 private:
  os::Enclave* os_;
  os::Process* proc_;
  Vaddr va_;
};

/// One-shot flag: the paper's stop/go signal variable, with polling wait.
class ShmFlag {
 public:
  ShmFlag(os::Enclave& os, os::Process& proc, Vaddr va) : word_(os, proc, va) {}

  Result<void> raise() { return word_.store(1); }
  Result<void> clear() { return word_.store(0); }
  Result<bool> is_raised() const {
    auto v = word_.load();
    if (!v.ok()) return v.error();
    return v.value() != 0;
  }

  sim::Task<Result<void>> wait(sim::Duration poll = 20'000,
                               sim::Duration timeout = 0) {
    Deadline dl(timeout);
    for (;;) {
      auto up = is_raised();
      if (!up.ok()) co_return up.error();
      if (up.value()) co_return Result<void>{};
      if (dl.expired()) co_return Errc::unreachable;
      co_await sim::delay(poll);
    }
  }

 private:
  ShmWord word_;
};

/// Test-and-set spinlock word with polling backoff.
class ShmLock {
 public:
  ShmLock(os::Enclave& os, os::Process& proc, Vaddr va) : word_(os, proc, va) {}

  sim::Task<Result<void>> lock(sim::Duration poll = 5'000,
                               sim::Duration timeout = 0) {
    Deadline dl(timeout);
    for (;;) {
      auto got = word_.cas(0, 1);
      if (!got.ok()) co_return got.error();
      if (got.value()) co_return Result<void>{};
      if (dl.expired()) co_return Errc::unreachable;
      co_await sim::delay(poll);
    }
  }

  Result<void> unlock() {
    auto v = word_.load();
    if (!v.ok()) return v.error();
    XEMEM_ASSERT_MSG(v.value() == 1, "unlock of a free ShmLock");
    return word_.store(0);
  }

  Result<bool> try_lock() { return word_.cas(0, 1); }

 private:
  ShmWord word_;
};

/// Sense-reversing barrier for @p parties processes. Layout: two u64 words
/// (arrival count at +0, sense at +8). Each participant keeps its own
/// local sense across episodes, so the barrier is immediately reusable.
///
/// A timeout expiry (or a mapping failure) leaves the shared words in an
/// indeterminate episode: the barrier object must not be reused after a
/// failed arrive_and_wait — tear the group down instead (this is exactly
/// the collectives layer's member-crash path).
class ShmBarrier {
 public:
  static constexpr u64 kFootprint = 16;

  ShmBarrier(os::Enclave& os, os::Process& proc, Vaddr base, u64 parties)
      : count_(os, proc, base), sense_(os, proc, base + 8), parties_(parties) {}

  /// Initialize the shared words (exactly one participant, once).
  Result<void> init() {
    if (auto r = count_.store(0); !r.ok()) return r;
    return sense_.store(0);
  }

  sim::Task<Result<void>> arrive_and_wait(sim::Duration poll = 10'000,
                                          sim::Duration timeout = 0) {
    Deadline dl(timeout);
    const u64 my_sense = 1 - local_sense_;
    auto before = count_.fetch_add(1);
    if (!before.ok()) co_return before.error();
    if (before.value() + 1 == parties_) {
      if (auto r = count_.store(0); !r.ok()) co_return r;
      if (auto r = sense_.store(my_sense); !r.ok()) co_return r;  // release all
    } else {
      for (;;) {
        auto s = sense_.load();
        if (!s.ok()) co_return s.error();
        if (s.value() == my_sense) break;
        if (dl.expired()) co_return Errc::unreachable;
        co_await sim::delay(poll);
      }
    }
    local_sense_ = my_sense;
    co_return Result<void>{};
  }

 private:
  ShmWord count_;
  ShmWord sense_;
  u64 parties_;
  u64 local_sense_{0};
};

/// Monotonic progress counter (the in-situ coupler's go/done counters).
class ShmCounter {
 public:
  ShmCounter(os::Enclave& os, os::Process& proc, Vaddr va) : word_(os, proc, va) {}

  Result<void> publish(u64 v) { return word_.store(v); }
  Result<u64> read() const { return word_.load(); }
  Result<u64> increment() {
    auto prev = word_.fetch_add(1);
    if (!prev.ok()) return prev.error();
    return prev.value() + 1;
  }

  sim::Task<Result<void>> wait_at_least(u64 target, sim::Duration poll = 20'000,
                                        sim::Duration timeout = 0) {
    Deadline dl(timeout);
    for (;;) {
      auto v = word_.load();
      if (!v.ok()) co_return v.error();
      if (v.value() >= target) co_return Result<void>{};
      if (dl.expired()) co_return Errc::unreachable;
      co_await sim::delay(poll);
    }
  }

 private:
  ShmWord word_;
};

}  // namespace xemem::shm
