// Deterministic fault injection for cross-enclave channels.
//
// FaultyEndpoint decorates any concrete ChannelEndpoint (IPI, PCI) and
// perturbs the message stream the way a flaky interconnect or an
// overloaded handler core would: messages can be dropped, duplicated, or
// held back (which both adds latency and lets later messages overtake —
// reordering). A kill() switch models abrupt link death, after which
// every send is swallowed.
//
// Every fault decision is drawn from a seeded Rng in send order, so a
// fault schedule is a pure function of (engine seed, channel seed, send
// sequence): identical runs inject identical faults, which keeps the
// lossy-channel experiments bit-for-bit reproducible (see
// Robustness.LossyExperimentIsDeterministicPerSeed).
//
// The decorator delivers through the inner transport, so transfer costs
// (staging copies, IPIs, world switches) are still paid by the right
// cores; inbox() aliases the inner endpoint's inbox so the destination
// service loop is oblivious to the decoration.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "xemem/channel.hpp"

namespace xemem {

/// Per-direction fault probabilities. All default to zero (transparent).
struct FaultSpec {
  double drop{0.0};       ///< P(message silently lost)
  double dup{0.0};        ///< P(message delivered twice)
  double delay{0.0};      ///< P(message held back before transmission)
  sim::Duration delay_min{5'000};    ///< held-back window lower bound (ns)
  sim::Duration delay_max{100'000};  ///< held-back window upper bound (ns)

  /// Uniform loss shorthand used by the benches/tests.
  static FaultSpec loss(double p) {
    FaultSpec s;
    s.drop = p;
    return s;
  }
};

class FaultyEndpoint final : public ChannelEndpoint {
 public:
  FaultyEndpoint(ChannelEndpoint* inner, FaultSpec spec, Rng rng)
      : inner_(inner), spec_(spec), rng_(rng) {}

  sim::Mailbox<Message>& inbox() override { return inner_->inbox(); }

  /// Abrupt link death: every subsequent send is swallowed. Models the
  /// transport side of an enclave crash (the peer pays no handler cost
  /// and sees nothing).
  void kill() { dead_ = true; }
  void revive() { dead_ = false; }
  bool dead() const { return dead_; }

  /// Injection counters, for tests and the fault-recovery ablation.
  struct FaultStats {
    u64 dropped{0};
    u64 duplicated{0};
    u64 delayed{0};
    u64 passed{0};
  };
  const FaultStats& fault_stats() const { return fstats_; }

  sim::Task<void> send(Message msg) override {
    account(msg);
    if (dead_) {
      ++fstats_.dropped;
      co_return;
    }
    // Draw every decision up front so the consumed Rng stream per send is
    // fixed regardless of which faults fire (schedule determinism).
    const bool drop = rng_.uniform() < spec_.drop;
    const bool dup = rng_.uniform() < spec_.dup;
    const bool hold = rng_.uniform() < spec_.delay;
    const sim::Duration held =
        spec_.delay_min +
        (spec_.delay_max > spec_.delay_min
             ? rng_.uniform_u64(spec_.delay_max - spec_.delay_min)
             : 0);
    if (drop) {
      ++fstats_.dropped;
      co_return;
    }
    if (dup) {
      ++fstats_.duplicated;
      sim::Engine::current()->spawn(deliver(msg, held));
    }
    if (hold) {
      ++fstats_.delayed;
      // Held messages leave the sender immediately (the caller does not
      // stall) but hit the wire late, so later sends can overtake them.
      sim::Engine::current()->spawn(deliver(std::move(msg), held));
      co_return;
    }
    ++fstats_.passed;
    co_await inner_->send(std::move(msg));
  }

 private:
  sim::Task<void> deliver(Message msg, sim::Duration after) {
    co_await sim::delay(after);
    if (dead_) co_return;
    co_await inner_->send(std::move(msg));
  }

  ChannelEndpoint* inner_;
  FaultSpec spec_;
  Rng rng_;
  bool dead_{false};
  FaultStats fstats_;
};

/// Decorate both directions of a channel. The inner endpoints stay owned
/// by their original owner; the returned pair replaces them wherever
/// kernels register channels.
struct FaultyChannelPair {
  std::unique_ptr<FaultyEndpoint> a;
  std::unique_ptr<FaultyEndpoint> b;
};

inline FaultyChannelPair wrap_faulty(ChannelEndpoint* inner_a,
                                     ChannelEndpoint* inner_b,
                                     const FaultSpec& spec, Rng& parent_rng) {
  return FaultyChannelPair{
      std::make_unique<FaultyEndpoint>(inner_a, spec, parent_rng.fork()),
      std::make_unique<FaultyEndpoint>(inner_b, spec, parent_rng.fork())};
}

}  // namespace xemem
