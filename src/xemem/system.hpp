// Node: assembly of a complete multi-enclave system on one machine.
//
// The experiment harnesses, examples, and integration tests all build
// their topologies through this class: a Linux management enclave hosting
// the name server, Kitten co-kernels booted by Pisces, and Palacios VMs on
// either kind of host — the configurations of the paper's Figures 1-2 and
// Table 3.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/noise.hpp"
#include "os/guest_linux.hpp"
#include "os/kitten.hpp"
#include "os/linux.hpp"
#include "palacios/pci_channel.hpp"
#include "palacios/vm.hpp"
#include "pisces/ipi_channel.hpp"
#include "pisces/manager.hpp"
#include "xemem/fault.hpp"
#include "xemem/kernel.hpp"

namespace xemem {

class Node {
 public:
  enum class Personality { linux, kitten, guest_linux };

  explicit Node(const hw::MachineConfig& cfg) : machine_(cfg) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  hw::Machine& machine() { return machine_; }

  /// Protocol policy for every kernel created after this call (timeouts,
  /// retry/backoff limits, lease duration). Call before add_*.
  void set_kernel_config(const KernelConfig& cfg) { kcfg_ = cfg; }
  const KernelConfig& kernel_config() const { return kcfg_; }

  /// Decorate every channel created after this call with deterministic
  /// fault injection (drops/dups/delays per FaultSpec). Each endpoint
  /// draws from an independent Rng stream forked from @p seed, so the
  /// fault schedule is a pure function of (seed, traffic order).
  void enable_fault_injection(const FaultSpec& spec, u64 seed) {
    fault_spec_ = spec;
    fault_rng_.reseed(seed);
    faults_on_ = true;
  }

  /// Fault-injection wrappers created so far (in channel creation order:
  /// for each faulty channel, the pair's `a` then `b` endpoint). Tests
  /// use these to kill() links or read injection counters.
  const std::vector<std::unique_ptr<FaultyEndpoint>>& faulty_endpoints() const {
    return faulty_;
  }

  /// Partition surgery (requires enable_fault_injection): kill both
  /// directions of the link between enclaves @p a and @p b, so each side
  /// sends into the void. Asserts that such a link exists.
  void sever(const std::string& a, const std::string& b) {
    FaultyLink* l = find_link(a, b);
    XEMEM_ASSERT_MSG(l != nullptr, "sever: no faulty link between enclaves");
    l->ea->kill();
    l->eb->kill();
  }

  /// Undo a sever: both directions deliver again.
  void heal(const std::string& a, const std::string& b) {
    FaultyLink* l = find_link(a, b);
    XEMEM_ASSERT_MSG(l != nullptr, "heal: no faulty link between enclaves");
    l->ea->revive();
    l->eb->revive();
  }

  /// Find the kernel holding runtime enclave id @p eid (ids are allocated
  /// by the name service at registration, so tests cannot know the mapping
  /// statically). Null when no registered kernel holds it.
  XememKernel* kernel_with_id(u64 eid) {
    for (auto& e : entries_) {
      if (e->kernel->id().valid() && e->kernel->id().value() == eid) {
        return e->kernel.get();
      }
    }
    return nullptr;
  }

  /// The Linux management enclave; hosts the name server (the common
  /// deployment the paper uses throughout its evaluation). Must be added
  /// first. @p service_core_id is where its XEMEM/channel handling runs —
  /// core 0 in the stock Pisces design.
  XememKernel& add_linux_mgmt(const std::string& name, u32 socket,
                              const std::vector<u32>& core_ids,
                              u32 service_core_id = 0) {
    XEMEM_ASSERT_MSG(mgmt_ == nullptr, "one management enclave per node");
    auto enclave = std::make_unique<os::LinuxEnclave>(
        name, machine_, machine_.zone(socket), machine_.socket_bw(socket),
        cores_from(core_ids), &machine_.core(service_core_id));
    mgmt_ = enclave.get();
    pisces_ = std::make_unique<pisces::PiscesManager>(machine_, *mgmt_);
    return register_enclave(name, std::move(enclave), Personality::linux,
                            /*is_ns=*/true, /*host=*/nullptr);
  }

  /// Boot a Kitten co-kernel enclave via Pisces and wire its IPI channel
  /// to the management enclave's service core.
  /// @p mgmt_channel_core overrides the management-side IPI handler core
  /// (default: the management service core, i.e. core 0 — the stock Pisces
  /// restriction; bench/ablation_ipi_routing distributes it).
  XememKernel& add_cokernel(const std::string& name, u32 socket,
                            const std::vector<u32>& core_ids, u64 mem_bytes,
                            i32 mgmt_channel_core = -1) {
    XEMEM_ASSERT_MSG(pisces_ != nullptr, "add_linux_mgmt first");
    pisces::PiscesManager::CokernelSpec spec;
    spec.name = name;
    spec.socket = socket;
    spec.core_ids = core_ids;
    spec.memory_bytes = mem_bytes;
    spec.mgmt_channel_core = mgmt_channel_core >= 0
                                 ? static_cast<u32>(mgmt_channel_core)
                                 : mgmt_->service_core()->id();
    auto booted = pisces_->boot_cokernel(spec);
    XEMEM_ASSERT_MSG(booted.ok(), "co-kernel boot failed");

    auto& ck = *booted.value().enclave;
    auto& kernel = register_external_enclave(name, ck, Personality::kitten);
    auto [mgmt_ep, ck_ep] =
        maybe_faulty(booted.value().mgmt_endpoint,
                     booted.value().cokernel_endpoint, mgmt_->name(), name);
    kernel_of(mgmt_).add_channel(mgmt_ep);
    kernel.add_channel(ck_ep);
    return kernel;
  }

  /// Launch a Linux VM via Palacios on @p host (a previously added
  /// enclave). Guest vcpus run on @p vcpu_core_ids (cores of the host's
  /// partition); VMM work executes on the vcpu core (world switches run
  /// where the guest exits). The PCI channel links the guest's kernel to
  /// the host's kernel.
  XememKernel& add_vm(const std::string& name, const std::string& host_name,
                      u64 ram_bytes, const std::vector<u32>& vcpu_core_ids,
                      palacios::MapBackend backend = palacios::MapBackend::rbtree) {
    Entry& host = entry(host_name);
    auto cores = cores_from(vcpu_core_ids);
    hw::Core* vcpu0 = cores[0];

    palacios::PalaciosVm::Config vcfg;
    vcfg.name = name;
    vcfg.guest_ram_bytes = ram_bytes;
    vcfg.hotplug_bytes = 8ull << 30;
    vcfg.backend = backend;
    auto vm = std::make_unique<palacios::PalaciosVm>(vcfg, host.enclave->frames());
    auto init = vm->init();
    XEMEM_ASSERT_MSG(init.ok(), "VM RAM allocation failed");

    auto enclave = std::make_unique<os::GuestLinuxEnclave>(
        name, machine_, *vm, host.enclave->membw(), cores,
        /*guest_service_core=*/vcpu0, /*host_core=*/vcpu0);
    vms_.push_back(std::move(vm));

    auto& kernel = register_enclave(name, std::move(enclave),
                                    Personality::guest_linux, /*is_ns=*/false,
                                    host.enclave);
    auto chan = palacios::make_pci_channel(host.enclave->service_core(), vcpu0);
    auto [host_ep, guest_ep] =
        maybe_faulty(chan.a.get(), chan.b.get(), host_name, name);
    host.kernel->add_channel(host_ep);
    kernel.add_channel(guest_ep);
    channels_.push_back(std::move(chan));
    return kernel;
  }

  /// Direct peer link between two already-added enclaves (an IPI channel
  /// between their service cores). The default topology is a star around
  /// the management enclave; failover tests add peer links so the system
  /// stays connected when the hub dies.
  void link_peers(const std::string& a, const std::string& b) {
    Entry& ea = entry(a);
    Entry& eb = entry(b);
    auto chan = pisces::make_ipi_channel(ea.enclave->service_core(),
                                         eb.enclave->service_core());
    auto [a_ep, b_ep] = maybe_faulty(chan.a.get(), chan.b.get(), a, b);
    ea.kernel->add_channel(a_ep);
    eb.kernel->add_channel(b_ep);
    channels_.push_back(std::move(chan));
  }

  /// Dynamic repartitioning: tear down a co-kernel enclave after its
  /// kernel has been shut down (XememKernel::shutdown) and its processes
  /// destroyed. Returns the memory block to the socket zone; the cores and
  /// memory can immediately boot a new co-kernel.
  void remove_cokernel(const std::string& name) {
    Entry& e = entry(name);
    XEMEM_ASSERT_MSG(e.kernel->is_shutdown(), "shutdown the kernel first");
    auto* ck = static_cast<os::KittenEnclave*>(e.enclave);
    const size_t idx = index_.at(name);
    pisces_->shutdown_cokernel(ck);
    entries_.erase(entries_.begin() + static_cast<long>(idx));
    index_.erase(name);
    for (auto& [n, i] : index_) {
      if (i > idx) --i;
    }
  }

  /// Start every kernel and wait until all enclaves hold IDs.
  sim::Task<void> start() {
    for (auto& e : entries_) e->kernel->start();
    for (auto& e : entries_) co_await e->kernel->wait_registered();
  }

  XememKernel& kernel(const std::string& name) { return *entry(name).kernel; }
  os::Enclave& enclave(const std::string& name) { return *entry(name).enclave; }
  pisces::PiscesManager& pisces() { return *pisces_; }

  /// Apply the standard noise signature of every enclave's personality to
  /// its cores, plus machine-wide SMIs on every core (paper Figure 7 /
  /// sections 6-7). VMs on Linux hosts additionally inherit host Linux
  /// noise on their vcpu cores.
  void spawn_std_noise(sim::Engine& eng, Rng& rng, sim::TimePoint until = ~u64{0}) {
    for (u32 c = 0; c < machine_.core_count(); ++c) {
      hw::spawn_noise(eng, machine_.core(c), hw::smi_noise(), rng, until);
    }
    for (auto& e : entries_) {
      const hw::NoiseProfile profile = e->personality == Personality::linux
                                           ? hw::linux_noise()
                                           : e->personality == Personality::kitten
                                                 ? hw::kitten_noise()
                                                 : hw::vm_linux_noise();
      for (hw::Core* core : e->enclave->cores()) {
        hw::spawn_noise(eng, *core, profile, rng, until);
        if (e->personality == Personality::guest_linux && e->host != nullptr &&
            host_is_linux(e->host)) {
          hw::spawn_noise(eng, *core, hw::linux_noise(), rng, until);
        }
      }
    }
  }

 private:
  struct Entry {
    std::string name;
    os::Enclave* enclave;                       // owned here or by pisces
    std::unique_ptr<os::Enclave> owned;
    std::unique_ptr<XememKernel> kernel;
    Personality personality;
    os::Enclave* host{nullptr};  // for VMs
  };

  std::vector<hw::Core*> cores_from(const std::vector<u32>& ids) {
    std::vector<hw::Core*> out;
    for (u32 id : ids) out.push_back(&machine_.core(id));
    return out;
  }

  /// Wrap a channel's endpoints in fault injectors when enabled; returns
  /// the endpoints the kernels should register (inner ones otherwise).
  /// The enclave names label the link for sever()/heal().
  std::pair<ChannelEndpoint*, ChannelEndpoint*> maybe_faulty(
      ChannelEndpoint* a, ChannelEndpoint* b, const std::string& a_name = "",
      const std::string& b_name = "") {
    if (!faults_on_) return {a, b};
    auto pair = wrap_faulty(a, b, fault_spec_, fault_rng_);
    ChannelEndpoint* fa = pair.a.get();
    ChannelEndpoint* fb = pair.b.get();
    faulty_links_.push_back(
        FaultyLink{a_name, b_name, pair.a.get(), pair.b.get()});
    faulty_.push_back(std::move(pair.a));
    faulty_.push_back(std::move(pair.b));
    return {fa, fb};
  }

  XememKernel& register_enclave(const std::string& name,
                                std::unique_ptr<os::Enclave> enclave,
                                Personality pers, bool is_ns, os::Enclave* host) {
    auto e = std::make_unique<Entry>();
    e->name = name;
    e->enclave = enclave.get();
    e->owned = std::move(enclave);
    e->kernel = std::make_unique<XememKernel>(*e->enclave, is_ns, kcfg_);
    e->personality = pers;
    e->host = host;
    entries_.push_back(std::move(e));
    index_[name] = entries_.size() - 1;
    return *entries_.back()->kernel;
  }

  XememKernel& register_external_enclave(const std::string& name,
                                         os::Enclave& enclave, Personality pers) {
    auto e = std::make_unique<Entry>();
    e->name = name;
    e->enclave = &enclave;
    e->kernel = std::make_unique<XememKernel>(enclave, false, kcfg_);
    e->personality = pers;
    entries_.push_back(std::move(e));
    index_[name] = entries_.size() - 1;
    return *entries_.back()->kernel;
  }

  Entry& entry(const std::string& name) {
    auto it = index_.find(name);
    XEMEM_ASSERT_MSG(it != index_.end(), "unknown enclave");
    return *entries_[it->second];
  }

  XememKernel& kernel_of(os::Enclave* enclave) {
    for (auto& e : entries_) {
      if (e->enclave == enclave) return *e->kernel;
    }
    XEMEM_PANIC("kernel_of: unknown enclave");
  }

  bool host_is_linux(os::Enclave* host) {
    for (auto& e : entries_) {
      if (e->enclave == host) return e->personality == Personality::linux;
    }
    return false;
  }

  hw::Machine machine_;
  os::LinuxEnclave* mgmt_{nullptr};
  std::unique_ptr<pisces::PiscesManager> pisces_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::unique_ptr<palacios::PalaciosVm>> vms_;
  std::vector<ChannelPair> channels_;

  /// A fault-wrapped link labeled by the enclave names it connects, so
  /// tests can sever()/heal() by topology instead of creation order.
  struct FaultyLink {
    std::string a;
    std::string b;
    FaultyEndpoint* ea;
    FaultyEndpoint* eb;
  };

  FaultyLink* find_link(const std::string& a, const std::string& b) {
    for (auto& l : faulty_links_) {
      if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return &l;
    }
    return nullptr;
  }

  KernelConfig kcfg_{};
  FaultSpec fault_spec_{};
  Rng fault_rng_{1};
  bool faults_on_{false};
  std::vector<std::unique_ptr<FaultyEndpoint>> faulty_;
  std::vector<FaultyLink> faulty_links_;
};

}  // namespace xemem
