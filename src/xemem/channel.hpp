// Cross-enclave communication channel interface.
//
// A channel is a pair of endpoints in two enclaves. send() models the full
// transport cost (staging copies, notification IPIs/IRQs/hypercalls, and
// handler time stolen from the destination's channel core) and delivers the
// message into the peer endpoint's inbox, where the destination enclave's
// XEMEM service loop receives it.
//
// Two concrete transports exist, matching paper section 4.5:
//  * pisces::IpiChannel  — native enclave <-> native enclave;
//  * palacios::PciChannel — VM guest <-> its host enclave.
#pragma once

#include <memory>
#include <utility>

#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "xemem/wire.hpp"

namespace xemem {

class ChannelEndpoint {
 public:
  virtual ~ChannelEndpoint() = default;

  /// Transfer @p msg to the peer endpoint. Suspends the caller for the
  /// transport duration; on completion the message is in the peer's inbox.
  virtual sim::Task<void> send(Message msg) = 0;

  /// Messages delivered by the peer. Virtual so decorators (FaultyEndpoint)
  /// can alias their inner transport's inbox: the decorated pair delivers
  /// through the real transport, and the service loop reads one queue.
  virtual sim::Mailbox<Message>& inbox() { return inbox_; }

  /// Diagnostics.
  u64 messages_sent() const { return sent_; }
  u64 bytes_sent() const { return bytes_; }

 protected:
  void account(const Message& m) {
    ++sent_;
    bytes_ += m.wire_bytes();
  }

  sim::Mailbox<Message> inbox_;
  u64 sent_{0};
  u64 bytes_{0};
};

/// Both ends of one channel; factories return this.
struct ChannelPair {
  std::unique_ptr<ChannelEndpoint> a;
  std::unique_ptr<ChannelEndpoint> b;
};

}  // namespace xemem
