// The Pisces co-kernel manager (paper section 4, "Pisces Lightweight
// Co-Kernel Architecture").
//
// Pisces decomposes a node's hardware into partitions fully managed by
// independent system-software stacks: the Linux management enclave gives
// up cores and a contiguous block of a NUMA zone's memory, and a Kitten
// co-kernel boots on them. During boot, Pisces establishes the IPI channel
// between the new enclave and the management enclave (ipi_channel.hpp) —
// with the management side's handling pinned to its core 0 in the stock
// design.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "os/kitten.hpp"
#include "os/linux.hpp"
#include "pisces/ipi_channel.hpp"

namespace xemem::pisces {

class PiscesManager {
 public:
  /// @param mgmt the Linux management enclave co-kernels attach to.
  PiscesManager(hw::Machine& machine, os::LinuxEnclave& mgmt)
      : machine_(machine), mgmt_(mgmt) {}

  PiscesManager(const PiscesManager&) = delete;
  PiscesManager& operator=(const PiscesManager&) = delete;

  struct CokernelSpec {
    std::string name;
    u32 socket{0};
    std::vector<u32> core_ids;     ///< cores surrendered to the co-kernel
    u64 memory_bytes{0};           ///< contiguous block carved from the zone
    u32 mgmt_channel_core{0};      ///< management-side IPI handler core
                                   ///< (core 0 in the stock design)
  };

  struct Booted {
    os::KittenEnclave* enclave;
    ChannelEndpoint* mgmt_endpoint;      ///< register with the mgmt kernel
    ChannelEndpoint* cokernel_endpoint;  ///< register with the co-kernel
  };

  /// Carve resources and boot a Kitten co-kernel.
  Result<Booted> boot_cokernel(const CokernelSpec& spec) {
    auto& socket_zone = machine_.zone(spec.socket);
    auto carve = socket_zone.alloc(pages_for(spec.memory_bytes),
                                   hw::AllocPolicy::contiguous);
    if (!carve.ok()) return carve.error();
    XEMEM_ASSERT(carve.value().size() == 1);

    auto slot = std::make_unique<Slot>();
    slot->socket = spec.socket;
    slot->carve = carve.value()[0];
    slot->zone = std::make_unique<hw::FrameZone>(slot->carve.start, slot->carve.count);

    std::vector<hw::Core*> cores;
    for (u32 cid : spec.core_ids) cores.push_back(&machine_.core(cid));
    XEMEM_ASSERT_MSG(!cores.empty(), "co-kernel needs at least one core");

    slot->enclave = std::make_unique<os::KittenEnclave>(
        spec.name, machine_, *slot->zone, machine_.socket_bw(spec.socket), cores,
        /*service_core=*/cores[0]);

    slot->channel = make_ipi_channel(&machine_.core(spec.mgmt_channel_core),
                                     /*cokernel_core=*/cores[0]);

    Booted out{slot->enclave.get(), slot->channel.a.get(), slot->channel.b.get()};
    cokernels_.push_back(std::move(slot));
    return out;
  }

  /// Tear down a co-kernel, returning its memory block to the socket zone.
  /// All of its processes must have been destroyed first.
  void shutdown_cokernel(os::KittenEnclave* enclave) {
    for (auto it = cokernels_.begin(); it != cokernels_.end(); ++it) {
      if ((*it)->enclave.get() == enclave) {
        XEMEM_ASSERT_MSG((*it)->zone->free_frames() == (*it)->zone->total_frames(),
                         "co-kernel shut down with live allocations");
        machine_.zone((*it)->socket).free((*it)->carve);
        // The management kernel's service loop for this channel is still a
        // suspended coroutine parked on the endpoint's inbox (there is no
        // way to cancel a parked receiver). Retire the channel instead of
        // destroying it: no sender remains, so the loop stays dormant, and
        // the endpoints are reclaimed with the manager.
        retired_channels_.push_back(std::move((*it)->channel));
        cokernels_.erase(it);
        return;
      }
    }
    XEMEM_PANIC("shutdown of unknown co-kernel");
  }

  os::LinuxEnclave& mgmt() { return mgmt_; }
  u64 cokernel_count() const { return cokernels_.size(); }

 private:
  struct Slot {
    std::unique_ptr<os::KittenEnclave> enclave;
    std::unique_ptr<hw::FrameZone> zone;
    hw::FrameExtent carve{};
    u32 socket{0};
    ChannelPair channel;
  };

  hw::Machine& machine_;
  os::LinuxEnclave& mgmt_;
  std::vector<std::unique_ptr<Slot>> cokernels_;
  std::vector<ChannelPair> retired_channels_;  // see shutdown_cokernel
};

}  // namespace xemem::pisces
