// The Pisces IPI-based cross-enclave channel (paper section 4.5).
//
// During co-kernel boot, Pisces sets up a small shared-memory region and a
// pair of IPI vectors between the new Kitten enclave and the Linux
// management enclave. A message transfer is: sender copies a chunk into
// the window, IPIs the destination's channel core, whose handler copies
// the chunk out. Large payloads (PFN lists) move in kChannelChunk pieces.
//
// Faithful detail that drives Figure 6: in the stock co-kernel
// architecture *all* IPI traffic to the Linux management enclave is
// handled on core 0, so every co-kernel's channel names the same Linux
// core as its handler core — concurrent attachments from many enclaves
// serialize their message handling there. bench/ablation_ipi_routing
// relaxes this restriction (the paper's stated future work).
#pragma once

#include "common/costs.hpp"
#include "hw/core.hpp"
#include "xemem/channel.hpp"

namespace xemem::pisces {

class IpiEndpoint final : public ChannelEndpoint {
 public:
  /// @param self_core  this side's channel core (pays staging copies)
  /// @param peer_core  destination channel core (pays IPI handler + copy-out)
  IpiEndpoint(hw::Core* self_core, hw::Core* peer_core)
      : self_core_(self_core), peer_core_(peer_core) {}

  void set_peer(IpiEndpoint* peer) { peer_ = peer; }

  hw::Core* peer_core() const { return peer_core_; }

  sim::Task<void> send(Message msg) override {
    XEMEM_ASSERT(peer_ != nullptr);
    account(msg);
    u64 remaining = msg.wire_bytes();
    while (remaining > 0) {
      const u64 chunk = std::min(remaining, costs::kChannelChunk);
      const u64 copy_ns =
          static_cast<u64>(static_cast<double>(chunk) / costs::kChannelCopyBytesPerNs);
      // Sender-side kernel thread copies the chunk into the window.
      co_await self_core_->run_irq(copy_ns);
      // IPI to the destination channel core; the handler copies it out
      // into a locally allocated buffer.
      co_await sim::delay(costs::kIpiLatency);
      co_await peer_core_->run_irq(costs::kIpiHandlerCost + copy_ns);
      remaining -= chunk;
    }
    peer_->inbox().send(std::move(msg));
  }

 private:
  hw::Core* self_core_;
  hw::Core* peer_core_;
  IpiEndpoint* peer_{nullptr};
};

/// Build a Pisces channel. `a` belongs to the management (Linux) enclave —
/// its sends execute handler work on @p cokernel_core; `b` belongs to the
/// co-kernel — its sends land on @p mgmt_core (core 0 in the stock design).
inline ChannelPair make_ipi_channel(hw::Core* mgmt_core, hw::Core* cokernel_core) {
  auto mgmt_ep = std::make_unique<IpiEndpoint>(mgmt_core, cokernel_core);
  auto ck_ep = std::make_unique<IpiEndpoint>(cokernel_core, mgmt_core);
  mgmt_ep->set_peer(ck_ep.get());
  ck_ep->set_peer(mgmt_ep.get());
  return ChannelPair{std::move(mgmt_ep), std::move(ck_ep)};
}

}  // namespace xemem::pisces
