// Replay-trace families for the I/O cache (src/iocache/).
//
// Three access-pattern families shaped like the composed-application I/O
// the paper's burst-buffer use case targets. Each trace is a deterministic
// function of (family, rank, nranks, params) so multi-client runs replay
// identically across processes and across runs:
//
//   * checkpoint — HPC defensive I/O: each rank writes its stripe of the
//     file sequentially, re-reading a recent block occasionally (app-level
//     verification); write-heavy, near-zero cross-rank sharing.
//   * dl_training — DL input pipeline: every rank re-reads a shared hot
//     set of sample blocks in shuffled passes; read-only, high reuse —
//     the family whose hit rate responds to cache capacity.
//   * scan — BigData analytics: each rank streams the whole file once
//     starting at a rank-staggered offset; read-only, minimal reuse.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace xemem::iocache {

enum class Family { checkpoint, dl_training, scan };

inline const char* family_name(Family f) {
  switch (f) {
    case Family::checkpoint: return "checkpoint";
    case Family::dl_training: return "dl_training";
    case Family::scan: return "scan";
  }
  return "?";
}

/// One replayed access.
struct ReplayOp {
  u64 block{0};
  bool is_write{false};
};

struct ReplayParams {
  u64 file_blocks{64};
  u64 ops_per_rank{128};
  u64 seed{1};
  double hot_fraction{0.5};  ///< dl_training: hot-set size / file size
};

/// Deterministic trace for @p rank of @p nranks.
std::vector<ReplayOp> make_trace(Family family, u32 rank, u32 nranks,
                                 const ReplayParams& p);

}  // namespace xemem::iocache
