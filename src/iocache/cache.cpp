#include "iocache/cache.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "sim/engine.hpp"

namespace xemem::iocache {

namespace {
/// Modeled CPU cost of one directory-entry probe (a couple of cache-line
/// reads through the attachment) and of one server-side ring-op dispatch.
inline constexpr u64 kDirProbeCost = 120_ns;
inline constexpr u64 kServerOpCost = 250_ns;

bool transient(Errc e) {
  // Statuses an acquire loop retries after re-reading the directory: the
  // entry it acted on was stale (eviction, crash, or recovery raced us).
  return e == Errc::revoked || e == Errc::no_such_segid ||
         e == Errc::retry_later || e == Errc::unreachable ||
         e == Errc::busy || e == Errc::stale_epoch || e == Errc::no_quorum;
}
}  // namespace

// =========================================================== CacheServer

CacheServer::CacheServer(XememKernel& kernel, os::Enclave& os, u32 shard,
                         Config cfg, BackingStore& store)
    : kernel_(kernel), os_(os), shard_(shard), cfg_(cfg), store_(store) {}

Result<void> CacheServer::write_entry(u64 block, const DirEntry& e) {
  return os_.proc_write(*proc_, dir_va() + block * sizeof(DirEntry), &e,
                        sizeof(DirEntry));
}

Result<DirEntry> CacheServer::read_entry(u64 block) const {
  DirEntry e;
  if (auto r = os_.proc_read(*proc_, dir_va() + block * sizeof(DirEntry), &e,
                             sizeof(DirEntry));
      !r.ok()) {
    return r.error();
  }
  return e;
}

sim::Task<Result<void>> CacheServer::start(bool takeover) {
  const u64 image = cfg_.dir_bytes() + cfg_.capacity_blocks * cfg_.block_bytes +
                    64_KiB;
  auto p = os_.create_process(image);
  if (!p.ok()) co_return p.error();
  proc_ = p.value();

  // All entries start invalid (zeroed); slots pop lowest-first.
  std::vector<u8> zeros(cfg_.dir_bytes(), 0);
  if (auto w = os_.proc_write(*proc_, dir_va(), zeros.data(), zeros.size());
      !w.ok()) {
    co_return w.error();
  }
  free_slots_.clear();
  for (u64 s = cfg_.capacity_blocks; s > 0; --s) free_slots_.push_back(s - 1);

  // Export the directory. A takeover server races the name service's
  // garbage collection of the crashed predecessor's name: retry until the
  // lease GC frees it.
  for (;;) {
    auto sid = co_await kernel_.xpmem_make(*proc_, dir_va(), cfg_.dir_bytes(),
                                           cfg_.dir_name(shard_));
    if (sid.ok()) {
      dir_segid_ = sid.value();
      break;
    }
    if (!takeover || (sid.error() != Errc::already_exists &&
                      sid.error() != Errc::retry_later)) {
      co_return sid.error();
    }
    co_await sim::delay(cfg_.poll_interval * 20);
  }

  // Attach every client's request ring (clients export them under
  // well-known names; poll until each appears).
  rings_.clear();
  rings_.resize(cfg_.num_clients);
  for (u32 c = 0; c < cfg_.num_clients; ++c) {
    Segid rsid{};
    for (;;) {
      if (dead()) co_return Errc::unreachable;
      auto s = co_await kernel_.xpmem_search(cfg_.ring_name(shard_, c));
      if (s.ok()) {
        rsid = s.value();
        break;
      }
      co_await sim::delay(cfg_.poll_interval * 4);
    }
    auto g = co_await kernel_.xpmem_get(rsid);
    if (!g.ok()) co_return g.error();
    auto a = co_await kernel_.xpmem_attach(*proc_, g.value(), 0,
                                           cfg_.ring_bytes());
    if (!a.ok()) co_return a.error();
    rings_[c].grant = g.value();
    rings_[c].att = a.value();
    rings_[c].ring = std::make_unique<shm::RingConsumer>(
        os_, *proc_, a.value().va, cfg_.ring_bytes(), cfg_.ring_slot_bytes);
  }

  auto* eng = sim::Engine::current();
  eng->spawn(poll_loop());
  if (cfg_.flush_period > 0) eng->spawn(flush_loop());
  co_return Result<void>{};
}

sim::Task<void> CacheServer::poll_loop() {
  while (!dead()) {
    bool any = false;
    for (auto& cr : rings_) {
      if (dead()) co_return;
      auto popped = co_await cr.ring->try_pop();
      if (!popped.ok() || !popped.value().has_value()) continue;
      const auto& bytes = *popped.value();
      if (bytes.size() < sizeof(RingOp)) continue;
      any = true;
      RingOp op;
      std::memcpy(&op, bytes.data(), sizeof(RingOp));
      co_await proc_->core()->compute(kServerOpCost);
      switch (op.op) {
        case kOpFetch:
          sim::Engine::current()->spawn(handle_fetch(op.block, op.stamp));
          break;
        case kOpTouch:
        case kOpLease: {
          if (op.op == kOpTouch) ++stats_.hits;
          auto it = resident_.find(op.block);
          if (it != resident_.end()) {
            it->second.last_touch = ++touch_tick_;
            it->second.referenced = true;
            // Renewals are recorded even mid-eviction: a touch in flight
            // when the entry flipped to EVICTING covers an access that
            // started against a READY entry, and reclaim must outwait it.
            it->second.lease_until =
                std::max(it->second.lease_until, op.stamp);
          }
          break;
        }
        case kOpMarkDirty: {
          auto it = resident_.find(op.block);
          if (it != resident_.end() && it->second.version == op.stamp) {
            ++stats_.dirty_marks;
            if (!it->second.dirty) {
              it->second.dirty = true;
              ++dirty_count_;
            }
          }
          break;
        }
        default:
          XLOG_WARN("iocache", "server %u: unknown ring op %u", shard_, op.op);
      }
    }
    if (!any) co_await sim::delay(cfg_.poll_interval);
  }
}

sim::Task<void> CacheServer::flush_loop() {
  while (!dead()) {
    co_await sim::delay(cfg_.flush_period);
    if (dead()) co_return;
    co_await mu_.lock();
    std::vector<u64> dirty;
    for (const auto& [b, meta] : resident_) {
      if (meta.dirty) dirty.push_back(b);
    }
    for (u64 b : dirty) {
      if (dead()) break;
      auto it = resident_.find(b);
      if (it == resident_.end() || !it->second.dirty) continue;
      (void)co_await writeback(b, it->second);
    }
    mu_.unlock();
  }
}

sim::Task<void> CacheServer::handle_fetch(u64 block, u64 lease_stamp) {
  co_await mu_.lock();
  if (dead()) {
    mu_.unlock();
    co_return;
  }
  if (auto it = resident_.find(block); it != resident_.end()) {
    // Raced another client's fetch (or a duplicate request): the block is
    // already resident; just extend the requester's lease.
    it->second.lease_until = std::max(it->second.lease_until, lease_stamp);
    it->second.referenced = true;
    mu_.unlock();
    co_return;
  }
  if (resident_.size() >= cfg_.capacity_blocks) {
    auto ev = co_await evict_one();
    if (!ev.ok()) {  // crashed mid-eviction
      mu_.unlock();
      co_return;
    }
  }
  ++stats_.misses;
  const u64 slot = free_slots_.back();
  free_slots_.pop_back();
  const u64 version = ++version_seq_;
  (void)write_entry(block, DirEntry{0, 0, version, kStateLoading});

  const u64 stamp = co_await store_.read_block(block, cfg_.block_bytes);
  if (dead()) {
    mu_.unlock();
    co_return;
  }
  // Install the block contents in the cache slot (stamp word verifies the
  // end-to-end data path; the full block is charged through the socket).
  (void)os_.proc_write(*proc_, slot_va(slot), &stamp, sizeof(stamp));
  co_await os_.membw().transfer(cfg_.block_bytes);

  auto sid = co_await kernel_.xpmem_make(*proc_, slot_va(slot),
                                         cfg_.block_bytes, "");
  if (dead() || !sid.ok()) {
    free_slots_.push_back(slot);
    (void)write_entry(block, DirEntry{0, 0, version, kStateInvalid});
    mu_.unlock();
    co_return;
  }
  BlockMeta meta;
  meta.slot = slot;
  meta.version = version;
  meta.segid = sid.value();
  meta.last_touch = ++touch_tick_;
  meta.lease_until = lease_stamp;
  u64 capid = 0;
  if (cfg_.use_capabilities) {
    auto root = kernel_.cap_root(sid.value());
    if (root.ok()) {
      CapRights rights;
      rights.access = AccessMode::read_write;
      rights.derivable = false;  // clients attach, they don't re-delegate
      auto child = co_await kernel_.cap_derive(root.value(), rights);
      if (dead()) {
        mu_.unlock();
        co_return;
      }
      if (child.ok()) {
        meta.client_cap = child.value();
        capid = child.value().id;
      }
    }
  }
  resident_.emplace(block, meta);
  (void)write_entry(block,
                    DirEntry{sid.value().value(), capid, version, kStateReady});
  mu_.unlock();
}

u64 CacheServer::pick_victim() {
  XEMEM_ASSERT_MSG(!resident_.empty(), "eviction from an empty cache");
  if (cfg_.policy == EvictPolicy::lru) {
    u64 victim = resident_.begin()->first;
    u64 best = resident_.begin()->second.last_touch;
    for (const auto& [b, meta] : resident_) {
      if (meta.last_touch < best) {
        best = meta.last_touch;
        victim = b;
      }
    }
    return victim;
  }
  // Clock: sweep block ids in order from the hand, granting one second
  // chance to referenced blocks; two full sweeps always terminate.
  for (int pass = 0; pass < 2; ++pass) {
    auto it = resident_.upper_bound(clock_hand_);
    for (u64 n = 0; n <= resident_.size(); ++n) {
      if (it == resident_.end()) it = resident_.begin();
      if (!it->second.referenced) {
        clock_hand_ = it->first;
        return it->first;
      }
      it->second.referenced = false;
      ++it;
    }
  }
  return resident_.begin()->first;
}

bool CacheServer::evict_crashpoint() {
  if (kernel_.is_crashed()) return true;
  ++evict_steps_;
  if (evict_crash_at_ != 0 && evict_steps_ >= evict_crash_at_) {
    kernel_.crash();
    return true;
  }
  return false;
}

sim::Task<Result<void>> CacheServer::writeback(u64 block, BlockMeta& meta) {
  // Write-back step (also used by the background flusher): consume the
  // crashpoint before doing anything, like the kernel's crash_after_*
  // hooks, so the sweep never observes a half-flushed block.
  if (evict_crashpoint()) co_return Errc::unreachable;
  u64 stamp = 0;
  if (auto r = os_.proc_read(*proc_, slot_va(meta.slot), &stamp, sizeof(stamp));
      !r.ok()) {
    co_return r.error();
  }
  co_await os_.membw().transfer(cfg_.block_bytes);
  co_await store_.write_block(block, cfg_.block_bytes, stamp);
  if (dead()) co_return Errc::unreachable;
  meta.dirty = false;
  XEMEM_ASSERT(dirty_count_ > 0);
  --dirty_count_;
  ++stats_.writebacks;
  co_return Result<void>{};
}

sim::Task<Result<void>> CacheServer::evict_one() {
  const u64 victim = pick_victim();
  auto it = resident_.find(victim);
  BlockMeta& meta = it->second;

  // Step 1: publish EVICTING. Clients seeing it stop renewing and drop
  // their handles; accesses that already read READY are covered by the
  // renewal they pushed (recorded below even mid-eviction).
  if (evict_crashpoint()) co_return Errc::unreachable;
  (void)write_entry(victim, DirEntry{meta.segid.value(), meta.client_cap.id,
                                     meta.version, kStateEvicting});

  // Step 2: a dirty victim is written back before its memory can go.
  if (meta.dirty) {
    auto w = co_await writeback(victim, meta);
    if (!w.ok()) co_return w.error();
  }

  // Step 3: reclaim. Capability mode live-unmaps every attacher through
  // the revocation fan-out; lease mode waits every attacher lease out
  // (clients promised to detach by expiry).
  if (evict_crashpoint()) co_return Errc::unreachable;
  if (cfg_.use_capabilities) {
    if (meta.client_cap.valid()) {
      const u64 before = kernel_.stats().revoke_unmaps;
      auto rv = co_await kernel_.cap_revoke(meta.client_cap);
      if (dead()) co_return Errc::unreachable;
      if (rv.ok() && kernel_.stats().revoke_unmaps > before) {
        ++stats_.revoked_evictions;
      }
    }
  } else {
    const sim::TimePoint t0 = sim::now();
    while (sim::now() < meta.lease_until) {
      if (dead()) co_return Errc::unreachable;
      co_await sim::delay(std::min<sim::Duration>(cfg_.poll_interval,
                                                  meta.lease_until - sim::now()));
    }
    stats_.lease_wait_ns += sim::now() - t0;
    XEMEM_ASSERT_MSG(sim::now() >= meta.lease_until,
                     "reclaim before attacher lease expiry");
  }
  // Withdraw the export. Lease-mode attachers drain as their janitors
  // detach; a short busy window is expected, not an error.
  for (;;) {
    if (dead()) co_return Errc::unreachable;
    auto rm = co_await kernel_.xpmem_remove(*proc_, meta.segid);
    if (rm.ok() || rm.error() != Errc::busy) break;
    co_await sim::delay(cfg_.poll_interval);
  }

  // Step 4: retire the entry (version bumps so stale write-back intents
  // for the dead incarnation are ignored).
  if (evict_crashpoint()) co_return Errc::unreachable;
  (void)write_entry(victim, DirEntry{0, 0, meta.version, kStateInvalid});
  free_slots_.push_back(meta.slot);
  resident_.erase(it);
  ++stats_.evictions;
  co_return Result<void>{};
}

sim::Task<Result<void>> CacheServer::stop() {
  co_await mu_.lock();
  Result<void> out{};
  // Reclaim every resident block (flushing dirty ones) so an orderly
  // shutdown leaves no pins, no exports, and a fully-invalid directory.
  while (!resident_.empty() && !kernel_.is_crashed()) {
    auto ev = co_await evict_one();
    if (!ev.ok()) {
      out = ev.error();
      break;
    }
  }
  mu_.unlock();
  stopped_ = true;  // poll/flush actors exit at their next wakeup
  // Let a mid-sweep poll iteration finish before its rings are detached
  // under it (an actor suspended inside try_pop resumes through the ring's
  // attachment VA).
  co_await sim::delay(cfg_.poll_interval * 4);
  if (!kernel_.is_crashed()) {
    for (auto& cr : rings_) {
      if (cr.ring == nullptr) continue;
      cr.ring.reset();
      (void)co_await kernel_.xpmem_detach(*proc_, cr.att);
      (void)co_await kernel_.xpmem_release(cr.grant);
    }
    for (int i = 0; i < 1000; ++i) {
      auto rm = co_await kernel_.xpmem_remove(*proc_, dir_segid_);
      if (rm.ok() || rm.error() != Errc::busy) break;
      co_await sim::delay(cfg_.poll_interval);
    }
  }
  co_return out;
}

// =========================================================== CacheClient

CacheClient::CacheClient(XememKernel& kernel, os::Enclave& os, u32 client_id,
                         Config cfg)
    : kernel_(kernel), os_(os), id_(client_id), cfg_(cfg) {}

sim::Task<Result<void>> CacheClient::start() {
  auto p = os_.create_process(cfg_.num_servers * cfg_.ring_bytes() + 64_KiB);
  if (!p.ok()) co_return p.error();
  proc_ = p.value();
  dirs_.assign(cfg_.num_servers, DirView{});
  rings_.clear();
  ring_segids_.clear();
  for (u32 s = 0; s < cfg_.num_servers; ++s) {
    const Vaddr base = proc_->image_base() + s * cfg_.ring_bytes();
    auto prod = std::make_unique<shm::RingProducer>(
        os_, *proc_, base, cfg_.ring_bytes(), cfg_.ring_slot_bytes);
    if (auto i = prod->init(); !i.ok()) co_return i.error();
    auto sid = co_await kernel_.xpmem_make(*proc_, base, cfg_.ring_bytes(),
                                           cfg_.ring_name(s, id_));
    if (!sid.ok()) co_return sid.error();
    rings_.push_back(std::move(prod));
    ring_segids_.push_back(sid.value());
  }
  if (!cfg_.use_capabilities) {
    sim::Engine::current()->spawn(janitor());
  }
  co_return Result<void>{};
}

sim::Task<Result<void>> CacheClient::resolve_directory(u32 shard,
                                                       Segid not_this) {
  DirView& dv = dirs_[shard];
  const Segid old_segid = dv.attached ? dv.segid : Segid{};
  const EnclaveId old_owner =
      dv.attached ? dv.att.owner : EnclaveId::invalid();
  if (dv.attached) {
    (void)co_await kernel_.xpmem_detach(*proc_, dv.att);
    (void)co_await kernel_.xpmem_release(dv.grant);
    dv.attached = false;
  }
  const sim::TimePoint t0 = sim::now();
  for (;;) {
    if (stopped_) co_return Errc::unreachable;
    auto s = co_await kernel_.xpmem_search(cfg_.dir_name(shard));
    // A presumed-dead server's name is lease-GC'd by the name service; a
    // name that *persists* under the excluded segid well past that window
    // means the server is slow, not dead — take it back.
    const bool persists = sim::now() - t0 > cfg_.reresolve_patience;
    if (s.ok() && (s.value() != not_this || persists)) {
      auto g = co_await kernel_.xpmem_get(s.value());
      if (g.ok()) {
        auto a = co_await kernel_.xpmem_attach(*proc_, g.value(), 0,
                                               cfg_.dir_bytes());
        if (a.ok()) {
          dv.segid = s.value();
          dv.grant = g.value();
          dv.att = a.value();
          dv.attached = true;
          if (old_owner.valid() && dv.segid != old_segid &&
              dv.att.owner.value() != old_owner.value()) {
            // The directory changed hands: the old server is gone. Release
            // the pins our kernel still holds for its ring attachments so
            // our exports don't stay busy on a ghost.
            kernel_.reap_attacher_pins(old_owner);
          }
          co_return Result<void>{};
        }
        (void)co_await kernel_.xpmem_release(g.value());
      }
    }
    co_await sim::delay(cfg_.poll_interval * 8);
  }
}

Result<DirEntry> CacheClient::read_entry(u32 shard, u64 block) const {
  const DirView& dv = dirs_[shard];
  DirEntry e;
  if (auto r = os_.proc_read(*proc_, dv.att.va + block * sizeof(DirEntry), &e,
                             sizeof(DirEntry));
      !r.ok()) {
    return r.error();
  }
  return e;
}

sim::Task<Result<void>> CacheClient::push_op(u32 shard, RingOp op) {
  auto r = co_await rings_[shard]->push(&op, sizeof(op), cfg_.poll_interval);
  if (!r.ok()) co_return r.error();
  co_return Result<void>{};
}

sim::Task<Result<CacheClient::Handle*>> CacheClient::acquire(u64 block,
                                                             bool* cold) {
  const u32 shard = cfg_.shard_of(block);
  sim::TimePoint stall_since = sim::now();
  sim::TimePoint next_fetch_push = 0;
  for (;;) {
    if (stopped_) co_return Errc::unreachable;
    if (!dirs_[shard].attached) {
      auto r = co_await resolve_directory(shard, dirs_[shard].segid);
      if (!r.ok()) co_return r.error();
      stall_since = sim::now();
    }
    co_await proc_->core()->compute(kDirProbeCost);
    auto er = read_entry(shard, block);
    if (!er.ok()) {
      dirs_[shard].attached = false;
      continue;
    }
    const DirEntry e = er.value();

    // Cached-handle fast path: still the same incarnation, still leased.
    if (auto h = handles_.find(block); h != handles_.end()) {
      Handle& hd = h->second;
      bool valid = e.state == kStateReady && hd.segid.value() == e.segid;
      if (!cfg_.use_capabilities) {
        valid = valid && sim::now() < hd.lease_expiry;
      }
      if (valid) {
        u64 expiry = 0;
        if (!cfg_.use_capabilities) {
          hd.lease_expiry = sim::now() + cfg_.block_lease;
          expiry = hd.lease_expiry;
        }
        auto pr = co_await push_op(shard, RingOp{kOpTouch, id_, block, expiry});
        if (!pr.ok()) co_return pr.error();
        co_return &hd;
      }
      co_await drop_handle(block);
    }

    if (e.state == kStateReady && e.segid != 0) {
      // Attach-on-read: take a grant against the published incarnation.
      Result<XpmemGrant> g = Errc::no_such_segid;
      if (cfg_.use_capabilities && e.cap != 0) {
        Capability c;
        c.segid = Segid{e.segid};
        c.id = e.cap;
        g = co_await kernel_.xpmem_get(c);
      } else {
        g = co_await kernel_.xpmem_get(Segid{e.segid});
      }
      if (!g.ok()) {
        if (!transient(g.error())) co_return g.error();
        co_await sim::delay(cfg_.poll_interval);
      } else {
        auto a = co_await kernel_.xpmem_attach(*proc_, g.value(), 0,
                                               cfg_.block_bytes);
        if (!a.ok()) {
          (void)co_await kernel_.xpmem_release(g.value());
          if (!transient(a.error())) co_return a.error();
          co_await sim::delay(cfg_.poll_interval);
        } else {
          // Eviction may have raced the attach: re-check the entry before
          // trusting the mapping (the revocation fan-out already tore a
          // raced mapping down under capabilities; under leases the entry
          // flip to EVICTING is the signal to let go).
          auto er2 = read_entry(shard, block);
          if (!er2.ok() || er2.value().segid != e.segid ||
              er2.value().state != kStateReady) {
            (void)co_await kernel_.xpmem_detach(*proc_, a.value());
            (void)co_await kernel_.xpmem_release(g.value());
            co_await sim::delay(cfg_.poll_interval);
          } else {
            ++m_.attaches;
            Handle hd;
            hd.segid = Segid{e.segid};
            hd.version = e.version;
            hd.grant = g.value();
            hd.att = a.value();
            u64 expiry = 0;
            if (!cfg_.use_capabilities) {
              hd.lease_expiry = sim::now() + cfg_.block_lease;
              expiry = hd.lease_expiry;
            }
            auto [ins, _] = handles_.insert_or_assign(block, hd);
            auto pr =
                co_await push_op(shard, RingOp{kOpLease, id_, block, expiry});
            if (!pr.ok()) co_return pr.error();
            co_return &ins->second;
          }
        }
      }
    } else {
      // Miss (or miss in progress): ask for a fetch, poll the entry.
      if (cold != nullptr && e.state == kStateLoading) *cold = true;
      if (e.state == kStateInvalid && sim::now() >= next_fetch_push) {
        const u64 expiry =
            cfg_.use_capabilities
                ? 0
                : sim::now() + cfg_.block_lease + cfg_.fetch_retry;
        auto pr = co_await push_op(shard, RingOp{kOpFetch, id_, block, expiry});
        if (!pr.ok()) co_return pr.error();
        if (cold != nullptr) *cold = true;
        next_fetch_push = sim::now() + cfg_.fetch_retry;
      }
      co_await sim::delay(cfg_.poll_interval);
    }

    if (sim::now() - stall_since > cfg_.fetch_deadline) {
      // The shard has not served us for a full deadline: presume its
      // server dead, take the terminal fault, and re-resolve the
      // directory by name against whatever recovers.
      ++m_.reresolves;
      auto rr = co_await resolve_directory(shard, dirs_[shard].segid);
      if (!rr.ok()) co_return rr.error();
      stall_since = sim::now();
      next_fetch_push = 0;
    }
  }
}

sim::Task<Result<u64>> CacheClient::read(u64 block, bool* cold_out) {
  const sim::TimePoint t0 = sim::now();
  bool cold = false;
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto h = co_await acquire(block, &cold);
    if (!h.ok()) co_return h.error();
    u64 stamp = 0;
    auto r = os_.proc_read(*proc_, h.value()->att.va, &stamp, sizeof(stamp));
    if (!r.ok()) {
      // Terminal fault on a cached handle (revocation or owner crash
      // unmapped it under us): drop it and re-resolve.
      ++m_.refaults;
      co_await drop_handle(block);
      continue;
    }
    co_await os_.membw().transfer(cfg_.block_bytes);
    ++m_.ops;
    if (cold) {
      ++m_.cold;
      m_.cold_ns.add(static_cast<double>(sim::now() - t0));
    } else {
      ++m_.hits;
      m_.warm_ns.add(static_cast<double>(sim::now() - t0));
    }
    if (cold_out != nullptr) *cold_out = cold;
    co_return stamp;
  }
  co_return Errc::unreachable;
}

sim::Task<Result<void>> CacheClient::write(u64 block, u64 stamp,
                                           bool* cold_out) {
  const sim::TimePoint t0 = sim::now();
  bool cold = false;
  for (int attempt = 0; attempt < 64; ++attempt) {
    auto h = co_await acquire(block, &cold);
    if (!h.ok()) co_return h.error();
    auto w = os_.proc_write(*proc_, h.value()->att.va, &stamp, sizeof(stamp));
    if (!w.ok()) {
      ++m_.refaults;
      co_await drop_handle(block);
      continue;
    }
    co_await os_.membw().transfer(cfg_.block_bytes);
    const u64 version = h.value()->version;
    auto pr = co_await push_op(cfg_.shard_of(block),
                               RingOp{kOpMarkDirty, id_, block, version});
    if (!pr.ok()) co_return pr.error();
    ++m_.ops;
    if (cold) {
      ++m_.cold;
      m_.cold_ns.add(static_cast<double>(sim::now() - t0));
    } else {
      ++m_.hits;
      m_.warm_ns.add(static_cast<double>(sim::now() - t0));
    }
    if (cold_out != nullptr) *cold_out = cold;
    co_return Result<void>{};
  }
  co_return Errc::unreachable;
}

sim::Task<void> CacheClient::drop_handle(u64 block) {
  auto it = handles_.find(block);
  if (it == handles_.end()) co_return;
  Handle hd = it->second;
  handles_.erase(it);
  // Teardown tolerates every failure mode: a revoked handle detaches
  // vacuously, a crashed owner times out, both leave no local state.
  (void)co_await kernel_.xpmem_detach(*proc_, hd.att);
  (void)co_await kernel_.xpmem_release(hd.grant);
}

sim::Task<void> CacheClient::janitor() {
  // The lease contract: a client never uses a cached handle past its
  // lease expiry, and detaches it promptly so the server's reclaim (which
  // waits expiries out) finds the export drained.
  while (!stopped_) {
    co_await sim::delay(std::max<sim::Duration>(cfg_.block_lease / 4, 1));
    if (stopped_) co_return;
    std::vector<u64> expired;
    for (const auto& [b, hd] : handles_) {
      if (sim::now() >= hd.lease_expiry) expired.push_back(b);
    }
    std::sort(expired.begin(), expired.end());
    for (u64 b : expired) co_await drop_handle(b);
  }
}

sim::Task<void> CacheClient::shutdown() {
  stopped_ = true;
  std::vector<u64> blocks;
  blocks.reserve(handles_.size());
  for (const auto& [b, hd] : handles_) blocks.push_back(b);
  std::sort(blocks.begin(), blocks.end());
  for (u64 b : blocks) co_await drop_handle(b);
  for (auto& dv : dirs_) {
    if (!dv.attached) continue;
    (void)co_await kernel_.xpmem_detach(*proc_, dv.att);
    (void)co_await kernel_.xpmem_release(dv.grant);
    dv.attached = false;
  }
}

}  // namespace xemem::iocache
