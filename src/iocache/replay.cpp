#include "iocache/replay.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace xemem::iocache {

namespace {

std::vector<ReplayOp> checkpoint_trace(u32 rank, u32 nranks,
                                       const ReplayParams& p, Rng& rng) {
  // Each rank owns a contiguous stripe and sweeps it with writes; roughly
  // one access in eight re-reads a recently written block (app-level
  // verification), so the mix lands near 7:1 write:read.
  const u64 stripe = std::max<u64>(1, p.file_blocks / nranks);
  const u64 base = (rank % nranks) * stripe;
  std::vector<ReplayOp> ops;
  ops.reserve(p.ops_per_rank);
  u64 cursor = 0;
  for (u64 i = 0; i < p.ops_per_rank; ++i) {
    if (i > 0 && rng.uniform_u64(8) == 0) {
      const u64 back = 1 + rng.uniform_u64(4);
      ops.push_back({base + (cursor + 2 * stripe - back % stripe) % stripe,
                     false});
    } else {
      ops.push_back({base + cursor, true});
      cursor = (cursor + 1) % stripe;
    }
  }
  return ops;
}

std::vector<ReplayOp> dl_training_trace(u32 rank, u32 nranks,
                                        const ReplayParams& p, Rng& rng) {
  (void)rank;
  (void)nranks;
  // All ranks share one hot set (the cached training shard); each rank
  // re-reads it in its own shuffled order, pass after pass. Reuse distance
  // == hot-set size, so the hit rate tracks capacity / hot_set directly.
  u64 hot = static_cast<u64>(static_cast<double>(p.file_blocks) *
                             p.hot_fraction);
  hot = std::max<u64>(2, std::min(hot, p.file_blocks));
  std::vector<u64> order(hot);
  for (u64 b = 0; b < hot; ++b) order[b] = b;
  std::vector<ReplayOp> ops;
  ops.reserve(p.ops_per_rank);
  while (ops.size() < p.ops_per_rank) {
    // Fisher-Yates with the rank-forked stream: a fresh shuffle per pass.
    for (u64 i = hot - 1; i > 0; --i) {
      std::swap(order[i], order[rng.uniform_u64(i + 1)]);
    }
    for (u64 b : order) {
      if (ops.size() >= p.ops_per_rank) break;
      ops.push_back({b, false});
    }
  }
  return ops;
}

std::vector<ReplayOp> scan_trace(u32 rank, u32 nranks, const ReplayParams& p,
                                 Rng& rng) {
  (void)rng;
  // Streaming pass over the whole file from a rank-staggered start: every
  // block touched once per lap, reuse only if ops_per_rank exceeds the
  // file size (and even then the reuse distance is the full file).
  const u64 start = (p.file_blocks * (rank % nranks)) / nranks;
  std::vector<ReplayOp> ops;
  ops.reserve(p.ops_per_rank);
  for (u64 i = 0; i < p.ops_per_rank; ++i) {
    ops.push_back({(start + i) % p.file_blocks, false});
  }
  return ops;
}

}  // namespace

std::vector<ReplayOp> make_trace(Family family, u32 rank, u32 nranks,
                                 const ReplayParams& p) {
  XEMEM_ASSERT(nranks > 0 && p.file_blocks > 0);
  // Seed per (family, rank) so each rank replays its own deterministic
  // stream regardless of how many other ranks run.
  Rng rng(p.seed ^ (static_cast<u64>(family) << 32) ^
          (static_cast<u64>(rank) * 0x9e3779b97f4a7c15ull));
  switch (family) {
    case Family::checkpoint: return checkpoint_trace(rank, nranks, p, rng);
    case Family::dl_training: return dl_training_trace(rank, nranks, p, rng);
    case Family::scan: return scan_trace(rank, nranks, p, rng);
  }
  return {};
}

}  // namespace xemem::iocache
