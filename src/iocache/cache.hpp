// Cross-enclave burst-buffer block cache over XEMEM segments.
//
// The ROADMAP's I/O-cache workload family, made concrete: cache-server
// enclaves hold parallel-filesystem blocks in node-local memory and share
// them with every job (enclave) on the node, bbThemis-style. All data
// moves through ordinary XEMEM exports — the cache is a *composition* on
// top of the kernel API, not a kernel feature:
//
//   * each server exports one **directory segment** (a named, attachable
//     table of per-block entries: segid, capability, version, state) plus
//     one anonymous **data segment per resident block**;
//   * clients attach the directory once, then resolve blocks by reading
//     entries through shared memory and **attach-on-read** the block
//     segments they touch, caching the attachment for re-reads;
//   * writes go straight through the attachment (zero-copy); the client
//     marks the block dirty via its request ring and the server writes it
//     back to the modeled backing store (on eviction, or periodically);
//   * misses are requested through a per-client SPSC request ring (the
//     ring lives in client memory; the server attaches it), fetched from
//     the backing store under hw-charged latency/bandwidth, and published
//     by a directory-entry update the polling client observes;
//   * eviction is lease-guarded: with capabilities on, the server revokes
//     the per-block client capability (`cap_revoke` live-unmaps every
//     attacher, exact counts in Stats::revoke_unmaps); with capabilities
//     off, clients renew per-block leases on every access and promise to
//     detach at expiry, so the server waits leases out before reclaiming;
//   * the directory is sharded across servers by block id for multi-server
//     scaling; each shard evicts independently under its own capacity;
//   * a crashed server takes every resident block (and the directory) with
//     it: clients take terminal faults on cached handles, poll the name
//     service until a recovery server re-exports the directory under a
//     fresh segid, and re-resolve against a cold cache.
//
// See DESIGN.md §11 for the protocol walk-through and crash semantics, and
// src/iocache/replay.hpp for the darshan-log-shaped access families that
// drive it.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/costs.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "sim/shared_resource.hpp"
#include "sim/sync.hpp"
#include "xemem/ring.hpp"
#include "xemem/system.hpp"

namespace xemem::iocache {

// ------------------------------------------------------------ wire formats

/// Directory-entry lifecycle, as published in the shared directory segment.
enum : u64 {
  kStateInvalid = 0,   ///< not cached; a FETCH will load it
  kStateLoading = 1,   ///< fetch in flight; poll until ready
  kStateReady = 2,     ///< resident; entry carries segid/cap/version
  kStateEvicting = 3,  ///< being reclaimed; treat as a miss in progress
};

/// One directory entry as laid out in the directory segment (32 B/block,
/// entry i at byte offset i * sizeof(DirEntry)).
struct DirEntry {
  u64 segid{0};    ///< data segment of the resident block (0 = none)
  u64 cap{0};      ///< derived client capability (0 = classic permits)
  u64 version{0};  ///< bumped on every (re)load and every eviction
  u64 state{kStateInvalid};
};
static_assert(sizeof(DirEntry) == 32, "directory entry layout is wire format");

/// Request-ring opcodes (client -> server, via the client's SPSC ring).
enum : u32 {
  kOpFetch = 1,      ///< miss: load the block from the backing store
  kOpTouch = 2,      ///< warm access: recency bump + lease renewal (a hit)
  kOpMarkDirty = 3,  ///< write-back intent for the given version
  kOpLease = 4,      ///< lease registration after a cold attach (not a hit)
};

/// One request-ring record.
struct RingOp {
  u32 op{0};
  u32 client{0};
  u64 block{0};
  u64 stamp{0};  ///< lease expiry (fetch/touch/lease) or version (dirty)
};
static_assert(sizeof(RingOp) == 24);

// ------------------------------------------------------------ configuration

enum class EvictPolicy { lru, clock };

struct Config {
  std::string name_prefix{"iocache"};
  u64 block_bytes{64_KiB};
  u64 file_blocks{64};      ///< backing-store object count (directory size)
  u64 capacity_blocks{16};  ///< per-server resident-block capacity
  u32 num_servers{1};       ///< directory shards (block -> block % servers)
  u32 num_clients{1};
  bool use_capabilities{false};  ///< eviction revokes instead of lease-waits
  EvictPolicy policy{EvictPolicy::lru};
  sim::Duration block_lease{400_us};   ///< attacher lease per block (lease mode)
  sim::Duration poll_interval{5_us};   ///< ring poll / directory poll cadence
  sim::Duration fetch_retry{200_us};   ///< client re-pushes FETCH past this
  sim::Duration fetch_deadline{8_ms};  ///< miss unserved this long => server
                                       ///  presumed dead; re-resolve by name
  sim::Duration reresolve_patience{15_ms};  ///< re-resolution accepts the
                                            ///  *same* directory segid after
                                            ///  this long: a dead server's
                                            ///  name would have been lease-
                                            ///  GC'd by now, so a persisting
                                            ///  name means slow, not dead
  sim::Duration flush_period{0};       ///< background write-back cadence
                                       ///  (0 = write back only on eviction)
  u64 ring_pages{4};        ///< request-ring region size (1 header page)
  u32 ring_slot_bytes{32};  ///< >= sizeof(u32) + sizeof(RingOp)

  u32 shard_of(u64 block) const { return static_cast<u32>(block % num_servers); }
  std::string dir_name(u32 shard) const {
    return name_prefix + "/dir/" + std::to_string(shard);
  }
  std::string ring_name(u32 shard, u32 client) const {
    return name_prefix + "/ring/" + std::to_string(shard) + "/" +
           std::to_string(client);
  }
  u64 dir_bytes() const {
    return page_align_up(file_blocks * sizeof(DirEntry));
  }
  u64 ring_bytes() const { return ring_pages * kPageSize; }
};

// ------------------------------------------------------------ backing store

/// The modeled parallel filesystem behind the cache. Content is one u64
/// stamp per block (enough to verify end-to-end data paths); time is
/// charged for real: per-op latency plus block_bytes through a shared
/// bandwidth resource, so concurrent fetches from several servers contend
/// for the node's external I/O path like they would on hardware.
class BackingStore {
 public:
  BackingStore(u64 file_blocks, u64 seed,
               double bytes_per_ns = costs::kPfsBytesPerNs)
      : bw_(bytes_per_ns), stamps_(file_blocks) {
    for (u64 b = 0; b < file_blocks; ++b) stamps_[b] = seed ^ (b * 0x9e37ull);
  }

  sim::Task<u64> read_block(u64 block, u64 bytes) {
    ++reads_;
    co_await sim::delay(costs::kPfsReadLatency);
    co_await bw_.transfer(bytes);
    co_return stamps_.at(block);
  }

  sim::Task<void> write_block(u64 block, u64 bytes, u64 stamp) {
    ++writes_;
    co_await sim::delay(costs::kPfsWriteLatency);
    co_await bw_.transfer(bytes);
    stamps_.at(block) = stamp;
  }

  u64 stamp(u64 block) const { return stamps_.at(block); }
  u64 reads() const { return reads_; }
  u64 writes() const { return writes_; }

 private:
  sim::SharedBandwidth bw_;
  std::vector<u64> stamps_;
  u64 reads_{0};
  u64 writes_{0};
};

// ------------------------------------------------------------ cache server

/// One directory shard: exports the directory + per-block data segments,
/// polls client request rings, fetches misses, evicts under capacity with
/// lease-guarded (or capability-revoking) reclaim, and writes dirty blocks
/// back to the backing store.
class CacheServer {
 public:
  CacheServer(XememKernel& kernel, os::Enclave& os, u32 shard, Config cfg,
              BackingStore& store);

  /// Export the directory, attach every client's request ring, start the
  /// poll (and optional flush) actors. With @p takeover, retries the
  /// directory export until the name service has garbage-collected a
  /// crashed predecessor's name (recovery path).
  sim::Task<Result<void>> start(bool takeover = false);

  /// Orderly shutdown: flush dirty blocks, reclaim every resident block,
  /// withdraw the directory. Clients should have detached first.
  sim::Task<Result<void>> stop();

  /// Deterministic crashpoint: crash the hosting kernel on the N-th
  /// eviction/write-back protocol step (1-based; 0 disables). Mirrors the
  /// kernel's crash_after_* hooks: the step is consumed before executing.
  void crash_after_evict_steps(u64 n) { evict_crash_at_ = n; }
  u64 evict_steps() const { return evict_steps_; }

  const IoCacheStats& stats() const { return stats_; }
  u64 resident_blocks() const { return resident_.size(); }
  u64 dirty_blocks() const { return dirty_count_; }
  Segid dir_segid() const { return dir_segid_; }
  XememKernel& kernel() { return kernel_; }

 private:
  struct BlockMeta {
    u64 slot{0};  ///< arena slot index (va = arena base + slot * block)
    u64 version{0};
    Segid segid{};
    Capability client_cap{};  ///< derived cap published to clients
    bool dirty{false};
    bool referenced{false};          ///< clock second-chance bit
    u64 last_touch{0};               ///< LRU tick
    sim::TimePoint lease_until{0};   ///< latest attacher lease expiry
  };

  Vaddr dir_va() const { return proc_->image_base(); }
  Vaddr slot_va(u64 slot) const {
    return proc_->image_base() + cfg_.dir_bytes() + slot * cfg_.block_bytes;
  }

  Result<void> write_entry(u64 block, const DirEntry& e);
  Result<DirEntry> read_entry(u64 block) const;

  sim::Task<void> poll_loop();
  sim::Task<void> flush_loop();
  sim::Task<void> handle_fetch(u64 block, u64 lease_stamp);
  /// Reclaim one resident block (the eviction protocol). Caller holds mu_.
  sim::Task<Result<void>> evict_one();
  /// Flush @p block's stamp to the backing store. Caller holds mu_.
  sim::Task<Result<void>> writeback(u64 block, BlockMeta& meta);
  u64 pick_victim();
  /// Crashpoint bookkeeping; true = the kernel just crashed, abort.
  bool evict_crashpoint();
  bool dead() const { return kernel_.is_crashed() || stopped_; }

  XememKernel& kernel_;
  os::Enclave& os_;
  u32 shard_;
  Config cfg_;
  BackingStore& store_;

  os::Process* proc_{nullptr};
  Segid dir_segid_{};
  std::map<u64, BlockMeta> resident_;  ///< ordered: deterministic victims
  std::vector<u64> free_slots_;
  u64 version_seq_{0};
  u64 touch_tick_{0};
  u64 clock_hand_{0};
  u64 dirty_count_{0};
  sim::Mutex mu_;  ///< serializes fetch + eviction + flush mutations

  struct ClientRing {
    XpmemGrant grant{};
    XpmemAttachment att{};
    std::unique_ptr<shm::RingConsumer> ring;
  };
  std::vector<ClientRing> rings_;

  IoCacheStats stats_;
  u64 evict_steps_{0};
  u64 evict_crash_at_{0};
  bool stopped_{false};
};

// ------------------------------------------------------------ cache client

/// Per-client view of one access (bench bookkeeping).
struct ClientMetrics {
  u64 ops{0};
  u64 hits{0};       ///< accesses served without a backing-store fetch
  u64 cold{0};       ///< accesses that waited on a fetch
  u64 attaches{0};   ///< successful xpmem_attach calls
  u64 refaults{0};   ///< terminal faults taken on cached handles
  u64 reresolves{0}; ///< directory re-resolutions (server loss/recovery)
  Samples warm_ns;   ///< per-op latency of hits
  Samples cold_ns;   ///< per-op latency of misses
};

/// A consumer enclave's handle on the cache: exports its request rings,
/// attaches directories lazily (with name-service re-resolution when a
/// server dies), attaches blocks on read, and caches attachments across
/// accesses under the lease/capability contract.
class CacheClient {
 public:
  CacheClient(XememKernel& kernel, os::Enclave& os, u32 client_id, Config cfg);

  /// Create the process and export one request ring per server shard.
  sim::Task<Result<void>> start();

  /// Read @p block through the cache; returns its stamp. @p cold_out
  /// (optional) reports whether the access waited on a backing-store
  /// fetch.
  sim::Task<Result<u64>> read(u64 block, bool* cold_out = nullptr);

  /// Write @p stamp into @p block (write-allocate, write-back).
  sim::Task<Result<void>> write(u64 block, u64 stamp, bool* cold_out = nullptr);

  /// Drop every cached handle and directory attachment (orderly teardown;
  /// errors from dead owners are tolerated).
  sim::Task<void> shutdown();

  const ClientMetrics& metrics() const { return m_; }
  ClientMetrics& metrics() { return m_; }
  u64 cached_handles() const { return handles_.size(); }
  XememKernel& kernel() { return kernel_; }

 private:
  struct Handle {
    Segid segid{};
    u64 version{0};
    XpmemGrant grant{};
    XpmemAttachment att{};
    sim::TimePoint lease_expiry{0};
  };
  struct DirView {
    Segid segid{};
    XpmemGrant grant{};
    XpmemAttachment att{};
    bool attached{false};
  };

  /// Resolve + attach the shard directory, polling the name service until
  /// a (re-)exported directory appears under a segid != @p not_this.
  sim::Task<Result<void>> resolve_directory(u32 shard, Segid not_this);
  Result<DirEntry> read_entry(u32 shard, u64 block) const;
  sim::Task<Result<void>> push_op(u32 shard, RingOp op);
  /// Acquire a usable attachment for @p block (the resolve/attach loop).
  sim::Task<Result<Handle*>> acquire(u64 block, bool* cold);
  sim::Task<void> drop_handle(u64 block);
  sim::Task<void> janitor();  ///< lease mode: detach expired handles

  XememKernel& kernel_;
  os::Enclave& os_;
  u32 id_;
  Config cfg_;

  os::Process* proc_{nullptr};
  std::vector<std::unique_ptr<shm::RingProducer>> rings_;  // one per shard
  std::vector<Segid> ring_segids_;
  std::vector<DirView> dirs_;
  std::unordered_map<u64, Handle> handles_;
  ClientMetrics m_;
  bool stopped_{false};
};

}  // namespace xemem::iocache
