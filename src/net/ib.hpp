// Infiniband device model: QDR link, SR-IOV virtual functions, RDMA verbs.
//
// Models the paper's dual-port QDR Mellanox ConnectX-3 with SR-IOV
// (section 5.1): the Figure 5 comparison configures two virtual functions,
// assigns each to a KVM virtual machine, and runs an RDMA write bandwidth
// test at the recommended MTU, measuring "slightly less than 3.5 GB/s".
//
// The model: a link processor-sharing resource at the QDR effective rate,
// a fixed post/initiation overhead per verb, and a small per-MTU header/
// credit cost. Virtual functions share the port's link rate fairly, which
// is how SR-IOV behaves under saturation.
#pragma once

#include "common/costs.hpp"
#include "sim/shared_resource.hpp"
#include "sim/task.hpp"

namespace xemem::net {

class IbDevice;

/// One SR-IOV virtual function, assignable to a VM or native driver.
class IbVf {
 public:
  IbVf(IbDevice* dev, u32 index) : dev_(dev), index_(index) {}

  u32 index() const { return index_; }

  /// Post an RDMA write of @p bytes and wait for completion.
  sim::Task<void> rdma_write(u64 bytes);

  u64 bytes_written() const { return bytes_written_; }
  u64 ops_posted() const { return ops_; }

 private:
  IbDevice* dev_;
  u32 index_;
  u64 bytes_written_{0};
  u64 ops_{0};
};

/// The physical HCA: a shared link plus a VF registry.
class IbDevice {
 public:
  explicit IbDevice(double link_bytes_per_ns = costs::kIbLinkBytesPerNs)
      : link_(link_bytes_per_ns) {}

  IbDevice(const IbDevice&) = delete;
  IbDevice& operator=(const IbDevice&) = delete;

  /// Enable SR-IOV with @p count virtual functions.
  void enable_sriov(u32 count) {
    vfs_.clear();
    vfs_.reserve(count);
    for (u32 i = 0; i < count; ++i) vfs_.emplace_back(std::make_unique<IbVf>(this, i));
  }

  IbVf& vf(u32 i) {
    XEMEM_ASSERT(i < vfs_.size());
    return *vfs_[i];
  }
  u32 vf_count() const { return static_cast<u32>(vfs_.size()); }

  sim::SharedBandwidth& link() { return link_; }

 private:
  sim::SharedBandwidth link_;
  std::vector<std::unique_ptr<IbVf>> vfs_;
};

inline sim::Task<void> IbVf::rdma_write(u64 bytes) {
  ++ops_;
  bytes_written_ += bytes;
  // Verb post + doorbell.
  co_await sim::delay(costs::kIbPostOverhead);
  // Per-MTU segmentation overhead (headers, credits) paid serially...
  const u64 mtus = (bytes + costs::kIbMtu - 1) / costs::kIbMtu;
  co_await sim::delay(mtus * costs::kIbPerMtuOverhead);
  // ...and the payload through the (possibly shared) link.
  co_await dev_->link().transfer(bytes);
}

}  // namespace xemem::net
