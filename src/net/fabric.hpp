// Cluster fabric and MPI-like collectives for the multi-node experiments.
//
// The paper's section 7 runs the in-situ benchmark on an 8-node cluster
// interconnected with QDR Infiniband; the HPC simulation uses OpenMPI with
// collective operations between conjugate-gradient iterations. The key
// dynamic the experiment isolates is the *straggler effect*: every
// iteration ends in a collective, so the iteration time of the whole job
// is the maximum across nodes — OS noise on any one node delays everyone
// (this is why the Linux-only configuration's scaling degrades while the
// isolated multi-enclave configuration stays flat).
//
// Communicator::allreduce is therefore modeled as: synchronize all ranks
// (the straggler barrier), then charge the recursive-doubling cost
// log2(N) x (latency + bytes/link-rate) to every rank.
#pragma once

#include <bit>

#include "common/costs.hpp"
#include "sim/sync.hpp"

namespace xemem::net {

class Communicator {
 public:
  /// @param ranks one rank per node (the simulation's node-level MPI view)
  explicit Communicator(u32 ranks,
                        double link_bytes_per_ns = costs::kIbLinkBytesPerNs,
                        u64 latency_ns = costs::kIbEndToEndLatency)
      : ranks_(ranks),
        link_bw_(link_bytes_per_ns),
        latency_(latency_ns),
        barrier_(ranks) {}

  u32 ranks() const { return ranks_; }

  /// Collective allreduce of @p bytes per rank. Every rank must call this;
  /// completion happens after the slowest rank arrives plus the
  /// recursive-doubling exchange cost.
  sim::Task<void> allreduce(u64 bytes) {
    co_await barrier_.arrive_and_wait();
    if (ranks_ > 1) {
      const u64 rounds = std::bit_width(static_cast<u64>(ranks_ - 1));
      const u64 per_round =
          latency_ + static_cast<u64>(static_cast<double>(bytes) / link_bw_);
      co_await sim::delay(rounds * per_round);
    }
  }

  /// Barrier without payload.
  sim::Task<void> barrier() {
    co_await barrier_.arrive_and_wait();
    if (ranks_ > 1) {
      const u64 rounds = std::bit_width(static_cast<u64>(ranks_ - 1));
      co_await sim::delay(rounds * latency_);
    }
  }

 private:
  u32 ranks_;
  double link_bw_;
  u64 latency_;
  sim::Barrier barrier_;
};

}  // namespace xemem::net
