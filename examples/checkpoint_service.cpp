// Checkpoint service: node-wide discovery and snapshotting.
//
// A management-enclave service uses the name server's discoverability
// (paper section 3.1: "the name server can be queried for information
// regarding the existence and names of shared memory regions") to find
// *every* published region on the node — regardless of which enclave owns
// it — attach each one read-only (the XPMEM permission model), copy a
// consistent snapshot, and detach. The data producers are a native Kitten
// application, a process in a Palacios VM, and a native Linux process;
// none of them knows the checkpoint service exists.
//
// Run: ./build/examples/checkpoint_service
#include <cstdio>
#include <numeric>

#include "common/units.hpp"
#include "xemem/system.hpp"

using namespace xemem;

namespace {

sim::Task<void> publish_state(Node& node, const std::string& enclave,
                              const std::string& name, u64 bytes, u8 fill) {
  os::Process* p = node.enclave(enclave).create_process(bytes + kPageSize).value();
  std::vector<u8> data(4096, fill);
  for (u64 off = 0; off < bytes; off += data.size()) {
    XEMEM_ASSERT(node.enclave(enclave)
                     .proc_write(*p, p->image_base() + off, data.data(),
                                 std::min<u64>(data.size(), bytes - off))
                     .ok());
  }
  auto sid = co_await node.kernel(enclave).xpmem_make(*p, p->image_base(), bytes,
                                                      name, AccessMode::read_only);
  XEMEM_ASSERT(sid.ok());
  std::printf("  %-8s published '%s' (%llu KiB, read-only)\n", enclave.c_str(),
              name.c_str(), (unsigned long long)(bytes >> 10));
}

sim::Task<void> demo(Node& node) {
  co_await node.start();
  std::printf("producers exporting application state:\n");
  co_await publish_state(node, "kitten0", "sim/mesh", 2_MiB, 0xAA);
  co_await publish_state(node, "vm0", "viz/framebuffer", 1_MiB, 0xBB);
  co_await publish_state(node, "linux", "io/staging", 512_KiB, 0xCC);

  // The checkpoint service: enumerate the global name space, snapshot all.
  auto& svc_kernel = node.kernel("linux");
  os::Process* svc = node.enclave("linux").create_process(1_MiB).value();
  auto listing = co_await svc_kernel.xpmem_list();
  XEMEM_ASSERT(listing.ok());
  std::printf("\ncheckpoint service discovered %zu published regions:\n",
              listing.value().size());

  u64 total = 0;
  const u64 t0 = sim::now();
  for (const auto& [name, segid] : listing.value()) {
    auto grant = co_await svc_kernel.xpmem_get(segid, AccessMode::read_only);
    XEMEM_ASSERT(grant.ok());
    auto att = co_await svc_kernel.xpmem_attach(*svc, grant.value(), 0,
                                                grant.value().size);
    XEMEM_ASSERT(att.ok());
    co_await node.enclave("linux").touch_attached(*svc, att.value().va,
                                                  att.value().pages);

    // Snapshot: stream the region out (charged) and verify a sample.
    std::vector<u8> sample(64);
    XEMEM_ASSERT(
        node.enclave("linux").proc_read(*svc, att.value().va, sample.data(), 64).ok());
    const u64 sum = std::accumulate(sample.begin(), sample.end(), u64{0});
    co_await node.enclave("linux").membw().transfer(grant.value().size);
    total += grant.value().size;

    std::printf("  '%s': segid %llu, %7llu KiB, sample-byte 0x%02x, snapshot ok\n",
                name.c_str(), (unsigned long long)segid.value(),
                (unsigned long long)(grant.value().size >> 10),
                static_cast<unsigned>(sum / 64));

    // Writes are impossible under the read-only grant.
    u8 evil = 0;
    XEMEM_ASSERT(node.enclave("linux").proc_write(*svc, att.value().va, &evil, 1)
                     .error() == Errc::permission_denied);
    XEMEM_ASSERT((co_await svc_kernel.xpmem_detach(*svc, att.value())).ok());
    XEMEM_ASSERT((co_await svc_kernel.xpmem_release(grant.value())).ok());
  }
  std::printf("\nsnapshot of %llu KiB across 3 enclaves in %.2f ms (simulated); "
              "producers were never modified (PTE-enforced read-only)\n",
              (unsigned long long)(total >> 10), ns_to_s(sim::now() - t0) * 1e3);
  std::printf("pinned frames after service pass: %llu\n",
              (unsigned long long)node.machine().pmem().total_refs());
}

}  // namespace

int main() {
  sim::Engine engine(5);
  Node node(hw::Machine::r420());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  node.add_cokernel("kitten0", 0, {6, 7}, 64_MiB);
  node.add_vm("vm0", "linux", 64_MiB, {4, 5});
  engine.run(demo(node));
  return 0;
}
