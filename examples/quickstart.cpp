// Quickstart: the XPMEM-compatible API across two enclaves.
//
// Boots the smallest interesting multi-OS/R system — a Linux management
// enclave (hosting the XEMEM name server) plus one Kitten co-kernel — and
// walks the full Table 1 API life cycle:
//
//   1. a Kitten process exports a region with xpmem_make (publishing a
//      well-known name for discovery);
//   2. a Linux process discovers it with xpmem_search, requests access
//      with xpmem_get, and maps it with xpmem_attach;
//   3. both processes communicate through the shared pages (zero-copy);
//   4. xpmem_detach / xpmem_remove tear everything down, leak-free.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <cstring>

#include "common/units.hpp"
#include "xemem/system.hpp"

using namespace xemem;

namespace {

sim::Task<void> demo(Node& node) {
  co_await node.start();
  std::printf("enclaves registered: linux=id %llu, kitten0=id %llu\n",
              (unsigned long long)node.kernel("linux").id().value(),
              (unsigned long long)node.kernel("kitten0").id().value());

  auto& kitten = node.kernel("kitten0");
  auto& linux_k = node.kernel("linux");
  auto& kitten_os = node.enclave("kitten0");
  auto& linux_os = node.enclave("linux");

  // A simulation-like process in the Kitten enclave exports 16 MiB.
  os::Process* producer = kitten_os.create_process(16_MiB).value();
  auto segid = co_await kitten.xpmem_make(*producer, producer->image_base(), 16_MiB,
                                          "quickstart-buffer");
  std::printf("kitten process %u exported 16 MiB as segid %llu ('%s')\n",
              producer->pid(), (unsigned long long)segid.value().value(),
              "quickstart-buffer");

  const char hello[] = "hello from the lightweight kernel";
  XEMEM_ASSERT(kitten_os.proc_write(*producer, producer->image_base(), hello,
                                    sizeof(hello))
                   .ok());

  // A consumer in the Linux enclave discovers and attaches it.
  os::Process* consumer = linux_os.create_process(1_MiB).value();
  auto found = co_await linux_k.xpmem_search("quickstart-buffer");
  std::printf("linux process %u resolved 'quickstart-buffer' -> segid %llu\n",
              consumer->pid(), (unsigned long long)found.value().value());

  auto grant = co_await linux_k.xpmem_get(found.value());
  std::printf("xpmem_get granted access to %llu bytes\n",
              (unsigned long long)grant.value().size);

  const u64 t0 = sim::now();
  auto att = co_await linux_k.xpmem_attach(*consumer, grant.value(), 0, 16_MiB);
  std::printf("xpmem_attach mapped it at va 0x%llx in %.1f us (simulated)\n",
              (unsigned long long)att.value().va.value(),
              static_cast<double>(sim::now() - t0) / 1000.0);

  char msg[sizeof(hello)] = {};
  XEMEM_ASSERT(linux_os.proc_read(*consumer, att.value().va, msg, sizeof(msg)).ok());
  std::printf("linux reads through the mapping: \"%s\"\n", msg);

  const char reply[] = "hello back from fullweight linux";
  XEMEM_ASSERT(
      linux_os.proc_write(*consumer, att.value().va + 4096, reply, sizeof(reply))
          .ok());
  char back[sizeof(reply)] = {};
  XEMEM_ASSERT(kitten_os.proc_read(*producer, producer->image_base() + 4096, back,
                                   sizeof(back))
                   .ok());
  std::printf("kitten sees the consumer's write:  \"%s\"\n", back);

  XEMEM_ASSERT((co_await linux_k.xpmem_detach(*consumer, att.value())).ok());
  XEMEM_ASSERT((co_await linux_k.xpmem_release(grant.value())).ok());
  XEMEM_ASSERT((co_await kitten.xpmem_remove(*producer, segid.value())).ok());
  std::printf("teardown complete; pinned frames outstanding: %llu\n",
              (unsigned long long)node.machine().pmem().total_refs());
}

}  // namespace

int main() {
  sim::Engine engine(1);
  Node node(hw::Machine::r420());
  node.add_linux_mgmt("linux", /*socket=*/0, {0, 1, 2, 3});
  node.add_cokernel("kitten0", /*socket=*/0, {6, 7}, 256_MiB);
  engine.run(demo(node));
  std::printf("done (simulated time: %.3f ms)\n", ns_to_s(engine.now()) * 1e3);
  return 0;
}
