// VM sharing: Palacios host/guest memory sharing mechanics (Figure 4).
//
// Shows both directions of the paper's section 4.4:
//   (a) a process in a Linux VM attaches memory exported by a native
//       Kitten enclave — Palacios materializes the host frames as new
//       guest-physical pages, inserting one memory-map entry per page
//       (watch the entry count and the throughput cost of the red-black
//       tree grow);
//   (b) the VM process exports its own memory and the Kitten process
//       attaches it — Palacios only *walks* the memory map to translate
//       guest frames, which stays cheap.
//
// Run: ./build/examples/vm_sharing
#include <cstdio>

#include "common/units.hpp"
#include "os/guest_linux.hpp"
#include "xemem/system.hpp"

using namespace xemem;

namespace {

sim::Task<void> demo(Node& node) {
  co_await node.start();
  auto& kitten = node.kernel("kitten0");
  auto& vm_k = node.kernel("vm0");
  auto& kitten_os = node.enclave("kitten0");
  auto* guest_os = static_cast<os::GuestLinuxEnclave*>(&node.enclave("vm0"));
  auto& vmm_map = guest_os->vm().memory_map();

  std::printf("guest RAM mapped with %llu memory-map entries (contiguous host "
              "blocks keep the initial map tiny)\n\n",
              (unsigned long long)vmm_map.entries());

  // --- Direction (a): guest attaches host-enclave memory -------------------
  os::Process* exporter = kitten_os.create_process(64_MiB + kPageSize).value();
  os::Process* guest_proc = guest_os->create_process(4_MiB).value();
  u64 marker = 0x4b49545445ull;  // "KITTE"
  XEMEM_ASSERT(
      kitten_os.proc_write(*exporter, exporter->image_base(), &marker, 8).ok());

  auto segid = co_await kitten.xpmem_make(*exporter, exporter->image_base(), 64_MiB);
  auto grant = co_await vm_k.xpmem_get(segid.value());
  const u64 entries_before = vmm_map.entries();
  const u64 t0 = sim::now();
  auto att = co_await vm_k.xpmem_attach(*guest_proc, grant.value(), 0, 64_MiB);
  const u64 attach_ns = sim::now() - t0;
  XEMEM_ASSERT(att.ok());
  std::printf("(a) guest attached a 64 MiB Kitten export:\n");
  std::printf("    memory-map entries %llu -> %llu (+%llu: one per page, "
              "paper section 4.4)\n",
              (unsigned long long)entries_before,
              (unsigned long long)vmm_map.entries(),
              (unsigned long long)(vmm_map.entries() - entries_before));
  std::printf("    attach took %.2f ms => %.2f GB/s (the rb-tree inserts "
              "dominate; compare Table 2)\n",
              static_cast<double>(attach_ns) / 1e6, gb_per_s(64_MiB, attach_ns));
  u64 got = 0;
  XEMEM_ASSERT(guest_os->proc_read(*guest_proc, att.value().va, &got, 8).ok());
  std::printf("    data visible in the guest: 0x%llx %s\n", (unsigned long long)got,
              got == marker ? "(matches the Kitten write)" : "(MISMATCH!)");

  XEMEM_ASSERT((co_await vm_k.xpmem_detach(*guest_proc, att.value())).ok());
  std::printf("    after detach the map returns to %llu entries\n\n",
              (unsigned long long)vmm_map.entries());

  // --- Direction (b): host-side enclave attaches guest memory --------------
  os::Process* guest_exporter = guest_os->create_process(64_MiB + kPageSize).value();
  u64 guest_marker = 0x4755455354ull;  // "GUEST"
  XEMEM_ASSERT(guest_os
                   ->proc_write(*guest_exporter, guest_exporter->image_base(),
                                &guest_marker, 8)
                   .ok());
  auto g_segid = co_await vm_k.xpmem_make(*guest_exporter,
                                          guest_exporter->image_base(), 64_MiB);
  auto g_grant = co_await kitten.xpmem_get(g_segid.value());
  os::Process* k_attacher = kitten_os.create_process(1_MiB).value();
  const u64 t1 = sim::now();
  auto g_att = co_await kitten.xpmem_attach(*k_attacher, g_grant.value(), 0, 64_MiB);
  const u64 g_ns = sim::now() - t1;
  XEMEM_ASSERT(g_att.ok());
  std::printf("(b) Kitten attached a 64 MiB guest export:\n");
  std::printf("    attach took %.2f ms => %.2f GB/s (map *lookups* only — "
              "no inserts, so the reverse direction stays fast)\n",
              static_cast<double>(g_ns) / 1e6, gb_per_s(64_MiB, g_ns));
  u64 got2 = 0;
  XEMEM_ASSERT(kitten_os.proc_read(*k_attacher, g_att.value().va, &got2, 8).ok());
  std::printf("    data visible natively: 0x%llx %s\n", (unsigned long long)got2,
              got2 == guest_marker ? "(matches the guest write)" : "(MISMATCH!)");
  XEMEM_ASSERT((co_await kitten.xpmem_detach(*k_attacher, g_att.value())).ok());
}

}  // namespace

int main() {
  sim::Engine engine(3);
  Node node(hw::Machine::r420());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  node.add_cokernel("kitten0", 0, {6, 7}, 256_MiB);
  node.add_vm("vm0", "linux", 256_MiB, {4, 5});
  engine.run(demo(node));
  return 0;
}
