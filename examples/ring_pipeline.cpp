// Ring pipeline: structured event streaming between enclaves.
//
// The paper's in-situ components coordinate through raw polled variables;
// richer notification support is named as future work (section 6.1). This
// example shows that layer: two message rings built *entirely inside
// XEMEM-shared regions* connect a simulation in a Kitten co-kernel with an
// analytics consumer in a Palacios VM —
//
//   data ring: Kitten simulation -> VM analytics (timestep records)
//   ack ring:  VM analytics -> Kitten simulation (steering feedback)
//
// Every ring access on the consumer side traverses the real attachment
// (guest page tables + VMM memory map); the demo streams 2,000 records,
// verifies checksums, and reports throughput and round-trip latency.
//
// Run: ./build/examples/ring_pipeline
#include <cstdio>
#include <cstring>
#include <map>

#include "common/units.hpp"
#include "xemem/ring.hpp"
#include "xemem/system.hpp"

using namespace xemem;

namespace {

struct Record {
  u64 step;
  u64 emitted_at_ns;
  double energy;
  u64 checksum;

  u64 compute_checksum() const {
    return step * 1315423911ull ^ emitted_at_ns ^ static_cast<u64>(energy * 1e6);
  }
};

constexpr int kRecords = 2000;
constexpr u64 kRingBytes = 1ull << 20;
constexpr u32 kSlot = 128;

struct Pipe {
  os::Process* owner;
  Vaddr owner_base;
  Vaddr peer_base;
};

// Peer-side processes by ring name (demo bookkeeping).
std::map<std::string, os::Process*> peer_procs;

// Export a ring region from `owner_enclave` and attach it in `peer_enclave`.
sim::Task<Pipe> wire(Node& node, const std::string& owner_enclave,
                     const std::string& peer_enclave, const std::string& name) {
  Pipe p{};
  p.owner = node.enclave(owner_enclave).create_process(kRingBytes + kPageSize).value();
  p.owner_base = p.owner->image_base();
  auto sid = co_await node.kernel(owner_enclave)
                 .xpmem_make(*p.owner, p.owner_base, kRingBytes, name);
  XEMEM_ASSERT(sid.ok());
  auto found = co_await node.kernel(peer_enclave).xpmem_search(name);
  auto grant = co_await node.kernel(peer_enclave).xpmem_get(found.value());
  os::Process* peer = node.enclave(peer_enclave).create_process(1_MiB).value();
  auto att = co_await node.kernel(peer_enclave)
                 .xpmem_attach(*peer, grant.value(), 0, kRingBytes);
  XEMEM_ASSERT(att.ok());
  co_await node.enclave(peer_enclave)
      .touch_attached(*peer, att.value().va, att.value().pages);
  p.peer_base = att.value().va;
  peer_procs[name] = peer;
  co_return p;
}

sim::Task<void> demo(Node& node) {
  co_await node.start();
  auto data = co_await wire(node, "kitten0", "vm0", "pipeline-data");
  auto acks = co_await wire(node, "vm0", "kitten0", "pipeline-acks");

  auto& kitten = node.enclave("kitten0");
  auto& vm = node.enclave("vm0");

  shm::RingProducer data_tx(kitten, *data.owner, data.owner_base, kRingBytes, kSlot);
  shm::RingConsumer data_rx(vm, *peer_procs["pipeline-data"], data.peer_base,
                            kRingBytes, kSlot);
  shm::RingProducer ack_tx(vm, *acks.owner, acks.owner_base, kRingBytes, kSlot);
  shm::RingConsumer ack_rx(kitten, *peer_procs["pipeline-acks"], acks.peer_base,
                           kRingBytes, kSlot);
  XEMEM_ASSERT(data_tx.init().ok());
  XEMEM_ASSERT(ack_tx.init().ok());

  u64 corrupt = 0;
  double energy_sum = 0;
  sim::Event consumer_done;

  auto analytics = [&]() -> sim::Task<void> {
    for (int i = 0; i < kRecords; ++i) {
      auto msg = co_await data_rx.pop();
      XEMEM_ASSERT(msg.ok());
      Record r{};
      std::memcpy(&r, msg.value().data(), sizeof(r));
      if (r.checksum != r.compute_checksum()) ++corrupt;
      energy_sum += r.energy;
      if ((r.step & 0xff) == 0) {
        // Steering feedback every 256 steps.
        const u64 seen = r.step;
        XEMEM_ASSERT((co_await ack_tx.push(&seen, sizeof(seen))).ok());
      }
    }
    consumer_done.set();
  };
  sim::Engine::current()->spawn(analytics());

  const u64 t0 = sim::now();
  u64 acks_received = 0;
  u64 ack_latency_total = 0;
  for (int i = 0; i < kRecords; ++i) {
    Record r{};
    r.step = static_cast<u64>(i);
    r.emitted_at_ns = sim::now();
    r.energy = 1.0 / (1.0 + static_cast<double>(i));
    r.checksum = r.compute_checksum();
    XEMEM_ASSERT((co_await data_tx.push(&r, sizeof(r))).ok());
    // Drain any steering feedback without blocking the simulation.
    for (;;) {
      auto ack = co_await ack_rx.try_pop();
      XEMEM_ASSERT(ack.ok());
      if (!ack.value().has_value()) break;
      ++acks_received;
      u64 acked_step = 0;
      std::memcpy(&acked_step, ack.value()->data(), sizeof(acked_step));
      ack_latency_total += sim::now() - t0;  // coarse; per-record below
      (void)acked_step;
    }
  }
  co_await consumer_done.wait();
  const double secs = ns_to_s(sim::now() - t0);

  std::printf("streamed %d records Kitten -> VM through a shared-memory ring\n",
              kRecords);
  std::printf("  corrupt records: %llu (checksummed through guest page tables "
              "+ VMM memory map)\n",
              (unsigned long long)corrupt);
  std::printf("  steering acks received: %llu (VM -> Kitten reverse ring)\n",
              (unsigned long long)acks_received);
  std::printf("  mean analytics energy: %.6f\n",
              energy_sum / static_cast<double>(kRecords));
  std::printf("  duration: %.3f ms simulated => %.0f k msgs/s\n", secs * 1e3,
              static_cast<double>(kRecords) / secs / 1e3);
  (void)ack_latency_total;
}

}  // namespace

int main() {
  sim::Engine engine(8);
  Node node(hw::Machine::r420());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  node.add_cokernel("kitten0", 0, {6, 7}, 64_MiB);
  node.add_vm("vm0", "linux", 64_MiB, {4, 5});
  engine.run(demo(node));
  return 0;
}
