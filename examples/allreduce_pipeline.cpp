// Allreduce pipelining: how chunk size trades overlap against overhead.
//
// The collectives subsystem (src/collectives/) moves large payloads in
// chunks: while a consumer reduces chunk k (CPU cost), it has already
// kicked off the fetch of chunk k+1 (socket memory bandwidth), so
// reduction compute hides copy cost. This example runs the same 1 MiB
// allreduce — four ranks across two enclaves, topology-aware
// hierarchical algorithm — under a sweep of chunk sizes and prints the
// resulting latency curve:
//
//   * one chunk == the whole payload: no overlap, fetch then reduce
//     strictly serialize;
//   * very small chunks: full overlap, but a fixed per-chunk control
//     cost (publish word + poll) dominates;
//   * the sweet spot sits in between — the classic pipelining U-curve.
//
// Run: ./build/examples/allreduce_pipeline
#include <cstdio>
#include <vector>

#include "collectives/comm.hpp"
#include "common/units.hpp"
#include "xemem/system.hpp"

using namespace xemem;
using coll::Algo;
using coll::Comm;
using coll::ReduceOp;

namespace {

constexpr u64 kPayload = 1_MiB;
constexpr u64 kElems = kPayload / sizeof(double);
constexpr int kReps = 3;

/// One full run (fresh node, fresh communicator) at @p chunk_bytes;
/// returns the mean allreduce latency in ns.
double run_with_chunk(u64 chunk_bytes) {
  sim::Engine eng(7);
  Node node(hw::Machine::r420());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  node.add_cokernel("kitten", 1, {12, 13, 14, 15}, 1_GiB);
  const std::vector<std::string> placement = {"linux", "linux", "kitten",
                                              "kitten"};

  coll::CollConfig cfg;
  cfg.slot_bytes = kPayload;
  cfg.chunk_bytes = chunk_bytes;
  cfg.poll_interval = 2'000;

  double mean_ns = 0;
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    const u32 n = static_cast<u32>(placement.size());
    std::vector<Comm::Member> members;
    for (u32 r = 0; r < n; ++r) {
      auto& enclave = node.enclave(placement[r]);
      hw::Core* core = enclave.cores()[r % 2];
      auto proc = enclave.create_process(Comm::region_bytes(n, cfg) + kPageSize,
                                         core);
      members.push_back(Comm::Member{&node.kernel(placement[r]), &enclave,
                                     proc.value(), core,
                                     proc.value()->image_base()});
    }

    std::vector<std::unique_ptr<Comm>> comms(n);
    u32 pending = n;
    sim::Event done;
    auto rank_task = [&](u32 r) -> sim::Task<void> {
      auto c = co_await Comm::create(members[r], "pipeline", r, n, cfg);
      XEMEM_ASSERT(c.ok());
      comms[r] = std::move(c).value();
      std::vector<double> in(kElems, 1.0 + r), out(kElems, 0.0);
      for (int i = 0; i < kReps; ++i) {
        XEMEM_ASSERT((co_await comms[r]->allreduce(in.data(), out.data(),
                                                   kElems, ReduceOp::sum,
                                                   Algo::hierarchical))
                         .ok());
        XEMEM_ASSERT(out[0] == 1.0 + 2.0 + 3.0 + 4.0);
      }
      (void)co_await comms[r]->finalize();
      if (--pending == 0) done.set();
    };
    for (u32 r = 0; r < n; ++r) sim::Engine::current()->spawn(rank_task(r));
    co_await done.wait();
    mean_ns =
        comms[0]->stats().of(coll::OpKind::allreduce).latency_ns.mean();
  };
  eng.run(main());
  return mean_ns;
}

}  // namespace

int main() {
  std::printf("1 MiB hierarchical allreduce, 4 ranks / 2 enclaves — chunk-size "
              "sweep\n");
  std::printf("(fetch of chunk k+1 overlaps the reduction of chunk k)\n\n");
  std::printf("%12s %10s %10s\n", "chunk_bytes", "chunks", "us/op");

  double best = 0, whole = 0;
  u64 best_chunk = 0;
  for (u64 chunk : std::vector<u64>{1_MiB, 256_KiB, 64_KiB, 16_KiB, 4_KiB,
                                    1_KiB}) {
    const double ns = run_with_chunk(chunk);
    std::printf("%12llu %10llu %10.1f\n",
                static_cast<unsigned long long>(chunk),
                static_cast<unsigned long long>((kPayload + chunk - 1) / chunk),
                ns / 1e3);
    if (chunk == kPayload) whole = ns;
    if (best == 0 || ns < best) {
      best = ns;
      best_chunk = chunk;
    }
  }

  std::printf("\nbest: %llu-byte chunks — %.1fx faster than the unchunked "
              "transfer\n",
              static_cast<unsigned long long>(best_chunk), whole / best);
  const bool interior = best_chunk != kPayload && best_chunk != 1_KiB;
  std::printf("%s\n", interior
                          ? "the optimum is interior: overlap wins until "
                            "per-chunk overhead takes over"
                          : "note: optimum at sweep edge (cost model shift?)");
  return best < whole ? 0 : 1;
}
