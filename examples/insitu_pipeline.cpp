// In-situ pipeline: a composed HPC-simulation + analytics workload.
//
// Demonstrates the paper's motivating use case (sections 1, 6): an HPCCG
// conjugate-gradient simulation running in an isolated Kitten co-kernel,
// streaming results through XEMEM shared memory to a STREAM analytics
// program in the fullweight Linux enclave. The two components coordinate
// with stop/go signal variables in shared memory, and the example runs the
// same workload under all four workflow combinations (synchronous vs
// asynchronous execution x one-time vs recurring attachment).
//
// Run: ./build/examples/insitu_pipeline
#include <cstdio>

#include "common/units.hpp"
#include "workloads/insitu.hpp"

using namespace xemem;

namespace {

workloads::InsituConfig make_config(bool async, bool recurring) {
  workloads::InsituConfig cfg;
  cfg.iterations = 120;      // scaled-down run (the figure-8 harness uses 600)
  cfg.signal_every = 20;     // 6 communication points
  cfg.region_bytes = 64_MiB;
  cfg.async = async;
  cfg.recurring = recurring;
  cfg.sim_compute_ns = 20_ms;
  cfg.sim_mem_bytes = 128_MiB;
  cfg.stream_passes = 1;
  cfg.grid = 10;
  cfg.stream_elems = 1 << 14;
  cfg.poll_interval = 200_us;
  return cfg;
}

double run_one(bool async, bool recurring) {
  sim::Engine engine(7);
  Node node(hw::Machine::optiplex());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  node.add_cokernel("sim", 0, {4, 5, 6, 7}, 128_MiB);

  double seconds = 0;
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    auto r = co_await workloads::run_insitu(node, "sim", "linux",
                                            make_config(async, recurring));
    seconds = r.sim_seconds;
    std::printf(
        "  %-13s %-10s  sim %.3f s | analytics %.3f s | attaches %u | "
        "CG residual %.2e (solution error %.2e)\n",
        async ? "asynchronous" : "synchronous", recurring ? "recurring" : "one-time",
        r.sim_seconds, r.analytics_seconds, r.attaches_performed, r.residual,
        r.solution_error);
  };
  engine.run(main());
  return seconds;
}

}  // namespace

int main() {
  std::printf("composed in-situ pipeline: HPCCG (Kitten co-kernel) + STREAM "
              "(Linux), coupled via XEMEM\n\n");
  std::printf("workflow combinations (paper section 6.2):\n");
  const double sync_once = run_one(false, false);
  const double async_once = run_one(true, false);
  const double sync_rec = run_one(false, true);
  const double async_rec = run_one(true, true);

  std::printf("\nasynchronous speedup over synchronous (one-time): %.1f%%\n",
              100.0 * (sync_once - async_once) / sync_once);
  std::printf("recurring-attachment overhead (synchronous):       %.1f%%\n",
              100.0 * (sync_rec - sync_once) / sync_once);
  std::printf("recurring-attachment overhead (asynchronous):      %.1f%%  "
              "(hidden by overlap)\n",
              100.0 * (async_rec - async_once) / async_once);
  return 0;
}
