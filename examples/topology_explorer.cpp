// Topology explorer: the paper's Figure 1/2 enclave partitioning.
//
// Builds the exact topology of the paper's running example:
//
//     Linux B (name server)
//      |-- VM C            (Palacios VM on the Linux host)
//      |-- LWK A           (Kitten co-kernel)
//      |-- LWK D           (Kitten co-kernel)
//      |     |-- VM E      (Palacios VM on the Kitten host)
//      |     `-- VM F      (Palacios VM on the Kitten host)
//      `-- LWK G           (Kitten co-kernel)
//
// and demonstrates the section 3.2 routing protocol: every enclave
// discovers the name-server direction by broadcast, obtains a unique
// enclave ID through the hierarchy (LWK D learns VM E/F's routes as the
// allocation responses pass through it), and then two leaf enclaves that
// have *no direct channel* — VM F and VM C — share memory, with commands
// routed F -> D -> B(NS) -> C and the PFN-list response retracing the path.
//
// Run: ./build/examples/topology_explorer
#include <cstdio>

#include "common/units.hpp"
#include "xemem/system.hpp"

using namespace xemem;

namespace {

sim::Task<void> demo(Node& node) {
  co_await node.start();
  std::printf("all enclaves registered with the name server:\n");
  for (const char* name : {"linux-B", "vm-C", "lwk-A", "lwk-D", "vm-E", "vm-F",
                           "lwk-G"}) {
    std::printf("  %-8s -> enclave id %llu\n", name,
                (unsigned long long)node.kernel(name).id().value());
  }
  std::printf("\nrouting tables learned from forwarded traffic:\n");
  std::printf("  name server (linux-B) knows %llu routes\n",
              (unsigned long long)node.kernel("linux-B").known_routes());
  std::printf("  intermediate lwk-D knows %llu routes (VM E and VM F behind it)\n",
              (unsigned long long)node.kernel("lwk-D").known_routes());

  // Cross-enclave sharing between two leaves with no direct channel:
  // VM F exports, VM C attaches. Commands route F->D->B, B forwards to F's
  // owner... here: C->B (name server) ->D->F, and the response retraces.
  auto& f_os = node.enclave("vm-F");
  auto& c_os = node.enclave("vm-C");
  os::Process* exporter = f_os.create_process(8_MiB + kPageSize).value();
  os::Process* attacher = c_os.create_process(2_MiB).value();

  const char msg[] = "routed across the enclave hierarchy";
  XEMEM_ASSERT(f_os.proc_write(*exporter, exporter->image_base(), msg, sizeof(msg))
                   .ok());
  auto segid = co_await node.kernel("vm-F").xpmem_make(
      *exporter, exporter->image_base(), 8_MiB, "figure2-demo");
  std::printf("\nvm-F exported 8 MiB as segid %llu (name 'figure2-demo')\n",
              (unsigned long long)segid.value().value());

  auto found = co_await node.kernel("vm-C").xpmem_search("figure2-demo");
  auto grant = co_await node.kernel("vm-C").xpmem_get(found.value());
  const u64 t0 = sim::now();
  auto att = co_await node.kernel("vm-C").xpmem_attach(*attacher, grant.value(), 0,
                                                       8_MiB);
  XEMEM_ASSERT(att.ok());
  std::printf("vm-C attached it in %.1f us: two VM boundaries and the name "
              "server crossed, application code unchanged\n",
              static_cast<double>(sim::now() - t0) / 1000.0);

  char got[sizeof(msg)] = {};
  XEMEM_ASSERT(c_os.proc_read(*attacher, att.value().va, got, sizeof(got)).ok());
  std::printf("vm-C reads: \"%s\"\n", got);

  XEMEM_ASSERT((co_await node.kernel("vm-C").xpmem_detach(*attacher, att.value()))
                   .ok());
  XEMEM_ASSERT(
      (co_await node.kernel("vm-F").xpmem_remove(*exporter, segid.value())).ok());
  std::printf("teardown leak check: %llu pinned frames outstanding\n",
              (unsigned long long)node.machine().pmem().total_refs());
}

}  // namespace

int main() {
  sim::Engine engine(2);
  Node node(hw::Machine::r420());
  // Figure 1's partitioning on the dual-socket R420.
  node.add_linux_mgmt("linux-B", 0, {0, 1, 2, 3});
  node.add_vm("vm-C", "linux-B", 256_MiB, {4, 5});
  node.add_cokernel("lwk-A", 0, {6, 7}, 128_MiB);
  node.add_cokernel("lwk-D", 1, {12, 13, 14, 15}, 1_GiB);
  node.add_vm("vm-E", "lwk-D", 128_MiB, {14});
  node.add_vm("vm-F", "lwk-D", 128_MiB, {15});
  node.add_cokernel("lwk-G", 1, {16, 17}, 128_MiB);
  engine.run(demo(node));
  return 0;
}
