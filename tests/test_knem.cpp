// Tests for the KNEM-style single-copy baseline.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "os/knem.hpp"
#include "os/linux.hpp"

#define CO_ASSERT_TRUE(x)                            \
  do {                                               \
    if (!(x)) {                                      \
      ADD_FAILURE() << "CO_ASSERT_TRUE failed: " #x; \
      co_return;                                     \
    }                                                \
  } while (0)

namespace xemem::os {
namespace {

struct KnemRig {
  hw::Machine machine{hw::Machine::r420()};
  sim::Engine eng{4};
  LinuxEnclave linux_os{"linux",           machine,
                        machine.zone(0),   machine.socket_bw(0),
                        {&machine.core(0), &machine.core(1)},
                        &machine.core(0)};
  KnemService knem{linux_os};
};

TEST(Knem, SingleCopyMovesRealData) {
  KnemRig rig;
  auto run = [&]() -> sim::Task<void> {
    Process* src = rig.linux_os.create_process(1_MiB).value();
    Process* dst = rig.linux_os.create_process(1_MiB).value();
    std::vector<u8> pattern(64 * 1024);
    for (size_t i = 0; i < pattern.size(); ++i) pattern[i] = static_cast<u8>(i * 31);
    CO_ASSERT_TRUE(rig.linux_os
                       .proc_write(*src, src->image_base(), pattern.data(),
                                   pattern.size())
                       .ok());
    auto cookie = rig.knem.declare(*src, src->image_base(), 1_MiB);
    CO_ASSERT_TRUE(cookie.ok());
    auto cp = co_await rig.knem.copy_from(cookie.value(), 0, pattern.size(), *dst,
                                          dst->image_base());
    CO_ASSERT_TRUE(cp.ok());
    std::vector<u8> got(pattern.size());
    CO_ASSERT_TRUE(
        rig.linux_os.proc_read(*dst, dst->image_base(), got.data(), got.size()).ok());
    EXPECT_EQ(got, pattern);
  };
  rig.eng.run(run());
}

TEST(Knem, CopyToWritesIntoDeclaredRegion) {
  KnemRig rig;
  auto run = [&]() -> sim::Task<void> {
    Process* owner = rig.linux_os.create_process(1_MiB).value();
    Process* peer = rig.linux_os.create_process(1_MiB).value();
    const u64 marker = 0x6b6e656dull;  // "knem"
    CO_ASSERT_TRUE(
        rig.linux_os.proc_write(*peer, peer->image_base(), &marker, 8).ok());
    auto cookie = rig.knem.declare(*owner, owner->image_base(), 1_MiB);
    auto cp = co_await rig.knem.copy_to(cookie.value(), 4096, 8, *peer,
                                        peer->image_base());
    CO_ASSERT_TRUE(cp.ok());
    u64 got = 0;
    CO_ASSERT_TRUE(
        rig.linux_os.proc_read(*owner, owner->image_base() + 4096, &got, 8).ok());
    EXPECT_EQ(got, marker);
  };
  rig.eng.run(run());
}

TEST(Knem, CopyCostScalesWithBytes) {
  KnemRig rig;
  auto run = [&]() -> sim::Task<void> {
    Process* src = rig.linux_os.create_process(64_MiB).value();
    Process* dst = rig.linux_os.create_process(64_MiB).value();
    auto cookie = rig.knem.declare(*src, src->image_base(), 64_MiB);
    const u64 t0 = sim::now();
    CO_ASSERT_TRUE((co_await rig.knem.copy_from(cookie.value(), 0, 1_MiB, *dst,
                                                dst->image_base()))
                       .ok());
    const u64 small = sim::now() - t0;
    const u64 t1 = sim::now();
    CO_ASSERT_TRUE((co_await rig.knem.copy_from(cookie.value(), 0, 32_MiB, *dst,
                                                dst->image_base()))
                       .ok());
    const u64 big = sim::now() - t1;
    EXPECT_GT(big, 20 * small) << "cost per copy is linear in bytes";
  };
  rig.eng.run(run());
}

TEST(Knem, ErrorPaths) {
  KnemRig rig;
  auto run = [&]() -> sim::Task<void> {
    Process* p = rig.linux_os.create_process(1_MiB).value();
    // Misaligned / unmapped declarations rejected.
    EXPECT_FALSE(rig.knem.declare(*p, p->image_base() + 3, 4096).ok());
    EXPECT_FALSE(rig.knem.declare(*p, Vaddr{0xdead000}, 4096).ok());
    // Out-of-range copy rejected; unknown cookie rejected.
    auto cookie = rig.knem.declare(*p, p->image_base(), 64 * kPageSize);
    CO_ASSERT_TRUE(cookie.ok());
    auto bad = co_await rig.knem.copy_from(cookie.value(), 60 * kPageSize,
                                           8 * kPageSize, *p, p->image_base());
    EXPECT_EQ(bad.error(), Errc::invalid_argument);
    auto unknown = co_await rig.knem.copy_from(999, 0, 8, *p, p->image_base());
    EXPECT_EQ(unknown.error(), Errc::not_attached);
    // Undeclare.
    EXPECT_TRUE(rig.knem.undeclare(cookie.value()).ok());
    EXPECT_FALSE(rig.knem.undeclare(cookie.value()).ok());
  };
  rig.eng.run(run());
}

}  // namespace
}  // namespace xemem::os
