// Tests for 2 MiB large-page support: page-table mechanics (map/lookup/
// unmap/translate, mixed granularity), aligned frame allocation, and the
// Kitten large-page mode end to end through a full XEMEM attachment.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "mm/page_table.hpp"
#include "xemem/system.hpp"

#define CO_ASSERT_TRUE(x)                            \
  do {                                               \
    if (!(x)) {                                      \
      ADD_FAILURE() << "CO_ASSERT_TRUE failed: " #x; \
      co_return;                                     \
    }                                                \
  } while (0)

namespace xemem {
namespace {

constexpr u64 kSpan = mm::PageTable::kLargeSpan;
constexpr u64 kLargeBytes = kSpan * kPageSize;

// ------------------------------------------------------------- page table

TEST(LargePages, MapLargeResolvesEveryContainedPage) {
  mm::PageTable pt;
  ASSERT_TRUE(pt.map_large(Vaddr{4 * kLargeBytes}, Pfn{kSpan * 7},
                           mm::PageFlags::writable)
                  .ok());
  EXPECT_EQ(pt.mapped_pages(), kSpan);
  EXPECT_EQ(pt.large_mappings(), 1u);
  for (u64 i : {u64{0}, u64{1}, u64{255}, kSpan - 1}) {
    auto v = pt.lookup(Vaddr{4 * kLargeBytes + i * kPageSize});
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(v->large);
    EXPECT_EQ(v->pfn, Pfn{kSpan * 7 + i});
  }
  EXPECT_FALSE(pt.lookup(Vaddr{5 * kLargeBytes}).has_value());
}

TEST(LargePages, AlignmentRequirementsEnforced) {
  mm::PageTable pt;
  EXPECT_FALSE(pt.map_large(Vaddr{kPageSize}, Pfn{kSpan}, mm::PageFlags::none).ok());
  EXPECT_FALSE(pt.map_large(Vaddr{kLargeBytes}, Pfn{3}, mm::PageFlags::none).ok());
}

TEST(LargePages, ConflictsWithSmallMappingsRejected) {
  mm::PageTable pt;
  // 4 KiB page inside the window blocks a large mapping...
  ASSERT_TRUE(pt.map(Vaddr{2 * kLargeBytes + kPageSize}, Pfn{9},
                     mm::PageFlags::none)
                  .ok());
  EXPECT_EQ(pt.map_large(Vaddr{2 * kLargeBytes}, Pfn{kSpan}, mm::PageFlags::none)
                .error(),
            Errc::already_exists);
  // ...and a large mapping blocks 4 KiB maps inside its window.
  ASSERT_TRUE(pt.map_large(Vaddr{8 * kLargeBytes}, Pfn{kSpan * 2},
                           mm::PageFlags::none)
                  .ok());
  EXPECT_EQ(
      pt.map(Vaddr{8 * kLargeBytes + 3 * kPageSize}, Pfn{11}, mm::PageFlags::none)
          .error(),
      Errc::already_exists);
  // Small unmap inside a large mapping is rejected (use unmap_large).
  EXPECT_FALSE(pt.unmap(Vaddr{8 * kLargeBytes}).ok());
  ASSERT_TRUE(pt.unmap_large(Vaddr{8 * kLargeBytes}).ok());
  EXPECT_EQ(pt.large_mappings(), 0u);
}

TEST(LargePages, TranslateRangeCollapsesWalkWork) {
  mm::PageTable pt;
  // 16 MiB as large pages vs as 4 KiB pages: compare walk work.
  for (u64 i = 0; i < 8; ++i) {
    ASSERT_TRUE(pt.map_large(Vaddr{i * kLargeBytes}, Pfn{i * kSpan},
                             mm::PageFlags::none)
                    .ok());
  }
  mm::WalkStats large_walk;
  auto big = pt.translate_range(Vaddr{0}, 8 * kSpan, &large_walk);
  ASSERT_TRUE(big.ok());
  ASSERT_EQ(big.value().size(), 8 * kSpan);
  for (u64 i = 0; i < 8 * kSpan; ++i) EXPECT_EQ(big.value()[i], Pfn{i});

  mm::PageTable small;
  std::vector<Pfn> pfns;
  for (u64 i = 0; i < 8 * kSpan; ++i) pfns.push_back(Pfn{i});
  ASSERT_TRUE(small.map_range(Vaddr{0}, pfns, mm::PageFlags::none).ok());
  mm::WalkStats small_walk;
  ASSERT_TRUE(small.translate_range(Vaddr{0}, 8 * kSpan, &small_walk).ok());

  EXPECT_LT(large_walk.entries_visited * 100, small_walk.entries_visited)
      << "large-page walks must be orders of magnitude cheaper";
}

TEST(LargePages, MapRangeBestMixesGranularities) {
  mm::PageTable pt;
  // Aligned contiguous run + a scattered tail.
  std::vector<Pfn> pfns;
  for (u64 i = 0; i < kSpan; ++i) pfns.push_back(Pfn{kSpan * 4 + i});  // large-able
  for (u64 i = 0; i < 10; ++i) pfns.push_back(Pfn{99000 + i * 2});     // scattered
  ASSERT_TRUE(pt.map_range_best(Vaddr{0}, pfns, mm::PageFlags::writable).ok());
  EXPECT_EQ(pt.large_mappings(), 1u);
  EXPECT_EQ(pt.mapped_pages(), kSpan + 10);
  auto all = pt.translate_range(Vaddr{0}, kSpan + 10);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), pfns);
  ASSERT_TRUE(pt.unmap_range(Vaddr{0}, kSpan + 10).ok());
  EXPECT_EQ(pt.mapped_pages(), 0u);
  EXPECT_LE(pt.table_nodes(), 1u);
}

// ------------------------------------------------------------ frame zones

TEST(LargePages, AlignedAllocationRespectsAlignment) {
  hw::FrameZone z(Pfn{3}, 8192);  // deliberately misaligned base
  auto a = z.alloc_contiguous_aligned(1024, 512);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().start.value() % 512, 0u);
  EXPECT_EQ(a.value().count, 1024u);
  // The skipped head is still allocatable.
  auto b = z.alloc(509, hw::AllocPolicy::contiguous);
  ASSERT_TRUE(b.ok());
  z.free(a.value());
  for (auto e : b.value()) z.free(e);
  EXPECT_EQ(z.free_frames(), 8192u);
}

TEST(LargePages, AlignedAllocationFailsWhenFragmented) {
  hw::FrameZone z(Pfn{0}, 1024);
  auto a = z.alloc(1000, hw::AllocPolicy::contiguous).value()[0];
  EXPECT_FALSE(z.alloc_contiguous_aligned(512, 512).ok());
  z.free(a);
  EXPECT_TRUE(z.alloc_contiguous_aligned(512, 512).ok());
}

// ------------------------------------------------- end-to-end via XEMEM

TEST(LargePages, KittenLargePageExportAttachesCorrectly) {
  sim::Engine eng(7);
  Node node(hw::Machine::r420());
  auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& ckk = node.add_cokernel("ck", 0, {6, 7}, 512_MiB);
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    auto* ck = static_cast<os::KittenEnclave*>(&node.enclave("ck"));
    ck->set_large_pages(true);
    os::Process* p = ck->create_process(64_MiB).value();
    EXPECT_EQ(p->pt().large_mappings(), 32u) << "64 MiB = 32 large pages";

    const u64 marker = 0x2a2a2a;
    CO_ASSERT_TRUE(
        ck->proc_write(*p, p->image_base() + 5 * kPageSize, &marker, 8).ok());

    auto sid = co_await ckk.xpmem_make(*p, p->image_base(), 64_MiB);
    CO_ASSERT_TRUE(sid.ok());
    auto grant = co_await mgmt.xpmem_get(sid.value());
    os::Process* u = node.enclave("linux").create_process(1_MiB).value();
    auto att = co_await mgmt.xpmem_attach(*u, grant.value(), 0, 64_MiB);
    CO_ASSERT_TRUE(att.ok());
    u64 got = 0;
    CO_ASSERT_TRUE(node.enclave("linux")
                       .proc_read(*u, att.value().va + 5 * kPageSize, &got, 8)
                       .ok());
    EXPECT_EQ(got, marker);
    CO_ASSERT_TRUE((co_await mgmt.xpmem_detach(*u, att.value())).ok());
    EXPECT_EQ(node.machine().pmem().total_refs(), 0u);
  };
  eng.run(main());
}

TEST(LargePages, ExportWalkIsMuchFasterWithLargePages) {
  auto attach_time = [](bool large) -> u64 {
    sim::Engine eng(8);
    Node node(hw::Machine::r420());
    auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
    auto& ckk = node.add_cokernel("ck", 0, {6, 7}, 512_MiB);
    u64 out = 0;
    auto main = [&]() -> sim::Task<void> {
      co_await node.start();
      auto* ck = static_cast<os::KittenEnclave*>(&node.enclave("ck"));
      ck->set_large_pages(large);
      os::Process* p = ck->create_process(256_MiB).value();
      auto sid = co_await ckk.xpmem_make(*p, p->image_base(), 256_MiB);
      auto grant = co_await mgmt.xpmem_get(sid.value());
      os::Process* u = node.enclave("linux").create_process(1_MiB).value();
      const u64 t0 = sim::now();
      auto att = co_await mgmt.xpmem_attach(*u, grant.value(), 0, 256_MiB);
      out = sim::now() - t0;
      XEMEM_ASSERT(att.ok());
    };
    eng.run(main());
    return out;
  };
  const u64 small = attach_time(false);
  const u64 large = attach_time(true);
  // Only the exporter-side walk shrinks (the Linux attacher still maps
  // 4 KiB pages), which is roughly the walk share of the total.
  EXPECT_LT(large, small * 80 / 100)
      << "large-page exports must cut the attach path by the walk share";
}

}  // namespace
}  // namespace xemem
