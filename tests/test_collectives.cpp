// Tests for the cross-enclave collective operations subsystem: every
// operation in both algorithms (flat and topology-aware hierarchical)
// across three topologies — single enclave, three native enclaves, and a
// mixed Linux/Kitten/VM composition — plus rooted-variant coverage,
// algorithm interleaving on one communicator, tuning-table resolution,
// and the member-crash failure path (a collective over a crashed enclave
// must fail with a status within the configured timeout, not hang).
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "collectives/comm.hpp"
#include "common/units.hpp"
#include "xemem/system.hpp"

#define CO_ASSERT_TRUE(x)                            \
  do {                                               \
    if (!(x)) {                                      \
      ADD_FAILURE() << "CO_ASSERT_TRUE failed: " #x; \
      co_return;                                     \
    }                                                \
  } while (0)

namespace xemem {
namespace {

using coll::Algo;
using coll::Comm;
using coll::OpKind;
using coll::ReduceOp;

/// One rank's placement: which enclave it runs in.
struct CollFixture {
  sim::Engine eng{23};
  Node node{hw::Machine::r420()};
  coll::CollConfig cfg;
  std::vector<Comm::Member> members;  // per rank, filled by setup()

  CollFixture() {
    // Small slots keep the test regions compact while 24 KiB payloads
    // still span multiple pipeline chunks.
    cfg.slot_bytes = 32_KiB;
    cfg.chunk_bytes = 8_KiB;
  }

  /// Three native enclaves: ranks interleave 2+2+2.
  std::vector<std::string> topo_three_enclaves() {
    node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
    node.add_cokernel("ck0", 0, {6, 7}, 128_MiB);
    node.add_cokernel("ck1", 1, {12, 13}, 128_MiB);
    return {"linux", "linux", "ck0", "ck0", "ck1", "ck1"};
  }

  /// One enclave, four ranks (no cross-enclave structure).
  std::vector<std::string> topo_single_enclave() {
    node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
    return {"linux", "linux", "linux", "linux"};
  }

  /// Mixed personalities: Linux + Kitten co-kernel + guest-Linux VM.
  std::vector<std::string> topo_mixed_vm() {
    node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
    node.add_cokernel("ck", 1, {12, 13}, 128_MiB);
    node.add_vm("vm", "linux", 128_MiB, {4, 5});
    return {"linux", "linux", "ck", "ck", "vm"};
  }

  /// Boot the node and create one process per rank, pinned round-robin
  /// over its enclave's cores so concurrent ranks overlap like real ones.
  sim::Task<void> setup(std::vector<std::string> placement) {
    co_await node.start();
    const u32 n = static_cast<u32>(placement.size());
    std::map<std::string, u32> next_core;
    for (u32 r = 0; r < n; ++r) {
      const std::string& e = placement[r];
      auto& enclave = node.enclave(e);
      hw::Core* core =
          enclave.cores()[next_core[e]++ % enclave.cores().size()];
      auto proc = enclave.create_process(
          Comm::region_bytes(n, cfg) + kPageSize, core);
      XEMEM_ASSERT(proc.ok());
      members.push_back(Comm::Member{&node.kernel(e), &enclave, proc.value(),
                                     core, proc.value()->image_base()});
    }
  }

  /// Run @p body once per rank, concurrently; joins all ranks.
  sim::Task<void> run_ranks(std::function<sim::Task<void>(u32)> body) {
    const u32 n = static_cast<u32>(members.size());
    u32 pending = n;
    sim::Event all_done;
    auto wrap = [&](u32 r) -> sim::Task<void> {
      co_await body(r);
      if (--pending == 0) all_done.set();
    };
    for (u32 r = 0; r < n; ++r) sim::Engine::current()->spawn(wrap(r));
    co_await all_done.wait();
  }

  /// Collectively create one communicator per rank.
  sim::Task<void> make_comms(std::vector<std::unique_ptr<Comm>>* comms,
                             const std::string& name) {
    comms->resize(members.size());
    co_await run_ranks([&](u32 r) -> sim::Task<void> {
      auto c = co_await Comm::create(members[r], name, r,
                                     static_cast<u32>(members.size()), cfg);
      CO_ASSERT_TRUE(c.ok());
      (*comms)[r] = std::move(c).value();
    });
  }

  sim::Task<void> finalize_comms(std::vector<std::unique_ptr<Comm>>* comms) {
    co_await run_ranks([&](u32 r) -> sim::Task<void> {
      if ((*comms)[r]) (void)co_await (*comms)[r]->finalize();
    });
  }
};

/// Exercise every operation once with @p algo and verify the data each
/// rank ends up with. Payloads span several chunks.
sim::Task<void> exercise_all_ops(CollFixture& f,
                                 std::vector<std::unique_ptr<Comm>>& comms,
                                 Algo algo, u32 root) {
  const u32 n = static_cast<u32>(comms.size());
  constexpr u64 kElems = 3072;  // 24 KiB of doubles = 3 chunks at 8 KiB

  co_await f.run_ranks([&](u32 r) -> sim::Task<void> {
    Comm& c = *comms[r];

    CO_ASSERT_TRUE((co_await c.barrier(algo)).ok());

    // bcast: root's pattern reaches everyone.
    std::vector<double> buf(kElems, -1.0);
    if (r == root) {
      for (u64 i = 0; i < kElems; ++i) buf[i] = 1000.0 * root + double(i % 97);
    }
    CO_ASSERT_TRUE(
        (co_await c.bcast(buf.data(), kElems * sizeof(double), root, algo)).ok());
    for (u64 i = 0; i < kElems; ++i) {
      CO_ASSERT_TRUE(buf[i] == 1000.0 * root + double(i % 97));
    }

    // reduce(sum): rank r contributes r + i%13; only the root gets the sum.
    std::vector<double> in(kElems), out(kElems, 0.0);
    for (u64 i = 0; i < kElems; ++i) in[i] = double(r) + double(i % 13);
    CO_ASSERT_TRUE(
        (co_await c.reduce(in.data(), out.data(), kElems, root, ReduceOp::sum,
                           algo))
            .ok());
    if (r == root) {
      const double rank_sum = double(n) * double(n - 1) / 2.0;
      for (u64 i = 0; i < kElems; ++i) {
        CO_ASSERT_TRUE(out[i] == rank_sum + double(n) * double(i % 13));
      }
    }

    // allreduce(max): everyone gets the max contribution.
    for (u64 i = 0; i < kElems; ++i) in[i] = double(r) - double(i % 7);
    CO_ASSERT_TRUE(
        (co_await c.allreduce(in.data(), out.data(), kElems, ReduceOp::max, algo))
            .ok());
    for (u64 i = 0; i < kElems; ++i) {
      CO_ASSERT_TRUE(out[i] == double(n - 1) - double(i % 7));
    }

    // allgather: rank blocks land at their rank positions.
    constexpr u64 kPer = 512;  // doubles per rank: 4 KiB blocks
    std::vector<double> mine(kPer), all(kPer * n, -1.0);
    for (u64 i = 0; i < kPer; ++i) mine[i] = 100.0 * r + double(i % 11);
    CO_ASSERT_TRUE(
        (co_await c.allgather(mine.data(), kPer * sizeof(double), all.data(),
                              algo))
            .ok());
    for (u32 src = 0; src < n; ++src) {
      for (u64 i = 0; i < kPer; ++i) {
        CO_ASSERT_TRUE(all[src * kPer + i] == 100.0 * src + double(i % 11));
      }
    }
  });
}

TEST(Collectives, FlatAllOpsSingleEnclave) {
  CollFixture f;
  auto placement = f.topo_single_enclave();
  auto main = [&]() -> sim::Task<void> {
    co_await f.setup(placement);
    std::vector<std::unique_ptr<Comm>> comms;
    co_await f.make_comms(&comms, "flat_single");
    CO_ASSERT_TRUE(comms[0] != nullptr);
    EXPECT_EQ(comms[0]->enclave_count(), 1u);
    co_await exercise_all_ops(f, comms, Algo::flat, /*root=*/2);
    co_await f.finalize_comms(&comms);
  };
  f.eng.run(main());
}

TEST(Collectives, HierAllOpsSingleEnclave) {
  // Hierarchical degenerates to one group (leader = rank 0) but must
  // still produce correct results when forced.
  CollFixture f;
  auto placement = f.topo_single_enclave();
  auto main = [&]() -> sim::Task<void> {
    co_await f.setup(placement);
    std::vector<std::unique_ptr<Comm>> comms;
    co_await f.make_comms(&comms, "hier_single");
    co_await exercise_all_ops(f, comms, Algo::hierarchical, /*root=*/1);
    co_await f.finalize_comms(&comms);
  };
  f.eng.run(main());
}

TEST(Collectives, FlatAllOpsThreeEnclaves) {
  CollFixture f;
  auto placement = f.topo_three_enclaves();
  auto main = [&]() -> sim::Task<void> {
    co_await f.setup(placement);
    std::vector<std::unique_ptr<Comm>> comms;
    co_await f.make_comms(&comms, "flat_three");
    EXPECT_EQ(comms[0]->enclave_count(), 3u);
    co_await exercise_all_ops(f, comms, Algo::flat, /*root=*/0);
    co_await f.finalize_comms(&comms);
  };
  f.eng.run(main());
}

TEST(Collectives, HierAllOpsThreeEnclaves) {
  CollFixture f;
  auto placement = f.topo_three_enclaves();
  auto main = [&]() -> sim::Task<void> {
    co_await f.setup(placement);
    std::vector<std::unique_ptr<Comm>> comms;
    co_await f.make_comms(&comms, "hier_three");
    // Topology derived from the member table: {0,1} linux, {2,3} ck0,
    // {4,5} ck1; lowest rank of each enclave leads.
    EXPECT_EQ(comms[0]->enclave_count(), 3u);
    EXPECT_TRUE(comms[0]->is_leader());
    EXPECT_FALSE(comms[1]->is_leader());
    EXPECT_TRUE(comms[2]->is_leader());
    EXPECT_TRUE(comms[4]->is_leader());
    EXPECT_EQ(comms[3]->group_ranks(), (std::vector<u32>{2, 3}));
    // Bootstrap accounting: rank 0 exports the control segment, non-root
    // leaders attach it across an enclave boundary and export their local
    // segment; members attach both.
    EXPECT_EQ(comms[0]->stats().exports, 2u);
    EXPECT_EQ(comms[2]->stats().exports, 1u);
    EXPECT_GE(comms[2]->stats().cross_attaches, 1u);
    EXPECT_EQ(comms[3]->stats().attaches, 2u);
    // Root at a non-leader rank exercises the intra seed/hop phases.
    co_await exercise_all_ops(f, comms, Algo::hierarchical, /*root=*/3);
    co_await f.finalize_comms(&comms);
  };
  f.eng.run(main());
}

TEST(Collectives, FlatAndHierOpsMixedVmTopology) {
  CollFixture f;
  auto placement = f.topo_mixed_vm();
  auto main = [&]() -> sim::Task<void> {
    co_await f.setup(placement);
    std::vector<std::unique_ptr<Comm>> comms;
    co_await f.make_comms(&comms, "mixed_vm");
    EXPECT_EQ(comms[0]->enclave_count(), 3u);
    EXPECT_TRUE(comms[4]->is_leader());  // the VM rank is alone => leads
    co_await exercise_all_ops(f, comms, Algo::flat, /*root=*/4);
    co_await exercise_all_ops(f, comms, Algo::hierarchical, /*root=*/1);
    co_await f.finalize_comms(&comms);
  };
  f.eng.run(main());
}

TEST(Collectives, InterleavedAlgorithmsShareOneSequenceSpace) {
  // Alternating flat and hierarchical operations on the same communicator
  // must not confuse the stamping protocol: both algorithm families burn
  // sequence numbers from the same counter.
  CollFixture f;
  auto placement = f.topo_three_enclaves();
  auto main = [&]() -> sim::Task<void> {
    co_await f.setup(placement);
    std::vector<std::unique_ptr<Comm>> comms;
    co_await f.make_comms(&comms, "interleave");
    const u32 n = static_cast<u32>(comms.size());
    co_await f.run_ranks([&](u32 r) -> sim::Task<void> {
      Comm& c = *comms[r];
      for (u32 round = 0; round < 3; ++round) {
        const Algo first = round % 2 == 0 ? Algo::flat : Algo::hierarchical;
        const Algo second = round % 2 == 0 ? Algo::hierarchical : Algo::flat;
        CO_ASSERT_TRUE((co_await c.barrier(first)).ok());
        double in = double(r + 1) * (round + 1);
        double out = 0;
        CO_ASSERT_TRUE(
            (co_await c.allreduce(&in, &out, 1, ReduceOp::sum, second)).ok());
        const double want = double(n) * double(n + 1) / 2.0 * (round + 1);
        CO_ASSERT_TRUE(out == want);
        double token = r == 1 ? 42.0 + round : 0.0;
        CO_ASSERT_TRUE(
            (co_await c.bcast(&token, sizeof(double), 1, first)).ok());
        CO_ASSERT_TRUE(token == 42.0 + round);
      }
      const auto& st = c.stats();
      EXPECT_EQ(st.of(OpKind::barrier).ops, 3u);
      EXPECT_EQ(st.of(OpKind::allreduce).ops, 3u);
      EXPECT_EQ(st.of(OpKind::bcast).ops, 3u);
      EXPECT_EQ(st.of(OpKind::barrier).failures, 0u);
      EXPECT_GT(st.of(OpKind::allreduce).latency_ns.mean(), 0.0);
    });
    co_await f.finalize_comms(&comms);
  };
  f.eng.run(main());
}

TEST(Collectives, AutomaticSelectionFollowsTuningTable) {
  CollFixture f;
  auto placement = f.topo_three_enclaves();
  auto main = [&]() -> sim::Task<void> {
    co_await f.setup(placement);
    std::vector<std::unique_ptr<Comm>> comms;
    co_await f.make_comms(&comms, "tuning");
    Comm& c = *comms[0];
    // 6 ranks over 3 enclaves: large reductions go hierarchical, tiny
    // ones and allgather stay flat, barriers stay flat below 16 ranks.
    EXPECT_EQ(c.resolve(OpKind::allreduce, 64_KiB, Algo::automatic),
              Algo::hierarchical);
    EXPECT_EQ(c.resolve(OpKind::reduce, 16_KiB, Algo::automatic),
              Algo::hierarchical);
    EXPECT_EQ(c.resolve(OpKind::allreduce, 8, Algo::automatic), Algo::flat);
    EXPECT_EQ(c.resolve(OpKind::barrier, 0, Algo::automatic), Algo::flat);
    EXPECT_EQ(c.resolve(OpKind::allgather, 64_KiB, Algo::automatic), Algo::flat);
    EXPECT_EQ(c.resolve(OpKind::bcast, 64_KiB, Algo::automatic),
              Algo::hierarchical);
    // Explicit override always wins.
    EXPECT_EQ(c.resolve(OpKind::allreduce, 64_KiB, Algo::flat), Algo::flat);
    // Ops with `automatic` must succeed end-to-end too.
    co_await f.run_ranks([&](u32 r) -> sim::Task<void> {
      std::vector<double> in(2048, double(r)), out(2048);
      CO_ASSERT_TRUE(
          (co_await comms[r]->allreduce(in.data(), out.data(), 2048)).ok());
      CO_ASSERT_TRUE(out[0] == 15.0);  // 0+1+..+5
    });
    co_await f.finalize_comms(&comms);
  };
  f.eng.run(main());
}

TEST(Collectives, PayloadLargerThanSlotRejected) {
  CollFixture f;
  auto placement = f.topo_single_enclave();
  auto main = [&]() -> sim::Task<void> {
    co_await f.setup(placement);
    std::vector<std::unique_ptr<Comm>> comms;
    co_await f.make_comms(&comms, "toolarge");
    co_await f.run_ranks([&](u32 r) -> sim::Task<void> {
      std::vector<double> buf(f.cfg.slot_bytes / sizeof(double) + 1, 1.0);
      auto res = co_await comms[r]->bcast(buf.data(),
                                          buf.size() * sizeof(double), 0);
      CO_ASSERT_TRUE(res.error() == Errc::invalid_argument);
      // The rejection is symmetric (every rank checks the same bound), so
      // the communicator stays healthy for well-sized ops.
      CO_ASSERT_TRUE((co_await comms[r]->barrier()).ok());
    });
    co_await f.finalize_comms(&comms);
  };
  f.eng.run(main());
}

TEST(Collectives, MemberCrashFailsCollectiveWithinTimeout) {
  CollFixture f;
  f.cfg.timeout = 50_ms;  // short detection bound keeps the test tight
  auto placement = f.topo_three_enclaves();
  auto main = [&]() -> sim::Task<void> {
    co_await f.setup(placement);
    std::vector<std::unique_ptr<Comm>> comms;
    co_await f.make_comms(&comms, "crashy");
    // A healthy round first.
    co_await f.run_ranks([&](u32 r) -> sim::Task<void> {
      CO_ASSERT_TRUE((co_await comms[r]->barrier()).ok());
    });

    // Kill ck1 (ranks 4 and 5). Survivors cannot observe the death
    // directly — their next collective must time out, post a status, and
    // return unreachable within the configured bound.
    f.node.kernel("ck1").crash();
    const sim::TimePoint t0 = sim::now();
    u32 pending = 4;
    sim::Event all_done;
    auto survivor = [&](u32 r) -> sim::Task<void> {
      double in = 1.0, out = 0.0;
      auto res = co_await comms[r]->allreduce(&in, &out, 1);
      EXPECT_FALSE(res.ok());
      EXPECT_EQ(res.error(), Errc::unreachable);
      if (--pending == 0) all_done.set();
    };
    for (u32 r = 0; r < 4; ++r) sim::Engine::current()->spawn(survivor(r));
    co_await all_done.wait();
    // Detection latency: timeout plus one poll of slack per phase.
    EXPECT_LE(sim::now() - t0, 50_ms + 1_ms);

    // The failure is sticky: later operations fail fast without waiting.
    const sim::TimePoint t1 = sim::now();
    for (u32 r = 0; r < 4; ++r) {
      auto res = co_await comms[r]->barrier();
      EXPECT_FALSE(res.ok());
      EXPECT_NE(comms[r]->status(), Errc::ok);
      EXPECT_GE(comms[r]->stats().of(OpKind::barrier).failures, 1u);
    }
    EXPECT_LE(sim::now() - t1, 1_ms);
    // Best-effort teardown of the survivors must terminate (bounded busy
    // retries even though the dead ranks never detach).
    for (u32 r = 0; r < 4; ++r) (void)co_await comms[r]->finalize();
  };
  f.eng.run(main());
}

KernelConfig coll_cap_config() {
  KernelConfig cfg;
  cfg.request_timeout = 1_ms;
  cfg.max_retries = 3;
  cfg.backoff_base = 100_us;
  cfg.backoff_max = 400_us;
  cfg.enable_capabilities();
  return cfg;
}

TEST(Collectives, BootstrapOverRevokedControlSegmentFailsFast) {
  // Capability model (DESIGN.md §9): revocation of the control segment's
  // root capability while members are still joining must fail their
  // bootstrap with the terminal revoked status immediately — not spin the
  // search/get/attach retry loop until the bootstrap deadline.
  CollFixture f;
  f.node.set_kernel_config(coll_cap_config());
  f.cfg.timeout = 30_ms;
  f.cfg.bootstrap_timeout = 20_ms;
  auto placement = f.topo_three_enclaves();
  auto main = [&]() -> sim::Task<void> {
    co_await f.setup(placement);
    const u32 n = static_cast<u32>(f.members.size());

    // Rank 0 starts alone: it exports the control segment, then blocks
    // waiting for the member table (and will time out — nobody else ever
    // finishes joining).
    bool rank0_ok = false;
    sim::Event rank0_done;
    auto rank0 = [&]() -> sim::Task<void> {
      auto c = co_await Comm::create(f.members[0], "revoked_boot", 0, n, f.cfg);
      rank0_ok = c.ok();
      rank0_done.set();
    };
    sim::Engine::current()->spawn(rank0());

    // Wait until the export is discoverable, then revoke its root
    // capability (cutting off classic capless access too).
    XememKernel* owner = f.members[0].kernel;
    Result<Segid> sid{Errc::unreachable};
    for (int i = 0; i < 200 && !sid.ok(); ++i) {
      sid = co_await f.members[1].kernel->xpmem_search("revoked_boot");
      if (!sid.ok()) co_await sim::delay(100_us);
    }
    CO_ASSERT_TRUE(sid.ok());
    auto root = owner->cap_root(sid.value());
    CO_ASSERT_TRUE(root.ok());
    CO_ASSERT_TRUE((co_await owner->cap_revoke(root.value())).ok());

    // Every late joiner fails terminally and quickly.
    const sim::TimePoint t0 = sim::now();
    co_await f.run_ranks([&](u32 r) -> sim::Task<void> {
      if (r == 0) co_return;
      auto c = co_await Comm::create(f.members[r], "revoked_boot", r, n, f.cfg);
      CO_ASSERT_TRUE(!c.ok());
      EXPECT_EQ(c.error(), Errc::revoked) << "rank " << r;
    });
    // Fast: one search + one denied get per rank, nowhere near the
    // bootstrap deadline.
    EXPECT_LT(sim::now() - t0, 10_ms);

    co_await rank0_done.wait();
    EXPECT_FALSE(rank0_ok) << "rank 0 must not bootstrap alone";
  };
  f.eng.run(main());
}

TEST(Collectives, PostBootstrapRevocationIsTerminalNotAHang) {
  // Revoking the control segment's root capability under a live
  // communicator unmaps every member's attachment. The next collective
  // must fail with a clean status on every rank within the op timeout —
  // graceful degradation, and sticky like the member-crash path.
  CollFixture f;
  f.node.set_kernel_config(coll_cap_config());
  f.cfg.timeout = 30_ms;
  auto placement = f.topo_three_enclaves();
  auto main = [&]() -> sim::Task<void> {
    co_await f.setup(placement);
    std::vector<std::unique_ptr<Comm>> comms;
    co_await f.make_comms(&comms, "revoked_live");
    CO_ASSERT_TRUE(comms[0] != nullptr);
    // A healthy round first.
    co_await f.run_ranks([&](u32 r) -> sim::Task<void> {
      CO_ASSERT_TRUE((co_await comms[r]->barrier(Algo::flat)).ok());
    });

    XememKernel* owner = f.members[0].kernel;
    auto sid = co_await f.members[2].kernel->xpmem_search("revoked_live");
    CO_ASSERT_TRUE(sid.ok());
    auto root = owner->cap_root(sid.value());
    CO_ASSERT_TRUE(root.ok());
    CO_ASSERT_TRUE((co_await owner->cap_revoke(root.value())).ok());

    // Every rank's next barrier fails within the op timeout: the unmapped
    // members fault gracefully on their first control-word access; rank 0
    // (whose export is its own memory) times out waiting for them.
    const sim::TimePoint t0 = sim::now();
    co_await f.run_ranks([&](u32 r) -> sim::Task<void> {
      auto res = co_await comms[r]->barrier(Algo::flat);
      EXPECT_FALSE(res.ok()) << "rank " << r;
    });
    EXPECT_LE(sim::now() - t0, f.cfg.timeout + 1_ms);

    // Sticky: a second round fails fast, no fresh timeout per call.
    const sim::TimePoint t1 = sim::now();
    co_await f.run_ranks([&](u32 r) -> sim::Task<void> {
      EXPECT_FALSE((co_await comms[r]->barrier(Algo::flat)).ok());
    });
    EXPECT_LE(sim::now() - t1, f.cfg.timeout + 1_ms);
    for (u32 r = 1; r < comms.size(); ++r) {
      EXPECT_NE(comms[r]->status(), Errc::ok) << "rank " << r;
    }
    // Best-effort teardown must still terminate.
    co_await f.finalize_comms(&comms);
  };
  f.eng.run(main());
}

}  // namespace
}  // namespace xemem
