// Tests for the common utilities: strong types, units, Result, RNG
// distributions, and the statistics helpers the harnesses rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace xemem {
namespace {

// ------------------------------------------------------------------- types

TEST(Types, PageArithmetic) {
  EXPECT_EQ(page_align_down(4097), 4096u);
  EXPECT_EQ(page_align_up(4097), 8192u);
  EXPECT_EQ(page_align_up(4096), 4096u);
  EXPECT_EQ(pages_for(1), 1u);
  EXPECT_EQ(pages_for(4096), 1u);
  EXPECT_EQ(pages_for(4097), 2u);
  EXPECT_EQ(pages_for(1_GiB), 262144u);
}

TEST(Types, StrongTypesPreserveKind) {
  Pfn p{10};
  Pfn q = p + 5;
  static_assert(std::is_same_v<decltype(q), Pfn>);
  EXPECT_EQ(q.value(), 15u);
  EXPECT_EQ(q - p, 5u);
  EXPECT_EQ(Pfn::of(HostPaddr{3 * kPageSize + 17}), Pfn{3});
  EXPECT_EQ(Pfn{3}.paddr().value(), 3 * kPageSize);
}

TEST(Types, EnclaveIdValidity) {
  EXPECT_FALSE(EnclaveId::invalid().valid());
  EXPECT_TRUE(EnclaveId{0}.valid());
  EXPECT_FALSE(Segid{}.valid());
  EXPECT_TRUE(Segid{1}.valid());
}

// ------------------------------------------------------------------- units

TEST(Units, LiteralsAndConversions) {
  EXPECT_EQ(2_KiB, 2048u);
  EXPECT_EQ(1_GiB, 1073741824u);
  EXPECT_EQ(3_us, 3000u);
  EXPECT_EQ(2_s, 2000000000u);
  EXPECT_DOUBLE_EQ(ns_to_s(1500000000ull), 1.5);
  EXPECT_DOUBLE_EQ(gb_per_s(13'000'000'000ull, 1_s), 13.0);
  EXPECT_DOUBLE_EQ(gb_per_s(100, 0), 0.0);
}

// ------------------------------------------------------------------ Result

TEST(Status, ResultValueAndError) {
  Result<int> ok = 5;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_EQ(ok.error(), Errc::ok);
  EXPECT_EQ(ok.value_or(9), 5);

  Result<int> bad = Errc::no_such_segid;
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Errc::no_such_segid);
  EXPECT_EQ(bad.value_or(9), 9);

  Result<void> v;
  EXPECT_TRUE(v.ok());
  Result<void> e = Errc::busy;
  EXPECT_FALSE(e.ok());
  EXPECT_STREQ(errc_name(e.error()), "busy");
}

TEST(Status, ValueOnErrorAborts) {
  Result<int> bad = Errc::unreachable;
  EXPECT_DEATH((void)bad.value(), "Result::value");
}

// --------------------------------------------------------------------- RNG

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    const u64 k = rng.uniform_u64(17);
    ASSERT_LT(k, 17u);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 3.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(rng.lognormal(std::log(60.0), 1.0));
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], 60.0, 2.5) << "median of lognormal is exp(mu)";
}

TEST(Rng, ForkedStreamsAreIndependentButReproducible) {
  Rng parent1(9), parent2(9);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  EXPECT_EQ(child1.next(), child2.next());
  Rng sibling = parent1.fork();
  EXPECT_NE(child1.next(), sibling.next());
}

// ------------------------------------------------------------------- stats

TEST(Stats, RunningStatsMatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, RunningStatsSingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, SamplesPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(95), 95.05, 0.1);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Stats, LogHistogramBucketsByDecade) {
  LogHistogram h(1.0, 1e6, /*buckets_per_decade=*/1);
  h.add(5);       // decade [1,10)
  h.add(50);      // [10,100)
  h.add(50000);   // [1e4,1e5)
  h.add(1e9);     // clamped to the top bucket
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(1), 1u);
  EXPECT_EQ(h.count_at(4), 1u);
  EXPECT_EQ(h.count_at(h.buckets() - 1), 1u);
  EXPECT_DOUBLE_EQ(h.edge(2), 100.0);
}

}  // namespace
}  // namespace xemem
