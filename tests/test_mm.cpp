// Tests for the 4-level page-table implementation and PFN lists, including
// the map/translate round-trip property XEMEM's attach path depends on.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "mm/page_table.hpp"
#include "mm/pfn_list.hpp"

namespace xemem::mm {
namespace {

TEST(PageTable, MapThenLookup) {
  PageTable pt;
  ASSERT_TRUE(pt.map(Vaddr{0x1000}, Pfn{42}, PageFlags::writable).ok());
  auto pte = pt.lookup(Vaddr{0x1000});
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(pte->pfn, Pfn{42});
  EXPECT_TRUE(has_flag(pte->flags, PageFlags::writable));
  EXPECT_EQ(pt.mapped_pages(), 1u);
}

TEST(PageTable, LookupOfUnmappedIsEmpty) {
  PageTable pt;
  EXPECT_FALSE(pt.lookup(Vaddr{0x2000}).has_value());
  ASSERT_TRUE(pt.map(Vaddr{0x1000}, Pfn{1}, PageFlags::none).ok());
  EXPECT_FALSE(pt.lookup(Vaddr{0x2000}).has_value());
  // Same L1 table, different slot.
  EXPECT_FALSE(pt.lookup(Vaddr{0x0}).has_value());
}

TEST(PageTable, DoubleMapFails) {
  PageTable pt;
  ASSERT_TRUE(pt.map(Vaddr{0x5000}, Pfn{1}, PageFlags::none).ok());
  auto r = pt.map(Vaddr{0x5000}, Pfn{2}, PageFlags::none);
  EXPECT_EQ(r.error(), Errc::already_exists);
  EXPECT_EQ(pt.lookup(Vaddr{0x5000})->pfn, Pfn{1});
}

TEST(PageTable, MisalignedAddressRejected) {
  PageTable pt;
  EXPECT_EQ(pt.map(Vaddr{0x1001}, Pfn{1}, PageFlags::none).error(),
            Errc::invalid_argument);
  EXPECT_EQ(pt.unmap(Vaddr{0x123}).error(), Errc::invalid_argument);
}

TEST(PageTable, UnmapReclaimsEmptyTables) {
  PageTable pt;
  ASSERT_TRUE(pt.map(Vaddr{0x1000}, Pfn{7}, PageFlags::none).ok());
  const u64 nodes_with_mapping = pt.table_nodes();
  EXPECT_EQ(nodes_with_mapping, 4u);  // L4..L1 chain
  ASSERT_TRUE(pt.unmap(Vaddr{0x1000}).ok());
  EXPECT_EQ(pt.mapped_pages(), 0u);
  EXPECT_EQ(pt.table_nodes(), 1u) << "only the root should survive";
  EXPECT_FALSE(pt.lookup(Vaddr{0x1000}).has_value());
}

TEST(PageTable, UnmapOfUnmappedFails) {
  PageTable pt;
  EXPECT_EQ(pt.unmap(Vaddr{0x4000}).error(), Errc::not_attached);
}

TEST(PageTable, HighCanonicalishAddresses) {
  PageTable pt;
  const Vaddr hi{0x00007fffffffe000ull};  // top of the user half
  ASSERT_TRUE(pt.map(hi, Pfn{99}, PageFlags::user).ok());
  auto pte = pt.lookup(hi);
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(pte->pfn, Pfn{99});
  EXPECT_TRUE(has_flag(pte->flags, PageFlags::user));
}

TEST(PageTable, MapRangeRollsBackOnConflict) {
  PageTable pt;
  ASSERT_TRUE(pt.map(Vaddr{0x3000}, Pfn{50}, PageFlags::none).ok());
  std::vector<Pfn> pfns{Pfn{1}, Pfn{2}, Pfn{3}};
  auto r = pt.map_range(Vaddr{0x1000}, pfns, PageFlags::none);  // hits 0x3000
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(pt.mapped_pages(), 1u) << "partial range must be rolled back";
  EXPECT_TRUE(pt.lookup(Vaddr{0x3000}).has_value());
  EXPECT_FALSE(pt.lookup(Vaddr{0x1000}).has_value());
}

TEST(PageTable, TranslateRangeGeneratesPfnListInOrder) {
  PageTable pt;
  std::vector<Pfn> pfns{Pfn{10}, Pfn{300}, Pfn{7}, Pfn{8}};
  ASSERT_TRUE(pt.map_range(Vaddr{0x10000}, pfns, PageFlags::writable).ok());
  auto r = pt.translate_range(Vaddr{0x10000}, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), pfns);
}

TEST(PageTable, TranslateRangeWithHoleFails) {
  PageTable pt;
  ASSERT_TRUE(pt.map(Vaddr{0x1000}, Pfn{1}, PageFlags::none).ok());
  ASSERT_TRUE(pt.map(Vaddr{0x3000}, Pfn{3}, PageFlags::none).ok());
  EXPECT_FALSE(pt.translate_range(Vaddr{0x1000}, 3).ok());
}

TEST(PageTable, WalkStatsCountStructuralWork) {
  PageTable pt;
  WalkStats st;
  ASSERT_TRUE(pt.map(Vaddr{0x1000}, Pfn{1}, PageFlags::none, &st).ok());
  EXPECT_EQ(st.entries_visited, 4u);
  EXPECT_EQ(st.tables_allocated, 4u);
  WalkStats st2;
  ASSERT_TRUE(pt.map(Vaddr{0x2000}, Pfn{2}, PageFlags::none, &st2).ok());
  EXPECT_EQ(st2.tables_allocated, 0u) << "same L1 table reused";
}

// Property: map a random set of pages, then translate_range over each run
// reproduces exactly the frames mapped (the attach-path invariant), and a
// full unmap returns the tree to just the root.
TEST(PageTableProperty, MapTranslateUnmapRoundTrip) {
  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    PageTable pt;
    const u64 count = 1 + rng.uniform_u64(500);
    const Vaddr base{(1 + rng.uniform_u64(1000)) * 0x200000ull};
    std::vector<Pfn> pfns;
    for (u64 i = 0; i < count; ++i) pfns.push_back(Pfn{rng.uniform_u64(1 << 20)});
    ASSERT_TRUE(pt.map_range(base, pfns, PageFlags::writable).ok());
    EXPECT_EQ(pt.mapped_pages(), count);
    auto got = pt.translate_range(base, count);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), pfns);
    ASSERT_TRUE(pt.unmap_range(base, count).ok());
    EXPECT_EQ(pt.mapped_pages(), 0u);
    EXPECT_LE(pt.table_nodes(), 1u);
  }
}

// Property: sparse random single mappings behave like a std::map oracle.
TEST(PageTableProperty, DifferentialAgainstMapOracle) {
  Rng rng(23);
  PageTable pt;
  std::map<u64, u64> oracle;
  for (int step = 0; step < 2000; ++step) {
    const Vaddr va{rng.uniform_u64(1 << 16) << kPageShift};
    const double dice = rng.uniform();
    if (dice < 0.5) {
      const Pfn pfn{1 + rng.uniform_u64(1 << 30)};
      auto r = pt.map(va, pfn, PageFlags::none);
      if (oracle.contains(va.value())) {
        EXPECT_EQ(r.error(), Errc::already_exists);
      } else {
        EXPECT_TRUE(r.ok());
        oracle[va.value()] = pfn.value();
      }
    } else if (dice < 0.75) {
      auto r = pt.unmap(va);
      EXPECT_EQ(r.ok(), oracle.erase(va.value()) == 1);
    } else {
      auto pte = pt.lookup(va);
      auto it = oracle.find(va.value());
      ASSERT_EQ(pte.has_value(), it != oracle.end());
      if (pte) EXPECT_EQ(pte->pfn.value(), it->second);
    }
  }
  EXPECT_EQ(pt.mapped_pages(), oracle.size());
}

// ----------------------------------------------------------------- PfnList

TEST(PfnList, WireBytesAre8PerEntry) {
  PfnList l;
  l.pfns = {Pfn{1}, Pfn{2}, Pfn{9}};
  EXPECT_EQ(l.wire_bytes(), 24u);
  EXPECT_EQ(l.byte_span(), 3 * kPageSize);
}

TEST(PfnList, ContiguousRunCompressesToOneExtent) {
  PfnList l;
  for (u64 i = 100; i < 612; ++i) l.pfns.push_back(Pfn{i});
  auto ext = l.extents();
  ASSERT_EQ(ext.size(), 1u);
  EXPECT_EQ(ext[0].start, Pfn{100});
  EXPECT_EQ(ext[0].count, 512u);
}

TEST(PfnList, ScatteredListStaysPerPage) {
  PfnList l;
  for (u64 i = 0; i < 64; ++i) l.pfns.push_back(Pfn{i * 2});  // all gaps
  EXPECT_EQ(l.extents().size(), 64u);
}

TEST(PfnList, ExtentRoundTrip) {
  Rng rng(3);
  PfnList l;
  u64 p = 0;
  for (int i = 0; i < 300; ++i) {
    p += 1 + (rng.uniform() < 0.3 ? rng.uniform_u64(10) : 0);
    l.pfns.push_back(Pfn{p});
  }
  EXPECT_EQ(PfnList::from_extents(l.extents()).pfns, l.pfns);
}

// Property: extents()/from_extents() round-trip exactly, and the in-place
// counters agree with the materialized extents, across random lists and
// the degenerate shapes (empty, single page, fully contiguous, alternating
// gap-per-page).
TEST(PfnList, ExtentRoundTripProperty) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    PfnList l;
    const u64 n = rng.uniform_u64(400);
    u64 p = rng.uniform_u64(1 << 20);
    for (u64 i = 0; i < n; ++i) {
      // 60% continue the current run, 40% jump — exercises run lengths
      // from 1 to hundreds within one list.
      p += rng.uniform() < 0.6 ? 1 : 2 + rng.uniform_u64(1000);
      l.pfns.push_back(Pfn{p});
    }
    const auto ext = l.extents();
    EXPECT_EQ(ext.size(), l.extent_count());
    EXPECT_EQ(l.extent_wire_bytes(), ext.size() * PfnList::kExtentWireBytes);
    u64 total = 0;
    for (const auto& e : ext) total += e.count;
    EXPECT_EQ(total, l.page_count());
    EXPECT_EQ(PfnList::from_extents(ext).pfns, l.pfns);
  }
}

TEST(PfnList, ExtentRoundTripDegenerateShapes) {
  PfnList empty;
  EXPECT_EQ(empty.extent_count(), 0u);
  EXPECT_EQ(empty.extent_wire_bytes(), 0u);
  EXPECT_TRUE(PfnList::from_extents(empty.extents()).pfns.empty());

  PfnList single;
  single.pfns = {Pfn{77}};
  ASSERT_EQ(single.extents().size(), 1u);
  EXPECT_EQ(single.extent_count(), 1u);
  EXPECT_EQ(PfnList::from_extents(single.extents()).pfns, single.pfns);

  PfnList contiguous;
  for (u64 i = 0; i < 1024; ++i) contiguous.pfns.push_back(Pfn{5000 + i});
  EXPECT_EQ(contiguous.extent_count(), 1u);
  EXPECT_EQ(contiguous.extent_wire_bytes(), PfnList::kExtentWireBytes);
  EXPECT_LT(contiguous.extent_wire_bytes(), contiguous.wire_bytes());
  EXPECT_EQ(PfnList::from_extents(contiguous.extents()).pfns, contiguous.pfns);

  // Alternating: every page its own extent — the shape where extent
  // encoding (12 B/extent) is strictly worse than flat (8 B/page).
  PfnList alternating;
  for (u64 i = 0; i < 64; ++i) alternating.pfns.push_back(Pfn{i * 2});
  EXPECT_EQ(alternating.extent_count(), 64u);
  EXPECT_GT(alternating.extent_wire_bytes(), alternating.wire_bytes());
  EXPECT_EQ(PfnList::from_extents(alternating.extents()).pfns, alternating.pfns);
}

TEST(PfnList, SliceCopiesWindow) {
  PfnList l;
  for (u64 i = 0; i < 100; ++i) l.pfns.push_back(Pfn{i * 3});
  const PfnList w = l.slice(10, 5);
  ASSERT_EQ(w.page_count(), 5u);
  for (u64 i = 0; i < 5; ++i) EXPECT_EQ(w.pfns[i], Pfn{(10 + i) * 3});
  EXPECT_EQ(l.slice(0, 100).pfns, l.pfns);
  EXPECT_EQ(l.slice(99, 1).pfns[0], Pfn{99 * 3});
}

}  // namespace
}  // namespace xemem::mm
