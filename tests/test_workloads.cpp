// Tests for the workload implementations: CG convergence (real numerics),
// STREAM correctness, the selfish-detour benchmark against the noise
// models, and end-to-end in-situ runs across execution/attachment models.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "hw/noise.hpp"
#include "workloads/detour.hpp"
#include "workloads/hpccg.hpp"
#include "workloads/insitu.hpp"
#include "workloads/stream.hpp"

#define CO_ASSERT_TRUE(x)                            \
  do {                                               \
    if (!(x)) {                                      \
      ADD_FAILURE() << "CO_ASSERT_TRUE failed: " #x; \
      co_return;                                     \
    }                                                \
  } while (0)

namespace xemem::workloads {
namespace {

// ------------------------------------------------------------------ HPCCG

TEST(Hpccg, MatrixShapeMatches27PointStencil) {
  CgSolver cg(CgSolver::Grid{8, 8, 8});
  EXPECT_EQ(cg.rows(), 512u);
  // Interior points have 27 neighbors; boundaries fewer.
  EXPECT_LT(cg.nonzeros(), 512u * 27);
  EXPECT_GT(cg.nonzeros(), 512u * 8);
  EXPECT_GT(cg.flops_per_iteration(), 2 * cg.nonzeros());
}

TEST(Hpccg, ResidualDecreasesMonotonically) {
  CgSolver cg(CgSolver::Grid{10, 10, 10});
  double prev = cg.residual_norm();
  for (int i = 0; i < 30; ++i) {
    const double r = cg.iterate();
    EXPECT_LT(r, prev * 1.0001) << "CG residual must not grow (SPD system)";
    prev = r;
  }
}

TEST(Hpccg, ConvergesToExactSolution) {
  CgSolver cg(CgSolver::Grid{12, 12, 12});
  for (int i = 0; i < 60 && cg.residual_norm() > 1e-10; ++i) cg.iterate();
  EXPECT_LT(cg.residual_norm(), 1e-10);
  EXPECT_LT(cg.solution_error(), 1e-9) << "solution must approach all-ones";
}

TEST(Hpccg, ResetRestartsCleanly) {
  CgSolver cg(CgSolver::Grid{6, 6, 6});
  for (int i = 0; i < 5; ++i) cg.iterate();
  const double after5 = cg.residual_norm();
  cg.reset();
  EXPECT_EQ(cg.iterations(), 0u);
  for (int i = 0; i < 5; ++i) cg.iterate();
  EXPECT_DOUBLE_EQ(cg.residual_norm(), after5);
}

// ----------------------------------------------------------------- STREAM

TEST(Stream, KernelsComputeExpectedValues) {
  Stream s(1000);
  s.pass(3.0);
  // a=1, b=2 initially: copy c=a=1; scale b=3*c=3; add c=a+b=4;
  // triad a=b+3*c=15.
  EXPECT_DOUBLE_EQ(s.checksum(), 1000 * (15.0 + 3.0 + 4.0));
}

TEST(Stream, BytesPerPassAccounting) {
  EXPECT_EQ(Stream::bytes_per_pass(512ull << 20), 10 * (512ull << 20));
}

// ----------------------------------------------------------------- Detour

TEST(Detour, QuietCoreShowsNoDetours) {
  sim::Engine eng;
  hw::Core core(0, 0);
  auto trace = eng.run(selfish_detour(core, 100_ms));
  EXPECT_EQ(trace.detours.size(), 0u);
  EXPECT_GT(trace.samples, 10000u);
}

TEST(Detour, CapturesKittenNoiseBand) {
  sim::Engine eng(77);
  hw::Core core(0, 0);
  Rng rng(5);
  hw::spawn_noise(eng, core, hw::kitten_noise(), rng, 5_s);
  auto trace = eng.run(selfish_detour(core, 5_s));
  ASSERT_GT(trace.detours.size(), 500u) << "the 12us band is dense";
  double mean = 0;
  for (auto& d : trace.detours) mean += static_cast<double>(d.duration);
  mean /= static_cast<double>(trace.detours.size());
  EXPECT_NEAR(mean, 12000.0, 2500.0) << "detours should cluster near 12 us";
  EXPECT_LT(trace.noise_fraction(5_s), 0.01);
}

TEST(Detour, CapturesInjectedServiceDetour) {
  sim::Engine eng;
  hw::Core core(0, 0);
  auto attach_service = [&]() -> sim::Task<void> {
    co_await sim::delay(50_ms);
    co_await core.run_irq(23_ms);  // a 1 GiB page-table walk
  };
  eng.spawn(attach_service());
  auto trace = eng.run(selfish_detour(core, 200_ms));
  ASSERT_EQ(trace.detours.size(), 1u);
  EXPECT_NEAR(static_cast<double>(trace.detours[0].duration), 23e6, 1e4);
}

// ----------------------------------------------------------------- Insitu

InsituConfig small_insitu(bool async, bool recurring) {
  InsituConfig cfg;
  cfg.iterations = 60;
  cfg.signal_every = 20;   // 3 communication points
  cfg.region_bytes = 8_MiB;
  cfg.async = async;
  cfg.recurring = recurring;
  cfg.sim_compute_ns = 2_ms;
  cfg.sim_mem_bytes = 16_MiB;
  cfg.stream_passes = 1;
  cfg.grid = 8;
  cfg.stream_elems = 1 << 12;
  cfg.poll_interval = 20_us;
  return cfg;
}

struct InsituFixture {
  sim::Engine eng{101};
  Node node{hw::Machine::optiplex()};

  InsituFixture() {
    node.add_linux_mgmt("linux", 0, {0, 1, 2, 3, 4, 5});
    node.add_cokernel("kitten0", 0, {6, 7}, 1_GiB);
  }
};

TEST(Insitu, CompletesWithRealConvergence) {
  InsituFixture f;
  auto main = [&]() -> sim::Task<void> {
    co_await f.node.start();
    auto r = co_await run_insitu(f.node, "kitten0", "linux",
                                 small_insitu(false, false));
    EXPECT_GT(r.sim_seconds, 0.1);
    EXPECT_LT(r.residual, 1e-6) << "60 CG iterations on an 8^3 grid converge";
    EXPECT_EQ(r.attaches_performed, 1u) << "one-time model attaches once";
    EXPECT_EQ(f.node.machine().pmem().total_refs(), 0u) << "leak-free teardown";
  };
  f.eng.run(main());
}

TEST(Insitu, RecurringModelReattachesEveryInterval) {
  InsituFixture f;
  auto main = [&]() -> sim::Task<void> {
    co_await f.node.start();
    auto r = co_await run_insitu(f.node, "kitten0", "linux",
                                 small_insitu(false, true));
    EXPECT_EQ(r.attaches_performed, 3u);
    EXPECT_EQ(f.node.machine().pmem().total_refs(), 0u);
  };
  f.eng.run(main());
}

TEST(Insitu, AsyncIsFasterThanSync) {
  double sync_s = 0, async_s = 0;
  {
    InsituFixture f;
    auto main = [&]() -> sim::Task<void> {
      co_await f.node.start();
      auto r =
          co_await run_insitu(f.node, "kitten0", "linux", small_insitu(false, false));
      sync_s = r.sim_seconds;
    };
    f.eng.run(main());
  }
  {
    InsituFixture f;
    auto main = [&]() -> sim::Task<void> {
      co_await f.node.start();
      auto r =
          co_await run_insitu(f.node, "kitten0", "linux", small_insitu(true, false));
      async_s = r.sim_seconds;
    };
    f.eng.run(main());
  }
  EXPECT_LT(async_s, sync_s)
      << "asynchronous execution overlaps analytics with simulation";
}

TEST(Insitu, LinuxOnlyConfigurationWorks) {
  sim::Engine eng(55);
  Node node(hw::Machine::optiplex());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3, 4, 5, 6, 7});
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    auto r = co_await run_insitu(node, "linux", "linux", small_insitu(false, true));
    EXPECT_EQ(r.attaches_performed, 3u);
    EXPECT_LT(r.residual, 1e-6);
    EXPECT_EQ(node.machine().pmem().total_refs(), 0u);
  };
  eng.run(main());
}

TEST(Insitu, VmAnalyticsConfigurationWorks) {
  sim::Engine eng(66);
  Node node(hw::Machine::optiplex());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  node.add_cokernel("kitten0", 0, {6, 7}, 1_GiB);
  node.add_vm("vm0", "linux", 512_MiB, {4, 5});
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    auto r = co_await run_insitu(node, "kitten0", "vm0", small_insitu(false, true));
    EXPECT_EQ(r.attaches_performed, 3u);
    EXPECT_EQ(node.machine().pmem().total_refs(), 0u);
  };
  eng.run(main());
}

TEST(Insitu, MultiNodeWeakScalingRuns) {
  sim::Engine eng(88);
  constexpr u32 kNodes = 2;
  std::vector<std::unique_ptr<Node>> nodes;
  for (u32 i = 0; i < kNodes; ++i) {
    auto n = std::make_unique<Node>(hw::Machine::r420());
    n->add_linux_mgmt("linux", 0, {0, 1, 2, 3, 4, 5, 6, 7});
    nodes.push_back(std::move(n));
  }
  net::Communicator comm(kNodes);
  std::vector<double> times(kNodes);
  sim::Barrier done(kNodes + 1);

  auto node_main = [&](u32 i) -> sim::Task<void> {
    co_await nodes[i]->start();
    auto cfg = small_insitu(true, false);
    cfg.comm = &comm;
    cfg.run_tag = i;
    auto r = co_await run_insitu(*nodes[i], "linux", "linux", cfg);
    times[i] = r.sim_seconds;
    co_await done.arrive_and_wait();
  };
  auto main = [&]() -> sim::Task<void> {
    for (u32 i = 0; i < kNodes; ++i) sim::Engine::current()->spawn(node_main(i));
    co_await done.arrive_and_wait();
  };
  eng.run(main());
  for (double t : times) EXPECT_GT(t, 0.05);
}

}  // namespace
}  // namespace xemem::workloads
