// Tests for dynamic enclave partitioning (paper section 3.2): graceful
// enclave shutdown, name-server cleanup, resource return, and rebooting a
// fresh co-kernel on the reclaimed cores and memory.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "xemem/system.hpp"

#define CO_ASSERT_TRUE(x)                            \
  do {                                               \
    if (!(x)) {                                      \
      ADD_FAILURE() << "CO_ASSERT_TRUE failed: " #x; \
      co_return;                                     \
    }                                                \
  } while (0)

namespace xemem {
namespace {

TEST(Dynamic, ShutdownWithdrawsExportsAndNames) {
  sim::Engine eng(61);
  Node node(hw::Machine::r420());
  auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& ck = node.add_cokernel("ck", 0, {6, 7}, 256_MiB);
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* p = node.enclave("ck").create_process(4_MiB).value();
    auto sid = co_await ck.xpmem_make(*p, p->image_base(), 1_MiB, "ephemeral");
    CO_ASSERT_TRUE(sid.ok());
    CO_ASSERT_TRUE((co_await mgmt.xpmem_search("ephemeral")).ok());

    auto r = co_await ck.shutdown();
    CO_ASSERT_TRUE(r.ok());
    EXPECT_TRUE(ck.is_shutdown());
    EXPECT_EQ(ck.exports_live(), 0u);

    // The name and the segid are gone from the global name space.
    EXPECT_EQ((co_await mgmt.xpmem_search("ephemeral")).error(),
              Errc::no_such_segid);
    EXPECT_EQ((co_await mgmt.xpmem_get(sid.value())).error(), Errc::no_such_segid);
  };
  eng.run(main());
}

TEST(Dynamic, ShutdownBlocksWhileAttachmentsOutstanding) {
  sim::Engine eng(62);
  Node node(hw::Machine::r420());
  auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& ck = node.add_cokernel("ck", 0, {6, 7}, 256_MiB);
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* owner = node.enclave("ck").create_process(4_MiB).value();
    os::Process* user = node.enclave("linux").create_process(1_MiB).value();
    auto sid = co_await ck.xpmem_make(*owner, owner->image_base(), 1_MiB);
    auto grant = co_await mgmt.xpmem_get(sid.value());
    auto att = co_await mgmt.xpmem_attach(*user, grant.value(), 0, 1_MiB);
    CO_ASSERT_TRUE(att.ok());

    EXPECT_EQ((co_await ck.shutdown()).error(), Errc::busy);
    EXPECT_FALSE(ck.is_shutdown());

    CO_ASSERT_TRUE((co_await mgmt.xpmem_detach(*user, att.value())).ok());
    CO_ASSERT_TRUE((co_await ck.shutdown()).ok());
  };
  eng.run(main());
}

TEST(Dynamic, RemoveAndRebootCokernelReusesResources) {
  sim::Engine eng(63);
  Node node(hw::Machine::r420());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  const u64 zone_free_before = node.machine().zone(0).free_frames();
  auto& first = node.add_cokernel("gen1", 0, {6, 7}, 512_MiB);
  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    // Use the first-generation enclave, then repartition.
    os::Process* p = node.enclave("gen1").create_process(16_MiB).value();
    auto sid = co_await first.xpmem_make(*p, p->image_base(), 1_MiB);
    CO_ASSERT_TRUE(sid.ok());
    CO_ASSERT_TRUE((co_await node.kernel("gen1").xpmem_remove(*p, sid.value())).ok());
    node.enclave("gen1").destroy_process(p);
    CO_ASSERT_TRUE((co_await first.shutdown()).ok());
    node.remove_cokernel("gen1");
    EXPECT_EQ(node.machine().zone(0).free_frames(), zone_free_before)
        << "the carved memory block returned to the socket zone";
    EXPECT_EQ(node.pisces().cokernel_count(), 0u);

    // Boot a second generation on the same cores and memory.
    auto& second = node.add_cokernel("gen2", 0, {6, 7}, 512_MiB);
    second.start();
    co_await second.wait_registered();
    EXPECT_TRUE(second.id().valid());
    EXPECT_NE(second.id(), EnclaveId{1}) << "enclave ids are never recycled";

    // The new enclave is fully functional.
    os::Process* q = node.enclave("gen2").create_process(4_MiB).value();
    auto sid2 = co_await second.xpmem_make(*q, q->image_base(), 1_MiB, "gen2-data");
    CO_ASSERT_TRUE(sid2.ok());
    auto found = co_await node.kernel("linux").xpmem_search("gen2-data");
    CO_ASSERT_TRUE(found.ok());
    EXPECT_EQ(found.value(), sid2.value());
  };
  eng.run(main());
}

}  // namespace
}  // namespace xemem
