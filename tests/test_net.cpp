// Tests for the Infiniband/RDMA model and the cluster collectives.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "net/fabric.hpp"
#include "net/ib.hpp"
#include "sim/engine.hpp"

namespace xemem::net {
namespace {

TEST(Ib, LargeWriteApproachesLinkRate) {
  sim::Engine eng;
  IbDevice dev;
  dev.enable_sriov(2);
  auto main = [&]() -> sim::Task<double> {
    const u64 bytes = 1_GiB;
    const u64 t0 = sim::now();
    co_await dev.vf(0).rdma_write(bytes);
    co_return gb_per_s(bytes, sim::now() - t0);
  };
  const double gbps = eng.run(main());
  // Paper: "slightly less than 3.5 GB/s" for large writes on QDR.
  EXPECT_GT(gbps, 3.2);
  EXPECT_LT(gbps, 3.5);
}

TEST(Ib, SmallWritesDominatedByOverhead) {
  sim::Engine eng;
  IbDevice dev;
  dev.enable_sriov(1);
  auto main = [&]() -> sim::Task<double> {
    const u64 t0 = sim::now();
    for (int i = 0; i < 100; ++i) co_await dev.vf(0).rdma_write(64);
    co_return gb_per_s(100 * 64, sim::now() - t0);
  };
  EXPECT_LT(eng.run(main()), 0.1) << "64 B writes cannot reach link rate";
}

TEST(Ib, VfsShareTheLink) {
  sim::Engine eng;
  IbDevice dev;
  dev.enable_sriov(2);
  std::vector<u64> done;
  auto writer = [&](u32 vf) -> sim::Task<void> {
    co_await dev.vf(vf).rdma_write(256_MiB);
    done.push_back(sim::now());
  };
  eng.spawn(writer(0));
  eng.spawn(writer(1));
  eng.run_until_idle();
  ASSERT_EQ(done.size(), 2u);
  // Two concurrent writers each see ~half the link: both finish around
  // 2 * 256 MiB / 3.4 B/ns ~= 158 ms.
  const double expect_ns = 2.0 * 256.0 * 1024 * 1024 / 3.4;
  EXPECT_NEAR(static_cast<double>(done[0]), expect_ns, expect_ns * 0.05);
  EXPECT_NEAR(static_cast<double>(done[1]), expect_ns, expect_ns * 0.05);
}

TEST(Communicator, AllreduceWaitsForSlowestRank) {
  sim::Engine eng;
  Communicator comm(4);
  std::vector<u64> release;
  auto rank = [&](sim::Duration arrive) -> sim::Task<void> {
    co_await sim::delay(arrive);
    co_await comm.allreduce(16);
    release.push_back(sim::now());
  };
  eng.spawn(rank(1_ms));
  eng.spawn(rank(2_ms));
  eng.spawn(rank(3_ms));
  eng.spawn(rank(9_ms));  // straggler
  eng.run_until_idle();
  ASSERT_EQ(release.size(), 4u);
  for (u64 t : release) {
    EXPECT_GE(t, 9_ms) << "no rank may finish before the straggler arrives";
    EXPECT_LT(t, 9_ms + 100_us);
  }
}

TEST(Communicator, SingleRankAllreduceIsFree) {
  sim::Engine eng;
  Communicator comm(1);
  auto main = [&]() -> sim::Task<u64> {
    co_await comm.allreduce(1_MiB);
    co_return sim::now();
  };
  EXPECT_EQ(eng.run(main()), 0u);
}

TEST(Communicator, CostGrowsLogarithmically) {
  auto cost_for = [](u32 ranks) {
    sim::Engine eng;
    Communicator comm(ranks);
    std::vector<u64> done;
    auto rank = [&]() -> sim::Task<void> {
      co_await comm.allreduce(8);
      done.push_back(sim::now());
    };
    for (u32 i = 0; i < ranks; ++i) eng.spawn(rank());
    eng.run_until_idle();
    return done.back();
  };
  const u64 c2 = cost_for(2);
  const u64 c8 = cost_for(8);
  EXPECT_NEAR(static_cast<double>(c8), 3.0 * static_cast<double>(c2), 10.0)
      << "recursive doubling: log2(8)/log2(2) = 3";
}

TEST(Communicator, ReusableAcrossIterations) {
  sim::Engine eng;
  Communicator comm(3);
  int completed = 0;
  auto rank = [&](sim::Duration jitter) -> sim::Task<void> {
    for (int it = 0; it < 50; ++it) {
      co_await sim::delay(jitter);
      co_await comm.allreduce(8);
    }
    ++completed;
  };
  eng.spawn(rank(10_us));
  eng.spawn(rank(20_us));
  eng.spawn(rank(30_us));
  eng.run_until_idle();
  EXPECT_EQ(completed, 3);
}

}  // namespace
}  // namespace xemem::net
