// Unit tests for the discrete-event simulation engine: clock behaviour,
// event ordering, coroutine task composition, synchronization primitives,
// and the processor-sharing bandwidth model.
#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"
#include "sim/engine.hpp"
#include "sim/shared_resource.hpp"
#include "sim/sync.hpp"

namespace xemem::sim {
namespace {

TEST(Engine, ClockStartsAtZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0u);
}

TEST(Engine, DelayAdvancesVirtualClock) {
  Engine eng;
  auto t = eng.run([]() -> Task<u64> {
    co_await delay(250_us);
    co_return now();
  }());
  EXPECT_EQ(t, 250_us);
  EXPECT_EQ(eng.now(), 250_us);
}

TEST(Engine, NestedTasksComposeDurations) {
  Engine eng;
  auto inner = []() -> Task<u64> {
    co_await delay(10_ns);
    co_return now();
  };
  auto t = eng.run([&]() -> Task<u64> {
    co_await delay(5_ns);
    u64 mid = co_await inner();
    co_await delay(5_ns);
    co_return mid + (now() - mid);
  }());
  EXPECT_EQ(t, 20u);
}

TEST(Engine, TaskReturnsValue) {
  Engine eng;
  auto v = eng.run([]() -> Task<int> { co_return 42; }());
  EXPECT_EQ(v, 42);
}

TEST(Engine, SameTimeEventsFireInFifoOrder) {
  Engine eng;
  std::vector<int> order;
  auto mk = [&order](int id) -> Task<void> {
    co_await delay(100_ns);
    order.push_back(id);
  };
  eng.spawn(mk(1));
  eng.spawn(mk(2));
  eng.spawn(mk(3));
  eng.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, DelayUntilPastIsNoop) {
  Engine eng;
  auto t = eng.run([]() -> Task<u64> {
    co_await delay(100_ns);
    co_await delay_until(50_ns);  // already in the past
    co_return now();
  }());
  EXPECT_EQ(t, 100u);
}

TEST(Engine, RunUntilAdvancesClockWithEmptyQueue) {
  Engine eng;
  eng.run_until(1_s);
  EXPECT_EQ(eng.now(), 1_s);
}

TEST(Engine, DetachedTasksRunToCompletion) {
  Engine eng;
  int done = 0;
  eng.spawn([](int* d) -> Task<void> {
    co_await delay(1_us);
    ++*d;
  }(&done));
  eng.run_until_idle();
  EXPECT_EQ(done, 1);
}

TEST(Engine, ExceptionsPropagateThroughRun) {
  Engine eng;
  auto boom = []() -> Task<void> {
    co_await delay(1_ns);
    throw std::runtime_error("boom");
  };
  EXPECT_THROW(eng.run(boom()), std::runtime_error);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto experiment = [] {
    Engine eng(12345);
    std::vector<u64> trace;
    auto actor = [&trace](u64 base) -> Task<void> {
      Rng rng = Engine::current()->rng().fork();
      for (int i = 0; i < 10; ++i) {
        co_await delay(base + rng.uniform_u64(100));
        trace.push_back(now());
      }
    };
    eng.spawn(actor(10));
    eng.spawn(actor(20));
    eng.run_until_idle();
    return trace;
  };
  EXPECT_EQ(experiment(), experiment());
}

TEST(Event, ReleasesAllWaiters) {
  Engine eng;
  Event ev;
  int woken = 0;
  auto waiter = [&]() -> Task<void> {
    co_await ev.wait();
    ++woken;
  };
  auto setter = [&]() -> Task<void> {
    co_await delay(5_ns);
    ev.set();
    co_return;
  };
  eng.spawn(waiter());
  eng.spawn(waiter());
  eng.spawn(setter());
  eng.run_until_idle();
  EXPECT_EQ(woken, 2);
  EXPECT_TRUE(ev.is_set());
}

TEST(Event, SetBeforeWaitDoesNotBlock) {
  Engine eng;
  Event ev;
  auto t = eng.run([&]() -> Task<u64> {
    ev.set();
    co_await ev.wait();
    co_return now();
  }());
  EXPECT_EQ(t, 0u);
}

// NOTE: coroutine lambdas must outlive their coroutines (the closure is not
// copied into the frame), so tests name their lambdas as locals that live
// until run_until_idle() returns.
TEST(Mailbox, FifoDelivery) {
  Engine eng;
  Mailbox<int> mb;
  std::vector<int> got;
  auto receiver = [&]() -> Task<void> {
    for (int i = 0; i < 3; ++i) got.push_back(co_await mb.recv());
  };
  auto sender = [&]() -> Task<void> {
    mb.send(1);
    co_await delay(1_ns);
    mb.send(2);
    mb.send(3);
  };
  eng.spawn(receiver());
  eng.spawn(sender());
  eng.run_until_idle();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Mailbox, BlockedReceiverWakesOnSend) {
  Engine eng;
  Mailbox<int> mb;
  auto sender = [&]() -> Task<void> {
    co_await delay(7_ns);
    mb.send(99);
  };
  auto main = [&]() -> Task<u64> {
    Engine::current()->spawn(sender());
    int v = co_await mb.recv();
    EXPECT_EQ(v, 99);
    co_return now();
  };
  auto t = eng.run(main());
  EXPECT_EQ(t, 7u);
}

TEST(Mailbox, TryRecvNonBlocking) {
  Engine eng;
  Mailbox<int> mb;
  EXPECT_FALSE(mb.try_recv().has_value());
  eng.run([&]() -> Task<void> {
    mb.send(5);
    co_return;
  }());
  auto v = mb.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

TEST(Mailbox, MultipleWaitersServedInOrder) {
  Engine eng;
  Mailbox<int> mb;
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  auto rcv = [&](int id) -> Task<void> {
    int v = co_await mb.recv();
    got.emplace_back(id, v);
  };
  auto sender = [&]() -> Task<void> {
    co_await delay(1_ns);
    mb.send(10);
    mb.send(20);
  };
  eng.spawn(rcv(1));
  eng.spawn(rcv(2));
  eng.spawn(sender());
  eng.run_until_idle();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::make_pair(1, 10));
  EXPECT_EQ(got[1], std::make_pair(2, 20));
}

TEST(Semaphore, LimitsConcurrency) {
  Engine eng;
  Semaphore sem(2);
  int peak = 0;
  int active = 0;
  auto worker = [&]() -> Task<void> {
    co_await sem.acquire();
    ++active;
    peak = std::max(peak, active);
    co_await delay(10_ns);
    --active;
    sem.release();
  };
  for (int i = 0; i < 5; ++i) eng.spawn(worker());
  eng.run_until_idle();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(active, 0);
  EXPECT_EQ(sem.available(), 2u);
}

TEST(Mutex, SerializesCriticalSections) {
  Engine eng;
  Mutex mtx;
  u64 in_section = 0;
  bool overlapped = false;
  auto worker = [&]() -> Task<void> {
    co_await mtx.lock();
    if (in_section != 0) overlapped = true;
    ++in_section;
    co_await delay(50_ns);
    --in_section;
    mtx.unlock();
  };
  for (int i = 0; i < 4; ++i) eng.spawn(worker());
  eng.run_until_idle();
  EXPECT_FALSE(overlapped);
  EXPECT_EQ(eng.now(), 200u);  // 4 x 50ns strictly serialized
}

TEST(Barrier, ReleasesWhenAllArrive) {
  Engine eng;
  Barrier bar(3);
  std::vector<u64> release_times;
  auto worker = [&](Duration d) -> Task<void> {
    co_await delay(d);
    co_await bar.arrive_and_wait();
    release_times.push_back(now());
  };
  eng.spawn(worker(10_ns));
  eng.spawn(worker(20_ns));
  eng.spawn(worker(30_ns));
  eng.run_until_idle();
  ASSERT_EQ(release_times.size(), 3u);
  for (auto t : release_times) EXPECT_EQ(t, 30u);
}

TEST(SharedBandwidth, SingleTransferAtFullRate) {
  Engine eng;
  SharedBandwidth bw(2.0);  // 2 bytes/ns
  auto t = eng.run([&]() -> Task<u64> {
    co_await bw.transfer(1000);
    co_return now();
  }());
  EXPECT_EQ(t, 500u);
}

TEST(SharedBandwidth, TwoTransfersShareFairly) {
  Engine eng;
  SharedBandwidth bw(2.0);
  std::vector<u64> done;
  auto xfer = [&](u64 bytes) -> Task<void> {
    co_await bw.transfer(bytes);
    done.push_back(now());
  };
  eng.spawn(xfer(1000));
  eng.spawn(xfer(1000));
  eng.run_until_idle();
  ASSERT_EQ(done.size(), 2u);
  // Both share 2 B/ns -> each sees 1 B/ns -> both done ~1000 ns.
  EXPECT_NEAR(static_cast<double>(done[0]), 1000.0, 2.0);
  EXPECT_NEAR(static_cast<double>(done[1]), 1000.0, 2.0);
}

TEST(SharedBandwidth, LateArrivalSlowsFirstTransfer) {
  Engine eng;
  SharedBandwidth bw(1.0);  // 1 byte/ns
  std::vector<u64> done;
  auto first = [&]() -> Task<void> {
    co_await bw.transfer(1000);
    done.push_back(now());
  };
  auto second = [&]() -> Task<void> {
    co_await delay(500_ns);  // join when the first job is half finished
    co_await bw.transfer(250);
    done.push_back(now());
  };
  eng.spawn(first());
  eng.spawn(second());
  eng.run_until_idle();
  ASSERT_EQ(done.size(), 2u);
  // t in [0,500): job1 alone, 500 bytes done. t in [500,1000): both at
  // 0.5 B/ns; job2's 250 bytes take 500 ns -> done at 1000. Job1 then has
  // 250 bytes left alone -> done at 1250.
  EXPECT_NEAR(static_cast<double>(done[0]), 1000.0, 3.0);
  EXPECT_NEAR(static_cast<double>(done[1]), 1250.0, 3.0);
}

TEST(SharedBandwidth, ZeroByteTransferIsImmediate) {
  Engine eng;
  SharedBandwidth bw(1.0);
  auto t = eng.run([&]() -> Task<u64> {
    co_await bw.transfer(0);
    co_return now();
  }());
  EXPECT_EQ(t, 0u);
}

TEST(SharedBandwidth, ManyConcurrentTransfersConserveCapacity) {
  Engine eng;
  SharedBandwidth bw(4.0);
  constexpr int kJobs = 8;
  std::vector<u64> done;
  auto job = [&]() -> Task<void> {
    co_await bw.transfer(1000);
    done.push_back(now());
  };
  for (int i = 0; i < kJobs; ++i) eng.spawn(job());
  eng.run_until_idle();
  ASSERT_EQ(done.size(), static_cast<size_t>(kJobs));
  // 8 jobs x 1000 B at 4 B/ns aggregate -> all finish ~2000 ns.
  for (auto t : done) EXPECT_NEAR(static_cast<double>(t), 2000.0, 5.0);
}

}  // namespace
}  // namespace xemem::sim
