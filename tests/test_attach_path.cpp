// Attach fast path: extent-compressed wire PFNs, segid->owner route
// caching, owner-side walk memoization, and attacher-side mapping reuse —
// plus the invalidation coupling to the fault layer (xpmem_remove,
// crash(), lease expiry, learned-route invalidation) that keeps every
// cache from ever serving stale frames.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "xemem/system.hpp"

#define CO_ASSERT_TRUE(x)                            \
  do {                                               \
    if (!(x)) {                                      \
      ADD_FAILURE() << "CO_ASSERT_TRUE failed: " #x; \
      co_return;                                     \
    }                                                \
  } while (0)

namespace xemem {
namespace {

KernelConfig fast_config() {
  KernelConfig cfg;
  cfg.request_timeout = 1_ms;
  cfg.max_retries = 6;
  cfg.backoff_base = 100_us;
  cfg.backoff_max = 1_ms;
  cfg.enable_attach_fast_path();
  return cfg;
}

// ------------------------------------------------------------- wire format

TEST(AttachPath, ExtentEncodingShrinksMessageWireBytes) {
  // Pure wire accounting: 512 contiguous pages flat = 4 KiB payload;
  // extent-encoded = one 12 B record.
  Message flat;
  for (u64 i = 0; i < 512; ++i) flat.payload.push_back(1000 + i);
  Message ext;
  ext.extents.push_back(hw::FrameExtent{Pfn{1000}, 512});
  EXPECT_EQ(flat.wire_bytes(), Message::kHeaderBytes + 512 * 8);
  EXPECT_EQ(ext.wire_bytes(), Message::kHeaderBytes + mm::PfnList::kExtentWireBytes);
  EXPECT_LT(ext.wire_bytes(), flat.wire_bytes());
}

TEST(AttachPath, ContiguousExportShipsExtentsAndMapsCorrectly) {
  // A contiguous 4 MiB Kitten export crosses the wire as O(1) extents
  // instead of 8 B/page, and the decoded mapping still reaches the same
  // frames (data written by the owner is read through the attachment).
  sim::Engine eng(8101);
  Node node(hw::Machine::r420());
  node.set_kernel_config(fast_config());
  auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& ck = node.add_cokernel("ck", 0, {6, 7}, 256_MiB);

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* op = node.enclave("ck").create_process(8_MiB).value();
    os::Process* up = node.enclave("linux").create_process(1_MiB).value();
    auto sid = co_await ck.xpmem_make(*op, op->image_base(), 4_MiB);
    CO_ASSERT_TRUE(sid.ok());

    const char pattern[] = "extent-wire-attach";
    CO_ASSERT_TRUE(node.enclave("ck")
                       .proc_write(*op, op->image_base() + 64, pattern,
                                   sizeof(pattern))
                       .ok());

    auto grant = co_await mgmt.xpmem_get(sid.value());
    CO_ASSERT_TRUE(grant.ok());
    auto att = co_await mgmt.xpmem_attach(*up, grant.value(), 0, 4_MiB);
    CO_ASSERT_TRUE(att.ok());

    // Kitten allocates contiguously: the whole list compresses to a
    // handful of runs (the acceptance bound is <= 3).
    EXPECT_GE(ck.stats().extents_shipped, 1u);
    EXPECT_LE(ck.stats().extents_shipped, 3u);
    // Flat would have been 8 B * 1024 pages; nearly all of it saved.
    EXPECT_GT(ck.stats().wire_bytes_saved,
              4_MiB / kPageSize * 8 - 3 * mm::PfnList::kExtentWireBytes - 1);

    char back[sizeof(pattern)] = {};
    CO_ASSERT_TRUE(node.enclave("linux")
                       .proc_read(*up, att.value().va + 64, back, sizeof(back))
                       .ok());
    EXPECT_STREQ(back, pattern);

    CO_ASSERT_TRUE((co_await mgmt.xpmem_detach(*up, att.value())).ok());
    EXPECT_EQ(node.machine().pmem().total_refs(), 0u);
  };
  eng.run(main());
}

TEST(AttachPath, ScatteredExportNeverShipsMoreThanFlat) {
  // Linux exports are deliberately scattered (8-page allocator chunks):
  // extent encoding still wins but far less than for Kitten, and the
  // owner must never ship an encoding larger than the flat 8 B/page form
  // (the encoder falls back to flat for e.g. alternating single pages).
  sim::Engine eng(8102);
  Node node(hw::Machine::r420());
  node.set_kernel_config(fast_config());
  auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& ck = node.add_cokernel("ck", 0, {6, 7}, 256_MiB);

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* op = node.enclave("linux").create_process(8_MiB).value();
    os::Process* up = node.enclave("ck").create_process(1_MiB).value();
    auto sid = co_await mgmt.xpmem_make(*op, op->image_base(), 1_MiB);
    CO_ASSERT_TRUE(sid.ok());
    auto grant = co_await ck.xpmem_get(sid.value());
    CO_ASSERT_TRUE(grant.ok());
    auto att = co_await ck.xpmem_attach(*up, grant.value(), 0, 1_MiB);
    CO_ASSERT_TRUE(att.ok());

    const u64 flat_bytes = 1_MiB / kPageSize * 8;
    EXPECT_LE(mgmt.stats().extents_shipped * mm::PfnList::kExtentWireBytes,
              flat_bytes);
    if (mgmt.stats().extents_shipped > 0) {
      // Savings accounting must be exact: flat minus what the runs cost.
      EXPECT_EQ(mgmt.stats().wire_bytes_saved,
                flat_bytes -
                    mgmt.stats().extents_shipped * mm::PfnList::kExtentWireBytes);
      // Scattered lists compress far worse than contiguous ones.
      EXPECT_GT(mgmt.stats().extents_shipped, 3u);
    }

    CO_ASSERT_TRUE((co_await ck.xpmem_detach(*up, att.value())).ok());
    EXPECT_EQ(node.machine().pmem().total_refs(), 0u);
  };
  eng.run(main());
}

// ------------------------------------------------------- owner route cache

TEST(AttachPath, RepeatAttachSkipsNameServerAndIsFaster) {
  // Three enclaves so user -> owner traffic genuinely transits the
  // management enclave: cold attach pays the name-server resolution,
  // repeat attaches address the owner directly.
  sim::Engine eng(8103);
  Node node(hw::Machine::r420());
  node.set_kernel_config(fast_config());
  auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& owner_k = node.add_cokernel("owner", 0, {4, 5}, 256_MiB);
  auto& user_k = node.add_cokernel("user", 0, {6, 7}, 256_MiB);

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* op = node.enclave("owner").create_process(8_MiB).value();
    os::Process* up = node.enclave("user").create_process(1_MiB).value();
    auto sid = co_await owner_k.xpmem_make(*op, op->image_base(), 1_MiB);
    CO_ASSERT_TRUE(sid.ok());
    auto grant = co_await user_k.xpmem_get(sid.value());
    CO_ASSERT_TRUE(grant.ok());
    EXPECT_TRUE(user_k.knows_owner(sid.value())) << "get primes the cache";

    const sim::TimePoint t0 = sim::now();
    auto att1 = co_await user_k.xpmem_attach(*up, grant.value(), 0, 1_MiB);
    const sim::Duration cold = sim::now() - t0;
    CO_ASSERT_TRUE(att1.ok());
    CO_ASSERT_TRUE((co_await user_k.xpmem_detach(*up, att1.value())).ok());

    const u64 ns_before = mgmt.stats().ns_requests;
    const u64 hits_before = user_k.stats().lookup_cache_hits;
    const sim::TimePoint t1 = sim::now();
    auto att2 = co_await user_k.xpmem_attach(*up, grant.value(), 0, 1_MiB);
    const sim::Duration warm = sim::now() - t1;
    CO_ASSERT_TRUE(att2.ok());

    EXPECT_GT(user_k.stats().lookup_cache_hits, hits_before);
    EXPECT_EQ(mgmt.stats().ns_requests, ns_before)
        << "repeat attach must not touch the name server";
    EXPECT_LT(warm, cold) << "cached route + memoized walk is faster";

    CO_ASSERT_TRUE((co_await user_k.xpmem_detach(*up, att2.value())).ok());
    EXPECT_EQ(node.machine().pmem().total_refs(), 0u);
  };
  eng.run(main());
}

TEST(AttachPath, OwnerCacheInvalidatedByRemove) {
  // xpmem_remove retires the segid globally; a cached owner route must
  // not change the observable outcome (no_such_segid) and must be gone
  // after the failed fast path falls back to the name server.
  sim::Engine eng(8104);
  Node node(hw::Machine::r420());
  node.set_kernel_config(fast_config());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& owner_k = node.add_cokernel("owner", 0, {4, 5}, 256_MiB);
  auto& user_k = node.add_cokernel("user", 0, {6, 7}, 256_MiB);

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* op = node.enclave("owner").create_process(8_MiB).value();
    os::Process* up = node.enclave("user").create_process(1_MiB).value();
    auto sid = co_await owner_k.xpmem_make(*op, op->image_base(), 1_MiB);
    CO_ASSERT_TRUE(sid.ok());
    auto grant = co_await user_k.xpmem_get(sid.value());
    CO_ASSERT_TRUE(grant.ok());
    auto att = co_await user_k.xpmem_attach(*up, grant.value(), 0, 1_MiB);
    CO_ASSERT_TRUE(att.ok());
    CO_ASSERT_TRUE((co_await user_k.xpmem_detach(*up, att.value())).ok());
    EXPECT_TRUE(user_k.knows_owner(sid.value()));
    EXPECT_GT(owner_k.walk_cache_entries(), 0u);

    CO_ASSERT_TRUE((co_await owner_k.xpmem_remove(*op, sid.value())).ok());
    EXPECT_EQ(owner_k.walk_cache_entries(), 0u)
        << "remove flushes the owner-side walk memoization";

    auto stale = co_await user_k.xpmem_attach(*up, grant.value(), 0, 1_MiB);
    EXPECT_EQ(stale.error(), Errc::no_such_segid)
        << "stale owner route must not resurrect a removed segment";
    EXPECT_FALSE(user_k.knows_owner(sid.value()))
        << "failed fast path drops the cached route";
  };
  eng.run(main());
}

// ----------------------------------------------------- walk cache (owner)

TEST(AttachPath, WalkMemoizationServesRepeatWindows) {
  sim::Engine eng(8105);
  Node node(hw::Machine::r420());
  node.set_kernel_config(fast_config());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& owner_k = node.add_cokernel("owner", 0, {4, 5}, 256_MiB);
  auto& user_k = node.add_cokernel("user", 0, {6, 7}, 256_MiB);

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* op = node.enclave("owner").create_process(8_MiB).value();
    os::Process* up = node.enclave("user").create_process(1_MiB).value();
    auto sid = co_await owner_k.xpmem_make(*op, op->image_base(), 2_MiB);
    CO_ASSERT_TRUE(sid.ok());
    auto grant = co_await user_k.xpmem_get(sid.value());
    CO_ASSERT_TRUE(grant.ok());

    // Same window attached repeatedly: one real walk, the rest memoized.
    // Windows must be distinct attachments (not reuse) to exercise the
    // owner-side cache, so detach between rounds.
    for (int i = 0; i < 4; ++i) {
      auto att = co_await user_k.xpmem_attach(*up, grant.value(), 0, 2_MiB);
      CO_ASSERT_TRUE(att.ok());
      CO_ASSERT_TRUE((co_await user_k.xpmem_detach(*up, att.value())).ok());
    }
    EXPECT_EQ(owner_k.stats().walk_cache_hits, 3u);
    EXPECT_EQ(owner_k.walk_cache_entries(), 1u);

    // A different window is a different key: misses, then caches.
    auto att = co_await user_k.xpmem_attach(*up, grant.value(), 1_MiB, 1_MiB);
    CO_ASSERT_TRUE(att.ok());
    EXPECT_EQ(owner_k.stats().walk_cache_hits, 3u);
    EXPECT_EQ(owner_k.walk_cache_entries(), 2u);
    CO_ASSERT_TRUE((co_await user_k.xpmem_detach(*up, att.value())).ok());
    EXPECT_EQ(node.machine().pmem().total_refs(), 0u);
  };
  eng.run(main());
}

// -------------------------------------------------- attacher mapping reuse

TEST(AttachPath, ContainedReattachReusesFramesWithoutProtocolTraffic) {
  sim::Engine eng(8106);
  Node node(hw::Machine::r420());
  node.set_kernel_config(fast_config());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& owner_k = node.add_cokernel("owner", 0, {4, 5}, 256_MiB);
  auto& user_k = node.add_cokernel("user", 0, {6, 7}, 256_MiB);

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* op = node.enclave("owner").create_process(8_MiB).value();
    os::Process* up = node.enclave("user").create_process(1_MiB).value();
    auto sid = co_await owner_k.xpmem_make(*op, op->image_base(), 2_MiB);
    CO_ASSERT_TRUE(sid.ok());
    auto grant = co_await user_k.xpmem_get(sid.value());
    CO_ASSERT_TRUE(grant.ok());

    auto full = co_await user_k.xpmem_attach(*up, grant.value(), 0, 2_MiB);
    CO_ASSERT_TRUE(full.ok());
    const u64 served = owner_k.stats().attaches_served;
    const u64 pinned = owner_k.pinned_frames();
    EXPECT_EQ(user_k.attach_cache_entries(), 1u);

    // A contained sub-window: no wire traffic, no new owner pin.
    auto sub = co_await user_k.xpmem_attach(*up, grant.value(), 1_MiB, 512_KiB);
    CO_ASSERT_TRUE(sub.ok());
    EXPECT_EQ(user_k.stats().reuse_hits, 1u);
    EXPECT_EQ(owner_k.stats().attaches_served, served)
        << "reuse must not reach the owner";
    EXPECT_EQ(owner_k.pinned_frames(), pinned) << "one shared pin";
    EXPECT_EQ(sub.value().owner_handle, full.value().owner_handle);

    // The reused mapping aliases the same memory: a write through the
    // sub-window is visible through the original attachment.
    const char pattern[] = "reuse-aliases";
    CO_ASSERT_TRUE(node.enclave("user")
                       .proc_write(*up, sub.value().va, pattern, sizeof(pattern))
                       .ok());
    char back[sizeof(pattern)] = {};
    CO_ASSERT_TRUE(node.enclave("user")
                       .proc_read(*up, full.value().va + 1_MiB, back, sizeof(back))
                       .ok());
    EXPECT_STREQ(back, pattern);

    // Detach in either order: the owner pin survives until the last one.
    CO_ASSERT_TRUE((co_await user_k.xpmem_detach(*up, full.value())).ok());
    EXPECT_EQ(owner_k.pinned_frames(), pinned)
        << "pin held while the sub-window lives";
    CO_ASSERT_TRUE((co_await user_k.xpmem_detach(*up, sub.value())).ok());
    EXPECT_EQ(owner_k.pinned_frames(), 0u);
    EXPECT_EQ(user_k.attach_cache_entries(), 0u);
    EXPECT_EQ(node.machine().pmem().total_refs(), 0u);
  };
  eng.run(main());
}

// ------------------------------------------- crash / lease-expiry coupling

TEST(AttachPath, OwnerCrashLeavesNoWarmCacheAnywhere) {
  // After the owner crash()es: its own caches are gone with it, the
  // attacher's route/reuse caches drain on the next use, and no cache
  // ever serves the dead owner's frames again.
  sim::Engine eng(8107);
  Node node(hw::Machine::r420());
  KernelConfig cfg = fast_config();
  cfg.lease_duration = 5_ms;
  node.set_kernel_config(cfg);
  auto& mgmt = node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& owner_k = node.add_cokernel("owner", 0, {4, 5}, 256_MiB);
  auto& user_k = node.add_cokernel("user", 0, {6, 7}, 256_MiB);

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* op = node.enclave("owner").create_process(8_MiB).value();
    os::Process* up = node.enclave("user").create_process(1_MiB).value();
    auto sid = co_await owner_k.xpmem_make(*op, op->image_base(), 1_MiB, "v");
    CO_ASSERT_TRUE(sid.ok());
    auto grant = co_await user_k.xpmem_get(sid.value());
    CO_ASSERT_TRUE(grant.ok());
    auto att = co_await user_k.xpmem_attach(*up, grant.value(), 0, 1_MiB);
    CO_ASSERT_TRUE(att.ok());
    EXPECT_GT(owner_k.walk_cache_entries(), 0u);
    EXPECT_TRUE(user_k.knows_owner(sid.value()));
    EXPECT_EQ(user_k.attach_cache_entries(), 1u);

    owner_k.crash();
    // The dead kernel's own caches died with it.
    EXPECT_EQ(owner_k.walk_cache_entries(), 0u);
    EXPECT_EQ(owner_k.owner_cache_entries(), 0u);
    EXPECT_EQ(owner_k.attach_cache_entries(), 0u);
    EXPECT_EQ(node.machine().pmem().total_refs(), 0u);

    // Detaching the dangling attachment reports the owner unreachable (or
    // already GC'd) but still unmaps locally and drops the reuse entry.
    auto det = co_await user_k.xpmem_detach(*up, att.value());
    EXPECT_FALSE(det.ok());
    EXPECT_TRUE(det.error() == Errc::unreachable ||
                det.error() == Errc::no_such_segid)
        << errc_name(det.error());
    EXPECT_EQ(user_k.attach_cache_entries(), 0u)
        << "reuse entry must never outlive its owner-side pin";
    EXPECT_FALSE(user_k.knows_owner(sid.value()))
        << "route-cache entry flushed with the learned route";

    // Past lease expiry the name server has GC'd the segid; a fresh
    // attach resolves through the name server and fails cleanly.
    co_await sim::delay(2 * cfg.lease_duration);
    auto stale = co_await user_k.xpmem_attach(*up, grant.value(), 0, 1_MiB);
    EXPECT_FALSE(stale.ok());
    EXPECT_TRUE(stale.error() == Errc::no_such_segid ||
                stale.error() == Errc::unreachable)
        << errc_name(stale.error());
    EXPECT_EQ(user_k.attach_cache_entries(), 0u);
    EXPECT_GE(mgmt.stats().leases_expired, 1u);
  };
  eng.run(main());
}

// --------------------------------------------------------- leak-freedom

TEST(AttachPath, RandomStormWithAllCachesOnIsLeakFree) {
  // The PR-1 storm property, re-run with every fast-path layer enabled:
  // whatever mix of reused/memoized/extent-shipped attachments occurs,
  // teardown must drain every pin and every cache entry.
  sim::Engine eng(8108);
  Node node(hw::Machine::r420());
  node.set_kernel_config(fast_config());
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& owner_k = node.add_cokernel("owner", 0, {4, 5}, 256_MiB);
  auto& user_k = node.add_cokernel("user", 0, {6, 7}, 256_MiB);

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* op = node.enclave("owner").create_process(16_MiB).value();
    os::Process* up = node.enclave("user").create_process(1_MiB).value();
    auto sid = co_await owner_k.xpmem_make(*op, op->image_base(), 8_MiB);
    CO_ASSERT_TRUE(sid.ok());
    auto grant = co_await user_k.xpmem_get(sid.value());
    CO_ASSERT_TRUE(grant.ok());

    Rng rng(424242);
    std::vector<XpmemAttachment> live;
    for (int step = 0; step < 150; ++step) {
      if (live.empty() || rng.uniform() < 0.55) {
        const u64 pages = 1 + rng.uniform_u64(8_MiB / kPageSize);
        const u64 off = rng.uniform_u64(8_MiB / kPageSize - pages + 1);
        auto att = co_await user_k.xpmem_attach(*up, grant.value(),
                                                off * kPageSize,
                                                pages * kPageSize);
        CO_ASSERT_TRUE(att.ok());
        live.push_back(att.value());
      } else {
        const size_t pick = rng.uniform_u64(live.size());
        CO_ASSERT_TRUE((co_await user_k.xpmem_detach(*up, live[pick])).ok());
        live.erase(live.begin() + static_cast<long>(pick));
      }
    }
    EXPECT_GT(user_k.stats().reuse_hits + owner_k.stats().walk_cache_hits, 0u)
        << "the storm should exercise at least one fast-path layer";
    for (auto& att : live) {
      CO_ASSERT_TRUE((co_await user_k.xpmem_detach(*up, att)).ok());
    }
    EXPECT_EQ(user_k.attach_cache_entries(), 0u);
    EXPECT_EQ(owner_k.pinned_frames(), 0u);
    EXPECT_EQ(node.machine().pmem().total_refs(), 0u);
    CO_ASSERT_TRUE((co_await owner_k.xpmem_remove(*op, sid.value())).ok());
    EXPECT_EQ(owner_k.walk_cache_entries(), 0u);
  };
  eng.run(main());
}

TEST(AttachPath, WarmCachesNeverBypassCapabilityChecks) {
  // Regression for the capability model (DESIGN.md §9): the owner's walk
  // cache and the attacher's mapping-reuse cache are populated by earlier
  // rights-checked attaches, so a later attach under a narrower (or
  // revoked) capability must be re-validated BEFORE any cache can answer
  // — a cache hit is never an authorization.
  sim::Engine eng(8107);
  Node node(hw::Machine::r420());
  KernelConfig cfg = fast_config();
  cfg.enable_capabilities();
  node.set_kernel_config(cfg);
  node.add_linux_mgmt("linux", 0, {0, 1, 2, 3});
  auto& owner_k = node.add_cokernel("owner", 0, {4, 5}, 256_MiB);
  auto& user_k = node.add_cokernel("user", 0, {6, 7}, 256_MiB);

  auto main = [&]() -> sim::Task<void> {
    co_await node.start();
    os::Process* op = node.enclave("owner").create_process(8_MiB).value();
    os::Process* up = node.enclave("user").create_process(1_MiB).value();
    auto sid = co_await owner_k.xpmem_make(*op, op->image_base(), 1_MiB);
    CO_ASSERT_TRUE(sid.ok());

    // Warm the owner's walk cache with full-rights classic attaches. (The
    // attacher-side reuse layer is disabled outright under capabilities —
    // a cached mapping cannot observe revocation, so every attach must
    // revisit the owner; the walk cache is the fast-path layer that
    // remains, and it must re-validate.)
    auto grant = co_await user_k.xpmem_get(sid.value());
    CO_ASSERT_TRUE(grant.ok());
    auto warm1 = co_await user_k.xpmem_attach(*up, grant.value(), 0, 1_MiB);
    CO_ASSERT_TRUE(warm1.ok());
    auto warm2 = co_await user_k.xpmem_attach(*up, grant.value(), 0, 1_MiB);
    CO_ASSERT_TRUE(warm2.ok());
    EXPECT_GT(owner_k.stats().walk_cache_hits, 0u)
        << "the walk cache must actually be warm for this regression to bite";
    EXPECT_EQ(user_k.stats().reuse_hits, 0u)
        << "mapping reuse must be off while capabilities are enabled";

    // A window-restricted capability over the same segment: attaching
    // outside its window must be denied even though the owner could have
    // answered from the memoized walk and the attacher holds the frames.
    auto root = owner_k.cap_root(sid.value());
    CO_ASSERT_TRUE(root.ok());
    CapRights r;
    r.access = AccessMode::read_only;
    r.window_off = 0;
    r.window_size = 64_KiB;
    auto cap = co_await owner_k.cap_derive(root.value(), r);
    CO_ASSERT_TRUE(cap.ok());
    auto cgrant = co_await user_k.xpmem_get(cap.value(), AccessMode::read_only);
    CO_ASSERT_TRUE(cgrant.ok());
    const u64 denials_before = owner_k.stats().cap_denials;
    EXPECT_EQ(
        (co_await user_k.xpmem_attach(*up, cgrant.value(), 128_KiB, 64_KiB))
            .error(),
        Errc::permission_denied);
    EXPECT_GT(owner_k.stats().cap_denials, denials_before)
        << "the denial must come from the owner's rights check";

    // Inside the window the ro capability maps — without write permission,
    // despite the warm caches having been filled by a rw attach.
    auto ro = co_await user_k.xpmem_attach(*up, cgrant.value(), 0, 64_KiB);
    CO_ASSERT_TRUE(ro.ok());
    co_await node.enclave("user").touch_attached(*up, ro.value().va,
                                                 ro.value().pages);
    const u64 evil = 1;
    EXPECT_EQ(
        node.enclave("user").proc_write(*up, ro.value().va, &evil, 8).error(),
        Errc::permission_denied);

    // After revocation, re-attaching through the dead capability is
    // terminal even though the (segid, offset) range sits in every cache.
    CO_ASSERT_TRUE((co_await owner_k.cap_revoke(cap.value())).ok());
    EXPECT_EQ((co_await user_k.xpmem_attach(*up, cgrant.value(), 0, 64_KiB))
                  .error(),
              Errc::revoked);

    // The classic grant (root capability) is untouched and still served.
    CO_ASSERT_TRUE((co_await user_k.xpmem_attach(*up, grant.value(), 0, 64_KiB)).ok());
  };
  eng.run(main());
}

}  // namespace
}  // namespace xemem
